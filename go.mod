module sentinel3d

go 1.22
