package ecc

import (
	"fmt"
	"math"

	"sentinel3d/internal/mathx"
)

// Sensing describes the soft-sensing precision of a read: hard decision
// uses the single read voltage, b-bit soft sensing adds reference reads
// around it (2^b - 1 sensing levels in total), binning each cell into one
// of 2^b regions with a log-likelihood ratio per region.
//
// This mirrors the paper's Figure 19 comparison of hard, 2-bit soft and
// 3-bit soft LDPC decoding.
type Sensing struct {
	// Bits is the sensing precision: 1 = hard, 2 = 2-bit soft, 3 = 3-bit.
	Bits int
	// Step is the voltage spacing between adjacent sensing levels, in
	// normalized voltage units.
	Step float64
}

// HardSensing returns single-read sensing.
func HardSensing() Sensing { return Sensing{Bits: 1} }

// SoftSensing returns b-bit sensing with the given level spacing.
func SoftSensing(b int, step float64) Sensing { return Sensing{Bits: b, Step: step} }

// Levels returns the sensing-level voltage offsets relative to the read
// voltage, in ascending order: 2^Bits - 1 levels centred on 0.
func (s Sensing) Levels() []float64 {
	n := (1 << s.Bits) - 1
	out := make([]float64, n)
	mid := n / 2
	for i := range out {
		out[i] = float64(i-mid) * s.Step
	}
	return out
}

// Validate reports parameter errors.
func (s Sensing) Validate() error {
	if s.Bits < 1 || s.Bits > 4 {
		return fmt.Errorf("ecc: sensing bits %d out of [1,4]", s.Bits)
	}
	if s.Bits > 1 && s.Step <= 0 {
		return fmt.Errorf("ecc: soft sensing needs positive step, got %v", s.Step)
	}
	return nil
}

// LLRTable returns the per-region LLR magnitudes for a boundary between
// two Gaussian states separated by `separation` with common deviation
// `sigma`, assuming the read voltage sits at the optimum (midpoint).
// Region i is the bin between sensing levels i-1 and i (regions =
// levels+1); the sign of the LLR is the region's side of the centre.
//
// LLR convention: positive favours the *below-boundary* side (bit read as
// the lower state).
func (s Sensing) LLRTable(separation, sigma float64) []float64 {
	levels := s.Levels()
	regions := len(levels) + 1
	out := make([]float64, regions)
	muLo, muHi := -separation/2, separation/2
	for i := 0; i < regions; i++ {
		// Region bounds relative to the read voltage.
		lo := math.Inf(-1)
		hi := math.Inf(1)
		if i > 0 {
			lo = levels[i-1]
		}
		if i < len(levels) {
			hi = levels[i]
		}
		pLo := gaussMass(lo, hi, muLo, sigma) // cell truly below boundary
		pHi := gaussMass(lo, hi, muHi, sigma) // cell truly above boundary
		llr := math.Log((pLo + 1e-300) / (pHi + 1e-300))
		out[i] = clampLLR(llr, 20)
	}
	return out
}

// gaussMass returns the probability mass of N(mu, sigma) in [lo, hi].
func gaussMass(lo, hi, mu, sigma float64) float64 {
	cdf := func(x float64) float64 {
		if math.IsInf(x, 1) {
			return 1
		}
		if math.IsInf(x, -1) {
			return 0
		}
		return mathx.NormCDF((x - mu) / sigma)
	}
	return cdf(hi) - cdf(lo)
}

func clampLLR(x, lim float64) float64 {
	if x > lim {
		return lim
	}
	if x < -lim {
		return -lim
	}
	return x
}

// HardLLR is the LLR magnitude assigned to a hard-decision read.
const HardLLR = 4.0
