package ecc

import (
	"fmt"
	"math"

	"sentinel3d/internal/mathx"
)

// LDPC is a binary LDPC code in the irregular repeat-accumulate (IRA)
// family: the parity-check matrix is H = [H1 | H2], where H1 is a sparse
// random matrix with column weight 3 over the K information bits and H2 is
// the dual-diagonal accumulator over the M parity bits. The structure is
// linear-time encodable and decodes with standard belief propagation;
// rate-8/9-class instances behave like the flash-controller LDPCs the
// paper assumes.
type LDPC struct {
	K int // information bits
	M int // parity bits (checks)
	N int // codeword bits = K + M

	// CSR adjacency: edges grouped by check.
	checkStart []int32 // len M+1
	edgeVar    []int32 // len E: variable index of each edge
	// Per-variable list of edge indices, for the variable update.
	varStart []int32
	varEdge  []int32
	// infoRows[j] lists the 3 check rows of information column j,
	// used by the encoder.
	infoRows [][3]int32
}

// NewLDPC constructs a code with k information bits and m parity bits from
// a deterministic seed. k and m must be positive and m >= 8.
func NewLDPC(k, m int, seed uint64) (*LDPC, error) {
	if k <= 0 || m < 8 {
		return nil, fmt.Errorf("ecc: invalid LDPC dimensions k=%d m=%d", k, m)
	}
	const wc = 3 // column weight of the information part
	c := &LDPC{K: k, M: m, N: k + m}
	rng := mathx.NewRand(seed)

	// Draw wc distinct rows per information column.
	c.infoRows = make([][3]int32, k)
	rowDeg := make([]int32, m)
	for j := 0; j < k; j++ {
		var rows [3]int32
		for i := 0; i < wc; i++ {
		redraw:
			r := int32(rng.Intn(m))
			for t := 0; t < i; t++ {
				if rows[t] == r {
					goto redraw
				}
			}
			rows[i] = r
			rowDeg[r]++
		}
		c.infoRows[j] = rows
	}

	// Build per-check adjacency: info edges + accumulator edges.
	// Check r involves parity bit r and (for r>0) parity bit r-1.
	c.checkStart = make([]int32, m+1)
	for r := 0; r < m; r++ {
		deg := rowDeg[r] + 1
		if r > 0 {
			deg++
		}
		c.checkStart[r+1] = c.checkStart[r] + deg
	}
	e := int(c.checkStart[m])
	c.edgeVar = make([]int32, e)
	fill := make([]int32, m)
	copy(fill, c.checkStart[:m])
	for j := 0; j < k; j++ {
		for _, r := range c.infoRows[j] {
			c.edgeVar[fill[r]] = int32(j)
			fill[r]++
		}
	}
	for r := 0; r < m; r++ {
		c.edgeVar[fill[r]] = int32(k + r)
		fill[r]++
		if r > 0 {
			c.edgeVar[fill[r]] = int32(k + r - 1)
			fill[r]++
		}
	}

	// Invert to per-variable edge lists.
	varDeg := make([]int32, c.N)
	for _, v := range c.edgeVar {
		varDeg[v]++
	}
	c.varStart = make([]int32, c.N+1)
	for v := 0; v < c.N; v++ {
		c.varStart[v+1] = c.varStart[v] + varDeg[v]
	}
	c.varEdge = make([]int32, e)
	vfill := make([]int32, c.N)
	copy(vfill, c.varStart[:c.N])
	for idx, v := range c.edgeVar {
		c.varEdge[vfill[v]] = int32(idx)
		vfill[v]++
	}
	return c, nil
}

// Rate returns the code rate K/N.
func (c *LDPC) Rate() float64 { return float64(c.K) / float64(c.N) }

// Encode computes the codeword for the given information bits
// (len(data) == K): the first K bits of the result are data, followed by M
// accumulator parity bits.
func (c *LDPC) Encode(data []bool) []bool {
	if len(data) != c.K {
		panic(fmt.Sprintf("ecc: Encode got %d bits, want %d", len(data), c.K))
	}
	cw := make([]bool, c.N)
	copy(cw, data)
	// s_r = parity of information bits on check r.
	s := make([]bool, c.M)
	for j, rows := range c.infoRows {
		if data[j] {
			for _, r := range rows {
				s[r] = !s[r]
			}
		}
	}
	// Accumulate: p_r = p_{r-1} XOR s_r.
	prev := false
	for r := 0; r < c.M; r++ {
		prev = prev != s[r]
		cw[c.K+r] = prev
	}
	return cw
}

// CheckSyndrome reports whether bits (len N) satisfies every parity check.
func (c *LDPC) CheckSyndrome(bits []bool) bool {
	for r := 0; r < c.M; r++ {
		parity := false
		for e := c.checkStart[r]; e < c.checkStart[r+1]; e++ {
			if bits[c.edgeVar[e]] {
				parity = !parity
			}
		}
		if parity {
			return false
		}
	}
	return true
}

// DecodeResult reports the outcome of a decode attempt.
type DecodeResult struct {
	// OK is true when the decoder converged to a valid codeword.
	OK bool
	// Iterations is the number of min-sum iterations performed.
	Iterations int
	// Bits is the decoded codeword estimate (valid only when OK).
	Bits []bool
}

// Decode runs normalized min-sum belief propagation on the channel LLRs
// (llr[i] = log P(bit i = 0)/P(bit i = 1), len N) for at most maxIter
// iterations, stopping early when the syndrome clears.
func (c *LDPC) Decode(llr []float64, maxIter int) DecodeResult {
	if len(llr) != c.N {
		panic(fmt.Sprintf("ecc: Decode got %d LLRs, want %d", len(llr), c.N))
	}
	const alpha = 0.8 // min-sum normalization
	e := len(c.edgeVar)
	c2v := make([]float64, e)
	v2c := make([]float64, e)
	total := make([]float64, c.N)
	hard := make([]bool, c.N)

	// Initialize variable-to-check messages with channel LLRs.
	for idx, v := range c.edgeVar {
		v2c[idx] = llr[v]
	}

	for iter := 1; iter <= maxIter; iter++ {
		// Check update: normalized min-sum.
		for r := 0; r < c.M; r++ {
			lo, hi := c.checkStart[r], c.checkStart[r+1]
			signProd := 1.0
			min1, min2 := math.Inf(1), math.Inf(1)
			var min1At int32 = -1
			for ei := lo; ei < hi; ei++ {
				m := v2c[ei]
				if m < 0 {
					signProd = -signProd
					m = -m
				}
				if m < min1 {
					min2 = min1
					min1 = m
					min1At = ei
				} else if m < min2 {
					min2 = m
				}
			}
			for ei := lo; ei < hi; ei++ {
				mag := min1
				if ei == min1At {
					mag = min2
				}
				sign := signProd
				if v2c[ei] < 0 {
					sign = -sign
				}
				c2v[ei] = alpha * sign * mag
			}
		}
		// Variable update and hard decision.
		for v := 0; v < c.N; v++ {
			t := llr[v]
			for k := c.varStart[v]; k < c.varStart[v+1]; k++ {
				t += c2v[c.varEdge[k]]
			}
			total[v] = t
			hard[v] = t < 0
			for k := c.varStart[v]; k < c.varStart[v+1]; k++ {
				ei := c.varEdge[k]
				v2c[ei] = t - c2v[ei]
			}
		}
		if c.CheckSyndrome(hard) {
			out := make([]bool, c.N)
			copy(out, hard)
			return DecodeResult{OK: true, Iterations: iter, Bits: out}
		}
	}
	return DecodeResult{OK: false, Iterations: maxIter}
}

// DecodeData is Decode restricted to the information bits: on success it
// returns the first K decoded bits.
func (c *LDPC) DecodeData(llr []float64, maxIter int) ([]bool, bool) {
	res := c.Decode(llr, maxIter)
	if !res.OK {
		return nil, false
	}
	return res.Bits[:c.K], true
}
