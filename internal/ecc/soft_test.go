package ecc

import (
	"math"
	"testing"
)

func TestSensingLevels(t *testing.T) {
	if n := len(HardSensing().Levels()); n != 1 {
		t.Fatalf("hard sensing has %d levels, want 1", n)
	}
	s2 := SoftSensing(2, 5)
	if n := len(s2.Levels()); n != 3 {
		t.Fatalf("2-bit sensing has %d levels, want 3", n)
	}
	s3 := SoftSensing(3, 5)
	lv := s3.Levels()
	if len(lv) != 7 {
		t.Fatalf("3-bit sensing has %d levels, want 7", len(lv))
	}
	// Levels are centred and ascending.
	if lv[3] != 0 {
		t.Fatalf("middle level = %v, want 0", lv[3])
	}
	for i := 1; i < len(lv); i++ {
		if lv[i]-lv[i-1] != 5 {
			t.Fatalf("level spacing wrong: %v", lv)
		}
	}
}

func TestSensingValidate(t *testing.T) {
	if err := HardSensing().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SoftSensing(2, 5).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Sensing{Bits: 0}).Validate(); err == nil {
		t.Fatal("accepted 0-bit sensing")
	}
	if err := (Sensing{Bits: 2, Step: 0}).Validate(); err == nil {
		t.Fatal("accepted soft sensing without step")
	}
	if err := (Sensing{Bits: 5, Step: 1}).Validate(); err == nil {
		t.Fatal("accepted 5-bit sensing")
	}
}

func TestLLRTableStructure(t *testing.T) {
	s := SoftSensing(3, 8)
	tab := s.LLRTable(128, 22)
	if len(tab) != 8 {
		t.Fatalf("table has %d regions, want 8", len(tab))
	}
	// Monotone decreasing: lower regions favour the below state.
	for i := 1; i < len(tab); i++ {
		if tab[i] >= tab[i-1] {
			t.Fatalf("LLR table not decreasing: %v", tab)
		}
	}
	// Symmetric about the centre.
	for i := 0; i < len(tab)/2; i++ {
		if math.Abs(tab[i]+tab[len(tab)-1-i]) > 1e-9 {
			t.Fatalf("LLR table not antisymmetric: %v", tab)
		}
	}
	// Outer regions are confident, inner ones are not.
	if math.Abs(tab[0]) <= math.Abs(tab[3]) {
		t.Fatalf("outer region less confident than inner: %v", tab)
	}
}

func TestLLRTableClamped(t *testing.T) {
	s := SoftSensing(2, 30)
	tab := s.LLRTable(200, 5) // extremely separated states
	for _, v := range tab {
		if math.Abs(v) > 20+1e-12 {
			t.Fatalf("LLR %v exceeds clamp", v)
		}
	}
}

func TestHardLLRTable(t *testing.T) {
	tab := HardSensing().LLRTable(128, 22)
	if len(tab) != 2 {
		t.Fatalf("hard table has %d regions, want 2", len(tab))
	}
	if tab[0] <= 0 || tab[1] >= 0 {
		t.Fatalf("hard LLR signs wrong: %v", tab)
	}
}

func TestGaussMass(t *testing.T) {
	// Full line integrates to 1.
	if m := gaussMass(math.Inf(-1), math.Inf(1), 0, 1); math.Abs(m-1) > 1e-12 {
		t.Fatalf("full mass = %v", m)
	}
	// Central 1-sigma interval ~68.3%.
	if m := gaussMass(-1, 1, 0, 1); math.Abs(m-0.6827) > 1e-3 {
		t.Fatalf("1-sigma mass = %v", m)
	}
}
