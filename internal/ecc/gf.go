package ecc

import "fmt"

// gf2m is a binary extension field GF(2^m) with exp/log tables, the
// arithmetic substrate of the BCH codec.
type gf2m struct {
	m   int
	n   int // field size - 1 = 2^m - 1
	exp []int
	log []int
}

// primitive polynomials (bit i = coefficient of x^i) for GF(2^m).
var primitivePoly = map[int]int{
	4:  0x13,   // x^4 + x + 1
	5:  0x25,   // x^5 + x^2 + 1
	6:  0x43,   // x^6 + x + 1
	7:  0x89,   // x^7 + x^3 + 1
	8:  0x11d,  // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x211,  // x^9 + x^4 + 1
	10: 0x409,  // x^10 + x^3 + 1
	11: 0x805,  // x^11 + x^2 + 1
	12: 0x1053, // x^12 + x^6 + x^4 + x + 1
	13: 0x201b, // x^13 + x^4 + x^3 + x + 1
	14: 0x4443, // x^14 + x^10 + x^6 + x + 1
}

// newGF builds GF(2^m) for 4 <= m <= 14.
func newGF(m int) (*gf2m, error) {
	poly, ok := primitivePoly[m]
	if !ok {
		return nil, fmt.Errorf("ecc: no primitive polynomial for GF(2^%d)", m)
	}
	n := (1 << m) - 1
	f := &gf2m{m: m, n: n, exp: make([]int, 2*n), log: make([]int, n+1)}
	x := 1
	for i := 0; i < n; i++ {
		f.exp[i] = x
		f.log[x] = i
		x <<= 1
		if x>>m != 0 {
			x ^= poly
		}
	}
	for i := n; i < 2*n; i++ {
		f.exp[i] = f.exp[i-n]
	}
	f.log[0] = -1 // sentinel; log(0) undefined
	return f, nil
}

// mul multiplies two field elements.
func (f *gf2m) mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// inv returns the multiplicative inverse; it panics on 0.
func (f *gf2m) inv(a int) int {
	if a == 0 {
		panic("ecc: inverse of zero")
	}
	return f.exp[f.n-f.log[a]]
}

// pow returns alpha^e for the primitive element alpha.
func (f *gf2m) pow(e int) int {
	e %= f.n
	if e < 0 {
		e += f.n
	}
	return f.exp[e]
}
