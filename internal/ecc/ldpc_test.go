package ecc

import (
	"testing"
	"testing/quick"

	"sentinel3d/internal/mathx"
)

func mustLDPC(t testing.TB, k, m int, seed uint64) *LDPC {
	t.Helper()
	c, err := NewLDPC(k, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomData(r *mathx.Rand, k int) []bool {
	d := make([]bool, k)
	for i := range d {
		d[i] = r.Float64() < 0.5
	}
	return d
}

func TestNewLDPCValidation(t *testing.T) {
	if _, err := NewLDPC(0, 100, 1); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := NewLDPC(100, 4, 1); err == nil {
		t.Fatal("accepted tiny m")
	}
}

func TestEncodeSatisfiesSyndrome(t *testing.T) {
	// Property: every encoded word is a valid codeword.
	c := mustLDPC(t, 512, 64, 7)
	f := func(seed uint32) bool {
		r := mathx.NewRand(uint64(seed))
		cw := c.Encode(randomData(r, c.K))
		return c.CheckSyndrome(cw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSystematic(t *testing.T) {
	c := mustLDPC(t, 256, 64, 3)
	r := mathx.NewRand(9)
	data := randomData(r, c.K)
	cw := c.Encode(data)
	for i, b := range data {
		if cw[i] != b {
			t.Fatalf("codeword not systematic at bit %d", i)
		}
	}
	if len(cw) != c.N {
		t.Fatalf("codeword length %d, want %d", len(cw), c.N)
	}
}

func TestEncodePanicsOnWrongLength(t *testing.T) {
	c := mustLDPC(t, 64, 32, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Encode accepted wrong-length data")
		}
	}()
	c.Encode(make([]bool, 63))
}

func TestRate(t *testing.T) {
	c := mustLDPC(t, 800, 200, 1)
	if c.Rate() != 0.8 {
		t.Fatalf("rate = %v, want 0.8", c.Rate())
	}
}

// llrFromBits builds hard-decision LLRs for a received word.
func llrFromBits(bits []bool) []float64 {
	llr := make([]float64, len(bits))
	for i, b := range bits {
		if b {
			llr[i] = -HardLLR
		} else {
			llr[i] = HardLLR
		}
	}
	return llr
}

func TestDecodeCleanWord(t *testing.T) {
	c := mustLDPC(t, 1024, 128, 5)
	r := mathx.NewRand(2)
	data := randomData(r, c.K)
	cw := c.Encode(data)
	res := c.Decode(llrFromBits(cw), 30)
	if !res.OK {
		t.Fatal("clean word did not decode")
	}
	if res.Iterations != 1 {
		t.Fatalf("clean word took %d iterations", res.Iterations)
	}
	for i := range cw {
		if res.Bits[i] != cw[i] {
			t.Fatalf("clean decode altered bit %d", i)
		}
	}
}

func TestDecodeCorrectsSparseErrors(t *testing.T) {
	// Rate 8/9 code must correct a ~0.2% raw bit error rate in hard
	// decision.
	c := mustLDPC(t, 4096, 512, 5)
	r := mathx.NewRand(11)
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		data := randomData(r, c.K)
		cw := c.Encode(data)
		recv := append([]bool(nil), cw...)
		nErr := 9 // ~0.2% of 4608
		for i := 0; i < nErr; i++ {
			p := r.Intn(c.N)
			recv[p] = !recv[p]
		}
		got, success := c.DecodeData(llrFromBits(recv), 40)
		if !success {
			continue
		}
		match := true
		for i := range data {
			if got[i] != data[i] {
				match = false
				break
			}
		}
		if match {
			ok++
		}
	}
	if ok < trials-1 {
		t.Fatalf("corrected only %d/%d words with 9 errors", ok, trials)
	}
}

func TestDecodeFailsUnderHeavyErrors(t *testing.T) {
	// 5% raw bit errors is far beyond any rate-8/9 hard-decision code.
	c := mustLDPC(t, 4096, 512, 5)
	r := mathx.NewRand(13)
	fails := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		cw := c.Encode(randomData(r, c.K))
		recv := append([]bool(nil), cw...)
		for i := range recv {
			if r.Float64() < 0.05 {
				recv[i] = !recv[i]
			}
		}
		res := c.Decode(llrFromBits(recv), 40)
		if !res.OK {
			fails++
			continue
		}
		// Converging to a wrong codeword also counts as failure here.
		for i := 0; i < c.K; i++ {
			if res.Bits[i] != cw[i] {
				fails++
				break
			}
		}
	}
	if fails < trials-1 {
		t.Fatalf("decoder claimed success on %d/%d hopeless words",
			trials-fails, trials)
	}
}

func TestSoftLLRBeatsHardDecision(t *testing.T) {
	// With erasures marked by low-confidence LLRs, soft decoding corrects
	// patterns hard decision cannot. Flip bits but mark them unreliable.
	c := mustLDPC(t, 2048, 256, 5)
	r := mathx.NewRand(17)
	softWins := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		cw := c.Encode(randomData(r, c.K))
		recv := append([]bool(nil), cw...)
		flipped := make(map[int]bool)
		for len(flipped) < 20 {
			p := r.Intn(c.N)
			if !flipped[p] {
				flipped[p] = true
				recv[p] = !recv[p]
			}
		}
		hard := llrFromBits(recv)
		soft := llrFromBits(recv)
		for p := range flipped {
			soft[p] *= 0.05 // sensed near the boundary: low confidence
		}
		hardOK := c.Decode(hard, 40).OK
		softOK := c.Decode(soft, 40).OK
		if softOK && !hardOK {
			softWins++
		}
		if softOK != hardOK && hardOK {
			t.Fatal("hard succeeded where soft failed with same signs")
		}
	}
	if softWins == 0 {
		t.Fatal("soft information never helped; LLR handling broken?")
	}
}

func TestDecodePanicsOnWrongLength(t *testing.T) {
	c := mustLDPC(t, 64, 32, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Decode accepted wrong-length llr")
		}
	}()
	c.Decode(make([]float64, 10), 5)
}

func TestDeterministicConstruction(t *testing.T) {
	a := mustLDPC(t, 256, 64, 42)
	b := mustLDPC(t, 256, 64, 42)
	r := mathx.NewRand(1)
	data := randomData(r, 256)
	ca, cb := a.Encode(data), b.Encode(data)
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("same seed produced different codes")
		}
	}
}

func BenchmarkLDPCDecode(b *testing.B) {
	c := mustLDPC(b, 4096, 512, 5)
	r := mathx.NewRand(1)
	cw := c.Encode(randomData(r, c.K))
	recv := append([]bool(nil), cw...)
	for i := 0; i < 20; i++ {
		p := r.Intn(c.N)
		recv[p] = !recv[p]
	}
	llr := llrFromBits(recv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decode(llr, 40)
	}
}
