// Package ecc provides the error-correction substrate: a fast
// capability-threshold model used by the read-retry controller, and a real
// LDPC code (irregular repeat-accumulate construction) with a normalized
// min-sum decoder and hard / 2-bit / 3-bit soft sensing inputs, used to
// reproduce the paper's Figure 19.
package ecc

import (
	"fmt"
	"math/bits"

	"sentinel3d/internal/flash"
)

// CapabilityModel represents a hard-decision ECC by its correction
// capability: a frame of FrameBits data bits decodes if and only if it
// holds at most T raw bit errors. This is the standard abstraction for
// retry studies, where only pass/fail matters.
type CapabilityModel struct {
	// FrameBits is the number of data bits protected per ECC frame.
	FrameBits int
	// T is the maximum number of correctable bit errors per frame.
	T int
}

// DefaultCapability mirrors a contemporary LDPC in hard-decision mode on a
// 1KiB frame: ~40 correctable bits per 8192 data bits (RBER ~5e-3).
func DefaultCapability() CapabilityModel {
	return CapabilityModel{FrameBits: 8192, T: 40}
}

// Validate reports parameter errors.
func (m CapabilityModel) Validate() error {
	if m.FrameBits <= 0 || m.T < 0 {
		return fmt.Errorf("ecc: invalid capability model %+v", m)
	}
	return nil
}

// Frames returns how many frames cover userBits data bits (the last frame
// may be short).
func (m CapabilityModel) Frames(userBits int) int {
	return (userBits + m.FrameBits - 1) / m.FrameBits
}

// DecodePage reports whether every frame of a page decodes, given the
// per-cell error bitmap of a page read (bit i set = cell i's page bit was
// misread) over the first userBits cells.
func (m CapabilityModel) DecodePage(errs flash.Bitmap, userBits int) bool {
	for start := 0; start < userBits; start += m.FrameBits {
		end := start + m.FrameBits
		if end > userBits {
			end = userBits
		}
		if m.countRange(errs, start, end) > m.T {
			return false
		}
	}
	return true
}

// WorstFrameErrors returns the highest per-frame error count on the page.
func (m CapabilityModel) WorstFrameErrors(errs flash.Bitmap, userBits int) int {
	worst := 0
	for start := 0; start < userBits; start += m.FrameBits {
		end := start + m.FrameBits
		if end > userBits {
			end = userBits
		}
		if n := m.countRange(errs, start, end); n > worst {
			worst = n
		}
	}
	return worst
}

func (m CapabilityModel) countRange(errs flash.Bitmap, start, end int) int {
	n := 0
	// Word-aligned fast path.
	for start < end && start%64 != 0 {
		if errs.Get(start) {
			n++
		}
		start++
	}
	for start+64 <= end {
		n += bits.OnesCount64(errs[start/64])
		start += 64
	}
	for start < end {
		if errs.Get(start) {
			n++
		}
		start++
	}
	return n
}
