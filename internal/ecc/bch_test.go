package ecc

import (
	"testing"
	"testing/quick"

	"sentinel3d/internal/mathx"
)

func TestGFConstruction(t *testing.T) {
	for m := 4; m <= 14; m++ {
		f, err := newGF(m)
		if err != nil {
			t.Fatal(err)
		}
		// alpha^n == 1 (the element has full order).
		if f.pow(f.n) != 1 {
			t.Fatalf("m=%d: alpha^n != 1", m)
		}
		// All powers distinct up to n.
		seen := map[int]bool{}
		for i := 0; i < f.n; i++ {
			v := f.exp[i]
			if seen[v] {
				t.Fatalf("m=%d: alpha not primitive (repeat at %d)", m, i)
			}
			seen[v] = true
		}
	}
	if _, err := newGF(3); err == nil {
		t.Fatal("accepted unsupported field")
	}
}

func TestGFFieldAxioms(t *testing.T) {
	f, err := newGF(8)
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(3)
	for trial := 0; trial < 2000; trial++ {
		a := r.Intn(f.n) + 1
		b := r.Intn(f.n) + 1
		c := r.Intn(f.n) + 1
		if f.mul(a, b) != f.mul(b, a) {
			t.Fatal("mul not commutative")
		}
		if f.mul(a, f.mul(b, c)) != f.mul(f.mul(a, b), c) {
			t.Fatal("mul not associative")
		}
		if f.mul(a, f.inv(a)) != 1 {
			t.Fatal("inverse wrong")
		}
		if f.mul(a, 0) != 0 {
			t.Fatal("zero absorption wrong")
		}
	}
}

func TestBCHKnownDimensions(t *testing.T) {
	// Textbook BCH codes over GF(2^4): (15,11,1), (15,7,2), (15,5,3).
	cases := []struct{ m, t, wantK int }{
		{4, 1, 11}, {4, 2, 7}, {4, 3, 5},
		{6, 2, 51}, // BCH(63,51,2)
	}
	for _, c := range cases {
		b, err := NewBCH(c.m, c.t)
		if err != nil {
			t.Fatal(err)
		}
		if b.K != c.wantK {
			t.Errorf("BCH(m=%d,t=%d): K = %d, want %d", c.m, c.t, b.K, c.wantK)
		}
	}
	if _, err := NewBCH(4, 0); err == nil {
		t.Fatal("accepted t=0")
	}
	if _, err := NewBCH(4, 8); err == nil {
		t.Fatal("accepted t too large for n=15")
	}
}

func randBits(r *mathx.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Float64() < 0.5
	}
	return out
}

func TestBCHEncodeDecodeClean(t *testing.T) {
	b, err := NewBCH(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(5)
	data := randBits(r, b.K)
	cw := b.Encode(data)
	if len(cw) != b.N {
		t.Fatalf("codeword length %d, want %d", len(cw), b.N)
	}
	dec, ok := b.Decode(cw)
	if !ok {
		t.Fatal("clean word rejected")
	}
	got := b.Data(dec, b.K)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("clean decode altered data bit %d", i)
		}
	}
}

func TestBCHCorrectsUpToT(t *testing.T) {
	// The hard guarantee: ANY pattern of <= T errors is corrected.
	b, err := NewBCH(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(7)
	for trial := 0; trial < 60; trial++ {
		data := randBits(r, b.K)
		cw := b.Encode(data)
		nErr := 1 + r.Intn(b.T)
		pos := r.Perm(len(cw))[:nErr]
		for _, p := range pos {
			cw[p] = !cw[p]
		}
		dec, ok := b.Decode(cw)
		if !ok {
			t.Fatalf("trial %d: %d errors not corrected", trial, nErr)
		}
		got := b.Data(dec, b.K)
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("trial %d: miscorrected data", trial)
			}
		}
	}
}

func TestBCHShortenedCodewords(t *testing.T) {
	// Flash frames shorten the code; correction must still work.
	b, err := NewBCH(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(9)
	dataLen := 512 // far below K
	for trial := 0; trial < 20; trial++ {
		data := randBits(r, dataLen)
		cw := b.Encode(data)
		if len(cw) != b.ParityBits()+dataLen {
			t.Fatalf("shortened length %d", len(cw))
		}
		for i := 0; i < b.T; i++ {
			p := r.Intn(len(cw))
			cw[p] = !cw[p]
		}
		dec, ok := b.Decode(cw)
		if !ok {
			t.Fatalf("trial %d: shortened word not corrected", trial)
		}
		got := b.Data(dec, dataLen)
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("trial %d: shortened miscorrection", trial)
			}
		}
	}
}

func TestBCHRejectsBeyondT(t *testing.T) {
	// Far beyond T errors must (almost always) be rejected rather than
	// silently miscorrected to the wrong data.
	b, err := NewBCH(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := mathx.NewRand(11)
	silentWrong := 0
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		data := randBits(r, b.K)
		cw := b.Encode(data)
		pos := r.Perm(len(cw))[:2*b.T+3]
		for _, p := range pos {
			cw[p] = !cw[p]
		}
		dec, ok := b.Decode(cw)
		if !ok {
			continue // detected: good
		}
		got := b.Data(dec, b.K)
		same := true
		for i := range data {
			if got[i] != data[i] {
				same = false
				break
			}
		}
		if !same {
			// Miscorrection to a DIFFERENT codeword: possible for BCH,
			// but the result is a valid codeword, so count it.
			silentWrong++
		}
	}
	if silentWrong > trials/2 {
		t.Fatalf("%d/%d overloaded words silently miscorrected", silentWrong, trials)
	}
}

func TestBCHValidatesCapabilityModel(t *testing.T) {
	// Cross-validation: the CapabilityModel's pass/fail threshold is
	// exactly the behaviour of a real BCH with the same T on error counts
	// <= T (guaranteed correction) — the abstraction the retry
	// controller builds on.
	b, err := NewBCH(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	capm := CapabilityModel{FrameBits: 512, T: b.T}
	r := mathx.NewRand(13)
	data := randBits(r, 512)
	for _, nErr := range []int{0, 1, b.T / 2, b.T} {
		cw := b.Encode(data)
		pos := r.Perm(len(cw))[:nErr]
		for _, p := range pos {
			cw[p] = !cw[p]
		}
		_, ok := b.Decode(cw)
		if !ok {
			t.Fatalf("BCH failed at %d <= T errors; capability model would pass", nErr)
		}
		_ = capm
	}
}

func TestBCHEncodePanicsOnOversizedData(t *testing.T) {
	b, err := NewBCH(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("accepted oversized data")
		}
	}()
	b.Encode(make([]bool, b.K+1))
}

func TestBCHPropertyRoundTrip(t *testing.T) {
	b, err := NewBCH(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint32, nErrRaw uint8) bool {
		r := mathx.NewRand(uint64(seed))
		data := randBits(r, b.K)
		cw := b.Encode(data)
		nErr := int(nErrRaw) % (b.T + 1)
		pos := r.Perm(len(cw))[:nErr]
		for _, p := range pos {
			cw[p] = !cw[p]
		}
		dec, ok := b.Decode(cw)
		if !ok {
			return false
		}
		got := b.Data(dec, b.K)
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
