package ecc

import (
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func TestCapabilityValidate(t *testing.T) {
	if err := DefaultCapability().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := CapabilityModel{FrameBits: 0, T: 10}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero frame bits")
	}
	bad = CapabilityModel{FrameBits: 100, T: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative T")
	}
}

func TestFrames(t *testing.T) {
	m := CapabilityModel{FrameBits: 100, T: 5}
	cases := []struct{ bits, want int }{
		{1, 1}, {100, 1}, {101, 2}, {250, 3},
	}
	for _, c := range cases {
		if got := m.Frames(c.bits); got != c.want {
			t.Errorf("Frames(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestDecodePageThreshold(t *testing.T) {
	m := CapabilityModel{FrameBits: 128, T: 3}
	errs := flash.NewBitmap(256)
	// 3 errors in frame 0: decodes.
	for _, i := range []int{0, 64, 127} {
		errs.Set(i, true)
	}
	if !m.DecodePage(errs, 256) {
		t.Fatal("page with T errors per frame should decode")
	}
	// A 4th error in frame 0 breaks it.
	errs.Set(100, true)
	if m.DecodePage(errs, 256) {
		t.Fatal("frame over capability decoded")
	}
	// Errors spread over both frames decode again.
	errs.Set(100, false)
	errs.Set(200, true)
	errs.Set(201, true)
	errs.Set(202, true)
	if !m.DecodePage(errs, 256) {
		t.Fatal("spread errors should decode")
	}
	errs.Set(203, true)
	if m.DecodePage(errs, 256) {
		t.Fatal("frame 1 over capability decoded")
	}
}

func TestDecodePagePartialLastFrame(t *testing.T) {
	m := CapabilityModel{FrameBits: 128, T: 1}
	errs := flash.NewBitmap(192) // frames: [0,128), [128,192)
	errs.Set(130, true)
	if !m.DecodePage(errs, 192) {
		t.Fatal("one error in short frame should decode")
	}
	errs.Set(131, true)
	if m.DecodePage(errs, 192) {
		t.Fatal("two errors in short frame decoded with T=1")
	}
}

func TestWorstFrameErrors(t *testing.T) {
	m := CapabilityModel{FrameBits: 64, T: 10}
	errs := flash.NewBitmap(192)
	errs.Set(0, true)
	errs.Set(65, true)
	errs.Set(66, true)
	errs.Set(67, true)
	errs.Set(128, true)
	if got := m.WorstFrameErrors(errs, 192); got != 3 {
		t.Fatalf("WorstFrameErrors = %d, want 3", got)
	}
}

func TestCountRangeMatchesNaive(t *testing.T) {
	// Property: the word-accelerated range count equals bit-by-bit count
	// for arbitrary ranges.
	m := CapabilityModel{FrameBits: 7, T: 2} // odd frame size forces
	// unaligned ranges through DecodePage
	r := mathx.NewRand(5)
	for trial := 0; trial < 50; trial++ {
		n := 64 + r.Intn(400)
		errs := flash.NewBitmap(n)
		for i := 0; i < n; i++ {
			errs.Set(i, r.Float64() < 0.3)
		}
		start := r.Intn(n)
		end := start + r.Intn(n-start)
		want := 0
		for i := start; i < end; i++ {
			if errs.Get(i) {
				want++
			}
		}
		if got := m.countRange(errs, start, end); got != want {
			t.Fatalf("countRange(%d,%d) = %d, want %d", start, end, got, want)
		}
	}
}
