package ecc

import "fmt"

// BCH is a binary primitive BCH code over GF(2^m) correcting up to T bit
// errors per codeword of length N = 2^m - 1. BCH (and its hard-decision
// guarantee of exactly T correctable errors) is the classical flash ECC
// and the ground truth behind the CapabilityModel abstraction used by the
// retry controller.
//
// The code supports shortening: Encode accepts any data length up to K,
// with the unused high-order positions treated as zeros.
type BCH struct {
	M int // field degree
	N int // full codeword length 2^M - 1
	T int // designed correction capability
	K int // maximum data bits

	gf  *gf2m
	gen []bool // generator polynomial coefficients, gen[i] = coeff of x^i
}

// NewBCH constructs the BCH code over GF(2^m) with designed distance
// 2t+1.
func NewBCH(m, t int) (*BCH, error) {
	if t < 1 {
		return nil, fmt.Errorf("ecc: BCH needs t >= 1, got %d", t)
	}
	gf, err := newGF(m)
	if err != nil {
		return nil, err
	}
	n := gf.n
	// Generator = LCM of minimal polynomials of alpha^1 .. alpha^2t.
	// Work via cyclotomic cosets mod n.
	needed := make(map[int]bool)
	seen := make(map[int]bool)
	gen := []bool{true} // polynomial "1"
	for j := 1; j <= 2*t; j++ {
		if seen[j%n] {
			continue
		}
		// Cyclotomic coset of j.
		coset := []int{}
		c := j % n
		for !seen[c] {
			seen[c] = true
			coset = append(coset, c)
			c = (c * 2) % n
		}
		// Minimal polynomial = prod (x - alpha^c) over the coset.
		mp := []int{1} // coefficients in GF(2^m), mp[i] = coeff of x^i
		for _, e := range coset {
			root := gf.pow(e)
			next := make([]int, len(mp)+1)
			for i, co := range mp {
				next[i+1] ^= co // x * mp
				next[i] ^= gf.mul(co, root)
			}
			mp = next
		}
		// The minimal polynomial has binary coefficients.
		mb := make([]bool, len(mp))
		for i, co := range mp {
			switch co {
			case 0:
			case 1:
				mb[i] = true
			default:
				return nil, fmt.Errorf("ecc: minimal polynomial coefficient %d not binary", co)
			}
		}
		gen = polyMulGF2(gen, mb)
		needed[j] = true
	}
	deg := len(gen) - 1
	if deg >= n {
		return nil, fmt.Errorf("ecc: t=%d too large for n=%d (parity %d)", t, n, deg)
	}
	return &BCH{M: m, N: n, T: t, K: n - deg, gf: gf, gen: gen}, nil
}

// polyMulGF2 multiplies two binary polynomials.
func polyMulGF2(a, b []bool) []bool {
	out := make([]bool, len(a)+len(b)-1)
	for i, ai := range a {
		if !ai {
			continue
		}
		for j, bj := range b {
			if bj {
				out[i+j] = !out[i+j]
			}
		}
	}
	return out
}

// ParityBits returns the number of parity bits (N - K).
func (b *BCH) ParityBits() int { return b.N - b.K }

// Encode returns the systematic codeword for data (len(data) <= K):
// parity bits first, then the data bits. Shortened positions (beyond
// len(data)) are implicit zeros.
func (b *BCH) Encode(data []bool) []bool {
	if len(data) > b.K {
		panic(fmt.Sprintf("ecc: BCH data %d exceeds K=%d", len(data), b.K))
	}
	p := b.ParityBits()
	// Compute remainder of x^p * d(x) mod gen(x) with an LFSR.
	reg := make([]bool, p)
	for i := len(data) - 1; i >= 0; i-- {
		feedback := data[i] != reg[p-1]
		for j := p - 1; j > 0; j-- {
			reg[j] = reg[j-1]
			if feedback && b.gen[j] {
				reg[j] = !reg[j]
			}
		}
		reg[0] = feedback && b.gen[0]
	}
	out := make([]bool, p+len(data))
	copy(out, reg)
	copy(out[p:], data)
	return out
}

// Decode corrects up to T bit errors in place on a copy of recv (layout
// as produced by Encode, possibly shortened) and reports success. On
// failure the returned slice is nil.
func (b *BCH) Decode(recv []bool) ([]bool, bool) {
	if len(recv) > b.N {
		panic(fmt.Sprintf("ecc: BCH word %d exceeds N=%d", len(recv), b.N))
	}
	gf := b.gf
	// Syndromes S_j = r(alpha^j), j = 1..2T; bit i is coefficient of x^i.
	syn := make([]int, 2*b.T+1)
	allZero := true
	for j := 1; j <= 2*b.T; j++ {
		s := 0
		for i, bit := range recv {
			if bit {
				s ^= gf.pow(i * j)
			}
		}
		syn[j] = s
		if s != 0 {
			allZero = false
		}
	}
	if allZero {
		out := make([]bool, len(recv))
		copy(out, recv)
		return out, true
	}
	// Berlekamp-Massey: find the error locator polynomial sigma.
	sigma := []int{1}
	prev := []int{1}
	l, mShift := 0, 1
	bCoef := 1
	for r := 1; r <= 2*b.T; r++ {
		// Discrepancy.
		d := syn[r]
		for i := 1; i <= l && i < len(sigma); i++ {
			d ^= gf.mul(sigma[i], syn[r-i])
		}
		if d == 0 {
			mShift++
			continue
		}
		// sigma' = sigma - d/b * x^mShift * prev
		scale := gf.mul(d, gf.inv(bCoef))
		next := make([]int, maxInt(len(sigma), len(prev)+mShift))
		copy(next, sigma)
		for i, pc := range prev {
			if pc != 0 {
				next[i+mShift] ^= gf.mul(scale, pc)
			}
		}
		if 2*l <= r-1 {
			prev = sigma
			bCoef = d
			l = r - l
			mShift = 1
		} else {
			mShift++
		}
		sigma = next
	}
	// Trim trailing zeros.
	deg := len(sigma) - 1
	for deg > 0 && sigma[deg] == 0 {
		deg--
	}
	sigma = sigma[:deg+1]
	if deg > b.T {
		return nil, false
	}
	// Chien search over the shortened length.
	out := make([]bool, len(recv))
	copy(out, recv)
	found := 0
	for i := 0; i < len(recv); i++ {
		// Error at position i iff sigma(alpha^{-i}) == 0.
		v := 0
		for j, c := range sigma {
			if c != 0 {
				v ^= gf.mul(c, gf.pow(-i*j))
			}
		}
		if v == 0 {
			out[i] = !out[i]
			found++
		}
	}
	if found != deg {
		return nil, false // roots outside the shortened range or repeated
	}
	// Verify: syndromes of the corrected word must vanish.
	for j := 1; j <= 2*b.T; j++ {
		s := 0
		for i, bit := range out {
			if bit {
				s ^= gf.pow(i * j)
			}
		}
		if s != 0 {
			return nil, false
		}
	}
	return out, true
}

// Data extracts the data bits from a decoded codeword of the given data
// length.
func (b *BCH) Data(cw []bool, dataLen int) []bool {
	return cw[b.ParityBits() : b.ParityBits()+dataLen]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
