package parallel

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultAndOverride(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
	SetWorkers(7)
	if got := Workers(); got != 7 {
		t.Fatalf("Workers() = %d after SetWorkers(7)", got)
	}
	SetWorkers(-3) // negative restores automatic
	if got := Workers(); got < 1 {
		t.Fatalf("Workers() = %d after reset", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 64} {
		const n = 1000
		var hits [n]atomic.Int64
		forEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmptyAndSingle(t *testing.T) {
	ForEach(0, func(int) { t.Fatal("fn called for n=0") })
	calls := 0
	forEach(8, 1, func(i int) { calls++ })
	if calls != 1 {
		t.Fatalf("n=1: fn called %d times", calls)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic did not propagate to caller")
		}
	}()
	forEach(4, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	defer SetWorkers(SetWorkers(4))
	err := ForEachErr(50, func(i int) error {
		if i == 12 || i == 40 {
			return fmt.Errorf("fail@%d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail@12" {
		t.Fatalf("got %v, want fail@12", err)
	}
	if err := ForEachErr(50, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestMapOrderIndependentOfWorkers(t *testing.T) {
	want := Map(200, func(i int) int { return i * i })
	defer SetWorkers(SetWorkers(0))
	for _, workers := range []int{1, 3, 16} {
		SetWorkers(workers)
		got := Map(200, func(i int) int { return i * i })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapErr(t *testing.T) {
	sentinel := errors.New("nope")
	if _, err := MapErr(10, func(i int) (int, error) {
		if i == 3 {
			return 0, sentinel
		}
		return i, nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want %v", err, sentinel)
	}
	vs, err := MapErr(4, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(vs) != 4 || vs[3] != 4 {
		t.Fatalf("got %v, %v", vs, err)
	}
}

// TestMapReduceFloatDeterminism is the core determinism property: a
// non-associative float fold must give bit-identical results at every
// worker count because the reduce runs serially in index order.
func TestMapReduceFloatDeterminism(t *testing.T) {
	fold := func() float64 {
		return MapReduce(5000,
			func(i int) float64 { return math.Sin(float64(i)) * 1e-3 },
			1.0,
			func(a, v float64) float64 { return a*1.0000001 + v })
	}
	defer SetWorkers(SetWorkers(1))
	want := fold()
	for _, workers := range []int{2, 8, 32} {
		SetWorkers(workers)
		if got := fold(); got != want {
			t.Fatalf("workers=%d: %v != %v (non-deterministic fold)", workers, got, want)
		}
	}
}
