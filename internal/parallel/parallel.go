// Package parallel provides the bounded fan-out primitives used by the
// experiment sweeps: a worker pool sized from the machine (with a global
// override wired to the -workers CLI flags) and ForEach / Map / MapReduce
// helpers over integer index ranges.
//
// Determinism contract: the helpers distribute *work* across goroutines
// but never results. Map and MapReduce write each index's result into an
// index-addressed slot and fold in ascending index order, so any
// experiment built on them produces byte-identical output at workers=1
// and workers=N. Callers using ForEach must follow the same discipline:
// write only to per-index slots, merge serially afterwards.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// override holds the global worker-count override; 0 means automatic
// (GOMAXPROCS).
var override atomic.Int64

// Workers returns the worker count the helpers will use: the -workers
// override when set, otherwise GOMAXPROCS (which itself defaults to
// runtime.NumCPU).
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// SetWorkers overrides the global worker count; n <= 0 restores the
// automatic (GOMAXPROCS) sizing. It returns the previous override (0 if
// automatic) so tests can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int64(n)))
}

// ForEach runs fn(i) for every i in [0, n) on up to Workers()
// goroutines. Indices are handed out atomically, so fn must be safe to
// call concurrently for distinct indices; with one worker everything
// runs inline on the caller's goroutine. A panic in any fn is re-raised
// on the caller's goroutine after the pool drains.
func ForEach(n int, fn func(i int)) {
	forEach(Workers(), n, fn)
}

func forEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
					// Park the index counter past the end so the other
					// workers stop picking up new work.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// RunWorkers runs fn(w) for every w in [0, n) on n dedicated goroutines
// and blocks until all of them return. Unlike ForEach, which hands out
// indices dynamically, each body keeps its worker index for the pool's
// lifetime — the shape long-lived per-worker state (queues, arenas)
// needs. With n == 1 fn runs inline on the caller's goroutine. A panic
// in any fn is re-raised on the caller's goroutine after every worker
// exits.
func RunWorkers(n int, fn func(w int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		fn(0)
		return
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForEachErr is ForEach for index bodies that can fail: it runs every
// index and returns the error of the lowest failing index (deterministic
// regardless of scheduling), or nil.
func ForEachErr(n int, fn func(i int) error) error {
	errs := make([]error, n)
	ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map evaluates fn over [0, n) in parallel and returns the results in
// index order.
func Map[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible bodies; on failure it returns the error of
// the lowest failing index.
func MapErr[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErr(n, func(i int) error {
		v, err := fn(i)
		out[i] = v
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapReduce evaluates mapper over [0, n) in parallel, then folds the
// results serially in ascending index order: acc = reduce(acc, r_0),
// reduce(acc, r_1), ... The serial fold keeps floating-point
// accumulation order — and therefore every derived statistic — identical
// at any worker count.
func MapReduce[T, A any](n int, mapper func(i int) T, acc A, reduce func(A, T) A) A {
	for _, r := range Map(n, mapper) {
		acc = reduce(acc, r)
	}
	return acc
}
