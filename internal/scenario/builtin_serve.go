package scenario

import (
	"context"
	"fmt"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/serve"
	"sentinel3d/internal/ssdsim"
)

// This file registers the "serve" experiment: an in-process flashd
// (serving fleet + QoS layer) driven by a closed-loop flashbench run.
// It is the serving layer's end-to-end determinism cell — the
// closed-loop report is a pure function of the cell seed, so it
// golden-gates in CI exactly like the figures.

func init() {
	Register(Entry{Name: "serve",
		Desc: "in-process read server driven by a closed-loop flashbench run",
		Run:  runServe})
}

// servePremapPages is the fleet's premapped footprint, matched by the
// bench's MaxLPN so every drawn LPN resolves.
const servePremapPages = 4096

// ServeResult is the serve cell's deterministic payload: the stripped
// closed-loop report plus the fleet shape it ran against.
type ServeResult struct {
	Shards  int
	Tenants []serve.TenantReport
}

// Render prints the per-tenant outcome table.
func (r *ServeResult) Render() string {
	rows := make([][]string, 0, len(r.Tenants))
	for _, t := range r.Tenants {
		rows = append(rows, []string{
			t.Tenant, fmt.Sprint(t.Requests), fmt.Sprint(t.OK),
			fmt.Sprint(t.Retries), fmt.Sprint(t.AuxSenses),
			fmt.Sprintf("%.1f", t.SimP50US), fmt.Sprintf("%.1f", t.SimP99US),
			t.Check,
		})
	}
	return experiments.Table(
		[]string{"tenant", "reqs", "ok", "retries", "aux", "sim p50", "sim p99", "check"},
		rows)
}

// runServe brings up the serving stack on a loopback port, runs the
// fixed-seed closed loop against it, drains, and returns the
// deterministic report section as the payload. Wall-clock throughput
// goes to metrics, never the digest.
func runServe(ctx *Ctx) (*Outcome, error) {
	// A CLI-level registry narrower than the fleet's shard count cannot
	// hold per-shard cells; run on a private registry rather than
	// failing the cell (same rule as the replay runner).
	reg := ctx.Obs
	if reg != nil && reg.Shards() < 2 {
		reg = nil
	}
	cfg := serve.Config{
		Fleet: ssdsim.FleetConfig{
			Sim: func() ssdsim.Config {
				sim := ssdsim.DefaultConfig()
				sim.Geo = ftl.Geometry{Channels: 4, ChipsPerChan: 1, DiesPerChip: 2,
					PlanesPerDie: 2, BlocksPerPlane: 32, PagesPerBlock: 192}
				sim.Seed = ctx.Seed
				return sim
			}(),
			Shards:      2,
			PremapPages: servePremapPages,
			Samplers:    serve.DefaultSamplers(),
		},
		// Unlimited rates: closed-loop byte-identity requires that no
		// outcome depends on wall-clock timing, and throttling does.
		Tenants: []serve.TenantConfig{
			{Name: "gold", Tier: 0, SLOMs: 20, Policy: "sentinel", DeadlineMs: 2000},
			{Name: "bronze", Tier: 2, SLOMs: 200, Policy: "table", DeadlineMs: 2000},
		},
		Obs: reg,
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return nil, err
	}
	defer srv.Close()

	bctx := ctx.Context
	if bctx == nil {
		bctx = context.Background()
	}
	reqs := int64(ctx.Requests(400))
	rep, err := serve.RunBench(bctx, serve.BenchConfig{
		BaseURL: "http://" + srv.Addr(),
		Seed:    ctx.Seed,
		MaxLPN:  servePremapPages,
		Tenants: []serve.BenchTenant{
			{Name: "gold", Workers: 4, Requests: reqs, SLOMs: 20},
			{Name: "bronze", Workers: 2, Requests: reqs / 2, BatchSize: 3, SLOMs: 200},
		},
	})
	if err != nil {
		return nil, err
	}
	if err := bctx.Err(); err != nil {
		return nil, fmt.Errorf("serve cell canceled: %w", err)
	}
	if err := rep.AccountingErr(); err != nil {
		return nil, err
	}
	for _, t := range rep.Tenants {
		if t.OK != t.Requests {
			return nil, fmt.Errorf("serve cell: tenant %q %d/%d OK in an unloaded closed loop",
				t.Tenant, t.OK, t.Requests)
		}
	}
	res := &ServeResult{Shards: cfg.Fleet.Shards, Tenants: rep.Deterministic().Tenants}
	return &Outcome{Payload: res, Render: res.Render(), Metrics: map[string]float64{
		"req/s":   sumAchievedRPS(rep),
		"mean-us": meanSimUS(rep),
	}}, nil
}

// sumAchievedRPS totals the tenants' wall-clock throughput.
func sumAchievedRPS(rep *serve.BenchReport) float64 {
	var sum float64
	for _, t := range rep.Tenants {
		sum += t.AchievedRPS
	}
	return sum
}

// meanSimUS averages the tenants' mean simulated service times.
func meanSimUS(rep *serve.BenchReport) float64 {
	if len(rep.Tenants) == 0 {
		return 0
	}
	var sum float64
	for _, t := range rep.Tenants {
		sum += t.SimMeanUS
	}
	return sum / float64(len(rep.Tenants))
}
