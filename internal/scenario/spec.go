// Package scenario is the declarative experiment layer: every run the
// CLIs used to wire by hand through flags — paper figures, robustness
// sweeps, trace replays, characterization benches — is described by a
// Spec (one struct/JSON object per cell naming the experiment, policy,
// workload, fault profile, device geometry, shard/worker count and obs
// settings), looked up in a registry of runners, and executed by a
// matrix runner that expands sweeps into cells, dedupes shared
// preconditioning, fans cells out through internal/parallel with
// deterministic per-cell seed splitting, and emits one machine-readable
// result (benchjson-compatible metrics plus a golden digest) per cell.
//
// The committed matrices live under scenarios/ at the repository root;
// `reproduce -matrix scenarios/paper.json` regenerates the EXPERIMENTS.md
// results with one command, and CI runs the smoke tier cell-group by
// cell-group (see DESIGN.md §10).
package scenario

import (
	"fmt"
	"strings"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/fault"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/trace"
)

// Spec declares one experiment cell. The zero value of every optional
// field means "the registry entry's default", so a minimal cell is just
// {"name": "fig13", "experiment": "fig13"}. Unknown JSON fields are
// rejected by the loader — a typoed axis must fail loudly, not silently
// run the default.
type Spec struct {
	// Name uniquely identifies the cell inside its matrix. It doubles as
	// the benchmark name in the benchjson-compatible output, so it must
	// be non-empty and contain no whitespace, '/' or ':' (those are
	// bench-line and gate-expression metacharacters).
	Name string `json:"name"`
	// Experiment is the registry entry that runs the cell (fig2..fig19,
	// table1, robust, replay, replay-throughput, charlab, ...). See
	// Names() for the full list.
	Experiment string `json:"experiment"`
	// Scale is "quick" (default) or "full" — the fidelity/runtime
	// trade-off of experiments.Scale.
	Scale string `json:"scale,omitempty"`
	// Kind is the cell technology for kind-parameterized experiments:
	// "tlc" (default) or "qlc".
	Kind string `json:"kind,omitempty"`
	// Policy selects the retry policy of replay cells: "table",
	// "sentinel" (default), "fallback" (sentinel wrapped in the static-
	// table guard), "history" (first shot from the offset-history cache,
	// table walk beyond it), "ar2" (pipelined table walk),
	// "sentinel+history" (cache-seeded first shot, sentinel recovery) or
	// "synthetic" (a fixed outcome distribution; no chip is built, so
	// the cell is fast enough for smoke tiers). The history-cache
	// policies sample against a cache deterministically warmed from
	// sentinel inference and then frozen, so their cells golden-gate
	// like every other.
	Policy string `json:"policy,omitempty"`
	// Workload names a built-in MSR-like workload (trace.WorkloadByName)
	// for replay cells; TraceFile overrides it with an MSR-format CSV.
	Workload  string `json:"workload,omitempty"`
	TraceFile string `json:"trace_file,omitempty"`
	// Requests bounds generated traces (default 6000).
	Requests int `json:"requests,omitempty"`
	// Shards is the replay engine's device shard count (default 1). It
	// must divide the device's channel count.
	Shards int `json:"shards,omitempty"`
	// Devices is the replay engine's fleet size (default 1): one trace
	// striped (or, with Replicate, mirrored) across this many devices,
	// each a full copy of the cell's geometry.
	Devices int `json:"devices,omitempty"`
	// Replicate switches a multi-device replay cell from RAID-0 striping
	// to replication (reads round-robin, writes fan out to every device).
	Replicate bool `json:"replicate,omitempty"`
	// Workers pins the worker pool for this cell. 0 (the default)
	// inherits the global pool — results are byte-identical either way;
	// pinning only matters for throughput measurements, and pinned cells
	// run serially after the fanned-out ones so the override cannot leak
	// into concurrent cells.
	Workers int `json:"workers,omitempty"`
	// Seed overrides the cell's derived seed (0 = split from the matrix
	// seed and the cell name; see Matrix.Expand).
	Seed uint64 `json:"seed,omitempty"`
	// PE and Hours set the stress point of chip-backed replay and
	// charlab cells (defaults 5000 P/E, one year).
	PE    int     `json:"pe,omitempty"`
	Hours float64 `json:"hours,omitempty"`
	// Age and Schedule switch a replay cell from frozen stress to
	// dynamic per-block aging (ssdsim.LifetimeConfig): stress evolves
	// during the replay, driven by the trace's own timestamps. Age names
	// the starting lifetime point ("fresh", "mid" or "worn" — the
	// experiments.AgePresets); Schedule the ambient-temperature schedule
	// ("room", "hot" or "diurnal"). Setting either enables the lifetime
	// path; the other defaults to "worn" / "room".
	Age      string `json:"age,omitempty"`
	Schedule string `json:"schedule,omitempty"`
	// TempC is the retention temperature of charlab cells (default 25).
	TempC float64 `json:"temp_c,omitempty"`
	// Wordlines and SweepV parameterize charlab cells: how many
	// wordlines to characterize and which read voltage (1-based) to
	// sweep (0 = none).
	Wordlines int `json:"wordlines,omitempty"`
	SweepV    int `json:"sweep_v,omitempty"`
	// Collect switches replay cells to exact-percentile latency
	// collection (the engine's CollectLatencies mode).
	Collect bool `json:"collect,omitempty"`
	// Device overrides the replay device geometry.
	Device *DeviceSpec `json:"device,omitempty"`
	// Fault injects deterministic faults (chip-level sentinel corruption
	// and sense noise, FTL program/erase failures).
	Fault *FaultSpec `json:"fault,omitempty"`
	// Obs attaches an observability registry to the cell.
	Obs ObsSpec `json:"obs,omitempty"`
	// Golden is the expected result digest. When non-empty the runner
	// fails the cell on any divergence — the same byte-identity contract
	// the read kernel's golden tests enforce.
	Golden string `json:"golden,omitempty"`
}

// DeviceSpec is the JSON shape of an ftl.Geometry override.
type DeviceSpec struct {
	Channels       int `json:"channels"`
	ChipsPerChan   int `json:"chips_per_chan,omitempty"`
	DiesPerChip    int `json:"dies_per_chip,omitempty"`
	PlanesPerDie   int `json:"planes_per_die,omitempty"`
	BlocksPerPlane int `json:"blocks_per_plane,omitempty"`
	PagesPerBlock  int `json:"pages_per_block,omitempty"`
}

// Geometry converts the spec to an ftl.Geometry, filling unset fields
// from the base geometry.
func (d *DeviceSpec) Geometry(base ftl.Geometry) ftl.Geometry {
	if d == nil {
		return base
	}
	g := base
	set := func(dst *int, v int) {
		if v > 0 {
			*dst = v
		}
	}
	set(&g.Channels, d.Channels)
	set(&g.ChipsPerChan, d.ChipsPerChan)
	set(&g.DiesPerChip, d.DiesPerChip)
	set(&g.PlanesPerDie, d.PlanesPerDie)
	set(&g.BlocksPerPlane, d.BlocksPerPlane)
	set(&g.PagesPerBlock, d.PagesPerBlock)
	return g
}

// FaultSpec is the JSON shape of a fault.Profile. The sentinel-region
// bounds are resolved by the runner from the cell's chip configuration
// (the OOB tail), so the spec only carries rates.
type FaultSpec struct {
	// Seed keys every fault decision (default 0xfa17, the CLI default).
	Seed uint64 `json:"seed,omitempty"`
	// StuckRate is the per-cell probability that an OOB (sentinel-
	// region) cell is stuck; StuckHighFraction of those pin above the
	// window (default 1).
	StuckRate         float64 `json:"stuck_rate,omitempty"`
	StuckHighFraction float64 `json:"stuck_high_fraction,omitempty"`
	// OutlierWLRate / BurstRate are chip-level anomaly probabilities
	// (see fault.Profile).
	OutlierWLRate float64 `json:"outlier_wl_rate,omitempty"`
	BurstRate     float64 `json:"burst_rate,omitempty"`
	// ProgramFailRate is the FTL page-program failure probability;
	// EraseFailRate defaults to 4x it, matching the tracesim CLI.
	ProgramFailRate float64 `json:"program_fail_rate,omitempty"`
	EraseFailRate   float64 `json:"erase_fail_rate,omitempty"`
}

// chipProfile builds the chip-level fault profile for a sentinel region
// spanning [start, end) cells, with shift magnitudes scaled by the
// state width sw. Nil when the spec carries no chip-level faults.
func (f *FaultSpec) chipProfile(start, end int, sw float64) (*fault.Injector, error) {
	if f == nil || (f.StuckRate == 0 && f.OutlierWLRate == 0 && f.BurstRate == 0) {
		return nil, nil
	}
	hi := f.StuckHighFraction
	if hi == 0 {
		hi = 1
	}
	return fault.New(fault.Profile{
		Seed:              f.seed(),
		SentinelStuckRate: f.StuckRate,
		SentinelRegion:    [2]int{start, end},
		StuckHighFraction: hi,
		OutlierWLRate:     f.OutlierWLRate,
		OutlierShift:      0.5 * sw,
		BurstRate:         f.BurstRate,
		BurstSigma:        0.25 * sw,
	})
}

// ftlFaults builds the FTL program/erase fault model (nil when unused).
func (f *FaultSpec) ftlFaults() (ftl.PEFaultModel, error) {
	if f == nil || (f.ProgramFailRate == 0 && f.EraseFailRate == 0) {
		return nil, nil
	}
	erase := f.EraseFailRate
	if erase == 0 {
		erase = 4 * f.ProgramFailRate
	}
	return fault.New(fault.Profile{
		Seed:               f.seed(),
		FTLProgramFailRate: f.ProgramFailRate,
		FTLEraseFailRate:   erase,
	})
}

func (f *FaultSpec) seed() uint64 {
	if f.Seed != 0 {
		return f.Seed
	}
	return 0xfa17
}

// key returns the dedup-signature fragment of the fault spec.
func (f *FaultSpec) key() string {
	if f == nil {
		return "-"
	}
	return fmt.Sprintf("%d/%g/%g/%g/%g/%g/%g", f.seed(), f.StuckRate,
		f.StuckHighFraction, f.OutlierWLRate, f.BurstRate,
		f.ProgramFailRate, f.EraseFailRate)
}

// ObsSpec declares the cell's observability settings.
type ObsSpec struct {
	// Metrics attaches an obs registry (sharded to match the cell's
	// shard count) and reports its deterministic snapshot size in the
	// cell metrics.
	Metrics bool `json:"metrics,omitempty"`
	// SlowN is the per-shard slow-read ring size (default 0 = off).
	SlowN int `json:"slow_n,omitempty"`
}

// Validate checks the spec against the registry. It is called by the
// loader for every expanded cell, so a committed scenario file cannot
// name an experiment, workload, policy or kind that does not exist.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: cell with empty name (experiment %q)", s.Experiment)
	}
	if strings.ContainsAny(s.Name, " \t\n/:") {
		return fmt.Errorf("scenario: cell name %q contains whitespace, '/' or ':'", s.Name)
	}
	if _, err := Lookup(s.Experiment); err != nil {
		return fmt.Errorf("scenario: cell %q: %w", s.Name, err)
	}
	switch s.Scale {
	case "", "quick", "full":
	default:
		return fmt.Errorf("scenario: cell %q: unknown scale %q", s.Name, s.Scale)
	}
	switch s.Kind {
	case "", "tlc", "qlc":
	default:
		return fmt.Errorf("scenario: cell %q: unknown kind %q", s.Name, s.Kind)
	}
	switch s.Policy {
	case "", "table", "sentinel", "fallback", "synthetic",
		"history", "ar2", "sentinel+history":
	default:
		return fmt.Errorf("scenario: cell %q: unknown policy %q", s.Name, s.Policy)
	}
	if s.Age != "" {
		if _, ok := experiments.AgeByName(s.Age); !ok {
			return fmt.Errorf("scenario: cell %q: unknown age %q", s.Name, s.Age)
		}
	}
	if s.Schedule != "" {
		if _, ok := experiments.ScheduleByName(s.Schedule); !ok {
			return fmt.Errorf("scenario: cell %q: unknown schedule %q", s.Name, s.Schedule)
		}
	}
	if s.Workload != "" {
		if _, err := trace.WorkloadByName(s.Workload); err != nil {
			return fmt.Errorf("scenario: cell %q: %w", s.Name, err)
		}
	}
	if s.Requests < 0 || s.Shards < 0 || s.Devices < 0 || s.Workers < 0 || s.PE < 0 ||
		s.Hours < 0 || s.Wordlines < 0 || s.SweepV < 0 || s.Obs.SlowN < 0 {
		return fmt.Errorf("scenario: cell %q: negative count", s.Name)
	}
	if f := s.Fault; f != nil {
		for _, r := range []float64{f.StuckRate, f.StuckHighFraction,
			f.OutlierWLRate, f.BurstRate, f.ProgramFailRate, f.EraseFailRate} {
			if r < 0 || r > 1 {
				return fmt.Errorf("scenario: cell %q: fault rate %g outside [0,1]", s.Name, r)
			}
		}
	}
	if d := s.Device; d != nil {
		for _, n := range []int{d.Channels, d.ChipsPerChan, d.DiesPerChip,
			d.PlanesPerDie, d.BlocksPerPlane, d.PagesPerBlock} {
			if n < 0 {
				return fmt.Errorf("scenario: cell %q: negative device dimension", s.Name)
			}
		}
	}
	return nil
}
