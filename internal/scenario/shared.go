package scenario

import (
	"sync"
	"sync/atomic"
)

// Shared dedupes expensive preconditioning across the cells of one
// matrix run: training a sentinel model, building and aging an
// evaluation chip, and sampling per-policy retry distributions are
// deterministic in their inputs and dominate cell setup time, so cells
// whose signatures agree share one execution instead of repeating it.
//
// Do is safe for concurrent callers (the matrix runner fans cells out
// through internal/parallel); each key's builder runs exactly once and
// its value — or its error — is returned to every caller.
type Shared struct {
	mu      sync.Mutex
	entries map[string]*sharedEntry
	execs   atomic.Int64
}

type sharedEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewShared returns an empty cache.
func NewShared() *Shared { return &Shared{entries: map[string]*sharedEntry{}} }

// Do returns the cached value for key, running build at most once per
// key across all goroutines. Errors are cached too: a failed
// precondition fails every cell that shares it, identically.
func (s *Shared) Do(key string, build func() (any, error)) (any, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		e = &sharedEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		s.execs.Add(1)
		e.val, e.err = build()
	})
	return e.val, e.err
}

// Executions reports how many distinct builders actually ran — the
// dedup test asserts this stays at the number of distinct signatures,
// not the number of cells.
func (s *Shared) Executions() int64 { return s.execs.Load() }
