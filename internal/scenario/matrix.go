package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"sentinel3d/internal/mathx"
)

// Matrix is the JSON document committed under scenarios/: explicit
// cells plus sweep blocks that expand into cross-product cells, all
// inheriting unset fields from Defaults.
type Matrix struct {
	// Name labels the matrix in reports and artifact paths.
	Name string `json:"name"`
	// Seed is the matrix-level seed; every cell without a pinned seed
	// derives its own by mixing this with its name (so adding, removing
	// or filtering cells never changes another cell's stream). 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Defaults seeds every cell's unset fields.
	Defaults Spec `json:"defaults,omitempty"`
	// Cells are explicit, fully-named cells.
	Cells []Spec `json:"cells,omitempty"`
	// Sweep blocks expand into the cross product of their axis lists.
	Sweep []Axes `json:"sweep,omitempty"`
	// Golden maps expanded cell names to expected digests — the byte-
	// identity gate for sweep-generated cells (explicit cells usually
	// carry their digest inline).
	Golden map[string]string `json:"golden,omitempty"`
}

// Axes is one sweep block. Each listed axis contributes one factor to
// the cross product; unlisted axes come from the block's Base (then the
// matrix defaults). Expanded names are the base name (or experiment)
// joined with each listed axis value, "_"-separated.
type Axes struct {
	// Base seeds every cell of the block; its Name (optional) prefixes
	// the generated names.
	Base Spec `json:"base,omitempty"`
	// Experiment, Scale, Kind, Policy, Workload, Age and Schedule are
	// value axes.
	Experiment []string `json:"experiment,omitempty"`
	Scale      []string `json:"scale,omitempty"`
	Kind       []string `json:"kind,omitempty"`
	Policy     []string `json:"policy,omitempty"`
	Workload   []string `json:"workload,omitempty"`
	Age        []string `json:"age,omitempty"`
	Schedule   []string `json:"schedule,omitempty"`
	// Shards, Devices and Requests are numeric axes ("s<N>" / "d<N>" /
	// "r<N>" name parts).
	Shards   []int `json:"shards,omitempty"`
	Devices  []int `json:"devices,omitempty"`
	Requests []int `json:"requests,omitempty"`
}

// Parse decodes a matrix document strictly: unknown fields anywhere in
// the document are errors, so a typoed axis fails the load instead of
// silently running defaults.
func Parse(data []byte) (*Matrix, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Matrix
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// Trailing garbage after the document is a malformed file.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after matrix document")
	}
	if m.Name == "" {
		return nil, fmt.Errorf("scenario: matrix without a name")
	}
	return &m, nil
}

// Load reads and parses a matrix file.
func Load(path string) (*Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// Expand resolves the matrix into its validated cell list: explicit
// cells first (in order), then each sweep block's cross product in
// lexicographic axis order. Every cell gets defaults applied, a unique
// name, a golden digest if the matrix maps one, and a deterministic
// seed split from the matrix seed and the cell name.
func (m *Matrix) Expand() ([]Spec, error) {
	var cells []Spec
	for i, c := range m.Cells {
		cell := mergeSpec(c, m.Defaults)
		if cell.Name == "" {
			cell.Name = cell.Experiment
		}
		if cell.Name == "" {
			return nil, fmt.Errorf("scenario: matrix %q: cell %d has no name or experiment", m.Name, i)
		}
		cells = append(cells, cell)
	}
	for bi := range m.Sweep {
		expanded, err := m.Sweep[bi].expand(m.Defaults)
		if err != nil {
			return nil, fmt.Errorf("scenario: matrix %q: sweep %d: %w", m.Name, bi, err)
		}
		cells = append(cells, expanded...)
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("scenario: matrix %q expands to no cells", m.Name)
	}
	seed := m.Seed
	if seed == 0 {
		seed = 1
	}
	seen := map[string]bool{}
	for i := range cells {
		c := &cells[i]
		if g, ok := m.Golden[c.Name]; ok && c.Golden == "" {
			c.Golden = g
		}
		if c.Seed == 0 {
			c.Seed = SplitSeed(seed, c.Name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("scenario: matrix %q: duplicate cell name %q", m.Name, c.Name)
		}
		seen[c.Name] = true
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	for name := range m.Golden {
		if !seen[name] {
			return nil, fmt.Errorf("scenario: matrix %q: golden digest for unknown cell %q", m.Name, name)
		}
	}
	return cells, nil
}

// SplitSeed derives a cell's seed from the matrix seed and the cell
// name. Name-keyed (not index-keyed) splitting means filtering a matrix
// down to a subset — as the CI cell groups do — cannot change any
// surviving cell's stream.
func SplitSeed(matrixSeed uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return mathx.Mix3(matrixSeed, h.Sum64(), 0x5eed)
}

// expand builds one sweep block's cross product.
func (a *Axes) expand(defaults Spec) ([]Spec, error) {
	type axis struct {
		n     int
		apply func(c *Spec, i int) string // returns the name part
	}
	strAxis := func(vals []string, set func(*Spec, string), prefix string) axis {
		return axis{n: len(vals), apply: func(c *Spec, i int) string {
			set(c, vals[i])
			return prefix + vals[i]
		}}
	}
	intAxis := func(vals []int, set func(*Spec, int), prefix string) axis {
		return axis{n: len(vals), apply: func(c *Spec, i int) string {
			set(c, vals[i])
			return fmt.Sprintf("%s%d", prefix, vals[i])
		}}
	}
	axes := []axis{
		strAxis(a.Experiment, func(c *Spec, v string) { c.Experiment = v }, ""),
		strAxis(a.Scale, func(c *Spec, v string) { c.Scale = v }, ""),
		strAxis(a.Kind, func(c *Spec, v string) { c.Kind = v }, ""),
		strAxis(a.Policy, func(c *Spec, v string) { c.Policy = v }, ""),
		strAxis(a.Workload, func(c *Spec, v string) { c.Workload = v }, ""),
		strAxis(a.Age, func(c *Spec, v string) { c.Age = v }, ""),
		strAxis(a.Schedule, func(c *Spec, v string) { c.Schedule = v }, ""),
		intAxis(a.Shards, func(c *Spec, v int) { c.Shards = v }, "s"),
		intAxis(a.Devices, func(c *Spec, v int) { c.Devices = v }, "d"),
		intAxis(a.Requests, func(c *Spec, v int) { c.Requests = v }, "r"),
	}
	total := 1
	for _, ax := range axes {
		if ax.n > 0 {
			total *= ax.n
		}
	}
	if total > 4096 {
		return nil, fmt.Errorf("cross product of %d cells is implausibly large", total)
	}
	out := make([]Spec, 0, total)
	idx := make([]int, len(axes))
	for {
		cell := mergeSpec(a.Base, defaults)
		name := cell.Name
		for ai, ax := range axes {
			if ax.n == 0 {
				continue
			}
			part := ax.apply(&cell, idx[ai])
			if name == "" {
				name = part
			} else {
				name += "_" + part
			}
		}
		if name == "" {
			return nil, fmt.Errorf("block with no name, experiment or axes")
		}
		cell.Name = name
		out = append(out, cell)
		// Odometer increment, last axis fastest.
		ai := len(axes) - 1
		for ; ai >= 0; ai-- {
			if axes[ai].n == 0 {
				continue
			}
			idx[ai]++
			if idx[ai] < axes[ai].n {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			return out, nil
		}
	}
}

// mergeSpec fills c's unset fields from def. Only fields whose zero
// value means "default" participate; booleans merge with OR (a default
// of true cannot be turned off per cell, so defaults should carry only
// opt-ins).
func mergeSpec(c, def Spec) Spec {
	if c.Experiment == "" {
		c.Experiment = def.Experiment
	}
	if c.Scale == "" {
		c.Scale = def.Scale
	}
	if c.Kind == "" {
		c.Kind = def.Kind
	}
	if c.Policy == "" {
		c.Policy = def.Policy
	}
	if c.Workload == "" {
		c.Workload = def.Workload
	}
	if c.TraceFile == "" {
		c.TraceFile = def.TraceFile
	}
	if c.Requests == 0 {
		c.Requests = def.Requests
	}
	if c.Shards == 0 {
		c.Shards = def.Shards
	}
	if c.Devices == 0 {
		c.Devices = def.Devices
	}
	c.Replicate = c.Replicate || def.Replicate
	if c.Workers == 0 {
		c.Workers = def.Workers
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
	if c.PE == 0 {
		c.PE = def.PE
	}
	if c.Hours == 0 {
		c.Hours = def.Hours
	}
	if c.Age == "" {
		c.Age = def.Age
	}
	if c.Schedule == "" {
		c.Schedule = def.Schedule
	}
	if c.TempC == 0 {
		c.TempC = def.TempC
	}
	if c.Wordlines == 0 {
		c.Wordlines = def.Wordlines
	}
	if c.SweepV == 0 {
		c.SweepV = def.SweepV
	}
	c.Collect = c.Collect || def.Collect
	if c.Device == nil {
		c.Device = def.Device
	}
	if c.Fault == nil {
		c.Fault = def.Fault
	}
	c.Obs.Metrics = c.Obs.Metrics || def.Obs.Metrics
	if c.Obs.SlowN == 0 {
		c.Obs.SlowN = def.Obs.SlowN
	}
	return c
}
