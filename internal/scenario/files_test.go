package scenario

import (
	"path/filepath"
	"testing"
)

// TestCommittedMatrices guards the files under scenarios/: every
// committed matrix must parse strictly, expand into validated cells,
// and reference only known cells from its golden map. (Running them is
// the scenario-matrix CI job's business, not this test's.)
func TestCommittedMatrices(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "scenarios", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("found %d committed matrices, want at least paper+smoke", len(paths))
	}
	for _, path := range paths {
		m, err := Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		cells, err := m.Expand()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(cells) == 0 {
			t.Errorf("%s: expands to no cells", path)
		}
		if len(m.Golden) == 0 {
			t.Errorf("%s: carries no golden digests", path)
		}
	}
	// The paper matrix must keep covering the full `-exp all` set: every
	// InAll registry entry appears as some cell's experiment.
	m, err := Load(filepath.Join("..", "..", "scenarios", "paper.json"))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, c := range cells {
		have[c.Experiment] = true
	}
	for _, e := range Entries() {
		if e.InAll && !have[e.Name] {
			t.Errorf("paper.json misses -exp all experiment %q", e.Name)
		}
	}
}
