package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzScenarioSpec fuzzes the matrix loader: Parse must never panic on
// arbitrary bytes, and any document it accepts must survive a
// validate-then-reencode round trip — re-parsing our own encoding
// succeeds and is a fixpoint (so committed scenario files can be
// rewritten mechanically without drift).
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(`{"name":"m","cells":[{"name":"fig13","experiment":"fig13"}]}`))
	f.Add([]byte(`{"name":"m","seed":7,"defaults":{"scale":"quick","requests":100},` +
		`"sweep":[{"base":{"experiment":"replay","policy":"synthetic"},` +
		`"workload":["hm_0","prxy_0"],"shards":[1,2]}]}`))
	f.Add([]byte(`{"name":"m","cells":[{"name":"x","experiment":"replay",` +
		`"fault":{"stuck_rate":0.01},"device":{"channels":2},"obs":{"metrics":true}}],` +
		`"golden":{"x":"abcd"}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"name":"m"} trailing`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		enc1, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("accepted document does not re-encode: %v", err)
		}
		m2, err := Parse(enc1)
		if err != nil {
			t.Fatalf("own encoding rejected: %v\n%s", err, enc1)
		}
		enc2, err := json.Marshal(m2)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("re-encode not a fixpoint:\n%s\n%s", enc1, enc2)
		}
		// Expansion on arbitrary accepted input must fail cleanly or
		// yield validated cells — never panic.
		if cells, err := m.Expand(); err == nil {
			for _, c := range cells {
				if err := c.Validate(); err != nil {
					t.Fatalf("Expand emitted invalid cell %q: %v", c.Name, err)
				}
			}
		}
	})
}
