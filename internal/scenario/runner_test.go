package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// syntheticMatrix is a fast all-synthetic replay matrix used by several
// tests (no chip is built).
func syntheticMatrix() *Matrix {
	return &Matrix{
		Name:     "test",
		Defaults: Spec{Scale: "quick", Policy: "synthetic", Requests: 2000},
		Sweep: []Axes{{
			Base:     Spec{Experiment: "replay"},
			Workload: []string{"hm_0", "prxy_0"},
			Shards:   []int{1, 2},
		}},
	}
}

func TestRunSyntheticReplay(t *testing.T) {
	dir := t.TempDir()
	var bench bytes.Buffer
	res, err := Run(syntheticMatrix(), RunOptions{ResultsDir: dir, BenchWriter: &bench})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("ran %d cells, want 4", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Errorf("cell %s failed: %s", c.Name, c.Err)
		}
		if c.Digest == "" {
			t.Errorf("cell %s has no digest", c.Name)
		}
		if c.Metrics["req/s"] <= 0 {
			t.Errorf("cell %s has no req/s metric", c.Name)
		}
		if !strings.Contains(c.Render, c.Name[:4]) && !strings.Contains(c.Render, "workload") {
			t.Errorf("cell %s render looks wrong: %q", c.Name, c.Render)
		}
	}
	// The two shard counts of one workload replay different device
	// splits, so their digests must differ; the same cell re-run must
	// not (covered by the determinism test).
	if res.Cells[0].Digest == res.Cells[1].Digest {
		t.Errorf("shards=1 and shards=2 digests equal: %s", res.Cells[0].Digest)
	}

	// Per-cell JSON artifacts plus the matrix summary.
	var cell CellResult
	data, err := os.ReadFile(filepath.Join(dir, "hm_0_s1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &cell); err != nil {
		t.Fatal(err)
	}
	if cell.Name != "hm_0_s1" || cell.Digest != res.Cells[0].Digest {
		t.Errorf("cell artifact mismatch: %+v", cell)
	}
	var sum MatrixResult
	data, err = os.ReadFile(filepath.Join(dir, "matrix.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Cells) != 4 {
		t.Errorf("matrix summary has %d cells", len(sum.Cells))
	}

	// Bench lines parse as go test -bench output: one per cell with the
	// custom req/s metric.
	lines := strings.Split(strings.TrimSpace(bench.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d bench lines, want 4:\n%s", len(lines), bench.String())
	}
	if !strings.HasPrefix(lines[0], "Benchmarkhm_0_s1") || !strings.Contains(lines[0], "req/s") {
		t.Errorf("bench line: %q", lines[0])
	}
}

func TestGoldenGate(t *testing.T) {
	m := syntheticMatrix()
	m.Golden = map[string]string{
		"hm_0_s1":   "0000000000000000", // wrong on purpose
		"prxy_0_s2": "1111111111111111", // wrong on purpose
	}
	res, err := Run(m, RunOptions{})
	if err == nil {
		t.Fatal("golden mismatches did not fail the run")
	}
	// Both mismatches are reported — failures accumulate, they don't
	// stop at the first cell.
	for _, name := range []string{"hm_0_s1", "prxy_0_s2"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not mention %s: %v", name, err)
		}
	}
	if got := len(res.Failed()); got != 2 {
		t.Errorf("%d failed cells, want 2", got)
	}
	// The other cells still ran and digested.
	for _, c := range res.Cells {
		if c.Golden == "" && (c.Err != "" || c.Digest == "") {
			t.Errorf("unaffected cell %s: %+v", c.Name, c)
		}
	}

	// Re-running with the digests the run reported must pass.
	m.Golden = map[string]string{}
	for _, c := range res.Cells {
		m.Golden[c.Name] = c.Digest
	}
	if _, err := Run(m, RunOptions{}); err != nil {
		t.Fatalf("run with recorded goldens failed: %v", err)
	}
}

func TestGoldenOnVolatileRejected(t *testing.T) {
	m := &Matrix{Name: "t", Cells: []Spec{{
		Name: "rt", Experiment: "replay-throughput", Requests: 500,
		Golden: "abcd",
	}}}
	_, err := Run(m, RunOptions{})
	if err == nil || !strings.Contains(err.Error(), "volatile") {
		t.Errorf("volatile golden: got %v", err)
	}
}

func TestRunFilter(t *testing.T) {
	m := syntheticMatrix()
	res, err := Run(m, RunOptions{Filter: mustRe(t, `^hm_0_`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("filter kept %d cells, want 2", len(res.Cells))
	}
	if _, err := Run(m, RunOptions{Filter: mustRe(t, `^zzz`)}); err == nil {
		t.Error("empty filter result did not error")
	}
}

// TestFilterKeepsSeeds asserts the CI property the name-keyed seed
// split exists for: running a cell alone yields the same digest as
// running it inside the full matrix.
func TestFilterKeepsSeeds(t *testing.T) {
	m := syntheticMatrix()
	full, err := Run(m, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(m, RunOptions{Filter: mustRe(t, `^prxy_0_s2$`)})
	if err != nil {
		t.Fatal(err)
	}
	var want CellResult
	for _, c := range full.Cells {
		if c.Name == "prxy_0_s2" {
			want = c
		}
	}
	if one.Cells[0].Digest != want.Digest {
		t.Errorf("filtered digest %s != full-matrix digest %s",
			one.Cells[0].Digest, want.Digest)
	}
}

// TestPreconditionDedup asserts chip-backed cells share their expensive
// setup: three cells over two policies build one chip prep and two
// samplers — three shared executions, not one per cell (and nothing
// shared leaks between policies: the digests differ).
func TestPreconditionDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a chip; skipped in -short")
	}
	m := &Matrix{
		Name:     "dedup",
		Defaults: Spec{Scale: "quick", Requests: 1000},
		Cells: []Spec{
			{Name: "a", Experiment: "replay", Policy: "sentinel", Workload: "hm_0"},
			{Name: "b", Experiment: "replay", Policy: "sentinel", Workload: "prxy_0"},
			{Name: "c", Experiment: "replay", Policy: "table", Workload: "hm_0"},
		},
	}
	res, err := Run(m, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrecondExecutions != 3 {
		t.Errorf("%d precondition executions, want 3 (1 chip prep + 2 samplers)",
			res.PrecondExecutions)
	}
	if res.Cells[0].Digest == res.Cells[2].Digest {
		t.Error("sentinel and table cells share a digest; policies leaked")
	}
	for _, c := range res.Cells {
		if c.Metrics["msb-retries"] <= 0 {
			t.Errorf("cell %s has no msb-retries metric", c.Name)
		}
	}
}

func TestRunCellCharlab(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a chip; skipped in -short")
	}
	res, err := RunCell(Spec{
		Name: "bench", Experiment: "charlab", Kind: "tlc",
		Wordlines: 2, PE: 1000, Hours: 100, SweepV: 2, Seed: 1,
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"chip:", "stress:", "RBER", "error-vs-offset sweep"} {
		if !strings.Contains(res.Render, want) {
			t.Errorf("charlab render missing %q:\n%s", want, res.Render)
		}
	}
	if res.Metrics["wordlines"] != 2 {
		t.Errorf("wordlines metric %v", res.Metrics)
	}
}

func mustRe(t *testing.T, expr string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

// TestRunCanceled: a canceled run marks unstarted cells instead of
// executing them, still emits the result artifacts, and reports the
// cancellation through the returned error — the CLI SIGINT contract.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	res, err := Run(syntheticMatrix(), RunOptions{Ctx: ctx, ResultsDir: dir})
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	if res == nil || len(res.Cells) != 4 {
		t.Fatalf("canceled run results: %+v", res)
	}
	for _, c := range res.Cells {
		if c.Err != "canceled before start" {
			t.Errorf("cell %s: err %q, want canceled before start", c.Name, c.Err)
		}
	}
	// The partial artifacts still flushed.
	if _, err := os.Stat(filepath.Join(dir, "matrix.json")); err != nil {
		t.Errorf("canceled run wrote no matrix summary: %v", err)
	}
}
