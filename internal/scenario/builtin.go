package scenario

import (
	"fmt"
	"strings"
	"time"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

// renderer is the shape every experiments result satisfies.
type renderer interface{ Render() string }

// outcomeOf wraps an experiments result into an Outcome.
func outcomeOf(r renderer, err error) (*Outcome, error) {
	if err != nil {
		return nil, err
	}
	return &Outcome{Payload: r, Render: r.Render()}, nil
}

// figure registers a plain figure experiment.
func figure(name, desc string, fn func(experiments.Scale) (renderer, error)) {
	Register(Entry{Name: name, Desc: desc, InAll: true,
		Run: func(ctx *Ctx) (*Outcome, error) { return outcomeOf(fn(ctx.Scale)) }})
}

// kindFigure registers a kind-parameterized figure experiment.
func kindFigure(name, desc string, fn func(experiments.Scale, flash.Kind) (renderer, error)) {
	Register(Entry{Name: name, Desc: desc, InAll: true, PerKind: true,
		Run: func(ctx *Ctx) (*Outcome, error) { return outcomeOf(fn(ctx.Scale, ctx.Kind())) }})
}

// The registration order is the order `-exp all` (and a full matrix
// run) executes in — it matches the pre-registry CLI dispatch.
func init() {
	figure("fig2", "bit errors vs read-voltage offset", func(s experiments.Scale) (renderer, error) {
		return experiments.Fig2ErrorVsOffset(s)
	})
	kindFigure("fig3", "per-layer RBER, default vs optimal voltages", func(s experiments.Scale, k flash.Kind) (renderer, error) {
		return experiments.Fig3LayerRBER(s, k)
	})
	figure("fig45", "temperature impact after one hour", func(s experiments.Scale) (renderer, error) {
		return experiments.Fig45Temperature(s)
	})
	figure("fig6", "optimal offsets across layers", func(s experiments.Scale) (renderer, error) {
		return experiments.Fig6LayerOptima(s)
	})
	Register(Entry{Name: "fig7", Desc: "bit-error position map", InAll: true,
		Run: func(ctx *Ctx) (*Outcome, error) {
			r, err := experiments.Fig7ErrorMap(ctx.Scale)
			if err != nil {
				return nil, err
			}
			// Fig7Result.Map is a nested pointer; digesting the result
			// itself would hash its heap address. Flatten it.
			payload := struct {
				Map               charlab.ErrorMap
				UniformityChi2    float64
				WordlineVariation float64
			}{*r.Map, r.UniformityChi2, r.WordlineVariation}
			return &Outcome{Payload: payload, Render: r.Render()}, nil
		}})
	figure("fig8", "correlation of per-voltage optima", func(s experiments.Scale) (renderer, error) {
		return experiments.Fig8Correlation(s)
	})
	kindFigure("fig10", "f(d) fit and inference validation", func(s experiments.Scale, k flash.Kind) (renderer, error) {
		return experiments.Fig10InferenceFit(s, k)
	})
	kindFigure("table1", "prediction error vs sentinel ratio", func(s experiments.Scale, k flash.Kind) (renderer, error) {
		return experiments.Table1SentinelRatio(s, k)
	})
	figure("fig12", "state-change counts around the optimum", func(s experiments.Scale) (renderer, error) {
		return experiments.Fig12StateChange(s)
	})
	figure("fig13", "read retries, current flash vs sentinel", func(s experiments.Scale) (renderer, error) {
		return experiments.Fig13RetryCount(s)
	})
	Register(Entry{Name: "fig14", Desc: "trace-driven read-latency reduction", InAll: true,
		Run: func(ctx *Ctx) (*Outcome, error) {
			return outcomeOf(experiments.Fig14TraceLatency(ctx.Scale, ctx.Requests(6000)))
		}})
	kindFigure("errcomp", "per-voltage errors and success rates (figs 15-18)", func(s experiments.Scale, k flash.Kind) (renderer, error) {
		return experiments.ErrorComparison(s, k)
	})
	figure("fig19", "LDPC decoding success", func(s experiments.Scale) (renderer, error) {
		return experiments.Fig19LDPC(s)
	})
	figure("robust", "sentinel corruption sweep (graceful degradation)", func(s experiments.Scale) (renderer, error) {
		return experiments.CorruptionSweep(s)
	})
	figure("ablation-placement", "sentinel placement ablation", func(s experiments.Scale) (renderer, error) {
		return experiments.AblatePlacement(s, flash.QLC)
	})
	figure("ablation-tempbands", "temperature-band ablation", func(s experiments.Scale) (renderer, error) {
		return experiments.TempBandExperiment(s)
	})
	figure("ablation-delta", "calibration-delta ablation", func(s experiments.Scale) (renderer, error) {
		return experiments.AblateCalibrationDelta(s)
	})
	figure("ablation-combined", "combined ablation", func(s experiments.Scale) (renderer, error) {
		return experiments.AblateCombined(s)
	})
	Register(Entry{Name: "adaptive", Desc: "adaptive first-shot reads: table/sentinel vs ar2/history caches", InAll: true,
		Run: func(ctx *Ctx) (*Outcome, error) {
			return outcomeOf(experiments.Adaptive(ctx.Scale, ctx.Requests(6000)))
		}})
	Register(Entry{Name: "lifetime", Desc: "device-lifetime sweep: dynamic aging replay, sentinel vs table per age and temperature schedule", InAll: true,
		Run: func(ctx *Ctx) (*Outcome, error) {
			return outcomeOf(experiments.Lifetime(ctx.Scale, ctx.Requests(6000)))
		}})
	Register(Entry{Name: "replay", Desc: "sharded streaming trace replay under one retry policy",
		Run: runReplay})
	Register(Entry{Name: "replay-throughput", Desc: "replay engine scaling table (wall-clock; never golden-gated)",
		Run: func(ctx *Ctx) (*Outcome, error) {
			r, err := experiments.ReplayThroughput(ctx.Requests(6000))
			if err != nil {
				return nil, err
			}
			best := 0.0
			for _, row := range r.Rows {
				if row.ReqPerSec > best {
					best = row.ReqPerSec
				}
			}
			return &Outcome{Payload: r, Render: r.Render(), Volatile: true,
				Metrics: map[string]float64{"req/s": best}}, nil
		}})
	Register(Entry{Name: "charlab", Desc: "chip characterization bench (RBER table, optima, sweeps)",
		PerKind: true, Run: runCharlab})
}

// defaultReplayGeometry is the 4-channel device tracesim has always
// replayed against; cells override it with a DeviceSpec.
func defaultReplayGeometry() ftl.Geometry {
	return ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
}

// chipPrep is the shared preconditioning of chip-backed replay cells:
// a trained model, an aged evaluation chip, its retry controller and
// the static-table policy. Cells differing only in policy, workload,
// shard count or request count share one chipPrep.
type chipPrep struct {
	cfg   flash.Config
	chip  *flash.Chip
	ctl   *retry.Controller
	eng   *retrySentinel
	table *retry.DefaultTablePolicy
	wls   []int
}

// retrySentinel bundles the sentinel engine so chipPrep stays a single
// value in the shared cache.
type retrySentinel struct{ eng *retry.SentinelPolicy }

// prepKey is the dedup signature of the chip-level preconditioning.
// The seeds below are fixed (like every experiment's internal seeds),
// so the signature is a pure function of the declared axes — which is
// exactly what lets cells share it.
func prepKey(scale string, kind flash.Kind, pe int, hours float64, f *FaultSpec) string {
	return fmt.Sprintf("chipprep/%s/%v/pe%d/h%g/%s", scale, kind, pe, hours, f.key())
}

// replayStress resolves a replay/charlab cell's stress point: PE==0 and
// Hours==0 mean the tracesim defaults (5000 cycles, one year).
func replayStress(spec Spec) (int, float64) {
	pe, hours := spec.PE, spec.Hours
	if pe == 0 {
		pe = 5000
	}
	if hours == 0 {
		hours = physics.YearHours
	}
	return pe, hours
}

// buildChipPrep mirrors the tracesim CLI's chip-level setup: train on
// chip 1, evaluate on an aged chip 2, corrupt the sentinel region when
// the spec says so. Sampling seeds stay fixed per policy so every cell
// sharing the prep sees identical distributions.
func buildChipPrep(ctx *Ctx) (*chipPrep, error) {
	pe, hours := replayStress(ctx.Spec)
	return buildChipPrepAt(ctx, pe, hours)
}

// buildChipPrepAt is buildChipPrep at an explicit stress point — the
// lifetime path measures several retention points per cell (including
// P/E 0, which replayStress would remap to the frozen default).
func buildChipPrepAt(ctx *Ctx, pe int, hours float64) (*chipPrep, error) {
	// Preconditioning is shared across cells, so it must not write to any
	// single cell's registry.
	scale := ctx.Scale
	scale.Obs = nil
	kind := ctx.Kind()
	key := prepKey(scale.Name, kind, pe, hours, ctx.Spec.Fault)
	v, err := ctx.Shared.Do(key, func() (any, error) {
		model, err := scale.TrainModel(kind, 1)
		if err != nil {
			return nil, err
		}
		cfg := scale.ChipConfig(kind, 2)
		eng, err := scale.Engine(model, cfg)
		if err != nil {
			return nil, err
		}
		chip, err := scale.BuildEvalChip(kind, 2, eng, pe, hours)
		if err != nil {
			return nil, err
		}
		ctl, err := scale.Controller(chip, scale.MaxRetries)
		if err != nil {
			return nil, err
		}
		if inj, err := ctx.Spec.Fault.chipProfile(cfg.UserCells(), cfg.CellsPerWordline,
			chip.Model().P.StateWidth); err != nil {
			return nil, err
		} else if inj != nil {
			chip.SetFaults(inj)
		}
		var wls []int
		for wl := 0; wl < cfg.WordlinesPerBlock(); wl += 2 {
			wls = append(wls, wl)
		}
		return &chipPrep{
			cfg: cfg, chip: chip, ctl: ctl,
			eng:   &retrySentinel{eng: retry.NewSentinelPolicy(eng)},
			table: retry.NewDefaultTable(chip, scale.TableStep),
			wls:   wls,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*chipPrep), nil
}

// samplerFor resolves the cell's retry-outcome sampler, sharing both
// the chip preconditioning and the per-policy sampling across cells.
func samplerFor(ctx *Ctx) (*ssdsim.EmpiricalSampler, error) {
	pe, hours := replayStress(ctx.Spec)
	return samplerAt(ctx, pe, hours)
}

// samplerAt is samplerFor at an explicit stress point.
func samplerAt(ctx *Ctx, pe int, hours float64) (*ssdsim.EmpiricalSampler, error) {
	policy := ctx.Spec.Policy
	if policy == "" {
		policy = "sentinel"
	}
	if policy == "synthetic" {
		return experiments.SyntheticSampler(), nil
	}
	prep, err := buildChipPrepAt(ctx, pe, hours)
	if err != nil {
		return nil, err
	}
	key := prepKey(ctx.Scale.Name, ctx.Kind(), pe, hours, ctx.Spec.Fault) + "/sampler/" + policy
	v, err := ctx.Shared.Do(key, func() (any, error) {
		var pol retry.Policy
		var seed uint64
		switch policy {
		case "table":
			pol, seed = prep.table, 11
		case "sentinel":
			pol, seed = prep.eng.eng, 12
		case "fallback":
			fb := retry.NewFallback(prep.eng.eng, prep.table)
			fb.ProbeBlock(prep.chip, 0, 0)
			pol, seed = fb, 13
		case "history":
			cache, err := warmedHistCache(prep)
			if err != nil {
				return nil, err
			}
			pol, seed = retry.NewHistoryPolicy(cache, prep.table, false), 14
		case "ar2":
			pol, seed = retry.NewAR2(prep.table), 15
		case "sentinel+history":
			cache, err := warmedHistCache(prep)
			if err != nil {
				return nil, err
			}
			pol, seed = retry.NewSentinelHistory(cache, prep.eng.eng, false), 16
		default:
			return nil, fmt.Errorf("scenario: unknown policy %q", policy)
		}
		return ssdsim.BuildSampler(prep.ctl, pol, 0, prep.wls, 3, seed)
	})
	if err != nil {
		return nil, err
	}
	return v.(*ssdsim.EmpiricalSampler), nil
}

// warmedHistCache builds the offset-history cache the history-backed
// sampling policies consult: deterministically warmed from sentinel
// inference on the prep chip's sampled block and then frozen (the
// policies are built with WriteBack off), so the sampler pools — and
// every replay report built on them — stay byte-identical at any
// worker count.
func warmedHistCache(prep *chipPrep) (*retry.HistCache, error) {
	eng := prep.eng.eng.Engine
	cache, err := retry.NewHistCache(4, 64<<10, prep.chip.Coding().NumVoltages(),
		eng.OffsetBound())
	if err != nil {
		return nil, err
	}
	retry.WarmHistCache(cache, prep.chip, eng, []int{0}, prep.wls[0], 0x9157)
	return cache, nil
}

// ReplayResult is a replay cell's deterministic payload: the engine's
// merged report plus the axes that produced it. Wall-clock throughput
// lives in the cell metrics, never here.
type ReplayResult struct {
	Workload string
	Policy   string
	Shards   int
	Report   ssdsim.ReportSummary
}

// Render prints the replay summary table.
func (r *ReplayResult) Render() string {
	rep := &r.Report
	return experiments.Table(
		[]string{"workload", "policy", "shards", "reads", "mean µs", "p95", "p99", "uncorr", "fallback", "retired"},
		[][]string{{
			r.Workload, r.Policy, fmt.Sprint(r.Shards), fmt.Sprint(rep.Reads),
			fmt.Sprintf("%.1f", rep.MeanReadUS),
			fmt.Sprintf("%.1f", rep.P95ReadUS), fmt.Sprintf("%.1f", rep.P99ReadUS),
			fmt.Sprint(rep.UncorrectableReads), fmt.Sprint(rep.FallbackReads),
			fmt.Sprint(rep.RetiredBlocks),
		}})
}

// LifetimeReplayResult is the payload of a dynamic-aging replay cell:
// the replay summary plus the lifetime axes and what the aging
// machinery did. It is a separate type from ReplayResult so frozen-
// stress cells keep their pinned digest surface.
type LifetimeReplayResult struct {
	Workload string
	Policy   string
	Age      string
	Schedule string
	Shards   int
	Report   ssdsim.ReportSummary
	Life     ssdsim.LifetimeStats
}

// Render prints the replay summary row plus the lifetime line.
func (r *LifetimeReplayResult) Render() string {
	rep := &r.Report
	return experiments.Table(
		[]string{"workload", "policy", "age", "schedule", "shards", "reads", "mean µs", "p99", "uncorr"},
		[][]string{{
			r.Workload, r.Policy, r.Age, r.Schedule, fmt.Sprint(r.Shards),
			fmt.Sprint(rep.Reads), fmt.Sprintf("%.1f", rep.MeanReadUS),
			fmt.Sprintf("%.1f", rep.P99ReadUS), fmt.Sprint(rep.UncorrectableReads),
		}}) + fmt.Sprintf(
		"lifetime: %.0f device-hours, %d calibrations (%.0f µs busy), %d erases (%d failed-wear), %d worn blocks (max %d)\n",
		r.Life.DeviceHours, r.Life.Calibrations, r.Life.CalibBusyUS,
		r.Life.RunErases, r.Life.FailedEraseWear, r.Life.WornBlocks, r.Life.MaxBlockWear)
}

// lifetimeAxes resolves a lifetime cell's presets; either axis unset
// defaults to the frozen-replay-equivalent point ("worn") at room
// temperature. Validate checked membership, so lookups cannot miss.
func lifetimeAxes(spec Spec) (experiments.AgePreset, string, physics.TempSchedule) {
	ageName := spec.Age
	if ageName == "" {
		ageName = "worn"
	}
	schedName := spec.Schedule
	if schedName == "" {
		schedName = "room"
	}
	age, _ := experiments.AgeByName(ageName)
	sched, _ := experiments.ScheduleByName(schedName)
	return age, schedName, sched
}

// lifetimeSamplerFor builds the cell's grid sampler: one pool per
// retention point of the age's grid, measured on aged chips through the
// shared prep cache ("synthetic" cells use the deterministic synthetic
// grid instead, like their frozen counterparts).
func lifetimeSamplerFor(ctx *Ctx, age experiments.AgePreset, bits int) (*ssdsim.LifetimeSampler, error) {
	grid := experiments.LifetimeGridHours(age.Hours)
	if ctx.Spec.Policy == "synthetic" {
		return ssdsim.SyntheticLifetimeSampler(bits, []int{age.PE}, grid, 0x11fe), nil
	}
	ls := &ssdsim.LifetimeSampler{PEs: []int{age.PE}, Hours: grid}
	for _, h := range grid {
		pool, err := samplerAt(ctx, age.PE, h)
		if err != nil {
			return nil, err
		}
		ls.Pools = append(ls.Pools, pool)
	}
	return ls, nil
}

// FleetReplayResult is the payload of a multi-device replay cell: the
// merged fleet report plus one summary per device. It is a separate
// type from ReplayResult so single-device cells keep their frozen
// digest surface.
type FleetReplayResult struct {
	Workload  string
	Policy    string
	Shards    int
	Devices   int
	Replicate bool
	Report    ssdsim.ReportSummary
	PerDevice []ssdsim.ReportSummary
}

// Render prints the merged fleet row followed by one row per device.
func (r *FleetReplayResult) Render() string {
	mode := "striped"
	if r.Replicate {
		mode = "replicated"
	}
	rows := [][]string{fleetRow("fleet", &r.Report)}
	for d := range r.PerDevice {
		rows = append(rows, fleetRow(fmt.Sprintf("dev%d", d), &r.PerDevice[d]))
	}
	return fmt.Sprintf("workload %s, policy %s, %d devices (%s) x %d shards\n%s",
		r.Workload, r.Policy, r.Devices, mode, r.Shards,
		experiments.Table(
			[]string{"device", "requests", "reads", "mean µs", "p95", "p99", "uncorr", "fallback", "retired"},
			rows))
}

func fleetRow(label string, rep *ssdsim.ReportSummary) []string {
	return []string{
		label, fmt.Sprint(rep.Requests), fmt.Sprint(rep.Reads),
		fmt.Sprintf("%.1f", rep.MeanReadUS),
		fmt.Sprintf("%.1f", rep.P95ReadUS), fmt.Sprintf("%.1f", rep.P99ReadUS),
		fmt.Sprint(rep.UncorrectableReads), fmt.Sprint(rep.FallbackReads),
		fmt.Sprint(rep.RetiredBlocks),
	}
}

// runReplay is the scenario-native replay runner: one workload under
// one retry policy through the sharded streaming engine — across a
// fleet of devices when the cell sets Devices. The report is
// deterministic (simulated latencies, fixed-order merges), so replay
// cells golden-gate like figures; wall-clock req/s goes to metrics.
func runReplay(ctx *Ctx) (*Outcome, error) {
	spec := ctx.Spec
	simCfg := ssdsim.DefaultConfig()
	simCfg.Geo = spec.Device.Geometry(defaultReplayGeometry())
	simCfg.Seed = ctx.Seed
	if spec.Policy != "" && spec.Policy != "synthetic" {
		simCfg.Bits = ctx.Kind().Bits()
	}
	lifetimeOn := spec.Age != "" || spec.Schedule != ""
	var sampler ssdsim.RetrySampler
	var esampler *ssdsim.EmpiricalSampler
	var ageName, schedName string
	if lifetimeOn {
		age, sn, sched := lifetimeAxes(spec)
		ageName, schedName = age.Name, sn
		ls, err := lifetimeSamplerFor(ctx, age, simCfg.Bits)
		if err != nil {
			return nil, err
		}
		sampler = ls
		simCfg.Life = &ssdsim.LifetimeConfig{
			BasePE:             age.PE,
			BaseRetentionHours: age.Hours,
			Schedule:           sched,
			// One trace-second is 3600 device-hours (~5 months/minute), so
			// even a smoke-sized trace visibly climbs the retention grid;
			// calibration runs monthly.
			HoursPerSecond:   3600,
			CalibPeriodHours: 730,
			CalibUS:          300,
		}
	} else {
		es, err := samplerFor(ctx)
		if err != nil {
			return nil, err
		}
		esampler, sampler = es, es
	}
	if pef, err := spec.Fault.ftlFaults(); err != nil {
		return nil, err
	} else if pef != nil {
		simCfg.PEFaults = pef
	}
	shards := spec.Shards
	if shards == 0 {
		shards = 1
	}
	devices := spec.Devices
	if devices == 0 {
		devices = 1
	}
	var reg = ctx.Obs
	if reg != nil && reg.Shards() < devices*shards {
		// A CLI-level registry narrower than the cell's shard count
		// cannot hold per-shard cells; run uninstrumented rather than
		// failing the cell.
		reg = nil
	}
	requests := ctx.Requests(6000)
	var open trace.Opener
	workload := spec.Workload
	switch {
	case spec.TraceFile != "":
		workload = spec.TraceFile
		open = trace.FileOpener(spec.TraceFile)
	default:
		if workload == "" {
			workload = "hm_0"
		}
		ws, err := trace.WorkloadByName(workload)
		if err != nil {
			return nil, err
		}
		ws.WorkingSetPages = int64(simCfg.Geo.PagesTotal()) * 6 / 10
		open = trace.GeneratorOpener(ws, requests, mathx.Mix(ctx.Seed, 0x7ace))
	}
	eng, err := ssdsim.NewEngine(ssdsim.ReplayConfig{
		Sim: simCfg, Shards: shards, Devices: devices, Replicate: spec.Replicate,
		CollectLatencies: spec.Collect, Precondition: true,
		Metrics: reg, Ctx: ctx.Context,
	}, sampler)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rep, err := eng.Replay(open)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	policy := spec.Policy
	if policy == "" {
		policy = "sentinel"
	}
	var res renderer
	switch {
	case devices > 1:
		// Fleet cells keep their payload type with or without lifetime;
		// the merged lifetime stats surface in the cell metrics.
		res = &FleetReplayResult{
			Workload: workload, Policy: policy, Shards: shards,
			Devices: devices, Replicate: spec.Replicate,
			Report: rep.Summary(), PerDevice: rep.PerDevice,
		}
	case lifetimeOn:
		res = &LifetimeReplayResult{
			Workload: workload, Policy: policy, Age: ageName, Schedule: schedName,
			Shards: shards, Report: rep.Summary(), Life: rep.Life,
		}
	default:
		res = &ReplayResult{Workload: workload, Policy: policy, Shards: shards, Report: rep.Summary()}
	}
	metrics := map[string]float64{
		"req/s":   float64(rep.Requests) / wall,
		"mean-us": rep.MeanReadUS,
	}
	if esampler != nil && policy != "synthetic" {
		metrics["msb-retries"] = esampler.MeanRetries(ctx.Kind().Bits() - 1)
	}
	if lifetimeOn {
		metrics["device-hours"] = rep.Life.DeviceHours
		metrics["calibrations"] = float64(rep.Life.Calibrations)
	}
	if reg != nil {
		snap := reg.Snapshot().Deterministic()
		metrics["obs-series"] = float64(len(snap.Counters) + len(snap.Hists))
	}
	return &Outcome{Payload: res, Render: res.Render(), Metrics: metrics}, nil
}

// runCharlab is the flashlab CLI's engine: program, age and
// characterize a block, rendering the per-wordline RBER/optima table
// and an optional error-vs-offset sweep.
func runCharlab(ctx *Ctx) (*Outcome, error) {
	spec := ctx.Spec
	kind := ctx.Kind()
	scale := ctx.Scale
	seed := ctx.Seed
	cfg := scale.ChipConfig(kind, seed)
	chip, err := flash.New(cfg)
	if err != nil {
		return nil, err
	}
	n := spec.Wordlines
	if n <= 0 {
		n = 8
	}
	if n > cfg.WordlinesPerBlock() {
		n = cfg.WordlinesPerBlock()
	}
	wls := make([]int, n)
	for i := range wls {
		wls[i] = i * cfg.WordlinesPerBlock() / n
	}
	// Per-wordline RNG streams keyed by index: identical data at any
	// worker count (the flashlab contract since PR 1).
	parallel.ForEach(len(wls), func(i int) {
		rng := mathx.NewRand(mathx.Mix(seed^0xf1a5, uint64(wls[i])))
		chip.ProgramRandom(0, wls[i], rng)
	})
	pe := spec.PE
	hours := spec.Hours
	if hours == 0 {
		hours = 8760
	}
	temp := spec.TempC
	if temp == 0 {
		temp = physics.RoomTempC
	}
	chip.Cycle(0, pe)
	chip.Age(0, hours, temp)

	if inj, err := spec.Fault.chipProfile(cfg.UserCells(), cfg.CellsPerWordline,
		chip.Model().P.StateWidth); err != nil {
		return nil, err
	} else if inj != nil {
		chip.SetFaults(inj)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "chip: %v, %d layers x %d WL/layer, %d cells/WL, seed %d\n",
		kind, cfg.Layers, cfg.WordlinesPerLayer, cfg.CellsPerWordline, seed)
	fmt.Fprintf(&b, "stress: %d P/E cycles, %.0f h at %.0f C (%.0f effective room-temp hours)\n\n",
		pe, hours, temp, chip.Stress(0).EffRetentionHours)

	// Bench-level instrumentation, nil-safe when the cell carries no
	// registry: what was measured and the RBER spread.
	set := ctx.Obs.Set(0)
	wlMeasured := set.Counter("flashlab.wordlines", "wordlines characterized")
	rberHist := set.Hist("flashlab.page_rber", "raw bit error rate per page measurement")
	sweepPoints := set.Counter("flashlab.sweep_points", "error-vs-offset sweep points evaluated")

	lab := charlab.New(chip)
	header := []string{"wordline", "layer"}
	for p := 0; p < kind.Bits(); p++ {
		header = append(header, chip.Coding().PageName(p)+" RBER")
	}
	header = append(header, "MSB RBER@opt", "Vsent opt")
	sv := chip.Coding().SentinelVoltage()
	var rberSum float64
	var rberN int
	rows := parallel.Map(len(wls), func(i int) []string {
		wl := wls[i]
		wlMeasured.Inc()
		row := []string{fmt.Sprint(wl), fmt.Sprint(chip.LayerOf(wl))}
		for p := 0; p < kind.Bits(); p++ {
			rber := lab.PageRBER(0, wl, p, nil)
			rberHist.Observe(rber)
			row = append(row, fmt.Sprintf("%.3g", rber))
		}
		opt := lab.OptimalOffsets(0, wl)
		return append(row,
			fmt.Sprintf("%.3g", lab.PageRBER(0, wl, kind.Bits()-1, opt)),
			fmt.Sprintf("%.1f", opt.Get(sv)))
	})
	for _, row := range rows {
		for p := 0; p < kind.Bits(); p++ {
			var v float64
			fmt.Sscanf(row[2+p], "%g", &v)
			rberSum += v
			rberN++
		}
	}
	b.WriteString(experiments.Table(header, rows))

	if spec.SweepV > 0 {
		if spec.SweepV > chip.Coding().NumVoltages() {
			return nil, fmt.Errorf("scenario: voltage V%d out of range (max V%d)",
				spec.SweepV, chip.Coding().NumVoltages())
		}
		fmt.Fprintf(&b, "\nerror-vs-offset sweep of V%d on wordline %d:\n", spec.SweepV, wls[0])
		offs, errs := lab.SweepCurve(0, wls[0], spec.SweepV)
		sweepPoints.Add(int64(len(offs)))
		_, hi := mathx.MinMax(errs)
		for i, o := range offs {
			if int(o)%4 != 0 {
				continue
			}
			bar := int(errs[i] / (hi + 1) * 60)
			fmt.Fprintf(&b, "%6.0f %7.0f %s\n", o, errs[i], strings.Repeat("#", bar))
		}
	}
	out := b.String()
	metrics := map[string]float64{"wordlines": float64(len(wls))}
	if rberN > 0 {
		metrics["mean-rber"] = rberSum / float64(rberN)
	}
	return &Outcome{Payload: out, Render: out, Metrics: metrics}, nil
}
