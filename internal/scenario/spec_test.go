package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	ok := Spec{Name: "fig13", Experiment: "fig13"}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty name", Spec{Experiment: "fig13"}, "empty name"},
		{"slash in name", Spec{Name: "a/b", Experiment: "fig13"}, "'/'"},
		{"colon in name", Spec{Name: "a:b", Experiment: "fig13"}, "':'"},
		{"unknown experiment", Spec{Name: "x", Experiment: "fig99"}, "unknown experiment"},
		{"unknown scale", Spec{Name: "x", Experiment: "fig13", Scale: "huge"}, "unknown scale"},
		{"unknown kind", Spec{Name: "x", Experiment: "fig13", Kind: "slc"}, "unknown kind"},
		{"unknown policy", Spec{Name: "x", Experiment: "replay", Policy: "magic"}, "unknown policy"},
		{"unknown workload", Spec{Name: "x", Experiment: "replay", Workload: "nope"}, "nope"},
		{"negative requests", Spec{Name: "x", Experiment: "replay", Requests: -1}, "negative"},
		{"fault rate above 1", Spec{Name: "x", Experiment: "replay",
			Fault: &FaultSpec{StuckRate: 1.5}}, "outside [0,1]"},
		{"negative device dim", Spec{Name: "x", Experiment: "replay",
			Device: &DeviceSpec{Channels: -4}}, "negative device"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"m","cells":[{"name":"fig13","experiment":"fig13"}]}`)); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	for _, bad := range []string{
		`{"name":"m","cells":[{"name":"x","experiments":"fig13"}]}`, // typoed field
		`{"name":"m"} trailing`,
		`{"cells":[]}`, // no name
		`not json`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestMatrixExpand(t *testing.T) {
	m := &Matrix{
		Name:     "t",
		Defaults: Spec{Scale: "quick", Requests: 1234},
		Cells:    []Spec{{Name: "fig13", Experiment: "fig13"}},
		Sweep: []Axes{{
			Base:     Spec{Experiment: "replay", Policy: "synthetic"},
			Workload: []string{"hm_0", "prxy_0"},
			Shards:   []int{1, 2},
		}},
		Golden: map[string]string{"fig13": "00ddeeff00112233"},
	}
	cells, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("expanded %d cells, want 5", len(cells))
	}
	if cells[0].Name != "fig13" || cells[0].Golden != "00ddeeff00112233" {
		t.Errorf("explicit cell: %+v", cells[0])
	}
	if cells[0].Scale != "quick" || cells[0].Requests != 1234 {
		t.Errorf("defaults not applied: %+v", cells[0])
	}
	wantNames := []string{"hm_0_s1", "hm_0_s2", "prxy_0_s1", "prxy_0_s2"}
	for i, w := range wantNames {
		c := cells[i+1]
		if c.Name != w {
			t.Errorf("sweep cell %d named %q, want %q", i, c.Name, w)
		}
		if c.Experiment != "replay" || c.Policy != "synthetic" {
			t.Errorf("sweep cell %q lost base fields: %+v", c.Name, c)
		}
	}
	// Seeds depend only on (matrix seed, name): never on position, so
	// filtering a matrix down cannot change a surviving cell's stream.
	for _, c := range cells {
		if c.Seed != SplitSeed(1, c.Name) {
			t.Errorf("cell %q seed %d, want SplitSeed", c.Name, c.Seed)
		}
	}

	m.Golden["ghost"] = "beef"
	if _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("golden for unknown cell: got %v", err)
	}
	delete(m.Golden, "ghost")

	m.Cells = append(m.Cells, Spec{Name: "fig13", Experiment: "fig13"})
	if _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate cell name: got %v", err)
	}
}

func TestExpandSeedPinned(t *testing.T) {
	m := &Matrix{Name: "t", Cells: []Spec{{Name: "fig13", Experiment: "fig13", Seed: 42}}}
	cells, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Seed != 42 {
		t.Errorf("pinned seed overridden: %d", cells[0].Seed)
	}
}

// TestMatrixRoundTrip pins the validate-then-reencode fixpoint the fuzz
// target checks on arbitrary inputs.
func TestMatrixRoundTrip(t *testing.T) {
	doc := []byte(`{"name":"m","seed":7,"defaults":{"scale":"quick"},` +
		`"cells":[{"name":"fig13","experiment":"fig13","golden":"abcd"}],` +
		`"sweep":[{"base":{"experiment":"replay"},"workload":["hm_0"],"shards":[1,2]}]}`)
	m1, err := Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := json.Marshal(m1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Parse(enc1)
	if err != nil {
		t.Fatalf("re-parse of own encoding failed: %v", err)
	}
	enc2, err := json.Marshal(m2)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc1) != string(enc2) {
		t.Errorf("round trip not a fixpoint:\n%s\n%s", enc1, enc2)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"fig2", "fig13", "robust", "replay", "replay-throughput", "charlab"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown entry succeeded")
	}
	ents := Entries()
	if len(ents) < 18 {
		t.Errorf("only %d registry entries", len(ents))
	}
	// Registration order is the -exp all order: fig2 first, robust after
	// fig19, ablations after robust.
	if ents[0].Name != "fig2" {
		t.Errorf("first entry %q, want fig2", ents[0].Name)
	}
}
