package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"time"

	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
)

// Digest hashes a deterministic result value exactly the way the golden
// regression tests always have: sha256 over the %v rendering, first 8
// bytes, hex. The read stack promises byte-identical results across
// refactors and worker counts, so a digest change is a bug (or a
// knowingly re-recorded golden), never noise.
func Digest(v any) string {
	d := sha256.Sum256([]byte(fmt.Sprintf("%v", v)))
	return fmt.Sprintf("%x", d[:8])
}

// RunOptions parameterizes a matrix run.
type RunOptions struct {
	// Filter keeps only cells whose name matches (nil = every cell) —
	// the CI cell groups slice the smoke matrix with it.
	Filter *regexp.Regexp
	// Obs, when non-nil, is a CLI-level registry shared by every cell
	// (the -metrics / -debug-addr flags). It supersedes per-spec
	// registries; replay cells attach it only when it holds enough
	// shards.
	Obs *obs.Registry
	// ResultsDir, when non-empty, receives one <cell>.json per cell plus
	// a matrix.json summary.
	ResultsDir string
	// BenchWriter, when non-nil, receives one go-bench-format line per
	// cell ("Benchmark<name> 1 <wall-ns> ns/op <metrics>...") so
	// cmd/benchjson can parse, compare and gate the run.
	BenchWriter io.Writer
	// KeepPayload retains each cell's raw result value on CellResult for
	// in-process front-ends (tracesim's comparison table); the payload is
	// never serialized.
	KeepPayload bool
	// Ctx, when non-nil, cancels the run cooperatively (the CLIs wire
	// SIGINT/SIGTERM here): cells that have not started are marked
	// "canceled before start" without running, in-flight replay cells
	// stop at their next chunk boundary, and the partial results still
	// emit — an interrupted matrix flushes what it has instead of dying
	// mid-write.
	Ctx context.Context
}

// CellResult is one cell's machine-readable outcome.
type CellResult struct {
	Name       string             `json:"name"`
	Experiment string             `json:"experiment"`
	Scale      string             `json:"scale,omitempty"`
	Seed       uint64             `json:"seed"`
	Seconds    float64            `json:"seconds"`
	Digest     string             `json:"digest,omitempty"`
	Golden     string             `json:"golden,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Render     string             `json:"render,omitempty"`
	Err        string             `json:"error,omitempty"`
	// Payload is the raw result value, populated only under
	// RunOptions.KeepPayload; it never reaches the JSON artifacts.
	Payload any `json:"-"`
}

// MatrixResult is the whole run's summary.
type MatrixResult struct {
	Matrix string       `json:"matrix"`
	Cells  []CellResult `json:"cells"`
	// PrecondExecutions counts the shared-preconditioning builders that
	// actually ran — at most the number of distinct signatures, however
	// many cells share them.
	PrecondExecutions int64 `json:"precond_executions"`
}

// Fingerprint concatenates every deterministic per-cell field. Two runs
// of the same matrix must produce byte-identical fingerprints at any
// worker count; the determinism regression asserts exactly that.
func (m *MatrixResult) Fingerprint() string {
	var b strings.Builder
	for _, c := range m.Cells {
		fmt.Fprintf(&b, "%s\x00%s\x00%d\x00%s\x00%s\x00%s\x1e",
			c.Name, c.Experiment, c.Seed, c.Digest, c.Render, c.Err)
	}
	return b.String()
}

// Failed lists the cells that errored (including golden mismatches).
func (m *MatrixResult) Failed() []CellResult {
	var out []CellResult
	for _, c := range m.Cells {
		if c.Err != "" {
			out = append(out, c)
		}
	}
	return out
}

// Run expands the matrix and executes every (filtered) cell: unpinned
// cells fan out through internal/parallel (each is internally parallel
// too — the pool just sees more work), cells that pin a worker count
// run serially afterwards under their override. Cell failures — runner
// errors and golden-digest mismatches alike — never stop other cells;
// they are accumulated into the returned error, BASIL-style, so one
// broken cell cannot hide the rest of the matrix.
func Run(m *Matrix, opts RunOptions) (*MatrixResult, error) {
	cells, err := m.Expand()
	if err != nil {
		return nil, err
	}
	if opts.Filter != nil {
		kept := cells[:0:0]
		for _, c := range cells {
			if opts.Filter.MatchString(c.Name) {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("scenario: matrix %q: no cell matches %q", m.Name, opts.Filter)
		}
		cells = kept
	}
	shared := NewShared()
	results := make([]CellResult, len(cells))
	var pinned []int
	var auto []int
	for i, c := range cells {
		if c.Workers > 0 {
			pinned = append(pinned, i)
		} else {
			auto = append(auto, i)
		}
	}
	parallel.ForEach(len(auto), func(j int) {
		i := auto[j]
		results[i] = runCell(cells[i], shared, opts)
	})
	for _, i := range pinned {
		prev := parallel.SetWorkers(cells[i].Workers)
		results[i] = runCell(cells[i], shared, opts)
		parallel.SetWorkers(prev)
	}
	res := &MatrixResult{Matrix: m.Name, Cells: results,
		PrecondExecutions: shared.Executions()}
	var errs []error
	for _, c := range results {
		if c.Err != "" {
			errs = append(errs, fmt.Errorf("cell %s: %s", c.Name, c.Err))
		}
	}
	if err := emit(res, opts); err != nil {
		errs = append(errs, err)
	}
	return res, errors.Join(errs...)
}

// RunCell executes a single spec outside any matrix — the thin CLI
// front-ends use it. The spec must carry its own seed or rely on the
// runner default (SplitSeed(1, name)).
func RunCell(spec Spec, opts RunOptions) (CellResult, error) {
	if spec.Name == "" {
		spec.Name = spec.Experiment
	}
	if spec.Seed == 0 {
		spec.Seed = SplitSeed(1, spec.Name)
	}
	if err := spec.Validate(); err != nil {
		return CellResult{Name: spec.Name, Err: err.Error()}, err
	}
	res := runCell(spec, NewShared(), opts)
	if res.Err != "" {
		return res, fmt.Errorf("cell %s: %s", res.Name, res.Err)
	}
	return res, nil
}

// runCell executes one validated cell and converts its outcome.
func runCell(spec Spec, shared *Shared, opts RunOptions) CellResult {
	cliReg := opts.Obs
	out := CellResult{
		Name:       spec.Name,
		Experiment: spec.Experiment,
		Scale:      spec.Scale,
		Seed:       spec.Seed,
		Golden:     spec.Golden,
	}
	if opts.Ctx != nil && opts.Ctx.Err() != nil {
		out.Err = "canceled before start"
		return out
	}
	entry, err := Lookup(spec.Experiment)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	reg := cliReg
	if reg == nil && spec.Obs.Metrics {
		shards := spec.Shards
		if shards < 1 {
			shards = 1
		}
		reg = obs.NewRegistry(shards)
		if spec.Obs.SlowN > 0 {
			reg.KeepSlowest(spec.Obs.SlowN)
		}
	}
	scale, err := resolveScale(spec, reg)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	ctx := &Ctx{Spec: spec, Scale: scale, Seed: spec.Seed, Obs: reg,
		Shared: shared, Context: opts.Ctx}
	start := time.Now()
	oc, err := entry.Run(ctx)
	out.Seconds = time.Since(start).Seconds()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	out.Render = oc.Render
	out.Metrics = oc.Metrics
	if opts.KeepPayload {
		out.Payload = oc.Payload
	}
	switch {
	case oc.Volatile:
		if spec.Golden != "" {
			out.Err = fmt.Sprintf("golden digest on volatile experiment %q", spec.Experiment)
		}
	default:
		out.Digest = Digest(oc.Payload)
		if spec.Golden != "" && out.Digest != spec.Golden {
			out.Err = fmt.Sprintf("golden mismatch: digest %s, want %s", out.Digest, spec.Golden)
		}
	}
	return out
}

// emit writes the per-cell JSON results, the matrix summary and the
// bench-format lines.
func emit(res *MatrixResult, opts RunOptions) error {
	if opts.BenchWriter != nil {
		for _, c := range res.Cells {
			if c.Err != "" && c.Digest == "" {
				continue // cell never produced a result
			}
			fmt.Fprintf(opts.BenchWriter, "Benchmark%s \t 1 \t %.0f ns/op", c.Name, c.Seconds*1e9)
			units := make([]string, 0, len(c.Metrics))
			for u := range c.Metrics {
				units = append(units, u)
			}
			sort.Strings(units)
			for _, u := range units {
				fmt.Fprintf(opts.BenchWriter, " %g %s", c.Metrics[u], u)
			}
			fmt.Fprintln(opts.BenchWriter)
		}
	}
	if opts.ResultsDir == "" {
		return nil
	}
	if err := os.MkdirAll(opts.ResultsDir, 0o755); err != nil {
		return err
	}
	for _, c := range res.Cells {
		data, err := json.MarshalIndent(c, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(opts.ResultsDir, c.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(opts.ResultsDir, "matrix.json"),
		append(data, '\n'), 0o644)
}
