package scenario

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"sentinel3d/internal/experiments"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/obs"
)

// Ctx is what a registry runner receives: the resolved spec, the
// resolved experiments.Scale (with the obs registry attached when the
// spec asks for one), the cell's split seed, and the shared-
// preconditioning cache of the enclosing matrix run.
type Ctx struct {
	Spec  Spec
	Scale experiments.Scale
	// Seed is the cell's resolved seed: Spec.Seed when pinned, else
	// split deterministically from the matrix seed and the cell name.
	Seed uint64
	// Obs is non-nil when Spec.Obs.Metrics is set (or the CLI passed a
	// registry through RunOptions); it is sharded to at least the cell's
	// shard count.
	Obs *obs.Registry
	// Shared dedupes expensive setup (trained models, aged chips,
	// sampled retry distributions) across the cells of one matrix run.
	Shared *Shared
	// Context, when non-nil, cancels long cell work cooperatively (the
	// CLIs wire SIGINT/SIGTERM through RunOptions.Ctx): the replay
	// runner hands it to the streaming engine, which stops at its next
	// chunk boundary. Nil means run to completion; chip-level runners
	// that finish in milliseconds may ignore it.
	Context context.Context
}

// Kind resolves the spec's cell technology.
func (c *Ctx) Kind() flash.Kind {
	if c.Spec.Kind == "qlc" {
		return flash.QLC
	}
	return flash.TLC
}

// Requests resolves the spec's trace length with the given default.
func (c *Ctx) Requests(def int) int {
	if c.Spec.Requests > 0 {
		return c.Spec.Requests
	}
	return def
}

// Outcome is what a runner returns.
type Outcome struct {
	// Payload is the deterministic result value: it is digested (and
	// checked against the cell's golden digest) and must therefore be
	// byte-identical at any worker count. Runners whose results include
	// wall-clock measurements must set Volatile instead of polluting the
	// payload.
	Payload any
	// Render is the human-readable text (the CLIs print it verbatim).
	Render string
	// Metrics holds benchjson-style custom metrics (unit -> value), e.g.
	// "req/s". They are emitted on the cell's bench line and in its JSON
	// result but never digested.
	Metrics map[string]float64
	// Volatile marks results that legitimately differ run to run (wall-
	// clock throughput tables); the runner skips digesting them and
	// rejects golden digests on such cells.
	Volatile bool
}

// Runner executes one cell.
type Runner func(ctx *Ctx) (*Outcome, error)

// Entry describes one registered experiment.
type Entry struct {
	// Name is the registry key cells reference as "experiment".
	Name string
	// Desc is a one-line description for -list output.
	Desc string
	// PerKind marks experiments parameterized by cell technology: the
	// CLI front-ends expand "-kind both" into one cell per kind.
	PerKind bool
	// InAll marks entries the `reproduce -exp all` set (and the full
	// paper matrix) includes; engineering measurements like the replay
	// scaling table opt out.
	InAll bool
	// Run executes the cell.
	Run Runner
}

var (
	regMu   sync.RWMutex
	regByID = map[string]*Entry{}
	regSeq  []*Entry
)

// Register adds an entry; duplicate names panic at init time.
func Register(e Entry) {
	regMu.Lock()
	defer regMu.Unlock()
	if e.Name == "" || e.Run == nil {
		panic("scenario: Register with empty name or nil runner")
	}
	if _, dup := regByID[e.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registry entry %q", e.Name))
	}
	ent := e
	regByID[e.Name] = &ent
	regSeq = append(regSeq, &ent)
}

// Lookup resolves an experiment name.
func Lookup(name string) (*Entry, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := regByID[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown experiment %q (have %v)", name, names())
	}
	return e, nil
}

// names lists the registered experiments sorted; callers hold regMu.
func names() []string {
	out := make([]string, 0, len(regSeq))
	for _, e := range regSeq {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Names lists the registered experiments in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return names()
}

// Entries returns the registry in registration order — the order the
// "all" experiment set runs in, matching the pre-registry CLI dispatch.
func Entries() []*Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]*Entry(nil), regSeq...)
}

// resolveScale builds the experiments.Scale for a spec, attaching the
// registry when one is carried.
func resolveScale(spec Spec, reg *obs.Registry) (experiments.Scale, error) {
	var s experiments.Scale
	switch spec.Scale {
	case "", "quick":
		s = experiments.Quick()
	case "full":
		s = experiments.Full()
	default:
		return s, fmt.Errorf("scenario: unknown scale %q", spec.Scale)
	}
	s.Obs = reg
	return s, nil
}
