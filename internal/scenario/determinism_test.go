package scenario

import (
	"runtime"
	"testing"

	"sentinel3d/internal/parallel"
)

// TestMatrixWorkerDeterminism pins the matrix-level determinism
// contract: the full per-cell fingerprint (names, seeds, digests,
// renders) is byte-identical whether the matrix runs on one worker or
// many. This is what lets CI shard the smoke matrix across jobs and
// still gate against one set of golden digests.
func TestMatrixWorkerDeterminism(t *testing.T) {
	m := syntheticMatrix()
	run := func(workers int) string {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		res, err := Run(m, RunOptions{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Fingerprint()
	}
	one := run(1)
	many := run(runtime.GOMAXPROCS(0))
	if one != many {
		t.Errorf("matrix fingerprint differs between 1 and %d workers:\n%q\n%q",
			runtime.GOMAXPROCS(0), one, many)
	}
	// And re-running at the same width is a fixpoint too.
	if again := run(1); again != one {
		t.Errorf("matrix fingerprint differs between reruns at 1 worker")
	}
}

// TestHistoryPolicyWorkerDeterminism pins the frozen-cache contract:
// replay cells under the offset-history policies (cache warmed once,
// then read-only) digest byte-identically at 1, 4 and 8 workers, and
// the warmed cache's deterministic snapshot is reproducible.
func TestHistoryPolicyWorkerDeterminism(t *testing.T) {
	for _, policy := range []string{"history", "sentinel+history"} {
		spec := Spec{Name: "c", Experiment: "replay", Policy: policy,
			Workload: "hm_0", Requests: 2000, Shards: 2, Seed: 31}
		run := func(workers int) string {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			res, err := RunCell(spec, RunOptions{})
			if err != nil {
				t.Fatalf("%s at %d workers: %v", policy, workers, err)
			}
			return res.Digest
		}
		ref := run(1)
		for _, workers := range []int{4, 8} {
			if got := run(workers); got != ref {
				t.Errorf("%s digest at %d workers = %s, want %s (1 worker)",
					policy, workers, got, ref)
			}
		}
	}
}

// TestCellObsDeterminism asserts instrumentation does not perturb
// results: a cell run with per-cell metrics enabled digests identically
// to the same cell uninstrumented.
func TestCellObsDeterminism(t *testing.T) {
	base := Spec{Name: "c", Experiment: "replay", Policy: "synthetic",
		Workload: "hm_0", Requests: 2000, Shards: 2, Seed: 99}
	plain, err := RunCell(base, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obsd := base
	obsd.Obs = ObsSpec{Metrics: true, SlowN: 4}
	inst, err := RunCell(obsd, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Digest != inst.Digest {
		t.Errorf("obs changed the digest: %s vs %s", plain.Digest, inst.Digest)
	}
	if inst.Metrics["obs-series"] <= 0 {
		t.Errorf("instrumented cell exported no obs series: %v", inst.Metrics)
	}
}
