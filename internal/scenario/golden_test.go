package scenario

import "testing"

// TestGoldenParity asserts the registry path produces byte-identical
// payloads to the pre-registry experiment functions: the digests here
// are the same constants internal/experiments/golden_test.go has pinned
// since before the scenario layer existed. If these break, the rewiring
// changed results — a bug, never a re-record.
func TestGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are slow; skipped in -short")
	}
	for _, tc := range []struct{ exp, want string }{
		{"fig2", "ef6135903f7b556c"},
		{"fig13", "30d208461a899976"},
	} {
		res, err := RunCell(Spec{Name: tc.exp, Experiment: tc.exp, Scale: "quick"}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Digest != tc.want {
			t.Errorf("%s digest %s, want %s", tc.exp, res.Digest, tc.want)
		}
	}
}
