package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// SlowRead is one retained read-trace record: where the read went, what
// the chip did (retry count, auxiliary senses, the final read-voltage
// offsets applied), and where its time was spent.
type SlowRead struct {
	Shard int   `json:"shard"`
	Seq   int64 `json:"seq"` // per-shard read sequence number
	LPN   int64 `json:"lpn"`
	Plane int   `json:"plane"`
	Block int   `json:"block"`
	Page  int   `json:"page"`

	Retries   int `json:"retries"`
	AuxSenses int `json:"aux_senses,omitempty"`
	// VoltageOffsets is the final per-boundary read-voltage offset
	// vector of the sampled chip-level read, when the sampler carries
	// it (see ssdsim.RetryOutcome.Offsets).
	VoltageOffsets []float64 `json:"voltage_offsets,omitempty"`

	QueueUS float64 `json:"queue_us"` // die + channel queueing
	SenseUS float64 `json:"sense_us"` // die occupancy
	XferUS  float64 `json:"xfer_us"`  // channel occupancy (incl. decode)
	TotalUS float64 `json:"total_us"` // arrival to completion

	Uncorrectable bool `json:"uncorrectable,omitempty"`
	Fallback      bool `json:"fallback,omitempty"`
}

// SlowRing retains the n slowest reads admitted to it, by TotalUS. One
// ring per shard keeps admission single-writer, so the retained set is
// a pure function of the shard's read stream — deterministic at any
// worker count. The hot path is one atomic load: once the ring is
// full, reads no slower than the current floor return immediately.
//
// A nil ring is a no-op.
type SlowRing struct {
	shard int
	cap   int
	// floorBits holds the admission threshold (the heap root's TotalUS)
	// once the ring is full; zero doubles as "not full yet", which only
	// costs fast-path rejections when every retained read has TotalUS 0.
	floorBits atomic.Uint64

	mu   sync.Mutex
	heap []SlowRead // min-heap on (TotalUS asc, Seq desc): root = first evicted
}

func newSlowRing(shard, n int) *SlowRing {
	return &SlowRing{shard: shard, cap: n}
}

// evictBefore reports whether record a should be evicted before b:
// smaller TotalUS first, and among equals the later (larger Seq)
// record, so ties keep the earliest reads.
func evictBefore(a, b *SlowRead) bool {
	if a.TotalUS != b.TotalUS {
		return a.TotalUS < b.TotalUS
	}
	return a.Seq > b.Seq
}

// Rejects reports whether a read with the given total latency would be
// dropped by Admit's fast path, letting hot callers skip building the
// record entirely. A nil ring rejects everything.
func (r *SlowRing) Rejects(totalUS float64) bool {
	if r == nil {
		return true
	}
	f := r.floorBits.Load()
	return f != 0 && totalUS <= math.Float64frombits(f)
}

// Admit offers one read record. rec.Shard is overwritten with the
// ring's shard; VoltageOffsets is cloned on retention so callers may
// pass an aliased (pooled or shared) slice.
func (r *SlowRing) Admit(rec SlowRead) {
	if r == nil {
		return
	}
	if f := r.floorBits.Load(); f != 0 && rec.TotalUS <= math.Float64frombits(f) {
		// A full ring's floor only rises, so a stale load can only
		// over-admit into the locked re-check below, never drop a record.
		return
	}
	rec.Shard = r.shard
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.heap) < r.cap {
		rec.VoltageOffsets = append([]float64(nil), rec.VoltageOffsets...)
		r.heap = append(r.heap, rec)
		r.siftUp(len(r.heap) - 1)
		if len(r.heap) == r.cap {
			r.floorBits.Store(math.Float64bits(r.heap[0].TotalUS))
		}
		return
	}
	if !evictBefore(&r.heap[0], &rec) {
		return
	}
	rec.VoltageOffsets = append([]float64(nil), rec.VoltageOffsets...)
	r.heap[0] = rec
	r.siftDown(0)
	r.floorBits.Store(math.Float64bits(r.heap[0].TotalUS))
}

func (r *SlowRing) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !evictBefore(&r.heap[i], &r.heap[p]) {
			return
		}
		r.heap[i], r.heap[p] = r.heap[p], r.heap[i]
		i = p
	}
}

func (r *SlowRing) siftDown(i int) {
	for {
		least := i
		if l := 2*i + 1; l < len(r.heap) && evictBefore(&r.heap[l], &r.heap[least]) {
			least = l
		}
		if rt := 2*i + 2; rt < len(r.heap) && evictBefore(&r.heap[rt], &r.heap[least]) {
			least = rt
		}
		if least == i {
			return
		}
		r.heap[i], r.heap[least] = r.heap[least], r.heap[i]
		i = least
	}
}

// records returns a copy of the retained set, unordered.
func (r *SlowRing) records() []SlowRead {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SlowRead(nil), r.heap...)
}

// mergeSlow combines per-shard retained sets into the overall slowest
// n, ordered slowest first with (Shard, Seq) breaking ties — a total
// order, so the merged trace is deterministic.
func mergeSlow(rings []*SlowRing, n int) []SlowRead {
	var all []SlowRead
	for _, r := range rings {
		all = append(all, r.records()...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := &all[i], &all[j]
		if a.TotalUS != b.TotalUS {
			return a.TotalUS > b.TotalUS
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
