package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is a running debug endpoint (see Serve).
type Server struct {
	// Addr is the bound listen address, e.g. "127.0.0.1:6060" — useful
	// when Serve was asked for port 0.
	Addr string
	srv  *http.Server
}

// DebugMux returns the debug endpoint's routes on a fresh mux, so
// long-running servers (cmd/flashd) can mount them on their own
// http.Server instead of running a second listener:
//
//	/metrics        Prometheus text snapshot of reg
//	/slow           slow-read trace as JSONL
//	/debug/vars     expvar (cmdline, memstats)
//	/debug/pprof/   CPU/heap/goroutine/... profiles
//
// Snapshots are taken per request, so the endpoint observes a live run.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = reg.Snapshot().WriteSlowJSONL(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug HTTP endpoint on addr (routes per DebugMux)
// and returns once the listener is bound. The caller owns shutdown via
// Close (immediate) or Shutdown (graceful).
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{
		Handler: DebugMux(reg),
		// A debug port must not be slowloris-able: clients get 5s to
		// finish their request headers.
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down, dropping in-flight scrapes.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown drains the endpoint gracefully: the listener closes at
// once, in-flight scrapes run to completion (or until ctx expires).
// Long-running servers use this on their drain path so a final
// /metrics scrape is never cut mid-body.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
