package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server is a running debug endpoint (see Serve).
type Server struct {
	// Addr is the bound listen address, e.g. "127.0.0.1:6060" — useful
	// when Serve was asked for port 0.
	Addr string
	srv  *http.Server
}

// Serve starts the debug HTTP endpoint on addr and returns once the
// listener is bound:
//
//	/metrics        Prometheus text snapshot of reg
//	/slow           slow-read trace as JSONL
//	/debug/vars     expvar (cmdline, memstats)
//	/debug/pprof/   CPU/heap/goroutine/... profiles
//
// Snapshots are taken per request, so the endpoint observes a live
// run. The caller owns shutdown via Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl")
		_ = reg.Snapshot().WriteSlowJSONL(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down, dropping in-flight scrapes (a debug
// endpoint needs no graceful drain).
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
