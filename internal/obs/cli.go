package obs

import (
	"fmt"
	"os"
)

// writeTo renders into path, with "-" meaning stdout.
func writeTo(path string, render func(f *os.File) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Dump writes a Prometheus text snapshot of the registry to path ("-"
// for stdout). The CLI tools call it at exit for the -metrics flag.
func Dump(path string, reg *Registry) error {
	if reg == nil {
		return fmt.Errorf("obs: dump of nil registry")
	}
	return writeTo(path, func(f *os.File) error {
		return reg.Snapshot().WritePrometheus(f)
	})
}

// DumpSlow writes the slow-read trace as JSONL to path ("-" for
// stdout), slowest first.
func DumpSlow(path string, reg *Registry) error {
	if reg == nil {
		return fmt.Errorf("obs: dump of nil registry")
	}
	return writeTo(path, func(f *os.File) error {
		return reg.Snapshot().WriteSlowJSONL(f)
	})
}
