package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
)

// TestNilIsNoOp: the whole nil chain — registry, set, every handle —
// must be callable and inert, because that is the disabled fast path
// every instrumented component takes.
func TestNilIsNoOp(t *testing.T) {
	var r *Registry
	if r.Shards() != 0 {
		t.Error("nil registry has shards")
	}
	r.KeepSlowest(4)
	s := r.Set(0)
	if s != nil {
		t.Fatal("nil registry returned non-nil set")
	}
	if s.Shard() != -1 {
		t.Error("nil set shard")
	}
	c := s.Counter("x", "")
	g := s.Gauge("x", "")
	h := s.Hist("x", "")
	ring := s.SlowRing()
	if c != nil || g != nil || h != nil || ring != nil {
		t.Fatal("nil set returned non-nil handles")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has value")
	}
	g.Set(3)
	if v, ok := g.Value(); v != 0 || ok {
		t.Error("nil gauge has value")
	}
	h.Observe(1)
	h.Flush(&mathx.LogHist{}, nil)
	ring.Admit(SlowRead{TotalUS: 1})
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Hists) != 0 || snap.Render() != "" {
		t.Error("nil registry snapshot not empty")
	}
}

// TestNoOpAllocations: the disabled path must be allocation-free —
// this is the obs-side half of the Sense/ReadPage 0 allocs/op
// acceptance criterion.
func TestNoOpAllocations(t *testing.T) {
	var r *Registry
	s := r.Set(0)
	c := s.Counter("x", "")
	h := s.Hist("x", "")
	ring := s.SlowRing()
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(17.5)
		ring.Admit(SlowRead{TotalUS: 99})
	}); n != 0 {
		t.Fatalf("no-op sink allocates %v allocs/op, want 0", n)
	}
	// The enabled counter/histogram path is also allocation-free (the
	// ring allocates only on retention, by design).
	reg := NewRegistry(1)
	ec := reg.Set(0).Counter("y", "")
	eh := reg.Set(0).Hist("z", "")
	if n := testing.AllocsPerRun(1000, func() {
		ec.Inc()
		eh.Observe(17.5)
	}); n != 0 {
		t.Fatalf("enabled sink allocates %v allocs/op, want 0", n)
	}
}

// TestRegistryBasics: handles are per-shard cells of one family;
// snapshots merge counters and histograms and keep gauges per shard.
func TestRegistryBasics(t *testing.T) {
	r := NewRegistry(2)
	if r.Shards() != 2 {
		t.Fatal("shards")
	}
	a, b := r.Set(0), r.Set(1)
	a.Counter("reads", "total reads").Add(3)
	b.Counter("reads", "total reads").Add(4)
	a.Gauge("rate", "req/s").Set(100)
	b.Gauge("rate", "req/s").Set(200)
	a.Hist("lat", "µs").Observe(10)
	b.Hist("lat", "µs").Observe(1000)

	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("counters %+v", snap.Counters)
	}
	if len(snap.Gauges) != 2 || snap.Gauges[0].Value != 100 || snap.Gauges[1].Value != 200 {
		t.Fatalf("gauges %+v", snap.Gauges)
	}
	if len(snap.Hists) != 1 {
		t.Fatalf("hists %+v", snap.Hists)
	}
	lh := snap.Hists[0].Hist
	if lh.Count() != 2 || lh.Min() != 10 || lh.Max() != 1000 {
		t.Fatalf("merged hist count=%d min=%v max=%v", lh.Count(), lh.Min(), lh.Max())
	}
	if math.Abs(lh.Sum()-1010) > 1e-5 {
		t.Fatalf("merged sum %v", lh.Sum())
	}
	// An unset gauge cell is omitted.
	r.Set(0).Gauge("other", "")
	if got := len(r.Snapshot().Gauges); got != 2 {
		t.Fatalf("unset gauge leaked into snapshot (%d gauges)", got)
	}
	// Deterministic() strips gauges and nothing else.
	det := snap.Deterministic()
	if det.Gauges != nil || len(det.Counters) != 1 || len(det.Hists) != 1 {
		t.Fatalf("deterministic view %+v", det)
	}
	// Same family twice returns the same cell; different kind panics.
	if a.Counter("reads", "") != r.Set(0).Counter("reads", "") {
		t.Error("family cell not stable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind clash did not panic")
			}
		}()
		a.Gauge("reads", "")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range shard did not panic")
			}
		}()
		r.Set(5)
	}()
}

// TestHistObserveMatchesLogHist: the atomic cell must reconstruct the
// exact LogHist a serial accumulation produces (counts, min/max, and
// the sum to fixed-point resolution).
func TestHistObserveMatchesLogHist(t *testing.T) {
	r := NewRegistry(1)
	h := r.Set(0).Hist("x", "")
	var want mathx.LogHist
	rng := mathx.NewRand(5)
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*2 + 4)
		if i%13 == 0 {
			v = 0
		}
		h.Observe(v)
		want.Add(v)
	}
	got := r.Snapshot().Hists[0].Hist
	if got.Count() != want.Count() || got.ZeroCount() != want.ZeroCount() ||
		got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("cell diverged: count %d/%d zero %d/%d", got.Count(), want.Count(),
			got.ZeroCount(), want.ZeroCount())
	}
	if math.Abs(got.Sum()-want.Sum()) > float64(want.Count())/histSumScale {
		t.Fatalf("sum %v vs %v beyond fixed-point tolerance", got.Sum(), want.Sum())
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q=%v: %v != %v", q, got.Quantile(q), want.Quantile(q))
		}
	}
}

// TestHistFlushMatchesObserve: batch-and-flush publication (the replay
// hot path) must land the same state as direct observation, however
// the batches are cut.
func TestHistFlushMatchesObserve(t *testing.T) {
	r := NewRegistry(1)
	direct := r.Set(0).Hist("direct", "")
	flushed := r.Set(0).Hist("flushed", "")
	var cur, prev mathx.LogHist
	rng := mathx.NewRand(9)
	for i := 0; i < 5000; i++ {
		v := 50 + rng.Float64()*1e4
		direct.Observe(v)
		cur.Add(v)
		if i%257 == 0 {
			flushed.Flush(&cur, &prev)
			prev = cur
		}
	}
	flushed.Flush(&cur, &prev)
	snap := r.Snapshot()
	d, f := snap.Hists[0].Hist, snap.Hists[1].Hist
	if d.Count() != f.Count() || d.Min() != f.Min() || d.Max() != f.Max() {
		t.Fatalf("flushed count=%d min=%v max=%v, direct count=%d min=%v max=%v",
			f.Count(), f.Min(), f.Max(), d.Count(), d.Min(), d.Max())
	}
	if math.Abs(d.Sum()-f.Sum()) > float64(d.Count())/histSumScale {
		t.Fatalf("sums diverged: %v vs %v", d.Sum(), f.Sum())
	}
	for _, q := range []float64{0.5, 0.99} {
		if d.Quantile(q) != f.Quantile(q) {
			t.Fatalf("q=%v diverged", q)
		}
	}
}

// TestConcurrentDeterminism: hammer one registry from many goroutines
// (fixed per-goroutine workloads, worker count varying run to run) and
// require byte-identical deterministic renderings. This is the
// race-job coverage for concurrent updates + snapshots: a live
// snapshot goroutine scrapes mid-run, its result unused.
func TestConcurrentDeterminism(t *testing.T) {
	render := func(workers int) string {
		r := NewRegistry(4)
		r.KeepSlowest(8)
		stop := make(chan struct{})
		var scraper sync.WaitGroup
		scraper.Add(1)
		go func() { // concurrent scrapes must be safe mid-run
			defer scraper.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot().Render()
				}
			}
		}()
		prev := parallel.SetWorkers(workers)
		parallel.ForEach(4, func(shard int) {
			set := r.Set(shard)
			c := set.Counter("ops", "")
			h := set.Hist("lat_us", "")
			ring := set.SlowRing()
			rng := mathx.NewRand(uint64(shard) + 1)
			var cur, prevH mathx.LogHist
			for i := 0; i < 3000; i++ {
				c.Inc()
				v := 10 + rng.Float64()*1e5
				cur.Add(v)
				ring.Admit(SlowRead{Seq: int64(i), TotalUS: v})
				if i%500 == 0 {
					h.Flush(&cur, &prevH)
					prevH = cur
				}
			}
			h.Flush(&cur, &prevH)
			set.Gauge("rate", "").Set(float64(shard) * 123.4) // stripped below
		})
		parallel.SetWorkers(prev)
		close(stop)
		scraper.Wait()
		snap := r.Snapshot().Deterministic()
		var slow strings.Builder
		if err := snap.WriteSlowJSONL(&slow); err != nil {
			t.Fatal(err)
		}
		return snap.Render() + slow.String()
	}
	base := render(1)
	if base == "" || !strings.Contains(base, "sentinel3d_ops 12000") {
		t.Fatalf("unexpected rendering:\n%s", base)
	}
	if strings.Contains(base, "rate") {
		t.Fatal("gauge survived Deterministic()")
	}
	for _, w := range []int{2, 4, 8} {
		if got := render(w); got != base {
			t.Fatalf("rendering diverged at %d workers:\n got:\n%s\nwant:\n%s", w, got, base)
		}
	}
}
