package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sentinel3d/internal/mathx"
)

// CounterSnap is one counter family merged across shards.
type CounterSnap struct {
	Name, Help string
	Value      int64
}

// GaugeSnap is one shard's gauge cell (gauges are per-shard facts —
// e.g. a shard's replay rate — so they are not merged).
type GaugeSnap struct {
	Name, Help string
	Shard      int
	Value      float64
}

// HistSnap is one histogram family merged across shards in shard
// order.
type HistSnap struct {
	Name, Help string
	Hist       *mathx.LogHist
}

// Snapshot is a point-in-time view of a registry. Taken after writers
// quiesce it is exact and — gauges aside — byte-identical at any
// worker count when rendered.
type Snapshot struct {
	Counters []CounterSnap
	Gauges   []GaugeSnap
	Hists    []HistSnap
	Slow     []SlowRead
}

// Snapshot gathers every family, merging per-shard cells in fixed
// shard order, and the merged slow-read trace. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	for _, f := range r.sortedFamilies() {
		switch f.kind {
		case kindCounter:
			var total int64
			for _, c := range f.counters {
				total += c.Value()
			}
			snap.Counters = append(snap.Counters, CounterSnap{f.name, f.help, total})
		case kindGauge:
			for s, g := range f.gauges {
				if v, ok := g.Value(); ok {
					snap.Gauges = append(snap.Gauges, GaugeSnap{f.name, f.help, s, v})
				}
			}
		case kindHist:
			merged := &mathx.LogHist{}
			for _, h := range f.hists {
				merged.Merge(h.snapshot())
			}
			snap.Hists = append(snap.Hists, HistSnap{f.name, f.help, merged})
		}
	}
	r.mu.Lock()
	rings, slowN := r.rings, r.slowN
	r.mu.Unlock()
	if rings != nil {
		snap.Slow = mergeSlow(rings, slowN)
	}
	return snap
}

// Deterministic returns the snapshot with the wall-clock-derived
// gauges stripped: everything left is a pure function of the workload,
// so two runs of the same trace render identically at any worker
// count. Determinism tests compare this view.
func (s *Snapshot) Deterministic() *Snapshot {
	out := *s
	out.Gauges = nil
	return &out
}

// promName maps a dotted metric name onto the Prometheus grammar:
// "retry.reads" -> "sentinel3d_retry_reads".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("sentinel3d_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && b.Len() > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func promHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// histQuantiles are the quantile labels a histogram family exports.
var histQuantiles = []float64{0.5, 0.95, 0.99}

// WritePrometheus renders the snapshot in the Prometheus text format:
// counters and gauges as-is (gauges with a shard label), histograms as
// summaries with quantile labels plus _sum/_count/_min/_max series.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	for _, c := range s.Counters {
		n := promName(c.Name)
		if err := promHeader(w, n, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", n, c.Value); err != nil {
			return err
		}
	}
	for i, g := range s.Gauges {
		n := promName(g.Name)
		if i == 0 || s.Gauges[i-1].Name != g.Name {
			if err := promHeader(w, n, g.Help, "gauge"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %s\n", n, g.Shard, promFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Hists {
		n := promName(h.Name)
		if err := promHeader(w, n, h.Help, "summary"); err != nil {
			return err
		}
		for _, q := range histQuantiles {
			if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %s\n",
				n, promFloat(q), promFloat(h.Hist.Quantile(q))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n%s_min %s\n%s_max %s\n",
			n, promFloat(h.Hist.Sum()), n, h.Hist.Count(),
			n, promFloat(h.Hist.Min()), n, promFloat(h.Hist.Max())); err != nil {
			return err
		}
	}
	return nil
}

// Render returns the Prometheus text as a string.
func (s *Snapshot) Render() string {
	var b strings.Builder
	_ = s.WritePrometheus(&b) // strings.Builder writes cannot fail
	return b.String()
}

// WriteSlowJSONL dumps the merged slow-read trace, one JSON object per
// line, slowest first.
func (s *Snapshot) WriteSlowJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range s.Slow {
		if err := enc.Encode(&s.Slow[i]); err != nil {
			return err
		}
	}
	return nil
}
