// Package obs is the repo's observability layer: a registry of atomic
// counters, gauges and mathx.LogHist-backed histograms, sharded per
// replay shard, plus a slowest-N read trace ring and Prometheus-style
// exposition (see snapshot.go and http.go).
//
// Two properties shape the design:
//
// Free when off. Every handle type (*Counter, *Gauge, *Hist, *SlowRing)
// is nil-safe: a nil Registry yields nil Sets, nil Sets yield nil
// handles, and every method on a nil handle is a no-op. Instrumented
// code therefore carries one pointer and pays one predictable branch
// when observability is disabled — no interface dispatch, no
// allocation (see the AllocsPerRun tests).
//
// Deterministic when on. Metrics must not perturb the simulator's
// byte-identical-at-any-worker-count contract, and must themselves be
// byte-identical. Counters are commutative integer adds. Histogram
// cells live on the exact mathx.LogHist bucket grid with an integer
// fixed-point sum, so concurrent updates commute; per-shard cells are
// reconstructed and merged in fixed shard order at snapshot time.
// Gauges carry wall-clock rates and are the one nondeterministic kind;
// Snapshot.Deterministic strips them.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sentinel3d/internal/mathx"
)

// Registry holds the metric families of one run, with one cell per
// shard per family. Handles are created through per-shard Sets; all
// methods are safe for concurrent use.
type Registry struct {
	shards int

	mu   sync.Mutex
	fams map[string]*family

	slowN int
	rings []*SlowRing
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHist
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a cell per shard.
type family struct {
	name, help string
	kind       kind
	counters   []*Counter
	gauges     []*Gauge
	hists      []*Hist
}

// NewRegistry builds a registry with the given shard count (values
// below 1 are treated as 1). Use shard count = replay shard count so
// each shard's instrumentation writes its own cells.
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{shards: shards, fams: make(map[string]*family)}
}

// Shards returns the registry's shard count.
func (r *Registry) Shards() int {
	if r == nil {
		return 0
	}
	return r.shards
}

// KeepSlowest enables the slow-read trace: each shard keeps its n
// slowest reads, and Snapshot merges them into the overall slowest n.
// Call before handing out Sets; n < 1 disables the trace.
func (r *Registry) KeepSlowest(n int) {
	if r == nil || n < 1 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.slowN = n
	r.rings = make([]*SlowRing, r.shards)
	for s := range r.rings {
		r.rings[s] = newSlowRing(s, n)
	}
}

// Set returns shard s's handle factory. A nil registry returns a nil
// Set, which in turn hands out nil (no-op) handles.
func (r *Registry) Set(s int) *Set {
	if r == nil {
		return nil
	}
	if s < 0 || s >= r.shards {
		panic(fmt.Sprintf("obs: shard %d outside [0,%d)", s, r.shards))
	}
	return &Set{r: r, shard: s}
}

// family returns the named family, creating it (with cells for every
// shard) on first use. Re-registering a name under a different kind is
// a wiring bug and panics.
func (r *Registry) family(name, help string, k kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if ok {
		if f.kind != k {
			panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v",
				name, f.kind, k))
		}
		return f
	}
	f = &family{name: name, help: help, kind: k}
	switch k {
	case kindCounter:
		f.counters = make([]*Counter, r.shards)
		for i := range f.counters {
			f.counters[i] = &Counter{}
		}
	case kindGauge:
		f.gauges = make([]*Gauge, r.shards)
		for i := range f.gauges {
			f.gauges[i] = &Gauge{}
		}
	case kindHist:
		f.hists = make([]*Hist, r.shards)
		for i := range f.hists {
			f.hists[i] = newHist()
		}
	}
	r.fams[name] = f
	return f
}

// sortedFamilies returns the families sorted by name, so snapshots and
// renderings are order-independent of registration order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Set creates handles bound to one shard's cells.
type Set struct {
	r     *Registry
	shard int
}

// Shard returns the set's shard index (-1 for a nil set).
func (s *Set) Shard() int {
	if s == nil {
		return -1
	}
	return s.shard
}

// Counter returns this shard's cell of the named counter.
func (s *Set) Counter(name, help string) *Counter {
	if s == nil {
		return nil
	}
	return s.r.family(name, help, kindCounter).counters[s.shard]
}

// Gauge returns this shard's cell of the named gauge.
func (s *Set) Gauge(name, help string) *Gauge {
	if s == nil {
		return nil
	}
	return s.r.family(name, help, kindGauge).gauges[s.shard]
}

// Hist returns this shard's cell of the named histogram.
func (s *Set) Hist(name, help string) *Hist {
	if s == nil {
		return nil
	}
	return s.r.family(name, help, kindHist).hists[s.shard]
}

// SlowRing returns this shard's slow-read ring, or nil when the trace
// is disabled (see Registry.KeepSlowest).
func (s *Set) SlowRing() *SlowRing {
	if s == nil {
		return nil
	}
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	if s.r.rings == nil {
		return nil
	}
	return s.r.rings[s.shard]
}

// ---------------------------------------------------------------------------
// Counter

// Counter is a monotone atomic counter cell. The zero value is ready;
// a nil counter is a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the cell's current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is a last-write-wins float cell for wall-clock-derived values
// (per-shard req/s). Gauges are excluded from deterministic snapshots.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the stored value and whether Set was ever called.
func (g *Gauge) Value() (float64, bool) {
	if g == nil {
		return 0, false
	}
	return math.Float64frombits(g.bits.Load()), g.set.Load()
}

// ---------------------------------------------------------------------------
// Hist

// histSumScale is the fixed-point scale of a histogram cell's sum:
// integer micro-unit adds commute, so the accumulated sum is identical
// whatever order concurrent observers run in — the float sum a naive
// port would keep is not. At 2^-20 resolution a µs-valued histogram
// resolves the sum to picoseconds while leaving 2^43 µs of headroom.
const histSumScale = 1 << 20

func sumFixed(v float64) int64 { return int64(math.Round(v * histSumScale)) }

// Hist is one shard's histogram cell: atomic bucket counts on the
// mathx.LogHist grid, a fixed-point atomic sum, and CAS-maintained
// min/max. Snapshots reconstruct it as a *mathx.LogHist.
type Hist struct {
	counts  []atomic.Int64 // mathx.LogHistBuckets() positive-sample buckets
	zero    atomic.Int64   // non-positive samples
	sumFP   atomic.Int64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

func newHist() *Hist {
	h := &Hist{counts: make([]atomic.Int64, mathx.LogHistBuckets())}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample. Intended for low-rate call sites (one
// chip-level read, one calibration step); the replay hot path batches
// locally and publishes through Flush instead.
func (h *Hist) Observe(v float64) {
	if h == nil {
		return
	}
	if v > 0 {
		h.counts[mathx.LogHistBucketOf(v)].Add(1)
	} else {
		h.zero.Add(1)
	}
	if fp := sumFixed(v); fp != 0 {
		h.sumFP.Add(fp)
	}
	h.lowerMin(v)
	h.raiseMax(v)
}

// Flush publishes the difference between cur and prev (a snapshot of
// cur at the previous flush; nil means empty) into the cell: only the
// buckets the batch touched are written. Per-shard single-writer
// batches flushed at deterministic chunk boundaries make the published
// state — including the fixed-point sum — independent of worker count.
func (h *Hist) Flush(cur, prev *mathx.LogHist) {
	if h == nil || cur == nil || cur.Count() == 0 {
		return
	}
	var prevZero int64
	var prevSum float64
	if prev != nil {
		prevZero = prev.ZeroCount()
		prevSum = prev.Sum()
	}
	cur.DiffVisit(prev, func(b int, d int64) { h.counts[b].Add(d) })
	if dz := cur.ZeroCount() - prevZero; dz != 0 {
		h.zero.Add(dz)
	}
	if d := sumFixed(cur.Sum()) - sumFixed(prevSum); d != 0 {
		h.sumFP.Add(d)
	}
	h.lowerMin(cur.Min())
	h.raiseMax(cur.Max())
}

func (h *Hist) lowerMin(v float64) {
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (h *Hist) raiseMax(v float64) {
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// snapshot reconstructs the cell as a LogHist. Concurrent writers make
// the parts mutually slightly stale — each part is still a value some
// prefix of the updates produced, and once writers quiesce (end of
// run, or a flush barrier) the reconstruction is exact.
func (h *Hist) snapshot() *mathx.LogHist {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	lh, err := mathx.LogHistFromParts(counts, h.zero.Load(),
		float64(h.sumFP.Load())/histSumScale,
		math.Float64frombits(h.minBits.Load()),
		math.Float64frombits(h.maxBits.Load()))
	if err != nil {
		panic(err) // cell allocated on the LogHist layout; unreachable
	}
	return lh
}
