package obs

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeEndpoints: the debug server exposes the Prometheus
// snapshot, the slow-read JSONL, expvar, and the pprof index.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry(1)
	r.KeepSlowest(2)
	set := r.Set(0)
	set.Counter("retry.reads", "chip-level reads").Add(12)
	set.Hist("retry.latency_us", "read service time").Observe(63.5)
	set.SlowRing().Admit(SlowRead{Seq: 1, TotalUS: 63.5})

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE sentinel3d_retry_reads counter",
		"sentinel3d_retry_reads 12",
		"# TYPE sentinel3d_retry_latency_us summary",
		`sentinel3d_retry_latency_us{quantile="0.99"}`,
		"sentinel3d_retry_latency_us_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if slow := get("/slow"); !strings.Contains(slow, `"total_us":63.5`) {
		t.Errorf("/slow missing record: %s", slow)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Error("/debug/vars missing memstats")
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("pprof index missing goroutine profile")
	}
}

// TestServeHardening: the endpoint carries a ReadHeaderTimeout (no
// slowloris) and Shutdown drains gracefully.
func TestServeHardening(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(1))
	if err != nil {
		t.Fatal(err)
	}
	if srv.srv.ReadHeaderTimeout <= 0 {
		t.Fatal("debug server has no ReadHeaderTimeout")
	}
	if resp, err := http.Get("http://" + srv.Addr + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	// Nil receiver and double shutdown are safe.
	var nilSrv *Server
	if err := nilSrv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_ = srv.Shutdown(ctx)
}
