package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"sentinel3d/internal/mathx"
)

// TestSlowRingKeepsSlowest: the ring must retain exactly the n slowest
// records of its stream, with ties resolved toward the earliest Seq.
func TestSlowRingKeepsSlowest(t *testing.T) {
	r := NewRegistry(1)
	r.KeepSlowest(5)
	ring := r.Set(0).SlowRing()
	rng := mathx.NewRand(3)
	type kv struct {
		seq int64
		us  float64
	}
	var all []kv
	for i := 0; i < 2000; i++ {
		us := float64(rng.Intn(500)) // deliberate ties
		all = append(all, kv{int64(i), us})
		ring.Admit(SlowRead{Seq: int64(i), LPN: int64(i), TotalUS: us})
	}
	// Reference: sort by (TotalUS desc, Seq asc), take 5.
	want := append([]kv(nil), all...)
	for i := range want { // insertion sort keeps the test dependency-free
		for j := i; j > 0 && (want[j].us > want[j-1].us ||
			(want[j].us == want[j-1].us && want[j].seq < want[j-1].seq)); j-- {
			want[j], want[j-1] = want[j-1], want[j]
		}
	}
	got := r.Snapshot().Slow
	if len(got) != 5 {
		t.Fatalf("retained %d records", len(got))
	}
	for i, rec := range got {
		if rec.TotalUS != want[i].us || rec.Seq != want[i].seq {
			t.Fatalf("slot %d: got (seq=%d, us=%v), want (seq=%d, us=%v)",
				i, rec.Seq, rec.TotalUS, want[i].seq, want[i].us)
		}
		if rec.Shard != 0 {
			t.Fatalf("slot %d: shard %d", i, rec.Shard)
		}
	}
}

// TestSlowRingClonesOffsets: retained records must not alias the
// caller's (pooled) offset slice.
func TestSlowRingClonesOffsets(t *testing.T) {
	r := NewRegistry(1)
	r.KeepSlowest(2)
	ring := r.Set(0).SlowRing()
	ofs := []float64{-1.5, -2.5}
	ring.Admit(SlowRead{Seq: 1, TotalUS: 100, VoltageOffsets: ofs})
	ofs[0] = 999 // caller recycles the buffer
	got := r.Snapshot().Slow
	if len(got) != 1 || got[0].VoltageOffsets[0] != -1.5 {
		t.Fatalf("retained offsets alias the caller's slice: %+v", got)
	}
}

// TestSlowMergeAcrossShards: the merged trace is the overall slowest n
// in (TotalUS desc, Shard asc, Seq asc) order.
func TestSlowMergeAcrossShards(t *testing.T) {
	r := NewRegistry(2)
	r.KeepSlowest(3)
	r.Set(0).SlowRing().Admit(SlowRead{Seq: 0, TotalUS: 50})
	r.Set(0).SlowRing().Admit(SlowRead{Seq: 1, TotalUS: 300})
	r.Set(1).SlowRing().Admit(SlowRead{Seq: 0, TotalUS: 300})
	r.Set(1).SlowRing().Admit(SlowRead{Seq: 1, TotalUS: 200})
	slow := r.Snapshot().Slow
	if len(slow) != 3 {
		t.Fatalf("merged %d records", len(slow))
	}
	if slow[0].Shard != 0 || slow[0].TotalUS != 300 ||
		slow[1].Shard != 1 || slow[1].TotalUS != 300 ||
		slow[2].Shard != 1 || slow[2].TotalUS != 200 {
		t.Fatalf("merge order wrong: %+v", slow)
	}
}

// TestSlowJSONL: the dump is one valid JSON object per line with the
// documented field names.
func TestSlowJSONL(t *testing.T) {
	r := NewRegistry(1)
	r.KeepSlowest(2)
	r.Set(0).SlowRing().Admit(SlowRead{
		Seq: 7, LPN: 42, Plane: 1, Block: 2, Page: 3,
		Retries: 4, AuxSenses: 1, VoltageOffsets: []float64{-0.5},
		QueueUS: 10, SenseUS: 20, XferUS: 5, TotalUS: 35,
		Uncorrectable: true,
	})
	var b strings.Builder
	if err := r.Snapshot().WriteSlowJSONL(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		for _, k := range []string{"shard", "seq", "lpn", "retries", "total_us", "voltage_offsets"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %d missing %q: %s", n, k, sc.Text())
			}
		}
		n++
	}
	if n != 1 {
		t.Fatalf("%d JSONL lines", n)
	}
}
