package flash

import "sync"

// The read kernel recycles its large scratch buffers (threshold-voltage
// vectors, bitmaps, sweep histograms) through sync.Pools so that
// steady-state reads allocate nothing. A pooled slice would normally cost
// one heap allocation per Put (boxing the 24-byte slice header into an
// interface), which defeats the purpose — so each pool is a pair: `full`
// holds boxed buffers, `empty` recycles the boxes themselves. In steady
// state both Get and Put are allocation-free.
type slicePool[T any] struct {
	full  sync.Pool // *sbox[T] with a buffer
	empty sync.Pool // *sbox[T] drained by get
}

type sbox[T any] struct{ s []T }

// get returns a slice of length n with arbitrary contents. Callers that
// need zeroed memory must clear it.
func (p *slicePool[T]) get(n int) []T {
	if b, ok := p.full.Get().(*sbox[T]); ok {
		s := b.s
		b.s = nil
		p.empty.Put(b)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

// put recycles a slice obtained from get (or anywhere else; capacity is
// all that matters). put(nil) is a no-op.
func (p *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	b, ok := p.empty.Get().(*sbox[T])
	if !ok {
		b = new(sbox[T])
	}
	b.s = s[:0]
	p.full.Put(b)
}

var (
	vthPool    slicePool[float64]
	wordPool   slicePool[uint64]
	intPool    slicePool[int]
	statePool  slicePool[uint8]
	readOpPool sync.Pool // *ReadOp
)

// GetBitmap returns a zeroed bitmap for n bits from the shared pool.
// Pair it with PutBitmap on hot paths; an unpaired GetBitmap is exactly
// NewBitmap.
func GetBitmap(n int) Bitmap {
	b := Bitmap(wordPool.get((n + 63) / 64))
	clear(b)
	return b
}

// PutBitmap recycles a bitmap. The caller must not use b afterwards, and
// must not put the same bitmap twice.
func PutBitmap(b Bitmap) { wordPool.put(b) }
