//go:build race

package flash

// raceEnabled reports whether the race detector is active; sync.Pool
// intentionally drops items under -race, so allocation-count tests are
// meaningless there.
const raceEnabled = true
