package flash

import "math/bits"

// Bitmap is a dense bit vector used for page readouts and single-voltage
// sense results.
type Bitmap []uint64

// NewBitmap returns a zeroed bitmap holding n bits.
func NewBitmap(n int) Bitmap {
	return make(Bitmap, (n+63)/64)
}

// Get reports bit i.
func (b Bitmap) Get(i int) bool {
	return b[i/64]&(1<<(uint(i)%64)) != 0
}

// Set sets bit i to v.
func (b Bitmap) Set(i int, v bool) {
	if v {
		b[i/64] |= 1 << (uint(i) % 64)
	} else {
		b[i/64] &^= 1 << (uint(i) % 64)
	}
}

// PopCount returns the number of set bits.
func (b Bitmap) PopCount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// XorCount returns the number of positions where b and o differ. The
// bitmaps must be the same length.
func (b Bitmap) XorCount(o Bitmap) int {
	n := 0
	for i, w := range b {
		n += bits.OnesCount64(w ^ o[i])
	}
	return n
}

// XorCountRange returns the number of differing positions within
// [start, end): whole 64-bit words in the interior, masked popcounts at
// the edges.
func (b Bitmap) XorCountRange(o Bitmap, start, end int) int {
	if start >= end {
		return 0
	}
	sw, ew := start>>6, (end-1)>>6
	headMask := ^uint64(0) << (uint(start) & 63)
	tailMask := ^uint64(0) >> (63 - (uint(end-1) & 63))
	if sw == ew {
		return bits.OnesCount64((b[sw] ^ o[sw]) & headMask & tailMask)
	}
	n := bits.OnesCount64((b[sw] ^ o[sw]) & headMask)
	for i := sw + 1; i < ew; i++ {
		n += bits.OnesCount64(b[i] ^ o[i])
	}
	return n + bits.OnesCount64((b[ew]^o[ew])&tailMask)
}

// PopCountRange returns the number of set bits within [start, end).
func (b Bitmap) PopCountRange(start, end int) int {
	if start >= end {
		return 0
	}
	sw, ew := start>>6, (end-1)>>6
	headMask := ^uint64(0) << (uint(start) & 63)
	tailMask := ^uint64(0) >> (63 - (uint(end-1) & 63))
	if sw == ew {
		return bits.OnesCount64(b[sw] & headMask & tailMask)
	}
	n := bits.OnesCount64(b[sw] & headMask)
	for i := sw + 1; i < ew; i++ {
		n += bits.OnesCount64(b[i])
	}
	return n + bits.OnesCount64(b[ew]&tailMask)
}

// Clone returns a copy of b.
func (b Bitmap) Clone() Bitmap {
	c := make(Bitmap, len(b))
	copy(c, b)
	return c
}
