package flash

import "sentinel3d/internal/physics"

// ReadOp is the fused read kernel: one handle per read operation of a
// wordline. BeginRead materializes the wordline's per-cell threshold
// voltages exactly once — the expensive part of every read — and any
// number of Sense / ReadPage / VoltageErrors / sweep queries are then
// served from that vector without re-deriving it. The chip-level
// convenience methods (Chip.Sense, Chip.ReadPage, ...) are one-query
// wrappers around a ReadOp.
//
// Lifetime and pooling: a ReadOp borrows its threshold-voltage buffer
// (and the struct itself) from package-level pools; call Close when done
// — queries after Close are invalid. Close is idempotent. The ...Into
// query variants write into a caller-supplied bitmap when its capacity
// suffices, so a steady-state caller that recycles its buffers performs
// no allocations at all.
//
// Concurrency: a ReadOp is read-only with respect to the chip and may be
// used concurrently with other ReadOps (including on the same wordline),
// but a single ReadOp must not be shared between goroutines. The chip
// must not be mutated (program/erase/aging) while any ReadOp on it is
// open, exactly as for the chip's read methods.
type ReadOp struct {
	c        *Chip
	b, wl    int
	readSeed uint64
	vth      []float64
	states   []uint8
	// env is scratch for the resolved wordline environment; its slices
	// are retained across pool cycles so BeginRead never allocates in
	// steady state.
	env physics.WLEnv
}

// BeginRead opens one read operation on wordline (b, wl): it computes the
// threshold voltage of every cell under the wordline's current stress for
// one shared sensing-noise draw (readSeed), applying any attached fault
// model, and returns the handle serving queries against that snapshot.
// It panics if the wordline holds no data, like every read.
func (c *Chip) BeginRead(b, wl int, readSeed uint64) *ReadOp {
	c.checkAddr(b, wl)
	op, _ := readOpPool.Get().(*ReadOp)
	if op == nil {
		op = new(ReadOp)
	}
	op.c, op.b, op.wl, op.readSeed = c, b, wl, readSeed
	op.vth = c.vthAll(b, wl, readSeed, vthPool.get(c.cfg.CellsPerWordline), &op.env)
	op.states = c.blocks[b].wls[wl].states
	return op
}

// Close returns the handle's buffers to the pools. The ReadOp (and any
// slice previously returned by its queries into pooled buffers) must not
// be used afterwards. Close is safe to call twice.
func (op *ReadOp) Close() {
	if op.c == nil {
		return
	}
	vthPool.put(op.vth)
	op.c, op.vth, op.states = nil, nil, nil
	readOpPool.Put(op)
}

// Cells returns the number of cells covered by the read.
func (op *ReadOp) Cells() int { return len(op.vth) }

// ensureBitmap returns dst resliced for n bits when its capacity
// suffices, or a fresh bitmap otherwise. The caller is expected to
// overwrite every word.
func ensureBitmap(dst Bitmap, n int) Bitmap {
	words := (n + 63) / 64
	if cap(dst) >= words {
		return dst[:words]
	}
	return NewBitmap(n)
}

// Sense applies the single read voltage v (1-based) at the given offset
// and returns a bitmap with bit i set when cell i's Vth is at or above
// the voltage. The caller owns the result.
func (op *ReadOp) Sense(v int, offset float64) Bitmap {
	return op.SenseInto(nil, v, offset)
}

// SenseInto is Sense writing into dst (reused when large enough).
func (op *ReadOp) SenseInto(dst Bitmap, v int, offset float64) Bitmap {
	rv := op.c.model.DefaultReadVoltage(v) + offset
	n := len(op.vth)
	dst = ensureBitmap(dst, n)
	i := 0
	for wi := range dst {
		lim := i + 64
		if lim > n {
			lim = n
		}
		var w uint64
		for ; i < lim; i++ {
			if op.vth[i] >= rv {
				w |= 1 << (uint(i) & 63)
			}
		}
		dst[wi] = w
	}
	return dst
}

// ReadPage senses page p with the given offsets and returns the readout
// as a bitmap (bit i = cell i's page bit). The caller owns the result.
func (op *ReadOp) ReadPage(p int, o Offsets) Bitmap {
	return op.ReadPageInto(nil, p, o)
}

// ReadPageInto is ReadPage writing into dst (reused when large enough).
func (op *ReadOp) ReadPageInto(dst Bitmap, p int, o Offsets) Bitmap {
	coding := op.c.coding
	pv := coding.PageVoltages(p)
	var voltsArr [8]float64
	volts := voltsArr[:0]
	if len(pv) > len(voltsArr) {
		volts = make([]float64, 0, len(pv))
	}
	for _, v := range pv {
		volts = append(volts, op.c.voltage(v, o))
	}
	start := uint64(coding.ReadBit(p, 0))
	n := len(op.vth)
	dst = ensureBitmap(dst, n)
	i := 0
	for wi := range dst {
		lim := i + 64
		if lim > n {
			lim = n
		}
		var w uint64
		for ; i < lim; i++ {
			vth := op.vth[i]
			below := 0
			for _, rv := range volts {
				if vth >= rv {
					below++
				} else {
					break // voltages ascend; once above Vth, all are
				}
			}
			w |= (start ^ uint64(below&1)) << (uint(i) & 63)
		}
		dst[wi] = w
	}
	return dst
}

// VoltageErrors counts the up and down errors read voltage v (1-based)
// introduces at the given offset: up errors are cells programmed below
// the boundary (state <= v-1) but sensed above it; down errors the
// converse.
func (op *ReadOp) VoltageErrors(v int, offset float64) (up, down int) {
	rv := op.c.model.DefaultReadVoltage(v) + offset
	for i, vth := range op.vth {
		trueBelow := int(op.states[i]) <= v-1
		readBelow := vth < rv
		if trueBelow && !readBelow {
			up++
		} else if !trueBelow && readBelow {
			down++
		}
	}
	return up, down
}

// CountPageErrors reads page p with offsets o and counts bit errors
// against the programmed data, using only pooled scratch.
func (op *ReadOp) CountPageErrors(p int, o Offsets) int {
	n := len(op.vth)
	read := op.ReadPageInto(GetBitmap(n), p, o)
	truth := op.c.TrueBitsInto(GetBitmap(n), op.b, op.wl, p)
	errs := read.XorCount(truth)
	PutBitmap(truth)
	PutBitmap(read)
	return errs
}
