package flash

import (
	"sync"
	"testing"

	"sentinel3d/internal/mathx"
)

// readOpTestChip builds a small programmed, stressed chip. cells need not
// be a multiple of 64 so the word-fill tails are exercised.
func readOpTestChip(t testing.TB, kind Kind, cacheZ bool, cells int) *Chip {
	t.Helper()
	cfg := DefaultConfig(kind)
	cfg.Layers = 4
	cfg.WordlinesPerLayer = 2
	cfg.CellsPerWordline = cells
	cfg.CacheZ = cacheZ
	c := MustNew(cfg)
	r := mathx.NewRand(7)
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		if err := c.ProgramRandom(0, wl, r); err != nil {
			t.Fatal(err)
		}
	}
	c.Cycle(0, 3000)
	c.Age(0, 100, 30)
	return c
}

// The reference implementations below are the pre-kernel bit-by-bit read
// loops; the fused word-fill kernels must reproduce them exactly.

func refSense(vths []float64, rv float64) Bitmap {
	out := NewBitmap(len(vths))
	for i, vth := range vths {
		if vth >= rv {
			out.Set(i, true)
		}
	}
	return out
}

func refReadPage(c *Chip, vths []float64, p int, o Offsets) Bitmap {
	pv := c.Coding().PageVoltages(p)
	volts := make([]float64, len(pv))
	for i, v := range pv {
		volts[i] = c.voltage(v, o)
	}
	out := NewBitmap(len(vths))
	for i, vth := range vths {
		below := 0
		for _, rv := range volts {
			if vth >= rv {
				below++
			} else {
				break
			}
		}
		if c.Coding().ReadBit(p, below) == 1 {
			out.Set(i, true)
		}
	}
	return out
}

func refTrueBits(c *Chip, states []uint8, p int) Bitmap {
	out := NewBitmap(len(states))
	for i, s := range states {
		if c.Coding().PageBit(int(s), p) == 1 {
			out.Set(i, true)
		}
	}
	return out
}

func refVoltageErrors(vths []float64, states []uint8, rv float64, v int) (up, down int) {
	for i, vth := range vths {
		trueBelow := int(states[i]) <= v-1
		readBelow := vth < rv
		if trueBelow && !readBelow {
			up++
		} else if !trueBelow && readBelow {
			down++
		}
	}
	return up, down
}

func bitmapsEqual(a, b Bitmap) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReadOpMatchesReference(t *testing.T) {
	for _, kind := range []Kind{TLC, QLC} {
		for _, cacheZ := range []bool{true, false} {
			for _, cells := range []int{200, 256} {
				c := readOpTestChip(t, kind, cacheZ, cells)
				nv := c.Coding().NumVoltages()
				offsets := make(Offsets, nv)
				for v := 1; v <= nv; v++ {
					offsets[v-1] = float64(v%3-1) * 0.3
				}
				for _, readSeed := range []uint64{0, 42, 1 << 50} {
					op := c.BeginRead(0, 1, readSeed)
					vths := append([]float64(nil), op.vth...)
					states := c.States(0, 1)

					for v := 1; v <= nv; v++ {
						for _, off := range []float64{-0.7, 0, 0.4} {
							rv := c.voltage(v, Offsets(nil)) + off
							if got, want := op.Sense(v, off), refSense(vths, rv); !bitmapsEqual(got, want) {
								t.Fatalf("%v cacheZ=%v cells=%d seed=%d: Sense(v=%d, off=%v) mismatch",
									kind, cacheZ, cells, readSeed, v, off)
							}
							gu, gd := op.VoltageErrors(v, off)
							wu, wd := refVoltageErrors(vths, states, rv, v)
							if gu != wu || gd != wd {
								t.Fatalf("%v cacheZ=%v cells=%d seed=%d: VoltageErrors(v=%d, off=%v) = (%d,%d), want (%d,%d)",
									kind, cacheZ, cells, readSeed, v, off, gu, gd, wu, wd)
							}
						}
					}
					for p := 0; p < c.Coding().Bits(); p++ {
						for _, o := range []Offsets{nil, offsets} {
							if got, want := op.ReadPage(p, o), refReadPage(c, vths, p, o); !bitmapsEqual(got, want) {
								t.Fatalf("%v cacheZ=%v cells=%d seed=%d: ReadPage(p=%d, o=%v) mismatch",
									kind, cacheZ, cells, readSeed, p, o)
							}
						}
						if got, want := c.TrueBits(0, 1, p), refTrueBits(c, states, p); !bitmapsEqual(got, want) {
							t.Fatalf("%v cacheZ=%v cells=%d: TrueBits(p=%d) mismatch", kind, cacheZ, cells, p)
						}
						want := refReadPage(c, vths, p, offsets).XorCount(refTrueBits(c, states, p))
						if got := op.CountPageErrors(p, offsets); got != want {
							t.Fatalf("%v cacheZ=%v cells=%d seed=%d: CountPageErrors(p=%d) = %d, want %d",
								kind, cacheZ, cells, readSeed, p, got, want)
						}
						if got := c.CountPageErrors(0, 1, p, offsets, readSeed); got != want {
							t.Fatalf("chip.CountPageErrors(p=%d) = %d, want %d", p, got, want)
						}
					}

					// One-shot chip wrappers agree with the open handle.
					sv := c.Coding().SentinelVoltage()
					if got := c.Sense(0, 1, sv, 0.1, readSeed); !bitmapsEqual(got, op.Sense(sv, 0.1)) {
						t.Fatalf("chip.Sense disagrees with ReadOp.Sense")
					}
					PutBitmap(c.Sense(0, 1, sv, 0.1, readSeed))
					op.Close()
					op.Close() // double Close is a documented no-op
				}
			}
		}
	}
}

// TestReadOpConcurrent hammers pooled ReadOps and bitmap recycling from
// many goroutines; run under -race it proves the pools never share a
// buffer between concurrent readers, and the result checks prove no
// cross-contamination.
func TestReadOpConcurrent(t *testing.T) {
	c := readOpTestChip(t, TLC, true, 256)
	msb := c.Coding().Bits() - 1
	sv := c.Coding().SentinelVoltage()
	nwl := c.Config().WordlinesPerBlock()

	type key struct {
		wl   int
		seed uint64
	}
	const iters = 64
	want := make(map[key]int)
	for wl := 0; wl < nwl; wl++ {
		for s := 0; s < iters; s++ {
			k := key{wl, uint64(s)}
			want[k] = c.CountPageErrors(0, wl, msb, nil, k.seed)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < iters; s++ {
				wl := (g + s) % nwl
				k := key{wl, uint64(s)}
				op := c.BeginRead(0, wl, k.seed)
				got := op.CountPageErrors(msb, nil)
				bm := op.Sense(sv, 0)
				pop := bm.PopCount()
				op.Close()
				PutBitmap(c.Sense(0, wl, sv, 0, k.seed))
				if got != want[k] {
					errc <- &addrErr{wl, k.seed, got, want[k]}
					return
				}
				if bm2 := c.Sense(0, wl, sv, 0, k.seed); bm2.PopCount() != pop {
					errc <- &addrErr{wl, k.seed, bm2.PopCount(), pop}
					PutBitmap(bm2)
					return
				} else {
					PutBitmap(bm2)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type addrErr struct {
	wl        int
	seed      uint64
	got, want int
}

func (e *addrErr) Error() string {
	return "concurrent read mismatch"
}

// Steady-state allocation discipline: on a pre-warmed chip a Sense or
// ReadPage whose result is recycled performs (amortized) no heap
// allocations; a small budget absorbs sync.Pool noise across GC cycles.
func TestReadAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; alloc counts are meaningless")
	}
	c := readOpTestChip(t, TLC, true, 4096)
	sv := c.Coding().SentinelVoltage()
	msb := c.Coding().Bits() - 1

	var seed uint64
	warm := func(f func()) float64 {
		f() // prime the pools
		return testing.AllocsPerRun(20, f)
	}
	if a := warm(func() {
		seed++
		PutBitmap(c.Sense(0, 0, sv, 0, seed))
	}); a > 2 {
		t.Errorf("Sense allocates %.1f/op on a warm chip, want <= 2", a)
	}
	if a := warm(func() {
		seed++
		PutBitmap(c.ReadPage(0, 0, msb, nil, seed))
	}); a > 2 {
		t.Errorf("ReadPage allocates %.1f/op on a warm chip, want <= 2", a)
	}
	rng := mathx.NewRand(99)
	if a := warm(func() {
		if err := c.ProgramRandom(0, 1, rng); err != nil {
			t.Fatal(err)
		}
	}); a > 2 {
		t.Errorf("ProgramRandom allocates %.1f/op on a warm chip, want <= 2", a)
	}
}
