package flash

import (
	"errors"
	"fmt"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

// ErrProgramFault and ErrEraseFault are returned when an attached
// FaultModel fails a program or erase operation. Callers can match them
// with errors.Is to drive bad-block handling.
var (
	ErrProgramFault = errors.New("flash: program operation failed (injected fault)")
	ErrEraseFault   = errors.New("flash: erase operation failed (injected fault)")
)

// FaultModel is the hook through which a fault-injection layer (see
// internal/fault) perturbs chip behaviour. Implementations must be
// deterministic pure functions of their own seed and the arguments —
// never of call order — so that faulted experiments stay byte-identical
// at any worker count. They must also be safe for concurrent use: reads
// of distinct wordlines call PerturbVth concurrently.
type FaultModel interface {
	// PerturbVth mutates the freshly computed threshold-voltage vector of
	// one read operation on wordline (b, wl). readSeed identifies the read
	// operation, exactly as for sensing noise.
	PerturbVth(b, wl int, readSeed uint64, vth []float64)
	// ProgramFails reports whether programming wordline (b, wl) at the
	// given program epoch fails.
	ProgramFails(b, wl int, epoch uint64) bool
	// EraseFails reports whether the erase'th erase of block b fails.
	EraseFails(b int, erase uint64) bool
}

// Config describes the geometry and technology of a simulated chip.
type Config struct {
	// Kind selects TLC or QLC.
	Kind Kind

	// Blocks, Layers, WordlinesPerLayer and CellsPerWordline set the
	// geometry. The paper's chips have 64 layers; wordline w belongs to
	// layer w % Layers (wordlines of a layer are interleaved across the
	// block, as in multi-string 3D NAND).
	Blocks            int
	Layers            int
	WordlinesPerLayer int
	CellsPerWordline  int

	// OOBFraction is the fraction of each wordline reserved as the
	// out-of-band area (ECC parity + spare). The paper's example page is
	// 18592 bytes with 2208 bytes OOB, i.e. ~11.9%.
	OOBFraction float64

	// Seed determines the chip instance (its frozen process variation).
	Seed uint64

	// Params optionally overrides the physics parameters; nil selects the
	// defaults for Kind.
	Params *physics.Params

	// CacheZ caches each wordline's frozen program offsets as float32 at
	// program time, trading memory (4 bytes/cell) for much faster repeated
	// reads. Recommended for experiments; tests with tiny geometries can
	// disable it to exercise the hash path.
	CacheZ bool
}

// DefaultConfig returns a block-scale configuration mirroring the paper's
// chips: 64 layers, 12 wordlines per layer (768 wordlines per block).
// CellsPerWordline is reduced from the physical ~150k to keep simulations
// fast; error *rates* are unaffected.
func DefaultConfig(kind Kind) Config {
	return Config{
		Kind:              kind,
		Blocks:            1,
		Layers:            64,
		WordlinesPerLayer: 12,
		CellsPerWordline:  32768,
		OOBFraction:       0.119,
		Seed:              1,
		CacheZ:            true,
	}
}

// WordlinesPerBlock returns Layers * WordlinesPerLayer.
func (c Config) WordlinesPerBlock() int { return c.Layers * c.WordlinesPerLayer }

// UserCells returns the number of cells available for user data on a
// wordline (the head of the wordline); the remaining OOB cells form the
// tail.
func (c Config) UserCells() int {
	return c.CellsPerWordline - c.OOBCells()
}

// OOBCells returns the number of OOB cells on a wordline.
func (c Config) OOBCells() int {
	return int(float64(c.CellsPerWordline) * c.OOBFraction)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Blocks <= 0 || c.Layers <= 0 || c.WordlinesPerLayer <= 0 {
		return fmt.Errorf("flash: non-positive geometry %+v", c)
	}
	if c.CellsPerWordline < 64 {
		return fmt.Errorf("flash: CellsPerWordline %d too small", c.CellsPerWordline)
	}
	if c.OOBFraction < 0 || c.OOBFraction > 0.5 {
		return fmt.Errorf("flash: OOBFraction %v out of [0, 0.5]", c.OOBFraction)
	}
	return nil
}

// Chip is one simulated flash chip instance.
//
// Concurrency: a Chip has no internal locking; its safety contract is the
// usual "reads may run concurrently, writes may not". Concretely:
//
//   - All read paths (BeginRead and every ReadOp query, plus the
//     one-shot wrappers Sense, ReadPage, ReadStates, VoltageErrors,
//     SweepVoltageErrors, IsProgrammed, Stress, and the accessors) only
//     read chip state — the physics model is stateless (every frozen
//     offset is re-derived by hashing) — so any number may run
//     concurrently with each other on any wordlines. The pooled scratch
//     buffers behind them (vth vectors, bitmaps, sweep histograms) are
//     handed out per call through sync.Pools, never shared: concurrent
//     readers each hold private buffers. A single *ReadOp*, however, is
//     not for concurrent use — one goroutine per handle.
//   - ProgramStates writes only its own wordline's slot (including the
//     zcache fill when CacheZ is set), so concurrent programs of
//     *distinct* wordlines are safe, as are concurrent reads of other,
//     already-programmed wordlines.
//   - Block-level mutations (EraseBlock, Cycle, Age, SetStress,
//     SetReadTemperature, ResetRetention) write the shared block stress
//     state and must not run concurrently with anything else touching
//     that block. SetFaults swaps the chip-wide fault model and must not
//     run concurrently with anything at all.
//
// The experiment drivers in internal/experiments rely on exactly this:
// they fan out per-wordline work (programming, then read-only sweeps)
// and perform all block aging from the coordinating goroutine.
type Chip struct {
	cfg    Config
	coding *Coding
	model  *physics.Model
	blocks []blockState
	faults FaultModel
}

type blockState struct {
	stress physics.Stress
	erases uint64 // erase attempts, successful or not (fault-model key)
	wls    []wlState
}

type wlState struct {
	programmed bool
	epoch      uint64
	states     []uint8
	zcache     []float32
}

// New builds a chip. The same Config always yields an identical chip.
func New(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	params := cfg.Params
	if params == nil {
		var p physics.Params
		if cfg.Kind == TLC {
			p = physics.TLC()
		} else {
			p = physics.QLC()
		}
		params = &p
	}
	if params.Bits != cfg.Kind.Bits() {
		return nil, fmt.Errorf("flash: params bits %d do not match kind %v",
			params.Bits, cfg.Kind)
	}
	model, err := physics.NewModel(*params, cfg.Seed)
	if err != nil {
		return nil, err
	}
	c := &Chip{
		cfg:    cfg,
		coding: NewCoding(params.Bits),
		model:  model,
		blocks: make([]blockState, cfg.Blocks),
	}
	for b := range c.blocks {
		c.blocks[b].wls = make([]wlState, cfg.WordlinesPerBlock())
	}
	return c, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(cfg Config) *Chip {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the chip configuration.
func (c *Chip) Config() Config { return c.cfg }

// Coding returns the page coding tables.
func (c *Chip) Coding() *Coding { return c.coding }

// Model exposes the underlying physics model (used by characterization and
// oracle policies; production FTL code would not have this).
func (c *Chip) Model() *physics.Model { return c.model }

// SetFaults attaches (or, with nil, detaches) a fault model. It is a
// chip-wide mutation: it must not run concurrently with any other chip
// operation. Attach faults before fanning out reads.
func (c *Chip) SetFaults(f FaultModel) { c.faults = f }

// Faults returns the attached fault model (nil when fault-free).
func (c *Chip) Faults() FaultModel { return c.faults }

// LayerOf returns the layer of wordline wl within its block.
func (c *Chip) LayerOf(wl int) int { return wl % c.cfg.Layers }

// globalWL returns the chip-global wordline id.
func (c *Chip) globalWL(b, wl int) uint64 {
	return uint64(b)*uint64(c.cfg.WordlinesPerBlock()) + uint64(wl)
}

func (c *Chip) checkAddr(b, wl int) {
	if b < 0 || b >= c.cfg.Blocks {
		panic(fmt.Sprintf("flash: block %d out of range [0,%d)", b, c.cfg.Blocks))
	}
	if wl < 0 || wl >= c.cfg.WordlinesPerBlock() {
		panic(fmt.Sprintf("flash: wordline %d out of range [0,%d)",
			wl, c.cfg.WordlinesPerBlock()))
	}
}

// Stress returns the current stress state of block b.
func (c *Chip) Stress(b int) physics.Stress {
	c.checkAddr(b, 0)
	return c.blocks[b].stress
}

// EraseBlock erases block b: all wordlines return to the erased state and
// the block gains one P/E cycle. With a fault model attached the erase
// can fail (ErrEraseFault): the block still wears one cycle but keeps its
// contents — the caller should retire it, as a real FTL would.
func (c *Chip) EraseBlock(b int) error {
	c.checkAddr(b, 0)
	blk := &c.blocks[b]
	blk.erases++
	if c.faults != nil && c.faults.EraseFails(b, blk.erases) {
		blk.stress = blk.stress.Cycled(1)
		return fmt.Errorf("flash: block %d erase %d: %w", b, blk.erases, ErrEraseFault)
	}
	blk.stress = blk.stress.AfterProgram().Cycled(1)
	for i := range blk.wls {
		blk.wls[i] = wlState{}
	}
	return nil
}

// Cycle adds n P/E cycles of pure wear to block b without changing its
// contents — the standard way test platforms pre-condition blocks before
// a characterization run.
func (c *Chip) Cycle(b, n int) {
	c.checkAddr(b, 0)
	c.blocks[b].stress = c.blocks[b].stress.Cycled(n)
}

// Age adds retention time at tempC to block b. Time at elevated
// temperature is Arrhenius-accelerated, exactly like the paper's baking
// procedure.
func (c *Chip) Age(b int, hours, tempC float64) {
	c.checkAddr(b, 0)
	c.blocks[b].stress = c.blocks[b].stress.Aged(c.model.P, hours, tempC)
}

// SetStress forces block b's stress state directly. Characterization
// benches use this to jump between stress points; runtime code never
// would.
func (c *Chip) SetStress(b int, st physics.Stress) {
	c.checkAddr(b, 0)
	c.blocks[b].stress = st
}

// SetReadTemperature sets the ambient temperature for subsequent reads of
// block b. Reading away from the programming temperature shifts the
// states (cross-temperature effect); the paper's Section III-D keeps one
// correlation table per temperature range for exactly this reason.
func (c *Chip) SetReadTemperature(b int, tempC float64) {
	c.checkAddr(b, 0)
	c.blocks[b].stress = c.blocks[b].stress.AtReadTemp(tempC)
}

// ResetRetention clears accumulated retention and read count of block b
// (as if freshly reprogrammed) while keeping wear.
func (c *Chip) ResetRetention(b int) {
	c.checkAddr(b, 0)
	c.blocks[b].stress = c.blocks[b].stress.AfterProgram()
}

// ProgramStates programs wordline (b, wl) with the given per-cell states.
// len(states) must equal CellsPerWordline and every state must be within
// range. Programming bumps the wordline's program epoch, redrawing its
// frozen cell offsets.
func (c *Chip) ProgramStates(b, wl int, states []uint8) error {
	c.checkAddr(b, wl)
	if len(states) != c.cfg.CellsPerWordline {
		return fmt.Errorf("flash: got %d states, want %d",
			len(states), c.cfg.CellsPerWordline)
	}
	maxState := uint8(c.coding.States() - 1)
	for i, s := range states {
		if s > maxState {
			return fmt.Errorf("flash: state %d at cell %d exceeds max %d",
				s, i, maxState)
		}
	}
	w := &c.blocks[b].wls[wl]
	if c.faults != nil && c.faults.ProgramFails(b, wl, w.epoch+1) {
		// A failed program still consumes the epoch (the attempt disturbed
		// the cells) but leaves the wordline's data invalid.
		w.epoch++
		w.programmed = false
		return fmt.Errorf("flash: wordline (%d,%d) program epoch %d: %w",
			b, wl, w.epoch, ErrProgramFault)
	}
	w.programmed = true
	w.epoch++
	if w.states == nil {
		w.states = make([]uint8, len(states))
	}
	copy(w.states, states)
	if c.cfg.CacheZ {
		if w.zcache == nil {
			w.zcache = make([]float32, len(states))
		}
		c.model.FillCellZ(c.globalWL(b, wl), w.epoch, w.zcache)
	} else {
		w.zcache = nil
	}
	return nil
}

// ProgramRandom programs wordline (b, wl) with uniformly random states
// (host data is scrambled in real SSDs, so this is the realistic
// distribution). The rng drives only the data pattern, not the physics.
// The error is always nil on a fault-free chip (the generated states are
// valid by construction); with a fault model attached it can be
// ErrProgramFault.
func (c *Chip) ProgramRandom(b, wl int, rng *mathx.Rand) error {
	states := statePool.get(c.cfg.CellsPerWordline)
	n := c.coding.States()
	for i := range states {
		states[i] = uint8(rng.Intn(n))
	}
	err := c.ProgramStates(b, wl, states) // copies; safe to recycle
	statePool.put(states)
	return err
}

// IsProgrammed reports whether wordline (b, wl) holds data.
func (c *Chip) IsProgrammed(b, wl int) bool {
	c.checkAddr(b, wl)
	return c.blocks[b].wls[wl].programmed
}

// States returns a copy of the programmed states of wordline (b, wl).
// This is simulator ground truth: characterization and oracle baselines
// use it, the sentinel FTL path does not.
func (c *Chip) States(b, wl int) []uint8 {
	c.checkAddr(b, wl)
	w := &c.blocks[b].wls[wl]
	if !w.programmed {
		return nil
	}
	out := make([]uint8, len(w.states))
	copy(out, w.states)
	return out
}

// vthAll fills buf with every cell's threshold voltage for one read
// operation (one shared read seed). It returns the filled slice. env is
// caller-owned scratch for the resolved wordline environment (its slices
// are reused), so the steady-state path performs no allocations.
func (c *Chip) vthAll(b, wl int, readSeed uint64, buf []float64, env *physics.WLEnv) []float64 {
	w := &c.blocks[b].wls[wl]
	if !w.programmed {
		panic("flash: read of unprogrammed wordline")
	}
	n := c.cfg.CellsPerWordline
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	g := c.globalWL(b, wl)
	c.model.EnvInto(env, c.LayerOf(wl), g, c.blocks[b].stress)
	if w.zcache != nil {
		// Batched form of the per-cell sum: the sensing-noise hash stream
		// setup is hoisted out of the loop (physics.NoiseStream); the
		// floating-point grouping matches the scalar path exactly.
		ns := c.model.Noise(readSeed)
		nf := float64(n)
		for i := 0; i < n; i++ {
			s := int(w.states[i])
			pos := (float64(i)+0.5)/nf - 0.5
			var grad float64
			if s > 0 {
				grad = env.Gradient * pos
			}
			buf[i] = env.Mean[s] + grad +
				env.Sigma[s]*float64(w.zcache[i]) +
				ns.At(i)
		}
	} else {
		c.model.FillVth(*env, g, w.states, w.epoch, readSeed, buf)
	}
	if c.faults != nil {
		c.faults.PerturbVth(b, wl, readSeed, buf)
	}
	return buf
}

// Offsets is a per-read-voltage tuning vector in normalized units,
// indexed by voltage-1 (so Offsets[0] tunes V1). A nil Offsets means all
// zeros (factory defaults).
type Offsets []float64

// ZeroOffsets returns an all-zero offset vector for n voltages.
func ZeroOffsets(n int) Offsets { return make(Offsets, n) }

// Clone returns a copy of o.
func (o Offsets) Clone() Offsets {
	if o == nil {
		return nil
	}
	return append(Offsets(nil), o...)
}

// Get returns the offset of voltage v (1-based); 0 if o is nil.
func (o Offsets) Get(v int) float64 {
	if o == nil {
		return 0
	}
	return o[v-1]
}

// voltage returns the actual read voltage for v under offsets o.
func (c *Chip) voltage(v int, o Offsets) float64 {
	return c.model.DefaultReadVoltage(v) + o.Get(v)
}

// ReadPage senses page p of wordline (b, wl) with the given offsets and
// returns the readout as a bitmap (bit i = cell i's page bit). Each call
// is one read operation with fresh sensing noise derived from readSeed.
// The result comes from the shared bitmap pool: callers on hot paths may
// recycle it with PutBitmap, others can simply drop it.
func (c *Chip) ReadPage(b, wl, p int, o Offsets, readSeed uint64) Bitmap {
	op := c.BeginRead(b, wl, readSeed)
	defer op.Close()
	return op.ReadPageInto(GetBitmap(c.cfg.CellsPerWordline), p, o)
}

// TrueBits returns the programmed (ground-truth) bits of page p on
// wordline (b, wl).
func (c *Chip) TrueBits(b, wl, p int) Bitmap {
	return c.TrueBitsInto(nil, b, wl, p)
}

// TrueBitsInto is TrueBits writing into dst (reused when its capacity
// suffices, otherwise freshly allocated).
func (c *Chip) TrueBitsInto(dst Bitmap, b, wl, p int) Bitmap {
	c.checkAddr(b, wl)
	w := &c.blocks[b].wls[wl]
	if !w.programmed {
		panic("flash: TrueBits of unprogrammed wordline")
	}
	var bitOf [16]uint64
	for s := 0; s < c.coding.States(); s++ {
		bitOf[s] = uint64(c.coding.PageBit(s, p))
	}
	n := len(w.states)
	dst = ensureBitmap(dst, n)
	i := 0
	for wi := range dst {
		lim := i + 64
		if lim > n {
			lim = n
		}
		var word uint64
		for ; i < lim; i++ {
			word |= bitOf[w.states[i]] << (uint(i) & 63)
		}
		dst[wi] = word
	}
	return dst
}

// Sense applies the single read voltage v (with offset) and returns a
// bitmap where bit i is set when cell i's Vth is at or above the voltage.
// This models one sensing level — the primitive from which LSB reads and
// the calibration state-change counts are built. The result comes from
// the shared bitmap pool, like ReadPage's.
func (c *Chip) Sense(b, wl, v int, offset float64, readSeed uint64) Bitmap {
	op := c.BeginRead(b, wl, readSeed)
	defer op.Close()
	return op.SenseInto(GetBitmap(c.cfg.CellsPerWordline), v, offset)
}

// VoltageErrors counts the up and down errors introduced by read voltage
// v at the given offset: up errors are cells programmed below the
// boundary (state <= v-1) but sensed above it; down errors the converse.
// This is the paper's per-voltage error metric (Figs. 16-18).
func (c *Chip) VoltageErrors(b, wl, v int, offset float64, readSeed uint64) (up, down int) {
	op := c.BeginRead(b, wl, readSeed)
	defer op.Close()
	return op.VoltageErrors(v, offset)
}

// CountPageErrors reads page p with offsets o and returns the number of
// bit errors against the programmed data.
func (c *Chip) CountPageErrors(b, wl, p int, o Offsets, readSeed uint64) int {
	op := c.BeginRead(b, wl, readSeed)
	defer op.Close()
	return op.CountPageErrors(p, o)
}

// PageRBER returns CountPageErrors divided by the wordline cell count.
func (c *Chip) PageRBER(b, wl, p int, o Offsets, readSeed uint64) float64 {
	return float64(c.CountPageErrors(b, wl, p, o, readSeed)) /
		float64(c.cfg.CellsPerWordline)
}
