//go:build !race

package flash

const raceEnabled = false
