package flash

import (
	"testing"
	"testing/quick"
)

func TestTLCCodingMatchesPaperFig1(t *testing.T) {
	// Paper Fig. 1: S0..S7 store 111,110,100,101,001,000,010,011 in
	// (LSB, CSB, MSB) order.
	c := NewCoding(3)
	want := [][3]int{
		{1, 1, 1}, {1, 1, 0}, {1, 0, 0}, {1, 0, 1},
		{0, 0, 1}, {0, 0, 0}, {0, 1, 0}, {0, 1, 1},
	}
	for s, w := range want {
		got := [3]int{c.PageBit(s, 0), c.PageBit(s, 1), c.PageBit(s, 2)}
		if got != w {
			t.Errorf("state %d bits = %v, want %v", s, got, w)
		}
	}
}

func TestTLCPageVoltages(t *testing.T) {
	c := NewCoding(3)
	cases := []struct {
		page int
		want []int
	}{
		{PageLSB, []int{4}},
		{PageCSB, []int{2, 6}},
		{2, []int{1, 3, 5, 7}}, // MSB
	}
	for _, tc := range cases {
		got := c.PageVoltages(tc.page)
		if len(got) != len(tc.want) {
			t.Fatalf("page %d voltages = %v, want %v", tc.page, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("page %d voltages = %v, want %v", tc.page, got, tc.want)
			}
		}
	}
}

func TestQLCPageVoltageCounts(t *testing.T) {
	// QLC: LSB 1 voltage (V8), CSB 2, CSB2 4, MSB 8 — the paper says "up
	// to eight voltages are used to read the MSB page" and that the
	// sentinel voltage read (V8) is an LSB page read.
	c := NewCoding(4)
	wantCounts := []int{1, 2, 4, 8}
	for p, w := range wantCounts {
		if got := len(c.PageVoltages(p)); got != w {
			t.Errorf("QLC page %d uses %d voltages, want %d", p, got, w)
		}
	}
	if c.SentinelVoltage() != 8 {
		t.Errorf("QLC sentinel voltage = V%d, want V8", c.SentinelVoltage())
	}
	if NewCoding(3).SentinelVoltage() != 4 {
		t.Error("TLC sentinel voltage should be V4")
	}
}

func TestCodingGrayAdjacency(t *testing.T) {
	// Property: adjacent states differ in exactly one bit (Gray code), so
	// a single-boundary misread flips exactly one page bit.
	f := func(bitsRaw, sRaw uint8) bool {
		bits := int(bitsRaw%3) + 2 // 2..4
		c := NewCoding(bits)
		s := int(sRaw) % (c.States() - 1)
		diff := c.Code(s) ^ c.Code(s+1)
		return diff != 0 && diff&(diff-1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodingBoundariesPartitionVoltages(t *testing.T) {
	// Property: every read voltage belongs to exactly one page.
	for _, bits := range []int{2, 3, 4} {
		c := NewCoding(bits)
		seen := make(map[int]int)
		for p := 0; p < bits; p++ {
			for _, v := range c.PageVoltages(p) {
				seen[v]++
				if got := c.PageOfVoltage(v); got != p {
					t.Fatalf("bits=%d PageOfVoltage(%d) = %d, want %d",
						bits, v, got, p)
				}
			}
		}
		if len(seen) != c.NumVoltages() {
			t.Fatalf("bits=%d: %d voltages covered, want %d",
				bits, len(seen), c.NumVoltages())
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("bits=%d: voltage %d on %d pages", bits, v, n)
			}
		}
	}
}

func TestReadBitRoundTrip(t *testing.T) {
	// Property: for a cell in state s with perfect sensing, the number of
	// page-p voltages at or below its Vth decodes back to PageBit(s, p).
	for _, bits := range []int{3, 4} {
		c := NewCoding(bits)
		for s := 0; s < c.States(); s++ {
			for p := 0; p < bits; p++ {
				below := 0
				for _, v := range c.PageVoltages(p) {
					if v <= s { // Vth of state s lies above boundary v iff v <= s
						below++
					}
				}
				if got := c.ReadBit(p, below); got != c.PageBit(s, p) {
					t.Fatalf("bits=%d state=%d page=%d: ReadBit=%d want %d",
						bits, s, p, got, c.PageBit(s, p))
				}
			}
		}
	}
}

func TestErasedStateAllOnes(t *testing.T) {
	for _, bits := range []int{2, 3, 4} {
		c := NewCoding(bits)
		if c.Code(0) != uint8(1<<bits)-1 {
			t.Errorf("bits=%d erased code = %b, want all ones", bits, c.Code(0))
		}
	}
}

func TestPageNames(t *testing.T) {
	q := NewCoding(4)
	names := []string{"LSB", "CSB", "CSB2", "MSB"}
	for p, w := range names {
		if got := q.PageName(p); got != w {
			t.Errorf("QLC page %d name = %q, want %q", p, got, w)
		}
	}
	tl := NewCoding(3)
	if tl.PageName(2) != "MSB" || tl.PageName(1) != "CSB" || tl.PageName(0) != "LSB" {
		t.Error("TLC page names wrong")
	}
}

func TestKindString(t *testing.T) {
	if TLC.String() != "TLC" || QLC.String() != "QLC" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still print")
	}
	if TLC.Bits() != 3 || QLC.Bits() != 4 {
		t.Fatal("Kind.Bits wrong")
	}
}
