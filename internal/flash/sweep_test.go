package flash

import (
	"math"
	"testing"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

func agedQLC(t *testing.T) *Chip {
	t.Helper()
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	c.Cycle(0, 1000)
	c.Age(0, physics.YearHours, physics.RoomTempC)
	return c
}

func TestSweepMatchesPointQueries(t *testing.T) {
	// Property: the batched sweep must agree exactly with per-offset
	// VoltageErrors calls at the same read seed.
	c := agedQLC(t)
	offs := []float64{-30, -20, -10, -5, 0, 5, 10}
	for _, v := range []int{1, 2, 8, 15} {
		ups, downs := c.SweepVoltageErrors(0, 0, v, offs, 99)
		for i, o := range offs {
			u, d := c.VoltageErrors(0, 0, v, o, 99)
			if u != ups[i] || d != downs[i] {
				t.Fatalf("V%d offset %v: sweep (%d,%d) != point (%d,%d)",
					v, o, ups[i], downs[i], u, d)
			}
		}
	}
}

func TestSweepMonotoneStructure(t *testing.T) {
	// As the offset increases, up errors grow and down errors shrink.
	c := agedQLC(t)
	offs := make([]float64, 0, 81)
	for o := -40.0; o <= 40; o++ {
		offs = append(offs, o)
	}
	ups, downs := c.SweepVoltageErrors(0, 0, 8, offs, 5)
	for i := 1; i < len(offs); i++ {
		if ups[i] > ups[i-1] {
			t.Fatalf("up errors increased with offset at %v", offs[i])
		}
		if downs[i] < downs[i-1] {
			t.Fatalf("down errors decreased with offset at %v", offs[i])
		}
	}
}

func TestSweepVShape(t *testing.T) {
	// Total errors across the sweep form a valley with an interior
	// minimum below the edge values (paper Fig. 2).
	c := agedQLC(t)
	offs := make([]float64, 0, 121)
	for o := -60.0; o <= 60; o++ {
		offs = append(offs, o)
	}
	rows := c.SweepAllVoltages(0, 0, offs, 5)
	for v := 2; v <= 15; v++ {
		row := rows[v-1]
		minI, minV := 0, row[0]
		for i, e := range row {
			if e < minV {
				minI, minV = i, e
			}
		}
		if minI == 0 || minI == len(row)-1 {
			t.Fatalf("V%d minimum at sweep edge (offset %v)", v, offs[minI])
		}
		if row[0] <= minV || row[len(row)-1] <= minV {
			t.Fatalf("V%d has no valley: edges %d,%d min %d",
				v, row[0], row[len(row)-1], minV)
		}
	}
}

func TestSweepPanicsOnUnsortedOffsets(t *testing.T) {
	c := agedQLC(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted offsets accepted")
		}
	}()
	c.SweepVoltageErrors(0, 0, 8, []float64{0, -10, 10}, 1)
}

func crossCheckSweep(t *testing.T, bases, vths []float64, states []uint8, nstates int, offs []float64) {
	t.Helper()
	mups, mdowns := sweepMulti(bases, vths, states, nstates, offs)
	for v := range bases {
		u, d := sweepOne(bases[v], vths, states, v+1, offs)
		for i := range offs {
			if u[i] != mups[v][i] || d[i] != mdowns[v][i] {
				t.Fatalf("voltage %d offset %v: sweepMulti (%d,%d) != sweepOne (%d,%d)\nbases=%v\noffs=%v",
					v+1, offs[i], mups[v][i], mdowns[v][i], u[i], d[i], bases, offs)
			}
		}
	}
}

// sweepTrial generates one adversarial sweep instance from a seed and
// cross-checks the one-pass kernel against the reference. Threshold
// voltages are deliberately planted exactly on and one ulp around the
// decision boundaries, where a naive fl(base+off) comparison diverges
// from the reference's fl(vth-base) predicate.
func sweepTrial(t *testing.T, seed uint64) {
	r := mathx.NewRand(seed)
	nstates := 2 + r.Intn(15)
	nv := nstates - 1
	bases := make([]float64, nv)
	b := (r.Float64() - 0.5) * 20
	for v := range bases {
		b += r.Float64() * 3
		bases[v] = b
	}
	noffs := r.Intn(12)
	offs := make([]float64, noffs)
	o := (r.Float64() - 0.5) * 10
	for k := range offs {
		if r.Intn(4) > 0 { // leave duplicates with probability 1/4
			o += r.Float64() * 2
		}
		offs[k] = o
	}
	if noffs > 0 && r.Intn(8) == 0 {
		offs[0] = math.Inf(-1)
	}
	if noffs > 0 && r.Intn(8) == 0 {
		offs[noffs-1] = math.Inf(1)
	}
	ncells := 1 + r.Intn(300)
	vths := make([]float64, ncells)
	states := make([]uint8, ncells)
	for i := range vths {
		states[i] = uint8(r.Intn(nstates))
		switch r.Intn(8) {
		case 0, 1, 2: // bulk: random around a random boundary
			vths[i] = bases[r.Intn(nv)] + (r.Float64()-0.5)*8
		case 3: // exactly the decision threshold
			if noffs > 0 {
				vths[i] = sweepThreshold(offs[r.Intn(noffs)], bases[r.Intn(nv)])
			}
		case 4: // one ulp off the threshold
			if noffs > 0 {
				y := sweepThreshold(offs[r.Intn(noffs)], bases[r.Intn(nv)])
				dir := math.Inf(1)
				if r.Intn(2) == 0 {
					dir = math.Inf(-1)
				}
				vths[i] = math.Nextafter(y, dir)
			}
		case 5: // the naively rounded sum
			if noffs > 0 {
				vths[i] = bases[r.Intn(nv)] + offs[r.Intn(noffs)]
			}
		case 6:
			vths[i] = math.Inf(1 - 2*r.Intn(2))
		case 7:
			vths[i] = math.NaN()
		}
	}
	crossCheckSweep(t, bases, vths, states, nstates, offs)
}

func TestSweepMultiMatchesSweepOne(t *testing.T) {
	for seed := uint64(0); seed < 300; seed++ {
		sweepTrial(t, seed)
	}
}

func FuzzSweepMulti(f *testing.F) {
	for seed := uint64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		sweepTrial(t, seed)
	})
}

func TestSweepOptimalBelowDefaultAfterRetention(t *testing.T) {
	// After heavy retention the optimal offset for mid boundaries is
	// negative.
	c := agedQLC(t)
	offs := make([]float64, 0, 101)
	for o := -60.0; o <= 40; o++ {
		offs = append(offs, o)
	}
	rows := c.SweepAllVoltages(0, 0, offs, 7)
	row := rows[7] // V8
	minI, minV := 0, row[0]
	for i, e := range row {
		if e < minV {
			minI, minV = i, e
		}
	}
	if offs[minI] >= 0 {
		t.Fatalf("V8 optimum %v not negative after 1-year retention", offs[minI])
	}
}
