package flash

import (
	"testing"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

func agedQLC(t *testing.T) *Chip {
	t.Helper()
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	c.Cycle(0, 1000)
	c.Age(0, physics.YearHours, physics.RoomTempC)
	return c
}

func TestSweepMatchesPointQueries(t *testing.T) {
	// Property: the batched sweep must agree exactly with per-offset
	// VoltageErrors calls at the same read seed.
	c := agedQLC(t)
	offs := []float64{-30, -20, -10, -5, 0, 5, 10}
	for _, v := range []int{1, 2, 8, 15} {
		ups, downs := c.SweepVoltageErrors(0, 0, v, offs, 99)
		for i, o := range offs {
			u, d := c.VoltageErrors(0, 0, v, o, 99)
			if u != ups[i] || d != downs[i] {
				t.Fatalf("V%d offset %v: sweep (%d,%d) != point (%d,%d)",
					v, o, ups[i], downs[i], u, d)
			}
		}
	}
}

func TestSweepMonotoneStructure(t *testing.T) {
	// As the offset increases, up errors grow and down errors shrink.
	c := agedQLC(t)
	offs := make([]float64, 0, 81)
	for o := -40.0; o <= 40; o++ {
		offs = append(offs, o)
	}
	ups, downs := c.SweepVoltageErrors(0, 0, 8, offs, 5)
	for i := 1; i < len(offs); i++ {
		if ups[i] > ups[i-1] {
			t.Fatalf("up errors increased with offset at %v", offs[i])
		}
		if downs[i] < downs[i-1] {
			t.Fatalf("down errors decreased with offset at %v", offs[i])
		}
	}
}

func TestSweepVShape(t *testing.T) {
	// Total errors across the sweep form a valley with an interior
	// minimum below the edge values (paper Fig. 2).
	c := agedQLC(t)
	offs := make([]float64, 0, 121)
	for o := -60.0; o <= 60; o++ {
		offs = append(offs, o)
	}
	rows := c.SweepAllVoltages(0, 0, offs, 5)
	for v := 2; v <= 15; v++ {
		row := rows[v-1]
		minI, minV := 0, row[0]
		for i, e := range row {
			if e < minV {
				minI, minV = i, e
			}
		}
		if minI == 0 || minI == len(row)-1 {
			t.Fatalf("V%d minimum at sweep edge (offset %v)", v, offs[minI])
		}
		if row[0] <= minV || row[len(row)-1] <= minV {
			t.Fatalf("V%d has no valley: edges %d,%d min %d",
				v, row[0], row[len(row)-1], minV)
		}
	}
}

func TestSweepPanicsOnUnsortedOffsets(t *testing.T) {
	c := agedQLC(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted offsets accepted")
		}
	}()
	c.SweepVoltageErrors(0, 0, 8, []float64{0, -10, 10}, 1)
}

func TestSweepOptimalBelowDefaultAfterRetention(t *testing.T) {
	// After heavy retention the optimal offset for mid boundaries is
	// negative.
	c := agedQLC(t)
	offs := make([]float64, 0, 101)
	for o := -60.0; o <= 40; o++ {
		offs = append(offs, o)
	}
	rows := c.SweepAllVoltages(0, 0, offs, 7)
	row := rows[7] // V8
	minI, minV := 0, row[0]
	for i, e := range row {
		if e < minV {
			minI, minV = i, e
		}
	}
	if offs[minI] >= 0 {
		t.Fatalf("V8 optimum %v not negative after 1-year retention", offs[minI])
	}
}
