package flash

import (
	"math"
	"testing"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

// testConfig returns a small, fast geometry for unit tests.
func testConfig(kind Kind) Config {
	return Config{
		Kind:              kind,
		Blocks:            2,
		Layers:            8,
		WordlinesPerLayer: 2,
		CellsPerWordline:  4096,
		OOBFraction:       0.119,
		Seed:              7,
		CacheZ:            true,
	}
}

func TestNewValidation(t *testing.T) {
	bad := testConfig(TLC)
	bad.Blocks = 0
	if _, err := New(bad); err == nil {
		t.Fatal("accepted zero blocks")
	}
	bad = testConfig(TLC)
	bad.CellsPerWordline = 10
	if _, err := New(bad); err == nil {
		t.Fatal("accepted tiny wordline")
	}
	bad = testConfig(TLC)
	bad.OOBFraction = 0.9
	if _, err := New(bad); err == nil {
		t.Fatal("accepted OOB fraction > 0.5")
	}
	p := physics.QLC()
	bad = testConfig(TLC)
	bad.Params = &p
	if _, err := New(bad); err == nil {
		t.Fatal("accepted mismatched params bits")
	}
}

func TestGeometryHelpers(t *testing.T) {
	cfg := testConfig(QLC)
	if cfg.WordlinesPerBlock() != 16 {
		t.Fatalf("WordlinesPerBlock = %d", cfg.WordlinesPerBlock())
	}
	if cfg.UserCells()+cfg.OOBCells() != cfg.CellsPerWordline {
		t.Fatal("user + OOB != total")
	}
	if cfg.OOBCells() < 400 || cfg.OOBCells() > 500 {
		t.Fatalf("OOBCells = %d, want ~487", cfg.OOBCells())
	}
	c := MustNew(cfg)
	if c.LayerOf(0) != 0 || c.LayerOf(8) != 0 || c.LayerOf(9) != 1 {
		t.Fatal("LayerOf wrong")
	}
}

func TestProgramAndTrueBitsRoundTrip(t *testing.T) {
	c := MustNew(testConfig(TLC))
	states := make([]uint8, c.Config().CellsPerWordline)
	for i := range states {
		states[i] = uint8(i % 8)
	}
	if err := c.ProgramStates(0, 0, states); err != nil {
		t.Fatal(err)
	}
	if !c.IsProgrammed(0, 0) {
		t.Fatal("wordline not marked programmed")
	}
	got := c.States(0, 0)
	for i := range got {
		if got[i] != states[i] {
			t.Fatalf("state mismatch at %d", i)
		}
	}
	// TrueBits must match the coding tables.
	for p := 0; p < 3; p++ {
		tb := c.TrueBits(0, 0, p)
		for i := 0; i < 64; i++ {
			want := c.Coding().PageBit(int(states[i]), p) == 1
			if tb.Get(i) != want {
				t.Fatalf("TrueBits page %d cell %d = %v, want %v",
					p, i, tb.Get(i), want)
			}
		}
	}
}

func TestProgramStatesRejectsBadInput(t *testing.T) {
	c := MustNew(testConfig(TLC))
	if err := c.ProgramStates(0, 0, make([]uint8, 10)); err == nil {
		t.Fatal("accepted short state slice")
	}
	states := make([]uint8, c.Config().CellsPerWordline)
	states[5] = 8 // TLC max state is 7
	if err := c.ProgramStates(0, 0, states); err == nil {
		t.Fatal("accepted out-of-range state")
	}
}

func TestFreshReadIsNearlyErrorFree(t *testing.T) {
	limits := map[Kind]float64{TLC: 2e-3, QLC: 8e-3}
	for _, kind := range []Kind{TLC, QLC} {
		c := MustNew(testConfig(kind))
		rng := mathx.NewRand(3)
		c.ProgramRandom(0, 0, rng)
		for p := 0; p < kind.Bits(); p++ {
			rber := c.PageRBER(0, 0, p, nil, 99)
			if rber > limits[kind] {
				t.Errorf("%v fresh page %d RBER = %v, want < %v",
					kind, p, rber, limits[kind])
			}
		}
	}
}

func TestAgingIncreasesErrors(t *testing.T) {
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	p := QLC.Bits() - 1 // MSB
	fresh := c.CountPageErrors(0, 0, p, nil, 1)
	c.Cycle(0, 1000)
	c.Age(0, physics.YearHours, physics.RoomTempC)
	aged := c.CountPageErrors(0, 0, p, nil, 1)
	if aged <= fresh+10 {
		t.Fatalf("aging did not increase errors: fresh %d, aged %d", fresh, aged)
	}
	rber := float64(aged) / float64(c.Config().CellsPerWordline)
	if rber < 1e-3 || rber > 2e-1 {
		t.Fatalf("aged MSB RBER = %v, want within [1e-3, 2e-1]", rber)
	}
}

func TestOptimalOffsetReducesErrors(t *testing.T) {
	// Tuning all voltages down after heavy retention must beat defaults.
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	c.Cycle(0, 1000)
	c.Age(0, physics.YearHours, physics.RoomTempC)
	p := QLC.Bits() - 1
	def := c.CountPageErrors(0, 0, p, nil, 5)
	best := def
	for shift := -40.0; shift <= 0; shift += 4 {
		o := ZeroOffsets(c.Coding().NumVoltages())
		for i := range o {
			// Scale the trial shift like the physics: bigger for lower
			// voltages.
			o[i] = shift * (1 - float64(i)/float64(len(o)))
		}
		if e := c.CountPageErrors(0, 0, p, o, 5); e < best {
			best = e
		}
	}
	if best >= def {
		t.Fatalf("no offset improved on default: def=%d best=%d", def, best)
	}
	if float64(best) > 0.6*float64(def) {
		t.Fatalf("tuning gain too small: def=%d best=%d", def, best)
	}
}

func TestEraseResetsWordlinesAndAddsWear(t *testing.T) {
	c := MustNew(testConfig(TLC))
	rng := mathx.NewRand(1)
	c.ProgramRandom(0, 0, rng)
	pe := c.Stress(0).PECycles
	c.EraseBlock(0)
	if c.IsProgrammed(0, 0) {
		t.Fatal("erase left wordline programmed")
	}
	if c.Stress(0).PECycles != pe+1 {
		t.Fatal("erase did not add a P/E cycle")
	}
}

func TestResetRetention(t *testing.T) {
	c := MustNew(testConfig(TLC))
	c.Cycle(0, 100)
	c.Age(0, 1000, physics.RoomTempC)
	c.ResetRetention(0)
	st := c.Stress(0)
	if st.EffRetentionHours != 0 || st.PECycles != 100 {
		t.Fatalf("ResetRetention = %+v", st)
	}
}

func TestReadNoiseMakesReadsDiffer(t *testing.T) {
	// Two reads at the same voltages can differ (paper Section IV-B), but
	// only slightly.
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	c.Cycle(0, 1000)
	c.Age(0, physics.YearHours, physics.RoomTempC)
	p := QLC.Bits() - 1
	r1 := c.ReadPage(0, 0, p, nil, 1)
	r2 := c.ReadPage(0, 0, p, nil, 2)
	diff := r1.XorCount(r2)
	if diff == 0 {
		t.Fatal("two reads identical despite read noise")
	}
	if diff > c.Config().CellsPerWordline/20 {
		t.Fatalf("reads differ too much: %d cells", diff)
	}
	// Same seed = identical read.
	r3 := c.ReadPage(0, 0, p, nil, 1)
	if r1.XorCount(r3) != 0 {
		t.Fatal("same-seed reads differ")
	}
}

func TestVoltageErrorsConsistentWithPageErrors(t *testing.T) {
	// The LSB page has a single boundary, so its page errors must equal
	// the boundary's up+down errors at the same read seed.
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	c.Cycle(0, 1000)
	c.Age(0, physics.YearHours, physics.RoomTempC)
	sv := c.Coding().SentinelVoltage()
	up, down := c.VoltageErrors(0, 0, sv, 0, 42)
	pageErr := c.CountPageErrors(0, 0, PageLSB, nil, 42)
	if up+down != pageErr {
		t.Fatalf("LSB page errors %d != boundary errors %d+%d",
			pageErr, up, down)
	}
}

func TestRetentionShiftProducesDownErrorsAtSentinel(t *testing.T) {
	// Charge leakage moves distributions left: cells in S_i fall below
	// the boundary (down errors dominate), which is what drives d < 0 in
	// the paper's inference.
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	c.Cycle(0, 1000)
	c.Age(0, physics.YearHours, physics.RoomTempC)
	sv := c.Coding().SentinelVoltage()
	up, down := c.VoltageErrors(0, 0, sv, 0, 7)
	if down <= up {
		t.Fatalf("after retention, down (%d) should exceed up (%d)", down, up)
	}
}

func TestSenseMatchesVoltageClassification(t *testing.T) {
	c := MustNew(testConfig(TLC))
	rng := mathx.NewRand(3)
	c.ProgramRandom(0, 0, rng)
	// A sense far below the erased state is all ones; far above the top
	// state, all zeros. Offsets are relative to the default voltage.
	low := c.Sense(0, 0, 1, -5000, 1)
	if low.PopCount() != c.Config().CellsPerWordline {
		t.Fatalf("low sense popcount = %d", low.PopCount())
	}
	nv := c.Coding().NumVoltages()
	high := c.Sense(0, 0, nv, 5000, 1)
	if high.PopCount() != 0 {
		t.Fatalf("high sense popcount = %d", high.PopCount())
	}
}

func TestSenseConsistentWithLSBRead(t *testing.T) {
	// An LSB page read is exactly one sense at the sentinel voltage with
	// the bit inverted (bit=1 below the boundary).
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(4)
	c.ProgramRandom(0, 1, rng)
	c.Age(0, 1000, physics.RoomTempC)
	sv := c.Coding().SentinelVoltage()
	sense := c.Sense(0, 1, sv, 0, 9)
	page := c.ReadPage(0, 1, PageLSB, nil, 9)
	n := c.Config().CellsPerWordline
	for i := 0; i < n; i++ {
		if sense.Get(i) == page.Get(i) {
			t.Fatalf("cell %d: sense %v should be inverse of LSB bit %v",
				i, sense.Get(i), page.Get(i))
		}
	}
}

func TestZCacheMatchesHashPath(t *testing.T) {
	// CacheZ on and off must produce bit-identical reads.
	cfgA := testConfig(QLC)
	cfgA.CacheZ = true
	cfgB := testConfig(QLC)
	cfgB.CacheZ = false
	a, b := MustNew(cfgA), MustNew(cfgB)
	states := make([]uint8, cfgA.CellsPerWordline)
	r := mathx.NewRand(11)
	for i := range states {
		states[i] = uint8(r.Intn(16))
	}
	if err := a.ProgramStates(1, 3, states); err != nil {
		t.Fatal(err)
	}
	if err := b.ProgramStates(1, 3, states); err != nil {
		t.Fatal(err)
	}
	a.Cycle(1, 2000)
	b.Cycle(1, 2000)
	a.Age(1, 8760, physics.RoomTempC)
	b.Age(1, 8760, physics.RoomTempC)
	for p := 0; p < 4; p++ {
		ra := a.ReadPage(1, 3, p, nil, 77)
		rb := b.ReadPage(1, 3, p, nil, 77)
		if n := ra.XorCount(rb); n != 0 {
			// float32 rounding in the cache can flip borderline cells;
			// allow a vanishing fraction.
			if float64(n) > 1e-3*float64(cfgA.CellsPerWordline) {
				t.Fatalf("page %d: cached and hashed reads differ in %d cells", p, n)
			}
		}
	}
}

func TestHighTemperatureAcceleratesErrors(t *testing.T) {
	// One hour at 80C must hurt much more than one hour at 25C
	// (paper Figs. 4-5).
	mk := func(tempC float64) int {
		c := MustNew(testConfig(QLC))
		rng := mathx.NewRand(3)
		c.ProgramRandom(0, 0, rng)
		c.Cycle(0, 1000)
		c.Age(0, 1, tempC)
		return c.CountPageErrors(0, 0, QLC.Bits()-1, nil, 5)
	}
	room := mk(physics.RoomTempC)
	hot := mk(80)
	if hot <= room {
		t.Fatalf("80C errors (%d) not above 25C errors (%d)", hot, room)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := MustNew(testConfig(TLC))
	for _, fn := range []func(){
		func() { c.Stress(99) },
		func() { c.ReadPage(0, 999, 0, nil, 1) },
		func() { c.States(-1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range address")
				}
			}()
			fn()
		}()
	}
	// Reading an unprogrammed wordline panics too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic reading unprogrammed wordline")
			}
		}()
		c.ReadPage(0, 5, 0, nil, 1)
	}()
}

func TestDefaultConfigSane(t *testing.T) {
	for _, kind := range []Kind{TLC, QLC} {
		cfg := DefaultConfig(kind)
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		if cfg.Layers != 64 {
			t.Fatal("paper chips have 64 layers")
		}
		if cfg.WordlinesPerBlock() != 768 {
			t.Fatalf("wordlines per block = %d, want 768", cfg.WordlinesPerBlock())
		}
	}
}

func TestOffsetsHelpers(t *testing.T) {
	var nilOfs Offsets
	if nilOfs.Get(3) != 0 {
		t.Fatal("nil offsets should read 0")
	}
	if nilOfs.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
	o := ZeroOffsets(7)
	o[3] = -5
	if o.Get(4) != -5 {
		t.Fatal("Get is 1-based on voltage index")
	}
	cl := o.Clone()
	cl[3] = 1
	if o[3] != -5 {
		t.Fatal("Clone aliases")
	}
	if math.Abs(o.Get(1)) > 0 {
		t.Fatal("zero offset wrong")
	}
}
