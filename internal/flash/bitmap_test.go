package flash

import (
	"testing"
	"testing/quick"

	"sentinel3d/internal/mathx"
)

func TestBitmapGetSet(t *testing.T) {
	b := NewBitmap(130)
	if len(b) != 3 {
		t.Fatalf("NewBitmap(130) has %d words, want 3", len(b))
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		b.Set(i, false)
		if b.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestBitmapPopCount(t *testing.T) {
	b := NewBitmap(200)
	idx := []int{0, 1, 64, 128, 199}
	for _, i := range idx {
		b.Set(i, true)
	}
	if got := b.PopCount(); got != len(idx) {
		t.Fatalf("PopCount = %d, want %d", got, len(idx))
	}
}

func TestXorCountMatchesRangeCount(t *testing.T) {
	// Property: XorCount == XorCountRange over the full extent.
	f := func(seed uint16) bool {
		r := mathx.NewRand(uint64(seed))
		n := 64 + r.Intn(300)
		a, b := NewBitmap(n), NewBitmap(n)
		for i := 0; i < n; i++ {
			a.Set(i, r.Float64() < 0.5)
			b.Set(i, r.Float64() < 0.5)
		}
		return a.XorCount(b) == a.XorCountRange(b, 0, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestXorCountRangeSubset(t *testing.T) {
	a, b := NewBitmap(128), NewBitmap(128)
	a.Set(10, true)
	a.Set(100, true)
	if got := a.XorCountRange(b, 0, 50); got != 1 {
		t.Fatalf("range [0,50) diff = %d, want 1", got)
	}
	if got := a.XorCountRange(b, 50, 128); got != 1 {
		t.Fatalf("range [50,128) diff = %d, want 1", got)
	}
}

// xorCountRangeRef is the pre-optimization bit-by-bit implementation,
// kept as the oracle for the masked-word rewrite.
func xorCountRangeRef(a, b Bitmap, start, end int) int {
	n := 0
	for i := start; i < end; i++ {
		if a.Get(i) != b.Get(i) {
			n++
		}
	}
	return n
}

func TestXorCountRangeMatchesBitByBit(t *testing.T) {
	f := func(seed uint16) bool {
		r := mathx.NewRand(uint64(seed))
		n := 64 + r.Intn(300)
		a, b := NewBitmap(n), NewBitmap(n)
		for i := 0; i < n; i++ {
			a.Set(i, r.Float64() < 0.5)
			b.Set(i, r.Float64() < 0.5)
		}
		for trial := 0; trial < 16; trial++ {
			start := r.Intn(n + 1)
			end := start + r.Intn(n+1-start)
			if a.XorCountRange(b, start, end) != xorCountRangeRef(a, b, start, end) {
				return false
			}
			if a.PopCountRange(start, end) != xorCountRangeRef(a, NewBitmap(n), start, end) {
				return false
			}
		}
		// Degenerate ranges.
		return a.XorCountRange(b, 5, 5) == 0 && a.PopCountRange(n, n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapClone(t *testing.T) {
	a := NewBitmap(64)
	a.Set(5, true)
	c := a.Clone()
	c.Set(6, true)
	if a.Get(6) {
		t.Fatal("Clone aliases original")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost data")
	}
}
