package flash

import (
	"testing"

	"sentinel3d/internal/mathx"
)

// benchChip returns a programmed paper-geometry TLC chip shared by the
// kernel benchmarks. The wordline is programmed once; every benchmark
// below is read-only.
func benchChip(b *testing.B) *Chip {
	cfg := DefaultConfig(TLC)
	cfg.WordlinesPerLayer = 1 // one wordline per layer is plenty for reads
	chip := MustNew(cfg)
	if err := chip.ProgramRandom(0, 0, mathx.NewRand(42)); err != nil {
		b.Fatal(err)
	}
	return chip
}

func benchGrid() []float64 {
	var offs []float64
	for o := -60.0; o <= 30.0+1e-9; o++ {
		offs = append(offs, o)
	}
	return offs
}

func BenchmarkSense(b *testing.B) {
	chip := benchChip(b)
	sv := chip.Coding().SentinelVoltage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutBitmap(chip.Sense(0, 0, sv, 0, uint64(i)))
	}
}

func BenchmarkReadPage(b *testing.B) {
	chip := benchChip(b)
	msb := chip.Coding().Bits() - 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutBitmap(chip.ReadPage(0, 0, msb, nil, uint64(i)))
	}
}

// BenchmarkReadOpReuse measures the marginal cost of extra queries on an
// open ReadOp — the fused-kernel win: the threshold-voltage vector is
// materialized once, outside the loop.
func BenchmarkReadOpReuse(b *testing.B) {
	chip := benchChip(b)
	sv := chip.Coding().SentinelVoltage()
	msb := chip.Coding().Bits() - 1
	op := chip.BeginRead(0, 0, 1)
	defer op.Close()
	var sense, page Bitmap
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sense = op.SenseInto(sense, sv, 0)
		page = op.ReadPageInto(page, msb, nil)
	}
}

func BenchmarkSweepAllVoltages(b *testing.B) {
	chip := benchChip(b)
	offs := benchGrid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.SweepAllVoltages(0, 0, offs, uint64(i))
	}
}
