// Package flash simulates a 3D NAND flash chip at the threshold-voltage
// level: blocks of layers of wordlines of multi-level cells, with
// program/erase/read operations, per-voltage error accounting and an OOB
// (out-of-band) region on every wordline.
//
// Pages use the inverted reflected-Gray mapping of real chips: the erased
// state reads all-ones, adjacent states differ in exactly one bit, and the
// per-page read-voltage counts are 1 (LSB), 2 (CSB), 4 (CSB2), 8 (MSB) for
// QLC — matching paper Fig. 1 for TLC and the paper's statement that the
// QLC sentinel voltage V8 is read by a single-voltage LSB page read.
package flash

import "fmt"

// Kind selects the cell technology.
type Kind int

const (
	// TLC is triple-level cell flash: 3 bits, 8 states, 7 read voltages.
	TLC Kind = iota
	// QLC is quad-level cell flash: 4 bits, 16 states, 15 read voltages.
	QLC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case TLC:
		return "TLC"
	case QLC:
		return "QLC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bits returns the number of bits stored per cell.
func (k Kind) Bits() int {
	if k == TLC {
		return 3
	}
	return 4
}

// Coding captures the state-to-bits mapping of one cell technology.
type Coding struct {
	bits   int
	states int
	// code[s] is the bit pattern stored when the cell is in state s.
	code []uint8
	// pageBoundaries[p] lists the read-voltage indices (1-based) at which
	// page p's bit flips between adjacent states.
	pageBoundaries [][]int
}

// Page indices by conventional name. PageLSB is always 0; the page read
// with the most voltages (MSB) is always Bits-1.
const (
	PageLSB  = 0
	PageCSB  = 1
	PageCSB2 = 2 // QLC only
)

// NewCoding builds the coding tables for bits-per-cell bits.
func NewCoding(bits int) *Coding {
	states := 1 << bits
	c := &Coding{
		bits:   bits,
		states: states,
		code:   make([]uint8, states),
	}
	mask := uint8(states - 1)
	for s := 0; s < states; s++ {
		gray := uint8(s) ^ uint8(s>>1)
		c.code[s] = ^gray & mask // erased state stores all ones
	}
	c.pageBoundaries = make([][]int, bits)
	for p := 0; p < bits; p++ {
		for v := 1; v < states; v++ {
			if c.PageBit(v-1, p) != c.PageBit(v, p) {
				c.pageBoundaries[p] = append(c.pageBoundaries[p], v)
			}
		}
	}
	return c
}

// Bits returns bits per cell.
func (c *Coding) Bits() int { return c.bits }

// States returns the number of voltage states.
func (c *Coding) States() int { return c.states }

// NumVoltages returns the number of read voltages (states-1). Voltage
// indices are 1-based: V1..V(states-1), as in the paper.
func (c *Coding) NumVoltages() int { return c.states - 1 }

// Code returns the stored bit pattern of state s.
func (c *Coding) Code(s int) uint8 { return c.code[s] }

// PageBit returns the bit of page p stored by state s. Page 0 is the LSB
// page (one read voltage), page bits-1 is the MSB page.
//
// The LSB page is the *top* bit of the inverted Gray code: it flips only
// once across the state ladder, exactly like V4 for TLC / V8 for QLC in
// the paper.
func (c *Coding) PageBit(s, p int) int {
	shift := c.bits - 1 - p
	return int(c.code[s]>>shift) & 1
}

// PageVoltages returns the 1-based read-voltage indices needed to read
// page p, in ascending order. The returned slice must not be modified.
func (c *Coding) PageVoltages(p int) []int { return c.pageBoundaries[p] }

// SentinelVoltage returns the voltage index the paper designates as the
// sentinel voltage: the single boundary of the LSB page (V4 for TLC, V8
// for QLC).
func (c *Coding) SentinelVoltage() int { return c.pageBoundaries[PageLSB][0] }

// PageOfVoltage returns the page whose read applies voltage v (1-based).
// Every voltage belongs to exactly one page.
func (c *Coding) PageOfVoltage(v int) int {
	for p := 0; p < c.bits; p++ {
		for _, b := range c.pageBoundaries[p] {
			if b == v {
				return p
			}
		}
	}
	return -1
}

// ReadBit decodes page p's bit from the number of applied read voltages
// that lie at or below the cell's threshold voltage. below is the count of
// page-p voltages V with V <= Vth; the bit starts at state 0's value and
// flips once per boundary crossed.
func (c *Coding) ReadBit(p, below int) int {
	return c.PageBit(0, p) ^ (below & 1)
}

// StateFromVoltageCount converts the count of all read voltages at or
// below Vth into the read state (full-resolution sensing).
func (c *Coding) StateFromVoltageCount(below int) int { return below }

// PageName returns the conventional page name for index p given the cell
// bits ("LSB", "CSB", "CSB2", "MSB").
func (c *Coding) PageName(p int) string {
	switch {
	case p == 0:
		return "LSB"
	case p == c.bits-1:
		return "MSB"
	case p == 1:
		return "CSB"
	case p == 2:
		return "CSB2"
	default:
		return fmt.Sprintf("P%d", p)
	}
}
