package flash

import (
	"testing"
	"testing/quick"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

// TestPageReadMatchesSenseParity checks the fundamental sensing identity:
// a page readout equals the parity combination of single-voltage senses at
// the page's boundaries (all taken within one read operation).
func TestPageReadMatchesSenseParity(t *testing.T) {
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(17)
	c.ProgramRandom(0, 2, rng)
	c.Cycle(0, 2000)
	c.Age(0, 5000, physics.RoomTempC)
	coding := c.Coding()

	f := func(seedRaw uint16, pRaw uint8) bool {
		p := int(pRaw) % coding.Bits()
		seed := uint64(seedRaw) + 1
		read := c.ReadPage(0, 2, p, nil, seed)
		// Reconstruct from senses at the same read seed.
		senses := make([]Bitmap, 0, len(coding.PageVoltages(p)))
		for _, v := range coding.PageVoltages(p) {
			senses = append(senses, c.Sense(0, 2, v, 0, seed))
		}
		start := coding.PageBit(0, p)
		for i := 0; i < c.Config().CellsPerWordline; i++ {
			below := 0
			for _, s := range senses {
				if s.Get(i) {
					below++
				}
			}
			want := start^(below&1) == 1
			if read.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// TestOffsetsShiftMonotone: lowering a boundary's voltage can only move
// cells from "below" to "above" classification, never the reverse (same
// read seed).
func TestOffsetsShiftMonotone(t *testing.T) {
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(19)
	c.ProgramRandom(0, 1, rng)
	c.Age(0, 8760, physics.RoomTempC)
	hi := c.Sense(0, 1, 8, 0, 7)
	lo := c.Sense(0, 1, 8, -20, 7)
	for i := 0; i < c.Config().CellsPerWordline; i++ {
		if hi.Get(i) && !lo.Get(i) {
			t.Fatalf("cell %d above V8+0 but below V8-20 in the same read", i)
		}
	}
}

// TestRBERInvariantUnderReprogram: reprogramming the same data pattern
// redraws cell offsets, but the statistical RBER stays in the same band.
func TestRBERInvariantUnderReprogram(t *testing.T) {
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(23)
	states := make([]uint8, c.Config().CellsPerWordline)
	for i := range states {
		states[i] = uint8(rng.Intn(16))
	}
	measure := func() float64 {
		if err := c.ProgramStates(0, 0, states); err != nil {
			t.Fatal(err)
		}
		c.SetStress(0, physics.Stress{PECycles: 1000, EffRetentionHours: 8760})
		return c.PageRBER(0, 0, 3, nil, 99)
	}
	a := measure()
	b := measure()
	if a == 0 || b == 0 {
		t.Fatal("degenerate RBER")
	}
	if b > a*2 || a > b*2 {
		t.Fatalf("reprogram changed RBER too much: %v vs %v", a, b)
	}
}

// TestBlocksAreIndependent: wear and retention on one block must not
// affect another.
func TestBlocksAreIndependent(t *testing.T) {
	c := MustNew(testConfig(QLC))
	rng := mathx.NewRand(29)
	c.ProgramRandom(0, 0, rng)
	c.ProgramRandom(1, 0, rng)
	before := c.CountPageErrors(1, 0, 3, nil, 5)
	c.Cycle(0, 5000)
	c.Age(0, 8760, physics.RoomTempC)
	after := c.CountPageErrors(1, 0, 3, nil, 5)
	if before != after {
		t.Fatalf("aging block 0 changed block 1 errors: %d -> %d", before, after)
	}
}
