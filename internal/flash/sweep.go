package flash

import (
	"math"
	"sort"

	"sentinel3d/internal/mathx"
)

// SweepVoltageErrors counts, for every offset in offs (which must be in
// ascending order), the up and down errors that read voltage v would
// produce, all derived from a single read operation (one shared sensing
// noise draw). This is the measurement primitive behind characterization
// sweeps: a real tester likewise re-reads a page across an offset grid.
//
// ups[i] + downs[i] is the error count of boundary v at offs[i].
func (c *Chip) SweepVoltageErrors(b, wl, v int, offs []float64, readSeed uint64) (ups, downs []int) {
	op := c.BeginRead(b, wl, readSeed)
	defer op.Close()
	return op.SweepVoltageErrors(v, offs)
}

// SweepVoltageErrors is the ReadOp form of Chip.SweepVoltageErrors,
// sharing the handle's threshold-voltage vector.
func (op *ReadOp) SweepVoltageErrors(v int, offs []float64) (ups, downs []int) {
	return sweepOne(op.c.model.DefaultReadVoltage(v), op.vth, op.states, v, offs)
}

// sweepOne classifies one boundary across an ascending offset grid given
// precomputed per-cell threshold voltages. It is the per-voltage
// reference kernel; sweepMulti must agree with it bit for bit.
func sweepOne(base float64, vths []float64, states []uint8, v int, offs []float64) (ups, downs []int) {
	if !sort.Float64sAreSorted(offs) {
		panic("flash: sweep offsets must ascend")
	}
	n := len(offs)
	ups = make([]int, n)
	downs = make([]int, n)
	// For a cell truly below the boundary (state <= v-1), an up error
	// occurs at offset x iff vth >= base+x, i.e. for all offsets <= rel
	// where rel = vth-base. For a cell truly above, a down error occurs
	// iff x > rel. Bucket cells by ub = #offsets <= rel, then prefix-sum.
	upAt := make([]int, n+1)
	downAt := make([]int, n+1)
	for i, vth := range vths {
		rel := vth - base
		ub := sort.SearchFloat64s(offs, rel)
		// SearchFloat64s returns the first index with offs[i] >= rel; we
		// need #offsets <= rel, so advance over equal values.
		for ub < n && offs[ub] <= rel {
			ub++
		}
		if int(states[i]) <= v-1 {
			upAt[ub]++
		} else {
			downAt[ub]++
		}
	}
	// ups[i] = # up-cells with ub > i; downs[i] = # down-cells with ub <= i.
	suffix := 0
	for i := n - 1; i >= 0; i-- {
		suffix += upAt[i+1]
		ups[i] = suffix
	}
	prefix := 0
	for i := 0; i < n; i++ {
		prefix += downAt[i]
		downs[i] = prefix
	}
	return ups, downs
}

// SweepAllVoltages classifies every read voltage across the offset grid
// from a single read operation and returns total error counts indexed as
// errs[v-1][i] for voltage v at offs[i].
func (c *Chip) SweepAllVoltages(b, wl int, offs []float64, readSeed uint64) [][]int {
	op := c.BeginRead(b, wl, readSeed)
	defer op.Close()
	return op.SweepAllVoltages(offs)
}

// SweepAllVoltages is the ReadOp form of Chip.SweepAllVoltages. It runs
// the one-pass multi-boundary kernel: one scan of the cells classifies
// every (voltage, offset) pair at once, instead of one scan per voltage.
func (op *ReadOp) SweepAllVoltages(offs []float64) [][]int {
	nv := op.c.coding.NumVoltages()
	out := make([][]int, nv)
	if offsHaveNaN(offs) {
		// The merged-threshold kernel does not model NaN offsets; keep the
		// reference semantics for such (pathological) grids.
		for v := 1; v <= nv; v++ {
			ups, downs := op.SweepVoltageErrors(v, offs)
			row := make([]int, len(offs))
			for i := range row {
				row[i] = ups[i] + downs[i]
			}
			out[v-1] = row
		}
		return out
	}
	var basesArr [16]float64
	var bases []float64
	if nv <= len(basesArr) {
		bases = basesArr[:nv]
	} else {
		bases = make([]float64, nv)
	}
	for v := 1; v <= nv; v++ {
		bases[v-1] = op.c.model.DefaultReadVoltage(v)
	}
	ups, downs := sweepMulti(bases, op.vth, op.states, op.c.coding.States(), offs)
	for v := range out {
		row := make([]int, len(offs))
		for i := range row {
			row[i] = ups[v][i] + downs[v][i]
		}
		out[v] = row
	}
	return out
}

func offsHaveNaN(offs []float64) bool {
	for _, o := range offs {
		if math.IsNaN(o) {
			return true
		}
	}
	return false
}

// sweepThreshold returns the smallest threshold voltage y at which offset
// off catches a cell: the minimal y with off <= fl(y-base), the exact
// floating-point predicate sweepOne evaluates. Because fl(y-base) is
// monotone in y the minimum is well defined; it sits within a couple of
// ulps of fl(base+off), found by Nextafter walking.
func sweepThreshold(off, base float64) float64 {
	y := base + off
	for {
		down := math.Nextafter(y, math.Inf(-1))
		if down == y || !(off <= down-base) {
			break
		}
		y = down
	}
	for !(off <= y-base) {
		up := math.Nextafter(y, math.Inf(1))
		if up == y {
			break
		}
		y = up
	}
	return y
}

// sweepMulti is the one-pass multi-boundary sweep: it buckets every cell
// across the full (voltage, offset) grid in a single scan and returns,
// per voltage (0-based index v = voltage-1), the same ups/downs vectors
// sweepOne would produce for voltage v+1 — bit-identical, for finite
// ascending offs and states < nstates.
//
// Method: each (voltage v, offset k) pair owns the exact threshold
// T[v][k] = sweepThreshold(offs[k], bases[v]); cell i satisfies pair
// (v, k) iff vth[i] >= T[v][k]. All nv*len(offs) thresholds are merged
// into one sorted grid, each cell is placed in the grid with a single
// upper-bound search, counts are histogrammed by (state, grid bin), and
// a two-pointer pass per voltage converts grid bins back into per-voltage
// offset counts. The final prefix/suffix sums match sweepOne exactly.
func sweepMulti(bases, vths []float64, states []uint8, nstates int, offs []float64) (ups, downs [][]int) {
	if !sort.Float64sAreSorted(offs) {
		panic("flash: sweep offsets must ascend")
	}
	nv, no := len(bases), len(offs)
	m := nv * no
	thr := vthPool.get(m)
	for v, base := range bases {
		tv := thr[v*no : (v+1)*no]
		for k, off := range offs {
			tv[k] = sweepThreshold(off, base)
		}
	}
	merged := vthPool.get(m)
	copy(merged, thr)
	sort.Float64s(merged)
	// mapv[v*(m+1)+b] = #{k : T[v][k] <= merged[b-1]} — how many of
	// voltage v's offsets a cell in grid bin b satisfies. Since every
	// T[v][k] is itself a merged value, T[v][k] <= vth iff
	// T[v][k] <= merged[bin(vth)-1].
	mapv := intPool.get(nv * (m + 1))
	for v := range bases {
		tv := thr[v*no : (v+1)*no]
		row := mapv[v*(m+1) : (v+1)*(m+1)]
		row[0] = 0
		j := 0
		for b := 1; b <= m; b++ {
			x := merged[b-1]
			for j < no && tv[j] <= x {
				j++
			}
			row[b] = j
		}
	}
	// One scan over the cells: bin by upper bound in the merged grid,
	// histogram by programmed state. A NaN vth lands past every threshold
	// (bin m), matching the reference path's SearchFloat64s semantics.
	//
	// The placement uses a bucketed index over [merged[0], merged[m-1]]:
	// bucketing x -> min(int((x-lo)*scale), nb-1) is monotone in x, so a
	// cell's upper bound lies inside its own bucket's contiguous run of
	// merged entries (everything in lower buckets is < vth, everything in
	// higher buckets is > vth), and the short in-bucket scan computes the
	// exact same bound the binary search would. Degenerate grids (zero or
	// non-finite span) fall back to the binary search.
	hist := intPool.get(nstates * (m + 1))
	clear(hist)
	var lo, hi, span float64
	if m > 0 {
		lo, hi = merged[0], merged[m-1]
		span = hi - lo
	}
	if span > 0 && !math.IsInf(span, 0) {
		nb := 4 * m
		scale := float64(nb) / span
		start := intPool.get(nb + 1)
		clear(start)
		for _, x := range merged {
			bkt := int((x - lo) * scale)
			if bkt > nb-1 {
				bkt = nb - 1
			}
			start[bkt+1]++
		}
		// Prefix-sum the counts: start[k] = first merged index whose
		// bucket is >= k; bucket k's run is merged[start[k]:start[k+1]].
		for k := 1; k <= nb; k++ {
			start[k] += start[k-1]
		}
		for i, vth := range vths {
			bin := m
			switch {
			case vth != vth: // NaN: past every threshold
			case vth < lo:
				bin = 0
			case vth >= hi: // every entry <= vth
			default:
				k := int((vth - lo) * scale)
				if k > nb-1 {
					k = nb - 1
				}
				j := start[k]
				for e := start[k+1]; j < e && merged[j] <= vth; j++ {
				}
				bin = j
			}
			hist[int(states[i])*(m+1)+bin]++
		}
		intPool.put(start)
	} else {
		for i, vth := range vths {
			bin := m
			if vth == vth {
				bin = mathx.UpperBound(merged, vth)
			}
			hist[int(states[i])*(m+1)+bin]++
		}
	}
	// Aggregate: for each voltage, fold the (state, bin) histogram into
	// the upAt/downAt buckets sweepOne builds, then prefix/suffix-sum
	// identically.
	upAt := intPool.get(no + 1)
	downAt := intPool.get(no + 1)
	ups = make([][]int, nv)
	downs = make([][]int, nv)
	for v := range bases {
		clear(upAt)
		clear(downAt)
		row := mapv[v*(m+1) : (v+1)*(m+1)]
		for s := 0; s < nstates; s++ {
			h := hist[s*(m+1) : (s+1)*(m+1)]
			dest := downAt
			if s <= v { // states at or below boundary v+1 err upward
				dest = upAt
			}
			for b, cnt := range h {
				if cnt != 0 {
					dest[row[b]] += cnt
				}
			}
		}
		u := make([]int, no)
		d := make([]int, no)
		suffix := 0
		for i := no - 1; i >= 0; i-- {
			suffix += upAt[i+1]
			u[i] = suffix
		}
		prefix := 0
		for i := 0; i < no; i++ {
			prefix += downAt[i]
			d[i] = prefix
		}
		ups[v] = u
		downs[v] = d
	}
	intPool.put(downAt)
	intPool.put(upAt)
	intPool.put(hist)
	intPool.put(mapv)
	vthPool.put(merged)
	vthPool.put(thr)
	return ups, downs
}
