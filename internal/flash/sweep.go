package flash

import "sort"

// SweepVoltageErrors counts, for every offset in offs (which must be in
// ascending order), the up and down errors that read voltage v would
// produce, all derived from a single read operation (one shared sensing
// noise draw). This is the measurement primitive behind characterization
// sweeps: a real tester likewise re-reads a page across an offset grid.
//
// ups[i] + downs[i] is the error count of boundary v at offs[i].
func (c *Chip) SweepVoltageErrors(b, wl, v int, offs []float64, readSeed uint64) (ups, downs []int) {
	c.checkAddr(b, wl)
	vths := c.vthAll(b, wl, readSeed, nil)
	return c.sweepOne(vths, c.blocks[b].wls[wl].states, v, offs)
}

// sweepOne classifies one boundary across an ascending offset grid given
// precomputed per-cell threshold voltages.
func (c *Chip) sweepOne(vths []float64, states []uint8, v int, offs []float64) (ups, downs []int) {
	if !sort.Float64sAreSorted(offs) {
		panic("flash: sweep offsets must ascend")
	}
	base := c.model.DefaultReadVoltage(v)
	n := len(offs)
	ups = make([]int, n)
	downs = make([]int, n)
	// For a cell truly below the boundary (state <= v-1), an up error
	// occurs at offset x iff vth >= base+x, i.e. for all offsets <= rel
	// where rel = vth-base. For a cell truly above, a down error occurs
	// iff x > rel. Bucket cells by ub = #offsets <= rel, then prefix-sum.
	upAt := make([]int, n+1)
	downAt := make([]int, n+1)
	for i, vth := range vths {
		rel := vth - base
		ub := sort.SearchFloat64s(offs, rel)
		// SearchFloat64s returns the first index with offs[i] >= rel; we
		// need #offsets <= rel, so advance over equal values.
		for ub < n && offs[ub] <= rel {
			ub++
		}
		if int(states[i]) <= v-1 {
			upAt[ub]++
		} else {
			downAt[ub]++
		}
	}
	// ups[i] = # up-cells with ub > i; downs[i] = # down-cells with ub <= i.
	suffix := 0
	for i := n - 1; i >= 0; i-- {
		suffix += upAt[i+1]
		ups[i] = suffix
	}
	prefix := 0
	for i := 0; i < n; i++ {
		prefix += downAt[i]
		downs[i] = prefix
	}
	return ups, downs
}

// SweepAllVoltages classifies every read voltage across the offset grid
// from a single read operation and returns total error counts indexed as
// errs[v-1][i] for voltage v at offs[i].
func (c *Chip) SweepAllVoltages(b, wl int, offs []float64, readSeed uint64) [][]int {
	c.checkAddr(b, wl)
	vths := c.vthAll(b, wl, readSeed, nil)
	states := c.blocks[b].wls[wl].states
	nv := c.coding.NumVoltages()
	out := make([][]int, nv)
	for v := 1; v <= nv; v++ {
		ups, downs := c.sweepOne(vths, states, v, offs)
		row := make([]int, len(offs))
		for i := range row {
			row[i] = ups[i] + downs[i]
		}
		out[v-1] = row
	}
	return out
}
