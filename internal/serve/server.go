// Package serve is the online serving layer over the ssdsim Fleet: a
// JSON-over-HTTP read server (cmd/flashd) with per-tenant QoS
// (token-bucket admission, latency-SLO tiers, per-tenant retry
// policy), request deadlines propagated into the shard queues, bounded
// backpressure (429 + Retry-After, never unbounded goroutine growth),
// a three-step overload/degradation ladder (shed lowest tier → force
// static-table policy → fail fast with a capped retry budget), and
// graceful drain on SIGTERM.
//
// The request path is: in-flight cap → drain check → tenant lookup →
// ladder shed → token bucket → deadline context → fleet submit →
// post-service deadline+grace check. The last step is what makes the
// "no request is served past deadline+grace" guarantee hold by
// construction: a reply that comes back late is converted to 504, so a
// 200 is only ever written inside the window.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sentinel3d/internal/obs"
	"sentinel3d/internal/ssdsim"
)

// Config parameterizes a Server.
type Config struct {
	// Fleet configures the sharded device fleet. Fleet.Metrics is
	// overwritten with the server's registry.
	Fleet ssdsim.FleetConfig
	// Tenants is the QoS roster (default DefaultTenants). Every tenant
	// policy must name a Fleet sampler, and a "table" sampler must exist
	// for the ladder's force-table step.
	Tenants []TenantConfig
	// Ladder tunes the overload controller.
	Ladder LadderConfig
	// MaxInflight caps concurrently handled /read requests (default
	// 1024); excess requests bounce with 429 before any other work.
	MaxInflight int
	// MaxBatch caps reads per batch request (default 256).
	MaxBatch int
	// Grace is the slack past a request's deadline before a completed
	// read is discarded as a 504 (default 100ms).
	Grace time.Duration
	// Obs is the metrics registry (default: a fresh one sized to the
	// fleet's shard count). The debug endpoint serves its snapshots.
	Obs *obs.Registry
}

func (c *Config) withDefaults() {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Grace <= 0 {
		c.Grace = 100 * time.Millisecond
	}
	if c.Obs == nil {
		shards := c.Fleet.Shards
		if shards < 1 {
			shards = 1
		}
		c.Obs = obs.NewRegistry(shards)
	}
	if len(c.Tenants) == 0 {
		c.Tenants = DefaultTenants()
	}
}

// batchFanout bounds the goroutines one batch request fans out to, so
// worst-case goroutine count is MaxInflight*batchFanout — a config
// product, never a function of load.
const batchFanout = 8

// ReadRequest is the /read body: either a single read (lpn set) or a
// batch. DeadlineMs overrides the tenant's default deadline.
type ReadRequest struct {
	Tenant     string      `json:"tenant"`
	LPN        *int64      `json:"lpn,omitempty"`
	Pages      int         `json:"pages,omitempty"`
	Batch      []BatchRead `json:"batch,omitempty"`
	DeadlineMs float64     `json:"deadline_ms,omitempty"`
}

// BatchRead is one entry of a batch request.
type BatchRead struct {
	LPN   int64 `json:"lpn"`
	Pages int   `json:"pages,omitempty"`
}

// ReadResult is one read's outcome in a /read response. Check is the
// fleet's deterministic outcome checksum in hex (a string because the
// value uses all 64 bits).
type ReadResult struct {
	LPN           int64   `json:"lpn"`
	SimUS         float64 `json:"sim_us"`
	QueueWaitUS   float64 `json:"queue_wait_us"`
	Shard         int     `json:"shard"`
	Retries       int     `json:"retries"`
	AuxSenses     int     `json:"aux_senses"`
	UsedFallback  bool    `json:"used_fallback,omitempty"`
	Uncorrectable bool    `json:"uncorrectable,omitempty"`
	FailFast      bool    `json:"fail_fast,omitempty"`
	UnmappedPages int     `json:"unmapped_pages,omitempty"`
	Check         string  `json:"check"`
	Error         string  `json:"error,omitempty"`
}

// ReadResponse is the 200 body of /read.
type ReadResponse struct {
	Tenant       string       `json:"tenant"`
	Policy       string       `json:"policy"`
	DegradeLevel int          `json:"degrade_level"`
	ForcedPolicy bool         `json:"forced_policy,omitempty"`
	Results      []ReadResult `json:"results"`
}

// errorBody is every non-200 body: a stable machine-readable code.
type errorBody struct {
	Error string `json:"error"`
}

// Server owns the fleet, the tenant registry, the ladder and the HTTP
// front end. Build with New, run with Start, drain with Shutdown.
type Server struct {
	cfg     Config
	fleet   *ssdsim.Fleet
	tenants map[string]*tenant
	ladder  *Ladder

	httpSrv *http.Server
	ln      net.Listener

	inflight chan struct{}
	draining atomic.Bool

	inflightRejects *obs.Counter
	lateReplies     *obs.Counter
}

// New validates the configuration, builds the fleet (premapping the
// logical space) and wires the handlers. The server is not listening
// yet; call Start.
func New(cfg Config) (*Server, error) {
	cfg.withDefaults()
	cfg.Fleet.Metrics = cfg.Obs
	if _, ok := cfg.Fleet.Samplers["table"]; !ok {
		return nil, fmt.Errorf("serve: fleet has no %q sampler for the ladder's force-table step", "table")
	}
	fleet, err := ssdsim.NewFleet(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	set := cfg.Obs.Set(0)
	s := &Server{
		cfg:             cfg,
		fleet:           fleet,
		tenants:         make(map[string]*tenant, len(cfg.Tenants)),
		ladder:          NewLadder(cfg.Ladder, fleet.MaxQueueFrac, set),
		inflight:        make(chan struct{}, cfg.MaxInflight),
		inflightRejects: set.Counter("serve.inflight_rejects", "requests bounced by the global in-flight cap"),
		lateReplies:     set.Counter("serve.late_replies", "completed reads discarded past deadline+grace"),
	}
	for _, tc := range cfg.Tenants {
		if err := tc.withDefaults(); err != nil {
			fleet.Close()
			return nil, err
		}
		if _, dup := s.tenants[tc.Name]; dup {
			fleet.Close()
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
		}
		if _, ok := cfg.Fleet.Samplers[tc.Policy]; !ok {
			fleet.Close()
			return nil, fmt.Errorf("serve: tenant %q names unknown policy %q", tc.Name, tc.Policy)
		}
		s.tenants[tc.Name] = newTenant(tc, set)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/read", s.handleRead)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	// Unmatched paths (including /metrics, /slow, /debug/*) fall through
	// to the obs debug endpoint, so one listener serves both planes.
	mux.Handle("/", obs.DebugMux(cfg.Obs))
	s.httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s, nil
}

// Start binds addr and begins serving; it returns once the listener is
// bound (ask for port 0 and read Addr in tests).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.ladder.Start()
	go func() { _ = s.httpSrv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Fleet exposes the device fleet (chaos tests drive its pressure).
func (s *Server) Fleet() *ssdsim.Fleet { return s.fleet }

// Ladder exposes the overload controller (tests assert transitions).
func (s *Server) Ladder() *Ladder { return s.ladder }

// Registry exposes the metrics registry.
func (s *Server) Registry() *obs.Registry { return s.cfg.Obs }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains gracefully and is what SIGTERM maps to in flashd:
// new requests are refused (readyz flips, /read answers 503), the
// listener closes, in-flight handlers run to completion (bounded by
// ctx), then the fleet services its queued tail and stops. No accepted
// request is ever dropped.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.ladder.Stop()
	var err error
	if s.ln != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.fleet.Close()
	return err
}

// Close stops immediately, dropping in-flight HTTP exchanges (the
// fleet still drains its queue — workers own FTL state).
func (s *Server) Close() error {
	if s.draining.CompareAndSwap(false, true) {
		s.ladder.Stop()
	}
	var err error
	if s.ln != nil {
		err = s.httpSrv.Close()
	}
	s.fleet.Close()
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	_, _ = w.Write([]byte("ok\n"))
}

// readyzBody is the /readyz JSON: ready only when fully serving —
// not draining and the ladder at LevelNormal.
type readyzBody struct {
	Ready        bool `json:"ready"`
	DegradeLevel int  `json:"degrade_level"`
	Draining     bool `json:"draining"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	b := readyzBody{DegradeLevel: s.ladder.Level(), Draining: s.draining.Load()}
	b.Ready = !b.Draining && b.DegradeLevel == LevelNormal
	status := http.StatusOK
	if !b.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, b)
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "method_not_allowed"})
		return
	}
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		s.inflightRejects.Inc()
		retryAfter(w, time.Second)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "inflight_cap"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}

	var req ReadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad_json"})
		return
	}
	t, ok := s.tenants[req.Tenant]
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown_tenant"})
		return
	}

	level := s.ladder.Level()
	if level >= LevelShed && t.cfg.Tier >= s.ladder.cfg.ShedTier {
		t.m.shed.Inc()
		retryAfter(w, time.Second)
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "shed"})
		return
	}

	reads, errCode := normalizeReads(req, s.cfg.MaxBatch)
	if errCode != "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: errCode})
		return
	}

	if ok, wait := t.bucket.Take(float64(len(reads)), start); !ok {
		t.m.throttled.Inc()
		retryAfter(w, wait)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "throttled"})
		return
	}

	deadlineMs := req.DeadlineMs
	if deadlineMs <= 0 {
		deadlineMs = t.cfg.DeadlineMs
	}
	deadline := time.Duration(deadlineMs * float64(time.Millisecond))
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	policy, forced := t.cfg.Policy, false
	if level >= LevelForceTable && policy != "table" {
		policy, forced = "table", true
		t.m.forcedTable.Inc()
	}
	maxRetries := 0
	if level >= LevelFailFast {
		maxRetries = s.ladder.cfg.FailFastRetries
	}

	results, agg := s.fanout(ctx, reads, policy, maxRetries)
	wall := time.Since(start)
	t.m.wallUS.Observe(float64(wall.Microseconds()))

	switch {
	case wall > deadline+s.cfg.Grace || agg.deadline:
		// The deadline+grace guarantee: a reply that is already late is
		// never served as success, whatever the fleet did.
		if !agg.deadline {
			s.lateReplies.Inc()
		}
		t.m.deadline.Inc()
		writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "deadline"})
	case agg.queueFull:
		t.m.queueFull.Inc()
		retryAfter(w, time.Second)
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "queue_full"})
	case agg.stopped:
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
	default:
		if agg.uncorrectable {
			t.m.uncorrectable.Inc()
		}
		if agg.fallback {
			t.m.fallback.Inc()
		}
		if agg.failFast {
			t.m.failFast.Inc()
		}
		if wall > time.Duration(t.cfg.SLOMs*float64(time.Millisecond)) {
			t.m.sloViolations.Inc()
		}
		t.m.ok.Inc()
		writeJSON(w, http.StatusOK, ReadResponse{
			Tenant: req.Tenant, Policy: policy,
			DegradeLevel: level, ForcedPolicy: forced, Results: results,
		})
	}
}

// normalizeReads turns a request body into fleet reads, or returns an
// error code for the 400.
func normalizeReads(req ReadRequest, maxBatch int) ([]ssdsim.FleetRead, string) {
	var reads []ssdsim.FleetRead
	switch {
	case req.LPN != nil && len(req.Batch) > 0:
		return nil, "lpn_and_batch"
	case req.LPN != nil:
		reads = []ssdsim.FleetRead{{LPN: *req.LPN, Pages: req.Pages}}
	case len(req.Batch) > 0:
		if len(req.Batch) > maxBatch {
			return nil, "batch_too_large"
		}
		reads = make([]ssdsim.FleetRead, len(req.Batch))
		for i, b := range req.Batch {
			reads[i] = ssdsim.FleetRead{LPN: b.LPN, Pages: b.Pages}
		}
	default:
		return nil, "empty_request"
	}
	for _, rd := range reads {
		if rd.LPN < 0 {
			return nil, "negative_lpn"
		}
	}
	return reads, ""
}

// aggFlags summarize a fan-out's per-read errors and outcome bits.
type aggFlags struct {
	deadline, queueFull, stopped      bool
	uncorrectable, fallback, failFast bool
}

// fanout services the reads: inline for a single read, through a
// bounded worker pool (batchFanout goroutines) for a batch.
func (s *Server) fanout(ctx context.Context, reads []ssdsim.FleetRead, policy string, maxRetries int) ([]ReadResult, aggFlags) {
	out := make([]ReadResult, len(reads))
	if len(reads) == 1 {
		out[0] = s.one(ctx, reads[0], policy, maxRetries)
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		k := batchFanout
		if k > len(reads) {
			k = len(reads)
		}
		wg.Add(k)
		for w := 0; w < k; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i] = s.one(ctx, reads[i], policy, maxRetries)
				}
			}()
		}
		for i := range reads {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var agg aggFlags
	for i := range out {
		switch out[i].Error {
		case "deadline":
			agg.deadline = true
		case "queue_full":
			agg.queueFull = true
		case "stopped":
			agg.stopped = true
		}
		agg.uncorrectable = agg.uncorrectable || out[i].Uncorrectable
		agg.fallback = agg.fallback || out[i].UsedFallback
		agg.failFast = agg.failFast || out[i].FailFast
	}
	return out, agg
}

// one submits one read and folds the fleet's reply into a ReadResult.
func (s *Server) one(ctx context.Context, rd ssdsim.FleetRead, policy string, maxRetries int) ReadResult {
	rd.Policy = policy
	rd.MaxRetries = maxRetries
	res, err := s.fleet.Submit(ctx, rd)
	rr := ReadResult{LPN: rd.LPN}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			rr.Error = "deadline"
		case errors.Is(err, ssdsim.ErrQueueFull):
			rr.Error = "queue_full"
		case errors.Is(err, ssdsim.ErrFleetStopped):
			rr.Error = "stopped"
		default:
			rr.Error = err.Error()
		}
		return rr
	}
	rr.SimUS = res.SimUS
	rr.QueueWaitUS = float64(res.QueueWait.Microseconds())
	rr.Shard = res.Shard
	rr.Retries = res.Retries
	rr.AuxSenses = res.AuxSenses
	rr.UsedFallback = res.UsedFallback
	rr.Uncorrectable = res.Uncorrectable
	rr.FailFast = res.FailFast
	rr.UnmappedPages = res.UnmappedPages
	rr.Check = strconv.FormatUint(res.Check, 16)
	return rr
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// retryAfter sets the Retry-After header, rounding up to whole seconds
// with a floor of 1.
func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(d / time.Second)
	if d%time.Second != 0 || secs < 1 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}
