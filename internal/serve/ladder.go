package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"sentinel3d/internal/obs"
)

// Ladder levels, engaged strictly in order under sustained overload and
// released in reverse as pressure drains. Each level keeps the measures
// of the levels below it.
const (
	// LevelNormal: full service.
	LevelNormal = 0
	// LevelShed: requests from tenants with Tier >= ShedTier get 503.
	LevelShed = 1
	// LevelForceTable: every read runs the static-table policy — no
	// sentinel aux senses, cheaper and more predictable service time.
	LevelForceTable = 2
	// LevelFailFast: reads carry a hard retry budget (FailFastRetries);
	// pages needing more fail immediately as uncorrectable.
	LevelFailFast = 3
)

// LadderConfig tunes the overload controller.
type LadderConfig struct {
	// Tick is the sampling period of the pressure signal (default 25ms).
	Tick time.Duration
	// Engage and Release are queue-occupancy hysteresis thresholds:
	// pressure >= Engage counts toward climbing a level, pressure <=
	// Release toward stepping down. Defaults 0.75 / 0.25.
	Engage  float64
	Release float64
	// UpTicks and DownTicks are how many consecutive qualifying ticks a
	// transition needs (defaults 2 and 8 — quick to protect, slow to
	// relax). The ladder moves ONE level per transition, never skips.
	UpTicks   int
	DownTicks int
	// ShedTier: tenants with Tier >= ShedTier are shed at LevelShed
	// (default 2).
	ShedTier int
	// FailFastRetries is the per-page retry budget at LevelFailFast
	// (default 1).
	FailFastRetries int
}

func (c *LadderConfig) withDefaults() {
	if c.Tick <= 0 {
		c.Tick = 25 * time.Millisecond
	}
	if c.Engage <= 0 {
		c.Engage = 0.75
	}
	if c.Release <= 0 {
		c.Release = 0.25
	}
	if c.UpTicks <= 0 {
		c.UpTicks = 2
	}
	if c.DownTicks <= 0 {
		c.DownTicks = 8
	}
	if c.ShedTier <= 0 {
		c.ShedTier = 2
	}
	if c.FailFastRetries <= 0 {
		c.FailFastRetries = 1
	}
}

// Transition records one ladder level change.
type Transition struct {
	At       time.Time
	From, To int
	Pressure float64
}

// Ladder is the three-step overload/degradation controller: it samples
// a pressure signal (the fleet's worst queue occupancy) on a ticker and
// walks the level up or down one step at a time with hysteresis. Level
// reads are lock-free; the transition history is kept for tests and
// operators.
type Ladder struct {
	cfg      LadderConfig
	pressure func() float64

	level atomic.Int32

	mu       sync.Mutex
	trans    []Transition
	up, down int

	stop chan struct{}
	done chan struct{}

	levelGauge *obs.Gauge
	transCtr   *obs.Counter
}

// NewLadder builds a stopped ladder; call Start to begin sampling.
// pressure must be safe for concurrent use (Fleet.MaxQueueFrac is).
func NewLadder(cfg LadderConfig, pressure func() float64, set *obs.Set) *Ladder {
	cfg.withDefaults()
	return &Ladder{
		cfg:        cfg,
		pressure:   pressure,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		levelGauge: set.Gauge("serve.degrade_level", "current overload ladder level (0=normal)"),
		transCtr:   set.Counter("serve.ladder_transitions", "ladder level changes"),
	}
}

// Config returns the ladder's effective (defaulted) configuration.
func (l *Ladder) Config() LadderConfig { return l.cfg }

// Level returns the current ladder level.
func (l *Ladder) Level() int { return int(l.level.Load()) }

// Transitions returns a copy of the level-change history in order.
func (l *Ladder) Transitions() []Transition {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Transition, len(l.trans))
	copy(out, l.trans)
	return out
}

// Start launches the sampling loop.
func (l *Ladder) Start() {
	go func() {
		defer close(l.done)
		t := time.NewTicker(l.cfg.Tick)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				l.tick()
			}
		}
	}()
}

// Stop halts sampling; the level freezes at its current value.
func (l *Ladder) Stop() {
	select {
	case <-l.stop:
	default:
		close(l.stop)
	}
	<-l.done
}

// tick samples pressure once and applies the hysteresis state machine:
// UpTicks consecutive samples at or above Engage climb one level,
// DownTicks at or below Release descend one. The middle band resets
// both streaks, so a transition always reflects sustained pressure.
func (l *Ladder) tick() {
	p := l.pressure()
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := int(l.level.Load())
	switch {
	case p >= l.cfg.Engage:
		l.down = 0
		l.up++
		if l.up >= l.cfg.UpTicks && cur < LevelFailFast {
			l.shift(cur, cur+1, p)
		}
	case p <= l.cfg.Release:
		l.up = 0
		l.down++
		if l.down >= l.cfg.DownTicks && cur > LevelNormal {
			l.shift(cur, cur-1, p)
		}
	default:
		l.up, l.down = 0, 0
	}
}

// shift moves the level (caller holds mu) and resets both streaks so
// the next step needs its own full run of qualifying ticks.
func (l *Ladder) shift(from, to int, p float64) {
	l.level.Store(int32(to))
	l.up, l.down = 0, 0
	l.trans = append(l.trans, Transition{At: time.Now(), From: from, To: to, Pressure: p})
	l.transCtr.Inc()
	l.levelGauge.Set(float64(to))
}
