package serve

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// benchTestTenants is a small unlimited-rate closed-loop load.
func benchTestTenants() []BenchTenant {
	return []BenchTenant{
		{Name: "gold", Workers: 4, Requests: 300, SLOMs: 50},
		{Name: "bronze", Workers: 2, Requests: 150, BatchSize: 3, SLOMs: 200},
	}
}

// runClosedOnce brings up a fresh server, runs a fixed-seed closed
// loop against it, and returns the deterministic report rendering.
func runClosedOnce(t *testing.T, seed uint64) ([]byte, *BenchReport) {
	t.Helper()
	s := startServer(t, testConfig())
	rep, err := RunBench(context.Background(), BenchConfig{
		BaseURL: "http://" + s.Addr(),
		Seed:    seed,
		MaxLPN:  4096,
		Tenants: benchTestTenants(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Deterministic().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), rep
}

// TestClosedLoopReportByteIdentical is the flashbench reproducibility
// contract: two closed-loop runs with the same seed against two fresh
// servers render byte-identical deterministic reports.
func TestClosedLoopReportByteIdentical(t *testing.T) {
	a, repA := runClosedOnce(t, 7)
	b, _ := runClosedOnce(t, 7)
	if !bytes.Equal(a, b) {
		t.Fatalf("deterministic reports differ:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	c, _ := runClosedOnce(t, 8)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
	if err := repA.AccountingErr(); err != nil {
		t.Fatal(err)
	}
	for _, tr := range repA.Tenants {
		if tr.OK != tr.Requests {
			t.Fatalf("tenant %s: %d/%d OK in an unloaded closed loop (%+v)",
				tr.Tenant, tr.OK, tr.Requests, tr)
		}
		if tr.Check == "0" || tr.Check == "" {
			t.Fatalf("tenant %s: empty outcome checksum", tr.Tenant)
		}
		if tr.SimP50US <= 0 || tr.SimP99US < tr.SimP50US {
			t.Fatalf("tenant %s: bad sim percentiles %+v", tr.Tenant, tr)
		}
	}
	// gold runs the sentinel policy, bronze the table: bronze must pay
	// more retries per read, gold more aux senses.
	var gold, bronze TenantReport
	for _, tr := range repA.Tenants {
		switch tr.Tenant {
		case "gold":
			gold = tr
		case "bronze":
			bronze = tr
		}
	}
	goldReads := float64(gold.Requests)
	bronzeReads := float64(bronze.Requests * 3) // batch of 3
	if float64(bronze.Retries)/bronzeReads <= float64(gold.Retries)/goldReads {
		t.Fatalf("table tenant not slower: bronze %d/%v retries vs gold %d/%v",
			bronze.Retries, bronzeReads, gold.Retries, goldReads)
	}
	if gold.AuxSenses == 0 || bronze.AuxSenses != 0 {
		t.Fatalf("aux senses: gold %d, bronze %d", gold.AuxSenses, bronze.AuxSenses)
	}
}

// TestOpenLoopAccounting runs a short ramped open loop and checks the
// accounting identity (every arrival lands in exactly one bucket).
func TestOpenLoopAccounting(t *testing.T) {
	s := startServer(t, testConfig())
	rep, err := RunBench(context.Background(), BenchConfig{
		BaseURL:  "http://" + s.Addr(),
		Seed:     3,
		MaxLPN:   4096,
		OpenLoop: true,
		Duration: 400 * time.Millisecond,
		Phases: []LoadPhase{
			{Duration: 200 * time.Millisecond, RateScale: 0.5},
			{Duration: 200 * time.Millisecond, RateScale: 2},
		},
		Tenants: []BenchTenant{{Name: "gold", RateRPS: 500, SLOMs: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.AccountingErr(); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || len(rep.Tenants) != 1 || rep.Tenants[0].Requests == 0 {
		t.Fatalf("open-loop report: %+v", rep)
	}
}

// TestBenchCancelReturnsPartialReport is the SIGINT path: cancelling
// mid-run still yields a consistent (partial) report.
func TestBenchCancelReturnsPartialReport(t *testing.T) {
	s := startServer(t, testConfig())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	rep, err := RunBench(ctx, BenchConfig{
		BaseURL: "http://" + s.Addr(),
		Seed:    1,
		MaxLPN:  4096,
		Tenants: []BenchTenant{{Name: "gold", Workers: 2, Requests: 1 << 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.AccountingErr(); err != nil {
		t.Fatal(err)
	}
}
