package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sentinel3d/internal/ftl"
	"sentinel3d/internal/ssdsim"
)

// testConfig is a small 2-shard server: 98k-page device premapped to
// 4096 LPNs, default sampler pair, unlimited default tenants.
func testConfig() Config {
	sim := ssdsim.DefaultConfig()
	sim.Geo = ftl.Geometry{Channels: 4, ChipsPerChan: 1, DiesPerChip: 2,
		PlanesPerDie: 2, BlocksPerPlane: 32, PagesPerBlock: 192}
	sim.Seed = 42
	return Config{
		Fleet: ssdsim.FleetConfig{
			Sim:         sim,
			Shards:      2,
			PremapPages: 4096,
			Samplers:    DefaultSamplers(),
		},
		Tenants: []TenantConfig{
			{Name: "gold", Tier: 0, SLOMs: 20, Policy: "sentinel", DeadlineMs: 1000},
			{Name: "bronze", Tier: 2, SLOMs: 200, Policy: "table", DeadlineMs: 1000},
		},
	}
}

// startServer builds and starts a server on a free port, registering
// cleanup.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// postRead issues one /read and decodes the body into out (may be nil).
func postRead(t *testing.T, base string, body string, out any) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/read", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("status %d body %q: %v", resp.StatusCode, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestServerReadSingleAndBatch(t *testing.T) {
	s := startServer(t, testConfig())
	base := "http://" + s.Addr()

	var single ReadResponse
	if code, _ := postRead(t, base, `{"tenant":"gold","lpn":123}`, &single); code != 200 {
		t.Fatalf("single read: status %d", code)
	}
	if len(single.Results) != 1 || single.Results[0].LPN != 123 ||
		single.Results[0].Check == "" || single.Policy != "sentinel" {
		t.Fatalf("single read response: %+v", single)
	}

	var batch ReadResponse
	if code, _ := postRead(t, base,
		`{"tenant":"bronze","batch":[{"lpn":1},{"lpn":70,"pages":2},{"lpn":999999}]}`,
		&batch); code != 200 {
		t.Fatalf("batch read: status %d", code)
	}
	if len(batch.Results) != 3 || batch.Policy != "table" {
		t.Fatalf("batch response: %+v", batch)
	}
	if batch.Results[2].UnmappedPages != 1 {
		t.Fatalf("LPN past premap not reported unmapped: %+v", batch.Results[2])
	}

	// The same read twice: byte-equal deterministic outcome.
	var again ReadResponse
	postRead(t, base, `{"tenant":"gold","lpn":123}`, &again)
	if again.Results[0].Check != single.Results[0].Check ||
		again.Results[0].SimUS != single.Results[0].SimUS {
		t.Fatalf("same read diverged: %+v vs %+v", again.Results[0], single.Results[0])
	}
}

func TestServerRejections(t *testing.T) {
	cfg := testConfig()
	cfg.MaxBatch = 4
	s := startServer(t, cfg)
	base := "http://" + s.Addr()

	cases := []struct {
		body string
		want int
	}{
		{`{"tenant":"nobody","lpn":1}`, http.StatusNotFound},
		{`{"tenant":"gold"}`, http.StatusBadRequest},
		{`{"tenant":"gold","lpn":-4}`, http.StatusBadRequest},
		{`{"tenant":"gold","lpn":1,"batch":[{"lpn":2}]}`, http.StatusBadRequest},
		{`{"tenant":"gold","batch":[{"lpn":1},{"lpn":2},{"lpn":3},{"lpn":4},{"lpn":5}]}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _ := postRead(t, base, c.body, nil); code != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, code, c.want)
		}
	}
	resp, err := http.Get(base + "/read")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /read: status %d", resp.StatusCode)
	}
}

func TestServerThrottleAndRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.Tenants = append(cfg.Tenants,
		TenantConfig{Name: "trickle", Tier: 1, RatePerSec: 0.5, Burst: 1, SLOMs: 50})
	s := startServer(t, cfg)
	base := "http://" + s.Addr()

	if code, _ := postRead(t, base, `{"tenant":"trickle","lpn":1}`, nil); code != 200 {
		t.Fatalf("first request: status %d", code)
	}
	code, hdr := postRead(t, base, `{"tenant":"trickle","lpn":2}`, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestServerEndpoints(t *testing.T) {
	s := startServer(t, testConfig())
	base := "http://" + s.Addr()
	for path, want := range map[string]string{
		"/healthz": "ok",
		"/metrics": "fleet_queue_rejects",
		"/readyz":  `"ready":true`,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("%s: body %q missing %q", path, data, want)
		}
	}
}

func TestServerShutdownDrains(t *testing.T) {
	cfg := testConfig()
	s := startServer(t, cfg)
	base := "http://" + s.Addr()
	if code, _ := postRead(t, base, `{"tenant":"gold","lpn":5}`, nil); code != 200 {
		t.Fatal("server not serving before drain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !s.Draining() {
		t.Fatal("Draining() false after Shutdown")
	}
	if _, err := http.Post(base+"/read", "application/json",
		strings.NewReader(`{"tenant":"gold","lpn":5}`)); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	// Idempotent.
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestServerConfigValidation(t *testing.T) {
	bad := testConfig()
	delete(bad.Fleet.Samplers, "table")
	if _, err := New(bad); err == nil {
		t.Fatal("missing table sampler accepted")
	}
	bad = testConfig()
	bad.Tenants = append(bad.Tenants, bad.Tenants[0])
	if _, err := New(bad); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	bad = testConfig()
	bad.Tenants[0].Policy = "nope"
	if _, err := New(bad); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewTokenBucket(10, 2)
	if ok, _ := b.Take(2, now); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, wait := b.Take(1, now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if wait <= 0 || wait > 150*time.Millisecond {
		t.Fatalf("retry-after %v, want ~100ms", wait)
	}
	if ok, _ := b.Take(1, now.Add(200*time.Millisecond)); !ok {
		t.Fatal("refilled bucket refused")
	}
	var nb *TokenBucket
	if ok, _ := nb.Take(1e9, now); !ok {
		t.Fatal("nil bucket must be unlimited")
	}
}

func TestLadderHysteresis(t *testing.T) {
	pressure := 0.0
	l := NewLadder(LadderConfig{UpTicks: 2, DownTicks: 3}, func() float64 { return pressure }, nil)
	step := func(p float64, n int) {
		pressure = p
		for i := 0; i < n; i++ {
			l.tick()
		}
	}
	step(0.9, 1)
	if l.Level() != LevelNormal {
		t.Fatal("one hot tick must not engage")
	}
	step(0.9, 1)
	if l.Level() != LevelShed {
		t.Fatalf("level %d after UpTicks hot ticks, want shed", l.Level())
	}
	step(0.5, 1) // middle band resets streaks
	step(0.9, 2)
	if l.Level() != LevelForceTable {
		t.Fatalf("level %d, want force-table", l.Level())
	}
	step(0.9, 2)
	if l.Level() != LevelFailFast {
		t.Fatalf("level %d, want fail-fast", l.Level())
	}
	step(0.9, 10)
	if l.Level() != LevelFailFast {
		t.Fatal("ladder climbed past its top")
	}
	step(0.1, 2)
	if l.Level() != LevelFailFast {
		t.Fatal("released before DownTicks")
	}
	step(0.1, 1)
	if l.Level() != LevelForceTable {
		t.Fatalf("level %d after DownTicks cool ticks, want force-table", l.Level())
	}
	step(0.1, 6)
	if l.Level() != LevelNormal {
		t.Fatalf("level %d, want normal", l.Level())
	}
	trans := l.Transitions()
	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 2}, {2, 1}, {1, 0}}
	if len(trans) != len(want) {
		t.Fatalf("transitions %v, want %v", trans, want)
	}
	for i, tr := range trans {
		if tr.From != want[i][0] || tr.To != want[i][1] {
			t.Fatalf("transition %d: %d->%d, want %d->%d",
				i, tr.From, tr.To, want[i][0], want[i][1])
		}
	}
}

func TestParsePercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0, 1}, {1, 10}} {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Errorf("P%v = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty sample must yield 0")
	}
}
