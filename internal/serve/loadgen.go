package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"sentinel3d/internal/mathx"
)

// This file is the flashbench load-generator library: closed- and
// open-loop per-tenant arrival streams against a flashd /read
// endpoint, with deterministic seeds split per (seed, tenant, worker)
// via the same Mix3 machinery the simulators use.
//
// Report determinism contract: in closed-loop mode every worker's LPN
// stream is a pure function of its seed and its request count is fixed
// up front, and the server's per-read outcomes are pure functions of
// (server seed, LPN, policy). The multiset of observed outcomes is
// therefore schedule-independent, and BenchReport.Deterministic() —
// counts, outcome sums, XOR checksums, percentiles over *simulated*
// service time — renders byte-identically across runs. Wall-clock
// figures (achieved rps, wall percentiles, SLO violations) live in the
// volatile section, which Deterministic() strips.

// BenchTenant is one tenant's load stream.
type BenchTenant struct {
	// Name must match a server-side tenant.
	Name string `json:"name"`
	// Workers is the closed-loop concurrency (default 4).
	Workers int `json:"workers,omitempty"`
	// Requests is the closed-loop total request count (default 1000),
	// split deterministically across workers.
	Requests int64 `json:"requests,omitempty"`
	// RateRPS is the open-loop arrival rate (requests/s, default 100).
	RateRPS float64 `json:"rate_rps,omitempty"`
	// BatchSize > 1 sends batch requests of that many LPNs (default 1).
	BatchSize int `json:"batch_size,omitempty"`
	// Pages per read (default 1).
	Pages int `json:"pages,omitempty"`
	// DeadlineMs overrides the tenant's server-side default deadline.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// SLOMs is the latency objective used for client-side SLO-violation
	// counting (0 disables).
	SLOMs float64 `json:"slo_ms,omitempty"`
}

func (t *BenchTenant) withDefaults() error {
	if t.Name == "" {
		return fmt.Errorf("serve: bench tenant with empty name")
	}
	if t.Workers <= 0 {
		t.Workers = 4
	}
	if t.Requests <= 0 {
		t.Requests = 1000
	}
	if t.RateRPS <= 0 {
		t.RateRPS = 100
	}
	if t.BatchSize <= 0 {
		t.BatchSize = 1
	}
	if t.Pages <= 0 {
		t.Pages = 1
	}
	return nil
}

// LoadPhase scales every tenant's open-loop rate for a slice of the
// run — the ramp mechanism. Phases repeat until the run ends.
type LoadPhase struct {
	Duration  time.Duration `json:"duration"`
	RateScale float64       `json:"rate_scale"`
}

// BenchConfig parameterizes one flashbench run.
type BenchConfig struct {
	// BaseURL is the flashd endpoint, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Seed keys every tenant/worker arrival stream.
	Seed uint64
	// MaxLPN bounds the uniform LPN draw [0, MaxLPN); it should match
	// the server's premapped footprint. Required.
	MaxLPN int64
	// OpenLoop selects arrival-rate mode; default is closed loop.
	OpenLoop bool
	// Duration bounds an open-loop run (default 5s). Closed-loop runs
	// end when every worker finishes its request quota.
	Duration time.Duration
	// Phases ramp the open-loop rates (optional; default one flat phase).
	Phases []LoadPhase
	// OpenLoopInflight caps outstanding open-loop requests per tenant
	// (default 64); arrivals past the cap are counted as Overflow, not
	// sent — the client-side analogue of shedding.
	OpenLoopInflight int
	// Tenants are the load streams.
	Tenants []BenchTenant
	// Client is the HTTP client (default: keep-alive transport with
	// generous connection pools).
	Client *http.Client
}

// Percentile is the nearest-rank percentile of a sorted sample.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TenantReport is one tenant's section of the final report.
type TenantReport struct {
	Tenant   string `json:"tenant"`
	Requests int64  `json:"requests"`

	// Status counts; Requests = sum of these.
	OK          int64 `json:"ok"`
	Shed        int64 `json:"shed"`
	Throttled   int64 `json:"throttled"`
	QueueFull   int64 `json:"queue_full"`
	Deadline    int64 `json:"deadline"`
	Unavailable int64 `json:"unavailable"`
	Overflow    int64 `json:"overflow"`
	OtherErrors int64 `json:"other_errors"`

	// Outcome sums over OK responses.
	Retries       int64 `json:"retries"`
	AuxSenses     int64 `json:"aux_senses"`
	Fallback      int64 `json:"fallback"`
	Uncorrectable int64 `json:"uncorrectable"`
	FailFast      int64 `json:"fail_fast"`
	ForcedPolicy  int64 `json:"forced_policy"`

	// Check is the XOR over all per-read outcome checksums (hex) — the
	// proof two runs observed identical outcomes.
	Check string `json:"check"`

	// Simulated-service-time percentiles (µs) over OK reads; exact,
	// computed from the sorted sample.
	SimP50US  float64 `json:"sim_p50_us"`
	SimP95US  float64 `json:"sim_p95_us"`
	SimP99US  float64 `json:"sim_p99_us"`
	SimMaxUS  float64 `json:"sim_max_us"`
	SimMeanUS float64 `json:"sim_mean_us"`

	// Volatile wall-clock section — stripped by Deterministic().
	AchievedRPS   float64 `json:"achieved_rps"`
	WallP50Ms     float64 `json:"wall_p50_ms"`
	WallP95Ms     float64 `json:"wall_p95_ms"`
	WallP99Ms     float64 `json:"wall_p99_ms"`
	SLOViolations int64   `json:"slo_violations"`
}

// BenchReport is the final flashbench report.
type BenchReport struct {
	Seed    uint64         `json:"seed"`
	Mode    string         `json:"mode"`
	Tenants []TenantReport `json:"tenants"`
	// WallSeconds is volatile.
	WallSeconds float64 `json:"wall_seconds"`
}

// Deterministic returns a copy with every wall-clock-derived field
// zeroed; its JSON rendering is the byte-identity contract of
// closed-loop runs.
func (r *BenchReport) Deterministic() *BenchReport {
	out := *r
	out.WallSeconds = 0
	out.Tenants = make([]TenantReport, len(r.Tenants))
	copy(out.Tenants, r.Tenants)
	for i := range out.Tenants {
		t := &out.Tenants[i]
		t.AchievedRPS = 0
		t.WallP50Ms, t.WallP95Ms, t.WallP99Ms = 0, 0, 0
		t.SLOViolations = 0
	}
	return &out
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// AccountingErr checks the status-count identity per tenant: every
// issued request must be accounted under exactly one status. A
// non-nil error is an SLO-accounting mismatch (the soak job's gate).
func (r *BenchReport) AccountingErr() error {
	for _, t := range r.Tenants {
		sum := t.OK + t.Shed + t.Throttled + t.QueueFull + t.Deadline +
			t.Unavailable + t.Overflow + t.OtherErrors
		if sum != t.Requests {
			return fmt.Errorf("tenant %q: %d requests but %d accounted",
				t.Tenant, t.Requests, sum)
		}
	}
	return nil
}

// benchAcc accumulates one tenant's results; all fields are
// order-independent (counts, XOR, multiset of samples), so concurrent
// workers can merge in any order.
type benchAcc struct {
	mu     sync.Mutex
	rep    TenantReport
	check  uint64
	sim    []float64
	wallMS []float64
	sloMS  float64
}

func (a *benchAcc) record(status int, body *ReadResponse, errCode string, wall time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rep.Requests++
	a.wallMS = append(a.wallMS, float64(wall.Microseconds())/1e3)
	if a.sloMS > 0 && wall > time.Duration(a.sloMS*float64(time.Millisecond)) {
		a.rep.SLOViolations++
	}
	switch {
	case status == http.StatusOK:
		a.rep.OK++
	case status == http.StatusServiceUnavailable && errCode == "shed":
		a.rep.Shed++
	case status == http.StatusServiceUnavailable:
		a.rep.Unavailable++
	case status == http.StatusTooManyRequests:
		a.rep.Throttled++
	case status == http.StatusGatewayTimeout:
		a.rep.Deadline++
	default:
		a.rep.OtherErrors++
	}
	if status == http.StatusOK && body != nil {
		if body.ForcedPolicy {
			a.rep.ForcedPolicy++
		}
		for _, res := range body.Results {
			a.rep.Retries += int64(res.Retries)
			a.rep.AuxSenses += int64(res.AuxSenses)
			if res.UsedFallback {
				a.rep.Fallback++
			}
			if res.Uncorrectable {
				a.rep.Uncorrectable++
			}
			if res.FailFast {
				a.rep.FailFast++
			}
			if c, err := strconv.ParseUint(res.Check, 16, 64); err == nil {
				a.check ^= c
			}
			a.sim = append(a.sim, res.SimUS)
		}
	}
}

func (a *benchAcc) finish(wallSeconds float64) TenantReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	sort.Float64s(a.sim)
	sort.Float64s(a.wallMS)
	r := a.rep
	r.Check = strconv.FormatUint(a.check, 16)
	r.SimP50US = Percentile(a.sim, 0.50)
	r.SimP95US = Percentile(a.sim, 0.95)
	r.SimP99US = Percentile(a.sim, 0.99)
	if n := len(a.sim); n > 0 {
		r.SimMaxUS = a.sim[n-1]
		var sum float64
		for _, v := range a.sim { // sorted order: fixed summation order
			sum += v
		}
		r.SimMeanUS = sum / float64(n)
	}
	r.WallP50Ms = Percentile(a.wallMS, 0.50)
	r.WallP95Ms = Percentile(a.wallMS, 0.95)
	r.WallP99Ms = Percentile(a.wallMS, 0.99)
	if wallSeconds > 0 {
		r.AchievedRPS = float64(r.Requests) / wallSeconds
	}
	return r
}

// benchClient issues /read calls and feeds an accumulator.
type benchClient struct {
	url    string
	client *http.Client
}

func (c *benchClient) do(ctx context.Context, req ReadRequest) (status int, body *ReadResponse, errCode string, err error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		return 0, nil, "", err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url+"/read", &buf)
	if err != nil {
		return 0, nil, "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb)
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil, eb.Error, nil
	}
	var rb ReadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		return resp.StatusCode, nil, "", err
	}
	return resp.StatusCode, &rb, "", nil
}

// RunBench executes the configured load and returns the final report.
// ctx cancellation stops the run early; the partial report is still
// returned (the SIGINT path of cmd/flashbench).
func RunBench(ctx context.Context, cfg BenchConfig) (*BenchReport, error) {
	if cfg.MaxLPN <= 0 {
		return nil, fmt.Errorf("serve: bench needs MaxLPN > 0")
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("serve: bench needs at least one tenant")
	}
	for i := range cfg.Tenants {
		if err := cfg.Tenants[i].withDefaults(); err != nil {
			return nil, err
		}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.OpenLoopInflight <= 0 {
		cfg.OpenLoopInflight = 64
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}}
	}
	bc := &benchClient{url: cfg.BaseURL, client: cfg.Client}

	accs := make([]*benchAcc, len(cfg.Tenants))
	for i, t := range cfg.Tenants {
		accs[i] = &benchAcc{rep: TenantReport{Tenant: t.Name}, sloMS: t.SLOMs}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for ti := range cfg.Tenants {
		t := cfg.Tenants[ti]
		acc := accs[ti]
		if cfg.OpenLoop {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				runOpenLoop(ctx, bc, cfg, ti, acc)
			}(ti)
			continue
		}
		for w := 0; w < t.Workers; w++ {
			n := t.Requests / int64(t.Workers)
			if int64(w) < t.Requests%int64(t.Workers) {
				n++
			}
			wg.Add(1)
			go func(ti, w int, n int64) {
				defer wg.Done()
				runClosedWorker(ctx, bc, cfg, ti, w, n, acc)
			}(ti, w, n)
		}
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := &BenchReport{Seed: cfg.Seed, Mode: "closed", WallSeconds: wall}
	if cfg.OpenLoop {
		rep.Mode = "open"
	}
	for _, acc := range accs {
		rep.Tenants = append(rep.Tenants, acc.finish(wall))
	}
	sort.Slice(rep.Tenants, func(i, j int) bool {
		return rep.Tenants[i].Tenant < rep.Tenants[j].Tenant
	})
	return rep, nil
}

// nextRequest draws one request from a worker's deterministic stream.
func nextRequest(rng *mathx.Rand, t BenchTenant, maxLPN int64) ReadRequest {
	req := ReadRequest{Tenant: t.Name, DeadlineMs: t.DeadlineMs}
	if t.BatchSize > 1 {
		req.Batch = make([]BatchRead, t.BatchSize)
		for i := range req.Batch {
			req.Batch[i] = BatchRead{LPN: int64(rng.Intn(int(maxLPN))), Pages: t.Pages}
		}
	} else {
		lpn := int64(rng.Intn(int(maxLPN)))
		req.LPN = &lpn
		req.Pages = t.Pages
	}
	return req
}

// runClosedWorker is one closed-loop worker: n sequential requests
// from the stream keyed by (seed, tenant index, worker index).
func runClosedWorker(ctx context.Context, bc *benchClient, cfg BenchConfig, ti, w int, n int64, acc *benchAcc) {
	rng := mathx.NewRand(mathx.Mix3(cfg.Seed, uint64(ti), uint64(w)))
	t := cfg.Tenants[ti]
	for i := int64(0); i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		req := nextRequest(rng, t, cfg.MaxLPN)
		rstart := time.Now()
		status, body, code, err := bc.do(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			status = 0 // transport error → OtherErrors
		}
		acc.record(status, body, code, time.Since(rstart))
	}
}

// runOpenLoop is one tenant's open-loop dispatcher: arrivals at the
// phase-scaled rate, each serviced by a goroutine drawn from a bounded
// in-flight pool; arrivals finding the pool empty count as Overflow.
func runOpenLoop(ctx context.Context, bc *benchClient, cfg BenchConfig, ti int, acc *benchAcc) {
	t := cfg.Tenants[ti]
	rng := mathx.NewRand(mathx.Mix3(cfg.Seed, uint64(ti), 0xa11))
	phases := cfg.Phases
	if len(phases) == 0 {
		phases = []LoadPhase{{Duration: cfg.Duration, RateScale: 1}}
	}
	sem := make(chan struct{}, cfg.OpenLoopInflight)
	var wg sync.WaitGroup
	defer wg.Wait()
	end := time.Now().Add(cfg.Duration)
	pi, phaseEnd := 0, time.Now().Add(phases[0].Duration)
	for time.Now().Before(end) {
		if ctx.Err() != nil {
			return
		}
		for time.Now().After(phaseEnd) {
			pi = (pi + 1) % len(phases)
			phaseEnd = phaseEnd.Add(phases[pi].Duration)
		}
		scale := phases[pi].RateScale
		if scale <= 0 {
			scale = 1
		}
		interval := time.Duration(float64(time.Second) / (t.RateRPS * scale))
		req := nextRequest(rng, t, cfg.MaxLPN)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(req ReadRequest) {
				defer wg.Done()
				defer func() { <-sem }()
				rstart := time.Now()
				status, body, code, err := bc.do(ctx, req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					status = 0
				}
				acc.record(status, body, code, time.Since(rstart))
			}(req)
		default:
			acc.mu.Lock()
			acc.rep.Requests++
			acc.rep.Overflow++
			acc.mu.Unlock()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}
