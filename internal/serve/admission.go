package serve

import (
	"sync"
	"time"
)

// TokenBucket is the per-tenant admission controller: a classic
// leaky-bucket rate limiter refilled continuously at Rate tokens per
// second up to Burst. A nil bucket admits everything (unlimited
// tenants, closed-loop benchmarks).
//
// Admission happens before any queueing, so a throttled tenant costs
// the server one mutex acquisition and nothing else — overload from a
// single tenant never reaches the shard queues of the others.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket builds a bucket that starts full. rate <= 0 returns
// nil — the unlimited bucket.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Take withdraws n tokens at time now. When the bucket cannot cover n
// it withdraws nothing and returns the wait until it could — the
// Retry-After hint for the 429 response.
func (b *TokenBucket) Take(n float64, now time.Time) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	need := n - b.tokens
	return false, time.Duration(need / b.rate * float64(time.Second))
}
