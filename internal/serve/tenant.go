package serve

import (
	"fmt"

	"sentinel3d/internal/obs"
)

// TenantConfig is one tenant's QoS contract: an admission rate, a
// latency-SLO tier (lower tier = higher priority; the ladder sheds the
// highest tiers first), the retry policy its reads use, and a default
// per-request deadline.
type TenantConfig struct {
	Name string `json:"name"`
	// Tier is the SLO tier: 0 is the most protected. Tenants with
	// Tier >= LadderConfig.ShedTier are shed at ladder level 1.
	Tier int `json:"tier"`
	// RatePerSec and Burst parameterize the token bucket; RatePerSec 0
	// means unlimited (no bucket).
	RatePerSec float64 `json:"rate_per_sec"`
	Burst      float64 `json:"burst,omitempty"`
	// SLOMs is the tenant's wall-clock latency objective; flashbench
	// counts responses slower than this as SLO violations.
	SLOMs float64 `json:"slo_ms"`
	// Policy names the retry sampler ("sentinel", "table", "ar2",
	// "history", "sentinel+history"); default "sentinel". Ladder
	// level 2 overrides it to "table".
	Policy string `json:"policy,omitempty"`
	// DeadlineMs is the default request deadline when the request body
	// carries none. Default 1000.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

func (c *TenantConfig) withDefaults() error {
	if c.Name == "" {
		return fmt.Errorf("serve: tenant with empty name")
	}
	if c.Tier < 0 {
		return fmt.Errorf("serve: tenant %q has negative tier %d", c.Name, c.Tier)
	}
	if c.RatePerSec < 0 {
		return fmt.Errorf("serve: tenant %q has negative rate %g", c.Name, c.RatePerSec)
	}
	if c.Burst == 0 {
		c.Burst = 2 * c.RatePerSec
		if c.Burst < 64 {
			c.Burst = 64
		}
	}
	if c.Policy == "" {
		c.Policy = "sentinel"
	}
	if c.SLOMs <= 0 {
		c.SLOMs = 50
	}
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 1000
	}
	return nil
}

// DefaultTenants is the three-tier fleet flashd serves when no tenant
// file is given: a protected sentinel-policy tier, a rate-limited
// middle tier, and a best-effort tier that is first to be shed.
func DefaultTenants() []TenantConfig {
	return []TenantConfig{
		{Name: "gold", Tier: 0, RatePerSec: 0, SLOMs: 20, Policy: "sentinel", DeadlineMs: 250},
		{Name: "silver", Tier: 1, RatePerSec: 2000, SLOMs: 50, Policy: "sentinel", DeadlineMs: 500},
		{Name: "bronze", Tier: 2, RatePerSec: 500, SLOMs: 200, Policy: "table", DeadlineMs: 1000},
	}
}

// tenantMetrics are one tenant's per-outcome counters plus a wall-time
// histogram, all on the registry's shard-0 set (tenant cardinality is
// small; the sharding that matters is the fleet's).
type tenantMetrics struct {
	ok            *obs.Counter
	shed          *obs.Counter
	throttled     *obs.Counter
	queueFull     *obs.Counter
	deadline      *obs.Counter
	uncorrectable *obs.Counter
	fallback      *obs.Counter
	failFast      *obs.Counter
	forcedTable   *obs.Counter
	sloViolations *obs.Counter
	wallUS        *obs.Hist
}

// tenant is the runtime state behind one TenantConfig.
type tenant struct {
	cfg    TenantConfig
	bucket *TokenBucket
	m      tenantMetrics
}

func newTenant(cfg TenantConfig, set *obs.Set) *tenant {
	p := "serve.tenant." + cfg.Name + "."
	return &tenant{
		cfg:    cfg,
		bucket: NewTokenBucket(cfg.RatePerSec, cfg.Burst),
		m: tenantMetrics{
			ok:            set.Counter(p+"ok", "requests answered 200"),
			shed:          set.Counter(p+"shed", "requests shed by the overload ladder"),
			throttled:     set.Counter(p+"throttled", "requests rejected by the token bucket"),
			queueFull:     set.Counter(p+"queue_full", "requests bounced off a full shard queue"),
			deadline:      set.Counter(p+"deadline", "requests past deadline (reject-on-arrival or late reply)"),
			uncorrectable: set.Counter(p+"uncorrectable", "requests with at least one uncorrectable page"),
			fallback:      set.Counter(p+"fallback", "requests that used the static-table fallback"),
			failFast:      set.Counter(p+"fail_fast", "requests cut off by the fail-fast retry budget"),
			forcedTable:   set.Counter(p+"forced_table", "requests whose policy was overridden to the static table"),
			sloViolations: set.Counter(p+"slo_violations", "answered requests slower than the tenant SLO"),
			wallUS:        set.Hist(p+"wall_us", "wall-clock request latency"),
		},
	}
}
