package serve

import "sentinel3d/internal/ssdsim"

// DefaultSamplers is the policy set flashd serves when no trained
// model is wired in: empirical retry pools per TLC page type, shaped
// like the paper's headline result — the sentinel policy resolves most
// reads in one attempt at the cost of an aux sense, the vendor table
// walks fixed retry sequences (deep for MSB pages), and the adaptive
// policies (ar2, history, sentinel+history) shave or skip the walk
// entirely via pipelining and the per-block offset-history cache.
func DefaultSamplers() map[string]ssdsim.RetrySampler {
	return map[string]ssdsim.RetrySampler{
		"sentinel": &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
			{ // LSB: one boundary, sentinel nails it
				{Retries: 0}, {Retries: 0}, {Retries: 0}, {Retries: 0, AuxSenses: 1},
			},
			{ // CSB
				{Retries: 0, AuxSenses: 1}, {Retries: 0, AuxSenses: 1},
				{Retries: 1, AuxSenses: 1}, {Retries: 0},
			},
			{ // MSB: deepest levels, occasional second shot
				{Retries: 0, AuxSenses: 1}, {Retries: 1, AuxSenses: 1},
				{Retries: 1, AuxSenses: 2}, {Retries: 2, AuxSenses: 1},
			},
		}},
		"table": &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
			{ // LSB
				{Retries: 0}, {Retries: 1}, {Retries: 1}, {Retries: 2},
			},
			{ // CSB
				{Retries: 1}, {Retries: 2}, {Retries: 2}, {Retries: 3},
			},
			{ // MSB: long vendor sequences
				{Retries: 2}, {Retries: 4}, {Retries: 5}, {Retries: 6},
			},
		}},
		// ar2 walks the same vendor sequences as table, but pipelined —
		// at the system level retry steps are still charged serially
		// (the overlap is chip-internal), so the pools only shave the
		// occasional deepest step the pipeline reaches one entry early.
		"ar2": &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
			{ // LSB
				{Retries: 0}, {Retries: 1}, {Retries: 1}, {Retries: 2},
			},
			{ // CSB
				{Retries: 1}, {Retries: 2}, {Retries: 2}, {Retries: 3},
			},
			{ // MSB
				{Retries: 2}, {Retries: 4}, {Retries: 4}, {Retries: 6},
			},
		}},
		// history starts at the block's last-known-good offsets: warm
		// blocks land first shot with no aux sense; a cold block here and
		// there falls back to a short table walk.
		"history": &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
			{ // LSB
				{Retries: 0}, {Retries: 0}, {Retries: 0}, {Retries: 0},
			},
			{ // CSB
				{Retries: 0}, {Retries: 0}, {Retries: 0}, {Retries: 1},
			},
			{ // MSB
				{Retries: 0}, {Retries: 0}, {Retries: 1}, {Retries: 2},
			},
		}},
		// sentinel+history consults the cache first and recovers misses
		// with sentinel inference, so cold blocks cost an aux sense
		// instead of a table walk.
		"sentinel+history": &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
			{ // LSB
				{Retries: 0}, {Retries: 0}, {Retries: 0}, {Retries: 0},
			},
			{ // CSB
				{Retries: 0}, {Retries: 0}, {Retries: 0}, {Retries: 0, AuxSenses: 1},
			},
			{ // MSB
				{Retries: 0}, {Retries: 0}, {Retries: 0, AuxSenses: 1}, {Retries: 1, AuxSenses: 1},
			},
		}},
	}
}
