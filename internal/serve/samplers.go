package serve

import "sentinel3d/internal/ssdsim"

// DefaultSamplers is the sentinel-vs-static-table policy pair flashd
// serves when no trained model is wired in: empirical retry pools per
// TLC page type, shaped like the paper's headline result — the
// sentinel policy resolves most reads in one attempt at the cost of an
// aux sense, the vendor table walks fixed retry sequences (deep for
// MSB pages).
func DefaultSamplers() map[string]ssdsim.RetrySampler {
	return map[string]ssdsim.RetrySampler{
		"sentinel": &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
			{ // LSB: one boundary, sentinel nails it
				{Retries: 0}, {Retries: 0}, {Retries: 0}, {Retries: 0, AuxSenses: 1},
			},
			{ // CSB
				{Retries: 0, AuxSenses: 1}, {Retries: 0, AuxSenses: 1},
				{Retries: 1, AuxSenses: 1}, {Retries: 0},
			},
			{ // MSB: deepest levels, occasional second shot
				{Retries: 0, AuxSenses: 1}, {Retries: 1, AuxSenses: 1},
				{Retries: 1, AuxSenses: 2}, {Retries: 2, AuxSenses: 1},
			},
		}},
		"table": &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
			{ // LSB
				{Retries: 0}, {Retries: 1}, {Retries: 1}, {Retries: 2},
			},
			{ // CSB
				{Retries: 1}, {Retries: 2}, {Retries: 2}, {Retries: 3},
			},
			{ // MSB: long vendor sequences
				{Retries: 2}, {Retries: 4}, {Retries: 5}, {Retries: 6},
			},
		}},
	}
}
