package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosGate is the injected shard stall: while on, every request on
// every shard pays the delay — queues back up exactly like a slow die.
type chaosGate struct {
	on    atomic.Bool
	delay time.Duration
}

func (g *chaosGate) stall(int) time.Duration {
	if g.on.Load() {
		return g.delay
	}
	return 0
}

// chaosObservation is one client-observed request.
type chaosObservation struct {
	status     int
	errCode    string
	wall       time.Duration
	deadlineMs float64
	forced     bool
	failFast   bool
}

// chaosClient posts one read and records what the server did.
func chaosRead(client *http.Client, base, tenant string, lpn int64, deadlineMs float64) chaosObservation {
	start := time.Now()
	body := strings.NewReader(
		`{"tenant":"` + tenant + `","lpn":` + itoa(lpn) + `,"deadline_ms":` + ftoa(deadlineMs) + `}`)
	resp, err := client.Post(base+"/read", "application/json", body)
	ob := chaosObservation{status: 0, wall: time.Since(start), deadlineMs: deadlineMs}
	if err != nil {
		return ob
	}
	defer resp.Body.Close()
	ob.status = resp.StatusCode
	if resp.StatusCode == http.StatusOK {
		var rr ReadResponse
		if json.NewDecoder(resp.Body).Decode(&rr) == nil {
			ob.forced = rr.ForcedPolicy
			for _, res := range rr.Results {
				ob.failFast = ob.failFast || res.FailFast
			}
		}
	} else {
		var eb errorBody
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&eb)
		ob.errCode = eb.Error
	}
	ob.wall = time.Since(start)
	return ob
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func readyzLevel(t *testing.T, base string) (int, bool) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rb readyzBody
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	if rb.Ready != (resp.StatusCode == http.StatusOK) {
		t.Fatalf("readyz status %d but body %+v", resp.StatusCode, rb)
	}
	return rb.DegradeLevel, rb.Ready
}

// TestChaosLadderAndDrain is the tentpole's robustness proof, run
// under -race by CI: with injected shard stalls and 5% corruption the
// ladder engages strictly in order (shed -> force-table -> fail-fast),
// /readyz reflects the state, no 200 is observed past deadline+grace
// (plus client slack), recovery steps back down to normal, and a
// shutdown mid-traffic drains without losing an in-flight request.
func TestChaosLadderAndDrain(t *testing.T) {
	gate := &chaosGate{delay: 30 * time.Millisecond}
	cfg := testConfig()
	cfg.Fleet.QueueDepth = 8
	cfg.Fleet.CorruptRate = 0.05
	cfg.Fleet.Stall = gate.stall
	cfg.Grace = 50 * time.Millisecond
	cfg.Ladder = LadderConfig{
		Tick:      10 * time.Millisecond,
		UpTicks:   2,
		DownTicks: 3,
	}
	s := startServer(t, cfg)
	base := "http://" + s.Addr()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}

	// Phase A — normal service.
	if ob := chaosRead(client, base, "gold", 11, 500); ob.status != 200 {
		t.Fatalf("normal read: %+v", ob)
	}
	if lvl, ready := readyzLevel(t, base); !ready || lvl != LevelNormal {
		t.Fatalf("readyz before chaos: level %d ready %v", lvl, ready)
	}

	// Phase B — chaos: stall on, hammer from both tenants with short
	// deadlines. Every observation is collected for the deadline+grace
	// audit; the hammer runs until the ladder tops out.
	gate.on.Store(true)
	var (
		obsMu       sync.Mutex
		allObs      []chaosObservation
		stopped     atomic.Bool
		sawShed     atomic.Bool
		sawForced   atomic.Bool
		sawFailFast atomic.Bool
		wg          sync.WaitGroup
	)
	record := func(ob chaosObservation) {
		obsMu.Lock()
		allObs = append(allObs, ob)
		obsMu.Unlock()
	}
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); !stopped.Load(); i++ {
				tenant := "gold"
				if w%3 == 0 {
					tenant = "bronze"
				}
				ob := chaosRead(client, base, tenant, (int64(w)*131+i*17)%4096, 120)
				record(ob)
				if ob.errCode == "shed" && tenant == "bronze" {
					sawShed.Store(true)
				}
				if ob.forced {
					sawForced.Store(true)
				}
				if ob.failFast {
					sawFailFast.Store(true)
				}
			}
		}(w)
	}

	deadline := time.Now().Add(15 * time.Second)
	for s.Ladder().Level() < LevelFailFast && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if s.Ladder().Level() < LevelFailFast {
		stopped.Store(true)
		gate.on.Store(false)
		wg.Wait()
		t.Fatalf("ladder never topped out; transitions %+v", s.Ladder().Transitions())
	}
	if _, ready := readyzLevel(t, base); ready {
		t.Fatal("readyz still ready at fail-fast")
	}
	// Keep hammering briefly at the top so force-table and fail-fast
	// outcomes are observed.
	ffDeadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(ffDeadline) &&
		!(sawShed.Load() && sawForced.Load() && sawFailFast.Load()) {
		time.Sleep(20 * time.Millisecond)
	}

	// Phase C — recovery: stop the hammer, lift the stall; queues drain
	// and the ladder must walk back down to normal.
	stopped.Store(true)
	gate.on.Store(false)
	wg.Wait()
	recovery := time.Now().Add(15 * time.Second)
	for time.Now().Before(recovery) {
		if lvl, ready := readyzLevel(t, base); ready && lvl == LevelNormal {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lvl, ready := readyzLevel(t, base); !ready || lvl != LevelNormal {
		t.Fatalf("no recovery: level %d ready %v, transitions %+v",
			lvl, ready, s.Ladder().Transitions())
	}

	// The ladder must have moved strictly one level at a time, climbing
	// 0->1->2->3 before descending back to 0.
	trans := s.Ladder().Transitions()
	level, peak := 0, 0
	for i, tr := range trans {
		if tr.From != level || abs(tr.To-tr.From) != 1 {
			t.Fatalf("transition %d skips or forks: %+v (all: %+v)", i, tr, trans)
		}
		level = tr.To
		if level > peak {
			peak = level
		}
	}
	if peak != LevelFailFast || level != LevelNormal {
		t.Fatalf("peak %d final %d, want peak 3 final 0 (%+v)", peak, level, trans)
	}
	if !sawShed.Load() {
		t.Error("bronze was never shed at level >= 1")
	}
	if !sawForced.Load() {
		t.Error("gold was never forced to the table policy at level >= 2")
	}
	if !sawFailFast.Load() {
		t.Error("no fail-fast outcome observed at level 3")
	}

	// Deadline+grace audit over every chaos-phase observation: a 200
	// must never arrive later than deadline + grace + client slack.
	const slack = 500 * time.Millisecond
	for _, ob := range allObs {
		limit := time.Duration(ob.deadlineMs*float64(time.Millisecond)) + cfg.Grace + slack
		if ob.status == 200 && ob.wall > limit {
			t.Fatalf("200 served past deadline+grace: %+v (limit %v)", ob, limit)
		}
	}

	// Phase D — drain under load: slow the device again (mild stall,
	// generous deadlines), launch in-flight reads, then Shutdown. Every
	// accepted request must complete; afterwards the listener is closed.
	gate.delay = 20 * time.Millisecond
	gate.on.Store(true)
	const inflight = 8
	results := make([]chaosObservation, inflight)
	var dwg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			results[i] = chaosRead(client, base, "gold", int64(i*70), 5000)
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let them reach the server
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	dwg.Wait()
	for i, ob := range results {
		if ob.status != 200 {
			t.Fatalf("in-flight request %d lost during drain: %+v", i, ob)
		}
	}
	if _, err := client.Post(base+"/read", "application/json",
		strings.NewReader(`{"tenant":"gold","lpn":1}`)); err == nil {
		t.Fatal("listener open after drain")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
