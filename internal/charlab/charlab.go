// Package charlab is the characterization laboratory: it reproduces the
// measurement methodology of the paper's Section II on simulated chips —
// offset sweeps to locate ground-truth optimal read voltages, per-layer
// and per-wordline RBER scans, bit-error position maps, and the
// correlation statistics between per-voltage optima that motivate the
// sentinel-voltage design.
//
// Everything here corresponds to what the authors did on the YEESTOR
// tester with known data patterns; none of it is available to the runtime
// read path (that is the sentinel package's job).
package charlab

import (
	"fmt"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
)

// Lab wraps a chip with sweep settings.
//
// A Lab holds no mutable measurement state: once its fields are set, any
// number of goroutines may call its measurement methods concurrently
// (the block-scan helpers below do exactly that). Do not change the
// fields, or mutate the chip, while measurements are in flight.
type Lab struct {
	Chip *flash.Chip

	// SweepLo, SweepHi and SweepStep define the offset grid used to find
	// optimal voltages, in normalized units.
	SweepLo, SweepHi, SweepStep float64

	// AverageReads is the number of independent reads averaged per sweep
	// (reduces sensing-noise jitter in the located optimum).
	AverageReads int

	// Seed drives the read-noise seeds of the lab's measurements.
	Seed uint64
}

// New returns a Lab with the default sweep grid (-60..+30, step 1, two
// averaged reads).
func New(chip *flash.Chip) *Lab {
	return &Lab{
		Chip:         chip,
		SweepLo:      -60,
		SweepHi:      30,
		SweepStep:    1,
		AverageReads: 2,
		Seed:         0x1ab5eed,
	}
}

// Grid returns the lab's offset grid in ascending order.
func (l *Lab) Grid() []float64 {
	var out []float64
	for o := l.SweepLo; o <= l.SweepHi+1e-9; o += l.SweepStep {
		out = append(out, o)
	}
	return out
}

func (l *Lab) readSeed(b, wl, rep int) uint64 {
	return mathx.Mix4(l.Seed, uint64(b), uint64(wl), uint64(rep))
}

// SweepCurve returns the offset grid and the total error count of
// voltage v at each offset on wordline (b, wl), averaged over
// AverageReads reads. This is the paper's Figure 2 curve.
func (l *Lab) SweepCurve(b, wl, v int) (offs []float64, errs []float64) {
	offs = l.Grid()
	errs = make([]float64, len(offs))
	for rep := 0; rep < l.AverageReads; rep++ {
		ups, downs := l.Chip.SweepVoltageErrors(b, wl, v, offs, l.readSeed(b, wl, rep))
		for i := range errs {
			errs[i] += float64(ups[i] + downs[i])
		}
	}
	for i := range errs {
		errs[i] /= float64(l.AverageReads)
	}
	return offs, errs
}

// SweepCurves returns the offset grid and, per read voltage (index v-1),
// the averaged total error curve of voltage v — the full family of
// Figure 2 curves. All voltages share each repetition's read operation
// (one threshold-voltage materialization serves every boundary), so the
// whole family costs AverageReads reads instead of AverageReads per
// voltage, and each curve is byte-identical to SweepCurve's.
func (l *Lab) SweepCurves(b, wl int) (offs []float64, errs [][]float64) {
	offs = l.Grid()
	nv := l.Chip.Coding().NumVoltages()
	errs = make([][]float64, nv)
	for v := range errs {
		errs[v] = make([]float64, len(offs))
	}
	for rep := 0; rep < l.AverageReads; rep++ {
		rows := l.Chip.SweepAllVoltages(b, wl, offs, l.readSeed(b, wl, rep))
		for v := range errs {
			for i, e := range rows[v] {
				errs[v][i] += float64(e)
			}
		}
	}
	for v := range errs {
		for i := range errs[v] {
			errs[v][i] /= float64(l.AverageReads)
		}
	}
	return offs, errs
}

// OptimalOffsets locates the ground-truth optimal offset of every read
// voltage on wordline (b, wl) by exhaustive sweep, exactly as a tester
// would.
func (l *Lab) OptimalOffsets(b, wl int) flash.Offsets {
	offs := l.Grid()
	nv := l.Chip.Coding().NumVoltages()
	acc := make([][]float64, nv)
	for v := 0; v < nv; v++ {
		acc[v] = make([]float64, len(offs))
	}
	for rep := 0; rep < l.AverageReads; rep++ {
		rows := l.Chip.SweepAllVoltages(b, wl, offs, l.readSeed(b, wl, rep))
		for v := 0; v < nv; v++ {
			for i, e := range rows[v] {
				acc[v][i] += float64(e)
			}
		}
	}
	out := flash.ZeroOffsets(nv)
	for v := 0; v < nv; v++ {
		out[v] = refineMinimum(offs, acc[v])
	}
	return out
}

// refineMinimum locates the valley floor of an error-count curve: it finds
// the grid argmin, then fits a quadratic to a window around it and takes
// the parabola's vertex. This suppresses the counting noise that would
// otherwise jitter the located optimum by several grid steps in shallow
// valleys (small populations near high boundaries).
func refineMinimum(offs, errs []float64) float64 {
	minI := 0
	for i, e := range errs {
		if e < errs[minI] {
			minI = i
		}
	}
	const window = 6
	lo := minI - window
	if lo < 0 {
		lo = 0
	}
	hi := minI + window + 1
	if hi > len(offs) {
		hi = len(offs)
	}
	if hi-lo < 5 {
		return offs[minI]
	}
	fit, err := mathx.PolyFit(offs[lo:hi], errs[lo:hi], 2)
	if err != nil || len(fit.Coef) != 3 || fit.Coef[2] <= 0 {
		return offs[minI]
	}
	vertex := -fit.Coef[1] / (2 * fit.Coef[2])
	// The vertex must stay within the window; otherwise trust the argmin.
	if vertex < offs[lo] || vertex > offs[hi-1] {
		return offs[minI]
	}
	return vertex
}

// OptimalOffset locates the optimum of a single voltage.
func (l *Lab) OptimalOffset(b, wl, v int) float64 {
	offs := l.Grid()
	acc := make([]float64, len(offs))
	for rep := 0; rep < l.AverageReads; rep++ {
		ups, downs := l.Chip.SweepVoltageErrors(b, wl, v, offs, l.readSeed(b, wl, rep))
		for i := range acc {
			acc[i] += float64(ups[i] + downs[i])
		}
	}
	return refineMinimum(offs, acc)
}

// PageRBER measures the RBER of page p on wordline (b, wl) under offsets
// o, averaged over AverageReads reads.
func (l *Lab) PageRBER(b, wl, p int, o flash.Offsets) float64 {
	var sum float64
	for rep := 0; rep < l.AverageReads; rep++ {
		sum += l.Chip.PageRBER(b, wl, p, o, l.readSeed(b, wl, 100+rep))
	}
	return sum / float64(l.AverageReads)
}

// LayerRBER holds per-layer results for Figure 3: the maximum RBER of a
// layer's wordlines at default and at per-wordline optimal voltages.
type LayerRBER struct {
	Layer      int
	DefaultMax float64
	OptimalMax float64
}

// LayerMaxRBER computes Figure 3's per-layer maxima for one page over the
// programmed wordlines of block b.
func (l *Lab) LayerMaxRBER(b, page int) []LayerRBER {
	cfg := l.Chip.Config()
	out := make([]LayerRBER, cfg.Layers)
	for i := range out {
		out[i].Layer = i
		out[i].DefaultMax = -1
		out[i].OptimalMax = -1
	}
	type wlRBER struct {
		def, opt float64
		skip     bool
	}
	perWL := parallel.Map(cfg.WordlinesPerBlock(), func(wl int) wlRBER {
		if !l.Chip.IsProgrammed(b, wl) {
			return wlRBER{skip: true}
		}
		return wlRBER{
			def: l.PageRBER(b, wl, page, nil),
			opt: l.PageRBER(b, wl, page, l.OptimalOffsets(b, wl)),
		}
	})
	for wl, r := range perWL {
		if r.skip {
			continue
		}
		layer := l.Chip.LayerOf(wl)
		if r.def > out[layer].DefaultMax {
			out[layer].DefaultMax = r.def
		}
		if r.opt > out[layer].OptimalMax {
			out[layer].OptimalMax = r.opt
		}
	}
	// Drop layers with no programmed wordlines.
	kept := out[:0]
	for _, r := range out {
		if r.DefaultMax >= 0 {
			kept = append(kept, r)
		}
	}
	return kept
}

// ErrorMap summarizes the spatial structure of bit errors in a block
// (paper Figure 7): per-wordline error counts and, within each wordline,
// the error distribution across equal-width segments along the bitline
// direction.
type ErrorMap struct {
	// PerWordline[wl] is the total error count of the wordline across all
	// pages.
	PerWordline []int
	// SegmentCounts[wl][s] is the error count in segment s of the
	// wordline.
	SegmentCounts [][]int
	// Segments is the number of segments per wordline.
	Segments int
}

// UniformityChi2 returns the mean over wordlines of the chi-squared
// statistic of the segment counts against a uniform distribution, divided
// by the degrees of freedom. Values near 1 indicate errors uniformly
// spread along wordlines (the paper's key locality observation).
func (m *ErrorMap) UniformityChi2() float64 {
	var sum float64
	n := 0
	for wl := range m.SegmentCounts {
		total := m.PerWordline[wl]
		if total < m.Segments*5 { // need counts for the statistic
			continue
		}
		expect := float64(total) / float64(m.Segments)
		var chi2 float64
		for _, c := range m.SegmentCounts[wl] {
			d := float64(c) - expect
			chi2 += d * d / expect
		}
		sum += chi2 / float64(m.Segments-1)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WordlineVariation returns the coefficient of variation of the
// per-wordline error counts: large values correspond to the dark and
// light stripes of Figure 7.
func (m *ErrorMap) WordlineVariation() float64 {
	xs := make([]float64, 0, len(m.PerWordline))
	for _, c := range m.PerWordline {
		xs = append(xs, float64(c))
	}
	mean := mathx.Mean(xs)
	if mean == 0 {
		return 0
	}
	return mathx.StdDev(xs) / mean
}

// CollectErrorMap reads every programmed wordline of block b at default
// voltages and bins the error positions of all pages into segments.
func (l *Lab) CollectErrorMap(b, segments int) *ErrorMap {
	cfg := l.Chip.Config()
	nwl := cfg.WordlinesPerBlock()
	m := &ErrorMap{
		PerWordline:   make([]int, nwl),
		SegmentCounts: make([][]int, nwl),
		Segments:      segments,
	}
	cells := cfg.CellsPerWordline
	// Segment s covers cells with cell*segments/cells == s, i.e. the
	// half-open range [ceil(s*cells/segments), ceil((s+1)*cells/segments)).
	bounds := make([]int, segments+1)
	for s := range bounds {
		bounds[s] = (s*cells + segments - 1) / segments
	}
	parallel.ForEach(nwl, func(wl int) {
		m.SegmentCounts[wl] = make([]int, segments)
		if !l.Chip.IsProgrammed(b, wl) {
			return
		}
		read := flash.GetBitmap(cells)
		truth := flash.GetBitmap(cells)
		for p := 0; p < l.Chip.Coding().Bits(); p++ {
			op := l.Chip.BeginRead(b, wl, l.readSeed(b, wl, 200+p))
			read = op.ReadPageInto(read, p, nil)
			op.Close()
			truth = l.Chip.TrueBitsInto(truth, b, wl, p)
			for s := 0; s < segments; s++ {
				n := read.XorCountRange(truth, bounds[s], bounds[s+1])
				m.SegmentCounts[wl][s] += n
				m.PerWordline[wl] += n
			}
		}
		flash.PutBitmap(truth)
		flash.PutBitmap(read)
	})
	return m
}

// CorrelationPoint is one wordline's (sentinel-voltage optimum, voltage-v
// optimum) pair for Figure 8.
type CorrelationPoint struct {
	SentinelOpt float64
	VoltOpt     float64
}

// VoltageCorrelation summarizes the linear relation between the optimum
// of one read voltage and the sentinel voltage's optimum across
// wordlines (paper Figure 8).
type VoltageCorrelation struct {
	Voltage   int
	Slope     float64
	Intercept float64
	R         float64
	Points    []CorrelationPoint
}

// CorrelationCollector accumulates per-wordline optimal-offset vectors
// across arbitrarily many stress points (the paper gathers "all wordlines
// from multiple blocks under different P/E cycles and retention time"
// before fitting Figure 8's lines).
type CorrelationCollector struct {
	numVoltages int
	sentinel    int
	optima      []flash.Offsets
}

// NewCorrelationCollector prepares a collector for the chip's coding.
func NewCorrelationCollector(coding *flash.Coding) *CorrelationCollector {
	return &CorrelationCollector{
		numVoltages: coding.NumVoltages(),
		sentinel:    coding.SentinelVoltage(),
	}
}

// Add sweeps the given wordlines of block b at the chip's *current* stress
// state and records their optima. Call it repeatedly between aging steps.
// The sweeps fan out per wordline; optima are recorded in wls order.
func (cc *CorrelationCollector) Add(l *Lab, b int, wls []int) error {
	optima, err := parallel.MapErr(len(wls), func(i int) (flash.Offsets, error) {
		wl := wls[i]
		if !l.Chip.IsProgrammed(b, wl) {
			return nil, fmt.Errorf("charlab: wordline %d not programmed", wl)
		}
		return l.OptimalOffsets(b, wl), nil
	})
	if err != nil {
		return err
	}
	cc.optima = append(cc.optima, optima...)
	return nil
}

// Len returns the number of collected optimum vectors.
func (cc *CorrelationCollector) Len() int { return len(cc.optima) }

// Fit returns the per-voltage linear fits against the sentinel voltage.
func (cc *CorrelationCollector) Fit() []VoltageCorrelation {
	xs := make([]float64, len(cc.optima))
	for i, o := range cc.optima {
		xs[i] = o.Get(cc.sentinel)
	}
	out := make([]VoltageCorrelation, 0, cc.numVoltages)
	for v := 1; v <= cc.numVoltages; v++ {
		ys := make([]float64, len(cc.optima))
		pts := make([]CorrelationPoint, len(cc.optima))
		for i, o := range cc.optima {
			ys[i] = o.Get(v)
			pts[i] = CorrelationPoint{SentinelOpt: xs[i], VoltOpt: ys[i]}
		}
		vc := VoltageCorrelation{Voltage: v, Points: pts}
		slope, intercept, r, err := mathx.LinearFit(xs, ys)
		if err == nil {
			vc.Slope, vc.Intercept, vc.R = slope, intercept, r
		}
		out = append(out, vc)
	}
	return out
}

// CollectCorrelations sweeps the given wordlines of block b at the current
// stress state and fits the per-voltage optimum against the sentinel
// voltage's optimum. For the paper's methodology (multiple stress
// points), use CorrelationCollector directly.
func (l *Lab) CollectCorrelations(b int, wls []int) ([]VoltageCorrelation, error) {
	cc := NewCorrelationCollector(l.Chip.Coding())
	if err := cc.Add(l, b, wls); err != nil {
		return nil, err
	}
	return cc.Fit(), nil
}
