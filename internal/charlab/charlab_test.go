package charlab

import (
	"math"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

// smallChip builds a compact aged QLC chip with every wordline programmed.
func smallChip(t testing.TB, kind flash.Kind, pe int, hours float64) *flash.Chip {
	t.Helper()
	cfg := flash.Config{
		Kind:              kind,
		Blocks:            1,
		Layers:            8,
		WordlinesPerLayer: 2,
		CellsPerWordline:  4096,
		OOBFraction:       0.119,
		Seed:              21,
		CacheZ:            true,
	}
	c, err := flash.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(77)
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		c.ProgramRandom(0, wl, rng)
	}
	c.Cycle(0, pe)
	c.Age(0, hours, physics.RoomTempC)
	return c
}

func TestGrid(t *testing.T) {
	l := New(smallChip(t, flash.QLC, 0, 0))
	l.SweepLo, l.SweepHi, l.SweepStep = -3, 3, 1
	g := l.Grid()
	if len(g) != 7 || g[0] != -3 || g[6] != 3 {
		t.Fatalf("grid = %v", g)
	}
}

func TestSweepCurveVShaped(t *testing.T) {
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	offs, errs := l.SweepCurve(0, 0, 8)
	if len(offs) != len(errs) {
		t.Fatal("length mismatch")
	}
	minI := 0
	for i, e := range errs {
		if e < errs[minI] {
			minI = i
		}
	}
	if minI == 0 || minI == len(errs)-1 {
		t.Fatalf("minimum at sweep edge: offset %v", offs[minI])
	}
	if errs[0] <= errs[minI]*2 && errs[len(errs)-1] <= errs[minI]*2 {
		t.Fatal("curve too flat to be a retry valley")
	}
}

func TestSweepCurvesMatchSweepCurve(t *testing.T) {
	// The fused all-voltage sweep promises byte-identical curves to the
	// per-voltage path — same read seeds, same counts, same float
	// accumulation order.
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	offs, curves := l.SweepCurves(0, 1)
	if len(curves) != c.Coding().NumVoltages() {
		t.Fatalf("got %d curves, want %d", len(curves), c.Coding().NumVoltages())
	}
	for v := 1; v <= len(curves); v++ {
		wantOffs, want := l.SweepCurve(0, 1, v)
		if len(offs) != len(wantOffs) {
			t.Fatal("grid length mismatch")
		}
		for i := range want {
			if curves[v-1][i] != want[i] {
				t.Fatalf("V%d at %v: SweepCurves %v != SweepCurve %v",
					v, offs[i], curves[v-1][i], want[i])
			}
		}
	}
}

func TestOptimalOffsetsReduceRBER(t *testing.T) {
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	msb := c.Coding().Bits() - 1
	for _, wl := range []int{0, 5, 11} {
		def := l.PageRBER(0, wl, msb, nil)
		opt := l.PageRBER(0, wl, msb, l.OptimalOffsets(0, wl))
		if opt >= def {
			t.Fatalf("wl %d: optimal RBER %v >= default %v", wl, opt, def)
		}
		if opt > 0.5*def {
			t.Fatalf("wl %d: optimal gain too small (%v vs %v)", wl, opt, def)
		}
	}
}

func TestOptimalOffsetSingleMatchesVector(t *testing.T) {
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	all := l.OptimalOffsets(0, 3)
	single := l.OptimalOffset(0, 3, 8)
	if math.Abs(all.Get(8)-single) > 2*l.SweepStep {
		t.Fatalf("single-voltage optimum %v far from vector %v", single, all.Get(8))
	}
}

func TestOptimalNegativeAfterRetention(t *testing.T) {
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	neg := 0
	o := l.OptimalOffsets(0, 0)
	for v := 2; v <= 15; v++ {
		if o.Get(v) < 0 {
			neg++
		}
	}
	if neg < 12 {
		t.Fatalf("only %d/14 optima negative after a year of retention", neg)
	}
}

func TestLayerMaxRBER(t *testing.T) {
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	rows := l.LayerMaxRBER(0, c.Coding().Bits()-1)
	if len(rows) != 8 {
		t.Fatalf("got %d layers, want 8", len(rows))
	}
	for _, r := range rows {
		if r.OptimalMax >= r.DefaultMax {
			t.Fatalf("layer %d: optimal max %v >= default max %v",
				r.Layer, r.OptimalMax, r.DefaultMax)
		}
	}
	// Layers must differ substantially (Figure 3's variation).
	var defs []float64
	for _, r := range rows {
		defs = append(defs, r.DefaultMax)
	}
	lo, hi := mathx.MinMax(defs)
	if hi < 1.5*lo {
		t.Fatalf("layer variation too small: [%v, %v]", lo, hi)
	}
}

func TestErrorMapUniformAlongWordline(t *testing.T) {
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	m := l.CollectErrorMap(0, 16)
	chi2 := m.UniformityChi2()
	// Errors nearly uniform along each wordline: reduced chi-squared in a
	// loose band around 1.
	if chi2 <= 0 || chi2 > 3 {
		t.Fatalf("uniformity chi2 = %v, want ~1", chi2)
	}
	// But strong variation ACROSS wordlines (the stripes of Fig. 7).
	if cv := m.WordlineVariation(); cv < 0.15 {
		t.Fatalf("wordline variation %v too small", cv)
	}
}

func TestCollectCorrelationsLinearAcrossStress(t *testing.T) {
	// Paper methodology: optima collected across multiple stress points
	// show a near-linear relation between every voltage's optimum and the
	// sentinel voltage's optimum (Figure 8).
	cfg := flash.Config{
		Kind: flash.QLC, Blocks: 1, Layers: 8, WordlinesPerLayer: 2,
		CellsPerWordline: 16384, OOBFraction: 0.119, Seed: 21, CacheZ: true,
	}
	c := flash.MustNew(cfg)
	rng := mathx.NewRand(77)
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		c.ProgramRandom(0, wl, rng)
	}
	l := New(c)
	wls := []int{0, 2, 4, 6, 8, 10, 12, 14}
	cc := NewCorrelationCollector(c.Coding())
	for _, step := range []struct {
		pe    int
		hours float64
	}{
		{0, 24}, {500, 400}, {500, 2000}, {1000, 3000}, {1000, 3336},
	} {
		c.Cycle(0, step.pe)
		c.Age(0, step.hours, physics.RoomTempC)
		if err := cc.Add(l, 0, wls); err != nil {
			t.Fatal(err)
		}
	}
	if cc.Len() != 5*len(wls) {
		t.Fatalf("collected %d points", cc.Len())
	}
	cors := cc.Fit()
	if len(cors) != 15 {
		t.Fatalf("got %d correlations", len(cors))
	}
	strong := 0
	for _, vc := range cors {
		if vc.Voltage == c.Coding().SentinelVoltage() {
			if math.Abs(vc.R-1) > 1e-9 || math.Abs(vc.Slope-1) > 1e-9 {
				t.Fatalf("self correlation should be exact: %+v", vc)
			}
			continue
		}
		if vc.Voltage == 1 {
			continue // V1 is excluded in the paper too (huge erase-state variation)
		}
		if vc.R > 0.8 {
			strong++
		}
		if vc.Slope <= 0 {
			t.Fatalf("V%d slope %v not positive", vc.Voltage, vc.Slope)
		}
	}
	if strong < 11 {
		t.Fatalf("only %d/13 voltages strongly correlated with sentinel", strong)
	}
}

func TestCollectCorrelationsSingleStress(t *testing.T) {
	c := smallChip(t, flash.QLC, 1000, physics.YearHours)
	l := New(c)
	cors, err := l.CollectCorrelations(0, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(cors) != 15 {
		t.Fatalf("got %d correlations", len(cors))
	}
	for _, vc := range cors {
		if len(vc.Points) != 8 {
			t.Fatalf("V%d has %d points", vc.Voltage, len(vc.Points))
		}
	}
}

func TestCollectCorrelationsUnprogrammed(t *testing.T) {
	c := flash.MustNew(flash.Config{
		Kind: flash.QLC, Blocks: 1, Layers: 4, WordlinesPerLayer: 1,
		CellsPerWordline: 1024, Seed: 1, CacheZ: true,
	})
	l := New(c)
	if _, err := l.CollectCorrelations(0, []int{0}); err == nil {
		t.Fatal("expected error for unprogrammed wordline")
	}
}
