package physics

import (
	"math"
	"math/rand"
	"testing"
)

func TestConstantScheduleEffHours(t *testing.T) {
	p := TLC()
	room := ConstantTemp(RoomTempC).Eval(p)
	if got := room.EffHours(0, 100); math.Abs(got-100) > 1e-9 {
		t.Fatalf("room-temp EffHours(0,100) = %v, want 100", got)
	}
	hot := ConstantTemp(80).Eval(p)
	af := AccelerationFactor(p.ActivationEnergyEV, 80)
	if got := hot.EffHours(10, 11); got != af {
		t.Fatalf("1h at 80C = %v eff hours, want AF = %v", got, af)
	}
	cold := ConstantTemp(0).Eval(p)
	if got := cold.EffHours(0, 100); got >= 100 {
		t.Fatalf("0°C storage should retard retention: %v eff hours for 100", got)
	}
}

func TestSquareWaveTempAt(t *testing.T) {
	ts := SquareWave(25, 55, 24, 0.25)
	for h, want := range map[float64]float64{0: 55, 5: 55, 6: 25, 23.9: 25, 24: 55, 30.5: 25} {
		if got := ts.TempAt(h); got != want {
			t.Fatalf("TempAt(%v) = %v, want %v", h, got, want)
		}
	}
	if got := ConstantTemp(40).TempAt(1e6); got != 40 {
		t.Fatalf("constant TempAt = %v", got)
	}
}

func TestSquareWaveEffHoursFullPeriod(t *testing.T) {
	p := TLC()
	ts := SquareWave(25, 70, 24, 0.5)
	e := ts.Eval(p)
	afHot := AccelerationFactor(p.ActivationEnergyEV, 70)
	want := 12*afHot + 12*1.0
	if got := e.EffHours(0, 24); math.Abs(got-want) > 1e-9*want {
		t.Fatalf("full period EffHours = %v, want %v", got, want)
	}
	// Whole periods are translation invariant.
	if a, b := e.EffHours(0, 24), e.EffHours(48, 72); math.Abs(a-b) > 1e-9*a {
		t.Fatalf("period not translation invariant: %v vs %v", a, b)
	}
}

func TestEffHoursMonotoneAndEmpty(t *testing.T) {
	e := SquareWave(25, 55, 24, 0.3).Eval(QLC())
	if got := e.EffHours(7, 7); got != 0 {
		t.Fatalf("empty interval = %v", got)
	}
	prev := 0.0
	for to := 0.5; to < 100; to += 0.5 {
		got := e.EffHours(0, to)
		if got <= prev {
			t.Fatalf("EffHours(0,%v) = %v not increasing past %v", to, got, prev)
		}
		prev = got
	}
}

func TestEffHoursInvalidIntervalPanics(t *testing.T) {
	e := ConstantTemp(25).Eval(TLC())
	mustPanic(t, "EffHours reversed", func() { e.EffHours(5, 4) })
	mustPanic(t, "EffHours NaN", func() { e.EffHours(math.NaN(), 4) })
}

func TestValidateSchedule(t *testing.T) {
	if err := SquareWave(25, 55, 24, 0.3).Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	for _, bad := range []TempSchedule{
		{BaseC: -200, HotC: 25},
		{BaseC: 25, HotC: math.NaN()},
		{BaseC: 25, HotC: 55, PeriodHours: -1},
		{BaseC: 25, HotC: 55, PeriodHours: 24, HotFrac: 1.5},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("schedule %+v accepted", bad)
		}
	}
}

// TestRetentionClockSplitExactlyAssociative is the satellite property
// test: traversing an aging interval through any number of intermediate
// clock advances yields *bit-identical* retention to jumping straight
// to the endpoint, because the clock recomputes retention from the
// (reset, now) endpoints instead of accumulating increments. This is
// the guarantee that keeps lifetime-enabled replay byte-identical at
// any worker count and request granularity.
func TestRetentionClockSplitExactlyAssociative(t *testing.T) {
	p := QLC()
	rng := rand.New(rand.NewSource(1357))
	schedules := []TempSchedule{
		ConstantTemp(RoomTempC),
		ConstantTemp(55),
		SquareWave(25, 50, 24, 0.5),
		SquareWave(20, 65, 7.3, 0.11),
	}
	for _, ts := range schedules {
		eval := ts.Eval(p)
		for trial := 0; trial < 200; trial++ {
			reset := rng.Float64() * 1000
			total := rng.Float64() * 5000
			end := reset + total

			direct := RetentionClock{Eval: eval}
			direct.AdvanceTo(end)

			split := RetentionClock{Eval: eval}
			k := 1 + rng.Intn(16)
			cuts := make([]float64, k)
			for i := range cuts {
				cuts[i] = reset + rng.Float64()*total
			}
			for _, c := range cuts {
				split.AdvanceTo(c)
				_ = split.EffSince(reset) // interior queries must not perturb state
			}
			split.AdvanceTo(end)

			a, b := direct.EffSince(reset), split.EffSince(reset)
			if a != b { // exact: not a tolerance comparison
				t.Fatalf("schedule %+v: split traversal drifted: direct %v (bits %x) vs split %v (bits %x)",
					ts, a, math.Float64bits(a), b, math.Float64bits(b))
			}
		}
	}
}

// TestEffHoursPreBitIdentical: the cached-endpoint fast path used by
// the replay hot loop must agree bit-for-bit with the validating
// EffHours, for constant and periodic schedules alike.
func TestEffHoursPreBitIdentical(t *testing.T) {
	p := TLC()
	rng := rand.New(rand.NewSource(2468))
	for _, ts := range []TempSchedule{
		ConstantTemp(RoomTempC),
		ConstantTemp(55),
		SquareWave(25, 50, 24, 0.5),
		SquareWave(20, 65, 7.3, 0.11),
	} {
		e := ts.Eval(p)
		for trial := 0; trial < 500; trial++ {
			from := rng.Float64() * 2000
			to := from + rng.Float64()*8000
			want := e.EffHours(from, to)
			got := e.EffHoursPre(from, to, e.HotHoursBefore(from), e.HotHoursBefore(to))
			if got != want { // exact: not a tolerance comparison
				t.Fatalf("schedule %+v [%v,%v]: EffHoursPre %v (bits %x) != EffHours %v (bits %x)",
					ts, from, to, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

func TestRetentionClockMonotoneClamp(t *testing.T) {
	c := RetentionClock{Eval: ConstantTemp(25).Eval(TLC())}
	c.AdvanceTo(10)
	c.AdvanceTo(4) // out-of-order trace timestamp: clamped, not rewound
	if c.NowHours() != 10 {
		t.Fatalf("clock rewound to %v", c.NowHours())
	}
	if got := c.EffSince(12); got != 0 {
		t.Fatalf("future reset gave %v retention", got)
	}
	mustPanic(t, "AdvanceTo NaN", func() { c.AdvanceTo(math.NaN()) })
}
