package physics

import (
	"math"
	"testing"
)

func TestAccelerationFactorRoomTemp(t *testing.T) {
	if af := AccelerationFactor(0.55, RoomTempC); math.Abs(af-1) > 1e-12 {
		t.Fatalf("AF at room temperature = %v, want 1", af)
	}
}

func TestAccelerationFactorMonotone(t *testing.T) {
	prev := 0.0
	for _, temp := range []float64{0, 25, 40, 60, 80, 100} {
		af := AccelerationFactor(0.55, temp)
		if af <= prev {
			t.Fatalf("AF not increasing: AF(%v) = %v after %v", temp, af, prev)
		}
		prev = af
	}
}

func TestAccelerationFactorMagnitude(t *testing.T) {
	// One hour at 80C should correspond to dozens of equivalent
	// room-temperature hours (paper Section IV), i.e. AF in [10, 100].
	af := AccelerationFactor(0.55, 80)
	if af < 10 || af > 100 {
		t.Fatalf("AF(80C) = %v, want within [10, 100]", af)
	}
}

func TestAgedAccumulatesEffectiveHours(t *testing.T) {
	p := QLC()
	s := Stress{}
	s = s.Aged(p, 10, RoomTempC)
	if math.Abs(s.EffRetentionHours-10) > 1e-9 {
		t.Fatalf("room-temp aging: %v hours, want 10", s.EffRetentionHours)
	}
	hot := Stress{}.Aged(p, 1, 80)
	if hot.EffRetentionHours <= 10 {
		t.Fatalf("1h at 80C gave only %v effective hours", hot.EffRetentionHours)
	}
	// Negative hours are ignored.
	if got := (Stress{}).Aged(p, -5, 80); got.EffRetentionHours != 0 {
		t.Fatalf("negative aging changed stress: %+v", got)
	}
}

func TestCycledAndRead(t *testing.T) {
	s := Stress{}.Cycled(100).Cycled(-5).Read(7).Read(0)
	if s.PECycles != 100 {
		t.Fatalf("PECycles = %d", s.PECycles)
	}
	if s.ReadCount != 7 {
		t.Fatalf("ReadCount = %d", s.ReadCount)
	}
}

func TestAfterProgramResetsRetentionKeepsWear(t *testing.T) {
	s := Stress{PECycles: 500, EffRetentionHours: 1000, ReadCount: 99}
	s = s.AfterProgram()
	if s.PECycles != 500 || s.EffRetentionHours != 0 || s.ReadCount != 0 {
		t.Fatalf("AfterProgram = %+v", s)
	}
}
