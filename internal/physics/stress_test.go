package physics

import (
	"math"
	"testing"
)

func TestAccelerationFactorRoomTemp(t *testing.T) {
	if af := AccelerationFactor(0.55, RoomTempC); math.Abs(af-1) > 1e-12 {
		t.Fatalf("AF at room temperature = %v, want 1", af)
	}
}

func TestAccelerationFactorMonotone(t *testing.T) {
	prev := 0.0
	for _, temp := range []float64{0, 25, 40, 60, 80, 100} {
		af := AccelerationFactor(0.55, temp)
		if af <= prev {
			t.Fatalf("AF not increasing: AF(%v) = %v after %v", temp, af, prev)
		}
		prev = af
	}
}

func TestAccelerationFactorMagnitude(t *testing.T) {
	// One hour at 80C should correspond to dozens of equivalent
	// room-temperature hours (paper Section IV), i.e. AF in [10, 100].
	af := AccelerationFactor(0.55, 80)
	if af < 10 || af > 100 {
		t.Fatalf("AF(80C) = %v, want within [10, 100]", af)
	}
}

func TestAgedAccumulatesEffectiveHours(t *testing.T) {
	p := QLC()
	s := Stress{}
	s = s.Aged(p, 10, RoomTempC)
	if math.Abs(s.EffRetentionHours-10) > 1e-9 {
		t.Fatalf("room-temp aging: %v hours, want 10", s.EffRetentionHours)
	}
	hot := Stress{}.Aged(p, 1, 80)
	if hot.EffRetentionHours <= 10 {
		t.Fatalf("1h at 80C gave only %v effective hours", hot.EffRetentionHours)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	f()
}

func TestAgedNegativePanics(t *testing.T) {
	p := QLC()
	mustPanic(t, "Aged(-5h)", func() { (Stress{}).Aged(p, -5, 80) })
	mustPanic(t, "Aged(NaN)", func() { (Stress{}).Aged(p, math.NaN(), 80) })
}

func TestCycledAndRead(t *testing.T) {
	s := Stress{}.Cycled(100).Read(7).Read(0)
	if s.PECycles != 100 {
		t.Fatalf("PECycles = %d", s.PECycles)
	}
	if s.ReadCount != 7 {
		t.Fatalf("ReadCount = %d", s.ReadCount)
	}
	mustPanic(t, "Cycled(-5)", func() { s.Cycled(-5) })
}

func TestEffectiveReadTempUnsetVsZero(t *testing.T) {
	// The zero value means "read temperature never set" and defaults to
	// room; an explicitly set 0°C must be honoured as a genuinely cold
	// read, not silently treated as 25°C.
	if got := (Stress{}).EffectiveReadTemp(); got != RoomTempC {
		t.Fatalf("unset read temp = %v, want room (%v)", got, RoomTempC)
	}
	cold := Stress{}.AtReadTemp(0)
	if got := cold.EffectiveReadTemp(); got != 0 {
		t.Fatalf("explicit 0°C read temp = %v, want 0", got)
	}
	if got := (Stress{}).AtReadTemp(RoomTempC).EffectiveReadTemp(); got != RoomTempC {
		t.Fatalf("explicit room read temp = %v", got)
	}
}

func TestZeroCelsiusReadShiftsDifferFromRoom(t *testing.T) {
	// Regression for the old ReadTempC==0 ⇒ "room" conflation: a 0°C
	// cross-temperature read must shift the programmed states relative to
	// a room-temperature read (and in the opposite direction of a hot
	// read), while an explicit 25°C read must match the unset default.
	m, err := NewModel(TLC(), 42)
	if err != nil {
		t.Fatal(err)
	}
	base := Stress{PECycles: 1000, EffRetentionHours: 100}
	room := m.Env(3, 17, base)
	explicitRoom := m.Env(3, 17, base.AtReadTemp(RoomTempC))
	cold := m.Env(3, 17, base.AtReadTemp(0))
	hot := m.Env(3, 17, base.AtReadTemp(70))
	top := m.P.States() - 1
	if room.Mean[top] != explicitRoom.Mean[top] {
		t.Fatalf("explicit 25°C differs from unset default: %v vs %v",
			explicitRoom.Mean[top], room.Mean[top])
	}
	if cold.Mean[top] == room.Mean[top] {
		t.Fatalf("0°C read indistinguishable from room read (mean %v)", cold.Mean[top])
	}
	if !(cold.Mean[top] > room.Mean[top] && hot.Mean[top] < room.Mean[top]) {
		t.Fatalf("cross-temp direction wrong: cold %v, room %v, hot %v",
			cold.Mean[top], room.Mean[top], hot.Mean[top])
	}
}

func TestAfterProgramResetsRetentionKeepsWear(t *testing.T) {
	s := Stress{PECycles: 500, EffRetentionHours: 1000, ReadCount: 99}
	s = s.AfterProgram()
	if s.PECycles != 500 || s.EffRetentionHours != 0 || s.ReadCount != 0 {
		t.Fatalf("AfterProgram = %+v", s)
	}
}
