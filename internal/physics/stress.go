package physics

import (
	"fmt"
	"math"
)

// RoomTempC is the reference temperature for retention accounting.
const RoomTempC = 25.0

// boltzmannEVPerK is the Boltzmann constant in eV/K.
const boltzmannEVPerK = 8.617333262e-5

// Stress is the accumulated wear and retention state of a flash block.
// Retention is tracked as *effective hours at room temperature*: time
// spent at elevated temperature is multiplied by the Arrhenius
// acceleration factor before accumulation, which is exactly how the paper
// emulates one-year retention by baking chips.
type Stress struct {
	// PECycles is the number of program/erase cycles endured.
	PECycles int

	// EffRetentionHours is the retention time since programming,
	// normalized to room temperature.
	EffRetentionHours float64

	// ReadCount is the number of reads since the last program (read
	// disturb accounting).
	ReadCount int

	// ReadTempC is the ambient temperature during reads. It is only
	// meaningful when ReadTempSet is true; use AtReadTemp to set both
	// (and EffectiveReadTemp to read back). Reading hot shifts higher
	// states down relative to where they were programmed
	// (cross-temperature effect).
	ReadTempC float64

	// ReadTempSet marks ReadTempC as explicitly set. The zero value
	// (unset) means "read at room temperature". A separate flag — rather
	// than overloading ReadTempC == 0 — keeps a genuine 0°C cold read
	// distinct from the room-temperature default.
	ReadTempSet bool
}

// EffectiveReadTemp returns the read temperature, defaulting to room
// when no temperature has been set. An explicitly set 0°C is honoured:
// "unset" is tracked by ReadTempSet, not by the value itself.
func (s Stress) EffectiveReadTemp() float64 {
	if !s.ReadTempSet {
		return RoomTempC
	}
	return s.ReadTempC
}

// AtReadTemp returns a copy of s with the read temperature set.
func (s Stress) AtReadTemp(tempC float64) Stress {
	s.ReadTempC = tempC
	s.ReadTempSet = true
	return s
}

// AccelerationFactor returns the Arrhenius acceleration factor of
// tempC relative to room temperature for the given activation energy:
// AF = exp(Ea/kB * (1/Troom - 1/T)). AF > 1 above room temperature.
func AccelerationFactor(activationEnergyEV, tempC float64) float64 {
	tRoom := RoomTempC + 273.15
	t := tempC + 273.15
	return math.Exp(activationEnergyEV / boltzmannEVPerK * (1/tRoom - 1/t))
}

// Aged returns a copy of s with hours of retention at tempC added,
// converted to effective room-temperature hours using the activation
// energy from p. Negative hours panic: silently clamping them (as this
// once did) let sign bugs in aging schedules hide as no-ops.
func (s Stress) Aged(p Params, hours, tempC float64) Stress {
	if hours < 0 || math.IsNaN(hours) {
		panic(fmt.Sprintf("physics: Aged with negative retention interval %g h", hours))
	}
	s.EffRetentionHours += hours * AccelerationFactor(p.ActivationEnergyEV, tempC)
	return s
}

// Cycled returns a copy of s with n additional P/E cycles. Negative n
// panics — wear never decreases, so a negative count is always a caller
// bug (see Aged).
func (s Stress) Cycled(n int) Stress {
	if n < 0 {
		panic(fmt.Sprintf("physics: Cycled with negative cycle count %d", n))
	}
	s.PECycles += n
	return s
}

// AfterProgram returns the stress state immediately after reprogramming:
// retention and read count reset, wear kept.
func (s Stress) AfterProgram() Stress {
	return Stress{PECycles: s.PECycles}
}

// Read returns a copy of s with n additional read operations recorded.
func (s Stress) Read(n int) Stress {
	if n > 0 {
		s.ReadCount += n
	}
	return s
}

// YearHours is the number of hours in the paper's canonical one-year
// retention experiments.
const YearHours = 365 * 24
