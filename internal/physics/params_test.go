package physics

import "testing"

func TestDefaultParamsValid(t *testing.T) {
	for _, p := range []Params{TLC(), QLC()} {
		if err := p.Validate(); err != nil {
			t.Errorf("default params invalid: %v", err)
		}
	}
}

func TestStatesAndVoltages(t *testing.T) {
	tlc := TLC()
	if tlc.States() != 8 || tlc.NumVoltages() != 7 {
		t.Fatalf("TLC states/voltages = %d/%d, want 8/7", tlc.States(), tlc.NumVoltages())
	}
	qlc := QLC()
	if qlc.States() != 16 || qlc.NumVoltages() != 15 {
		t.Fatalf("QLC states/voltages = %d/%d, want 16/15", qlc.States(), qlc.NumVoltages())
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Bits = 0 },
		func(p *Params) { p.Bits = 9 },
		func(p *Params) { p.StateWidth = 0 },
		func(p *Params) { p.ProgramSigma = -1 },
		func(p *Params) { p.EraseSigma = 0 },
		func(p *Params) { p.RetentionT0Hours = 0 },
		func(p *Params) { p.ActivationEnergyEV = 0 },
	}
	for i, mutate := range cases {
		p := TLC()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

func TestNewModelRejectsInvalid(t *testing.T) {
	p := TLC()
	p.Bits = 0
	if _, err := NewModel(p, 1); err == nil {
		t.Fatal("NewModel accepted invalid params")
	}
}
