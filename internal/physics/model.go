package physics

import (
	"math"

	"sentinel3d/internal/mathx"
)

// Model evaluates the Vth distribution of cells for one chip instance.
// The chip seed determines all frozen process variation (layer and
// wordline fields); two models with the same parameters and seed describe
// identical chips, while different seeds describe different chips "of the
// same batch" (paper Section III-D).
//
// A Model is immutable after construction — every per-cell quantity is
// re-derived by hashing (Params, Seed, address), never stored — so all
// methods are safe for concurrent use.
type Model struct {
	P    Params
	Seed uint64
}

// NewModel validates p and returns a model for one chip instance.
func NewModel(p Params, seed uint64) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{P: p, Seed: seed}, nil
}

// domain separators for the hash-derived variation fields.
const (
	dsLayerShift = 0x4c61536866 // "LaShf"
	dsLayerSigma = 0x4c61536967 // "LaSig"
	dsLayerState = 0x4c615374
	dsWLShift    = 0x574c536866
	dsWLState    = 0x574c5374
	dsWLGrad     = 0x574c4772
	dsCellZ      = 0x43656c6c
	dsCellTail   = 0x5461696c
	dsReadNoise  = 0x52644e7a
)

// Center returns the nominal centre of state s with no stress and no
// variation. State 0 (erased) sits EraseDepth state-widths below state 1.
func (m *Model) Center(s int) float64 {
	if s == 0 {
		return -m.P.EraseDepth * m.P.StateWidth
	}
	return float64(s) * m.P.StateWidth
}

// DefaultReadVoltage returns the factory default for read voltage
// V_i (1 <= i <= NumVoltages), placed DefaultMargin below the midpoint of
// the adjacent nominal state centres.
func (m *Model) DefaultReadVoltage(i int) float64 {
	return (m.Center(i-1)+m.Center(i))/2 - m.P.DefaultMargin
}

// shiftWeight is w(s): the relative retention-shift magnitude of state s.
func (m *Model) shiftWeight(s int) float64 {
	if s == 0 {
		return 0
	}
	k := float64(m.P.States() - 1)
	return m.P.ChargeFloor + (k-float64(s))/k
}

// ShiftAmplitude returns the global shift amplitude A for a stress state:
// A = RetentionScale * ln(1 + tEff/T0) * (1 + PE/1000 * WearShiftPer1K).
func (m *Model) ShiftAmplitude(st Stress) float64 {
	ret := math.Log(1 + st.EffRetentionHours/m.P.RetentionT0Hours)
	wear := 1 + float64(st.PECycles)/1000*m.P.WearShiftPer1K
	return m.P.RetentionScale * ret * wear
}

// SigmaWiden returns the multiplicative distribution-widening factor for a
// stress state.
func (m *Model) SigmaWiden(st Stress) float64 {
	return 1 + float64(st.PECycles)/1000*m.P.SigmaPEPer1K +
		m.P.SigmaRetention*math.Log(1+st.EffRetentionHours/m.P.RetentionT0Hours)
}

// LayerShiftMult returns the frozen per-layer retention multiplier
// (clamped to at least 0.3 so that no layer "un-leaks").
func (m *Model) LayerShiftMult(layer int) float64 {
	g := mathx.GaussFromHash(mathx.Mix3(m.Seed, dsLayerShift, uint64(layer)))
	v := 1 + m.P.LayerShiftStd*g
	if v < 0.3 {
		v = 0.3
	}
	return v
}

// LayerSigmaMult returns the frozen per-layer sigma multiplier.
func (m *Model) LayerSigmaMult(layer int) float64 {
	g := mathx.GaussFromHash(mathx.Mix3(m.Seed, dsLayerSigma, uint64(layer)))
	v := 1 + m.P.LayerSigmaStd*g
	if v < 0.5 {
		v = 0.5
	}
	return v
}

// LayerStateOffset returns the frozen additive centre offset of state s
// within a layer.
func (m *Model) LayerStateOffset(layer, s int) float64 {
	if s == 0 {
		return 0
	}
	g := mathx.GaussFromHash(mathx.Mix4(m.Seed, dsLayerState, uint64(layer), uint64(s)))
	return m.P.LayerStateJitter * g
}

// WLShiftMult returns the frozen per-wordline retention multiplier, keyed
// by the wordline's global index within the chip.
func (m *Model) WLShiftMult(globalWL uint64) float64 {
	g := mathx.GaussFromHash(mathx.Mix3(m.Seed, dsWLShift, globalWL))
	v := 1 + m.P.WLShiftStd*g
	if v < 0.3 {
		v = 0.3
	}
	return v
}

// WLStateOffset returns the frozen additive centre offset of state s on a
// wordline.
func (m *Model) WLStateOffset(globalWL uint64, s int) float64 {
	if s == 0 {
		return 0
	}
	g := mathx.GaussFromHash(mathx.Mix4(m.Seed, dsWLState, globalWL, uint64(s)))
	return m.P.WLStateJitter * g
}

// WLGradient returns the frozen spatial shift gradient of a wordline in
// voltage units across the full wordline length. A cell at position
// fraction f in [0,1) sees an extra shift of WLGradient * (f - 0.5).
func (m *Model) WLGradient(globalWL uint64) float64 {
	g := mathx.GaussFromHash(mathx.Mix3(m.Seed, dsWLGrad, globalWL))
	return m.P.GradientStd * g
}

// BaseSigma returns the fresh standard deviation of state s.
func (m *Model) BaseSigma(s int) float64 {
	if s == 0 {
		return m.P.EraseSigma
	}
	return m.P.ProgramSigma
}

// CellZ returns the frozen program offset of one cell for a given program
// epoch, in units of the state sigma. The same (wordline, cell, epoch)
// always yields the same z, so repeated reads of the same data are
// consistent; reprogramming (new epoch) redraws it. A TailFrac fraction of
// cells draw from a TailMult-times-wider distribution (heavy tails).
func (m *Model) CellZ(globalWL uint64, cell int, epoch uint64) float64 {
	h := mathx.Mix4(m.Seed, dsCellZ, mathx.Mix(globalWL, epoch), uint64(cell))
	z := mathx.GaussFromHash(h)
	if m.P.TailFrac > 0 && mathx.UniformFromHash(mathx.Hash64(h^dsCellTail)) < m.P.TailFrac {
		z *= m.P.TailMult
	}
	return z
}

// ReadNoise returns the per-read sensing noise of one cell for a given
// read seed.
func (m *Model) ReadNoise(readSeed uint64, cell int) float64 {
	if m.P.ReadNoiseSigma == 0 {
		return 0
	}
	h := mathx.Mix3(readSeed, dsReadNoise, uint64(cell))
	return m.P.ReadNoiseSigma * mathx.GaussFromHash(h)
}

// NoiseStream is the hash stream of one read operation's sensing noise
// with the per-read setup hoisted out of the per-cell evaluation:
// Mix3(readSeed, dsReadNoise, cell) telescopes into one premixed base plus
// a single finalizer round per cell. At returns exactly ReadNoise's value
// for every cell.
type NoiseStream struct {
	base  uint64
	sigma float64
}

// Noise opens the sensing-noise stream of one read operation.
func (m *Model) Noise(readSeed uint64) NoiseStream {
	if m.P.ReadNoiseSigma == 0 {
		return NoiseStream{}
	}
	return NoiseStream{base: mathx.Mix(readSeed, dsReadNoise), sigma: m.P.ReadNoiseSigma}
}

// At returns the sensing noise of one cell; bit-identical to ReadNoise.
func (ns NoiseStream) At(cell int) float64 {
	if ns.sigma == 0 {
		return 0
	}
	return ns.sigma * mathx.GaussFromHash(mathx.Mix(ns.base, uint64(cell)))
}

// FillCellZ writes the frozen program offset of every cell of a wordline
// program epoch into dst, as float32 (the chip's zcache precision). Each
// entry is bit-identical to float32(CellZ(globalWL, cell, epoch)); only
// the per-(wordline, epoch) hash setup is hoisted out of the loop.
func (m *Model) FillCellZ(globalWL, epoch uint64, dst []float32) {
	base := mathx.Mix3(m.Seed, dsCellZ, mathx.Mix(globalWL, epoch))
	tf, tm := m.P.TailFrac, m.P.TailMult
	for i := range dst {
		h := mathx.Mix(base, uint64(i))
		z := mathx.GaussFromHash(h)
		if tf > 0 && mathx.UniformFromHash(mathx.Hash64(h^dsCellTail)) < tf {
			z *= tm
		}
		dst[i] = float32(z)
	}
}

// FillVth writes the threshold voltage of every cell of one read
// operation into dst (the hash-path analogue of the chip's zcache read).
// dst[i] is bit-identical to CellVth(env, globalWL, i, len(dst),
// states[i], epoch, readSeed): the same hash draws, the same
// floating-point summation order, only the per-read stream setup hoisted
// out of the loop.
func (m *Model) FillVth(env WLEnv, globalWL uint64, states []uint8, epoch, readSeed uint64, dst []float64) {
	zbase := mathx.Mix3(m.Seed, dsCellZ, mathx.Mix(globalWL, epoch))
	tf, tm := m.P.TailFrac, m.P.TailMult
	ns := m.Noise(readSeed)
	nf := float64(len(dst))
	for i := range dst {
		s := int(states[i])
		pos := (float64(i)+0.5)/nf - 0.5
		var grad float64
		if s > 0 {
			grad = env.Gradient * pos
		}
		h := mathx.Mix(zbase, uint64(i))
		z := mathx.GaussFromHash(h)
		if tf > 0 && mathx.UniformFromHash(mathx.Hash64(h^dsCellTail)) < tf {
			z *= tm
		}
		dst[i] = env.Mean[s] + grad + env.Sigma[s]*z + ns.At(i)
	}
}

// readDisturbShift is the upward creep of low states after many reads.
// Negligible below ~1e6 reads, matching the paper's measurement.
func (m *Model) readDisturbShift(s int, reads int) float64 {
	if reads <= 0 || m.P.ReadDisturbScale == 0 {
		return 0
	}
	// Only states well below the pass-through voltage creep upward;
	// weight fades with state index.
	k := float64(m.P.States() - 1)
	w := (k - float64(s)) / k
	return m.P.ReadDisturbScale * w * math.Log1p(float64(reads)/1e5)
}

// WLEnv captures everything about a wordline's environment that is shared
// by all its cells: resolved per-state means and sigmas under a given
// stress, plus the spatial gradient. Computing it once per wordline read
// makes per-cell evaluation cheap.
type WLEnv struct {
	Mean     []float64 // per-state mean Vth
	Sigma    []float64 // per-state std dev
	Gradient float64   // full-span spatial shift (voltage units)
	states   int
}

// Env resolves the wordline environment for a wordline at (layer,
// globalWL) under stress st.
func (m *Model) Env(layer int, globalWL uint64, st Stress) WLEnv {
	var env WLEnv
	m.EnvInto(&env, layer, globalWL, st)
	return env
}

// EnvInto is the allocation-free form of Env: it resolves the wordline
// environment into env, reusing env's Mean and Sigma slices when they
// have capacity. The resulting values are identical to Env's.
func (m *Model) EnvInto(env *WLEnv, layer int, globalWL uint64, st Stress) {
	k := m.P.States()
	if cap(env.Mean) < k {
		env.Mean = make([]float64, k)
	}
	if cap(env.Sigma) < k {
		env.Sigma = make([]float64, k)
	}
	env.Mean = env.Mean[:k]
	env.Sigma = env.Sigma[:k]
	env.Gradient = m.WLGradient(globalWL)
	env.states = k
	amp := m.ShiftAmplitude(st) * m.LayerShiftMult(layer) * m.WLShiftMult(globalWL)
	widen := m.SigmaWiden(st) * m.LayerSigmaMult(layer)
	dT := st.EffectiveReadTemp() - RoomTempC
	for s := 0; s < k; s++ {
		shift := -amp*m.shiftWeight(s) + m.readDisturbShift(s, st.ReadCount) +
			m.crossTempShift(s, dT)
		env.Mean[s] = m.Center(s) + m.LayerStateOffset(layer, s) +
			m.WLStateOffset(globalWL, s) + shift
		env.Sigma[s] = m.BaseSigma(s) * widen
	}
}

// crossTempShift is the cross-temperature Vth movement of state s when
// read dT degrees away from the programming temperature: higher states
// have a stronger (more negative when hot) temperature coefficient.
func (m *Model) crossTempShift(s int, dT float64) float64 {
	if s == 0 || dT == 0 || m.P.XTempPerC == 0 {
		return 0
	}
	k := float64(m.P.States() - 1)
	return -m.P.XTempPerC * dT * float64(s) / k
}

// CellVth returns the threshold voltage of a cell in state s at position
// cell of n cells on the wordline, for a given program epoch and read
// seed.
func (m *Model) CellVth(env WLEnv, globalWL uint64, cell, n, s int, epoch, readSeed uint64) float64 {
	pos := (float64(cell)+0.5)/float64(n) - 0.5
	var grad float64
	if s > 0 { // the erased state carries no programmed charge to skew
		grad = env.Gradient * pos
	}
	return env.Mean[s] + grad +
		env.Sigma[s]*m.CellZ(globalWL, cell, epoch) +
		m.ReadNoise(readSeed, cell)
}
