// Package physics models the threshold-voltage (Vth) behaviour of 3D NAND
// flash cells: programmed state distributions, retention- and
// P/E-cycle-driven shifts, temperature acceleration (Arrhenius),
// layer-to-layer and wordline-to-wordline process variation, and per-read
// sensing noise.
//
// The model is deliberately statistical rather than device-physical: it is
// tuned so that the *error statistics as a function of applied read
// voltage* reproduce the structure measured on real 64-layer Micron TLC
// and QLC chips in "Shaving Retries with Sentinels for Fast Read over
// High-Density 3D Flash" (MICRO 2020): order-of-magnitude RBER reduction
// at the optimal voltages, strong layer variation, near-uniform error
// positions along a wordline, and near-linear correlation between the
// per-voltage optima of a wordline.
//
// All voltages are in the paper's normalized units, where the width of one
// programmed voltage state is 256 for TLC and 128 for QLC.
package physics

import "fmt"

// Params describes one flash cell technology (e.g. the paper's TLC or QLC
// chip). All voltage quantities are in normalized units.
type Params struct {
	// Bits is the number of bits per cell (3 for TLC, 4 for QLC).
	Bits int

	// StateWidth is the nominal spacing between adjacent programmed state
	// centres (paper: 256 for TLC, 128 for QLC).
	StateWidth float64

	// EraseDepth places the erased-state centre at -EraseDepth*StateWidth.
	// The erased distribution sits well below the first programmed state.
	EraseDepth float64

	// ProgramSigma is the fresh standard deviation of programmed states
	// (s >= 1); EraseSigma is the (much wider) erased-state deviation.
	ProgramSigma float64
	EraseSigma   float64

	// DefaultMargin shifts every default read voltage this far *below* the
	// nominal midpoint between adjacent states. Vendors bias defaults low
	// in anticipation of retention loss, which makes fresh optimal offsets
	// slightly positive (paper Fig. 5 room-temperature curves).
	DefaultMargin float64

	// RetentionScale is the amplitude A0 of the retention-driven shift:
	// shift(s) = -A0 * ln(1 + tEff/T0) * (1 + PE*WearShiftPer1K/1000) * w(s).
	RetentionScale float64

	// RetentionT0Hours is the reference time constant T0 of the
	// logarithmic retention law.
	RetentionT0Hours float64

	// ChargeFloor is the floor of the per-state shift weight
	// w(s) = ChargeFloor + (K-1-s)/(K-1) for s >= 1 (w(0) = 0: the erased
	// state holds no programmed charge and does not leak). The weight
	// decreasing with s reproduces the paper's Fig. 6, where lower read
	// voltages exhibit larger optimal offsets than higher ones.
	ChargeFloor float64

	// WearShiftPer1K scales how much P/E wear accelerates the retention
	// shift: factor (1 + PE/1000 * WearShiftPer1K).
	WearShiftPer1K float64

	// SigmaPEPer1K and SigmaRetention widen the state distributions:
	// sigma = base * (1 + PE/1000*SigmaPEPer1K + SigmaRetention*ln(1+tEff/T0)).
	SigmaPEPer1K   float64
	SigmaRetention float64

	// LayerShiftStd is the relative standard deviation of the per-layer
	// retention multiplier (process variation across the 3D stack).
	LayerShiftStd float64

	// LayerSigmaStd is the relative standard deviation of the per-layer
	// sigma multiplier.
	LayerSigmaStd float64

	// WLShiftStd is the relative standard deviation of the per-wordline
	// retention multiplier within a layer.
	WLShiftStd float64

	// LayerStateJitter and WLStateJitter are additive per-(layer,state)
	// and per-(wordline,state) centre offsets in voltage units. They make
	// the per-voltage optima of a wordline imperfectly correlated, giving
	// Fig. 8 its scatter.
	LayerStateJitter float64
	WLStateJitter    float64

	// GradientStd is the standard deviation (in voltage units, per full
	// wordline length) of a per-wordline spatial shift gradient along the
	// bitline direction. Wordlines with a large gradient are the ones
	// whose sentinel cells (stored at the tail, in the OOB region)
	// misrepresent the data body — the paper's inference-failure cases
	// that calibration then repairs.
	GradientStd float64

	// ReadNoiseSigma is the per-read sensing noise standard deviation.
	// Two reads at the same voltage can differ (paper Section IV-B).
	ReadNoiseSigma float64

	// ActivationEnergyEV is the Arrhenius activation energy used to
	// convert time at an elevated temperature into equivalent
	// room-temperature retention time.
	ActivationEnergyEV float64

	// ReadDisturbScale controls the tiny upward creep of low states with
	// accumulated reads. The paper measured no degradation below one
	// million reads; the default keeps the effect negligible until then.
	ReadDisturbScale float64

	// TailFrac and TailMult model the heavy tails of real Vth
	// distributions: a TailFrac fraction of cells draw their program
	// offset from a TailMult-times-wider Gaussian (fast leakers, random
	// telegraph noise victims). The tail population sets the error floor
	// at the optimal read voltage, which is what keeps real optimal-RBER
	// around 1e-4..1e-3 instead of the vanishing Gaussian prediction.
	TailFrac float64
	TailMult float64

	// XTempPerC models the cross-temperature effect: when a wordline is
	// READ at a temperature different from the programming temperature,
	// state s's Vth moves by -XTempPerC * (Tread - Troom) * s/(K-1)
	// voltage units (higher states have a stronger negative temperature
	// coefficient). Because the per-state weighting differs from the
	// retention-shift weighting, the cross-voltage optimum correlations
	// change with read temperature — the reason the paper keeps one
	// correlation table per temperature range (Section III-D).
	XTempPerC float64
}

// States returns the number of voltage states (2^Bits).
func (p Params) States() int { return 1 << p.Bits }

// NumVoltages returns the number of read voltages (states - 1).
func (p Params) NumVoltages() int { return p.States() - 1 }

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	if p.Bits < 1 || p.Bits > 5 {
		return fmt.Errorf("physics: bits per cell %d out of range [1,5]", p.Bits)
	}
	if p.StateWidth <= 0 {
		return fmt.Errorf("physics: non-positive state width %v", p.StateWidth)
	}
	if p.ProgramSigma <= 0 || p.EraseSigma <= 0 {
		return fmt.Errorf("physics: non-positive sigma")
	}
	if p.RetentionT0Hours <= 0 {
		return fmt.Errorf("physics: non-positive retention T0")
	}
	if p.ActivationEnergyEV <= 0 {
		return fmt.Errorf("physics: non-positive activation energy")
	}
	return nil
}

// TLC returns parameters modelling the paper's 64-layer 3D TLC chip
// (3 bits/cell, state width 256).
func TLC() Params {
	return Params{
		Bits:               3,
		StateWidth:         256,
		EraseDepth:         2.0,
		ProgramSigma:       34,
		EraseSigma:         110,
		DefaultMargin:      3,
		RetentionScale:     3.0,
		RetentionT0Hours:   1,
		ChargeFloor:        0.25,
		WearShiftPer1K:     0.1667,
		SigmaPEPer1K:       0.030,
		SigmaRetention:     0.010,
		LayerShiftStd:      0.20,
		LayerSigmaStd:      0.03,
		WLShiftStd:         0.06,
		LayerStateJitter:   2.0,
		WLStateJitter:      1.2,
		GradientStd:        4.0,
		ReadNoiseSigma:     3.0,
		ActivationEnergyEV: 0.55,
		ReadDisturbScale:   0.02,
		TailFrac:           0.008,
		TailMult:           2.2,
		XTempPerC:          0.30,
	}
}

// QLC returns parameters modelling the paper's 64-layer 3D QLC chip
// (4 bits/cell, state width 128).
func QLC() Params {
	return Params{
		Bits:               4,
		StateWidth:         128,
		EraseDepth:         2.0,
		ProgramSigma:       21,
		EraseSigma:         60,
		DefaultMargin:      2.5,
		RetentionScale:     3.2,
		RetentionT0Hours:   1,
		ChargeFloor:        0.25,
		WearShiftPer1K:     0.1667,
		SigmaPEPer1K:       0.05,
		SigmaRetention:     0.012,
		LayerShiftStd:      0.20,
		LayerSigmaStd:      0.05,
		WLShiftStd:         0.06,
		LayerStateJitter:   1.2,
		WLStateJitter:      0.8,
		GradientStd:        2.5,
		ReadNoiseSigma:     2.0,
		ActivationEnergyEV: 0.55,
		ReadDisturbScale:   0.02,
		TailFrac:           0.008,
		TailMult:           2.2,
		XTempPerC:          0.18,
	}
}
