package physics

import (
	"fmt"
	"math"
)

// TempSchedule describes the ambient temperature of a device over its
// simulated life as a periodic square wave: the first HotFrac of every
// PeriodHours-long period is spent at HotC, the remainder at BaseC.
// Degenerate settings (zero period, HotFrac outside (0,1), or
// BaseC == HotC) give a constant temperature. The zero value is a
// constant 0°C — schedules are always constructed explicitly, so a cold
// device is expressible (see Stress.ReadTempSet for the same rule on
// read temperature).
type TempSchedule struct {
	// BaseC is the ambient temperature outside the hot window.
	BaseC float64

	// HotC is the ambient temperature inside the hot window.
	HotC float64

	// PeriodHours is the length of one schedule period.
	PeriodHours float64

	// HotFrac is the fraction of each period spent at HotC, in [0,1].
	HotFrac float64
}

// ConstantTemp returns a schedule that holds tempC forever.
func ConstantTemp(tempC float64) TempSchedule {
	return TempSchedule{BaseC: tempC, HotC: tempC}
}

// SquareWave returns a periodic schedule spending hotFrac of every
// periodHours at hotC and the rest at baseC.
func SquareWave(baseC, hotC, periodHours, hotFrac float64) TempSchedule {
	return TempSchedule{BaseC: baseC, HotC: hotC, PeriodHours: periodHours, HotFrac: hotFrac}
}

// constant reports whether the schedule never leaves BaseC's band.
func (ts TempSchedule) constant() bool {
	return ts.BaseC == ts.HotC || ts.PeriodHours <= 0 || ts.HotFrac <= 0 || ts.HotFrac >= 1
}

// TempAt returns the ambient temperature at absolute device-hour h.
func (ts TempSchedule) TempAt(h float64) float64 {
	if ts.constant() {
		if ts.HotFrac >= 1 {
			return ts.HotC
		}
		return ts.BaseC
	}
	rem := math.Mod(h, ts.PeriodHours)
	if rem < 0 {
		rem += ts.PeriodHours
	}
	if rem < ts.HotFrac*ts.PeriodHours {
		return ts.HotC
	}
	return ts.BaseC
}

// Validate rejects schedules that cannot be evaluated.
func (ts TempSchedule) Validate() error {
	for _, c := range [...]float64{ts.BaseC, ts.HotC} {
		if math.IsNaN(c) || c < -60 || c > 150 {
			return fmt.Errorf("physics: schedule temperature %g°C out of range [-60,150]", c)
		}
	}
	if math.IsNaN(ts.PeriodHours) || ts.PeriodHours < 0 {
		return fmt.Errorf("physics: negative schedule period %g h", ts.PeriodHours)
	}
	if math.IsNaN(ts.HotFrac) || ts.HotFrac < 0 || ts.HotFrac > 1 {
		return fmt.Errorf("physics: schedule hot fraction %g out of [0,1]", ts.HotFrac)
	}
	return nil
}

// Eval pre-resolves the Arrhenius acceleration factors of the
// schedule's two temperature bands so EffHours stays cheap enough for
// per-read use in the replay hot path.
func (ts TempSchedule) Eval(p Params) ScheduleEval {
	e := ScheduleEval{sched: ts}
	e.afBase = AccelerationFactor(p.ActivationEnergyEV, ts.BaseC)
	e.afHot = AccelerationFactor(p.ActivationEnergyEV, ts.HotC)
	if ts.constant() {
		if ts.HotFrac >= 1 {
			e.afBase = e.afHot
		}
		e.hotPerPeriod = 0
		e.period = 0
	} else {
		e.period = ts.PeriodHours
		e.hotPerPeriod = ts.HotFrac * ts.PeriodHours
	}
	return e
}

// ScheduleEval is a TempSchedule bound to one cell technology's
// activation energy. EffHours converts a wall-clock interval of device
// life into effective room-temperature retention hours in closed form —
// no per-step accumulation — so the result depends only on the interval
// endpoints.
type ScheduleEval struct {
	sched         TempSchedule
	afBase, afHot float64
	period        float64
	hotPerPeriod  float64
}

// Schedule returns the schedule this evaluation was built from.
func (e ScheduleEval) Schedule() TempSchedule { return e.sched }

// hotHoursBefore returns the cumulative hot-band hours in [0, t].
func (e ScheduleEval) hotHoursBefore(t float64) float64 {
	n := math.Floor(t / e.period)
	rem := t - n*e.period
	return n*e.hotPerPeriod + math.Min(rem, e.hotPerPeriod)
}

// HotHoursBefore returns the cumulative hot-band hours in [0, t].
// Exported so hot-path consumers can compute it once per epoch (a
// block's erase, a clock advance) and evaluate intervals with
// EffHoursPre instead of paying the schedule arithmetic on every query.
func (e ScheduleEval) HotHoursBefore(t float64) float64 {
	if e.hotPerPeriod <= 0 {
		return 0
	}
	return e.hotHoursBefore(t)
}

// EffHoursPre is EffHours for callers that cached HotHoursBefore at
// both endpoints: bit-identical to EffHours(from, to), with no per-call
// schedule arithmetic or validation. The caller must guarantee
// from <= to (no NaN) and hotFrom/hotTo = HotHoursBefore(from/to).
func (e ScheduleEval) EffHoursPre(from, to, hotFrom, hotTo float64) float64 {
	span := to - from
	hot := hotTo - hotFrom
	if hot < 0 {
		hot = 0
	} else if hot > span {
		hot = span
	}
	return hot*e.afHot + (span-hot)*e.afBase
}

// MaxRate returns the schedule's fastest effective-hours accrual rate —
// an upper bound on d(EffHours)/dt — so consumers can bound how soon a
// retention threshold can possibly be crossed and skip recomputation
// until then.
func (e ScheduleEval) MaxRate() float64 {
	if e.hotPerPeriod > 0 && e.afHot > e.afBase {
		return e.afHot
	}
	return e.afBase
}

// EffHours returns the effective room-temperature retention hours
// accrued over device-hours [from, to]. It is a pure function of the
// two endpoints: for any split point m in [from, to], the pair
// (EffHours(from, m), EffHours(m, to)) describes the same physical
// interval, but consumers that care about exactness must query the full
// interval rather than summing parts (floating-point addition is not
// associative) — which is exactly what RetentionClock does. A reversed
// or NaN interval panics, matching Stress.Aged.
func (e ScheduleEval) EffHours(from, to float64) float64 {
	if math.IsNaN(from) || math.IsNaN(to) || to < from {
		panic(fmt.Sprintf("physics: EffHours over invalid interval [%g, %g]", from, to))
	}
	span := to - from
	if e.hotPerPeriod <= 0 {
		return span * e.afBase
	}
	hot := e.hotHoursBefore(to) - e.hotHoursBefore(from)
	if hot < 0 {
		hot = 0
	} else if hot > span {
		hot = span
	}
	return hot*e.afHot + (span-hot)*e.afBase
}

// RetentionClock tracks simulated device time and answers "how much
// effective room-temperature retention has a block accrued since it was
// last programmed". It deliberately stores no accumulated retention:
// every query recomputes EffHours from the (programTime, now) endpoint
// pair, so a query at device-hour T returns bit-identical results no
// matter how many intermediate AdvanceTo calls happened, or how an
// interval was split across them. Accumulating per-interval increments
// instead would make replay results drift with request arrival
// granularity and worker scheduling, breaking the byte-identical
// determinism contract.
type RetentionClock struct {
	// Eval is the compiled temperature schedule.
	Eval ScheduleEval

	nowHours float64
}

// AdvanceTo moves the clock to the absolute device-hour now. The clock
// is monotonic: moving backwards is clamped (MSR traces carry
// occasional out-of-order timestamps); NaN panics.
func (c *RetentionClock) AdvanceTo(nowHours float64) {
	if math.IsNaN(nowHours) {
		panic("physics: RetentionClock.AdvanceTo(NaN)")
	}
	if nowHours > c.nowHours {
		c.nowHours = nowHours
	}
}

// NowHours returns the clock's current absolute device-hour.
func (c *RetentionClock) NowHours() float64 { return c.nowHours }

// EffSince returns the effective room-temperature retention accrued
// from absolute device-hour resetHours (the block's last program or
// erase) to now. resetHours after now is clamped to an empty interval
// so a block programmed "at" the current instant reads as fresh.
func (c *RetentionClock) EffSince(resetHours float64) float64 {
	if resetHours >= c.nowHours {
		return 0
	}
	return c.Eval.EffHours(resetHours, c.nowHours)
}
