package physics

import (
	"math"
	"testing"
)

// The batched kernels must be bit-identical to their scalar counterparts:
// the read stack's byte-identity guarantee rests on it.

func fillTestModel(t *testing.T, kind func() Params, seed uint64) *Model {
	t.Helper()
	m, err := NewModel(kind(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNoiseStreamMatchesReadNoise(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0xdeadbeef} {
		m := fillTestModel(t, TLC, seed)
		for _, readSeed := range []uint64{0, 42, 1 << 60} {
			ns := m.Noise(readSeed)
			for cell := 0; cell < 257; cell++ {
				want := m.ReadNoise(readSeed, cell)
				if got := ns.At(cell); got != want {
					t.Fatalf("seed %d readSeed %d cell %d: NoiseStream %v != ReadNoise %v",
						seed, readSeed, cell, got, want)
				}
			}
		}
	}
	// Zero-sigma models short-circuit in both paths.
	p := QLC()
	p.ReadNoiseSigma = 0
	m, err := NewModel(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Noise(9).At(5); got != 0 {
		t.Fatalf("zero-sigma NoiseStream.At = %v, want 0", got)
	}
}

func TestFillCellZMatchesCellZ(t *testing.T) {
	for _, mk := range []func() Params{TLC, QLC} {
		m := fillTestModel(t, mk, 11)
		dst := make([]float32, 301)
		for _, g := range []uint64{0, 5, 999} {
			for _, epoch := range []uint64{1, 2} {
				m.FillCellZ(g, epoch, dst)
				for i := range dst {
					want := float32(m.CellZ(g, i, epoch))
					if dst[i] != want {
						t.Fatalf("wl %d epoch %d cell %d: FillCellZ %v != CellZ %v",
							g, epoch, i, dst[i], want)
					}
				}
			}
		}
	}
}

func TestFillVthMatchesCellVth(t *testing.T) {
	for _, mk := range []func() Params{TLC, QLC} {
		m := fillTestModel(t, mk, 13)
		n := 283
		states := make([]uint8, n)
		for i := range states {
			states[i] = uint8(i % m.P.States())
		}
		st := Stress{PECycles: 3000}
		st = st.Aged(m.P, 1000, RoomTempC)
		env := m.Env(2, 77, st)
		dst := make([]float64, n)
		m.FillVth(env, 77, states, 4, 0xabc, dst)
		for i := range dst {
			want := m.CellVth(env, 77, i, n, int(states[i]), 4, 0xabc)
			if dst[i] != want || math.IsNaN(dst[i]) {
				t.Fatalf("cell %d: FillVth %v != CellVth %v", i, dst[i], want)
			}
		}
	}
}
