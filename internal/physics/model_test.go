package physics

import (
	"math"
	"testing"
)

func mustModel(t *testing.T, p Params, seed uint64) *Model {
	t.Helper()
	m, err := NewModel(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCentersOrderedAndSpaced(t *testing.T) {
	for _, p := range []Params{TLC(), QLC()} {
		m := mustModel(t, p, 1)
		for s := 1; s < p.States(); s++ {
			if m.Center(s) <= m.Center(s-1) {
				t.Fatalf("centers not increasing at s=%d", s)
			}
		}
		// Programmed states are evenly spaced by StateWidth.
		for s := 2; s < p.States(); s++ {
			if gap := m.Center(s) - m.Center(s-1); math.Abs(gap-p.StateWidth) > 1e-9 {
				t.Fatalf("gap at s=%d is %v, want %v", s, gap, p.StateWidth)
			}
		}
		// Erased state is well below state 1.
		if m.Center(1)-m.Center(0) < 2*p.StateWidth {
			t.Fatal("erased state too close to state 1")
		}
	}
}

func TestDefaultReadVoltagesOrdered(t *testing.T) {
	m := mustModel(t, QLC(), 1)
	for i := 1; i <= m.P.NumVoltages(); i++ {
		v := m.DefaultReadVoltage(i)
		if v <= m.Center(i-1) || v >= m.Center(i) {
			t.Fatalf("V%d = %v not between centers %v and %v",
				i, v, m.Center(i-1), m.Center(i))
		}
		if i > 1 && v <= m.DefaultReadVoltage(i-1) {
			t.Fatalf("read voltages not increasing at V%d", i)
		}
	}
}

func TestDefaultMarginBelowMidpoint(t *testing.T) {
	m := mustModel(t, TLC(), 1)
	mid := (m.Center(3) + m.Center(4)) / 2
	if got := m.DefaultReadVoltage(4); math.Abs(got-(mid-m.P.DefaultMargin)) > 1e-9 {
		t.Fatalf("V4 = %v, want %v", got, mid-m.P.DefaultMargin)
	}
}

func TestShiftAmplitudeBehaviour(t *testing.T) {
	m := mustModel(t, QLC(), 1)
	if a := m.ShiftAmplitude(Stress{}); a != 0 {
		t.Fatalf("fresh shift amplitude = %v, want 0", a)
	}
	aRet := m.ShiftAmplitude(Stress{EffRetentionHours: 100})
	aRetMore := m.ShiftAmplitude(Stress{EffRetentionHours: 1000})
	if !(aRetMore > aRet && aRet > 0) {
		t.Fatalf("shift not increasing in retention: %v, %v", aRet, aRetMore)
	}
	aWorn := m.ShiftAmplitude(Stress{EffRetentionHours: 100, PECycles: 3000})
	if aWorn <= aRet {
		t.Fatalf("P/E wear did not accelerate shift: %v vs %v", aWorn, aRet)
	}
}

func TestSigmaWidenMonotone(t *testing.T) {
	m := mustModel(t, QLC(), 1)
	if w := m.SigmaWiden(Stress{}); math.Abs(w-1) > 1e-12 {
		t.Fatalf("fresh widen = %v", w)
	}
	w1 := m.SigmaWiden(Stress{PECycles: 1000})
	w2 := m.SigmaWiden(Stress{PECycles: 1000, EffRetentionHours: 8760})
	if !(w2 > w1 && w1 > 1) {
		t.Fatalf("widen not monotone: %v %v", w1, w2)
	}
}

func TestShiftWeightDecreasesWithState(t *testing.T) {
	m := mustModel(t, QLC(), 1)
	if m.shiftWeight(0) != 0 {
		t.Fatal("erased state should not shift")
	}
	for s := 2; s < m.P.States(); s++ {
		if m.shiftWeight(s) >= m.shiftWeight(s-1) {
			t.Fatalf("shift weight not decreasing at s=%d", s)
		}
	}
	if m.shiftWeight(m.P.States()-1) < m.P.ChargeFloor-1e-12 {
		t.Fatal("shift weight fell below charge floor")
	}
}

func TestVariationFieldsFrozenPerSeed(t *testing.T) {
	a := mustModel(t, QLC(), 42)
	b := mustModel(t, QLC(), 42)
	c := mustModel(t, QLC(), 43)
	if a.LayerShiftMult(7) != b.LayerShiftMult(7) {
		t.Fatal("layer field not deterministic")
	}
	different := false
	for l := 0; l < 16; l++ {
		if a.LayerShiftMult(l) != c.LayerShiftMult(l) {
			different = true
			break
		}
	}
	if !different {
		t.Fatal("different seeds produced identical layer fields")
	}
}

func TestVariationFieldsSpread(t *testing.T) {
	m := mustModel(t, QLC(), 9)
	var lo, hi float64 = 10, -10
	for l := 0; l < 64; l++ {
		v := m.LayerShiftMult(l)
		if v <= 0 {
			t.Fatalf("non-positive layer mult %v", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 0.2 {
		t.Fatalf("layer variation too small: [%v, %v]", lo, hi)
	}
}

func TestCellZStableAcrossReadsRedrawnOnReprogram(t *testing.T) {
	m := mustModel(t, QLC(), 5)
	if m.CellZ(3, 100, 1) != m.CellZ(3, 100, 1) {
		t.Fatal("CellZ not stable")
	}
	if m.CellZ(3, 100, 1) == m.CellZ(3, 100, 2) {
		t.Fatal("CellZ identical across program epochs")
	}
	if m.CellZ(3, 100, 1) == m.CellZ(3, 101, 1) {
		t.Fatal("CellZ identical across cells")
	}
}

func TestReadNoiseVariesPerRead(t *testing.T) {
	m := mustModel(t, QLC(), 5)
	if m.ReadNoise(1, 10) == m.ReadNoise(2, 10) {
		t.Fatal("read noise identical across reads")
	}
	p := QLC()
	p.ReadNoiseSigma = 0
	m2 := mustModel(t, p, 5)
	if m2.ReadNoise(1, 10) != 0 {
		t.Fatal("zero-sigma read noise should be 0")
	}
}

func TestEnvMeansShiftLeftUnderStress(t *testing.T) {
	m := mustModel(t, QLC(), 5)
	fresh := m.Env(10, 100, Stress{})
	aged := m.Env(10, 100, Stress{PECycles: 1000, EffRetentionHours: 8760})
	for s := 1; s < m.P.States(); s++ {
		if aged.Mean[s] >= fresh.Mean[s] {
			t.Fatalf("state %d did not shift left under stress", s)
		}
		if aged.Sigma[s] <= fresh.Sigma[s] {
			t.Fatalf("state %d sigma did not widen under stress", s)
		}
	}
	// Erased state does not leak.
	if math.Abs(aged.Mean[0]-fresh.Mean[0]) > 1e-9 {
		t.Fatal("erased state shifted under retention")
	}
}

func TestEnvShiftDecreasesWithStateIndex(t *testing.T) {
	// The magnitude of the retention shift must decrease with state index
	// (paper Fig. 6: lower read voltages have larger optimal offsets).
	m := mustModel(t, QLC(), 5)
	fresh := m.Env(10, 100, Stress{})
	aged := m.Env(10, 100, Stress{PECycles: 3000, EffRetentionHours: 8760})
	prev := math.Inf(1)
	for s := 1; s < m.P.States(); s++ {
		shift := fresh.Mean[s] - aged.Mean[s]
		if shift >= prev {
			t.Fatalf("shift magnitude not decreasing at state %d: %v >= %v",
				s, shift, prev)
		}
		prev = shift
	}
}

func TestCellVthDistribution(t *testing.T) {
	// Empirical mean and std of sampled Vth must match the environment.
	m := mustModel(t, QLC(), 5)
	st := Stress{PECycles: 1000, EffRetentionHours: 8760}
	env := m.Env(3, 77, st)
	const n = 20000
	s := 9
	var sum, sumSq float64
	for c := 0; c < n; c++ {
		v := m.CellVth(env, 77, c, n, s, 1, 0xabc)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	// Gradient averages out over positions; read noise adds in quadrature.
	wantSD := math.Sqrt(env.Sigma[s]*env.Sigma[s] +
		m.P.ReadNoiseSigma*m.P.ReadNoiseSigma +
		env.Gradient*env.Gradient/12)
	if math.Abs(mean-env.Mean[s]) > 4*wantSD/math.Sqrt(n)+1 {
		t.Fatalf("empirical mean %v, want %v", mean, env.Mean[s])
	}
	if math.Abs(sd-wantSD)/wantSD > 0.05 {
		t.Fatalf("empirical sd %v, want %v", sd, wantSD)
	}
}

func TestReadDisturbNegligibleBelowMillionReads(t *testing.T) {
	m := mustModel(t, QLC(), 5)
	st := Stress{ReadCount: 500000}
	env0 := m.Env(0, 0, Stress{})
	envR := m.Env(0, 0, st)
	for s := 0; s < m.P.States(); s++ {
		if d := math.Abs(envR.Mean[s] - env0.Mean[s]); d > 0.2 {
			t.Fatalf("read disturb moved state %d by %v before 1M reads", s, d)
		}
	}
}

func TestGradientZeroMeanAcrossWordlines(t *testing.T) {
	m := mustModel(t, QLC(), 5)
	var sum float64
	const n = 2000
	for wl := uint64(0); wl < n; wl++ {
		sum += m.WLGradient(wl)
	}
	if mean := sum / n; math.Abs(mean) > 0.3 {
		t.Fatalf("gradient mean %v not ~0", mean)
	}
}
