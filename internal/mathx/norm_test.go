package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormInvKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1},    // Phi(1)
		{0.15865525393145707, -1},  // Phi(-1)
		{0.9772498680518208, 2},    // Phi(2)
		{0.022750131948179212, -2}, // Phi(-2)
		{0.9986501019683699, 3},
		{0.0013498980316301035, -3},
	}
	for _, c := range cases {
		got := NormInv(c.p)
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("NormInv(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormInvEdgeCases(t *testing.T) {
	if !math.IsInf(NormInv(0), -1) {
		t.Error("NormInv(0) should be -Inf")
	}
	if !math.IsInf(NormInv(1), 1) {
		t.Error("NormInv(1) should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormInv(p)) {
			t.Errorf("NormInv(%v) should be NaN", p)
		}
	}
}

func TestNormInvRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		// p in (1e-9, 1-1e-9) to avoid extreme tails.
		p := 1e-9 + float64(raw)/float64(math.MaxUint32)*(1-2e-9)
		x := NormInv(p)
		back := NormCDF(x)
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormCDFSymmetry(t *testing.T) {
	f := func(raw int16) bool {
		x := float64(raw) / 4096
		return math.Abs(NormCDF(x)+NormCDF(-x)-1) < 1e-14
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormPDFPeakAndSymmetry(t *testing.T) {
	if math.Abs(NormPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Error("NormPDF(0) wrong")
	}
	if NormPDF(1.3) != NormPDF(-1.3) {
		t.Error("NormPDF not symmetric")
	}
}

func TestGaussFromHashMoments(t *testing.T) {
	const n = 300000
	var sum, sumSq float64
	for i := uint64(0); i < n; i++ {
		v := GaussFromHash(Hash64(i))
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("GaussFromHash produced non-finite %v at %d", v, i)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("hash-gaussian mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("hash-gaussian variance %v", variance)
	}
}

func TestUniformFromHashRange(t *testing.T) {
	for i := uint64(0); i < 100000; i++ {
		u := UniformFromHash(Hash64(i * 977))
		if u < 0 || u >= 1 {
			t.Fatalf("UniformFromHash out of range: %v", u)
		}
	}
}
