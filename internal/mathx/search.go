package mathx

// UpperBound returns the number of elements of the ascending slice a that
// are <= x, i.e. the index of the first element strictly greater than x.
// It is the branch-light replacement for the
// sort.SearchFloat64s-plus-equal-advance idiom on the chip simulator's
// sweep hot path: the loop body compiles to a conditional move, and there
// is no per-probe closure call.
//
// Every comparison with a NaN x is false, so UpperBound(a, NaN) is 0 —
// callers that need the legacy "NaN sorts above everything" convention of
// sort.SearchFloat64s must special-case NaN themselves.
func UpperBound(a []float64, x float64) int {
	lo, n := 0, len(a)
	for n > 0 {
		half := n >> 1
		if a[lo+half] <= x {
			lo += half + 1
			n -= half + 1
		} else {
			n = half
		}
	}
	return lo
}
