package mathx

import (
	"fmt"
	"math"
)

// LogHist bucket layout: every octave [2^(e-1), 2^e) is split into
// logHistSub equal-width sub-buckets (an HDR-histogram-style
// linear-in-mantissa subdivision), so every bucket's upper/lower bound
// ratio is at most 1 + 1/logHistSub ≈ 3.1%. Exponents outside
// [logHistExpLo, logHistExpHi] clamp into the edge octaves; for
// microsecond-scale latencies that range spans ~5e-20 .. ~1.8e19, so
// clamping never happens in practice.
const (
	logHistSub     = 32
	logHistSubBits = 5 // log2(logHistSub); logHistIndex needs the power of two
	logHistExpLo   = -64
	logHistExpHi   = 64
)

// Compile-time check that logHistSubBits matches logHistSub.
var _ = [1]struct{}{}[logHistSub-1<<logHistSubBits]

// LogHist is a fixed-resolution log-bucketed histogram for non-negative
// samples (read latencies). It stores O(1) state in the sample count —
// ~4k buckets, ~33 KiB — while keeping the mean exact (a running sum)
// and quantiles accurate to one bucket width (a ≤3.2% relative error).
// Histograms from independent shards Merge losslessly; merging in a
// fixed shard order keeps the floating-point sum deterministic.
//
// The zero value is ready to use.
type LogHist struct {
	counts [(logHistExpHi - logHistExpLo + 1) * logHistSub]int64
	// zero counts non-positive samples; they participate in quantiles at
	// value 0 and in the sum at their true value.
	zero     int64
	count    int64
	sum      float64
	min, max float64
}

// logHistIndex maps a positive sample to its bucket. It is on the
// replay hot path (two histogram adds per serviced read), so it works
// straight off the float bits: the Frexp exponent is the biased
// exponent field minus 1022, and the sub-bucket — the old
// int((m*2-1)*logHistSub), which all cancels to a truncation because
// every scale factor is a power of two — is the top log2(logHistSub)
// mantissa bits. TestLogHistIndexMatchesFrexp pins the equivalence to
// the Frexp formulation across the full exponent range.
func logHistIndex(v float64) int {
	b := math.Float64bits(v)
	e := int(b>>52)&0x7ff - 1022
	if e < logHistExpLo {
		// Includes denormals: their true exponent is below -1022, far
		// outside the bucketed range.
		return 0
	}
	if e > logHistExpHi {
		// Includes +Inf and NaN (biased exponent 0x7ff), which the old
		// float arithmetic mishandled; callers route NaN away regardless.
		return len(LogHist{}.counts) - 1
	}
	sub := int(b>>(52-logHistSubBits)) & (logHistSub - 1)
	return (e-logHistExpLo)*logHistSub + sub
}

// logHistUpper returns the exclusive upper bound of bucket i.
func logHistUpper(i int) float64 {
	e := i/logHistSub + logHistExpLo
	sub := i % logHistSub
	return math.Ldexp(1+float64(sub+1)/logHistSub, e-1)
}

// WidthFactor is the worst-case ratio between a bucket's upper and lower
// bound: the resolution of Quantile.
func (h *LogHist) WidthFactor() float64 { return 1 + 1.0/logHistSub }

// Add records one sample.
func (h *LogHist) Add(v float64) {
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.zero++
		return
	}
	h.counts[logHistIndex(v)]++
}

// Merge folds o into h. Callers that need bit-identical results across
// runs must merge in a fixed order (the engine merges in shard order).
func (h *LogHist) Merge(o *LogHist) {
	if o.count == 0 {
		return
	}
	if h.count == 0 {
		h.min, h.max = o.min, o.max
	} else {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.count += o.count
	h.sum += o.sum
	h.zero += o.zero
	for i, c := range o.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
}

// Count returns the number of recorded samples.
func (h *LogHist) Count() int64 { return h.count }

// Sum returns the exact sum of recorded samples.
func (h *LogHist) Sum() float64 { return h.sum }

// Mean returns the exact mean, or 0 with no samples.
func (h *LogHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded sample, or 0 with no samples.
func (h *LogHist) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample, or 0 with no samples.
func (h *LogHist) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (q in [0, 1]) under the
// nearest-rank definition, resolved to one bucket width: the result is
// at least the rank's sample and overshoots it by less than
// WidthFactor. With no samples it returns 0.
//
// q is validated before use: NaN and negative values take the minimum
// path (rank 1) and values above 1 return the maximum. Converting an
// unguarded NaN or out-of-range product to int64 is undefined per the
// Go spec, so the raw conversion must never see such a q.
func (h *LogHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	if rank == h.count {
		return h.max // exact, and immune to exponent-range clamping
	}
	cum := h.zero
	if cum >= rank {
		return 0
	}
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// The bucket's upper bound keeps the one-sided "within one
			// bucket" guarantee; clamping to the observed max makes the
			// top quantile exact.
			u := logHistUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max // unreachable: counts sum to count-zero
}

// Percentile returns the p-th percentile (p in [0, 100]). It mirrors
// Quantile's guard: NaN and negative p take the minimum path, p above
// 100 returns the maximum.
func (h *LogHist) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// ---------------------------------------------------------------------------
// Bucket-layout accessors. The observability layer (internal/obs) keeps
// its concurrent histograms on the exact LogHist bucket grid so shard
// snapshots reconstruct as LogHist values and merge losslessly; these
// expose the layout without opening up the accumulator state.

// LogHistBuckets returns the number of positive-sample buckets.
func LogHistBuckets() int { return len(LogHist{}.counts) }

// LogHistBucketOf maps a positive sample to its bucket index. Callers
// route v <= 0 (and NaN) to the zero count instead.
func LogHistBucketOf(v float64) int { return logHistIndex(v) }

// LogHistBucketUpper returns the exclusive upper bound of bucket i.
func LogHistBucketUpper(i int) float64 { return logHistUpper(i) }

// ZeroCount returns the number of recorded non-positive samples.
func (h *LogHist) ZeroCount() int64 { return h.zero }

// DiffVisit calls fn for every positive-sample bucket whose count
// differs between h and prev (which may be nil, meaning all-zero),
// passing the bucket index and the count delta. It lets an incremental
// publisher push only the buckets a batch of samples touched.
func (h *LogHist) DiffVisit(prev *LogHist, fn func(bucket int, delta int64)) {
	for i, c := range h.counts {
		var p int64
		if prev != nil {
			p = prev.counts[i]
		}
		if c != p {
			fn(i, c-p)
		}
	}
}

// LogHistFromParts reconstructs a LogHist from externally accumulated
// state: per-bucket counts on the LogHistBuckets layout, the
// non-positive-sample count, the exact sum, and the observed min/max
// (ignored when the histogram is empty). It is the bridge back from the
// observability layer's atomic shard histograms to LogHist's merging
// and quantile machinery.
func LogHistFromParts(counts []int64, zero int64, sum, min, max float64) (*LogHist, error) {
	if len(counts) != LogHistBuckets() {
		return nil, fmt.Errorf("mathx: %d bucket counts, want %d", len(counts), LogHistBuckets())
	}
	h := &LogHist{zero: zero, sum: sum, count: zero}
	copy(h.counts[:], counts)
	for _, c := range counts {
		h.count += c
	}
	if h.count > 0 {
		h.min, h.max = min, max
	}
	return h, nil
}
