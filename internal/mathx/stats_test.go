package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
	if Variance([]float64{42}) != 0 {
		t.Fatal("singleton variance should be 0")
	}
	if AbsMean(nil) != 0 {
		t.Fatal("empty AbsMean should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v, %v)", lo, hi)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {110, 5},
		// Out-of-range p must never reach the rank-to-int conversion:
		// NaN and -Inf take the minimum, +Inf the maximum. Pre-guard,
		// the NaN case computed int(math.Floor(NaN)) — undefined.
		{math.NaN(), 1}, {math.Inf(-1), 1}, {math.Inf(1), 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Median(xs) != 3 {
		t.Fatal("Median wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed uint32) bool {
		r := NewRand(uint64(seed))
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		rho := Pearson(xs, ys)
		return rho >= -1-1e-12 && rho <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant-x Pearson should be 0")
	}
	if Pearson([]float64{1}, []float64{1}) != 0 {
		t.Fatal("undersized Pearson should be 0")
	}
}

func TestAbsMean(t *testing.T) {
	if AbsMean([]float64{-2, 2, -4, 4}) != 3 {
		t.Fatal("AbsMean wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("empty Summarize should be zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{-1, 0, 0.5, 5, 9.999, 10, 15} {
		h.Add(v)
	}
	if h.Under != 1 {
		t.Fatalf("Under = %d", h.Under)
	}
	if h.Over != 2 {
		t.Fatalf("Over = %d", h.Over)
	}
	if h.Counts[0] != 2 {
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[5] != 1 || h.Counts[9] != 1 {
		t.Fatalf("bins = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram with bad params should panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestHistogramFloatEdge(t *testing.T) {
	// A value infinitesimally below Hi must land in the last bin, never
	// out of range.
	h := NewHistogram(0, 1, 3)
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 || h.Over != 0 {
		t.Fatalf("edge value misbinned: %v over=%d", h.Counts, h.Over)
	}
}
