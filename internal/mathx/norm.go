package mathx

import "math"

// NormInv returns the inverse of the standard normal cumulative
// distribution function evaluated at p in (0, 1), using Acklam's rational
// approximation refined with one Halley step. Absolute error is below
// 1e-9 over the full domain, far tighter than the chip model needs.
//
// NormInv(0) is -Inf and NormInv(1) is +Inf; p outside [0, 1] yields NaN.
func NormInv(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for the central and tail rational approximations.
	a := [...]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [...]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [...]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [...]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step against the true CDF.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormCDF returns the standard normal cumulative distribution function at
// x, computed via the complementary error function for accuracy in the
// tails.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormPDF returns the standard normal density at x.
func NormPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// GaussFromHash converts a 64-bit hash value into a standard normal
// variate by pushing a uniform derived from the hash through NormInv.
// The uniform is clamped away from {0, 1} so the result is always finite.
func GaussFromHash(h uint64) float64 {
	u := (float64(h>>11) + 0.5) * (1.0 / (1 << 53))
	return NormInv(u)
}

// UniformFromHash converts a 64-bit hash value into a uniform in [0, 1).
func UniformFromHash(h uint64) float64 {
	return float64(h>>11) * (1.0 / (1 << 53))
}
