package mathx

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPolyEval(t *testing.T) {
	p := Poly{Coef: []float64{1, 2, 3}} // 1 + 2x + 3x^2
	cases := []struct{ x, want float64 }{
		{0, 1}, {1, 6}, {2, 17}, {-1, 2},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); got != c.want {
			t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPolyFitExactOnPolynomialData(t *testing.T) {
	// Property: fitting degree-d data with a degree-d model recovers the
	// evaluations exactly (up to numeric noise).
	r := NewRand(31)
	f := func(seed uint32) bool {
		rr := NewRand(uint64(seed))
		deg := rr.Intn(5) + 1
		coef := make([]float64, deg+1)
		for i := range coef {
			coef[i] = rr.Float64()*4 - 2
		}
		truth := Poly{Coef: coef}
		n := deg + 1 + rr.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64()*20 - 10
			ys[i] = truth.Eval(xs[i])
		}
		fit, err := PolyFit(xs, ys, deg)
		if err != nil {
			return false
		}
		for i := range xs {
			if math.Abs(fit.Eval(xs[i])-ys[i]) > 1e-6*(1+math.Abs(ys[i])) {
				return false
			}
		}
		return true
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPolyFitDegreeZero(t *testing.T) {
	fit, err := PolyFit([]float64{1, 2, 3}, []float64{5, 7, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Eval(0)-7) > 1e-12 {
		t.Fatalf("constant fit = %v, want 7", fit.Eval(0))
	}
}

func TestPolyFitInsufficientPoints(t *testing.T) {
	_, err := PolyFit([]float64{1, 2}, []float64{1, 2}, 5)
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestPolyFitMismatchedLengths(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2, 3}, []float64{1, 2}, 1); err == nil {
		t.Fatal("want error on mismatched lengths")
	}
}

func TestPolyFitConstantX(t *testing.T) {
	// All x identical: degree>=1 cannot be determined.
	xs := []float64{3, 3, 3, 3}
	ys := []float64{1, 2, 3, 4}
	if _, err := PolyFit(xs, ys, 2); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular for constant x, got %v", err)
	}
	// Degree 0 is fine.
	fit, err := PolyFit(xs, ys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Eval(0)-2.5) > 1e-12 {
		t.Fatalf("degree-0 fit on constant x = %v, want 2.5", fit.Eval(0))
	}
}

func TestPolyFitNoisy(t *testing.T) {
	// Degree-5 fit of a smooth monotone curve with noise should track the
	// underlying curve well: this mirrors the paper's f(d) fit (Fig 10).
	r := NewRand(2020)
	truth := func(x float64) float64 { return 40*math.Tanh(x*3) + 2*x }
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.Float64()*2 - 1
		xs = append(xs, x)
		ys = append(ys, truth(x)+r.NormFloat64()*0.5)
	}
	fit, err := PolyFit(xs, ys, 5)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for x := -0.9; x <= 0.9; x += 0.05 {
		e := math.Abs(fit.Eval(x) - truth(x))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 3 {
		t.Fatalf("degree-5 fit max error %v too large", maxErr)
	}
}

func TestSolveLinearIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, -4}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != -4 {
		t.Fatalf("identity solve = %v", x)
	}
}

func TestSolveLinearPivoting(t *testing.T) {
	// Requires row swap (a[0][0] == 0).
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{2, 5}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("pivoted solve = %v, want [5 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1
	}
	slope, intercept, r, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2.5) > 1e-12 || math.Abs(intercept+1) > 1e-12 {
		t.Fatalf("fit = %v x + %v", slope, intercept)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
}

func TestLinearFitNegativeCorrelation(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 2, 1, 0}
	_, _, r, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, _, _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular for constant x, got %v", err)
	}
}

func TestLinearFitConstantY(t *testing.T) {
	slope, intercept, r, err := LinearFit([]float64{1, 2, 3}, []float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if slope != 0 || intercept != 7 || r != 1 {
		t.Fatalf("constant-y fit = (%v, %v, %v)", slope, intercept, r)
	}
}

func TestPolyString(t *testing.T) {
	p := Poly{Coef: []float64{1, -2}}
	if s := p.String(); s == "" || s == "0" {
		t.Fatalf("unexpected String: %q", s)
	}
	if (Poly{}).String() != "0" {
		t.Fatal("empty poly should print as 0")
	}
}
