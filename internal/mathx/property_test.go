package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// TestNormInvMonotone: the inverse CDF must be strictly increasing.
func TestNormInvMonotone(t *testing.T) {
	f := func(aRaw, bRaw uint32) bool {
		a := 1e-9 + float64(aRaw)/float64(math.MaxUint32)*(1-2e-9)
		b := 1e-9 + float64(bRaw)/float64(math.MaxUint32)*(1-2e-9)
		if a == b {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return NormInv(a) <= NormInv(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPolyFitResidualOrthogonality: least squares leaves residuals with
// (near) zero mean when the model includes a constant term.
func TestPolyFitResidualOrthogonality(t *testing.T) {
	r := NewRand(71)
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = r.Float64()*10 - 5
		ys[i] = 3*xs[i]*xs[i] - 2*xs[i] + 1 + r.NormFloat64()
	}
	fit, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	var resSum float64
	for i := range xs {
		resSum += ys[i] - fit.Eval(xs[i])
	}
	if math.Abs(resSum/float64(len(xs))) > 1e-6 {
		t.Fatalf("mean residual %v not ~0", resSum/float64(len(xs)))
	}
}

// TestPercentileBetweenBounds: any percentile lies within [min, max] and
// percentiles are monotone in p.
func TestPercentileBetweenBounds(t *testing.T) {
	f := func(seed uint32) bool {
		r := NewRand(uint64(seed))
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		lo, hi := MinMax(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < lo-1e-12 || v > hi+1e-12 || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearFitMatchesPolyFitDegree1: two independent least-squares paths
// must agree.
func TestLinearFitMatchesPolyFitDegree1(t *testing.T) {
	r := NewRand(73)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = r.Float64() * 100
		ys[i] = 0.7*xs[i] - 3 + r.NormFloat64()
	}
	slope, intercept, _, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := PolyFit(xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coef[1]-slope) > 1e-9 || math.Abs(fit.Coef[0]-intercept) > 1e-9 {
		t.Fatalf("LinearFit (%v,%v) != PolyFit (%v,%v)",
			slope, intercept, fit.Coef[1], fit.Coef[0])
	}
}

// TestHistogramConservation: every added sample lands in exactly one
// bucket (or an overflow counter).
func TestHistogramConservation(t *testing.T) {
	f := func(seed uint32) bool {
		r := NewRand(uint64(seed))
		h := NewHistogram(-5, 5, 7)
		n := 500
		for i := 0; i < n; i++ {
			h.Add(r.NormFloat64() * 3)
		}
		return h.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSummaryAgainstSort: Summarize's median agrees with direct sorting.
func TestSummaryAgainstSort(t *testing.T) {
	r := NewRand(79)
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = r.Float64()
	}
	s := Summarize(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if s.Median != sorted[50] {
		t.Fatalf("median %v != sorted middle %v", s.Median, sorted[50])
	}
	if s.Min != sorted[0] || s.Max != sorted[100] {
		t.Fatal("min/max wrong")
	}
}
