package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique
// solution (e.g. fewer distinct x values than coefficients).
var ErrSingular = errors.New("mathx: singular system in least-squares fit")

// Poly is a polynomial with coefficients in ascending-power order:
// Coef[0] + Coef[1]*x + Coef[2]*x^2 + ...
type Poly struct {
	Coef []float64
}

// Eval returns the polynomial evaluated at x (Horner's rule).
func (p Poly) Eval(x float64) float64 {
	var y float64
	for i := len(p.Coef) - 1; i >= 0; i-- {
		y = y*x + p.Coef[i]
	}
	return y
}

// Degree returns the nominal degree (len(Coef)-1); -1 for an empty Poly.
func (p Poly) Degree() int { return len(p.Coef) - 1 }

// String renders the polynomial as a human-readable expression.
func (p Poly) String() string {
	if len(p.Coef) == 0 {
		return "0"
	}
	s := ""
	for i, c := range p.Coef {
		if i == 0 {
			s = fmt.Sprintf("%.6g", c)
			continue
		}
		s += fmt.Sprintf(" %+.6g*x^%d", c, i)
	}
	return s
}

// PolyFit fits a polynomial of the given degree to the points (x[i], y[i])
// by ordinary least squares, solving the normal equations with partially
// pivoted Gaussian elimination. x and y must be the same length and must
// contain at least degree+1 points.
//
// Inputs are centred and scaled internally for conditioning; the returned
// coefficients are in the original coordinates.
func PolyFit(x, y []float64, degree int) (Poly, error) {
	if degree < 0 {
		return Poly{}, fmt.Errorf("mathx: negative degree %d", degree)
	}
	if len(x) != len(y) {
		return Poly{}, fmt.Errorf("mathx: len(x)=%d len(y)=%d", len(x), len(y))
	}
	n := degree + 1
	if len(x) < n {
		return Poly{}, fmt.Errorf("mathx: %d points cannot determine degree-%d fit: %w",
			len(x), degree, ErrSingular)
	}

	// Centre/scale x for conditioning: t = (x - mu) / s.
	mu := Mean(x)
	s := StdDev(x)
	if s == 0 || math.IsNaN(s) {
		if degree == 0 {
			return Poly{Coef: []float64{Mean(y)}}, nil
		}
		return Poly{}, ErrSingular
	}

	// Build normal equations A c = b where A[i][j] = sum t^(i+j).
	pow := make([]float64, 2*n-1)
	bvec := make([]float64, n)
	tp := make([]float64, n)
	for k := range x {
		t := (x[k] - mu) / s
		tk := 1.0
		for i := 0; i < 2*n-1; i++ {
			pow[i] += tk
			if i < n {
				tp[i] = tk
			}
			tk *= t
		}
		for i := 0; i < n; i++ {
			bvec[i] += tp[i] * y[k]
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = pow[i+j]
		}
	}
	c, err := SolveLinear(a, bvec)
	if err != nil {
		return Poly{}, err
	}

	// Expand back to original coordinates:
	// p(x) = sum_i c[i] * ((x-mu)/s)^i.
	out := make([]float64, n)
	// term starts as c[i] * binomial expansion of ((x-mu)/s)^i.
	for i := 0; i < n; i++ {
		// ((x-mu)/s)^i = s^-i * sum_j C(i,j) x^j (-mu)^(i-j)
		si := math.Pow(s, float64(-i))
		comb := 1.0 // C(i, j) built iteratively
		for j := 0; j <= i; j++ {
			if j > 0 {
				comb = comb * float64(i-j+1) / float64(j)
			} else {
				comb = 1.0
			}
			out[j] += c[i] * si * comb * math.Pow(-mu, float64(i-j))
		}
	}
	return Poly{Coef: out}, nil
}

// SolveLinear solves the square system a*x = b by Gaussian elimination
// with partial pivoting. a and b are modified in place.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: bad system dimensions")
	}
	for col := 0; col < n; col++ {
		// Pivot selection.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for cc := col; cc < n; cc++ {
				a[r][cc] -= f * a[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for cc := r + 1; cc < n; cc++ {
			sum -= a[r][cc] * x[cc]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// LinearFit fits y = slope*x + intercept by least squares and also
// returns the Pearson correlation coefficient r.
func LinearFit(x, y []float64) (slope, intercept, r float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, 0, fmt.Errorf("mathx: LinearFit needs >=2 paired points, got %d/%d",
			len(x), len(y))
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return 0, 0, 0, ErrSingular
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		// y constant: perfectly predicted by the constant model.
		return slope, intercept, 1, nil
	}
	r = sxy / math.Sqrt(sxx*syy)
	return slope, intercept, r, nil
}
