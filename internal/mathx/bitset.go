package mathx

import "math/bits"

// Bitset is a fixed-capacity set of non-negative integers backed by a
// packed word array. The replay engine's precondition pass uses it to
// deduplicate trace LPNs when the address bound is known up front:
// inserting is one OR, and Visit yields members in ascending order —
// the same order a sort-based dedup produces — without the sort.
type Bitset struct {
	words []uint64
	n     int64
}

// NewBitset returns a set over [0, n).
func NewBitset(n int64) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)>>6), n: n}
}

// Cap returns the exclusive upper bound of the set's universe.
func (b *Bitset) Cap() int64 { return b.n }

// Set inserts i. Out-of-range values panic (callers size the set from a
// validated bound).
func (b *Bitset) Set(i int64) {
	b.words[i>>6] |= 1 << uint(i&63)
}

// SetRange inserts every value in [lo, lo+n), ORing whole words instead
// of looping bit by bit — the shape of a multi-page trace request. Like
// Set, out-of-range values panic; n <= 0 inserts nothing.
func (b *Bitset) SetRange(lo, n int64) {
	if n <= 0 {
		return
	}
	hi := lo + n - 1 // inclusive
	if lo < 0 || hi >= b.n {
		panic("mathx: SetRange outside bitset universe")
	}
	w0, w1 := lo>>6, hi>>6
	first := ^uint64(0) << uint(lo&63)
	last := ^uint64(0) >> uint(63-hi&63)
	if w0 == w1 {
		b.words[w0] |= first & last
		return
	}
	b.words[w0] |= first
	for w := w0 + 1; w < w1; w++ {
		b.words[w] = ^uint64(0)
	}
	b.words[w1] |= last
}

// Has reports membership.
func (b *Bitset) Has(i int64) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of members.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Visit calls fn for every member in ascending order.
func (b *Bitset) Visit(fn func(i int64)) {
	for wi, w := range b.words {
		base := int64(wi) << 6
		for w != 0 {
			t := bits.TrailingZeros64(w)
			fn(base + int64(t))
			w &= w - 1
		}
	}
}

// VisitErr is Visit with early exit: it stops at the first error fn
// returns and propagates it.
func (b *Bitset) VisitErr(fn func(i int64) error) error {
	for wi, w := range b.words {
		base := int64(wi) << 6
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if err := fn(base + int64(t)); err != nil {
				return err
			}
			w &= w - 1
		}
	}
	return nil
}
