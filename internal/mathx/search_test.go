package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

// upperBoundRef is the legacy idiom UpperBound replaces.
func upperBoundRef(a []float64, x float64) int {
	ub := sort.SearchFloat64s(a, x)
	for ub < len(a) && a[ub] <= x {
		ub++
	}
	return ub
}

func TestUpperBoundMatchesReference(t *testing.T) {
	f := func(raw []float64, x float64) bool {
		a := append([]float64(nil), raw...)
		// Drop NaNs from the slice (it must be ascending) but keep
		// duplicates and infinities.
		kept := a[:0]
		for _, v := range a {
			if !math.IsNaN(v) {
				kept = append(kept, v)
			}
		}
		a = kept
		sort.Float64s(a)
		if math.IsNaN(x) {
			// Documented divergence: UpperBound returns 0 for NaN.
			return UpperBound(a, x) == 0
		}
		return UpperBound(a, x) == upperBoundRef(a, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundEdges(t *testing.T) {
	a := []float64{-2, -1, -1, 0, 0, 0, 3, math.Inf(1)}
	cases := []struct {
		x    float64
		want int
	}{
		{math.Inf(-1), 0},
		{-3, 0},
		{-2, 1},
		{-1, 3},
		{-0.5, 3},
		{0, 6},
		{2.9, 6},
		{3, 7},
		{math.Inf(1), 8},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := UpperBound(a, c.x); got != c.want {
			t.Errorf("UpperBound(a, %v) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := UpperBound(nil, 1); got != 0 {
		t.Errorf("UpperBound(nil, 1) = %d, want 0", got)
	}
}
