package mathx

import (
	"math"
	"sort"
	"testing"
)

// nearestRank returns the q-th quantile of sorted xs under the
// nearest-rank definition LogHist.Quantile targets.
func nearestRank(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram's one-bucket-width contract on
// every interesting quantile: at least the exact rank statistic, at most
// one bucket width above it.
func checkQuantiles(t *testing.T, name string, xs []float64) {
	t.Helper()
	var h LogHist
	for _, v := range xs {
		h.Add(v)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	f := h.WidthFactor()
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		exact := nearestRank(sorted, q)
		got := h.Quantile(q)
		if exact <= 0 {
			if got != 0 {
				t.Errorf("%s q=%v: got %v for non-positive rank statistic %v",
					name, q, got, exact)
			}
			continue
		}
		if got < exact || got > exact*f {
			t.Errorf("%s q=%v: got %v outside [%v, %v] (exact %v, factor %v)",
				name, q, got, exact, exact*f, exact, f)
		}
	}
	// The mean is exact (same accumulation order as a plain sum).
	if got, want := h.Mean(), Mean(xs); got != want {
		t.Errorf("%s: mean %v != exact %v", name, got, want)
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: min/max %v/%v want %v/%v",
			name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
	}
	if h.Count() != int64(len(xs)) {
		t.Errorf("%s: count %d, want %d", name, h.Count(), len(xs))
	}
}

func TestLogHistAdversarialDistributions(t *testing.T) {
	r := NewRand(7)
	n := 50000

	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 137.5
	}
	checkQuantiles(t, "constant", constant)

	// Bimodal with a 6-decade gap placed right at the p95 boundary: the
	// quantile must snap to one of the modes, never into the gap.
	bimodal := make([]float64, n)
	for i := range bimodal {
		if i < n*95/100 {
			bimodal[i] = 80 + r.Float64()
		} else {
			bimodal[i] = 8e7 + r.Float64()
		}
	}
	checkQuantiles(t, "bimodal", bimodal)

	heavyTail := make([]float64, n)
	for i := range heavyTail {
		heavyTail[i] = math.Exp(r.NormFloat64()*2 + 5)
	}
	checkQuantiles(t, "lognormal", heavyTail)

	exponential := make([]float64, n)
	for i := range exponential {
		exponential[i] = -math.Log(1-r.Float64()) * 250
	}
	checkQuantiles(t, "exponential", exponential)

	// Zeros mixed in (unmapped reads can be arbitrarily cheap).
	withZeros := make([]float64, n)
	for i := range withZeros {
		if i%3 == 0 {
			withZeros[i] = 0
		} else {
			withZeros[i] = 5 + r.Float64()*100
		}
	}
	checkQuantiles(t, "with-zeros", withZeros)

	// Discrete latency ladder (retry multiples of a base cost), the shape
	// real replay latencies take.
	ladder := make([]float64, n)
	for i := range ladder {
		ladder[i] = 65 * float64(1+r.Intn(16))
	}
	checkQuantiles(t, "ladder", ladder)

	checkQuantiles(t, "single", []float64{42})
	checkQuantiles(t, "two", []float64{1e-6, 1e6})
}

// TestLogHistVsPercentile ties the histogram to the repo's exact-sort
// percentile path on a smooth distribution: with dense samples the
// interpolated percentile sits between adjacent order statistics, so the
// histogram must land within one bucket width of it.
func TestLogHistVsPercentile(t *testing.T) {
	r := NewRand(3)
	xs := make([]float64, 80000)
	var h LogHist
	for i := range xs {
		xs[i] = math.Exp(r.NormFloat64() + 4)
		h.Add(xs[i])
	}
	f := h.WidthFactor()
	for _, p := range []float64{50, 95, 99} {
		exact := Percentile(xs, p)
		got := h.Percentile(p)
		if got < exact/f || got > exact*f*f {
			t.Errorf("p%v: hist %v vs exact %v outside one-bucket tolerance", p, got, exact)
		}
	}
}

func TestLogHistMerge(t *testing.T) {
	r := NewRand(11)
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = math.Exp(r.NormFloat64() * 3)
	}
	var whole LogHist
	parts := make([]LogHist, 4)
	for i, v := range xs {
		whole.Add(v)
		parts[i%4].Add(v)
	}
	var merged LogHist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %v != whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*math.Abs(whole.Sum()) {
		t.Fatalf("sum %v != %v", merged.Sum(), whole.Sum())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("min/max not preserved by merge")
	}
	// Merging the same parts in the same order twice is bit-identical
	// (the engine's determinism across worker counts relies on this).
	var again LogHist
	for i := range parts {
		again.Merge(&parts[i])
	}
	if again.Sum() != merged.Sum() || again.Mean() != merged.Mean() {
		t.Fatal("shard-order merge not deterministic")
	}
	// Merging into an occupied histogram from an empty one is a no-op.
	before := merged.Quantile(0.5)
	merged.Merge(&LogHist{})
	if merged.Quantile(0.5) != before {
		t.Fatal("empty merge changed state")
	}
}

// TestLogHistPartsRoundTrip: accumulating samples through the exported
// bucket layout (LogHistBucketOf + ZeroCount semantics) and rebuilding
// with LogHistFromParts must reproduce Add-built state exactly — the
// obs layer's atomic histograms depend on this round trip.
func TestLogHistPartsRoundTrip(t *testing.T) {
	r := NewRand(23)
	var want LogHist
	counts := make([]int64, LogHistBuckets())
	var zero int64
	var sum float64
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 30000; i++ {
		v := math.Exp(r.NormFloat64()*2 + 3)
		if i%17 == 0 {
			v = 0
		}
		want.Add(v)
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		if v <= 0 {
			zero++
		} else {
			counts[LogHistBucketOf(v)]++
		}
	}
	got, err := LogHistFromParts(counts, zero, sum, min, max)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != want.Count() || got.ZeroCount() != want.ZeroCount() ||
		got.Sum() != want.Sum() || got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("round trip diverged: got count=%d zero=%d sum=%v min=%v max=%v",
			got.Count(), got.ZeroCount(), got.Sum(), got.Min(), got.Max())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q=%v: %v != %v", q, got.Quantile(q), want.Quantile(q))
		}
	}
	if _, err := LogHistFromParts(make([]int64, 3), 0, 0, 0, 0); err == nil {
		t.Fatal("accepted wrong bucket count")
	}
	// Bucket bounds are consistent with the internal index mapping.
	for _, v := range []float64{1e-6, 0.5, 1, 137.5, 8e7} {
		i := LogHistBucketOf(v)
		if up := LogHistBucketUpper(i); v >= up {
			t.Fatalf("v=%v lands in bucket %d with upper bound %v", v, i, up)
		}
	}
}

// TestLogHistDiffVisit: the visit must surface exactly the buckets that
// changed between two snapshots, with the right deltas; a nil prev means
// "diff against empty".
func TestLogHistDiffVisit(t *testing.T) {
	var prev, cur LogHist
	for _, v := range []float64{10, 10, 500} {
		prev.Add(v)
		cur.Add(v)
	}
	cur.Add(10)
	cur.Add(7e4)

	deltas := map[int]int64{}
	cur.DiffVisit(&prev, func(b int, d int64) { deltas[b] = d })
	want := map[int]int64{LogHistBucketOf(10): 1, LogHistBucketOf(7e4): 1}
	if len(deltas) != len(want) {
		t.Fatalf("visited %v, want %v", deltas, want)
	}
	for b, d := range want {
		if deltas[b] != d {
			t.Fatalf("bucket %d delta %d, want %d", b, deltas[b], d)
		}
	}

	full := map[int]int64{}
	cur.DiffVisit(nil, func(b int, d int64) { full[b] = d })
	if full[LogHistBucketOf(10)] != 3 || full[LogHistBucketOf(500)] != 1 || full[LogHistBucketOf(7e4)] != 1 {
		t.Fatalf("nil-prev visit %v", full)
	}
}

// TestLogHistQuantileArgumentGuard: q outside [0, 1] — including NaN
// and the infinities — must resolve to the min/max paths instead of
// feeding an out-of-range product into the int64 conversion (whose
// result the Go spec leaves implementation-defined). On the pre-guard
// code NaN*count converts to an arbitrary rank, so the NaN cases fail.
func TestLogHistQuantileArgumentGuard(t *testing.T) {
	var h LogHist
	for _, v := range []float64{10, 20, 30, 40, 50} {
		h.Add(v)
	}
	cases := []struct {
		name string
		q    float64
		want float64
	}{
		{"nan", math.NaN(), 10},
		{"neg", -1, 10},
		{"neg-inf", math.Inf(-1), 10},
		{"zero", 0, 10},
		{"one", 1, 50},
		{"above-one", 2, 50},
		{"pos-inf", math.Inf(1), 50},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		// The min path returns the rank-1 bucket's upper bound, so allow
		// one bucket width above the exact statistic (min), and demand
		// exactness on the max path (clamped to the observed max).
		lo, hi := c.want, c.want*h.WidthFactor()
		if got < lo || got > hi {
			t.Errorf("Quantile(%s=%v) = %v, want in [%v, %v]", c.name, c.q, got, lo, hi)
		}
		p := h.Percentile(c.q * 100)
		if p < lo || p > hi {
			t.Errorf("Percentile(%s=%v) = %v, want in [%v, %v]", c.name, c.q*100, p, lo, hi)
		}
	}
	// Empty histograms stay zero-valued whatever q is.
	var empty LogHist
	if empty.Quantile(math.NaN()) != 0 || empty.Percentile(math.NaN()) != 0 {
		t.Error("empty histogram returned non-zero for NaN quantile")
	}
}

func TestLogHistEmptyAndEdge(t *testing.T) {
	var h LogHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	// Samples beyond the binned exponent range clamp into edge buckets:
	// quantiles degrade to the observed extremes but never crash.
	h.Add(1e300)
	h.Add(1e-300)
	if got := h.Quantile(1); got != 1e300 {
		t.Fatalf("clamped top quantile %v", got)
	}
	if got := h.Quantile(0.1); got <= 0 || got > 1e300 {
		t.Fatalf("clamped bottom quantile %v", got)
	}
}

// TestLogHistIndexMatchesFrexp pins the bit-twiddled logHistIndex to
// the arithmetic Frexp formulation it replaced, across the bucketed
// exponent range, the clamped ranges beyond it, and denormals.
func TestLogHistIndexMatchesFrexp(t *testing.T) {
	ref := func(v float64) int {
		m, e := math.Frexp(v)
		if e < logHistExpLo {
			return 0
		}
		if e > logHistExpHi {
			return len(LogHist{}.counts) - 1
		}
		sub := int((m*2 - 1) * logHistSub)
		if sub >= logHistSub {
			sub = logHistSub - 1
		}
		return (e-logHistExpLo)*logHistSub + sub
	}
	rng := NewRand(99)
	for e := -1080; e <= 1024; e++ { // full double range incl. denormals
		for i := 0; i < 8; i++ {
			v := math.Ldexp(0.5+0.5*rng.Float64(), e)
			if v == 0 { // Ldexp underflowed to zero: Add routes it to zero
				continue
			}
			if got, want := logHistIndex(v), ref(v); got != want {
				t.Fatalf("logHistIndex(%g) = %d, want %d", v, got, want)
			}
		}
	}
	for _, v := range []float64{
		math.SmallestNonzeroFloat64, math.MaxFloat64, 1, 1.5,
		math.Nextafter(1, 0), math.Nextafter(1, 2), 0.1, 3.14159e-30, 2.5e30,
	} {
		if got, want := logHistIndex(v), ref(v); got != want {
			t.Fatalf("logHistIndex(%g) = %d, want %d", v, got, want)
		}
	}
	// +Inf and NaN clamp to the top bucket (the old formulation's float
	// arithmetic had no defined answer for them).
	top := len(LogHist{}.counts) - 1
	if logHistIndex(math.Inf(1)) != top || logHistIndex(math.NaN()) != top {
		t.Fatal("Inf/NaN did not clamp to the top bucket")
	}
}

// BenchmarkLogHistAdd tracks the per-sample cost of the replay-path
// histogram accounting (two Adds per serviced read).
func BenchmarkLogHistAdd(b *testing.B) {
	var h LogHist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i%4096) + 0.5)
	}
	if h.Count() == 0 {
		b.Fatal("no samples")
	}
}
