package mathx

import (
	"math"
	"sort"
	"testing"
)

// nearestRank returns the q-th quantile of sorted xs under the
// nearest-rank definition LogHist.Quantile targets.
func nearestRank(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// checkQuantiles asserts the histogram's one-bucket-width contract on
// every interesting quantile: at least the exact rank statistic, at most
// one bucket width above it.
func checkQuantiles(t *testing.T, name string, xs []float64) {
	t.Helper()
	var h LogHist
	for _, v := range xs {
		h.Add(v)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	f := h.WidthFactor()
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		exact := nearestRank(sorted, q)
		got := h.Quantile(q)
		if exact <= 0 {
			if got != 0 {
				t.Errorf("%s q=%v: got %v for non-positive rank statistic %v",
					name, q, got, exact)
			}
			continue
		}
		if got < exact || got > exact*f {
			t.Errorf("%s q=%v: got %v outside [%v, %v] (exact %v, factor %v)",
				name, q, got, exact, exact*f, exact, f)
		}
	}
	// The mean is exact (same accumulation order as a plain sum).
	if got, want := h.Mean(), Mean(xs); got != want {
		t.Errorf("%s: mean %v != exact %v", name, got, want)
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: min/max %v/%v want %v/%v",
			name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
	}
	if h.Count() != int64(len(xs)) {
		t.Errorf("%s: count %d, want %d", name, h.Count(), len(xs))
	}
}

func TestLogHistAdversarialDistributions(t *testing.T) {
	r := NewRand(7)
	n := 50000

	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 137.5
	}
	checkQuantiles(t, "constant", constant)

	// Bimodal with a 6-decade gap placed right at the p95 boundary: the
	// quantile must snap to one of the modes, never into the gap.
	bimodal := make([]float64, n)
	for i := range bimodal {
		if i < n*95/100 {
			bimodal[i] = 80 + r.Float64()
		} else {
			bimodal[i] = 8e7 + r.Float64()
		}
	}
	checkQuantiles(t, "bimodal", bimodal)

	heavyTail := make([]float64, n)
	for i := range heavyTail {
		heavyTail[i] = math.Exp(r.NormFloat64()*2 + 5)
	}
	checkQuantiles(t, "lognormal", heavyTail)

	exponential := make([]float64, n)
	for i := range exponential {
		exponential[i] = -math.Log(1-r.Float64()) * 250
	}
	checkQuantiles(t, "exponential", exponential)

	// Zeros mixed in (unmapped reads can be arbitrarily cheap).
	withZeros := make([]float64, n)
	for i := range withZeros {
		if i%3 == 0 {
			withZeros[i] = 0
		} else {
			withZeros[i] = 5 + r.Float64()*100
		}
	}
	checkQuantiles(t, "with-zeros", withZeros)

	// Discrete latency ladder (retry multiples of a base cost), the shape
	// real replay latencies take.
	ladder := make([]float64, n)
	for i := range ladder {
		ladder[i] = 65 * float64(1+r.Intn(16))
	}
	checkQuantiles(t, "ladder", ladder)

	checkQuantiles(t, "single", []float64{42})
	checkQuantiles(t, "two", []float64{1e-6, 1e6})
}

// TestLogHistVsPercentile ties the histogram to the repo's exact-sort
// percentile path on a smooth distribution: with dense samples the
// interpolated percentile sits between adjacent order statistics, so the
// histogram must land within one bucket width of it.
func TestLogHistVsPercentile(t *testing.T) {
	r := NewRand(3)
	xs := make([]float64, 80000)
	var h LogHist
	for i := range xs {
		xs[i] = math.Exp(r.NormFloat64() + 4)
		h.Add(xs[i])
	}
	f := h.WidthFactor()
	for _, p := range []float64{50, 95, 99} {
		exact := Percentile(xs, p)
		got := h.Percentile(p)
		if got < exact/f || got > exact*f*f {
			t.Errorf("p%v: hist %v vs exact %v outside one-bucket tolerance", p, got, exact)
		}
	}
}

func TestLogHistMerge(t *testing.T) {
	r := NewRand(11)
	xs := make([]float64, 40000)
	for i := range xs {
		xs[i] = math.Exp(r.NormFloat64() * 3)
	}
	var whole LogHist
	parts := make([]LogHist, 4)
	for i, v := range xs {
		whole.Add(v)
		parts[i%4].Add(v)
	}
	var merged LogHist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("count %d != %d", merged.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %v != whole %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	if math.Abs(merged.Sum()-whole.Sum()) > 1e-9*math.Abs(whole.Sum()) {
		t.Fatalf("sum %v != %v", merged.Sum(), whole.Sum())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("min/max not preserved by merge")
	}
	// Merging the same parts in the same order twice is bit-identical
	// (the engine's determinism across worker counts relies on this).
	var again LogHist
	for i := range parts {
		again.Merge(&parts[i])
	}
	if again.Sum() != merged.Sum() || again.Mean() != merged.Mean() {
		t.Fatal("shard-order merge not deterministic")
	}
	// Merging into an occupied histogram from an empty one is a no-op.
	before := merged.Quantile(0.5)
	merged.Merge(&LogHist{})
	if merged.Quantile(0.5) != before {
		t.Fatal("empty merge changed state")
	}
}

func TestLogHistEmptyAndEdge(t *testing.T) {
	var h LogHist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	// Samples beyond the binned exponent range clamp into edge buckets:
	// quantiles degrade to the observed extremes but never crash.
	h.Add(1e300)
	h.Add(1e-300)
	if got := h.Quantile(1); got != 1e300 {
		t.Fatalf("clamped top quantile %v", got)
	}
	if got := h.Quantile(0.1); got <= 0 || got > 1e300 {
		t.Fatalf("clamped bottom quantile %v", got)
	}
}
