package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the SplitMix64 reference
	// implementation.
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4,
		0x06c45d188009454f, 0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if g := sm.Next(); g != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, g, w)
		}
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(42) != Hash64(42) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(42) == Hash64(43) {
		t.Fatal("Hash64(42) == Hash64(43): suspicious collision")
	}
}

func TestMixOrderMatters(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix should not be commutative")
	}
	if Mix3(1, 2, 3) == Mix3(3, 2, 1) {
		t.Fatal("Mix3 should not be symmetric")
	}
	if Mix4(1, 2, 3, 4) == Mix4(4, 3, 2, 1) {
		t.Fatal("Mix4 should not be symmetric")
	}
}

func TestRandReproducible(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
	c := NewRand(124)
	same := 0
	a = NewRand(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRand(99)
	const n = 200000
	var mean float64
	bins := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		mean += v
		bins[int(v*10)]++
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
	for i, c := range bins {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("bin %d fraction %v, want ~0.1", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(2024)
	const n = 400000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d of 7 values in 10k draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := NewRand(13)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}
