package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values in xs. It panics on an
// empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	lo, hi = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice. p is validated like LogHist.Quantile's q: NaN and negative p
// take the minimum, p above 100 the maximum, so the rank-to-int
// conversion below never sees a value whose conversion the Go spec
// leaves undefined.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if math.IsNaN(p) || p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either input is constant or the lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	_, _, r, err := LinearFit(x, y)
	if err != nil {
		return 0
	}
	return r
}

// AbsMean returns the mean of |xs[i]|.
func AbsMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += math.Abs(v)
	}
	return s / float64(len(xs))
}

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	lo, hi := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    lo,
		Max:    hi,
		Median: Median(xs),
	}
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int // samples below Lo
	Over    int // samples at or above Hi
	binSize float64
}

// NewHistogram creates a histogram with bins buckets spanning [lo, hi).
// It panics if bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("mathx: invalid histogram parameters")
	}
	return &Histogram{
		Lo: lo, Hi: hi,
		Counts:  make([]int, bins),
		binSize: (hi - lo) / float64(bins),
	}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / h.binSize)
		if i >= len(h.Counts) { // guard FP edge at Hi
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range
// ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bucket i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binSize
}
