// Package mathx provides the deterministic numeric substrate used by the
// rest of the repository: seeded random number generation, Gaussian
// sampling, least-squares fitting, and summary statistics.
//
// Everything in this package is deterministic given its seed so that chip
// simulations, trainer fits and experiments are exactly reproducible.
package mathx

import "math"

// SplitMix64 is a tiny, fast, well-distributed 64-bit PRNG used both as a
// stream generator and as a stateless hash (see Hash64). It is the
// recommended seeder for xoshiro-family generators.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 applies the SplitMix64 finalizer to x, producing a stateless,
// avalanche-quality 64-bit hash. It is the building block for the
// deterministic per-cell noise fields in the chip simulator.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix combines two 64-bit values into one hash. It is not commutative, so
// Mix(a,b) and Mix(b,a) give independent streams.
func Mix(a, b uint64) uint64 {
	return Hash64(a ^ (b*0x9e3779b97f4a7c15 + 0x165667b19e3779f9))
}

// Mix3 combines three 64-bit values into one hash.
func Mix3(a, b, c uint64) uint64 {
	return Mix(Mix(a, b), c)
}

// Mix4 combines four 64-bit values into one hash.
func Mix4(a, b, c, d uint64) uint64 {
	return Mix(Mix3(a, b, c), d)
}

// Rand is a xoshiro256** PRNG: fast, high quality, 256-bit state.
// The zero value is not usable; construct with NewRand.
type Rand struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// NewRand returns a generator whose state is expanded from seed with
// SplitMix64, as recommended by the xoshiro authors.
func NewRand(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	r := &Rand{}
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// Guard against the (astronomically unlikely) all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform. Two uniforms are consumed per pair of normals; the spare is
// cached.
func (r *Rand) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v float64
	for {
		u = r.Float64()
		if u > 0 {
			break
		}
	}
	v = r.Float64()
	mag := math.Sqrt(-2 * math.Log(u))
	r.spare = mag * math.Sin(2*math.Pi*v)
	r.haveSpare = true
	return mag * math.Cos(2*math.Pi*v)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements addressed by swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
