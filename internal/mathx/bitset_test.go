package mathx

import "testing"

// TestBitsetSetRange: the word-wise range fill must equal bit-by-bit
// Set across every alignment of the range endpoints — same-word spans,
// word-boundary-straddling spans, and full-word interiors.
func TestBitsetSetRange(t *testing.T) {
	const n = 400
	cases := []struct{ lo, count int64 }{
		{0, 1}, {0, 64}, {0, 65}, {63, 1}, {63, 2}, {5, 40},
		{60, 10}, {64, 64}, {1, 200}, {100, 0}, {100, -3}, {399, 1},
		{320, 80}, {0, 400},
	}
	for _, c := range cases {
		a, b := NewBitset(n), NewBitset(n)
		a.SetRange(c.lo, c.count)
		for i := int64(0); i < c.count; i++ {
			b.Set(c.lo + i)
		}
		if a.Count() != b.Count() {
			t.Fatalf("SetRange(%d,%d): %d bits set, want %d", c.lo, c.count, a.Count(), b.Count())
		}
		for i := int64(0); i < n; i++ {
			if a.Has(i) != b.Has(i) {
				t.Fatalf("SetRange(%d,%d): bit %d = %v, want %v", c.lo, c.count, i, a.Has(i), b.Has(i))
			}
		}
	}

	// Overlapping ranges accumulate like repeated Sets.
	b := NewBitset(n)
	b.SetRange(10, 50)
	b.SetRange(40, 100)
	if b.Count() != 130 {
		t.Fatalf("overlapping ranges: %d bits, want 130", b.Count())
	}

	// Out-of-universe ranges panic, as Set does.
	for _, c := range []struct{ lo, count int64 }{{-1, 5}, {398, 3}, {400, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetRange(%d,%d) did not panic", c.lo, c.count)
				}
			}()
			NewBitset(n).SetRange(c.lo, c.count)
		}()
	}
}
