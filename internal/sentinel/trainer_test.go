package sentinel

import (
	"math"
	"testing"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

// quickTrainConfig is a reduced grid that keeps unit tests fast.
// testLayout keeps the paper's sentinel *count* (~300, as on a 147k-cell
// physical wordline at 0.2%) on the small 16k-cell test wordlines.
func testLayout() Layout {
	return Layout{Ratio: 0.02, Placement: TailOOB}
}

func quickTrainConfig() TrainConfig {
	tc := DefaultTrainConfig()
	tc.Layout = testLayout()
	tc.Points = []StressPoint{
		{0, 24, physics.RoomTempC},
		{1000, 720, physics.RoomTempC},
		{1000, 4380, physics.RoomTempC},
		{3000, 2000, physics.RoomTempC},
		{1000, physics.YearHours, physics.RoomTempC},
		{3000, physics.YearHours, physics.RoomTempC},
	}
	tc.WordlinesPerPoint = 16
	return tc
}

func trainChip(t testing.TB) (*flash.Chip, *Model) {
	t.Helper()
	chip := flash.MustNew(cfg16k())
	m, err := Train(chip, quickTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return chip, m
}

func TestTrainProducesValidModel(t *testing.T) {
	_, m := trainChip(t)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Kind != flash.QLC || m.SentinelVoltage != 8 {
		t.Fatalf("model identity wrong: %v V%d", m.Kind, m.SentinelVoltage)
	}
	if m.F.Degree() != 5 {
		t.Fatalf("f degree = %d, want 5", m.F.Degree())
	}
	if len(m.Corr) != 15 {
		t.Fatalf("got %d correlations", len(m.Corr))
	}
	// d range must include negative values (retention-dominated).
	if m.DLo >= 0 {
		t.Fatalf("training d range [%v, %v] has no negative side", m.DLo, m.DHi)
	}
}

func TestTrainedFIsMonotoneDecreasingInD(t *testing.T) {
	// More down errors (more negative d) means a larger left shift and a
	// more negative optimum, so f should decrease as d increases... no:
	// d = up - down; retention makes d negative and the optimum negative,
	// so f must *increase* with d (less negative d -> less negative
	// optimum). Verify over the trained domain.
	_, m := trainChip(t)
	prev := math.Inf(-1)
	// Scan the interior of the fitted domain; degree-5 fits wiggle at the
	// sparse edges.
	lo := m.DLo + 0.08*(m.DHi-m.DLo)
	hi := m.DHi - 0.05*(m.DHi-m.DLo)
	for i := 0; i <= 20; i++ {
		d := lo + (hi-lo)*float64(i)/20
		v := m.F.Eval(d)
		if v < prev-4 { // allow small fit wiggles
			t.Fatalf("f not increasing at d=%v: %v after %v", d, v, prev)
		}
		if v > prev {
			prev = v
		}
	}
	// And f of a strongly negative d is a strongly negative offset.
	if m.F.Eval(m.DLo) > -5 {
		t.Fatalf("f(dLo) = %v, want clearly negative", m.F.Eval(m.DLo))
	}
}

func TestTrainCorrelationsMostlyStrong(t *testing.T) {
	_, m := trainChip(t)
	strong := 0
	for _, rel := range m.Corr {
		if rel.Voltage == 1 {
			continue // excluded in the paper: erase-state variation
		}
		if rel.R > 0.8 {
			strong++
		}
	}
	if strong < 10 {
		t.Fatalf("only %d/14 correlations strong", strong)
	}
}

func TestTrainSamplesMatchFitDomain(t *testing.T) {
	chip := flash.MustNew(cfg16k())
	tc := quickTrainConfig()
	ds, opts, err := TrainSamples(chip, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != len(opts) || len(ds) != len(tc.Points)*tc.WordlinesPerPoint {
		t.Fatalf("got %d/%d samples", len(ds), len(opts))
	}
	// The samples must show the Fig. 10 relation: d and optimum
	// positively correlated.
	if r := mathx.Pearson(ds, opts); r < 0.7 {
		t.Fatalf("d vs optimum correlation %v too weak", r)
	}
}

func TestTrainConfigValidation(t *testing.T) {
	chip := flash.MustNew(cfg16k())
	tc := quickTrainConfig()
	tc.Points = nil
	if _, err := Train(chip, tc); err == nil {
		t.Fatal("accepted empty stress grid")
	}
	tc = quickTrainConfig()
	tc.PolyDegree = 0
	if _, err := Train(chip, tc); err == nil {
		t.Fatal("accepted degree 0")
	}
	tc = quickTrainConfig()
	tc.WordlinesPerPoint = 0
	if _, err := Train(chip, tc); err == nil {
		t.Fatal("accepted zero wordlines")
	}
	tc = quickTrainConfig()
	tc.Layout.Ratio = 0
	if _, err := Train(chip, tc); err == nil {
		t.Fatal("accepted bad layout")
	}
}

// TestInferenceAccuracyOnFreshChip is the core end-to-end property: a
// model trained on one chip infers near-optimal sentinel offsets on a
// *different* chip of the same batch (different seed), under a stress the
// trainer never saw exactly.
func TestInferenceAccuracyEndToEnd(t *testing.T) {
	_, m := trainChip(t)
	engineCfg := cfg16k()
	engineCfg.Seed = 999 // a different chip of the same batch
	chip := flash.MustNew(engineCfg)
	eng, err := NewEngine(m, testLayout(), DefaultCalibrator(), engineCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(5)
	coding := chip.Coding()
	states := make([]uint8, engineCfg.CellsPerWordline)
	nWL := engineCfg.WordlinesPerBlock()
	for wl := 0; wl < nWL; wl++ {
		for i := range states {
			states[i] = uint8(rng.Intn(coding.States()))
		}
		eng.Prepare(states)
		if err := chip.ProgramStates(0, wl, states); err != nil {
			t.Fatal(err)
		}
	}
	chip.Cycle(0, 2000)
	chip.Age(0, 6000, physics.RoomTempC)

	lab := charlab.New(chip)
	var absErr []float64
	for wl := 0; wl < nWL; wl++ {
		sense := chip.Sense(0, wl, m.SentinelVoltage, 0, mathx.Mix(42, uint64(wl)))
		_, inferred := eng.Infer(sense)
		truth := lab.OptimalOffset(0, wl, m.SentinelVoltage)
		absErr = append(absErr, math.Abs(inferred.Get(m.SentinelVoltage)-truth))
	}
	mean := mathx.Mean(absErr)
	// Paper Table I reports mean |predicted - real| = 1.79 at 0.2% on QLC
	// with 147k-cell wordlines; these 16k-cell test wordlines add sweep
	// and sampling noise, so the unit test only guards against gross
	// breakage. The full-size bench (Table I experiment) checks the
	// paper-scale number.
	if mean > 7 {
		t.Fatalf("mean inference error %v too large", mean)
	}
	if mathx.Median(absErr) > 6 {
		t.Fatalf("median inference error %v too large", mathx.Median(absErr))
	}
}

func TestEngineValidation(t *testing.T) {
	_, m := trainChip(t)
	cfg := cfg16k()
	if _, err := NewEngine(nil, DefaultLayout(), DefaultCalibrator(), cfg); err == nil {
		t.Fatal("accepted nil model")
	}
	if _, err := NewEngine(m, Layout{Ratio: 0}, DefaultCalibrator(), cfg); err == nil {
		t.Fatal("accepted bad layout")
	}
	if _, err := NewEngine(m, DefaultLayout(), Calibrator{}, cfg); err == nil {
		t.Fatal("accepted bad calibrator")
	}
	tlcCfg := cfg
	tlcCfg.Kind = flash.TLC
	if _, err := NewEngine(m, DefaultLayout(), DefaultCalibrator(), tlcCfg); err == nil {
		t.Fatal("accepted QLC model on TLC chip")
	}
}

func TestEnginePrepareAndInferRoundTrip(t *testing.T) {
	_, m := trainChip(t)
	cfg := cfg16k()
	cfg.Seed = 321
	chip := flash.MustNew(cfg)
	eng, err := NewEngine(m, testLayout(), DefaultCalibrator(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]uint8, cfg.CellsPerWordline)
	eng.Prepare(states)
	if err := chip.ProgramStates(0, 0, states); err != nil {
		t.Fatal(err)
	}
	// Fresh chip: d should be ~0 and the inferred offsets modest.
	sense := chip.Sense(0, 0, m.SentinelVoltage, 0, 7)
	d, ofs := eng.Infer(sense)
	if math.Abs(d) > 0.05 {
		t.Fatalf("fresh d = %v, want ~0", d)
	}
	// Fresh inferred offsets stay moderate. (They need not be ~0: the
	// trainer's grid is retention-dominated, so f(0) sits a few units
	// negative — harmless, because fresh default reads succeed and
	// inference never runs.)
	for v := 2; v <= 15; v++ {
		if math.Abs(ofs.Get(v)) > 25 {
			t.Fatalf("fresh inferred offset V%d = %v implausibly large",
				v, ofs.Get(v))
		}
	}
}

func TestCalibrationStepUsesStateChanges(t *testing.T) {
	_, m := trainChip(t)
	cfg := cfg16k()
	eng, err := NewEngine(m, testLayout(), DefaultCalibrator(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := cfg.CellsPerWordline
	defSense := flash.NewBitmap(n)
	curSense := flash.NewBitmap(n)
	// Flip many data cells but no sentinel cells: NCa >> NCs/r is false
	// here... NCs = 0 so NCs/r = 0 and NCa > 0: Case 1.
	for i := 0; i < 1000; i++ {
		curSense.Set(i, true)
	}
	newOfs, vec := eng.CalibrationStep(-10, defSense, curSense)
	if newOfs != -10-eng.Cal.Delta {
		t.Fatalf("Case 1 calibration moved to %v", newOfs)
	}
	if vec.Get(m.SentinelVoltage) != newOfs {
		t.Fatal("expanded vector does not carry the new sentinel offset")
	}
	// Flip every sentinel but few data cells: NCs/r large: Case 2.
	defSense2 := flash.NewBitmap(n)
	curSense2 := flash.NewBitmap(n)
	for _, idx := range eng.Indices() {
		curSense2.Set(idx, true)
	}
	newOfs2, _ := eng.CalibrationStep(-10, defSense2, curSense2)
	if newOfs2 != -10+eng.Cal.Delta {
		t.Fatalf("Case 2 calibration moved to %v", newOfs2)
	}
}
