// Package sentinel implements the paper's contribution: sentinel cells and
// a sentinel voltage that let the controller *infer* the optimal read
// voltages of a wordline from the errors observed on a small reserved cell
// set, instead of walking a retry table.
//
// The package provides:
//
//   - Layout: which cells of a wordline are reserved as sentinels
//     (0.2% by default, stored in the spare OOB area);
//   - the programming pattern (sentinels alternate between the two states
//     flanking the sentinel voltage);
//   - error-difference measurement from a readout;
//   - a trained inference model: a degree-5 polynomial f(d) mapping the
//     error-difference rate to the sentinel voltage's optimal offset, and
//     per-voltage linear correlations mapping that offset to every other
//     read voltage (paper Section III-B);
//   - the state-change-count calibration rule for inference failures
//     (paper Section III-C);
//   - the Trainer that builds the model from characterization sweeps, as
//     the paper does once per chip batch at manufacturing time.
package sentinel

import (
	"fmt"

	"sentinel3d/internal/flash"
)

// Placement selects where on the wordline sentinel cells live.
type Placement int

const (
	// TailOOB reserves sentinels at the end of the wordline, inside the
	// spare OOB area — the paper's layout. Sentinel data rides along with
	// every page read at zero extra cost.
	TailOOB Placement = iota
	// Spread distributes sentinels evenly along the wordline. Used as an
	// ablation: it samples spatial gradients better but would not fit the
	// OOB in a real chip.
	Spread
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case TailOOB:
		return "tail-oob"
	case Spread:
		return "spread"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Layout describes the sentinel reservation of a chip.
type Layout struct {
	// Ratio is the fraction of each wordline's cells reserved as
	// sentinels (paper default: 0.002).
	Ratio float64
	// Placement selects the physical arrangement.
	Placement Placement
}

// DefaultLayout returns the paper's 0.2% tail-OOB layout.
func DefaultLayout() Layout {
	return Layout{Ratio: 0.002, Placement: TailOOB}
}

// Validate reports layout errors against a chip configuration.
func (l Layout) Validate(cfg flash.Config) error {
	if l.Ratio <= 0 || l.Ratio > 0.1 {
		return fmt.Errorf("sentinel: ratio %v out of (0, 0.1]", l.Ratio)
	}
	if l.Count(cfg) < 2 {
		return fmt.Errorf("sentinel: ratio %v yields fewer than 2 sentinels", l.Ratio)
	}
	if l.Placement == TailOOB && l.Count(cfg) > cfg.OOBCells() {
		return fmt.Errorf("sentinel: %d sentinels exceed the %d spare OOB cells",
			l.Count(cfg), cfg.OOBCells())
	}
	return nil
}

// Count returns the number of sentinel cells per wordline.
func (l Layout) Count(cfg flash.Config) int {
	n := int(float64(cfg.CellsPerWordline)*l.Ratio + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

// Indices returns the sentinel cell indices for a wordline, ascending.
func (l Layout) Indices(cfg flash.Config) []int {
	n := l.Count(cfg)
	out := make([]int, n)
	switch l.Placement {
	case Spread:
		stride := float64(cfg.CellsPerWordline) / float64(n)
		for i := range out {
			out[i] = int((float64(i) + 0.5) * stride)
		}
	default: // TailOOB
		start := cfg.CellsPerWordline - n
		for i := range out {
			out[i] = start + i
		}
	}
	return out
}

// ApplyPattern overwrites the sentinel cells of a wordline's state slice
// with the paper's pattern: sentinels are programmed evenly to the two
// voltage states flanking the sentinel voltage (S3/S4 for TLC, S7/S8 for
// QLC), alternating so exactly half sit on each side.
func (l Layout) ApplyPattern(states []uint8, indices []int, sentinelVoltage int) {
	lo := uint8(sentinelVoltage - 1)
	hi := uint8(sentinelVoltage)
	for i, idx := range indices {
		if i%2 == 0 {
			states[idx] = lo
		} else {
			states[idx] = hi
		}
	}
}

// PatternAbove reports whether sentinel i (by position in the index list)
// is programmed to the state above the sentinel voltage.
func PatternAbove(i int) bool { return i%2 == 1 }
