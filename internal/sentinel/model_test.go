package sentinel

import (
	"math"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func trainedStub() *Model {
	// f(d) = 500 d (linear for test readability), correlations
	// slope/intercept varying per voltage.
	corr := make([]LinearRel, 15)
	for v := 1; v <= 15; v++ {
		corr[v-1] = LinearRel{Voltage: v, Slope: 0.5 + float64(v)/15, Intercept: -2, R: 0.95}
	}
	return &Model{
		Kind:            flash.QLC,
		SentinelVoltage: 8,
		F:               mathx.Poly{Coef: []float64{0, 500}},
		DLo:             -0.05,
		DHi:             0.08,
		Corr:            corr,
	}
}

func TestModelValidate(t *testing.T) {
	if err := trainedStub().Validate(); err != nil {
		t.Fatal(err)
	}
	var nilModel *Model
	if err := nilModel.Validate(); err == nil {
		t.Fatal("nil model validated")
	}
	m := trainedStub()
	m.F = mathx.Poly{}
	if err := m.Validate(); err == nil {
		t.Fatal("untrained model validated")
	}
	m = trainedStub()
	m.SentinelVoltage = 99
	if err := m.Validate(); err == nil {
		t.Fatal("bad sentinel voltage validated")
	}
	m = trainedStub()
	m.DLo, m.DHi = 1, 0
	if err := m.Validate(); err == nil {
		t.Fatal("empty domain validated")
	}
}

func TestInferSentinelOffsetClampsDomain(t *testing.T) {
	m := trainedStub()
	if got := m.InferSentinelOffset(-0.01); math.Abs(got+5) > 1e-9 {
		t.Fatalf("f(-0.01) = %v, want -5", got)
	}
	// Outside the training domain, inputs are clamped.
	if got := m.InferSentinelOffset(-10); got != m.InferSentinelOffset(m.DLo) {
		t.Fatal("low d not clamped")
	}
	if got := m.InferSentinelOffset(10); got != m.InferSentinelOffset(m.DHi) {
		t.Fatal("high d not clamped")
	}
}

func TestOffsetsFromSentinelUsesCorrelations(t *testing.T) {
	m := trainedStub()
	o := m.OffsetsFromSentinel(-10)
	if o.Get(8) != -10 {
		t.Fatalf("sentinel voltage offset = %v, want exact -10", o.Get(8))
	}
	for v := 1; v <= 15; v++ {
		if v == 8 {
			continue
		}
		want := m.Corr[v-1].Slope*(-10) + m.Corr[v-1].Intercept
		if math.Abs(o.Get(v)-want) > 1e-9 {
			t.Fatalf("V%d offset = %v, want %v", v, o.Get(v), want)
		}
	}
}

func TestCountUpDown(t *testing.T) {
	// 6 sentinels at indices 0..5, alternating below/above.
	idx := []int{0, 1, 2, 3, 4, 5}
	sense := flash.NewBitmap(8)
	// Perfect read: below cells (even) sense below, above cells (odd)
	// sense above.
	for i := range idx {
		sense.Set(i, PatternAbove(i))
	}
	up, down := CountUpDown(sense, idx)
	if up != 0 || down != 0 {
		t.Fatalf("perfect read gave up=%d down=%d", up, down)
	}
	// Cell 0 (below) sensed above: one up error.
	sense.Set(0, true)
	up, down = CountUpDown(sense, idx)
	if up != 1 || down != 0 {
		t.Fatalf("up=%d down=%d, want 1,0", up, down)
	}
	// Cell 1 (above) sensed below: one down error.
	sense.Set(1, false)
	up, down = CountUpDown(sense, idx)
	if up != 1 || down != 1 {
		t.Fatalf("up=%d down=%d, want 1,1", up, down)
	}
	if d := ErrorDiffRate(sense, idx); d != 0 {
		t.Fatalf("d = %v, want 0", d)
	}
	sense.Set(3, false) // second down error
	if d := ErrorDiffRate(sense, idx); math.Abs(d-(-1.0/6)) > 1e-12 {
		t.Fatalf("d = %v, want -1/6", d)
	}
}

func TestCorrForBandSelection(t *testing.T) {
	m := trainedStub()
	// No bands: always the room table.
	if &m.CorrFor(90)[0] != &m.Corr[0] {
		t.Fatal("bandless model should return the room table")
	}
	hotCorr := make([]LinearRel, len(m.Corr))
	copy(hotCorr, m.Corr)
	hotCorr[0].Slope = 99
	m.Bands = []TempBand{
		{MaxTempC: 45, Corr: m.Corr},
		{MaxTempC: 100, Corr: hotCorr},
	}
	if m.CorrFor(25)[0].Slope == 99 {
		t.Fatal("room temperature picked the hot band")
	}
	if m.CorrFor(80)[0].Slope != 99 {
		t.Fatal("80C did not pick the hot band")
	}
	// Above every band: clamp to the last.
	if m.CorrFor(200)[0].Slope != 99 {
		t.Fatal("beyond-range temperature not clamped to last band")
	}
}

func TestOffsetsFromSentinelAtUsesBand(t *testing.T) {
	m := trainedStub()
	hotCorr := make([]LinearRel, len(m.Corr))
	copy(hotCorr, m.Corr)
	for i := range hotCorr {
		hotCorr[i].Intercept = -10
	}
	m.Bands = []TempBand{
		{MaxTempC: 45, Corr: m.Corr},
		{MaxTempC: 100, Corr: hotCorr},
	}
	room := m.OffsetsFromSentinelAt(-5, 25)
	hot := m.OffsetsFromSentinelAt(-5, 85)
	if room.Get(2) == hot.Get(2) {
		t.Fatal("band tables did not change the expansion")
	}
	// The sentinel voltage stays exact in both.
	if room.Get(8) != -5 || hot.Get(8) != -5 {
		t.Fatal("sentinel offset not preserved")
	}
}
