package sentinel

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m := trainedStub()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != m.Kind || got.SentinelVoltage != m.SentinelVoltage {
		t.Fatal("identity fields lost")
	}
	if len(got.Corr) != len(m.Corr) {
		t.Fatal("correlations lost")
	}
	for d := -0.04; d <= 0.07; d += 0.01 {
		if math.Abs(got.InferSentinelOffset(d)-m.InferSentinelOffset(d)) > 1e-12 {
			t.Fatalf("round-tripped f differs at d=%v", d)
		}
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	var m Model
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Fatal("saved an untrained model")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Fatal("loaded garbage")
	}
	if _, err := LoadModel(strings.NewReader(`{"Kind":1}`)); err == nil {
		t.Fatal("loaded untrained model")
	}
}

func TestPersistKeepsTemperatureBands(t *testing.T) {
	m := trainedStub()
	hot := make([]LinearRel, len(m.Corr))
	copy(hot, m.Corr)
	hot[3].Slope = 7.5
	m.Bands = []TempBand{{MaxTempC: 60, Corr: m.Corr}, {MaxTempC: 120, Corr: hot}}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bands) != 2 {
		t.Fatalf("bands lost: %d", len(got.Bands))
	}
	if got.CorrFor(100)[3].Slope != 7.5 {
		t.Fatal("hot band content lost")
	}
}
