package sentinel

import (
	"bytes"
	"math"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

// fuzzEngine builds an engine around a hand-constructed model so the fuzz
// targets do not depend on the expensive characterization/training flow.
// The polynomial and correlation lines are arbitrary but valid; inference
// robustness must not depend on their particular values.
func fuzzEngine(tb testing.TB) (*Engine, flash.Config) {
	cfg := flash.Config{
		Kind:              flash.TLC,
		Blocks:            1,
		Layers:            1,
		WordlinesPerLayer: 1,
		CellsPerWordline:  1024,
		OOBFraction:       0.119,
		Seed:              1,
	}
	corr := make([]LinearRel, 7)
	for v := 1; v <= len(corr); v++ {
		corr[v-1] = LinearRel{
			Voltage:   v,
			Slope:     0.2 + 0.1*float64(v),
			Intercept: float64(v) - 4,
			R:         0.9,
		}
	}
	m := &Model{
		Kind:            flash.TLC,
		SentinelVoltage: 4,
		F:               mathx.Poly{Coef: []float64{-3, -55, 20, 8}},
		DLo:             -0.45,
		DHi:             0.3,
		Corr:            corr,
	}
	eng, err := NewEngine(m, Layout{Ratio: 0.05, Placement: TailOOB},
		DefaultCalibrator(), cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return eng, cfg
}

// fuzzBitmap expands fuzzer bytes into an n-cell sense bitmap (missing
// bytes read as zero, extra bytes are ignored).
func fuzzBitmap(n int, data []byte) flash.Bitmap {
	bm := flash.NewBitmap(n)
	for i := 0; i < n; i++ {
		if i/8 < len(data) && data[i/8]>>(i%8)&1 == 1 {
			bm.Set(i, true)
		}
	}
	return bm
}

// FuzzInfer feeds arbitrary sense bitmaps to the inference path. Whatever
// the (possibly corrupted) sense looks like, the error-difference rate
// must stay in [-1, 1] and every inferred offset must be finite, with the
// sentinel offset inside the model's plausibility bound — the invariants
// the retry fallback guard relies on.
func FuzzInfer(f *testing.F) {
	eng, cfg := fuzzEngine(f)
	n := cfg.CellsPerWordline
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, n/8))
	f.Add(bytes.Repeat([]byte{0xaa}, n/8))
	f.Add([]byte{0x01, 0x80, 0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, ofs := eng.Infer(fuzzBitmap(n, data))
		if math.IsNaN(d) || d < -1 || d > 1 {
			t.Fatalf("error-difference rate %v outside [-1, 1]", d)
		}
		if len(ofs) != len(eng.Model.Corr) {
			t.Fatalf("inferred %d offsets, want %d", len(ofs), len(eng.Model.Corr))
		}
		for v := 1; v <= len(ofs); v++ {
			if o := ofs.Get(v); math.IsNaN(o) || math.IsInf(o, 0) {
				t.Fatalf("offset V%d = %v not finite (d = %v)", v, o, d)
			}
		}
		// The domain clamp caps |F(d)|; allow slack for the sampled bound.
		bound := eng.OffsetBound()
		if s := ofs.Get(eng.Model.SentinelVoltage); math.Abs(s) > bound*1.01+1e-9 {
			t.Fatalf("sentinel offset %v beyond plausibility bound %v (d = %v)",
				s, bound, d)
		}
	})
}

// FuzzCalibrationStep feeds arbitrary default/current sense pairs and
// offsets to the state-change calibration rule. The step must always move
// the sentinel offset by exactly Delta (in one direction or the other) and
// expand to finite offsets.
func FuzzCalibrationStep(f *testing.F) {
	eng, cfg := fuzzEngine(f)
	n := cfg.CellsPerWordline
	f.Add(0.0, []byte{}, bytes.Repeat([]byte{0xff}, n/8))
	f.Add(-12.0, []byte{0xaa, 0xaa}, []byte{0x55, 0x55})
	f.Add(30.5, []byte{1, 2, 3}, []byte{3, 2, 1})
	f.Fuzz(func(t *testing.T, curOfs float64, a, b []byte) {
		if math.IsNaN(curOfs) || math.Abs(curOfs) > 1e6 {
			t.Skip("controller offsets are small and finite")
		}
		newOfs, ofs := eng.CalibrationStep(curOfs, fuzzBitmap(n, a), fuzzBitmap(n, b))
		delta := eng.Cal.Delta
		step := math.Abs(newOfs - curOfs)
		if math.Abs(step-delta) > 1e-9*(1+math.Abs(curOfs)) {
			t.Fatalf("calibration moved by %v, want exactly %v (cur %v -> new %v)",
				step, delta, curOfs, newOfs)
		}
		for v := 1; v <= len(ofs); v++ {
			if o := ofs.Get(v); math.IsNaN(o) || math.IsInf(o, 0) {
				t.Fatalf("offset V%d = %v not finite", v, o)
			}
		}
	})
}
