package sentinel

import (
	"fmt"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
)

// StressPoint is one (P/E, retention) condition visited during training.
type StressPoint struct {
	PECycles int
	Hours    float64
	TempC    float64
}

// TrainConfig controls the manufacturing-time characterization that fits
// the inference model (paper Section III-D: "one or several flash chips
// are randomly selected for evaluation and analysis ... then the
// relationships are programmed into all the chips of the same type").
type TrainConfig struct {
	// Points is the stress grid to visit.
	Points []StressPoint
	// WordlinesPerPoint is how many wordlines are sampled per point.
	WordlinesPerPoint int
	// Layout is the sentinel layout the runtime will use.
	Layout Layout
	// PolyDegree is the degree of f(d); the paper uses 5.
	PolyDegree int
	// MeasureReads is how many reads are averaged per d measurement.
	MeasureReads int
	// Seed drives data patterns and read seeds.
	Seed uint64
	// TempBandsC optionally lists temperature-band upper edges in C
	// (ascending, e.g. {40, 90}). When set, one correlation table is
	// trained per band at the band's midpoint read temperature (paper
	// Section III-D). The error-difference fit f(d) is temperature-
	// independent and trained once.
	TempBandsC []float64
}

// DefaultTrainConfig covers fresh-to-worn and short-to-year-long retention.
func DefaultTrainConfig() TrainConfig {
	pts := make([]StressPoint, 0, 24)
	for _, pe := range []int{0, 1000, 3000, 5000} {
		for _, hours := range []float64{0, 24, 168, 720, 2880, physics.YearHours} {
			pts = append(pts, StressPoint{PECycles: pe, Hours: hours, TempC: physics.RoomTempC})
		}
	}
	return TrainConfig{
		Points:            pts,
		WordlinesPerPoint: 12,
		Layout:            DefaultLayout(),
		PolyDegree:        5,
		MeasureReads:      2,
		Seed:              0x7ea1ed,
	}
}

func (tc TrainConfig) validate(cfg flash.Config) error {
	if err := tc.Layout.Validate(cfg); err != nil {
		return err
	}
	if len(tc.Points) == 0 {
		return fmt.Errorf("sentinel: no stress points")
	}
	if tc.PolyDegree < 1 || tc.PolyDegree > 9 {
		return fmt.Errorf("sentinel: poly degree %d out of [1,9]", tc.PolyDegree)
	}
	if tc.WordlinesPerPoint < 1 {
		return fmt.Errorf("sentinel: WordlinesPerPoint must be positive")
	}
	return nil
}

// Train fits a Model on the given chip. Block 0 is reprogrammed with
// random data plus the sentinel pattern, then driven through the stress
// grid; at each point the error-difference rate of each sampled wordline
// is measured at the default sentinel voltage and paired with the
// ground-truth optimal offset located by sweep. The per-voltage
// correlations are collected from the same sweeps.
//
// The chip's block 0 contents and stress state are clobbered.
func Train(chip *flash.Chip, tc TrainConfig) (*Model, error) {
	cc := charlab.NewCorrelationCollector(chip.Coding())
	ds, opts, err := collect(chip, tc, cc)
	if err != nil {
		return nil, err
	}
	f, err := mathx.PolyFit(ds, opts, tc.PolyDegree)
	if err != nil {
		return nil, fmt.Errorf("sentinel: fitting f(d): %w", err)
	}
	dLo, dHi := mathx.MinMax(ds)
	cors := cc.Fit()
	rels := make([]LinearRel, len(cors))
	for i, vc := range cors {
		rels[i] = LinearRel{
			Voltage: vc.Voltage, Slope: vc.Slope,
			Intercept: vc.Intercept, R: vc.R,
		}
	}
	m := &Model{
		Kind:            chip.Config().Kind,
		SentinelVoltage: chip.Coding().SentinelVoltage(),
		F:               f,
		DLo:             dLo,
		DHi:             dHi,
		Corr:            rels,
	}
	if len(tc.TempBandsC) > 0 {
		bands, err := trainBands(chip, tc)
		if err != nil {
			return nil, err
		}
		m.Bands = bands
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// trainBands fits one correlation table per temperature band by sweeping
// the already-programmed sample wordlines at each band's midpoint read
// temperature, over a thinned stress grid.
func trainBands(chip *flash.Chip, tc TrainConfig) ([]TempBand, error) {
	cfg := chip.Config()
	coding := chip.Coding()
	nwl := cfg.WordlinesPerBlock()
	if tc.WordlinesPerPoint > nwl {
		tc.WordlinesPerPoint = nwl
	}
	wls := make([]int, tc.WordlinesPerPoint)
	for i := range wls {
		wls[i] = i * nwl / tc.WordlinesPerPoint
	}
	lab := charlab.New(chip)
	var bands []TempBand
	lo := physics.RoomTempC - 10
	for bi, hi := range tc.TempBandsC {
		if bi > 0 {
			lo = tc.TempBandsC[bi-1]
		}
		mid := (lo + hi) / 2
		chip.SetReadTemperature(0, mid)
		cc := charlab.NewCorrelationCollector(coding)
		for pi, pt := range tc.Points {
			if pi%2 == 1 {
				continue // thinned grid per band
			}
			st := physics.Stress{PECycles: pt.PECycles}
			st = st.Aged(chip.Model().P, pt.Hours, pt.TempC).AtReadTemp(mid)
			chip.SetStress(0, st)
			lab.Seed = mathx.Mix3(tc.Seed, 0xba2d, uint64(bi*100+pi))
			if err := cc.Add(lab, 0, wls); err != nil {
				return nil, err
			}
		}
		cors := cc.Fit()
		rels := make([]LinearRel, len(cors))
		for i, vc := range cors {
			rels[i] = LinearRel{Voltage: vc.Voltage, Slope: vc.Slope,
				Intercept: vc.Intercept, R: vc.R}
		}
		bands = append(bands, TempBand{MaxTempC: hi, Corr: rels})
	}
	chip.SetReadTemperature(0, physics.RoomTempC)
	return bands, nil
}

// TrainSamples exposes the raw (d, optimal offset) pairs behind Figure
// 10; it runs the same measurement as Train without fitting.
func TrainSamples(chip *flash.Chip, tc TrainConfig) (ds, opts []float64, err error) {
	return collect(chip, tc, nil)
}

// collect programs sample wordlines, walks the stress grid, and gathers
// (d, sentinel optimum) pairs; when cc is non-nil it also accumulates
// full optimal-offset vectors for the correlation fit.
func collect(chip *flash.Chip, tc TrainConfig, cc *charlab.CorrelationCollector) (ds, opts []float64, err error) {
	cfg := chip.Config()
	if err := tc.validate(cfg); err != nil {
		return nil, nil, err
	}
	if tc.MeasureReads < 1 {
		tc.MeasureReads = 1
	}
	coding := chip.Coding()
	sv := coding.SentinelVoltage()
	indices := tc.Layout.Indices(cfg)
	rng := mathx.NewRand(tc.Seed)

	// Sample wordlines spread across the block (and therefore layers).
	nwl := cfg.WordlinesPerBlock()
	if tc.WordlinesPerPoint > nwl {
		tc.WordlinesPerPoint = nwl
	}
	wls := make([]int, tc.WordlinesPerPoint)
	for i := range wls {
		wls[i] = i * nwl / tc.WordlinesPerPoint
	}

	// Program sampled wordlines once: random data + sentinel pattern.
	states := make([]uint8, cfg.CellsPerWordline)
	for _, wl := range wls {
		for i := range states {
			states[i] = uint8(rng.Intn(coding.States()))
		}
		tc.Layout.ApplyPattern(states, indices, sv)
		if err := chip.ProgramStates(0, wl, states); err != nil {
			return nil, nil, err
		}
	}

	lab := charlab.New(chip)
	model := chip.Model()
	for pi, pt := range tc.Points {
		st := physics.Stress{PECycles: pt.PECycles}
		st = st.Aged(model.P, pt.Hours, pt.TempC)
		chip.SetStress(0, st)
		// Vary the lab's read seeds per point so sweeps are independent.
		lab.Seed = mathx.Mix(tc.Seed, uint64(pi))
		if cc != nil {
			if err := cc.Add(lab, 0, wls); err != nil {
				return nil, nil, err
			}
		}
		for wi, wl := range wls {
			var d float64
			for rep := 0; rep < tc.MeasureReads; rep++ {
				seed := mathx.Mix4(tc.Seed, uint64(pi), uint64(wi), uint64(rep))
				sense := chip.Sense(0, wl, sv, 0, seed)
				d += ErrorDiffRate(sense, indices)
				flash.PutBitmap(sense)
			}
			d /= float64(tc.MeasureReads)
			ds = append(ds, d)
			opts = append(opts, lab.OptimalOffset(0, wl, sv))
		}
	}
	return ds, opts, nil
}
