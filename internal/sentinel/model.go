package sentinel

import (
	"errors"
	"fmt"
	"math"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

// LinearRel is the fitted linear relation between one read voltage's
// optimal offset and the sentinel voltage's optimal offset (one line of
// paper Figure 8).
type LinearRel struct {
	Voltage   int
	Slope     float64
	Intercept float64
	R         float64
}

// TempBand is a per-temperature-range correlation table. The paper's
// Section III-D: "we maintain ... multiple tables to store the
// correlations among optimal read voltages, where each table corresponds
// to a temperature range", because the cross-temperature effect reshapes
// the per-voltage optima relative to the sentinel voltage's.
type TempBand struct {
	// MaxTempC is the inclusive upper edge of the band; bands are sorted
	// ascending and the last band covers everything above.
	MaxTempC float64
	// Corr holds the band's per-voltage linear relations.
	Corr []LinearRel
}

// Model is the trained inference model programmed into every chip of a
// batch: the polynomial f mapping error-difference rate to the sentinel
// voltage's optimal offset, plus the per-voltage correlation lines.
type Model struct {
	// Kind records the cell technology the model was trained for.
	Kind flash.Kind
	// SentinelVoltage is the chosen sentinel voltage index (V4 TLC,
	// V8 QLC).
	SentinelVoltage int
	// F maps the error-difference rate d to the sentinel voltage's
	// optimal offset (paper Fig. 10, degree-5 fit). The paper notes (and
	// this model reproduces) that temperature does NOT change this
	// relation — d and the sentinel optimum move together.
	F mathx.Poly
	// DLo and DHi bound the d values seen in training; inputs are clamped
	// into this range before evaluating F (polynomials explode outside
	// their fit domain).
	DLo, DHi float64
	// Corr holds one linear relation per read voltage (the room-
	// temperature table).
	Corr []LinearRel
	// Bands optionally holds additional per-temperature-range tables.
	Bands []TempBand
}

// CorrFor returns the correlation table for the given read temperature:
// the first band whose MaxTempC is at or above tempC, falling back to the
// room-temperature table when no bands are trained.
func (m *Model) CorrFor(tempC float64) []LinearRel {
	for _, b := range m.Bands {
		if tempC <= b.MaxTempC {
			return b.Corr
		}
	}
	if len(m.Bands) > 0 {
		return m.Bands[len(m.Bands)-1].Corr
	}
	return m.Corr
}

// ErrNotTrained is returned when a Model is missing its fitted parts.
var ErrNotTrained = errors.New("sentinel: model not trained")

// Validate reports whether the model is usable.
func (m *Model) Validate() error {
	if m == nil || len(m.F.Coef) == 0 || len(m.Corr) == 0 {
		return ErrNotTrained
	}
	if m.SentinelVoltage < 1 || m.SentinelVoltage > len(m.Corr) {
		return fmt.Errorf("sentinel: sentinel voltage V%d outside the %d fitted voltages",
			m.SentinelVoltage, len(m.Corr))
	}
	if m.DHi <= m.DLo {
		return fmt.Errorf("sentinel: empty training domain [%v, %v]", m.DLo, m.DHi)
	}
	return nil
}

// InferSentinelOffset maps an error-difference rate to the inferred
// optimal offset of the sentinel voltage. Non-finite d (possible only
// with a degenerate zero-sentinel layout) clamps like an out-of-domain
// value so the result is always finite for a trained model.
func (m *Model) InferSentinelOffset(d float64) float64 {
	if math.IsNaN(d) || d < m.DLo {
		d = m.DLo
	}
	if d > m.DHi {
		d = m.DHi
	}
	return m.F.Eval(d)
}

// offsetBound samples F over the training domain and returns the largest
// offset magnitude it can produce; see Engine.OffsetBound.
func (m *Model) offsetBound() float64 {
	const samples = 256
	bound := 0.0
	for i := 0; i <= samples; i++ {
		d := m.DLo + (m.DHi-m.DLo)*float64(i)/samples
		if v := math.Abs(m.F.Eval(d)); v > bound {
			bound = v
		}
	}
	return bound
}

// OffsetsFromSentinel expands a sentinel-voltage offset into a full
// per-voltage offset vector through the room-temperature correlations.
func (m *Model) OffsetsFromSentinel(sentOfs float64) flash.Offsets {
	return m.OffsetsFromSentinelAt(sentOfs, 25)
}

// OffsetsFromSentinelAt expands a sentinel-voltage offset using the
// correlation table of the band covering tempC.
func (m *Model) OffsetsFromSentinelAt(sentOfs, tempC float64) flash.Offsets {
	corr := m.CorrFor(tempC)
	out := flash.ZeroOffsets(len(corr))
	for _, rel := range corr {
		out[rel.Voltage-1] = rel.Slope*sentOfs + rel.Intercept
	}
	// The sentinel voltage itself maps exactly.
	out[m.SentinelVoltage-1] = sentOfs
	return out
}

// Infer runs the full inference: d -> sentinel offset -> all offsets,
// using the room-temperature table.
func (m *Model) Infer(d float64) flash.Offsets {
	return m.OffsetsFromSentinel(m.InferSentinelOffset(d))
}

// InferAt is Infer with the correlation table selected by temperature.
func (m *Model) InferAt(d, tempC float64) flash.Offsets {
	return m.OffsetsFromSentinelAt(m.InferSentinelOffset(d), tempC)
}

// CountUpDown counts up and down errors on sentinel cells from a
// single-voltage sense at the sentinel voltage (bit set = cell sensed
// above the boundary). Up errors are sentinels programmed below the
// boundary but sensed above; down errors the converse.
func CountUpDown(sense flash.Bitmap, indices []int) (up, down int) {
	for i, idx := range indices {
		above := sense.Get(idx)
		if PatternAbove(i) {
			if !above {
				down++
			}
		} else if above {
			up++
		}
	}
	return up, down
}

// ErrorDiffRate returns d = (up - down) / n for a sentinel sense.
func ErrorDiffRate(sense flash.Bitmap, indices []int) float64 {
	up, down := CountUpDown(sense, indices)
	return float64(up-down) / float64(len(indices))
}
