package sentinel

import "testing"

func TestCalibratorValidate(t *testing.T) {
	if err := DefaultCalibrator().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Calibrator{Delta: 0, MaxSteps: 1}).Validate(); err == nil {
		t.Fatal("accepted zero delta")
	}
	if err := (Calibrator{Delta: 1, MaxSteps: -1}).Validate(); err == nil {
		t.Fatal("accepted negative steps")
	}
}

func TestCalibratorCases(t *testing.T) {
	c := Calibrator{Delta: 4, MaxSteps: 3}
	// Moved to -10 with ratio 0.002, NCs = 15 and boundary fraction 1/8:
	// expected = 15/0.002/8 = 937.5.
	// NCa = 500 < 937.5: Case 2 (overshoot) — back off toward 0.
	if got := c.Step(-10, 500, 15, 0.002, 0.125); got != -6 {
		t.Fatalf("Case 2 step = %v, want -6 (backing off)", got)
	}
	// NCa = 1200 > 937.5: Case 1 (undershoot) — tune further down.
	if got := c.Step(-10, 1200, 15, 0.002, 0.125); got != -14 {
		t.Fatalf("Case 1 step = %v, want -14", got)
	}
}

func TestCalibratorPositiveDirection(t *testing.T) {
	c := Calibrator{Delta: 2, MaxSteps: 3}
	// Inferred move was upward (+6).
	if got := c.Step(6, 1200, 15, 0.002, 0.125); got != 8 {
		t.Fatalf("Case 1 upward = %v, want 8", got)
	}
	if got := c.Step(6, 500, 15, 0.002, 0.125); got != 4 {
		t.Fatalf("Case 2 upward = %v, want 4", got)
	}
}

func TestCalibratorZeroOffsetProbesDown(t *testing.T) {
	c := Calibrator{Delta: 3, MaxSteps: 3}
	got := c.Step(0, 1200, 15, 0.002, 0.125)
	if got != -3 {
		t.Fatalf("zero-offset Case 1 = %v, want -3", got)
	}
}

func TestCalibratorBoundaryEquality(t *testing.T) {
	// NCa equal to the expectation exactly: treated as Case 2 per the
	// paper's "otherwise".
	c := Calibrator{Delta: 1, MaxSteps: 1}
	if got := c.Step(-5, 750, 15, 0.002, 0.1); got != -4 {
		t.Fatalf("equality case = %v, want -4", got)
	}
}
