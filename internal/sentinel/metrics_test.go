package sentinel

import (
	"math"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/obs"
)

func findHist(t *testing.T, reg *obs.Registry, name string) *obs.HistSnap {
	t.Helper()
	for _, h := range reg.Snapshot().Hists {
		if h.Name == name {
			return &h
		}
	}
	t.Fatalf("%s not in snapshot", name)
	return nil
}

func TestEngineMetricsHooks(t *testing.T) {
	eng, cfg := fuzzEngine(t)
	reg := obs.NewRegistry(1)
	eng.Obs = NewMetrics(reg.Set(0))

	n := cfg.CellsPerWordline
	sense := flash.NewBitmap(n)
	for i := 0; i < n; i += 3 {
		sense.Set(i, true)
	}
	d, ofs := eng.Infer(sense)
	if got := eng.Obs.Infers.Value(); got != 1 {
		t.Fatalf("infers = %d after one Infer", got)
	}
	if h := findHist(t, reg, "sentinel.error_diff"); h.Hist.Count() != 1 ||
		math.Abs(h.Hist.Sum()-d) > 1e-6 {
		t.Fatalf("error_diff hist count=%d sum=%v, want one sample of %v",
			h.Hist.Count(), h.Hist.Sum(), d)
	}
	wantAbs := math.Abs(ofs.Get(eng.Model.SentinelVoltage))
	if h := findHist(t, reg, "sentinel.inferred_offset_abs"); math.Abs(h.Hist.Sum()-wantAbs) > 1e-5 {
		t.Fatalf("inferred_offset_abs sum=%v, want %v", h.Hist.Sum(), wantAbs)
	}

	cur := flash.NewBitmap(n)
	newOfs, _ := eng.CalibrationStep(-4, sense, cur)
	if got := eng.Obs.CalSteps.Value(); got != 1 {
		t.Fatalf("cal_steps = %d after one step", got)
	}
	wantAdj := math.Abs(newOfs - (-4))
	if h := findHist(t, reg, "sentinel.cal_adjust_abs"); h.Hist.Count() != 1 ||
		math.Abs(h.Hist.Sum()-wantAdj) > 1e-6 {
		t.Fatalf("cal_adjust_abs count=%d sum=%v, want one sample of %v",
			h.Hist.Count(), h.Hist.Sum(), wantAdj)
	}

	// Uninstrumented engines (Obs nil) must behave identically.
	bare, _ := fuzzEngine(t)
	d2, ofs2 := bare.Infer(sense)
	if d2 != d || ofs2.Get(eng.Model.SentinelVoltage) != ofs.Get(eng.Model.SentinelVoltage) {
		t.Fatal("instrumentation changed inference results")
	}
}
