package sentinel

import (
	"encoding/json"
	"fmt"
	"io"
)

// Save writes the trained model as JSON. In production this is the blob
// "programmed into all the chips of the same batch" (paper Section
// III-D); here it lets tools train once and reuse the fit.
func (m *Model) Save(w io.Writer) error {
	if err := m.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadModel reads a model saved with Save and validates it.
func LoadModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("sentinel: decoding model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
