package sentinel

import (
	"fmt"

	"sentinel3d/internal/flash"
)

// Engine binds a trained model, a layout resolved against a concrete chip
// geometry, and a calibrator. It is the runtime-side object the read
// controller consults on a read failure; it sees only readouts and the
// known sentinel pattern, never simulator ground truth.
type Engine struct {
	Model  *Model
	Layout Layout
	Cal    Calibrator
	// Obs, when non-nil, receives inference/calibration metrics; nil
	// costs one branch per inference.
	Obs *Metrics

	indices []int
	ratio   float64
	tempC   float64
	bound   float64
}

// NewEngine resolves the layout against cfg and validates the parts.
func NewEngine(model *Model, layout Layout, cal Calibrator, cfg flash.Config) (*Engine, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := layout.Validate(cfg); err != nil {
		return nil, err
	}
	if err := cal.Validate(); err != nil {
		return nil, err
	}
	if model.Kind != cfg.Kind {
		return nil, fmt.Errorf("sentinel: model trained for %v used on %v chip",
			model.Kind, cfg.Kind)
	}
	idx := layout.Indices(cfg)
	return &Engine{
		Model:   model,
		Layout:  layout,
		Cal:     cal,
		indices: idx,
		ratio:   float64(len(idx)) / float64(cfg.CellsPerWordline),
		tempC:   25,
		bound:   model.offsetBound(),
	}, nil
}

// OffsetBound returns the largest sentinel-offset magnitude the trained
// polynomial can produce over its training domain. Inferred or calibrated
// offsets far beyond this bound cannot have come from a healthy sentinel
// measurement; the fallback guard in internal/retry uses it as the
// plausibility limit.
func (e *Engine) OffsetBound() float64 { return e.bound }

// StuckFraction compares two senses of the same wordline taken at widely
// separated voltages (senseLo well below every state, senseHi well above)
// and returns the fraction of sentinel cells that read identically in
// both. A healthy cell always senses above at senseLo and below at
// senseHi; a cell that does not respond to the read voltage at all is
// stuck, and a block whose sentinel region shows stuck cells cannot be
// trusted for inference.
func (e *Engine) StuckFraction(senseLo, senseHi flash.Bitmap) float64 {
	if len(e.indices) == 0 {
		return 0
	}
	stuck := 0
	for _, idx := range e.indices {
		if senseLo.Get(idx) == senseHi.Get(idx) {
			stuck++
		}
	}
	return float64(stuck) / float64(len(e.indices))
}

// SetTemperature tells the engine the controller's on-board temperature
// reading, selecting the matching correlation band for inference (paper
// Section III-D).
func (e *Engine) SetTemperature(tempC float64) { e.tempC = tempC }

// Temperature returns the engine's current temperature setting.
func (e *Engine) Temperature() float64 { return e.tempC }

// Indices returns the resolved sentinel cell indices.
func (e *Engine) Indices() []int { return e.indices }

// Ratio returns the effective reserve ratio r.
func (e *Engine) Ratio() float64 { return e.ratio }

// Prepare overwrites the sentinel cells of a to-be-programmed state slice
// with the sentinel pattern. FTL write paths call this on every program.
func (e *Engine) Prepare(states []uint8) {
	e.Layout.ApplyPattern(states, e.indices, e.Model.SentinelVoltage)
}

// Infer consumes a single-voltage sense at the *default* sentinel voltage
// (bit set = sensed above the boundary) and returns the measured
// error-difference rate together with the inferred full offset vector.
func (e *Engine) Infer(defaultSense flash.Bitmap) (d float64, offsets flash.Offsets) {
	d = ErrorDiffRate(defaultSense, e.indices)
	offsets = e.Model.InferAt(d, e.tempC)
	e.Obs.recordInfer(d, offsets.Get(e.Model.SentinelVoltage))
	return d, offsets
}

// CalibrationStep consumes the default-voltage sense and the sense at the
// current sentinel offset, applies the state-change rule, and returns the
// adjusted sentinel offset with its expanded offset vector.
func (e *Engine) CalibrationStep(curSentOfs float64, defaultSense, curSense flash.Bitmap) (newSentOfs float64, offsets flash.Offsets) {
	nca := defaultSense.XorCount(curSense)
	ncs := 0
	for _, idx := range e.indices {
		if defaultSense.Get(idx) != curSense.Get(idx) {
			ncs++
		}
	}
	// Scrambled data places 2/States of the cells in the boundary states
	// where every sentinel lives.
	states := len(e.Model.Corr) + 1
	boundaryFraction := 2 / float64(states)
	newSentOfs = e.Cal.Step(curSentOfs, nca, ncs, e.ratio, boundaryFraction)
	e.Obs.recordCalStep(newSentOfs - curSentOfs)
	return newSentOfs, e.Model.OffsetsFromSentinelAt(newSentOfs, e.tempC)
}
