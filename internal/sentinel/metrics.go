package sentinel

import (
	"math"

	"sentinel3d/internal/obs"
)

// Metrics bundles the sentinel engine's observability handles; a nil
// *Metrics makes every hook a no-op.
type Metrics struct {
	Infers   *obs.Counter
	CalSteps *obs.Counter
	// ErrorDiff tracks the measured error-difference rate d each
	// inference consumed — the engine's input signal.
	ErrorDiff *obs.Hist
	// InferredOffset tracks |sentinel offset| produced by inference.
	InferredOffset *obs.Hist
	// CalAdjust tracks |Δ sentinel offset| per calibration step: how
	// far each state-change step had to move, a proxy for the residual
	// inference error the calibrator is correcting.
	CalAdjust *obs.Hist
}

// NewMetrics binds the engine's handles to set; a nil set yields a nil
// (no-op) Metrics.
func NewMetrics(set *obs.Set) *Metrics {
	if set == nil {
		return nil
	}
	return &Metrics{
		Infers:         set.Counter("sentinel.infers", "sentinel inferences performed"),
		CalSteps:       set.Counter("sentinel.cal_steps", "state-change calibration steps"),
		ErrorDiff:      set.Hist("sentinel.error_diff", "measured sentinel error-difference rate"),
		InferredOffset: set.Hist("sentinel.inferred_offset_abs", "inferred |sentinel offset|, sentinel-voltage units"),
		CalAdjust:      set.Hist("sentinel.cal_adjust_abs", "per-step |sentinel offset adjustment|"),
	}
}

func (m *Metrics) recordInfer(d, sentOfs float64) {
	if m == nil {
		return
	}
	m.Infers.Inc()
	m.ErrorDiff.Observe(d)
	m.InferredOffset.Observe(math.Abs(sentOfs))
}

func (m *Metrics) recordCalStep(adjust float64) {
	if m == nil {
		return
	}
	m.CalSteps.Inc()
	m.CalAdjust.Observe(math.Abs(adjust))
}
