package sentinel

import "fmt"

// Calibrator implements the paper's Section III-C rule for repairing a
// failed inference. After the read retry at the inferred voltages fails,
// the controller compares how many cells changed sensed state between the
// default and the inferred sentinel voltage:
//
//   - NCa > NCs/r  (all cells changed proportionally more than sentinels):
//     Case 1 — the inferred move undershot; tune further in the same
//     direction.
//   - otherwise: Case 2 — the move overshot; tune back.
//
// Each calibration step moves the sentinel offset by the small constant
// Delta and re-derives the other voltages through the correlation model.
type Calibrator struct {
	// Delta is the per-step adjustment in normalized voltage units.
	Delta float64
	// MaxSteps bounds the number of calibration retries.
	MaxSteps int
}

// DefaultCalibrator returns the calibration settings used in the
// experiments (small Δ, a handful of steps).
func DefaultCalibrator() Calibrator {
	return Calibrator{Delta: 4, MaxSteps: 6}
}

// Validate reports parameter errors.
func (c Calibrator) Validate() error {
	if c.Delta <= 0 {
		return fmt.Errorf("sentinel: calibrator delta %v must be positive", c.Delta)
	}
	if c.MaxSteps < 0 {
		return fmt.Errorf("sentinel: negative MaxSteps %d", c.MaxSteps)
	}
	return nil
}

// Step returns the next sentinel-voltage offset given the current offset
// and the state-change counts. nca counts all cells whose sensed state
// changed between the default-voltage read and the current-offset read;
// ncs counts the sentinel cells that changed; ratio is the sentinel
// reserve ratio r.
//
// boundaryFraction corrects for programming density: sentinel cells are
// ALL in the two states flanking the sentinel voltage, while randomly
// scrambled data puts only 2/States of cells there, so the expected
// all-cell count for sentinel-like behaviour is (NCs/r) * 2/States. (The
// paper's Fig. 11 presentation draws both populations as the two boundary
// states and divides by r only; with scrambled data the density factor is
// required or every comparison reads as Case 2.)
func (c Calibrator) Step(curOfs float64, nca, ncs int, ratio, boundaryFraction float64) float64 {
	dir := 1.0
	if curOfs < 0 {
		dir = -1
	}
	if curOfs == 0 {
		// No move was made; the shift direction is unknowable from state
		// changes, so probe downward (retention loss is the common case).
		dir = -1
	}
	expected := float64(ncs) / ratio * boundaryFraction
	if float64(nca) > expected {
		// Case 1: data cells moved more than sentinels predicted — the
		// optimum lies further along the same direction.
		return curOfs + dir*c.Delta
	}
	// Case 2: overshoot — back off.
	return curOfs - dir*c.Delta
}
