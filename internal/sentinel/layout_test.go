package sentinel

import (
	"testing"

	"sentinel3d/internal/flash"
)

func cfg16k() flash.Config {
	return flash.Config{
		Kind: flash.QLC, Blocks: 1, Layers: 8, WordlinesPerLayer: 2,
		CellsPerWordline: 16384, OOBFraction: 0.119, Seed: 3, CacheZ: true,
	}
}

func TestDefaultLayoutValid(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(cfg16k()); err != nil {
		t.Fatal(err)
	}
	if l.Ratio != 0.002 {
		t.Fatalf("default ratio = %v, want paper's 0.2%%", l.Ratio)
	}
}

func TestLayoutCount(t *testing.T) {
	cfg := cfg16k()
	l := Layout{Ratio: 0.002, Placement: TailOOB}
	if n := l.Count(cfg); n != 33 {
		t.Fatalf("Count = %d, want 33 (0.2%% of 16384)", n)
	}
	// Tiny ratios still give at least 2 sentinels.
	l.Ratio = 1e-9
	if n := l.Count(cfg); n != 2 {
		t.Fatalf("minimum count = %d, want 2", n)
	}
}

func TestLayoutValidateErrors(t *testing.T) {
	cfg := cfg16k()
	if err := (Layout{Ratio: 0}).Validate(cfg); err == nil {
		t.Fatal("accepted zero ratio")
	}
	if err := (Layout{Ratio: 0.2}).Validate(cfg); err == nil {
		t.Fatal("accepted 20% ratio")
	}
	if err := (Layout{Ratio: 0.054, Placement: TailOOB}).Validate(cfg); err != nil {
		t.Fatalf("rejected 5.4%% (needed by scaled Table I sweeps): %v", err)
	}
	// Sentinels must fit in the OOB for tail placement.
	if err := (Layout{Ratio: 0.04, Placement: TailOOB}).Validate(cfg); err != nil {
		t.Fatalf("4%% should still fit in 11.9%% OOB: %v", err)
	}
	tight := cfg
	tight.OOBFraction = 0.001
	if err := (Layout{Ratio: 0.01, Placement: TailOOB}).Validate(tight); err == nil {
		t.Fatal("accepted sentinels exceeding OOB")
	}
}

func TestTailIndicesInsideOOB(t *testing.T) {
	cfg := cfg16k()
	l := DefaultLayout()
	idx := l.Indices(cfg)
	if len(idx) != l.Count(cfg) {
		t.Fatalf("got %d indices", len(idx))
	}
	for i, x := range idx {
		if x < cfg.UserCells() || x >= cfg.CellsPerWordline {
			t.Fatalf("index %d outside the OOB region", x)
		}
		if i > 0 && x <= idx[i-1] {
			t.Fatal("indices not ascending")
		}
	}
}

func TestSpreadIndicesCoverWordline(t *testing.T) {
	cfg := cfg16k()
	l := Layout{Ratio: 0.002, Placement: Spread}
	idx := l.Indices(cfg)
	if idx[0] > cfg.CellsPerWordline/len(idx) {
		t.Fatal("spread does not start near the head")
	}
	if idx[len(idx)-1] < cfg.CellsPerWordline*9/10 {
		t.Fatal("spread does not reach the tail")
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatal("indices not strictly ascending")
		}
	}
}

func TestApplyPatternAlternates(t *testing.T) {
	cfg := cfg16k()
	l := DefaultLayout()
	idx := l.Indices(cfg)
	states := make([]uint8, cfg.CellsPerWordline)
	l.ApplyPattern(states, idx, 8)
	lo, hi := 0, 0
	for i, x := range idx {
		switch states[x] {
		case 7:
			lo++
			if PatternAbove(i) {
				t.Fatal("pattern parity mismatch (below)")
			}
		case 8:
			hi++
			if !PatternAbove(i) {
				t.Fatal("pattern parity mismatch (above)")
			}
		default:
			t.Fatalf("sentinel %d programmed to %d", i, states[x])
		}
	}
	if lo < hi-1 || hi < lo-1 {
		t.Fatalf("pattern not even: %d below, %d above", lo, hi)
	}
}

func TestPlacementString(t *testing.T) {
	if TailOOB.String() != "tail-oob" || Spread.String() != "spread" {
		t.Fatal("Placement.String wrong")
	}
	if Placement(9).String() == "" {
		t.Fatal("unknown placement should print")
	}
}
