package ssdsim

import "math/bits"

// stripeMap splits one logical address space across a fleet of devices.
// In striped (RAID-0) mode, granules of StripeGranule pages round-robin
// across devices and each device compacts its granules into a dense
// local address space:
//
//	dev(lpn)   = (lpn / G) % D
//	local(lpn) = (lpn / (G*D)) * G  +  lpn % G
//
// which is a bijection between global LPNs and (device, local) pairs —
// global() is its inverse, and FuzzStripeMap proves the round trip. In
// replicated mode every device holds the full address space: local
// addresses equal global ones, reads round-robin by granule, and the
// engine fans writes out to every device.
//
// A 1-device map is the identity in both modes, which is how a fleet
// engine with Devices=1 reproduces the single-device engine bit for
// bit. Negative LPNs (malformed traces) route to device 0 with their
// address unchanged, mirroring shardOf's handling.
//
// The engine routes whole requests by their first LPN and services the
// request's pages contiguously in device-local space, so a request that
// crosses a granule boundary reads the device's own next granule rather
// than splitting across devices — the same first-LPN aliasing the shard
// router has always applied (see shardOf).
type stripeMap struct {
	devices   int64
	granule   int64
	replicate bool
	// gShift/dShift are log2(granule)/log2(devices) when those are
	// powers of two, else -1; the hot route path then runs on shifts and
	// masks instead of 64-bit divisions.
	gShift int8
	dShift int8
}

// defaultStripeGranule matches shardGranule: 64 pages = 256 KiB keeps
// mean-sized requests inside one device while interleaving finely
// enough to balance the fleet on hot-range traces.
const defaultStripeGranule = 64

// stripeBoundSlack pads localBound for the whole-request routing above:
// a request whose first LPN sits at the end of the global space can run
// its pages past the last granule's local image.
const stripeBoundSlack = 64

func pow2Shift(v int64) int8 {
	if v > 0 && v&(v-1) == 0 {
		return int8(bits.TrailingZeros64(uint64(v)))
	}
	return -1
}

func newStripeMap(devices int, granule int64, replicate bool) stripeMap {
	return stripeMap{
		devices:   int64(devices),
		granule:   granule,
		replicate: replicate,
		gShift:    pow2Shift(granule),
		dShift:    pow2Shift(int64(devices)),
	}
}

// route maps a global LPN to its owning device and device-local LPN.
func (m stripeMap) route(lpn int64) (int, int64) {
	if m.devices == 1 || lpn < 0 {
		return 0, lpn
	}
	var g, off int64
	if m.gShift >= 0 {
		g, off = lpn>>uint(m.gShift), lpn&(m.granule-1)
	} else {
		g, off = lpn/m.granule, lpn%m.granule
	}
	var dev, dg int64
	if m.dShift >= 0 {
		dev, dg = g&(m.devices-1), g>>uint(m.dShift)
	} else {
		dev, dg = g%m.devices, g/m.devices
	}
	if m.replicate {
		return int(dev), lpn
	}
	return int(dev), dg*m.granule + off
}

// global inverts route for non-negative local LPNs: it returns the
// global LPN that device dev's local address came from.
func (m stripeMap) global(dev int, local int64) int64 {
	if m.devices == 1 || m.replicate || local < 0 {
		return local
	}
	g, off := local/m.granule, local%m.granule
	return (g*m.devices+int64(dev))*m.granule + off
}

// localBound converts a global LPN bound into a per-device one: the
// highest local address any device can see for global LPNs in
// [0, bound], plus slack for whole-request granule overrun. Replicated
// fleets keep global addresses, so the bound passes through.
func (m stripeMap) localBound(bound int64) int64 {
	if bound <= 0 || m.devices == 1 || m.replicate {
		return bound
	}
	return (bound/(m.granule*m.devices))*m.granule + m.granule - 1 + stripeBoundSlack
}
