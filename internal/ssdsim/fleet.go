package ssdsim

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
)

// Fleet is the online (serving) counterpart of the batch replay Engine:
// N sharded sub-devices, each owned by one worker goroutine behind a
// bounded request queue, servicing reads submitted one at a time with a
// context deadline instead of a pre-recorded trace. It is what
// cmd/flashd serves traffic from.
//
// Three contracts shape it:
//
//   - Backpressure, never buffering: Submit fails fast with ErrQueueFull
//     when the target shard's queue is at capacity. The fleet never
//     spawns per-request goroutines and never grows a queue, so overload
//     surfaces to the admission layer instead of as memory.
//   - Deadlines are honoured at dequeue: a request whose context deadline
//     has already passed when its shard gets to it is rejected without
//     touching the device (reject-on-arrival), so a backed-up queue
//     cannot burn device time on reads nobody is waiting for.
//   - Deterministic outcomes: a read's retry outcome is a pure function
//     of (fleet seed, page LPN, policy), like the internal/fault
//     injector's pure-hash decisions — never of arrival order or
//     goroutine scheduling. Two closed-loop benchmark runs with the same
//     seed therefore observe byte-identical per-read results, which is
//     what makes flashbench reports reproducible.
type Fleet struct {
	cfg      FleetConfig
	samplers map[string]fleetSampler

	mu      sync.RWMutex // guards stopped vs in-flight Submit sends
	stopped bool

	shards []*fleetShard
	wg     sync.WaitGroup
}

// fleetSampler pairs a policy's sampler with the salt that keys its
// deterministic per-page outcome stream.
type fleetSampler struct {
	sampler RetrySampler
	salt    uint64
}

// FleetConfig parameterizes a Fleet.
type FleetConfig struct {
	// Sim carries the device geometry, latency model, bits per cell and
	// the seed of the deterministic outcome streams. Obs and PEFaults are
	// ignored; Metrics below attaches observability.
	Sim Config
	// Shards is the number of independent sub-devices (default 1); it
	// must divide Sim.Geo.Channels, exactly like ReplayConfig.Shards.
	Shards int
	// QueueDepth bounds each shard's request queue (default 256). A full
	// queue rejects with ErrQueueFull.
	QueueDepth int
	// PremapPages maps LPNs [0, PremapPages) at startup so reads hit
	// valid data (the serving analogue of Precondition). Default 60% of
	// the device's physical pages; capped validation happens in NewFleet.
	PremapPages int64
	// Samplers maps policy names ("sentinel", "table", ...) to retry
	// samplers; Submit selects per read. At least one entry is required.
	Samplers map[string]RetrySampler
	// CorruptRate injects media corruption: each page read independently
	// turns uncorrectable with this probability, drawn from the page's
	// deterministic outcome stream (the serving analogue of the chip-
	// level internal/fault corruption).
	CorruptRate float64
	// Stall, when non-nil, returns an extra wall-clock service delay for
	// a request on the given shard — the chaos hook that simulates a
	// slow die or a hiccuping channel. It runs on the shard worker, so a
	// stall backs up that shard's queue exactly like a real slow shard.
	Stall func(shard int) time.Duration
	// Metrics, when non-nil, attaches per-shard queue instrumentation
	// (depth gauges, queue-wait histograms). Needs >= Shards shards.
	Metrics *obs.Registry
}

// FleetRead is one read submitted to the fleet.
type FleetRead struct {
	LPN   int64
	Pages int
	// Policy selects the sampler (must be a FleetConfig.Samplers key).
	Policy string
	// MaxRetries, when positive, caps the retry budget: a page whose
	// sampled outcome needs more retries is failed fast as uncorrectable
	// after MaxRetries attempts instead of burning the full budget. The
	// degradation ladder's fail-fast step sets it.
	MaxRetries int
}

// FleetResult is the outcome of one serviced read.
type FleetResult struct {
	// SimUS is the simulated device service time of the request alone
	// (die sensing + channel transfer, µs), excluding wall-clock queue
	// wait. It is deterministic per (seed, LPN, policy).
	SimUS float64
	// QueueWait is the wall-clock time the request spent queued before
	// its shard worker picked it up.
	QueueWait time.Duration
	// Shard is the shard that serviced the request.
	Shard int
	// Retries and AuxSenses sum the per-page sampled outcomes.
	Retries   int
	AuxSenses int
	// UsedFallback / Uncorrectable / FailFast flag pages that degraded
	// to the static table, failed ECC, or were cut off by MaxRetries.
	UsedFallback  bool
	Uncorrectable bool
	FailFast      bool
	// UnmappedPages counts pages serviced from the mapping table without
	// touching flash.
	UnmappedPages int
	// Check is an order-independent checksum of the read's deterministic
	// outcome (XOR over pages); benchmark reports accumulate it to prove
	// two runs observed identical results.
	Check uint64
}

// Fleet submission errors. ErrQueueFull is the backpressure signal the
// admission layer converts into 429 + Retry-After; ErrFleetStopped
// rejects submissions after Close began.
var (
	ErrQueueFull    = errors.New("ssdsim: shard queue full")
	ErrFleetStopped = errors.New("ssdsim: fleet stopped")
	// ErrUnknownPolicy reports a FleetRead naming no configured sampler.
	ErrUnknownPolicy = errors.New("ssdsim: unknown policy")
)

// fleetReq is the queue entry: the read, its context (for the dequeue
// deadline check), and the reply channel (buffered, so the worker never
// blocks replying to an abandoned caller).
type fleetReq struct {
	read     FleetRead
	ctx      context.Context
	enqueued time.Time
	done     chan fleetReply
}

type fleetReply struct {
	res FleetResult
	err error
}

// fleetShard is one sub-device: a bounded queue and the single worker
// goroutine that owns the shard's FTL.
type fleetShard struct {
	queue chan fleetReq
	ftl   *ftl.FTL

	depth     *obs.Gauge
	waitUS    *obs.Hist
	rejects   *obs.Counter
	expired   *obs.Counter
	satisfied *obs.Counter
}

// defaultQueueDepth bounds a shard queue when the config leaves it zero.
const defaultQueueDepth = 256

// policySalt keys a policy's deterministic outcome stream by name, so
// "sentinel" and "table" reads of the same page draw different outcomes.
func policySalt(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// NewFleet validates the configuration, builds the per-shard FTLs and
// premaps the logical space, then starts one worker per shard.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("ssdsim: negative shard count %d", cfg.Shards)
	}
	if cfg.Sim.Geo.Channels%cfg.Shards != 0 {
		return nil, fmt.Errorf("ssdsim: %d shards do not divide %d channels",
			cfg.Shards, cfg.Sim.Geo.Channels)
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.QueueDepth < 0 {
		return nil, fmt.Errorf("ssdsim: negative queue depth %d", cfg.QueueDepth)
	}
	if cfg.CorruptRate < 0 || cfg.CorruptRate > 1 {
		return nil, fmt.Errorf("ssdsim: corrupt rate %g outside [0,1]", cfg.CorruptRate)
	}
	if len(cfg.Samplers) == 0 {
		return nil, fmt.Errorf("ssdsim: fleet needs at least one sampler")
	}
	if cfg.Metrics != nil && cfg.Metrics.Shards() < cfg.Shards {
		return nil, fmt.Errorf("ssdsim: metrics registry has %d shards, fleet needs %d",
			cfg.Metrics.Shards(), cfg.Shards)
	}
	shardGeo := cfg.Sim.Geo
	shardGeo.Channels /= cfg.Shards
	sub := cfg.Sim
	sub.Geo = shardGeo
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	total := int64(cfg.Sim.Geo.PagesTotal())
	if cfg.PremapPages == 0 {
		cfg.PremapPages = total * 6 / 10
	}
	if cfg.PremapPages < 0 || cfg.PremapPages > total*9/10 {
		return nil, fmt.Errorf("ssdsim: premap %d outside [0, 90%% of %d pages]",
			cfg.PremapPages, total)
	}
	f := &Fleet{cfg: cfg, samplers: make(map[string]fleetSampler, len(cfg.Samplers))}
	for name, s := range cfg.Samplers {
		if err := checkSampler(sub, s); err != nil {
			return nil, fmt.Errorf("policy %q: %w", name, err)
		}
		f.samplers[name] = fleetSampler{sampler: s, salt: policySalt(name)}
	}
	f.shards = make([]*fleetShard, cfg.Shards)
	for s := range f.shards {
		ft, err := ftl.New(shardGeo)
		if err != nil {
			return nil, err
		}
		sh := &fleetShard{queue: make(chan fleetReq, cfg.QueueDepth), ftl: ft}
		if set := cfg.Metrics.Set(s); set != nil {
			sh.depth = set.Gauge("fleet.queue_depth", "requests queued on this shard")
			sh.waitUS = set.Hist("fleet.queue_wait_us", "wall-clock queue wait per request")
			sh.rejects = set.Counter("fleet.queue_rejects", "submissions rejected by a full queue")
			sh.expired = set.Counter("fleet.deadline_expired", "requests already past deadline at dequeue")
			sh.satisfied = set.Counter("fleet.reads_serviced", "requests serviced by this shard")
		}
		f.shards[s] = sh
	}
	// Premap ascending: each LPN routes to its owning shard's FTL, the
	// same granule interleaving the replay engine uses.
	for lpn := int64(0); lpn < cfg.PremapPages; lpn++ {
		sh := f.shards[f.shardOf(lpn)]
		if _, err := sh.ftl.Write(lpn); err != nil {
			return nil, err
		}
	}
	f.wg.Add(len(f.shards))
	for s := range f.shards {
		go f.run(s)
	}
	return f, nil
}

// Shards returns the fleet's shard count.
func (f *Fleet) Shards() int { return len(f.shards) }

// PremapPages returns the number of LPNs mapped at startup — the
// logical footprint load generators should stay inside.
func (f *Fleet) PremapPages() int64 { return f.cfg.PremapPages }

// shardOf mirrors Engine.shardOf: granule-interleaved LPN routing.
func (f *Fleet) shardOf(lpn int64) int {
	s := (lpn / shardGranule) % int64(len(f.shards))
	if s < 0 {
		return 0
	}
	return int(s)
}

// MaxQueueFrac returns the highest queue occupancy across shards in
// [0, 1] — the degradation ladder's pressure signal.
func (f *Fleet) MaxQueueFrac() float64 {
	frac := 0.0
	for _, sh := range f.shards {
		if q := float64(len(sh.queue)) / float64(cap(sh.queue)); q > frac {
			frac = q
		}
	}
	return frac
}

// Submit enqueues one read on its shard and waits for the result. It
// fails fast with ErrQueueFull when the shard's queue is at capacity
// and with ErrFleetStopped after Close; a context already expired at
// dequeue time returns the context's error without device work. Submit
// never abandons a queued request — once enqueued it always waits for
// the shard's reply, so accounting is exact and nothing leaks.
func (f *Fleet) Submit(ctx context.Context, read FleetRead) (FleetResult, error) {
	if read.Pages <= 0 {
		read.Pages = 1
	}
	if read.LPN < 0 {
		return FleetResult{}, fmt.Errorf("ssdsim: negative LPN %d", read.LPN)
	}
	if _, ok := f.samplers[read.Policy]; !ok {
		return FleetResult{}, fmt.Errorf("%w %q", ErrUnknownPolicy, read.Policy)
	}
	req := fleetReq{read: read, ctx: ctx, enqueued: time.Now(),
		done: make(chan fleetReply, 1)}
	sh := f.shards[f.shardOf(read.LPN)]

	f.mu.RLock()
	if f.stopped {
		f.mu.RUnlock()
		return FleetResult{}, ErrFleetStopped
	}
	select {
	case sh.queue <- req:
		f.mu.RUnlock()
	default:
		f.mu.RUnlock()
		sh.rejects.Inc()
		return FleetResult{}, ErrQueueFull
	}
	rep := <-req.done
	return rep.res, rep.err
}

// Close stops accepting new submissions, services every already-queued
// request (graceful drain — nothing enqueued is ever dropped), and
// waits for the shard workers to exit.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.stopped {
		f.mu.Unlock()
		return
	}
	f.stopped = true
	f.mu.Unlock()
	for _, sh := range f.shards {
		close(sh.queue)
	}
	f.wg.Wait()
}

// run is shard s's worker: dequeue, deadline-check, service, reply.
func (f *Fleet) run(s int) {
	defer f.wg.Done()
	sh := f.shards[s]
	for req := range sh.queue {
		sh.depth.Set(float64(len(sh.queue)))
		wait := time.Since(req.enqueued)
		sh.waitUS.Observe(float64(wait.Microseconds()))
		if err := req.ctx.Err(); err != nil {
			// Reject-on-arrival: the caller stopped waiting (deadline or
			// cancel) while the request sat in the queue; spend no device
			// time on it.
			sh.expired.Inc()
			req.done <- fleetReply{err: err}
			continue
		}
		if f.cfg.Stall != nil {
			if d := f.cfg.Stall(s); d > 0 {
				time.Sleep(d)
			}
		}
		res := f.service(sh, s, req.read)
		res.QueueWait = wait
		sh.satisfied.Inc()
		req.done <- fleetReply{res: res}
	}
}

// service reads every page of the request on shard s. Outcomes are
// deterministic per page: the RNG stream is keyed by (seed, LPN, policy
// salt), so neither arrival order nor concurrency changes any result.
func (f *Fleet) service(sh *fleetShard, s int, read FleetRead) FleetResult {
	pol := f.samplers[read.Policy]
	lat := f.cfg.Sim.Lat
	res := FleetResult{Shard: s}
	for p := 0; p < read.Pages; p++ {
		lpn := read.LPN + int64(p)
		ppn, ok := sh.ftl.Translate(lpn)
		if !ok {
			res.UnmappedPages++
			res.SimUS += lat.MapLookup
			res.Check ^= mathx.Mix3(uint64(lpn), pol.salt, 0xdead)
			continue
		}
		rng := mathx.NewRand(mathx.Mix3(f.cfg.Sim.Seed, uint64(lpn), pol.salt))
		pageType := ppn.Page % f.cfg.Sim.Bits
		out := pol.sampler.Sample(pageType, rng)
		if f.cfg.CorruptRate > 0 && rng.Float64() < f.cfg.CorruptRate {
			out.Uncorrectable = true
		}
		if read.MaxRetries > 0 && out.Retries > read.MaxRetries {
			out.Retries = read.MaxRetries
			out.Uncorrectable = true
			res.FailFast = true
		}
		res.Retries += out.Retries
		res.AuxSenses += out.AuxSenses
		res.UsedFallback = res.UsedFallback || out.UsedFallback
		res.Uncorrectable = res.Uncorrectable || out.Uncorrectable
		attempts := float64(out.Retries + 1)
		res.SimUS += attempts*(lat.SenseBase+float64(levelsOf(pageType))*lat.SensePerLevel) +
			float64(out.AuxSenses)*(lat.SenseBase+lat.SensePerLevel) +
			attempts*(lat.Transfer+lat.ECCDecode) +
			float64(out.AuxSenses)*lat.Transfer
		flags := uint64(0)
		if out.UsedFallback {
			flags |= 1
		}
		if out.Uncorrectable {
			flags |= 2
		}
		res.Check ^= mathx.Mix4(uint64(lpn), pol.salt,
			uint64(out.Retries)<<8|uint64(out.AuxSenses)<<2|flags, 0xf1ee7)
	}
	return res
}
