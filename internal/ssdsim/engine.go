package ssdsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/trace"
)

// ReplayConfig parameterizes the sharded streaming replay engine.
type ReplayConfig struct {
	// Sim is the full-device configuration; the engine splits it into
	// per-shard sub-devices, and replicates it per fleet device when
	// Devices > 1.
	Sim Config
	// Shards is the number of independent sub-devices per device
	// (default 1). It must divide Sim.Geo.Channels: each shard owns a
	// disjoint set of channels (and the chips, dies and planes behind
	// them) plus its own FTL partition, so shards share no mutable state
	// and replay concurrently.
	Shards int
	// Devices is the fleet size (default 1). Each device is a full
	// Sim.Geo instance with its own FTL, fault state and Mix3-split
	// seed; one trace replays across the whole fleet through the stripe
	// map (see stripeMap). Devices == 1 reproduces the single-device
	// engine bit for bit.
	Devices int
	// Replicate switches the fleet from RAID-0 striping to replication:
	// every device holds the full address space, reads round-robin
	// across devices by granule, and every write is serviced by every
	// device. The merged report counts device-serviced work, so a
	// replicated write contributes Devices requests.
	Replicate bool
	// StripeGranule is the striping unit in pages (default 64 = 256
	// KiB): consecutive granules of the logical space round-robin across
	// devices.
	StripeGranule int64
	// ChunkRequests is the commit granularity of the streaming replay
	// (default 32768): cancellation is checked once per chunk, and every
	// committed chunk is serviced in full. Peak memory holds a bounded
	// number of request blocks regardless of trace length.
	ChunkRequests int
	// CollectLatencies switches the report from the O(1)-memory
	// log-bucketed histogram (the default) to appending every read
	// latency, reproducing Sim.Run's exact-percentile output.
	CollectLatencies bool
	// Precondition makes a first pass over the trace that warms each
	// target's FTL exactly like Sim.Precondition before the replay pass.
	Precondition bool
	// Metrics, when non-nil, attaches each (device, shard) target's
	// simulator to registry shard device*Shards+shard (the registry must
	// have at least Devices*Shards shards). It supersedes Sim.Obs, which
	// the engine overwrites per target — a single Set shared across
	// targets would break the deterministic-merge contract. Everything
	// published is deterministic except the per-target req/s and
	// per-device fleet gauges, which Snapshot.Deterministic strips.
	Metrics *obs.Registry
	// Ctx, when non-nil, cancels a replay cooperatively (the CLIs wire
	// SIGINT/SIGTERM here): the replay pass stops at its next chunk
	// boundary, the precondition pass at its next batch, the paced
	// per-target metric flushes are settled, and Replay returns the
	// merged partial report alongside the context's error — an
	// interrupt flushes what was serviced instead of dying mid-stream.
	Ctx context.Context
}

// defaultChunkRequests holds ~1 MiB of requests per committed chunk.
const defaultChunkRequests = 1 << 17

// Engine replays traces against a fleet of sharded SSD simulations.
// Requests are routed to a device by the stripe map and to a shard
// within it by local LPN (shard = first local LPN's granule mod
// Shards); every target services its sub-stream on its own Sim, and
// the per-target reports merge in fixed (device, shard) order — so the
// output is byte-identical at any worker count, and a 1-device 1-shard
// engine reproduces Sim.Run exactly.
//
// An Engine is immutable configuration; each Replay call builds fresh
// fleet state, so one Engine can replay many traces.
type Engine struct {
	cfg     ReplayConfig
	sampler RetrySampler
	stripe  stripeMap
	// shardMask is Shards-1 when Shards is a power of two, else -1;
	// shardOf then masks instead of dividing.
	shardMask int64
}

// NewEngine validates the configuration. Shards, Devices, StripeGranule
// and ChunkRequests default to 1, 1, defaultStripeGranule and
// defaultChunkRequests when zero.
func NewEngine(cfg ReplayConfig, sampler RetrySampler) (*Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("ssdsim: negative shard count %d", cfg.Shards)
	}
	if cfg.Devices == 0 {
		cfg.Devices = 1
	}
	if cfg.Devices < 0 {
		return nil, fmt.Errorf("ssdsim: negative device count %d", cfg.Devices)
	}
	if cfg.StripeGranule == 0 {
		cfg.StripeGranule = defaultStripeGranule
	}
	if cfg.StripeGranule < 0 {
		return nil, fmt.Errorf("ssdsim: negative stripe granule %d", cfg.StripeGranule)
	}
	if cfg.Sim.Geo.Channels%cfg.Shards != 0 {
		return nil, fmt.Errorf("ssdsim: %d shards do not divide %d channels",
			cfg.Shards, cfg.Sim.Geo.Channels)
	}
	if cfg.ChunkRequests == 0 {
		cfg.ChunkRequests = defaultChunkRequests
	}
	if cfg.ChunkRequests < 0 {
		return nil, fmt.Errorf("ssdsim: negative chunk size %d", cfg.ChunkRequests)
	}
	if cfg.Metrics != nil && cfg.Metrics.Shards() < cfg.Devices*cfg.Shards {
		return nil, fmt.Errorf("ssdsim: metrics registry has %d shards, fleet needs %d",
			cfg.Metrics.Shards(), cfg.Devices*cfg.Shards)
	}
	sub := cfg.targetConfig(0, 0)
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	if err := checkSampler(sub, sampler); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:       cfg,
		sampler:   sampler,
		stripe:    newStripeMap(cfg.Devices, cfg.StripeGranule, cfg.Replicate),
		shardMask: -1,
	}
	if s := int64(cfg.Shards); s&(s-1) == 0 {
		e.shardMask = s - 1
	}
	return e, nil
}

// targetConfig derives target (d, s)'s sub-device configuration: 1/Shards
// of the channels, and an RNG stream split from the seed with the same
// Mix-based scheme the experiment engine uses for its fan-out — first
// across devices, then across shards, each split skipped at count 1 so
// a 1-device 1-shard engine keeps the seed untouched and reproduces
// Sim.Run bit for bit. MaxLPN is cleared: the engine re-derives the
// per-device bound from the trace and the stripe map (see buildSims).
func (c ReplayConfig) targetConfig(d, s int) Config {
	sub := c.Sim
	sub.Geo.Channels = c.Sim.Geo.Channels / c.Shards
	seed := c.Sim.Seed
	if c.Devices > 1 {
		seed = mathx.Mix3(seed, uint64(d), uint64(c.Devices))
	}
	if c.Shards > 1 {
		seed = mathx.Mix3(seed, uint64(s), uint64(c.Shards))
	}
	sub.Seed = seed
	sub.MaxLPN = 0
	sub.Obs = c.Metrics.Set(d*c.Shards + s)
	return sub
}

// shardGranule is the LPN-range interleaving unit (64 pages = 256 KiB):
// shards own round-robin granules of the (device-local) logical space
// rather than single pages, so a multi-page request almost always falls
// inside one shard's range (mean spans are a few pages) and each
// shard's footprint stays ~1/Shards of the trace's. Per-page
// interleaving would put every spanned page in several shards'
// footprints and inflate per-shard space usage several-fold.
const shardGranule = 64

// shardGranuleShift is log2(shardGranule), for the divide-free router.
const shardGranuleShift = 6

// shardOf routes a request by its first (device-local) LPN's granule.
// The fine interleaving balances shards even on traces whose footprint
// is a few hot ranges; negative LPNs (malformed traces) route to shard
// 0, which services them exactly like the unsharded Sim would.
func (e *Engine) shardOf(lpn int64) int {
	if lpn < 0 {
		return 0
	}
	g := lpn >> shardGranuleShift
	if e.shardMask >= 0 {
		return int(g & e.shardMask)
	}
	return int(g % int64(e.cfg.Shards))
}

// denseHintBudgetPages caps the fleet-wide dense-L2P hint: the packed
// mapping array costs 8 bytes per page per target, so 1<<25 entries
// split across the targets bounds the hint's footprint at 256 MiB.
// Traces whose per-device address space exceeds the per-target share
// simply keep the map-based FTL path — the hint is performance-only.
const denseHintBudgetPages = int64(1) << 25

// preconditionBitmapBudgetBits caps the fleet-wide precondition dedup
// bitmaps at 1 Gibit (128 MiB) across all targets; bigger address
// spaces fall back to the sort-based dedup.
const preconditionBitmapBudgetBits = int64(1) << 30

// buildSims constructs the fleet's per-target simulators in target
// order. globalBound, when positive, is the highest global LPN the
// trace can touch; it converts through the stripe map into a per-device
// dense-mapping hint when the fleet-wide budget allows.
func (e *Engine) buildSims(globalBound int64) ([]*Sim, error) {
	n := e.cfg.Devices * e.cfg.Shards
	hint := int64(0)
	if lb := e.stripe.localBound(globalBound); lb > 0 && lb+1 <= denseHintBudgetPages/int64(n) {
		hint = lb
	}
	sims := make([]*Sim, n)
	for d := 0; d < e.cfg.Devices; d++ {
		for s := 0; s < e.cfg.Shards; s++ {
			cfg := e.cfg.targetConfig(d, s)
			cfg.MaxLPN = hint
			sim, err := New(cfg, e.sampler)
			if err != nil {
				return nil, err
			}
			sims[d*e.cfg.Shards+s] = sim
		}
	}
	return sims, nil
}

// Replay streams the trace through the fleet and returns the merged
// report. The opener is invoked once per pass (twice with
// Precondition), so it must yield identical streams on every call; a
// returned source that implements io.Closer is closed when its pass
// ends. Sources that know their LPN bound (the synthetic generator, the
// binary trace format) are probed for it before any simulator state is
// built, which sizes the dense FTL mapping and dedup bitmaps.
func (e *Engine) Replay(open trace.Opener) (*Report, error) {
	if open == nil {
		return nil, fmt.Errorf("ssdsim: nil trace opener")
	}
	src, err := open()
	if err != nil {
		return nil, err
	}
	bound := e.cfg.Sim.MaxLPN
	if bound == 0 {
		if m, ok := src.(interface{ MaxLPN() int64 }); ok {
			bound = m.MaxLPN()
		}
	}
	sims, err := e.buildSims(bound)
	if err != nil {
		closeSource(src)
		return nil, err
	}
	reps := make([]*Report, len(sims))
	for t := range reps {
		reps[t] = e.newReport()
	}
	if e.cfg.Precondition {
		if err := e.preconditionPass(sims, src, e.stripe.localBound(bound)); err != nil {
			return nil, err
		}
		if src, err = open(); err != nil {
			return nil, err
		}
	}
	busy := make([]float64, len(sims))
	var canceled error
	if err := e.replayPass(sims, reps, src, busy); err != nil {
		if cerr := e.ctxErr(); cerr != nil && errors.Is(err, cerr) {
			canceled = err // merge and return the partial report below
		} else {
			return nil, err
		}
	}
	e.publishGauges(reps, busy)
	out := e.newReport()
	if e.cfg.Devices == 1 {
		// Exactly the pre-fleet merge: shard order, no intermediate
		// device report, no PerDevice rows.
		for t := range sims {
			sims[t].flushCounters(reps[t])
			out.merge(reps[t])
		}
	} else {
		// Online per-device merge in fixed (device, shard) order: each
		// device's shards fold into a device report, the device reports
		// fold into the run report, and the device summaries land on
		// PerDevice — all independent of worker count.
		for d := 0; d < e.cfg.Devices; d++ {
			dev := e.newReport()
			for s := 0; s < e.cfg.Shards; s++ {
				t := d*e.cfg.Shards + s
				sims[t].flushCounters(reps[t])
				dev.merge(reps[t])
			}
			out.merge(dev)
			dev.finalize()
			sum := dev.Summary()
			sum.ReadLatencies = nil
			out.PerDevice = append(out.PerDevice, sum)
		}
	}
	out.finalize()
	return out, canceled
}

// publishGauges records the wall-clock throughput gauges: per-target
// req/s, and with a fleet, per-device request counts and busy-time
// shares. All of them are nondeterministic by nature and stripped by
// Snapshot.Deterministic.
func (e *Engine) publishGauges(reps []*Report, busy []float64) {
	if e.cfg.Metrics == nil {
		return
	}
	for t := range reps {
		if busy[t] > 0 {
			e.cfg.Metrics.Set(t).Gauge("ssdsim.shard_req_per_sec",
				"wall-clock replay throughput of this shard").
				Set(float64(reps[t].Requests) / busy[t])
		}
	}
	if e.cfg.Devices == 1 {
		return
	}
	var total float64
	for _, b := range busy {
		total += b
	}
	for d := 0; d < e.cfg.Devices; d++ {
		devBusy, devReqs := 0.0, 0
		for s := 0; s < e.cfg.Shards; s++ {
			devBusy += busy[d*e.cfg.Shards+s]
			devReqs += reps[d*e.cfg.Shards+s].Requests
		}
		set := e.cfg.Metrics.Set(d * e.cfg.Shards)
		set.Gauge("ssdsim.fleet_device_reqs",
			"requests this fleet device serviced in the last replay").
			Set(float64(devReqs))
		if total > 0 {
			set.Gauge("ssdsim.fleet_device_busy_frac",
				"this device's share of the fleet's replay service time").
				Set(devBusy / total)
		}
	}
}

// ctxErr reports the configured context's cancellation state; a nil
// context never cancels.
func (e *Engine) ctxErr() error {
	if e.cfg.Ctx == nil {
		return nil
	}
	return e.cfg.Ctx.Err()
}

func (e *Engine) newReport() *Report {
	r := &Report{collect: e.cfg.CollectLatencies}
	if !e.cfg.CollectLatencies {
		r.hist = &mathx.LogHist{}
	}
	return r
}

// preconditionPass streams the trace once, deduplicating each target's
// (device-local) LPNs, then warms the target FTLs concurrently. Per
// target the write order is ascending unique — the same order
// Sim.Precondition uses — so a 1-target pass is identical to it.
// Replicated fleets warm every device with the full trace footprint,
// since any device can be asked to serve any granule's reads after a
// failover and every write lands everywhere.
func (e *Engine) preconditionPass(sims []*Sim, src trace.Source, localBound int64) error {
	defer closeSource(src)
	dedupBound := localBound
	if dedupBound <= 0 || dedupBound+1 > preconditionBitmapBudgetBits/int64(len(sims)) {
		dedupBound = 0
	}
	deds := make([]lpnDedup, len(sims))
	for t := range deds {
		deds[t] = newLPNDedup(dedupBound)
	}
	nShards := e.cfg.Shards
	replicate := e.cfg.Replicate && e.cfg.Devices > 1
	// Devirtualized fast path for the zero-copy binary format: the
	// concrete Next inlines into this loop, where the interface call
	// cannot.
	bin, _ := src.(*trace.BinarySource)
	for n := 0; ; n++ {
		// The warm-up pass has no partial result worth keeping, so a
		// cancelled precondition simply aborts (checked in batches — the
		// per-request cost of ctx.Err() would be measurable at replay scale).
		if n%4096 == 0 {
			if err := e.ctxErr(); err != nil {
				return err
			}
		}
		var r trace.Request
		var ok bool
		var err error
		if bin != nil {
			r, ok, err = bin.Next()
		} else {
			r, ok, err = src.Next()
		}
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		dev, local := e.stripe.route(r.LPN)
		s := e.shardOf(local)
		if replicate {
			for dd := 0; dd < e.cfg.Devices; dd++ {
				deds[dd*nShards+s].addRange(local, r.Pages)
			}
			continue
		}
		deds[dev*nShards+s].addRange(local, r.Pages)
	}
	if err := parallel.ForEachErr(len(sims), func(t int) error {
		return deds[t].each(func(lpn int64) error {
			return sims[t].ftl.WriteInto(lpn, &sims[t].wres)
		})
	}); err != nil {
		return err
	}
	return closeSource(src)
}

// reqBlockSize is the block-handoff unit: 512 requests (~16 KiB) keeps
// per-block bookkeeping amortized to fractions of a nanosecond per
// request while bounding how much decoded-but-unserviced work a chunk
// can hold.
const reqBlockSize = 4096

// reqBlock is one fixed-size unit of the demux→worker handoff. Blocks
// recycle through a freelist channel instead of being allocated per
// chunk, so a steady-state replay allocates nothing per request.
type reqBlock struct {
	n    int
	reqs [reqBlockSize]trace.Request
}

// blockMsg carries one filled block to the worker that owns its target.
type blockMsg struct {
	t   int
	blk *reqBlock
}

// demux is one replay pass's routing state: per-target partial blocks
// being filled, and — when more than one worker is running — per-worker
// queues plus the shared freelist. Target t is statically assigned to
// worker t mod workers, which preserves per-target FIFO order without
// any cross-worker coordination; errs[t] and busy[t] are written only
// by the goroutine that services target t.
type demux struct {
	sims    []*Sim
	reps    []*Report
	busy    []float64
	errs    []error
	partial []*reqBlock
	workers int
	queues  []chan blockMsg
	free    chan *reqBlock
}

// serviceBlock replays one block on its target, accounting wall time
// and latching the target's first error. After a target errs, its
// later blocks are skipped (the run is abandoned and the report
// discarded, so the skipped work is invisible).
func (d *demux) serviceBlock(t int, blk *reqBlock) {
	if d.errs[t] != nil {
		return
	}
	start := time.Now()
	err := d.sims[t].replaySlice(blk.reqs[:blk.n], d.reps[t])
	d.busy[t] += time.Since(start).Seconds()
	if err != nil {
		d.errs[t] = err
	}
}

// flush hands target t's partial block off for servicing: inline on the
// caller's goroutine when the pass is single-worker (the block is reset
// and kept as the target's buffer — zero channel traffic), or through
// the owning worker's queue otherwise.
func (d *demux) flush(t int) {
	blk := d.partial[t]
	if blk == nil || blk.n == 0 {
		return
	}
	if d.queues == nil {
		d.serviceBlock(t, blk)
		blk.n = 0
		return
	}
	d.queues[t%d.workers] <- blockMsg{t: t, blk: blk}
	d.partial[t] = nil
}

// worker services its queue until the demux closes it, recycling every
// block through the freelist. The freelist's capacity covers every
// block in existence, so the send never blocks.
func (d *demux) worker(w int) {
	for msg := range d.queues[w] {
		d.serviceBlock(msg.t, msg.blk)
		msg.blk.n = 0
		d.free <- msg.blk
	}
}

// replayPass streams the trace through the fleet in committed chunks of
// ChunkRequests. Within a chunk, requests route into per-target blocks
// that are handed off as they fill — pipelining decode with replay when
// workers are available — and every partial block flushes at the chunk
// boundary in target order, so a chunk is fully serviced before the
// next one starts and cancellation (checked once per chunk, before any
// of its requests are read) always lands on a whole-chunk boundary.
//
// Determinism: the demux depends only on the stream, each target's
// blocks are serviced in stream order on that target's Sim by exactly
// one goroutine, and block boundaries — which pace the metric flushes —
// are identical whether blocks are serviced inline (one worker) or
// through the queues. The worker count changes only which goroutine
// runs a block, never any state it sees.
func (e *Engine) replayPass(sims []*Sim, reps []*Report, src trace.Source, busy []float64) error {
	defer closeSource(src)
	// Preconditioning is over: per-block lifetime wear starts counting.
	for _, sim := range sims {
		sim.beginReplay()
	}
	nTargets := len(sims)
	d := &demux{
		sims:    sims,
		reps:    reps,
		busy:    busy,
		errs:    make([]error, nTargets),
		partial: make([]*reqBlock, nTargets),
	}
	workers := parallel.Workers()
	if workers > nTargets {
		workers = nTargets
	}
	var workersDone chan struct{}
	if workers > 1 {
		d.workers = workers
		// Freelist capacity: every target's partial plus a few blocks in
		// flight per worker; sized to the total block population so
		// recycling sends never block.
		d.free = make(chan *reqBlock, nTargets+4*workers+4)
		for i := 0; i < cap(d.free); i++ {
			d.free <- new(reqBlock)
		}
		d.queues = make([]chan blockMsg, workers)
		for w := range d.queues {
			d.queues[w] = make(chan blockMsg, 4)
		}
		workersDone = make(chan struct{})
		go func() {
			defer close(workersDone)
			parallel.RunWorkers(workers, d.worker)
		}()
	}
	shutdown := func() {
		if workersDone == nil {
			return
		}
		for _, q := range d.queues {
			close(q)
		}
		<-workersDone
		workersDone = nil
	}
	defer shutdown()

	nShards := e.cfg.Shards
	replicate := e.cfg.Replicate && e.cfg.Devices > 1
	// Devirtualized fast path for the zero-copy binary format (see
	// preconditionPass).
	bin, _ := src.(*trace.BinarySource)
	var reordered int64
	var canceled, perr error
	eof := false
	for !eof && canceled == nil && perr == nil {
		// Cancellation is checked once per chunk, before any of its
		// requests are read: a canceled replay stops with every committed
		// chunk fully serviced, so the partial report stays internally
		// consistent.
		if err := e.ctxErr(); err != nil {
			canceled = err
			break
		}
		for n := 0; n < e.cfg.ChunkRequests; n++ {
			var r trace.Request
			var ok bool
			var err error
			if bin != nil {
				r, ok, err = bin.Next()
			} else {
				r, ok, err = src.Next()
			}
			if err != nil {
				perr = err
				break
			}
			if !ok {
				eof = true
				break
			}
			dev, local := e.stripe.route(r.LPN)
			s := e.shardOf(local)
			if replicate {
				if r.Op == trace.Write {
					for dd := 0; dd < e.cfg.Devices; dd++ {
						d.append(dd*nShards+s, r)
					}
					continue
				}
				d.append(dev*nShards+s, r)
				continue
			}
			r.LPN = local
			d.append(dev*nShards+s, r)
		}
		if perr != nil {
			// A trace error abandons the run (the caller discards the
			// report), so the chunk's buffered prefix is dropped unserviced.
			break
		}
		for t := 0; t < nTargets; t++ {
			d.flush(t)
		}
	}
	if eof {
		// Clean end of trace: collect the source's reordering count
		// (streaming parsers that clamp out-of-order arrivals report it;
		// other sources simply lack the method).
		if rr, ok := src.(interface{ Reordered() int64 }); ok {
			reordered = rr.Reordered()
		}
	}
	shutdown()
	if perr != nil {
		return perr
	}
	for _, err := range d.errs {
		if err != nil {
			return err
		}
	}
	if canceled == nil {
		// The demux is stream-global, so the reordering count is accounted
		// to target 0 rather than split; merge sums it back into the run
		// total. (On cancellation the stream was never drained, so there is
		// no count to collect.)
		reps[0].ReorderedArrivals = reordered
		if m := sims[0].met; m != nil && reordered != 0 {
			m.reorderedArrivals.Add(reordered)
		}
	}
	// Settle the paced metric flushes: after the last block the registry
	// must hold the pass's exact totals — on cancellation, the partial
	// totals of everything serviced so far.
	for t := range sims {
		sims[t].flushMetrics()
	}
	if err := closeSource(src); err != nil && canceled == nil {
		return err
	}
	return canceled
}

// append buffers one routed request into target t's partial block,
// flushing it when full.
func (d *demux) append(t int, r trace.Request) {
	blk := d.partial[t]
	if blk == nil {
		if d.free != nil {
			blk = <-d.free
		} else {
			blk = new(reqBlock)
		}
		d.partial[t] = blk
	}
	blk.reqs[blk.n] = r
	blk.n++
	if blk.n == reqBlockSize {
		d.flush(t)
	}
}

// closeSource closes a source that owns a resource (e.g. an MSR file).
// The built-in closers are idempotent, so the engine's belt-and-braces
// deferred close is safe.
func closeSource(src trace.Source) error {
	if c, ok := src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
