package ssdsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/trace"
)

// ReplayConfig parameterizes the sharded streaming replay engine.
type ReplayConfig struct {
	// Sim is the full-device configuration; the engine splits it into
	// per-shard sub-devices.
	Sim Config
	// Shards is the number of independent sub-devices (default 1). It
	// must divide Sim.Geo.Channels: each shard owns a disjoint set of
	// channels (and the chips, dies and planes behind them) plus its own
	// FTL partition, so shards share no mutable state and replay
	// concurrently.
	Shards int
	// ChunkRequests is the demux granularity of the streaming replay
	// (default 32768). Peak memory holds a small constant number of
	// chunks regardless of trace length.
	ChunkRequests int
	// CollectLatencies switches the report from the O(1)-memory
	// log-bucketed histogram (the default) to appending every read
	// latency, reproducing Sim.Run's exact-percentile output.
	CollectLatencies bool
	// Precondition makes a first pass over the trace that warms each
	// shard's FTL exactly like Sim.Precondition before the replay pass.
	Precondition bool
	// Metrics, when non-nil, attaches each shard's simulator to the
	// matching shard of the registry (the registry must have at least
	// Shards shards). It supersedes Sim.Obs, which the engine overwrites
	// per shard — a single Set shared across shards would break the
	// deterministic-merge contract. Everything published is
	// deterministic except the per-shard req/s gauges, which
	// Snapshot.Deterministic strips.
	Metrics *obs.Registry
	// Ctx, when non-nil, cancels a replay cooperatively (the CLIs wire
	// SIGINT/SIGTERM here): the replay pass stops at its next chunk
	// boundary, the precondition pass at its next batch, the paced
	// per-shard metric flushes are settled, and Replay returns the
	// merged partial report alongside the context's error — an
	// interrupt flushes what was serviced instead of dying mid-stream.
	Ctx context.Context
}

// defaultChunkRequests holds ~1 MiB of requests per in-flight chunk.
const defaultChunkRequests = 1 << 15

// Engine replays traces against a sharded SSD simulation. Requests are
// routed to shards by LPN (shard = first LPN mod Shards), every shard
// services its sub-stream on its own Sim, and the per-shard reports
// merge in shard order — so the output is byte-identical at any worker
// count, and a 1-shard engine reproduces Sim.Run exactly.
//
// An Engine is immutable configuration; each Replay call builds fresh
// shard state, so one Engine can replay many traces.
type Engine struct {
	cfg     ReplayConfig
	sampler RetrySampler
}

// NewEngine validates the configuration. Shards and ChunkRequests
// default to 1 and defaultChunkRequests when zero.
func NewEngine(cfg ReplayConfig, sampler RetrySampler) (*Engine, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("ssdsim: negative shard count %d", cfg.Shards)
	}
	if cfg.Sim.Geo.Channels%cfg.Shards != 0 {
		return nil, fmt.Errorf("ssdsim: %d shards do not divide %d channels",
			cfg.Shards, cfg.Sim.Geo.Channels)
	}
	if cfg.ChunkRequests == 0 {
		cfg.ChunkRequests = defaultChunkRequests
	}
	if cfg.ChunkRequests < 0 {
		return nil, fmt.Errorf("ssdsim: negative chunk size %d", cfg.ChunkRequests)
	}
	if cfg.Metrics != nil && cfg.Metrics.Shards() < cfg.Shards {
		return nil, fmt.Errorf("ssdsim: metrics registry has %d shards, engine needs %d",
			cfg.Metrics.Shards(), cfg.Shards)
	}
	sub := cfg.shardConfig(0)
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	if err := checkSampler(sub, sampler); err != nil {
		return nil, err
	}
	return &Engine{cfg: cfg, sampler: sampler}, nil
}

// shardConfig derives shard s's sub-device configuration: 1/Shards of
// the channels, and an RNG stream split from the seed with the same
// Mix-based scheme the experiment engine uses for its fan-out. A
// single-shard engine keeps the seed untouched so it reproduces Sim.Run
// bit for bit.
func (c ReplayConfig) shardConfig(s int) Config {
	sub := c.Sim
	sub.Geo.Channels = c.Sim.Geo.Channels / c.Shards
	if c.Shards > 1 {
		sub.Seed = mathx.Mix3(c.Sim.Seed, uint64(s), uint64(c.Shards))
	}
	sub.Obs = c.Metrics.Set(s)
	return sub
}

// shardGranule is the LPN-range interleaving unit (64 pages = 256 KiB):
// shards own round-robin granules of the logical space rather than
// single pages, so a multi-page request almost always falls inside one
// shard's range (mean spans are a few pages) and each shard's footprint
// stays ~1/Shards of the trace's. Per-page interleaving would put every
// spanned page in several shards' footprints and inflate per-shard
// space usage several-fold.
const shardGranule = 64

// shardOf routes a request by its first LPN's granule. The fine
// interleaving balances shards even on traces whose footprint is a few
// hot ranges; negative LPNs (malformed traces) route to shard 0, which
// services them exactly like the unsharded Sim would.
func (e *Engine) shardOf(lpn int64) int {
	s := (lpn / shardGranule) % int64(e.cfg.Shards)
	if s < 0 {
		return 0
	}
	return int(s)
}

// Replay streams the trace through the shards and returns the merged
// report. The opener is invoked once per pass (twice with
// Precondition), so it must yield identical streams on every call; a
// returned source that implements io.Closer is closed when its pass
// ends.
func (e *Engine) Replay(open trace.Opener) (*Report, error) {
	if open == nil {
		return nil, fmt.Errorf("ssdsim: nil trace opener")
	}
	sims := make([]*Sim, e.cfg.Shards)
	for s := range sims {
		sim, err := New(e.cfg.shardConfig(s), e.sampler)
		if err != nil {
			return nil, err
		}
		sims[s] = sim
	}
	reps := make([]*Report, len(sims))
	for s := range reps {
		reps[s] = e.newReport()
	}
	if e.cfg.Precondition {
		if err := e.preconditionPass(sims, open); err != nil {
			return nil, err
		}
	}
	busy := make([]float64, len(sims))
	var canceled error
	if err := e.replayPass(sims, reps, open, busy); err != nil {
		if cerr := e.ctxErr(); cerr != nil && errors.Is(err, cerr) {
			canceled = err // merge and return the partial report below
		} else {
			return nil, err
		}
	}
	if e.cfg.Metrics != nil {
		for s := range sims {
			if busy[s] > 0 {
				e.cfg.Metrics.Set(s).Gauge("ssdsim.shard_req_per_sec",
					"wall-clock replay throughput of this shard").
					Set(float64(reps[s].Requests) / busy[s])
			}
		}
	}
	out := e.newReport()
	for s := range sims {
		sims[s].flushCounters(reps[s])
		out.merge(reps[s])
	}
	out.finalize()
	return out, canceled
}

// ctxErr reports the configured context's cancellation state; a nil
// context never cancels.
func (e *Engine) ctxErr() error {
	if e.cfg.Ctx == nil {
		return nil
	}
	return e.cfg.Ctx.Err()
}

func (e *Engine) newReport() *Report {
	r := &Report{collect: e.cfg.CollectLatencies}
	if !e.cfg.CollectLatencies {
		r.hist = &mathx.LogHist{}
	}
	return r
}

// preconditionPass streams the trace once, deduplicating each shard's
// LPNs, then warms the shard FTLs concurrently. Per shard the write
// order is ascending unique — the same order Sim.Precondition uses —
// so a 1-shard pass is identical to it.
func (e *Engine) preconditionPass(sims []*Sim, open trace.Opener) error {
	src, err := open()
	if err != nil {
		return err
	}
	defer closeSource(src)
	deds := make([]lpnDedup, len(sims))
	for n := 0; ; n++ {
		// The warm-up pass has no partial result worth keeping, so a
		// cancelled precondition simply aborts (checked in batches — the
		// per-request cost of ctx.Err() would be measurable at replay scale).
		if n%4096 == 0 {
			if err := e.ctxErr(); err != nil {
				return err
			}
		}
		r, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		d := &deds[e.shardOf(r.LPN)]
		for p := 0; p < r.Pages; p++ {
			d.add(r.LPN + int64(p))
		}
	}
	if err := parallel.ForEachErr(len(sims), func(s int) error {
		deds[s].compact()
		for _, lpn := range deds[s].sorted {
			if _, err := sims[s].ftl.Write(lpn); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}
	return closeSource(src)
}

// chunkMsg carries one demuxed chunk from the producer goroutine to the
// replay loop: perShard[s] holds shard s's requests in stream order.
// err reports a trace failure discovered while filling the chunk.
type chunkMsg struct {
	perShard [][]trace.Request
	err      error
}

// replayPass pipelines trace decoding with replay: a producer goroutine
// reads the source and partitions requests into per-shard slices chunk
// by chunk, while the caller's goroutine replays each finished chunk
// across the shards through the worker pool. At most three chunks are
// in flight (one being filled, one queued, one replaying), so memory
// stays O(Shards + ChunkRequests) however long the trace is.
//
// Determinism: the demux depends only on the stream, each shard's
// requests are serviced in stream order on that shard's Sim, and chunks
// are replayed sequentially — the worker count only changes which
// goroutine runs a given (chunk, shard) pair, never any state it sees.
func (e *Engine) replayPass(sims []*Sim, reps []*Report, open trace.Opener, busy []float64) error {
	src, err := open()
	if err != nil {
		return err
	}
	defer closeSource(src)

	nShards := len(sims)
	chunks := make(chan chunkMsg, 1)
	recycle := make(chan [][]trace.Request, 2)
	done := make(chan struct{})
	defer close(done) // releases a producer blocked on send if we bail early

	// reordered is written by the producer when the stream drains cleanly
	// and read after chunks closes; the close is the happens-before edge.
	var reordered int64
	go func() {
		defer close(chunks)
		for {
			var per [][]trace.Request
			select {
			case per = <-recycle:
				for s := range per {
					per[s] = per[s][:0]
				}
			default:
				per = make([][]trace.Request, nShards)
			}
			n := 0
			var perr error
			for n < e.cfg.ChunkRequests {
				r, ok, err := src.Next()
				if err != nil {
					perr = err
					break
				}
				if !ok {
					break
				}
				s := e.shardOf(r.LPN)
				per[s] = append(per[s], r)
				n++
			}
			if n == 0 && perr == nil {
				// Clean end of trace: collect the source's reordering count
				// (streaming parsers that clamp out-of-order arrivals report
				// it; other sources simply lack the method).
				if rr, ok := src.(interface{ Reordered() int64 }); ok {
					reordered = rr.Reordered()
				}
				return
			}
			select {
			case chunks <- chunkMsg{perShard: per, err: perr}:
			case <-done:
				return
			}
			if perr != nil {
				return
			}
		}
	}()

	var canceled error
	for msg := range chunks {
		if msg.err != nil {
			return msg.err
		}
		// Cancellation is checked once per chunk: a canceled replay stops
		// here with every already-replayed chunk fully serviced, so the
		// partial report stays internally consistent.
		if err := e.ctxErr(); err != nil {
			canceled = err
			break
		}
		if err := parallel.ForEachErr(nShards, func(s int) error {
			if len(msg.perShard[s]) == 0 {
				return nil
			}
			start := time.Now()
			err := sims[s].replay(trace.Sliced(msg.perShard[s]), reps[s])
			busy[s] += time.Since(start).Seconds()
			return err
		}); err != nil {
			return err
		}
		select {
		case recycle <- msg.perShard:
		default:
		}
	}
	if canceled == nil {
		// The demux is stream-global, so the reordering count is accounted
		// to shard 0 rather than split; merge sums it back into the run
		// total. (On cancellation the producer never drained the stream, so
		// there is no count to collect.)
		reps[0].ReorderedArrivals = reordered
		if m := sims[0].met; m != nil && reordered != 0 {
			m.reorderedArrivals.Add(reordered)
		}
	}
	// Settle the paced metric flushes: after the last chunk the registry
	// must hold the pass's exact totals — on cancellation, the partial
	// totals of everything serviced so far.
	for s := range sims {
		sims[s].flushMetrics()
	}
	if err := closeSource(src); err != nil && canceled == nil {
		return err
	}
	return canceled
}

// closeSource closes a source that owns a resource (e.g. an MSR file).
// The built-in closers are idempotent, so the engine's belt-and-braces
// deferred close is safe.
func closeSource(src trace.Source) error {
	if c, ok := src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
