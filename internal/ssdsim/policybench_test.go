package ssdsim

import (
	"sync"
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/sentinel"
	"sentinel3d/internal/trace"
)

// Policy replay benchmarks: sentinel vs the offset-history cache, with
// retry pools measured on a real aged chip (not the synthetic
// benchSampler) and replayed over a saturated all-at-t0 burst so the
// simulated makespan is pure service capacity. The sim-req/s metric is
// fully deterministic — seeded pools, seeded trace, seeded sim — and CI
// gates ReplayHistoryPolicy/ReplaySentinelPolicy:sim-req/s >= 1.05: the
// history cache's first-shot reads must keep buying at least 5%
// simulated device throughput over plain sentinel.

// policyBench holds the measured pools; building them trains a sentinel
// model and samples the chip, so it runs once per process.
var policyBench struct {
	once     sync.Once
	err      error
	sentinel *EmpiricalSampler
	history  *EmpiricalSampler
}

func policyBenchSamplers() (sentinelPool, historyPool *EmpiricalSampler, err error) {
	pb := &policyBench
	pb.once.Do(func() {
		mkCfg := func(seed uint64) flash.Config {
			return flash.Config{
				Kind: flash.TLC, Blocks: 1, Layers: 16, WordlinesPerLayer: 2,
				CellsPerWordline: 16384, OOBFraction: 0.119, Seed: seed, CacheZ: true,
			}
		}
		layout := sentinel.Layout{Ratio: 0.02, Placement: sentinel.TailOOB}
		trainChip, err := flash.New(mkCfg(114))
		if err != nil {
			pb.err = err
			return
		}
		model, err := sentinel.Train(trainChip, sentinel.TrainConfig{
			Points: []sentinel.StressPoint{
				{PECycles: 0, Hours: 24, TempC: physics.RoomTempC},
				{PECycles: 1000, Hours: 2000, TempC: physics.RoomTempC},
				{PECycles: 3000, Hours: 2880, TempC: physics.RoomTempC},
				{PECycles: 5000, Hours: 720, TempC: physics.RoomTempC},
				{PECycles: 5000, Hours: 4380, TempC: physics.RoomTempC},
				{PECycles: 5000, Hours: physics.YearHours, TempC: physics.RoomTempC},
			},
			WordlinesPerPoint: 8, Layout: layout, PolyDegree: 5,
			MeasureReads: 2, Seed: mathx.Mix(114, 0x7ea1),
		})
		if err != nil {
			pb.err = err
			return
		}
		cfg := mkCfg(214)
		eng, err := sentinel.NewEngine(model, layout, sentinel.DefaultCalibrator(), cfg)
		if err != nil {
			pb.err = err
			return
		}
		chip, err := flash.New(cfg)
		if err != nil {
			pb.err = err
			return
		}
		nStates := chip.Coding().States()
		for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
			rng := mathx.NewRand(mathx.Mix3(214, 0xda7c, uint64(wl)))
			states := make([]uint8, cfg.CellsPerWordline)
			for i := range states {
				states[i] = uint8(rng.Intn(nStates))
			}
			eng.Prepare(states)
			if err := chip.ProgramStates(0, wl, states); err != nil {
				pb.err = err
				return
			}
		}
		chip.Cycle(0, 5000)
		chip.Age(0, physics.YearHours, physics.RoomTempC)
		ctl, err := retry.NewController(chip,
			ecc.CapabilityModel{FrameBits: 8192, T: 26}, retry.DefaultLatency(), 15)
		if err != nil {
			pb.err = err
			return
		}
		var wls []int
		for wl := 0; wl < cfg.WordlinesPerBlock(); wl += 2 {
			wls = append(wls, wl)
		}
		pb.sentinel, pb.err = BuildSampler(ctl, retry.NewSentinelPolicy(eng), 0, wls, 3, 0xb51)
		if pb.err != nil {
			return
		}
		cache, err := retry.NewHistCache(4, 64<<10, chip.Coding().NumVoltages(), eng.OffsetBound())
		if err != nil {
			pb.err = err
			return
		}
		retry.WarmHistCache(cache, chip, eng, []int{0}, wls[0], 0x9157)
		hist := retry.NewHistoryPolicy(cache, retry.NewDefaultTable(chip, 1.2), false)
		pb.history, pb.err = BuildSampler(ctl, hist, 0, wls, 3, 0xb52)
	})
	return pb.sentinel, pb.history, pb.err
}

const policyBenchRequests = 20_000

// benchPolicyReplay replays the saturated burst under one pool and
// reports the simulated device throughput alongside wall-clock numbers.
func benchPolicyReplay(b *testing.B, pool *EmpiricalSampler) {
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	spec := benchSpec(cfg.Geo)
	reqs, err := trace.Generate(spec, policyBenchRequests, 7)
	if err != nil {
		b.Fatal(err)
	}
	for i := range reqs {
		reqs[i].ArriveUS = 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(cfg, pool)
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Precondition(reqs); err != nil {
			b.Fatal(err)
		}
		rep, err := sim.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		if mk := sim.Makespan(); mk > 0 {
			b.ReportMetric(float64(rep.Requests)/(mk*1e-6), "sim-req/s")
		}
	}
}

// BenchmarkReplaySentinelPolicy is the plain-sentinel baseline.
func BenchmarkReplaySentinelPolicy(b *testing.B) {
	sent, _, err := policyBenchSamplers()
	if err != nil {
		b.Fatal(err)
	}
	benchPolicyReplay(b, sent)
}

// BenchmarkReplayHistoryPolicy replays under the warmed offset-history
// cache pool; its sim-req/s is gated against the sentinel baseline.
func BenchmarkReplayHistoryPolicy(b *testing.B) {
	_, hist, err := policyBenchSamplers()
	if err != nil {
		b.Fatal(err)
	}
	benchPolicyReplay(b, hist)
}
