package ssdsim

import (
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
)

// simMetrics is one shard's instrumentation state. The replay hot path
// must stay allocation-free and add at most a few nanoseconds per
// request, so nothing here touches shared memory per read: counters
// accumulate in plain fields and histograms in local mathx.LogHists,
// all owned by the shard's single replaying goroutine, and flush()
// publishes the deltas into the registry cells at chunk boundaries.
// Chunk boundaries are produced by the engine's single demux goroutine,
// so what gets published — like everything else in the replay — is a
// pure function of the trace, not of the worker count. The slow-read
// ring is the one per-read registry touch, and costs one atomic load
// once warm (see SlowRing.Rejects).
//
// A nil *simMetrics (observability off) makes every hook a no-op.
type simMetrics struct {
	reads, writes     *obs.Counter
	retries           *obs.Counter
	auxSenses         *obs.Counter
	uncorrectable     *obs.Counter
	fallbacks         *obs.Counter
	unmapped          *obs.Counter
	reorderedArrivals *obs.Counter
	queueWait         *obs.Hist
	readLat           *obs.Hist
	ring              *obs.SlowRing

	// Local accumulators, flushed as deltas.
	dReads, dWrites, dRetries, dAux      int64
	dUncorr, dFallback, dUnmapped        int64
	queueCur, queuePrev, latCur, latPrev mathx.LogHist
	seq                                  int64 // page-read sequence, for slow records
	drains                               int64 // chunk drains since the last flush
}

// metricsFlushChunks paces the histogram flush: publishing diffs the
// full bucket arrays (cost proportional to their size, not to the
// samples), so flushing every chunk drain was measurable at replay
// rates. Every 8th drain keeps scrapes fresh within ~250k requests at
// the default chunking while making the flush cost negligible; the
// pacing counts drains, so it is as deterministic as the chunking.
const metricsFlushChunks = 8

func newSimMetrics(set *obs.Set) *simMetrics {
	if set == nil {
		return nil
	}
	return &simMetrics{
		reads:             set.Counter("ssdsim.read_requests", "read requests completed"),
		writes:            set.Counter("ssdsim.write_requests", "write requests completed"),
		retries:           set.Counter("ssdsim.retries", "chip-level re-read attempts"),
		auxSenses:         set.Counter("ssdsim.aux_senses", "auxiliary single-voltage senses"),
		uncorrectable:     set.Counter("ssdsim.uncorrectable_reads", "page reads failed back to the host"),
		fallbacks:         set.Counter("ssdsim.fallback_reads", "page reads serviced in degraded mode"),
		unmapped:          set.Counter("ssdsim.unmapped_reads", "page reads of never-written LPNs"),
		reorderedArrivals: set.Counter("ssdsim.reordered_arrivals", "trace records with out-of-order timestamps, clamped on replay"),
		queueWait:         set.Hist("ssdsim.queue_wait_us", "per-page-read die + channel queueing, µs"),
		readLat:           set.Hist("ssdsim.read_latency_us", "read request latency, µs"),
		ring:              set.SlowRing(),
	}
}

// pageRead accounts one flash page read. wait is the time the read
// spent queued behind the die and channel; the remaining arguments
// describe the read for the slow-trace record.
func (m *simMetrics) pageRead(out *RetryOutcome, lpn int64, plane, block, page int, wait, sense, xfer, total float64) {
	if m == nil {
		return
	}
	m.dRetries += int64(out.Retries)
	m.dAux += int64(out.AuxSenses)
	if out.Uncorrectable {
		m.dUncorr++
	}
	if out.UsedFallback {
		m.dFallback++
	}
	m.queueCur.Add(wait)
	m.seq++
	if !m.ring.Rejects(total) {
		m.ring.Admit(obs.SlowRead{
			Seq:            m.seq,
			LPN:            lpn,
			Plane:          plane,
			Block:          block,
			Page:           page,
			Retries:        out.Retries,
			AuxSenses:      out.AuxSenses,
			VoltageOffsets: out.Offsets,
			QueueUS:        wait,
			SenseUS:        sense,
			XferUS:         xfer,
			TotalUS:        total,
			Uncorrectable:  out.Uncorrectable,
			Fallback:       out.UsedFallback,
		})
	}
}

func (m *simMetrics) unmappedRead() {
	if m == nil {
		return
	}
	m.dUnmapped++
	m.seq++
	m.queueCur.Add(0)
}

func (m *simMetrics) readDone(lat float64) {
	if m == nil {
		return
	}
	m.dReads++
	m.latCur.Add(lat)
}

func (m *simMetrics) writeDone() {
	if m == nil {
		return
	}
	m.dWrites++
}

// chunkDrained is the paced flush called by the shard's replaying
// goroutine each time a sub-trace drains; every metricsFlushChunks-th
// drain publishes. The owner must still call flush once at end of
// replay so the registry holds the exact totals.
func (m *simMetrics) chunkDrained() {
	if m == nil {
		return
	}
	m.drains++
	if m.drains%metricsFlushChunks == 0 {
		m.flush()
	}
}

// flush publishes the accumulated deltas into the registry cells and
// rearms the accumulators. Scrapes between flushes see consistent,
// deterministic prefixes of the shard's stream.
func (m *simMetrics) flush() {
	if m == nil {
		return
	}
	m.reads.Add(m.dReads)
	m.writes.Add(m.dWrites)
	m.retries.Add(m.dRetries)
	m.auxSenses.Add(m.dAux)
	m.uncorrectable.Add(m.dUncorr)
	m.fallbacks.Add(m.dFallback)
	m.unmapped.Add(m.dUnmapped)
	m.dReads, m.dWrites, m.dRetries, m.dAux = 0, 0, 0, 0
	m.dUncorr, m.dFallback, m.dUnmapped = 0, 0, 0
	m.queueWait.Flush(&m.queueCur, &m.queuePrev)
	m.queuePrev = m.queueCur
	m.readLat.Flush(&m.latCur, &m.latPrev)
	m.latPrev = m.latCur
}
