// Package ssdsim is a trace-driven SSD simulator in the mould of SSDSim
// (Hu et al.): requests are split into page operations, routed through a
// page-mapped FTL onto a multi-channel/die/plane geometry, and serviced
// under a two-resource (die sensing, channel transfer) latency model in
// which a read's service time depends on its retry count.
//
// Retry counts come from a RetrySampler built empirically on the
// threshold-voltage chip simulator for each read policy, which is how the
// paper's Figure 14 connects chip-level retry behaviour to system-level
// read latency.
package ssdsim

import (
	"fmt"
	"slices"

	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/trace"
)

// RetryOutcome is the observable cost of one chip-level read.
type RetryOutcome struct {
	// Retries is the number of re-read attempts after the first read.
	Retries int
	// AuxSenses is the number of auxiliary single-voltage reads.
	AuxSenses int
	// UsedFallback records that the read degraded from its primary
	// inference path to the static table (retry.Result.UsedFallback).
	UsedFallback bool
	// Uncorrectable records that ECC never decoded within the retry
	// budget; the SSD returns a media error for such a read.
	Uncorrectable bool
	// Offsets is the final per-boundary read-voltage offset vector of
	// the measured chip-level read. The simulator's latency model never
	// reads it; the slow-read trace (see internal/obs) reports it so a
	// retained record shows which voltages the read ended on.
	Offsets []float64
}

// RetrySampler yields retry outcomes for reads of a given page type
// (0 = LSB ... bits-1 = MSB).
type RetrySampler interface {
	Sample(pageType int, rng *mathx.Rand) RetryOutcome
}

// FixedSampler returns the same outcome for every read; useful for
// baselines and tests.
type FixedSampler struct{ Outcome RetryOutcome }

// Sample implements RetrySampler.
func (f FixedSampler) Sample(int, *mathx.Rand) RetryOutcome { return f.Outcome }

// EmpiricalSampler draws uniformly from per-page-type outcome pools
// measured on the chip simulator.
type EmpiricalSampler struct {
	// PerPage[p] holds the measured outcomes for page type p.
	PerPage [][]RetryOutcome
}

// pool validates the page type in one place for every accessor: an
// out-of-range page type is a wiring bug between the sampler and the
// simulator's bits-per-cell setting, and silently wrapping it (as Sample
// once did) misattributes LSB statistics to MSB pages.
func (e *EmpiricalSampler) pool(pageType int) []RetryOutcome {
	if pageType < 0 || pageType >= len(e.PerPage) {
		panic(fmt.Sprintf("ssdsim: page type %d outside sampler's %d pools",
			pageType, len(e.PerPage)))
	}
	return e.PerPage[pageType]
}

// PageTypes returns the number of page types the sampler covers.
func (e *EmpiricalSampler) PageTypes() int { return len(e.PerPage) }

// Sample implements RetrySampler.
func (e *EmpiricalSampler) Sample(pageType int, rng *mathx.Rand) RetryOutcome {
	pool := e.pool(pageType)
	if len(pool) == 0 {
		return RetryOutcome{}
	}
	return pool[rng.Intn(len(pool))]
}

// zeroOutcome backs sampleRef's empty-pool return.
var zeroOutcome RetryOutcome

// sampleRef is Sample without the outcome copy: it returns a pointer
// into the pool (treat as read-only). It consumes exactly the same RNG
// draws as Sample, so the two are interchangeable mid-stream. The
// page-type validation that Sample routes through pool() is skipped —
// checkSampler pinned PageTypes == Bits at construction and the
// caller's page-type table never exceeds Bits — which keeps the whole
// draw inlinable.
func (e *EmpiricalSampler) sampleRef(pageType int, rng *mathx.Rand) *RetryOutcome {
	pool := e.PerPage[pageType]
	if len(pool) == 0 {
		return &zeroOutcome
	}
	return &pool[rng.Intn(len(pool))]
}

// MeanRetries returns the average retry count of page type p's pool.
func (e *EmpiricalSampler) MeanRetries(p int) float64 {
	pool := e.pool(p)
	if len(pool) == 0 {
		return 0
	}
	s := 0
	for _, o := range pool {
		s += o.Retries
	}
	return float64(s) / float64(len(pool))
}

// UncorrectableRate returns the fraction of page type p's pool that ended
// uncorrectable.
func (e *EmpiricalSampler) UncorrectableRate(p int) float64 {
	pool := e.pool(p)
	if len(pool) == 0 {
		return 0
	}
	n := 0
	for _, o := range pool {
		if o.Uncorrectable {
			n++
		}
	}
	return float64(n) / float64(len(pool))
}

// BuildSampler measures retry outcomes on a chip through a retry
// controller and policy: every page of every listed wordline is read
// reps times. The resulting pools feed the trace-driven simulation.
// Wordlines are measured concurrently; the pools are assembled in wls
// order so the sampler is identical at any worker count.
func BuildSampler(ctl *retry.Controller, pol retry.Policy, b int, wls []int, reps int, seed uint64) (*EmpiricalSampler, error) {
	if reps < 1 {
		return nil, fmt.Errorf("ssdsim: reps must be positive")
	}
	bits := ctl.Chip.Coding().Bits()
	perWL, err := parallel.MapErr(len(wls), func(i int) ([][]RetryOutcome, error) {
		wl := wls[i]
		pools := make([][]RetryOutcome, bits)
		for p := 0; p < bits; p++ {
			for rep := 0; rep < reps; rep++ {
				res := ctl.Read(b, wl, p, pol, mathx.Mix4(seed, uint64(wl), uint64(p), uint64(rep)))
				if res.Err != nil {
					// Bad address or unprogrammed wordline: the controller
					// reports it, so no pre-checks are needed here.
					return nil, fmt.Errorf("ssdsim: %w", res.Err)
				}
				pools[p] = append(pools[p], RetryOutcome{
					Retries:       res.Retries,
					AuxSenses:     res.AuxSenses,
					UsedFallback:  res.UsedFallback,
					Uncorrectable: res.Uncorrectable,
					Offsets:       append([]float64(nil), res.FinalOffsets...),
				})
			}
		}
		return pools, nil
	})
	if err != nil {
		return nil, err
	}
	out := &EmpiricalSampler{PerPage: make([][]RetryOutcome, bits)}
	for _, pools := range perWL {
		for p := 0; p < bits; p++ {
			out.PerPage[p] = append(out.PerPage[p], pools[p]...)
		}
	}
	return out, nil
}

// Config parameterizes a simulation run.
type Config struct {
	// Geo is the SSD geometry.
	Geo ftl.Geometry
	// Lat is the chip-level latency model shared with the retry layer.
	Lat retry.LatencyModel
	// Bits per cell: page type of physical page i is i % Bits.
	Bits int
	// ProgramUS is the page program time; EraseUS the block erase time.
	ProgramUS float64
	EraseUS   float64
	// Seed drives retry sampling.
	Seed uint64
	// MaxLPN, when positive, is the highest logical page the trace can
	// touch. It is purely a performance hint: the FTL sizes a dense
	// mapping array from it (LPNs above the bound fall back to the map)
	// and the precondition pass deduplicates with a bitmap instead of a
	// sort. Reports are byte-identical with and without it. The replay
	// engine fills it automatically from sources that know their bound
	// (the synthetic generator, the binary trace format).
	MaxLPN int64
	// PEFaults optionally injects program/erase failures into the FTL
	// (see internal/fault); retired blocks are counted in the report.
	PEFaults ftl.PEFaultModel
	// Obs, when non-nil, attaches this simulator (and its FTL) to one
	// shard of an observability registry. Nil keeps the replay loop
	// free of instrumentation beyond one branch per request.
	Obs *obs.Set
	// Life, when non-nil, enables dynamic per-block aging: stress
	// evolves during the replay from trace time, FTL erases and the
	// temperature schedule, and a background calibration scheduler
	// competes with host reads for die time. Nil replays frozen at the
	// sampler's measured stress point, exactly as before. The pointed-to
	// config is read-only and may be shared across engine targets.
	Life *LifetimeConfig
}

// DefaultConfig returns a TLC SSD configuration.
func DefaultConfig() Config {
	return Config{
		Geo:       ftl.DefaultGeometry(),
		Lat:       retry.DefaultLatency(),
		Bits:      3,
		ProgramUS: 700,
		EraseUS:   5000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geo.Validate(); err != nil {
		return err
	}
	if err := c.Lat.Validate(); err != nil {
		return err
	}
	if c.Bits < 2 || c.Bits > 4 {
		return fmt.Errorf("ssdsim: bits %d out of [2,4]", c.Bits)
	}
	if c.Geo.PagesPerBlock%c.Bits != 0 {
		return fmt.Errorf("ssdsim: pages per block %d not divisible by %d bits",
			c.Geo.PagesPerBlock, c.Bits)
	}
	if c.ProgramUS <= 0 || c.EraseUS <= 0 {
		return fmt.Errorf("ssdsim: non-positive program/erase time")
	}
	if c.Life != nil {
		if err := c.Life.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// levelsOf returns the number of read voltages a page type applies under
// the inverted-Gray coding (1, 2, 4, 8 for pages 0..3).
func levelsOf(pageType int) int { return 1 << pageType }

// Report aggregates a run's results.
type Report struct {
	Requests int
	Reads    int
	Writes   int
	// ReadLatencies holds every read request's latency in replay order,
	// µs. Sim.Run (and the engine with CollectLatencies) fills it and
	// derives exact percentiles from it; in the engine's default
	// histogram mode it is nil and the percentiles are bucket-resolution
	// (see mathx.LogHist), keeping memory O(shards) in the request
	// count.
	ReadLatencies []float64
	MeanReadUS    float64
	P95ReadUS     float64
	P99ReadUS     float64
	MeanWriteUS   float64
	TotalRetries  int64
	GCWrites      int64
	// UncorrectableReads counts page-level reads the device had to fail
	// back to the host (ECC hard failures after the full retry budget).
	// Requests span one or more pages, so this can exceed Reads.
	UncorrectableReads int64
	// FallbackReads counts page-level reads serviced in degraded mode
	// (the policy abandoned its primary inference path mid-read).
	FallbackReads int64
	// RetiredBlocks counts blocks the FTL took out of service after
	// program/erase failures during the run (including preconditioning).
	RetiredBlocks int64
	// Life summarizes the dynamic-aging machinery when Config.Life was
	// set (zero value otherwise). It is deliberately NOT part of
	// ReportSummary: the frozen replay cells' golden digests pin the
	// summary's rendering, so lifetime statistics travel beside it.
	Life LifetimeStats
	// UnmappedReads counts page-level reads of never-written LPNs,
	// serviced from the mapping table at LatencyModel.MapLookup cost
	// without touching flash.
	UnmappedReads int64
	// ReorderedArrivals counts trace records whose raw timestamp ran
	// backwards and whose arrival the streaming parser clamped to the
	// running maximum (see trace.MSRSource). Zero for in-order traces
	// and for sources that do not report reordering.
	ReorderedArrivals int64
	// PerDevice holds one summary per fleet device, in device order,
	// when the replay engine ran with Devices > 1; nil otherwise (a
	// single-device replay is byte-identical to the pre-fleet engine,
	// including this field). Per-device rows never carry the latency
	// vector — the merged report owns it.
	PerDevice []ReportSummary

	// Accumulator state. collect appends read latencies for the exact
	// percentile path; hist records them into the log-bucketed histogram
	// instead. Exactly one is active per run.
	collect  bool
	hist     *mathx.LogHist
	writeSum float64
}

// ReportSummary is the exported, deterministic view of a Report: the
// statistics, without the accumulator internals. Golden digests hash
// the %v rendering of result payloads, so payloads must not reach the
// Report struct itself — its unexported histogram pointer would print
// as a heap address and change every run.
type ReportSummary struct {
	Requests           int
	Reads              int
	Writes             int
	ReadLatencies      []float64
	MeanReadUS         float64
	P95ReadUS          float64
	P99ReadUS          float64
	MeanWriteUS        float64
	TotalRetries       int64
	GCWrites           int64
	UncorrectableReads int64
	FallbackReads      int64
	RetiredBlocks      int64
	UnmappedReads      int64
	ReorderedArrivals  int64
}

// Summary extracts the deterministic statistics view.
func (r *Report) Summary() ReportSummary {
	return ReportSummary{
		Requests:           r.Requests,
		Reads:              r.Reads,
		Writes:             r.Writes,
		ReadLatencies:      r.ReadLatencies,
		MeanReadUS:         r.MeanReadUS,
		P95ReadUS:          r.P95ReadUS,
		P99ReadUS:          r.P99ReadUS,
		MeanWriteUS:        r.MeanWriteUS,
		TotalRetries:       r.TotalRetries,
		GCWrites:           r.GCWrites,
		UncorrectableReads: r.UncorrectableReads,
		FallbackReads:      r.FallbackReads,
		RetiredBlocks:      r.RetiredBlocks,
		UnmappedReads:      r.UnmappedReads,
		ReorderedArrivals:  r.ReorderedArrivals,
	}
}

// recordRead accounts one completed read request.
func (r *Report) recordRead(lat float64) {
	r.Reads++
	if r.collect {
		r.ReadLatencies = append(r.ReadLatencies, lat)
	}
	if r.hist != nil {
		r.hist.Add(lat)
	}
}

// recordWrite accounts one completed write request.
func (r *Report) recordWrite(lat float64) {
	r.Writes++
	r.writeSum += lat
}

// merge folds a shard's report into r. The engine calls it in shard
// order, which keeps every floating-point accumulation — and therefore
// the merged statistics — identical at any worker count.
func (r *Report) merge(o *Report) {
	r.Requests += o.Requests
	r.Reads += o.Reads
	r.Writes += o.Writes
	r.ReadLatencies = append(r.ReadLatencies, o.ReadLatencies...)
	r.writeSum += o.writeSum
	if r.hist != nil && o.hist != nil {
		r.hist.Merge(o.hist)
	}
	r.TotalRetries += o.TotalRetries
	r.GCWrites += o.GCWrites
	r.UncorrectableReads += o.UncorrectableReads
	r.FallbackReads += o.FallbackReads
	r.RetiredBlocks += o.RetiredBlocks
	r.UnmappedReads += o.UnmappedReads
	r.ReorderedArrivals += o.ReorderedArrivals
	r.Life.mergeLife(o.Life)
}

func (r *Report) finalize() {
	switch {
	case len(r.ReadLatencies) > 0:
		r.MeanReadUS = mathx.Mean(r.ReadLatencies)
		r.P95ReadUS = mathx.Percentile(r.ReadLatencies, 95)
		r.P99ReadUS = mathx.Percentile(r.ReadLatencies, 99)
	case r.hist != nil && r.hist.Count() > 0:
		r.MeanReadUS = r.hist.Mean()
		r.P95ReadUS = r.hist.Percentile(95)
		r.P99ReadUS = r.hist.Percentile(99)
	}
	if r.Writes > 0 {
		r.MeanWriteUS = r.writeSum / float64(r.Writes)
	}
}

// Sim runs traces against one SSD instance.
type Sim struct {
	cfg     Config
	ftl     *ftl.FTL
	sampler RetrySampler
	rng     *mathx.Rand
	met     *simMetrics

	dieFree  []float64
	chanFree []float64

	// Hot-path caches. esampler devirtualizes the common sampler so the
	// per-read draw is a direct call; planeDie/planeChan/pageType replace
	// the per-page divisions with table lookups; the latency sums fold
	// cfg.Lat's per-read arithmetic into constants (computed exactly as
	// the inline expressions did, so latencies stay bit-identical); wres
	// and sout are reused per-call scratch (one per Sim — Sims are
	// single-goroutine by contract).
	esampler    *EmpiricalSampler
	planeDie    []int32
	planeChan   []int32
	pageType    []uint8
	senseByType [4]float64 // SenseBase + levels(pt)*SensePerLevel
	auxSenseUS  float64    // SenseBase + SensePerLevel
	xferBurstUS float64    // Transfer + ECCDecode
	migProgUS   float64    // GC migration: MSB-page read + program
	wres        ftl.WriteResult
	sout        RetryOutcome

	// Lifetime state (nil when Config.Life is nil — the frozen path pays
	// one nil check per read). lsampler is the devirtualized grid
	// sampler; ssampler the interface fallback for custom StressSamplers.
	life     *lifetime
	lsampler *LifetimeSampler
	ssampler StressSampler
}

// checkSampler verifies the sampler exists and matches the config's
// bits-per-cell setting.
func checkSampler(cfg Config, sampler RetrySampler) error {
	if sampler == nil {
		return fmt.Errorf("ssdsim: nil sampler")
	}
	if es, ok := sampler.(*EmpiricalSampler); ok && es.PageTypes() != cfg.Bits {
		return fmt.Errorf("ssdsim: sampler covers %d page types, config has %d bits",
			es.PageTypes(), cfg.Bits)
	}
	if ls, ok := sampler.(*LifetimeSampler); ok {
		if err := ls.Validate(); err != nil {
			return err
		}
		if ls.PageTypes() != cfg.Bits {
			return fmt.Errorf("ssdsim: lifetime sampler covers %d page types, config has %d bits",
				ls.PageTypes(), cfg.Bits)
		}
	}
	return nil
}

// New builds a simulator.
func New(cfg Config, sampler RetrySampler) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkSampler(cfg, sampler); err != nil {
		return nil, err
	}
	f, err := ftl.New(cfg.Geo)
	if err != nil {
		return nil, err
	}
	if cfg.MaxLPN > 0 {
		f.SetLPNBound(cfg.MaxLPN)
	}
	f.Faults = cfg.PEFaults
	f.Obs = ftl.NewMetrics(cfg.Obs)
	s := &Sim{
		cfg:      cfg,
		ftl:      f,
		sampler:  sampler,
		rng:      mathx.NewRand(cfg.Seed ^ 0x55d51a1),
		met:      newSimMetrics(cfg.Obs),
		dieFree:  make([]float64, cfg.Geo.Dies()),
		chanFree: make([]float64, cfg.Geo.Channels),
	}
	s.esampler, _ = sampler.(*EmpiricalSampler)
	if cfg.Life != nil {
		s.life = newLifetime(cfg)
		f.Wear = s.life // unarmed until beginReplay: precondition churn is not wear
		s.lsampler, _ = sampler.(*LifetimeSampler)
		if s.lsampler == nil {
			s.ssampler, _ = sampler.(StressSampler)
		}
	}
	planes := cfg.Geo.Planes()
	s.planeDie = make([]int32, planes)
	s.planeChan = make([]int32, planes)
	for p := 0; p < planes; p++ {
		s.planeDie[p] = int32(cfg.Geo.Die(p))
		s.planeChan[p] = int32(cfg.Geo.Channel(p))
	}
	s.pageType = make([]uint8, cfg.Geo.PagesPerBlock)
	for p := range s.pageType {
		s.pageType[p] = uint8(p % cfg.Bits)
	}
	for pt := 0; pt < cfg.Bits; pt++ {
		s.senseByType[pt] = cfg.Lat.SenseBase + float64(levelsOf(pt))*cfg.Lat.SensePerLevel
	}
	s.auxSenseUS = cfg.Lat.SenseBase + cfg.Lat.SensePerLevel
	s.xferBurstUS = cfg.Lat.Transfer + cfg.Lat.ECCDecode
	migRead := cfg.Lat.SenseBase + float64(levelsOf(cfg.Bits-1))*cfg.Lat.SensePerLevel
	s.migProgUS = migRead + cfg.ProgramUS
	return s, nil
}

// lpnDedup accumulates LPNs and yields them in ascending unique order
// while keeping memory bounded by the unique count (plus one batch),
// not the trace length. With a known LPN bound it degenerates to a
// bitmap — insert is one OR and the visit order falls out of the word
// scan, no sorting at all; out-of-bound LPNs (a wrong hint, negative
// addresses) spill to the sorted-slice path, so the bound is only ever
// a hint. Without a bound, batches are sorted individually and merged
// into the deduplicated slice, which replaces the old re-sort of the
// whole accumulated set on every fold.
type lpnDedup struct {
	bits   *mathx.Bitset // non-nil when the LPN bound is known
	sorted []int64       // ascending, unique; spill-only in bitmap mode
	batch  []int64
}

// newLPNDedup sizes the dedup for LPNs in [0, maxLPN]; maxLPN <= 0
// means unknown (sorted mode).
func newLPNDedup(maxLPN int64) lpnDedup {
	if maxLPN > 0 {
		return lpnDedup{bits: mathx.NewBitset(maxLPN + 1)}
	}
	return lpnDedup{}
}

// lpnDedupBatch bounds the unsorted batch; 1<<18 int64s is 2 MiB.
const lpnDedupBatch = 1 << 18

func (d *lpnDedup) add(lpn int64) {
	if d.bits != nil && uint64(lpn) < uint64(d.bits.Cap()) {
		d.bits.Set(lpn)
		return
	}
	if d.batch == nil {
		d.batch = make([]int64, 0, lpnDedupBatch)
	}
	d.batch = append(d.batch, lpn)
	if len(d.batch) >= lpnDedupBatch {
		d.compact()
	}
}

// addRange inserts the n consecutive LPNs starting at lpn — one
// request's page span. In bitmap mode with the whole span in range it
// collapses to word-wise ORs; otherwise it falls back to per-page adds.
func (d *lpnDedup) addRange(lpn int64, n int) {
	if d.bits != nil && lpn >= 0 && n > 0 && lpn+int64(n) <= d.bits.Cap() {
		d.bits.SetRange(lpn, int64(n))
		return
	}
	for p := 0; p < n; p++ {
		d.add(lpn + int64(p))
	}
}

// compact folds the batch into the sorted slice: the batch is sorted on
// its own and merged with the (already sorted) accumulated set, so each
// fold costs O(B log B + U) instead of re-sorting all U accumulated
// LPNs every time.
func (d *lpnDedup) compact() {
	if len(d.batch) == 0 {
		return
	}
	slices.Sort(d.batch)
	batch := slices.Compact(d.batch)
	if len(d.sorted) == 0 {
		d.sorted = append(d.sorted, batch...)
		d.batch = d.batch[:0]
		return
	}
	merged := make([]int64, 0, len(d.sorted)+len(batch))
	i, j := 0, 0
	for i < len(d.sorted) && j < len(batch) {
		a, b := d.sorted[i], batch[j]
		switch {
		case a < b:
			merged = append(merged, a)
			i++
		case b < a:
			merged = append(merged, b)
			j++
		default:
			merged = append(merged, a)
			i, j = i+1, j+1
		}
	}
	merged = append(merged, d.sorted[i:]...)
	merged = append(merged, batch[j:]...)
	d.sorted = merged
	d.batch = d.batch[:0]
}

// each yields every accumulated LPN exactly once in ascending order —
// the same order whichever mode accumulated them. In bitmap mode the
// spill slice holds only out-of-universe values (negatives below it,
// over-bound above it), so the three runs concatenate in order.
func (d *lpnDedup) each(fn func(lpn int64) error) error {
	d.compact()
	i := 0
	if d.bits != nil {
		for i < len(d.sorted) && d.sorted[i] < 0 {
			if err := fn(d.sorted[i]); err != nil {
				return err
			}
			i++
		}
		if err := d.bits.VisitErr(fn); err != nil {
			return err
		}
	}
	for ; i < len(d.sorted); i++ {
		if err := fn(d.sorted[i]); err != nil {
			return err
		}
	}
	return nil
}

// preconditionBitmapMaxLPN caps the bound the slice Precondition will
// derive on its own: a 1<<27-page universe is a 16 MiB bitmap. Sparser
// traces use the sort path (or set Config.MaxLPN explicitly).
const preconditionBitmapMaxLPN = 1 << 27

// Precondition maps every LPN a trace will read, so reads hit valid data
// (SSDSim warms the device the same way). It costs no simulated time.
// The trace is in hand, so the LPN bound is scanned from it and compact
// traces dedup with a bitmap instead of a sort.
func (s *Sim) Precondition(reqs []trace.Request) error {
	bound := s.cfg.MaxLPN
	if bound == 0 {
		var max int64 = -1
		for i := range reqs {
			if last := reqs[i].LPN + int64(reqs[i].Pages) - 1; last > max {
				max = last
			}
		}
		if max >= 0 && max < preconditionBitmapMaxLPN {
			bound = max
		}
	}
	return s.preconditionFrom(trace.Sliced(reqs), bound)
}

// PreconditionSource is Precondition over a streamed trace: it writes
// the trace's LPNs in ascending unique order (the same order the
// map-based dedup produced) without materializing the request stream.
// Sources that know their LPN bound (the generator, the binary format)
// get the bitmap dedup automatically.
func (s *Sim) PreconditionSource(src trace.Source) error {
	bound := s.cfg.MaxLPN
	if bound == 0 {
		if m, ok := src.(interface{ MaxLPN() int64 }); ok {
			bound = m.MaxLPN()
		}
	}
	return s.preconditionFrom(src, bound)
}

func (s *Sim) preconditionFrom(src trace.Source, maxLPN int64) error {
	d := newLPNDedup(maxLPN)
	for {
		r, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		d.addRange(r.LPN, r.Pages)
	}
	return d.each(func(lpn int64) error {
		return s.ftl.WriteInto(lpn, &s.wres)
	})
}

// Run services the requests in arrival order and returns the report
// with full latency collection and exact percentiles. Within a request,
// page operations are issued in order; the request completes when its
// last page does. For multi-million-request traces prefer the sharded
// streaming Engine, which bounds memory and parallelizes across shards.
func (s *Sim) Run(reqs []trace.Request) (*Report, error) {
	rep := &Report{collect: true}
	s.beginReplay()
	if err := s.replay(trace.Sliced(reqs), rep); err != nil {
		return nil, err
	}
	s.flushMetrics()
	s.flushCounters(rep)
	rep.finalize()
	return rep, nil
}

// replay services src's requests in order, accumulating into rep. It
// neither reads the FTL's cumulative counters nor finalizes, so the
// engine can call it once per demuxed chunk and settle the report at
// the end of the run. Metric deltas publish on a paced schedule keyed
// to source drains (the engine's chunking), with an unconditional
// flushMetrics at end of run settling the exact totals.
func (s *Sim) replay(src trace.Source, rep *Report) error {
	for {
		r, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			s.met.chunkDrained()
			s.ftl.FlushObs()
			return nil
		}
		if err := s.service(r, rep); err != nil {
			return err
		}
	}
}

// replaySlice is replay over a materialized block of requests: the
// engine's block handoff recycles fixed-size arrays through a freelist,
// and servicing them directly skips a Source interface call per
// request. Draining a block counts as one chunk drain for the paced
// metric flush, exactly like replay's source drain — so the flush
// schedule stays a pure function of the demuxed stream.
func (s *Sim) replaySlice(reqs []trace.Request, rep *Report) error {
	for i := range reqs {
		if err := s.service(reqs[i], rep); err != nil {
			return err
		}
	}
	s.met.chunkDrained()
	s.ftl.FlushObs()
	return nil
}

// flushMetrics force-publishes every accumulated metric delta; callers
// invoke it once after the last replay call so the registry holds the
// run's exact totals.
func (s *Sim) flushMetrics() {
	s.met.flush()
	s.ftl.FlushObs()
}

// service runs one request to completion.
func (s *Sim) service(r trace.Request, rep *Report) error {
	rep.Requests++
	end := r.ArriveUS
	for p := 0; p < r.Pages; p++ {
		lpn := r.LPN + int64(p)
		var done float64
		var err error
		if r.Op == trace.Read {
			done, err = s.readPage(r.ArriveUS, lpn, rep)
		} else {
			done, err = s.writePage(r.ArriveUS, lpn)
		}
		if err != nil {
			return err
		}
		if done > end {
			end = done
		}
	}
	lat := end - r.ArriveUS
	if r.Op == trace.Read {
		rep.recordRead(lat)
		s.met.readDone(lat)
	} else {
		rep.recordWrite(lat)
		s.met.writeDone()
	}
	return nil
}

// beginReplay marks the end of preconditioning: from here on, erase
// wear counts against the per-block lifetime state. Sim.Run and the
// engine's replay pass call it; preconditioning happens before it.
func (s *Sim) beginReplay() {
	if s.life != nil {
		s.life.armed = true
	}
}

// flushCounters copies the FTL's cumulative counters (which include
// preconditioning work) into the report.
func (s *Sim) flushCounters(rep *Report) {
	rep.GCWrites = s.ftl.GCWrites
	rep.RetiredBlocks = s.ftl.BadBlocks
	if s.life != nil {
		s.life.finish(rep, s.cfg.Obs, s.Makespan())
	}
}

// readPage services one page read: sense on the die (repeated per retry),
// then transfer per attempt on the channel.
func (s *Sim) readPage(arrive float64, lpn int64, rep *Report) (float64, error) {
	ppn, ok := s.ftl.Translate(lpn)
	if !ok {
		// Read of never-written data: serviced from the mapping table
		// without touching flash (returns zeros), at the latency model's
		// documented lookup cost. It completes through the same
		// request-completion path as flash reads and is counted so
		// reports distinguish it from media service.
		rep.UnmappedReads++
		s.met.unmappedRead()
		return arrive + s.cfg.Lat.MapLookup, nil
	}
	pageType := int(s.pageType[ppn.Page])
	die := s.planeDie[ppn.Plane]
	var out *RetryOutcome
	if s.life != nil {
		// Dynamic aging: charge any due calibration to the die, then
		// draw from the pool matching the block's *current* stress.
		s.beforeOp(die, arrive)
		switch {
		case s.lsampler != nil:
			// Devirtualized grid path: resolve the block's current grid
			// cell through the per-block expiry cache, skipping the
			// Stress construction entirely.
			out = s.life.pool(s.lsampler, ppn.Plane, ppn.Block).sampleRef(pageType, s.rng)
		case s.ssampler != nil:
			st := s.life.readStress(ppn.Plane, ppn.Block)
			s.sout = s.ssampler.SampleStressed(pageType, st, s.rng)
			out = &s.sout
		case s.esampler != nil:
			s.life.readStress(ppn.Plane, ppn.Block) // keep disturb accounting
			out = s.esampler.sampleRef(pageType, s.rng)
		default:
			s.life.readStress(ppn.Plane, ppn.Block)
			s.sout = s.sampler.Sample(pageType, s.rng)
			out = &s.sout
		}
	} else if s.esampler != nil {
		out = s.esampler.sampleRef(pageType, s.rng)
	} else {
		s.sout = s.sampler.Sample(pageType, s.rng)
		out = &s.sout
	}
	rep.TotalRetries += int64(out.Retries)
	if out.Uncorrectable {
		rep.UncorrectableReads++
	}
	if out.UsedFallback {
		rep.FallbackReads++
	}
	attempts := float64(out.Retries + 1)
	aux := float64(out.AuxSenses)
	dieTime := attempts*s.senseByType[pageType] + aux*s.auxSenseUS
	chanTime := attempts*s.xferBurstUS + aux*s.cfg.Lat.Transfer

	ch := s.planeChan[ppn.Plane]
	senseStart := maxf(arrive, s.dieFree[die])
	senseEnd := senseStart + dieTime
	s.dieFree[die] = senseEnd
	xferStart := maxf(senseEnd, s.chanFree[ch])
	xferEnd := xferStart + chanTime
	s.chanFree[ch] = xferEnd
	if s.met != nil {
		wait := (senseStart - arrive) + (xferStart - senseEnd)
		s.met.pageRead(out, lpn, ppn.Plane, ppn.Block, ppn.Page,
			wait, dieTime, chanTime, xferEnd-arrive)
	}
	return xferEnd, nil
}

// writePage services one page write: transfer on the channel, program on
// the die; GC work (migrations, erases) occupies the die.
func (s *Sim) writePage(arrive float64, lpn int64) (float64, error) {
	res := &s.wres
	if s.life != nil {
		// Advance the retention clock before the FTL write so any GC
		// erase it triggers stamps the block with the current device time.
		s.life.tickUS(arrive)
	}
	if err := s.ftl.WriteInto(lpn, res); err != nil {
		return 0, err
	}
	die := s.planeDie[res.Target.Plane]
	ch := s.planeChan[res.Target.Plane]
	if l := s.life; l != nil && l.calibOn {
		s.chargeCalib(die, arrive) // programs queue behind due calibrations too
	}

	xferStart := maxf(arrive, s.chanFree[ch])
	xferEnd := xferStart + s.cfg.Lat.Transfer
	s.chanFree[ch] = xferEnd

	dieTime := s.cfg.ProgramUS
	// GC migrations: an internal read (mid page cost) plus a program per
	// page, and the erase.
	if n := len(res.Migrations); n > 0 {
		dieTime += float64(n) * s.migProgUS
	}
	dieTime += float64(res.ErasedBlocks) * s.cfg.EraseUS

	progStart := maxf(xferEnd, s.dieFree[die])
	progEnd := progStart + dieTime
	s.dieFree[die] = progEnd
	return progEnd, nil
}

// Makespan returns the simulated completion time of all flash work
// issued so far: the maximum die/channel busy-until time. For a
// saturating burst, requests/Makespan is the device's simulated
// throughput — the policy-sensitive counterpart of wall-clock req/s,
// which only measures the host-side replay loop and is identical for
// any two samplers of the same pool sizes.
func (s *Sim) Makespan() float64 {
	var m float64
	for _, t := range s.dieFree {
		if t > m {
			m = t
		}
	}
	for _, t := range s.chanFree {
		if t > m {
			m = t
		}
	}
	return m
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
