package ssdsim

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"

	"sentinel3d/internal/ftl"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/trace"
)

// engineGeometry is a 4-channel device so the engine tests can shard
// 1/2/4 ways while staying small enough to replay in milliseconds.
func engineGeometry() ftl.Geometry {
	return ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 1, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 96,
	}
}

func engineConfig() Config {
	cfg := DefaultConfig()
	cfg.Geo = engineGeometry()
	cfg.Seed = 11
	return cfg
}

// engineTrace returns a mixed read/write trace that fits the test
// geometry (with room for every shard's partition).
func engineTrace(t testing.TB, n int) []trace.Request {
	t.Helper()
	spec, err := trace.WorkloadByName("hm_0")
	if err != nil {
		t.Fatal(err)
	}
	spec.WorkingSetPages = 8000
	reqs, err := trace.Generate(spec, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// TestEngineGoldenSingleShard: a 1-shard engine with CollectLatencies
// must reproduce Precondition+Run on a plain Sim field for field,
// including the exact latency vector and percentiles.
func TestEngineGoldenSingleShard(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 5000)

	sim, err := New(cfg, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(ReplayConfig{
		Sim: cfg, Shards: 1, CollectLatencies: true, Precondition: true,
	}, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Replay(trace.SliceOpener(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-shard engine diverged from Sim.Run:\n got %+v\nwant %+v", got, want)
	}
	if got.Reads == 0 || got.Writes == 0 {
		t.Fatalf("degenerate trace: %d reads, %d writes", got.Reads, got.Writes)
	}
}

// TestEngineWorkerDeterminism: the merged report must be identical at
// every worker count and at any chunk size, in both latency modes.
func TestEngineWorkerDeterminism(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 20000)

	for _, collect := range []bool{false, true} {
		var base *Report
		for _, run := range []struct {
			workers, chunk int
		}{
			{1, 0}, {4, 0}, {8, 0}, {4, 7}, // chunk 7 forces many partial chunks
		} {
			eng, err := NewEngine(ReplayConfig{
				Sim: cfg, Shards: 4, ChunkRequests: run.chunk,
				CollectLatencies: collect, Precondition: true,
			}, benchSampler())
			if err != nil {
				t.Fatal(err)
			}
			prev := parallel.SetWorkers(run.workers)
			rep, err := eng.Replay(trace.SliceOpener(reqs))
			parallel.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = rep
				continue
			}
			if !reflect.DeepEqual(rep, base) {
				t.Fatalf("collect=%v workers=%d chunk=%d: report diverged:\n got %+v\nwant %+v",
					collect, run.workers, run.chunk, rep, base)
			}
		}
		if base.Requests != len(reqs) {
			t.Fatalf("collect=%v: %d requests serviced, want %d", collect, base.Requests, len(reqs))
		}
	}
}

// TestEngineMillionRequestDeterminism is the scale acceptance check: a
// 1M-request streamed trace over the fully-sharded 8-channel device,
// replayed with metrics enabled, must produce byte-identical reports
// and metric renderings at every worker count, without ever
// materializing the trace. Skipped under -short.
func TestEngineMillionRequestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replays 1M requests four times")
	}
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	spec := benchSpec(cfg.Geo)
	const n = 1_000_000
	var base *Report
	var baseProm string
	for _, w := range []int{1, 2, 4, 8} {
		reg := obs.NewRegistry(8)
		reg.KeepSlowest(32)
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 8, Precondition: true, Metrics: reg,
		}, benchSampler())
		if err != nil {
			t.Fatal(err)
		}
		prev := parallel.SetWorkers(w)
		rep, err := eng.Replay(trace.GeneratorOpener(spec, n, 7))
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		prom := reg.Snapshot().Deterministic().Render()
		if base == nil {
			base, baseProm = rep, prom
			if rep.Requests != n {
				t.Fatalf("%d requests serviced, want %d", rep.Requests, n)
			}
			continue
		}
		if !reflect.DeepEqual(rep, base) {
			t.Fatalf("report diverged at %d workers:\n got %+v\nwant %+v", w, rep, base)
		}
		if prom != baseProm {
			t.Fatalf("metric rendering diverged at %d workers", w)
		}
	}
}

// TestEngineHistogramMode: the default (histogram) mode must keep the
// mean essentially exact, land p95/p99 within one bucket width of the
// nearest-rank order statistic, and hold no per-request state.
func TestEngineHistogramMode(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 20000)
	run := func(collect bool) *Report {
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 2, CollectLatencies: collect, Precondition: true,
		}, benchSampler())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Replay(trace.SliceOpener(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	exact, hist := run(true), run(false)

	if hist.ReadLatencies != nil {
		t.Fatalf("histogram mode retained %d latencies", len(hist.ReadLatencies))
	}
	if len(exact.ReadLatencies) != exact.Reads || hist.Reads != exact.Reads ||
		hist.Requests != exact.Requests || hist.Writes != exact.Writes {
		t.Fatalf("count mismatch: hist %+v vs exact %+v", hist, exact)
	}
	if relDiff(hist.MeanReadUS, exact.MeanReadUS) > 1e-9 {
		t.Fatalf("mean %v, want %v", hist.MeanReadUS, exact.MeanReadUS)
	}
	if hist.MeanWriteUS != exact.MeanWriteUS {
		t.Fatalf("write mean %v, want %v", hist.MeanWriteUS, exact.MeanWriteUS)
	}
	// Histogram quantiles: within [stat, stat*WidthFactor] of the
	// nearest-rank order statistic.
	sorted := slices.Clone(exact.ReadLatencies)
	slices.Sort(sorted)
	wf := hist.hist.WidthFactor()
	for _, c := range []struct {
		p    float64
		got  float64
		name string
	}{{95, hist.P95ReadUS, "p95"}, {99, hist.P99ReadUS, "p99"}} {
		rank := int(math.Ceil(c.p / 100 * float64(len(sorted))))
		stat := sorted[rank-1]
		if c.got < stat || c.got > stat*wf {
			t.Errorf("%s = %v outside [%v, %v]", c.name, c.got, stat, stat*wf)
		}
	}
}

// TestEngineStreamedSources: replaying from a streaming generator or an
// MSR file must match replaying the materialized slice of the same
// trace — the opener is consulted twice (precondition + replay) and the
// engine closes file-backed sources.
func TestEngineStreamedSources(t *testing.T) {
	cfg := engineConfig()
	newEngine := func() *Engine {
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 2, CollectLatencies: true, Precondition: true,
		}, benchSampler())
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	spec, err := trace.WorkloadByName("hm_0")
	if err != nil {
		t.Fatal(err)
	}
	spec.WorkingSetPages = 8000
	reqs, err := trace.Generate(spec, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	want, err := newEngine().Replay(trace.SliceOpener(reqs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := newEngine().Replay(trace.GeneratorOpener(spec, 5000, 42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("generator stream diverged from slice:\n got %+v\nwant %+v", got, want)
	}

	// MSR file with monotone timestamps, so file order == sorted order.
	csv := "128166372003061629,hm,0,Read,8192,8192,100\n" +
		"128166372003061639,hm,0,Write,40960,4096,100\n" +
		"128166372003061659,hm,0,Read,4096,16384,100\n" +
		"128166372003061679,hm,0,Read,8192,4096,100\n"
	path := filepath.Join(t.TempDir(), "hm.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := trace.OpenMSR(path)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	want, err = newEngine().Replay(trace.SliceOpener(parsed))
	if err != nil {
		t.Fatal(err)
	}
	got, err = newEngine().Replay(trace.FileOpener(path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MSR stream diverged from slice:\n got %+v\nwant %+v", got, want)
	}
}

// TestEngineErrors: configuration and trace failures surface as errors.
func TestEngineErrors(t *testing.T) {
	cfg := engineConfig()
	if _, err := NewEngine(ReplayConfig{Sim: cfg, Shards: 3}, benchSampler()); err == nil {
		t.Error("accepted 3 shards over 4 channels")
	}
	if _, err := NewEngine(ReplayConfig{Sim: cfg, Shards: -2}, benchSampler()); err == nil {
		t.Error("accepted negative shard count")
	}
	if _, err := NewEngine(ReplayConfig{Sim: cfg, ChunkRequests: -1}, benchSampler()); err == nil {
		t.Error("accepted negative chunk size")
	}
	if _, err := NewEngine(ReplayConfig{Sim: cfg}, nil); err == nil {
		t.Error("accepted nil sampler")
	}

	eng, err := NewEngine(ReplayConfig{Sim: cfg, Shards: 2, Precondition: true}, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Replay(nil); err == nil {
		t.Error("accepted nil opener")
	}
	path := filepath.Join(t.TempDir(), "bad.csv")
	bad := "128166372003061629,hm,0,Read,8192,8192,100\nnot,a,valid,line,x,y\n"
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Replay(trace.FileOpener(path)); err == nil {
		t.Error("bad MSR line did not fail the replay")
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d / m
}

// cancelAfterSource cancels a context after emitting a fixed number of
// requests — a deterministic stand-in for SIGINT arriving mid-stream.
type cancelAfterSource struct {
	src    trace.Source
	cancel context.CancelFunc
	after  int
	n      int
}

func (c *cancelAfterSource) Next() (trace.Request, bool, error) {
	if c.n == c.after {
		c.cancel()
	}
	c.n++
	return c.src.Next()
}

// TestEngineReplayCanceled: cancellation stops the replay at a chunk
// boundary and Replay still returns the merged partial report alongside
// the context error — the CLI interrupt path depends on both halves.
func TestEngineReplayCanceled(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 2000)

	// Pre-canceled: nothing is serviced, but the (empty) report is
	// still merged and returned with the error.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	eng, err := NewEngine(ReplayConfig{Sim: cfg, Shards: 2, Ctx: pre}, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Replay(trace.SliceOpener(reqs))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled replay: err %v, want context.Canceled", err)
	}
	if rep == nil || rep.Requests != 0 {
		t.Fatalf("pre-canceled replay report: %+v", rep)
	}

	// Mid-stream: the source fires the cancel after 200 requests. Every
	// chunk replayed before the cancel is complete (so the serviced
	// count is a multiple of the chunk size) and chunks demuxed after it
	// never run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng2, err := NewEngine(ReplayConfig{
		Sim: cfg, Shards: 2, ChunkRequests: 64, Ctx: ctx,
	}, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	open := func() (trace.Source, error) {
		return &cancelAfterSource{src: trace.Sliced(reqs), cancel: cancel, after: 200}, nil
	}
	rep2, err := eng2.Replay(open)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel: err %v, want context.Canceled", err)
	}
	if rep2 == nil || rep2.Requests >= len(reqs) {
		t.Fatalf("canceled replay serviced the whole trace: %+v", rep2)
	}
	if rep2.Requests%64 != 0 {
		t.Fatalf("partial report cut inside a chunk: %d requests", rep2.Requests)
	}

	// A canceled precondition pass aborts before any replay state exists.
	eng3, err := NewEngine(ReplayConfig{Sim: cfg, Precondition: true, Ctx: pre}, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng3.Replay(trace.SliceOpener(reqs)); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled precondition: err %v", err)
	}
}
