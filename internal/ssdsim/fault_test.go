package ssdsim

import (
	"strings"
	"testing"

	"sentinel3d/internal/fault"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/trace"
)

func TestSamplerRejectsOutOfRangePageType(t *testing.T) {
	e := &EmpiricalSampler{PerPage: [][]RetryOutcome{{{Retries: 1}}, {{Retries: 2}}}}
	rng := mathx.NewRand(1)
	for _, p := range []int{-1, 2, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sample(%d) did not panic", p)
				}
			}()
			e.Sample(p, rng)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MeanRetries(%d) did not panic", p)
				}
			}()
			e.MeanRetries(p)
		}()
	}
}

func TestNewRejectsMismatchedSampler(t *testing.T) {
	// TLC config (3 bits) with a 2-pool sampler: the old mod-wrap made
	// this silently sample MSB reads from the LSB pool.
	e := &EmpiricalSampler{PerPage: [][]RetryOutcome{{{Retries: 1}}, {{Retries: 2}}}}
	if _, err := New(testSSDConfig(), e); err == nil ||
		!strings.Contains(err.Error(), "page types") {
		t.Fatalf("accepted 2-pool sampler for 3-bit config (err=%v)", err)
	}
	e3 := &EmpiricalSampler{PerPage: make([][]RetryOutcome, 3)}
	if _, err := New(testSSDConfig(), e3); err != nil {
		t.Fatal(err)
	}
}

func TestReportPropagatesDegradedOutcomes(t *testing.T) {
	spec, _ := trace.WorkloadByName("hm_0")
	spec.WorkingSetPages = 1 << 10
	reqs, _ := trace.Generate(spec, 2000, 3)
	s, err := New(testSSDConfig(),
		FixedSampler{RetryOutcome{Retries: 3, UsedFallback: true, Uncorrectable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Every mapped page read carries the degraded flags, so both counters
	// must be positive and equal; they are bounded by the total number of
	// page-level reads issued (requests can span several pages).
	if rep.UncorrectableReads == 0 || rep.FallbackReads != rep.UncorrectableReads {
		t.Fatalf("degraded counters not propagated: %+v", rep)
	}
	var readPages int64
	for _, r := range reqs {
		if r.Op == trace.Read {
			readPages += int64(r.Pages)
		}
	}
	if rep.UncorrectableReads > readPages {
		t.Fatalf("uncorrectable reads %d exceed %d page reads",
			rep.UncorrectableReads, readPages)
	}
}

func TestPEFaultsRetireBlocksInReport(t *testing.T) {
	spec, _ := trace.WorkloadByName("wdev_0")
	spec.WorkingSetPages = 1 << 10
	reqs, _ := trace.Generate(spec, 4000, 4)
	cfg := testSSDConfig()
	cfg.PEFaults = fault.MustNew(fault.Profile{
		Seed:               5,
		FTLProgramFailRate: 0.0005,
		FTLEraseFailRate:   0.002,
	})
	run := func() (int64, float64) {
		s, err := New(cfg, FixedSampler{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Precondition(reqs); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.RetiredBlocks, rep.MeanReadUS
	}
	retired, mean := run()
	if retired == 0 {
		t.Fatal("faulty medium retired no blocks")
	}
	retired2, mean2 := run()
	if retired != retired2 || mean != mean2 {
		t.Fatalf("faulted run not deterministic: (%d,%v) vs (%d,%v)",
			retired, mean, retired2, mean2)
	}
}
