package ssdsim

import (
	"math"
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/trace"
)

func testSSDConfig() Config {
	cfg := DefaultConfig()
	cfg.Geo = ftl.Geometry{
		Channels: 2, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 16, PagesPerBlock: 96,
	}
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testSSDConfig()
	bad.Bits = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted 5 bits")
	}
	bad = testSSDConfig()
	bad.Geo.PagesPerBlock = 97
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted non-divisible pages per block")
	}
	bad = testSSDConfig()
	bad.ProgramUS = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero program time")
	}
	if _, err := New(testSSDConfig(), nil); err == nil {
		t.Fatal("accepted nil sampler")
	}
}

func TestReadLatencyScalesWithRetries(t *testing.T) {
	spec, _ := trace.WorkloadByName("mds_0")
	spec.WorkingSetPages = 1 << 12
	reqs, err := trace.Generate(spec, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(retries int) float64 {
		s, err := New(testSSDConfig(), FixedSampler{RetryOutcome{Retries: retries}})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Precondition(reqs); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanReadUS
	}
	l0, l6 := run(0), run(6)
	if l6 <= l0*2 {
		t.Fatalf("6 retries (%v µs) should be far slower than 0 (%v µs)", l6, l0)
	}
}

func TestReportStatistics(t *testing.T) {
	spec, _ := trace.WorkloadByName("hm_0")
	spec.WorkingSetPages = 1 << 12
	reqs, _ := trace.Generate(spec, 5000, 2)
	s, err := New(testSSDConfig(), FixedSampler{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 5000 || rep.Reads+rep.Writes != 5000 {
		t.Fatalf("counts wrong: %+v", rep)
	}
	if len(rep.ReadLatencies) != rep.Reads {
		t.Fatal("latency list length mismatch")
	}
	if rep.MeanReadUS <= 0 || rep.P99ReadUS < rep.P95ReadUS ||
		rep.P95ReadUS < rep.MeanReadUS*0.2 {
		t.Fatalf("stats implausible: %+v", rep)
	}
	if rep.MeanWriteUS <= 0 {
		t.Fatal("no write latency recorded")
	}
}

func TestUnmappedReadCheap(t *testing.T) {
	cfg := testSSDConfig()
	s, err := New(cfg, FixedSampler{RetryOutcome{Retries: 9}})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []trace.Request{{ArriveUS: 0, Op: trace.Read, LPN: 1234, Pages: 2}}
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Both pages are unmapped: serviced at the latency model's documented
	// mapping-lookup cost, counted, and free of retry accounting.
	if rep.ReadLatencies[0] != cfg.Lat.MapLookup {
		t.Fatalf("unmapped read cost %v µs, want MapLookup %v",
			rep.ReadLatencies[0], cfg.Lat.MapLookup)
	}
	if rep.UnmappedReads != 2 {
		t.Fatalf("UnmappedReads = %d, want 2", rep.UnmappedReads)
	}
	if rep.TotalRetries != 0 {
		t.Fatalf("unmapped reads accrued %d retries", rep.TotalRetries)
	}
}

// TestPreconditionSortedDedup pins the sorted-slice dedup to the
// map-based one it replaced: ascending unique write order, so the FTL
// state (and any later read's timing) is unchanged.
func TestPreconditionSortedDedup(t *testing.T) {
	reqs := []trace.Request{
		{Op: trace.Write, LPN: 90, Pages: 3},
		{Op: trace.Read, LPN: 5, Pages: 2},
		{Op: trace.Read, LPN: 91, Pages: 2}, // overlaps the first request
		{Op: trace.Read, LPN: 5, Pages: 1},  // exact duplicate
	}
	s, err := New(testSSDConfig(), FixedSampler{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 6, 90, 91, 92}
	if got := s.ftl.HostWrites; got != int64(len(want)) {
		t.Fatalf("%d host writes, want %d (duplicates not removed?)", got, len(want))
	}
	// Sorted write order means sorted LPNs land on consecutive
	// round-robin planes; the first LPN (5) must be on plane 0.
	for i, lpn := range want {
		ppn, ok := s.ftl.Translate(lpn)
		if !ok {
			t.Fatalf("LPN %d unmapped after preconditioning", lpn)
		}
		if ppn.Plane != i%s.cfg.Geo.Planes() {
			t.Fatalf("LPN %d on plane %d; write order not ascending-unique", lpn, ppn.Plane)
		}
	}
}

// TestPreconditionSourceStreams: the streaming variant must produce the
// same device state as the slice path, batch boundaries included.
func TestPreconditionSourceStreams(t *testing.T) {
	spec, _ := trace.WorkloadByName("hm_0")
	spec.WorkingSetPages = 1 << 12
	reqs, _ := trace.Generate(spec, 3000, 9)
	a, _ := New(testSSDConfig(), FixedSampler{})
	b, _ := New(testSSDConfig(), FixedSampler{})
	if err := a.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	if err := b.PreconditionSource(trace.Sliced(reqs)); err != nil {
		t.Fatal(err)
	}
	if a.ftl.HostWrites != b.ftl.HostWrites {
		t.Fatalf("host writes differ: %d vs %d", a.ftl.HostWrites, b.ftl.HostWrites)
	}
	for _, r := range reqs {
		for p := 0; p < r.Pages; p++ {
			pa, oka := a.ftl.Translate(r.LPN + int64(p))
			pb, okb := b.ftl.Translate(r.LPN + int64(p))
			if oka != okb || pa != pb {
				t.Fatalf("LPN %d mapped differently: %v/%v vs %v/%v",
					r.LPN+int64(p), pa, oka, pb, okb)
			}
		}
	}
}

func TestQueueingDelaysBursts(t *testing.T) {
	// Two back-to-back reads of the same page must queue on the die.
	s, err := New(testSSDConfig(), FixedSampler{})
	if err != nil {
		t.Fatal(err)
	}
	pre := []trace.Request{{Op: trace.Read, LPN: 0, Pages: 1}}
	if err := s.Precondition(pre); err != nil {
		t.Fatal(err)
	}
	reqs := []trace.Request{
		{ArriveUS: 0, Op: trace.Read, LPN: 0, Pages: 1},
		{ArriveUS: 0, Op: trace.Read, LPN: 0, Pages: 1},
	}
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReadLatencies[1] <= rep.ReadLatencies[0] {
		t.Fatalf("no queueing: %v then %v", rep.ReadLatencies[0], rep.ReadLatencies[1])
	}
}

func TestEmpiricalSampler(t *testing.T) {
	e := &EmpiricalSampler{PerPage: [][]RetryOutcome{
		{{Retries: 0}},
		{{Retries: 1}, {Retries: 3}},
		{{Retries: 5}},
	}}
	rng := mathx.NewRand(1)
	if got := e.Sample(0, rng); got.Retries != 0 {
		t.Fatal("page 0 sample wrong")
	}
	if m := e.MeanRetries(1); m != 2 {
		t.Fatalf("mean = %v, want 2", m)
	}
	for i := 0; i < 20; i++ {
		r := e.Sample(1, rng).Retries
		if r != 1 && r != 3 {
			t.Fatalf("unexpected sample %d", r)
		}
	}
	// Empty pool yields zero outcome.
	empty := &EmpiricalSampler{PerPage: [][]RetryOutcome{{}}}
	if got := empty.Sample(0, rng); got.Retries != 0 {
		t.Fatal("empty pool sample wrong")
	}
}

func TestBuildSamplerFromChip(t *testing.T) {
	// Integration: measure a real chip's retry distribution and confirm
	// the sampler reflects aging.
	cfg := flash.Config{
		Kind: flash.TLC, Blocks: 1, Layers: 8, WordlinesPerLayer: 2,
		CellsPerWordline: 8192, OOBFraction: 0.119, Seed: 11, CacheZ: true,
	}
	chip := flash.MustNew(cfg)
	rng := mathx.NewRand(1)
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		chip.ProgramRandom(0, wl, rng)
	}
	chip.Cycle(0, 5000)
	chip.Age(0, physics.YearHours, physics.RoomTempC)
	ctl, err := retry.NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 14},
		retry.DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	pol := retry.NewDefaultTable(chip, 2)
	sampler, err := BuildSampler(ctl, pol, 0, []int{0, 1, 2, 3}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampler.PerPage) != 3 {
		t.Fatalf("%d page pools", len(sampler.PerPage))
	}
	for p, pool := range sampler.PerPage {
		if len(pool) != 8 {
			t.Fatalf("page %d pool size %d", p, len(pool))
		}
	}
	// MSB pages should retry at least as much as LSB pages on average.
	if sampler.MeanRetries(2) < sampler.MeanRetries(0) {
		t.Fatalf("MSB mean %v < LSB mean %v",
			sampler.MeanRetries(2), sampler.MeanRetries(0))
	}
	// Reps must be positive; unprogrammed wordlines rejected.
	if _, err := BuildSampler(ctl, pol, 0, []int{0}, 0, 1); err == nil {
		t.Fatal("accepted zero reps")
	}
	empty := flash.MustNew(cfg)
	ctl2, _ := retry.NewController(empty, ecc.DefaultCapability(), retry.DefaultLatency(), 5)
	if _, err := BuildSampler(ctl2, pol, 0, []int{0}, 1, 1); err == nil {
		t.Fatal("accepted unprogrammed wordline")
	}
}

func TestDeterministicRuns(t *testing.T) {
	spec, _ := trace.WorkloadByName("wdev_0")
	spec.WorkingSetPages = 1 << 12
	reqs, _ := trace.Generate(spec, 2000, 5)
	run := func() float64 {
		s, err := New(testSSDConfig(), FixedSampler{RetryOutcome{Retries: 2}})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Precondition(reqs); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanReadUS
	}
	if a, b := run(), run(); math.Abs(a-b) > 1e-9 {
		t.Fatalf("runs differ: %v vs %v", a, b)
	}
}

func TestLevelsOf(t *testing.T) {
	want := []int{1, 2, 4, 8}
	for p, w := range want {
		if levelsOf(p) != w {
			t.Fatalf("levelsOf(%d) = %d, want %d", p, levelsOf(p), w)
		}
	}
}
