package ssdsim

import (
	"flag"
	"reflect"
	"slices"
	"testing"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/trace"
)

// longRun gates the 100M-request determinism smoke:
//
//	go test ./internal/ssdsim/ -run LongFleet -long -timeout 30m
var longRun = flag.Bool("long", false, "run the 100M-request fleet determinism smoke")

// TestEngineFleetSingleDeviceGolden: a 1-device fleet — with the fleet
// knobs set explicitly, in both striped and replicated modes — must
// reproduce the pre-fleet engine's report byte for byte, including the
// absence of PerDevice rows. This pins the Devices=1 fast path to the
// PR4 goldens: the stripe map degenerates to the identity and no fleet
// state may leak into the output.
func TestEngineFleetSingleDeviceGolden(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 5000)

	run := func(rc ReplayConfig) *Report {
		t.Helper()
		eng, err := NewEngine(rc, benchSampler())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Replay(trace.SliceOpener(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	want := run(ReplayConfig{
		Sim: cfg, Shards: 2, CollectLatencies: true, Precondition: true,
	})
	if want.PerDevice != nil {
		t.Fatalf("single-device report grew PerDevice rows: %+v", want.PerDevice)
	}
	for _, rc := range []ReplayConfig{
		{Sim: cfg, Shards: 2, Devices: 1, CollectLatencies: true, Precondition: true},
		{Sim: cfg, Shards: 2, Devices: 1, StripeGranule: 16, CollectLatencies: true, Precondition: true},
		{Sim: cfg, Shards: 2, Devices: 1, Replicate: true, CollectLatencies: true, Precondition: true},
	} {
		got := run(rc)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("1-device fleet (granule=%d replicate=%v) diverged from the single-device engine:\n got %+v\nwant %+v",
				rc.StripeGranule, rc.Replicate, got, want)
		}
	}
}

// TestEngineFleetDeviceWorkerDeterminism: for every device count the
// merged report, the per-device rows and the deterministic metric
// rendering must be byte-identical at every worker count — the fleet
// merge is in fixed (device, shard) order, never arrival order.
func TestEngineFleetDeviceWorkerDeterminism(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 20000)

	for _, devices := range []int{1, 2, 4} {
		var base *Report
		var baseProm string
		for _, w := range []int{1, 4, 8} {
			reg := obs.NewRegistry(devices * 2)
			reg.KeepSlowest(16)
			eng, err := NewEngine(ReplayConfig{
				Sim: cfg, Shards: 2, Devices: devices,
				Precondition: true, Metrics: reg,
			}, benchSampler())
			if err != nil {
				t.Fatal(err)
			}
			prev := parallel.SetWorkers(w)
			rep, err := eng.Replay(trace.SliceOpener(reqs))
			parallel.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			prom := reg.Snapshot().Deterministic().Render()
			if base == nil {
				base, baseProm = rep, prom
				continue
			}
			if !reflect.DeepEqual(rep, base) {
				t.Fatalf("devices=%d: report diverged at %d workers:\n got %+v\nwant %+v",
					devices, w, rep, base)
			}
			if prom != baseProm {
				t.Fatalf("devices=%d: metric rendering diverged at %d workers", devices, w)
			}
		}
		checkFleetReport(t, base, devices, len(reqs))
	}
}

// checkFleetReport validates the PerDevice contract: one summary per
// device whose counters sum to the merged report, no latency vectors,
// and every device actually serviced work (the stripe map balances the
// fleet even on hot-range traces).
func checkFleetReport(t *testing.T, rep *Report, devices, requests int) {
	t.Helper()
	if rep.Requests != requests {
		t.Fatalf("devices=%d: %d requests serviced, want %d", devices, rep.Requests, requests)
	}
	if devices == 1 {
		if rep.PerDevice != nil {
			t.Fatalf("single-device report grew PerDevice rows")
		}
		return
	}
	if len(rep.PerDevice) != devices {
		t.Fatalf("PerDevice has %d rows, want %d", len(rep.PerDevice), devices)
	}
	var reqs, reads, writes, gcw int
	for d, sum := range rep.PerDevice {
		if sum.ReadLatencies != nil {
			t.Fatalf("device %d row retained %d latencies", d, len(sum.ReadLatencies))
		}
		if sum.Requests == 0 {
			t.Fatalf("device %d serviced nothing — stripe map is unbalanced", d)
		}
		reqs += sum.Requests
		reads += sum.Reads
		writes += sum.Writes
		gcw += int(sum.GCWrites)
	}
	if reqs != rep.Requests || reads != rep.Reads || writes != rep.Writes ||
		gcw != int(rep.GCWrites) {
		t.Fatalf("PerDevice rows (req=%d rd=%d wr=%d gc=%d) do not sum to the merged report (req=%d rd=%d wr=%d gc=%d)",
			reqs, reads, writes, gcw, rep.Requests, rep.Reads, rep.Writes, rep.GCWrites)
	}
}

// TestEngineFleetReplicated: replication fans every write out to all
// devices while reads round-robin — so against a striped (or 1-device)
// run of the same trace, reads match and writes multiply by the fleet
// size.
func TestEngineFleetReplicated(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 10000)

	run := func(devices int, replicate bool) *Report {
		t.Helper()
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 2, Devices: devices, Replicate: replicate,
			Precondition: true,
		}, benchSampler())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Replay(trace.SliceOpener(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(1, false)
	const devices = 2
	repl := run(devices, true)

	if repl.Reads != base.Reads {
		t.Fatalf("replicated reads %d, want %d (round-robin must not duplicate)", repl.Reads, base.Reads)
	}
	if repl.Writes != devices*base.Writes {
		t.Fatalf("replicated writes %d, want %d (fan-out to every device)", repl.Writes, devices*base.Writes)
	}
	if repl.Requests != base.Reads+devices*base.Writes {
		t.Fatalf("replicated requests %d, want %d", repl.Requests, base.Reads+devices*base.Writes)
	}
	checkFleetReport(t, repl, devices, repl.Requests)
}

// TestEngineFleetMillionRequestDeterminism is the fleet half of the
// scale acceptance check: 1M binary-encoded requests over 2- and
// 4-device fleets (devices=1 is TestEngineMillionRequestDeterminism)
// must give byte-identical reports and metric renderings at worker
// counts {1, 4, 8}. Skipped under -short.
func TestEngineFleetMillionRequestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("replays 1M requests six times")
	}
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	spec := benchSpec(cfg.Geo)
	const n = 1_000_000
	gen, err := trace.NewGenerator(spec, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	data, err := trace.EncodeBinarySource(gen)
	if err != nil {
		t.Fatal(err)
	}
	open, err := trace.BinaryOpener(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, devices := range []int{2, 4} {
		var base *Report
		var baseProm string
		for _, w := range []int{1, 4, 8} {
			reg := obs.NewRegistry(devices * 8)
			reg.KeepSlowest(32)
			eng, err := NewEngine(ReplayConfig{
				Sim: cfg, Shards: 8, Devices: devices,
				Precondition: true, Metrics: reg,
			}, benchSampler())
			if err != nil {
				t.Fatal(err)
			}
			prev := parallel.SetWorkers(w)
			rep, err := eng.Replay(open)
			parallel.SetWorkers(prev)
			if err != nil {
				t.Fatal(err)
			}
			prom := reg.Snapshot().Deterministic().Render()
			if base == nil {
				base, baseProm = rep, prom
				checkFleetReport(t, rep, devices, n)
				continue
			}
			if !reflect.DeepEqual(rep, base) {
				t.Fatalf("devices=%d: report diverged at %d workers", devices, w)
			}
			if prom != baseProm {
				t.Fatalf("devices=%d: metric rendering diverged at %d workers", devices, w)
			}
		}
	}
}

// TestEngineLongFleetDeterminism replays a 100M-request generator
// stream over a 2-device fleet at 1 and 4 workers and requires
// byte-identical reports — the workflow-dispatch CI smoke behind -long.
func TestEngineLongFleetDeterminism(t *testing.T) {
	if !*longRun {
		t.Skip("pass -long to replay 100M requests twice")
	}
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	spec := benchSpec(cfg.Geo)
	const n = 100_000_000
	var base *Report
	for _, w := range []int{1, 4} {
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 8, Devices: 2, Precondition: true,
		}, benchSampler())
		if err != nil {
			t.Fatal(err)
		}
		prev := parallel.SetWorkers(w)
		rep, err := eng.Replay(trace.GeneratorOpener(spec, n, 7))
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rep
			checkFleetReport(t, rep, 2, n)
			continue
		}
		if !reflect.DeepEqual(rep, base) {
			t.Fatalf("100M-request report diverged at %d workers", w)
		}
	}
}

// FuzzStripeMap: for any fleet shape, every LPN routes to exactly one
// device and the (device, local) pair round-trips through global — the
// stripe map is a bijection — and the pow2 fast paths agree with the
// plain divide/modulo definition. The shard router then stays in range
// and its mask fast path agrees with the modulo one.
func FuzzStripeMap(f *testing.F) {
	f.Add(uint8(4), uint8(8), int64(64), int64(12345))
	f.Add(uint8(1), uint8(1), int64(64), int64(0))
	f.Add(uint8(3), uint8(5), int64(7), int64(1<<40))
	f.Add(uint8(2), uint8(2), int64(1), int64(-9))
	f.Add(uint8(16), uint8(4), int64(1<<20), int64(1<<62))
	f.Fuzz(func(t *testing.T, dByte, sByte uint8, granule, lpn int64) {
		devices := int(dByte%32) + 1
		shards := int(sByte%16) + 1
		granule = granule%(1<<20) + 1
		if granule <= 0 { // granule%(1<<20) can be negative
			granule += 1 << 20
		}
		for _, replicate := range []bool{false, true} {
			m := newStripeMap(devices, granule, replicate)
			dev, local := m.route(lpn)
			if dev < 0 || dev >= devices {
				t.Fatalf("route(%d) device %d out of [0,%d)", lpn, dev, devices)
			}
			switch {
			case lpn < 0:
				if dev != 0 || local != lpn {
					t.Fatalf("negative LPN %d routed to (%d, %d), want (0, unchanged)", lpn, dev, local)
				}
			case replicate:
				if local != lpn {
					t.Fatalf("replicated route(%d) rewrote the address to %d", lpn, local)
				}
			default:
				// Reference: plain divide/modulo, no fast paths.
				g := lpn / granule
				wantDev := int(g % int64(devices))
				wantLocal := (g/int64(devices))*granule + lpn%granule
				if devices == 1 {
					wantDev, wantLocal = 0, lpn
				}
				if dev != wantDev || local != wantLocal {
					t.Fatalf("route(%d) = (%d, %d), reference (%d, %d)", lpn, dev, local, wantDev, wantLocal)
				}
				if back := m.global(dev, local); back != lpn {
					t.Fatalf("global(%d, %d) = %d, want %d", dev, local, back, lpn)
				}
				if b := m.localBound(lpn); local > b {
					t.Fatalf("route(%d) local %d above localBound %d", lpn, local, b)
				}
			}
			// Shard router: in range, and the pow2 mask path agrees
			// with modulo.
			e := &Engine{cfg: ReplayConfig{Shards: shards}, shardMask: -1}
			if s64 := int64(shards); s64&(s64-1) == 0 {
				e.shardMask = s64 - 1
			}
			s := e.shardOf(local)
			if s < 0 || s >= shards {
				t.Fatalf("shardOf(%d) = %d out of [0,%d)", local, s, shards)
			}
			if local >= 0 {
				if want := int((local >> shardGranuleShift) % int64(shards)); s != want {
					t.Fatalf("shardOf(%d) = %d, reference %d", local, s, want)
				}
			} else if s != 0 {
				t.Fatalf("negative local %d routed to shard %d, want 0", local, s)
			}
		}
	})
}

// TestLPNDedupModes: bitmap and sorted modes must yield the same
// ascending unique sequence for the same inserts — including negatives
// and LPNs beyond the bitmap universe, which spill to the sorted path —
// and addRange must equal per-page adds.
func TestLPNDedupModes(t *testing.T) {
	const cap = 1000
	rng := mathx.NewRand(99)
	type ins struct {
		lpn int64
		n   int
	}
	var inserts []ins
	for i := 0; i < 4000; i++ {
		// Mostly in [0, cap), with negatives and over-bound spills mixed in.
		lpn := int64(rng.Intn(cap+300)) - 100
		inserts = append(inserts, ins{lpn, 1 + rng.Intn(8)})
	}

	collect := func(maxLPN int64, perPage bool) []int64 {
		d := newLPNDedup(maxLPN)
		for _, in := range inserts {
			if perPage {
				for p := 0; p < in.n; p++ {
					d.add(in.lpn + int64(p))
				}
			} else {
				d.addRange(in.lpn, in.n)
			}
		}
		var got []int64
		if err := d.each(func(lpn int64) error {
			got = append(got, lpn)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	want := collect(0, true) // sorted mode, per-page adds: the reference
	if !slices.IsSorted(want) || len(slices.Compact(slices.Clone(want))) != len(want) {
		t.Fatalf("reference sequence is not ascending unique")
	}
	for _, c := range []struct {
		name    string
		maxLPN  int64
		perPage bool
	}{
		{"sorted/addRange", 0, false},
		{"bitmap/add", cap, true},
		{"bitmap/addRange", cap, false},
		{"smallBitmap/addRange", cap / 4, false}, // most inserts spill
	} {
		if got := collect(c.maxLPN, c.perPage); !slices.Equal(got, want) {
			t.Fatalf("%s: sequence diverged (%d vs %d members)", c.name, len(got), len(want))
		}
	}
}
