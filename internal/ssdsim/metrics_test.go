package ssdsim

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/trace"
)

// counterValue digs a merged counter out of a registry snapshot.
func counterValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	for _, c := range reg.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %s not in snapshot", name)
	return 0
}

// TestEngineMetricsMatchReport: with observability attached, the
// registry's merged counters must agree exactly with the report the
// same replay produced, across the simulator and FTL families.
func TestEngineMetricsMatchReport(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 20000)
	reg := obs.NewRegistry(4)
	reg.KeepSlowest(16)
	eng, err := NewEngine(ReplayConfig{
		Sim: cfg, Shards: 4, Precondition: true, Metrics: reg,
	}, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Replay(trace.SliceOpener(reqs))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		want int64
	}{
		{"ssdsim.read_requests", int64(rep.Reads)},
		{"ssdsim.write_requests", int64(rep.Writes)},
		{"ssdsim.retries", rep.TotalRetries},
		{"ssdsim.uncorrectable_reads", rep.UncorrectableReads},
		{"ssdsim.fallback_reads", rep.FallbackReads},
		{"ssdsim.unmapped_reads", rep.UnmappedReads},
		{"ssdsim.reordered_arrivals", rep.ReorderedArrivals},
		{"ftl.gc_relocations", rep.GCWrites},
		{"ftl.retired_blocks", rep.RetiredBlocks},
	}
	for _, c := range checks {
		if got := counterValue(t, reg, c.name); got != c.want {
			t.Errorf("%s = %d, report says %d", c.name, got, c.want)
		}
	}
	if rep.Reads == 0 || rep.TotalRetries == 0 || rep.GCWrites == 0 {
		t.Fatalf("degenerate workload: %+v", rep)
	}
	// The latency histogram holds every read request; the slow trace is
	// full and carries the latency decomposition.
	snap := reg.Snapshot()
	for _, h := range snap.Hists {
		if h.Name == "ssdsim.read_latency_us" && h.Hist.Count() != int64(rep.Reads) {
			t.Errorf("read latency hist count %d, want %d", h.Hist.Count(), rep.Reads)
		}
	}
	if len(snap.Slow) != 16 {
		t.Fatalf("slow trace retained %d records, want 16", len(snap.Slow))
	}
	for i, r := range snap.Slow {
		if r.TotalUS <= 0 || r.TotalUS < r.SenseUS {
			t.Fatalf("slow[%d] inconsistent: %+v", i, r)
		}
		if i > 0 && r.TotalUS > snap.Slow[i-1].TotalUS {
			t.Fatalf("slow trace not sorted slowest-first at %d", i)
		}
	}
	// The per-shard throughput gauges are set — and stripped from the
	// deterministic view.
	if len(snap.Gauges) != 4 {
		t.Fatalf("%d gauges set, want one per shard", len(snap.Gauges))
	}
	if det := snap.Deterministic(); len(det.Gauges) != 0 {
		t.Fatal("Deterministic left gauges in place")
	}
}

// TestEngineMetricsWorkerDeterminism: the deterministic rendering of
// the registry — counters, merged histograms, slow-read trace — must be
// byte-identical at every worker count and chunk size, like the report.
func TestEngineMetricsWorkerDeterminism(t *testing.T) {
	cfg := engineConfig()
	reqs := engineTrace(t, 20000)

	render := func(workers, chunk int) (string, string, *Report) {
		reg := obs.NewRegistry(4)
		reg.KeepSlowest(8)
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 4, ChunkRequests: chunk,
			Precondition: true, Metrics: reg,
		}, benchSampler())
		if err != nil {
			t.Fatal(err)
		}
		prev := parallel.SetWorkers(workers)
		rep, err := eng.Replay(trace.SliceOpener(reqs))
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		snap := reg.Snapshot().Deterministic()
		prom := snap.Render()
		var slow strings.Builder
		if err := snap.WriteSlowJSONL(&slow); err != nil {
			t.Fatal(err)
		}
		return prom, slow.String(), rep
	}

	baseProm, baseSlow, baseRep := render(1, 0)
	if !strings.Contains(baseProm, "sentinel3d_ssdsim_read_requests") {
		t.Fatalf("rendering lacks read counter:\n%s", baseProm)
	}
	for _, run := range []struct{ workers, chunk int }{{4, 0}, {8, 0}, {4, 7}} {
		prom, slow, rep := render(run.workers, run.chunk)
		if prom != baseProm {
			t.Fatalf("workers=%d chunk=%d: prometheus text diverged", run.workers, run.chunk)
		}
		if slow != baseSlow {
			t.Fatalf("workers=%d chunk=%d: slow trace diverged", run.workers, run.chunk)
		}
		if !reflect.DeepEqual(rep, baseRep) {
			t.Fatalf("workers=%d chunk=%d: report diverged with metrics on", run.workers, run.chunk)
		}
	}
}

// TestEngineReorderedArrivals: an out-of-order MSR trace streams
// through the engine with arrivals clamped, and the clamp count lands
// in both the report and the metrics.
func TestEngineReorderedArrivals(t *testing.T) {
	// Records 2 and 4 run backwards in time.
	csv := "128166372003061629,hm,0,Read,8192,8192,100\n" +
		"128166372002061629,hm,0,Write,40960,4096,100\n" +
		"128166372013061629,hm,0,Read,4096,16384,100\n" +
		"128166372012061629,hm,0,Read,8192,4096,100\n"
	path := filepath.Join(t.TempDir(), "ooo.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := engineConfig()
	reg := obs.NewRegistry(2)
	eng, err := NewEngine(ReplayConfig{
		Sim: cfg, Shards: 2, Precondition: true, Metrics: reg,
	}, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Replay(trace.FileOpener(path))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReorderedArrivals != 2 {
		t.Fatalf("ReorderedArrivals = %d, want 2", rep.ReorderedArrivals)
	}
	if got := counterValue(t, reg, "ssdsim.reordered_arrivals"); got != 2 {
		t.Fatalf("reordered counter = %d, want 2", got)
	}

	// An in-order trace reports zero.
	reqs := engineTrace(t, 1000)
	eng2, err := NewEngine(ReplayConfig{Sim: cfg, Shards: 2, Precondition: true},
		benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := eng2.Replay(trace.SliceOpener(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ReorderedArrivals != 0 {
		t.Fatalf("in-order trace reports %d reordered arrivals", rep2.ReorderedArrivals)
	}
}

// TestEngineMetricsShardMismatch: a registry narrower than the shard
// fan-out is a wiring bug and must be rejected up front.
func TestEngineMetricsShardMismatch(t *testing.T) {
	cfg := engineConfig()
	if _, err := NewEngine(ReplayConfig{
		Sim: cfg, Shards: 4, Metrics: obs.NewRegistry(2),
	}, benchSampler()); err == nil {
		t.Fatal("accepted 2-shard registry for 4-shard engine")
	}
}

// TestSimRunWithMetrics: the unsharded Sim path accepts a Set directly
// through its config.
func TestSimRunWithMetrics(t *testing.T) {
	cfg := engineConfig()
	reg := obs.NewRegistry(1)
	cfg.Obs = reg.Set(0)
	reqs := engineTrace(t, 5000)
	sim, err := New(cfg, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, reg, "ssdsim.read_requests"); got != int64(rep.Reads) {
		t.Fatalf("read counter %d, want %d", got, rep.Reads)
	}
	if got := counterValue(t, reg, "ftl.host_writes"); got == 0 {
		t.Fatal("FTL host writes not published")
	}
}
