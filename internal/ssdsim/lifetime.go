package ssdsim

import (
	"fmt"
	"math"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/physics"
)

// LifetimeConfig makes stress evolve *during* replay instead of the
// device staying frozen at one stress point: every physical block
// carries its own physics.Stress, advanced by a retention clock driven
// from trace timestamps and a temperature schedule, cycled by the FTL's
// host-write/GC erases (including failed ones — see ftl.WearSink), and
// periodically interrupted by a background calibration scheduler that
// competes with host reads for die time.
//
// Everything here is a pure function of (config, trace time, block):
// no wall clock, no arrival-order dependence beyond each shard's own
// sub-stream — which is what keeps lifetime-enabled replay reports
// byte-identical at any worker count.
type LifetimeConfig struct {
	// BasePE is the P/E wear every block starts the replay with.
	BasePE int

	// BaseRetentionHours is the effective room-temperature retention the
	// pre-existing (preconditioned) data starts the replay with. Blocks
	// erased during the replay restart their retention from the erase
	// instant instead.
	BaseRetentionHours float64

	// Schedule is the ambient temperature over the replay; retention
	// accrues at the schedule's Arrhenius-accelerated rate.
	Schedule physics.TempSchedule

	// ActivationEnergyEV converts hot time into effective room-temp
	// time; 0 means the paper chips' 0.55 eV.
	ActivationEnergyEV float64

	// HoursPerSecond is the time-lapse factor: how many device-hours
	// pass per trace second. 0 means 1. A one-minute trace replayed at
	// 4380 h/s spans six months of device life.
	HoursPerSecond float64

	// CalibPeriodHours, when positive, schedules a background
	// calibration (sentinel re-inference) on every die each period of
	// device time.
	CalibPeriodHours float64

	// CalibDriftHours, when positive, additionally triggers a
	// calibration when a die has accrued that much *effective* retention
	// since its last one — hot devices recalibrate more often.
	CalibDriftHours float64

	// CalibUS is the die-busy time one calibration costs. Host reads
	// arriving while it runs queue behind it, so calibration shows up as
	// queue latency in the replay report.
	CalibUS float64
}

// defaultActivationEnergyEV matches the paper chips (physics.TLC/QLC).
const defaultActivationEnergyEV = 0.55

// Validate reports configuration errors.
func (c LifetimeConfig) Validate() error {
	if c.BasePE < 0 {
		return fmt.Errorf("ssdsim: negative base P/E %d", c.BasePE)
	}
	if math.IsNaN(c.BaseRetentionHours) || c.BaseRetentionHours < 0 {
		return fmt.Errorf("ssdsim: invalid base retention %g h", c.BaseRetentionHours)
	}
	if err := c.Schedule.Validate(); err != nil {
		return err
	}
	if c.ActivationEnergyEV < 0 {
		return fmt.Errorf("ssdsim: negative activation energy %g eV", c.ActivationEnergyEV)
	}
	if math.IsNaN(c.HoursPerSecond) || c.HoursPerSecond < 0 {
		return fmt.Errorf("ssdsim: invalid time-lapse factor %g h/s", c.HoursPerSecond)
	}
	if c.CalibPeriodHours < 0 || c.CalibDriftHours < 0 || c.CalibUS < 0 {
		return fmt.Errorf("ssdsim: negative calibration parameter")
	}
	if (c.CalibPeriodHours > 0 || c.CalibDriftHours > 0) && c.CalibUS <= 0 {
		return fmt.Errorf("ssdsim: calibration scheduled but CalibUS is zero")
	}
	return nil
}

// StressSampler is a RetrySampler whose outcome distribution depends on
// the block's current stress state; lifetime-enabled replay feeds it
// the evolving per-block stress on every read.
type StressSampler interface {
	RetrySampler
	SampleStressed(pageType int, st physics.Stress, rng *mathx.Rand) RetryOutcome
}

// LifetimeSampler interpolates between EmpiricalSamplers measured at a
// grid of (P/E, effective retention hours) stress points: a read drawn
// at stress st uses the pool of the nearest grid point at or below st
// (floor on both axes, clamped to the grid edges) — the measured point
// the block has most recently crossed. One RNG draw per read, exactly
// like the frozen-stress path.
type LifetimeSampler struct {
	// PEs and Hours are the grid coordinates, each ascending.
	PEs   []int
	Hours []float64
	// Pools holds the grid's samplers row-major: Pools[i*len(Hours)+j]
	// was measured at (PEs[i], Hours[j]).
	Pools []*EmpiricalSampler
}

// Validate checks the grid's shape and that every pool agrees on the
// page-type count.
func (ls *LifetimeSampler) Validate() error {
	if len(ls.PEs) == 0 || len(ls.Hours) == 0 {
		return fmt.Errorf("ssdsim: empty lifetime sampler grid")
	}
	if len(ls.Pools) != len(ls.PEs)*len(ls.Hours) {
		return fmt.Errorf("ssdsim: lifetime grid %dx%d has %d pools",
			len(ls.PEs), len(ls.Hours), len(ls.Pools))
	}
	for i := 1; i < len(ls.PEs); i++ {
		if ls.PEs[i] <= ls.PEs[i-1] {
			return fmt.Errorf("ssdsim: lifetime P/E grid not ascending at %d", i)
		}
	}
	for j := 1; j < len(ls.Hours); j++ {
		if ls.Hours[j] <= ls.Hours[j-1] {
			return fmt.Errorf("ssdsim: lifetime hours grid not ascending at %d", j)
		}
	}
	pt := -1
	for k, p := range ls.Pools {
		if p == nil {
			return fmt.Errorf("ssdsim: lifetime grid pool %d is nil", k)
		}
		if pt == -1 {
			pt = p.PageTypes()
		} else if p.PageTypes() != pt {
			return fmt.Errorf("ssdsim: lifetime grid pool %d covers %d page types, pool 0 covers %d",
				k, p.PageTypes(), pt)
		}
	}
	return nil
}

// PageTypes returns the page-type count of the grid's pools.
func (ls *LifetimeSampler) PageTypes() int {
	if len(ls.Pools) == 0 {
		return 0
	}
	return ls.Pools[0].PageTypes()
}

// gridPool resolves the floor grid point for a stress state. The grids
// are a handful of entries, so a linear scan beats a binary search.
func (ls *LifetimeSampler) gridPool(st physics.Stress) *EmpiricalSampler {
	i := 0
	for i+1 < len(ls.PEs) && ls.PEs[i+1] <= st.PECycles {
		i++
	}
	j := 0
	for j+1 < len(ls.Hours) && ls.Hours[j+1] <= st.EffRetentionHours {
		j++
	}
	return ls.Pools[i*len(ls.Hours)+j]
}

// Sample implements RetrySampler by drawing from the grid origin — the
// distribution a lifetime-unaware consumer would see.
func (ls *LifetimeSampler) Sample(pageType int, rng *mathx.Rand) RetryOutcome {
	return ls.Pools[0].Sample(pageType, rng)
}

// SampleStressed implements StressSampler.
func (ls *LifetimeSampler) SampleStressed(pageType int, st physics.Stress, rng *mathx.Rand) RetryOutcome {
	return *ls.sampleStressedRef(pageType, st, rng)
}

// sampleStressedRef is SampleStressed without the outcome copy (see
// EmpiricalSampler.sampleRef for the aliasing and validation contract).
func (ls *LifetimeSampler) sampleStressedRef(pageType int, st physics.Stress, rng *mathx.Rand) *RetryOutcome {
	return ls.gridPool(st).sampleRef(pageType, rng)
}

// SyntheticLifetimeSampler builds a deterministic grid sampler whose
// retry cost grows with the grid point — the lifetime analogue of the
// synthetic frozen-stress pools that smoke cells, benchmarks and
// determinism tests use to avoid paying chip-simulator measurement
// cost. Pool (i, j) draws retries around i+j extra attempts, so an
// aging device visibly climbs the grid during a replay.
func SyntheticLifetimeSampler(bits int, pes []int, hours []float64, seed uint64) *LifetimeSampler {
	ls := &LifetimeSampler{PEs: pes, Hours: hours}
	const poolSize = 64
	for i := range pes {
		for j := range hours {
			es := &EmpiricalSampler{PerPage: make([][]RetryOutcome, bits)}
			for pt := 0; pt < bits; pt++ {
				rng := mathx.NewRand(mathx.Mix4(seed, uint64(i), uint64(j), uint64(pt)))
				pool := make([]RetryOutcome, poolSize)
				for k := range pool {
					// Page types retry more at higher grid points; MSB
					// pages (more read voltages) retry more than LSB.
					mean := i + j + pt/2
					r := rng.Intn(mean + 2)
					var aux int
					if rng.Float64() < 0.25 {
						aux = 1
					}
					pool[k] = RetryOutcome{Retries: r, AuxSenses: aux}
				}
				es.PerPage[pt] = pool
			}
			ls.Pools = append(ls.Pools, es)
		}
	}
	return ls
}

// LifetimeStats summarizes what the lifetime machinery did during a
// run. It lives beside ReportSummary rather than in it: the frozen
// replay cells' golden digests hash the summary's %v rendering, so the
// summary's field set is pinned.
type LifetimeStats struct {
	// Enabled records that the run carried lifetime state at all.
	Enabled bool
	// DeviceHours is the retention clock's final reading — the span of
	// device life the trace covered (max across shards).
	DeviceHours float64
	// RunErases counts erase attempts observed during the replay pass
	// (preconditioning excluded), including failed ones.
	RunErases int64
	// FailedEraseWear counts the erase attempts that failed: wear that
	// accrued without freeing a block.
	FailedEraseWear int64
	// WornBlocks is the number of blocks that took at least one erase
	// during the replay; MaxBlockWear the largest per-block count.
	WornBlocks   int64
	MaxBlockWear int64
	// Calibrations counts background calibration runs; CalibBusyUS the
	// die time they consumed (host reads queued behind it).
	Calibrations int64
	CalibBusyUS  float64
}

// mergeLife folds a shard's lifetime stats into s in shard order.
func (s *LifetimeStats) mergeLife(o LifetimeStats) {
	s.Enabled = s.Enabled || o.Enabled
	if o.DeviceHours > s.DeviceHours {
		s.DeviceHours = o.DeviceHours
	}
	s.RunErases += o.RunErases
	s.FailedEraseWear += o.FailedEraseWear
	s.WornBlocks += o.WornBlocks
	if o.MaxBlockWear > s.MaxBlockWear {
		s.MaxBlockWear = o.MaxBlockWear
	}
	s.Calibrations += o.Calibrations
	s.CalibBusyUS += o.CalibBusyUS
}

// lifetime is one Sim's per-block aging state. It is owned by the Sim's
// single replaying goroutine; the clock advances from the arrival
// timestamps of the shard's own sub-stream, so every field is a pure
// function of (config, sub-trace) — never of worker scheduling.
type lifetime struct {
	cfg        LifetimeConfig
	eval       physics.ScheduleEval
	clock      physics.RetentionClock
	hoursPerUS float64
	usPerHour  float64

	// armed gates wear accounting: preconditioning warms the FTL through
	// the same write path, and its GC churn must not perturb the
	// configured base age.
	armed bool

	// hotNow caches the schedule's cumulative hot-band hours at
	// device-hour hotAtH (computed lazily — see hot); hotAtReset and
	// hotAtCalib cache it at each block's/die's epoch. Retention queries
	// then evaluate in closed form (ScheduleEval.EffHoursPre) with no
	// per-read schedule arithmetic — bit-identical to recomputing both
	// endpoints, since HotHoursBefore is a pure function of the epoch it
	// was cached at.
	hotNow float64
	hotAtH float64
	// maxAF bounds the retention accrual rate (ScheduleEval.MaxRate),
	// turning grid-pool lookups into a cached-until-expiry check.
	maxAF float64
	// calibOn short-circuits the per-op calibration check when neither
	// trigger is configured.
	calibOn bool

	blocksPerPlane int
	// Per physical block (plane-major): the device-hour of the block's
	// last successful replay erase (negative = still holding pre-replay
	// data aged BaseRetentionHours), the cached hot-hours at that epoch,
	// replay-observed erase attempts, and reads since the last erase.
	resetH     []float64
	hotAtReset []float64
	cycles     []int32
	reads      []int32

	// Per-block cache for the devirtualized LifetimeSampler path: the
	// resolved grid-pool index and the device-hour before which the
	// block's stress provably cannot cross into the next grid cell
	// (retention accrues at most at maxAF; P/E only moves on erase, which
	// invalidates). Between those events the floor-grid lookup is a
	// single comparison — and stays bit-identical to resolving gridPool
	// on every read.
	poolIdx    []int32
	poolExpiry []float64

	// Per die: next periodic calibration due time, last calibration
	// time (both in device-hours), and the cached hot-hours at the last
	// calibration.
	calibNext  []float64
	calibLast  []float64
	hotAtCalib []float64

	calibrations int64
	calibBusyUS  float64
	runErases    int64
	failedWear   int64
}

// newLifetime builds the per-block state for one (sub-)device.
func newLifetime(cfg Config) *lifetime {
	lc := *cfg.Life
	if lc.ActivationEnergyEV == 0 {
		lc.ActivationEnergyEV = defaultActivationEnergyEV
	}
	if lc.HoursPerSecond == 0 {
		lc.HoursPerSecond = 1
	}
	eval := lc.Schedule.Eval(physics.Params{ActivationEnergyEV: lc.ActivationEnergyEV})
	l := &lifetime{
		cfg:            lc,
		eval:           eval,
		clock:          physics.RetentionClock{Eval: eval},
		hoursPerUS:     lc.HoursPerSecond / 1e6,
		usPerHour:      1e6 / lc.HoursPerSecond,
		maxAF:          eval.MaxRate(),
		calibOn:        lc.CalibPeriodHours > 0 || lc.CalibDriftHours > 0,
		blocksPerPlane: cfg.Geo.BlocksPerPlane,
		resetH:         make([]float64, cfg.Geo.Planes()*cfg.Geo.BlocksPerPlane),
		hotAtReset:     make([]float64, cfg.Geo.Planes()*cfg.Geo.BlocksPerPlane),
		cycles:         make([]int32, cfg.Geo.Planes()*cfg.Geo.BlocksPerPlane),
		reads:          make([]int32, cfg.Geo.Planes()*cfg.Geo.BlocksPerPlane),
		poolIdx:        make([]int32, cfg.Geo.Planes()*cfg.Geo.BlocksPerPlane),
		poolExpiry:     make([]float64, cfg.Geo.Planes()*cfg.Geo.BlocksPerPlane),
		calibNext:      make([]float64, cfg.Geo.Dies()),
		calibLast:      make([]float64, cfg.Geo.Dies()),
		hotAtCalib:     make([]float64, cfg.Geo.Dies()),
	}
	for i := range l.poolExpiry {
		l.poolExpiry[i] = -1 // unresolved: first read refreshes
	}
	for i := range l.resetH {
		// Pre-replay data ages from BaseRetentionHours at epoch 0, so its
		// cached hot-hours stay HotHoursBefore(0) = 0.
		l.resetH[i] = -1
	}
	for d := range l.calibNext {
		l.calibNext[d] = lc.CalibPeriodHours // first period ends one period in
	}
	return l
}

// tickUS advances the retention clock to trace-microsecond t.
func (l *lifetime) tickUS(t float64) {
	h := t * l.hoursPerUS
	if h > l.clock.NowHours() {
		l.clock.AdvanceTo(h)
	} else if h != h {
		l.clock.AdvanceTo(h) // NaN: delegate the clock's panic
	}
}

// hot returns the schedule's cumulative hot-band hours at device-hour
// now, memoizing the last reading — a pure function of now, so the
// cache never affects results.
func (l *lifetime) hot(now float64) float64 {
	if now != l.hotAtH {
		l.hotNow = l.eval.HotHoursBefore(now)
		l.hotAtH = now
	}
	return l.hotNow
}

// effRetention recomputes block i's effective retention from the
// (reset, now) endpoints — the RetentionClock no-accumulation contract
// — via the cached hot-hours fast path (bit-identical to
// clock.EffSince, see EffHoursPre).
func (l *lifetime) effRetention(i int, now float64) float64 {
	if r := l.resetH[i]; r < 0 {
		return l.cfg.BaseRetentionHours + l.eval.EffHoursPre(0, now, 0, l.hot(now))
	} else if r < now {
		return l.eval.EffHoursPre(r, now, l.hotAtReset[i], l.hot(now))
	}
	return 0
}

// readStress resolves the stress state a read of (plane, block) sees
// right now, counting the read for disturb accounting.
func (l *lifetime) readStress(plane, block int) physics.Stress {
	i := plane*l.blocksPerPlane + block
	l.reads[i]++
	return physics.Stress{
		PECycles:          l.cfg.BasePE + int(l.cycles[i]),
		ReadCount:         int(l.reads[i]),
		EffRetentionHours: l.effRetention(i, l.clock.NowHours()),
	}
}

// pool resolves the grid pool for a read of (plane, block) at the
// clock's current reading — the devirtualized LifetimeSampler fast
// path. It returns the same pool gridPool would resolve from the
// block's current stress, through the per-block expiry cache: retention
// is monotone while the reset epoch stands (rate bounded by maxAF) and
// P/E only moves on erase, so between refreshes the floor cell provably
// cannot change.
func (l *lifetime) pool(ls *LifetimeSampler, plane, block int) *EmpiricalSampler {
	i := plane*l.blocksPerPlane + block
	l.reads[i]++
	if now := l.clock.NowHours(); now >= l.poolExpiry[i] {
		l.refreshPool(ls, i, now)
	}
	return ls.Pools[l.poolIdx[i]]
}

// refreshPool re-resolves block i's grid cell at device-hour now and
// bounds how long the result stays valid.
func (l *lifetime) refreshPool(ls *LifetimeSampler, i int, now float64) {
	eff := l.effRetention(i, now)
	pe := l.cfg.BasePE + int(l.cycles[i])
	pi := 0
	for pi+1 < len(ls.PEs) && ls.PEs[pi+1] <= pe {
		pi++
	}
	j := 0
	for j+1 < len(ls.Hours) && ls.Hours[j+1] <= eff {
		j++
	}
	l.poolIdx[i] = int32(pi*len(ls.Hours) + j)
	if j+1 < len(ls.Hours) {
		// Retention accrues at most maxAF effective hours per device
		// hour, so the next cell boundary is unreachable before this.
		l.poolExpiry[i] = now + (ls.Hours[j+1]-eff)/l.maxAF
	} else {
		l.poolExpiry[i] = math.Inf(1)
	}
}

// BlockErased implements ftl.WearSink: every replay-time erase attempt
// wears the block; a successful one also resets its retention epoch to
// the current device time and its read-disturb count. Failed erases
// wear without erasing — the data (and its retention clock) stay put,
// which is exactly the wear the old code lost track of.
func (l *lifetime) BlockErased(plane, block int, failed bool) {
	if !l.armed {
		return
	}
	i := plane*l.blocksPerPlane + block
	l.cycles[i]++
	l.runErases++
	l.poolExpiry[i] = -1 // P/E moved (and maybe the reset epoch): re-resolve
	if failed {
		l.failedWear++
		return
	}
	now := l.clock.NowHours()
	l.resetH[i] = now
	l.hotAtReset[i] = l.hot(now)
	l.reads[i] = 0
}

// beforeOp charges any calibration work due on die before an operation
// arriving at trace-microsecond arrive: periodic calibrations that came
// due since the die's last one, then the drift trigger. The work lands
// on dieFree, so the host operation (and everything after it) queues
// behind it — calibration surfaces as queue latency, exactly like GC.
func (s *Sim) beforeOp(die int32, arrive float64) {
	l := s.life
	l.tickUS(arrive)
	if l.calibOn {
		s.chargeCalib(die, arrive)
	}
}

// chargeCalib lands due calibration work on die's busy-until time.
func (s *Sim) chargeCalib(die int32, arrive float64) {
	l := s.life
	now := l.clock.NowHours()
	if l.cfg.CalibPeriodHours > 0 {
		for l.calibNext[die] <= now {
			due := l.calibNext[die]
			start := maxf(due*l.usPerHour, s.dieFree[die])
			s.dieFree[die] = start + l.cfg.CalibUS
			l.calibLast[die] = due
			l.hotAtCalib[die] = l.eval.HotHoursBefore(due)
			l.calibNext[die] += l.cfg.CalibPeriodHours
			l.calibrations++
			l.calibBusyUS += l.cfg.CalibUS
		}
	}
	if l.cfg.CalibDriftHours > 0 &&
		l.eval.EffHoursPre(l.calibLast[die], now, l.hotAtCalib[die], l.hot(now)) >= l.cfg.CalibDriftHours {
		s.dieFree[die] = maxf(arrive, s.dieFree[die]) + l.cfg.CalibUS
		l.calibLast[die] = now
		l.hotAtCalib[die] = l.hot(now)
		l.calibrations++
		l.calibBusyUS += l.cfg.CalibUS
	}
}

// finish folds the lifetime state into the report and publishes the
// obs views: the calibration counter and duty-cycle gauge, and the
// per-block wear histogram. Called once per run from flushCounters.
func (l *lifetime) finish(rep *Report, set *obs.Set, makespan float64) {
	st := LifetimeStats{
		Enabled:         true,
		DeviceHours:     l.clock.NowHours(),
		RunErases:       l.runErases,
		FailedEraseWear: l.failedWear,
		Calibrations:    l.calibrations,
		CalibBusyUS:     l.calibBusyUS,
	}
	var wearHist mathx.LogHist
	for _, c := range l.cycles {
		if c == 0 {
			continue
		}
		st.WornBlocks++
		if int64(c) > st.MaxBlockWear {
			st.MaxBlockWear = int64(c)
		}
		wearHist.Add(float64(c))
	}
	rep.Life = st
	if set == nil {
		return
	}
	set.Counter("ssdsim.calibrations",
		"background calibration runs charged to die time").Add(l.calibrations)
	var zero mathx.LogHist
	set.Hist("ssdsim.block_wear",
		"per-block erase attempts observed during replay").Flush(&wearHist, &zero)
	if makespan > 0 {
		set.Gauge("ssdsim.calib_duty",
			"fraction of the simulated makespan spent calibrating").
			Set(l.calibBusyUS / makespan)
	}
	set.Gauge("ssdsim.device_hours",
		"device life the replay's retention clock covered").Set(st.DeviceHours)
}
