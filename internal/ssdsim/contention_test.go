package ssdsim

import (
	"testing"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/trace"
)

// TestChannelContention: two simultaneous reads on different dies of the
// same channel sense in parallel but serialize their transfers.
func TestChannelContention(t *testing.T) {
	cfg := testSSDConfig()
	s, err := New(cfg, FixedSampler{})
	if err != nil {
		t.Fatal(err)
	}
	// Map two LPNs; with round-robin plane striping, consecutive writes
	// land on consecutive planes (same channel spans several planes).
	warm := []trace.Request{
		{Op: trace.Read, LPN: 0, Pages: 1},
		{Op: trace.Read, LPN: 1, Pages: 1},
	}
	if err := s.Precondition(warm); err != nil {
		t.Fatal(err)
	}
	ppn0, _ := s.ftl.Translate(0)
	ppn1, _ := s.ftl.Translate(1)
	sameChan := cfg.Geo.Channel(ppn0.Plane) == cfg.Geo.Channel(ppn1.Plane)
	sameDie := cfg.Geo.Die(ppn0.Plane) == cfg.Geo.Die(ppn1.Plane)
	if !sameChan || sameDie {
		t.Skipf("striping did not produce same-channel/different-die pair")
	}
	reqs := []trace.Request{
		{ArriveUS: 0, Op: trace.Read, LPN: 0, Pages: 1},
		{ArriveUS: 0, Op: trace.Read, LPN: 1, Pages: 1},
	}
	rep, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	solo := rep.ReadLatencies[0]
	second := rep.ReadLatencies[1]
	// The second read senses in parallel (different die) but its
	// transfer queues behind the first: latency above solo but below
	// full serialization.
	if second <= solo {
		t.Fatalf("no transfer contention: %v then %v", solo, second)
	}
	if second >= 2*solo {
		t.Fatalf("parallel dies fully serialized: %v then %v", solo, second)
	}
}

// TestGCWorkShowsUpInWriteLatency: a working set that forces garbage
// collection must slow writes down relative to a fresh device.
func TestGCWorkShowsUpInWriteLatency(t *testing.T) {
	cfg := testSSDConfig()
	mkReqs := func(ws int64, n int) []trace.Request {
		// Random overwrites (not a repeated permutation) so GC victims
		// hold valid data.
		r := mathx.NewRand(5)
		out := make([]trace.Request, n)
		for i := range out {
			out[i] = trace.Request{
				ArriveUS: float64(i) * 2000,
				Op:       trace.Write,
				LPN:      int64(r.Intn(int(ws))),
				Pages:    1,
			}
		}
		return out
	}
	run := func(ws int64, n int) float64 {
		s, err := New(cfg, FixedSampler{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(mkReqs(ws, n))
		if err != nil {
			t.Fatal(err)
		}
		if n > cfg.Geo.PagesTotal() && rep.GCWrites == 0 {
			t.Fatal("expected GC under overwrite pressure")
		}
		return rep.MeanWriteUS
	}
	light := run(int64(cfg.Geo.PagesTotal()), cfg.Geo.PagesTotal()/2)
	heavy := run(int64(cfg.Geo.PagesTotal())/2, cfg.Geo.PagesTotal()*3)
	if heavy <= light {
		t.Fatalf("GC-pressured writes (%v) not slower than light writes (%v)",
			heavy, light)
	}
}
