package ssdsim

import (
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/trace"
)

// BenchmarkBuildSampler drives the whole read stack end to end — retry
// controller, page reads, error counting, ECC decisions — on an aged
// chip; the per-op cost tracks the fused read kernel's steady-state
// performance at the system level.
func BenchmarkBuildSampler(b *testing.B) {
	cfg := flash.Config{
		Kind: flash.TLC, Blocks: 1, Layers: 8, WordlinesPerLayer: 2,
		CellsPerWordline: 8192, OOBFraction: 0.119, Seed: 11, CacheZ: true,
	}
	chip := flash.MustNew(cfg)
	rng := mathx.NewRand(1)
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		if err := chip.ProgramRandom(0, wl, rng); err != nil {
			b.Fatal(err)
		}
	}
	chip.Cycle(0, 5000)
	chip.Age(0, physics.YearHours, physics.RoomTempC)
	ctl, err := retry.NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 14},
		retry.DefaultLatency(), 15)
	if err != nil {
		b.Fatal(err)
	}
	pol := retry.NewDefaultTable(chip, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSampler(ctl, pol, 0, []int{0, 1, 2, 3}, 2, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchGeometry is an 8-channel device so the replay benchmarks can
// shard up to 8 ways; it matches the tracesim/Fig14 device scaled 2x in
// channel count.
func benchGeometry() ftl.Geometry {
	return ftl.Geometry{
		Channels: 8, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
}

// benchSampler is a synthetic retry-outcome distribution (built once,
// shared read-only) so the replay benchmarks exercise the sampler RNG
// path without the cost of measuring a chip.
func benchSampler() *EmpiricalSampler {
	return &EmpiricalSampler{PerPage: [][]RetryOutcome{
		{{Retries: 0}, {Retries: 0}, {Retries: 1}},
		{{Retries: 0}, {Retries: 1}, {Retries: 2}},
		{{Retries: 1}, {Retries: 2}, {Retries: 4, AuxSenses: 1}},
	}}
}

func benchSpec(geo ftl.Geometry) trace.WorkloadSpec {
	spec, _ := trace.WorkloadByName("hm_0")
	spec.WorkingSetPages = int64(geo.PagesTotal()) * 6 / 10
	return spec
}

const benchRequests = 200_000

// BenchmarkReplaySequential is the legacy single-instance replay path:
// materialize the whole trace, precondition, then run the strictly
// sequential loop with full latency collection and an end-of-run sort.
func BenchmarkReplaySequential(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	spec := benchSpec(cfg.Geo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqs, err := trace.Generate(spec, benchRequests, 7)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := New(cfg, benchSampler())
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Precondition(reqs); err != nil {
			b.Fatal(err)
		}
		rep, err := sim.Run(reqs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Requests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}
}

// benchReplayShards measures the streaming engine end to end (two
// passes over the generator: precondition + replay) in the default
// histogram mode, optionally with a full observability registry
// attached (metrics, slow-read trace) but no scraper, and optionally
// with dynamic per-block aging enabled.
func benchReplayShards(b *testing.B, shards int, withMetrics, withLife bool) {
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	var sampler RetrySampler = benchSampler()
	if withLife {
		// The 200k-request trace spans ~292 trace-seconds; 30 h/s
		// time-lapses that into ~1.2 years of device life, climbing the
		// retention grid, with weekly background calibrations (~50 per
		// die over the replay).
		cfg.Life = &LifetimeConfig{
			BasePE:             2000,
			BaseRetentionHours: 100,
			Schedule:           physics.SquareWave(25, 55, 24, 0.5),
			HoursPerSecond:     30,
			CalibPeriodHours:   168,
			CalibUS:            300,
		}
		sampler = SyntheticLifetimeSampler(cfg.Bits,
			[]int{0, 2000, 5000}, []float64{0, 200, 2000, 8760}, 0x5eed)
	}
	spec := benchSpec(cfg.Geo)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var reg *obs.Registry
		if withMetrics {
			reg = obs.NewRegistry(shards)
			reg.KeepSlowest(32)
		}
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: shards, Precondition: true, Metrics: reg,
		}, sampler)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := eng.Replay(trace.GeneratorOpener(spec, benchRequests, 7))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Requests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}
}

// BenchmarkReplayShard1 is the engine's single-shard streaming path —
// the like-for-like successor of BenchmarkReplaySequential.
func BenchmarkReplayShard1(b *testing.B) { benchReplayShards(b, 1, false, false) }

// BenchmarkReplayShard8 shards the 8-channel device fully; with N CPUs
// the shards replay on min(8, N) workers.
func BenchmarkReplayShard8(b *testing.B) { benchReplayShards(b, 8, false, false) }

// BenchmarkReplayShard8Metrics is BenchmarkReplayShard8 with the
// observability registry enabled but idle (no scraper): its req/s is
// gated in CI against the uninstrumented baseline to hold the metrics
// overhead under 1%.
func BenchmarkReplayShard8Metrics(b *testing.B) { benchReplayShards(b, 8, true, false) }

// BenchmarkReplayShard8Lifetime is BenchmarkReplayShard8 with dynamic
// per-block aging enabled: the retention clock, per-block stress
// lookups, grid-sampler dispatch and the calibration scheduler all run
// on the hot path. Its req/s is gated in CI against the frozen-stress
// baseline to hold the lifetime bookkeeping overhead under 5%.
func BenchmarkReplayShard8Lifetime(b *testing.B) { benchReplayShards(b, 8, false, true) }

// fleetBenchRequests sizes the fleet benchmark at 5x the single-device
// replay benches: the fleet path amortizes per-replay construction
// (FTLs, freelist) over the stream, and a 1M-request trace keeps that
// amortization honest while still completing in well under a second.
const fleetBenchRequests = 1_000_000

// BenchmarkReplayFleetD4S8 is the fleet replay headline: a 4-device
// RAID-0 striped fleet, 8 shards per device, replaying a 1M-request
// trace pre-encoded into the zero-copy binary format (the encode cost
// is paid once, outside the timer — the realistic setup for repeated
// replays of a converted trace). Both passes (precondition + replay)
// decode straight from the byte buffer; the req/s metric is gated in CI
// at >= 10x the PR4 ReplayShard8 baseline.
func BenchmarkReplayFleetD4S8(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	spec := benchSpec(cfg.Geo)
	gen, err := trace.NewGenerator(spec, fleetBenchRequests, 7)
	if err != nil {
		b.Fatal(err)
	}
	data, err := trace.EncodeBinarySource(gen)
	if err != nil {
		b.Fatal(err)
	}
	open, err := trace.BinaryOpener(data)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 8, Devices: 4, Precondition: true,
		}, benchSampler())
		if err != nil {
			b.Fatal(err)
		}
		rep, err := eng.Replay(open)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Requests != fleetBenchRequests {
			b.Fatalf("replayed %d requests, want %d", rep.Requests, fleetBenchRequests)
		}
		b.ReportMetric(float64(rep.Requests)*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}
}

// BenchmarkPrecondition measures the LPN-dedup warm-up pass on its own:
// it dominates set-up time for large traces and its allocation count is
// the target of the sorted-slice dedup.
func BenchmarkPrecondition(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Geo = benchGeometry()
	spec := benchSpec(cfg.Geo)
	reqs, err := trace.Generate(spec, benchRequests, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(cfg, benchSampler())
		if err != nil {
			b.Fatal(err)
		}
		if err := sim.Precondition(reqs); err != nil {
			b.Fatal(err)
		}
	}
}
