package ssdsim

import (
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
)

// BenchmarkBuildSampler drives the whole read stack end to end — retry
// controller, page reads, error counting, ECC decisions — on an aged
// chip; the per-op cost tracks the fused read kernel's steady-state
// performance at the system level.
func BenchmarkBuildSampler(b *testing.B) {
	cfg := flash.Config{
		Kind: flash.TLC, Blocks: 1, Layers: 8, WordlinesPerLayer: 2,
		CellsPerWordline: 8192, OOBFraction: 0.119, Seed: 11, CacheZ: true,
	}
	chip := flash.MustNew(cfg)
	rng := mathx.NewRand(1)
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		if err := chip.ProgramRandom(0, wl, rng); err != nil {
			b.Fatal(err)
		}
	}
	chip.Cycle(0, 5000)
	chip.Age(0, physics.YearHours, physics.RoomTempC)
	ctl, err := retry.NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 14},
		retry.DefaultLatency(), 15)
	if err != nil {
		b.Fatal(err)
	}
	pol := retry.NewDefaultTable(chip, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSampler(ctl, pol, 0, []int{0, 1, 2, 3}, 2, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
