package ssdsim

import (
	"math"
	"reflect"
	"testing"

	"sentinel3d/internal/fault"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/trace"
)

// lifeSampler is the shared synthetic grid for lifetime tests: retries
// grow along both axes, so a replay that ages visibly draws more.
func lifeSampler() *LifetimeSampler {
	return SyntheticLifetimeSampler(3,
		[]int{0, 2000, 5000},
		[]float64{0, 200, 2000, 8760},
		0x5eed)
}

func lifeConfig() *LifetimeConfig {
	return &LifetimeConfig{
		BasePE:             2000,
		BaseRetentionHours: 100,
		Schedule:           physics.SquareWave(25, 55, 2, 0.5),
		HoursPerSecond:     3600, // one trace second spans 3600 device-hours
		CalibPeriodHours:   5,
		CalibDriftHours:    400,
		CalibUS:            300,
	}
}

// TestLifetimeWorkerDeterminism is the satellite acceptance test: a
// lifetime-enabled replay — evolving per-block stress, wear from GC,
// calibration scheduler, metrics on — must produce byte-identical
// reports and deterministic metric renderings at 1, 4 and 8 workers.
func TestLifetimeWorkerDeterminism(t *testing.T) {
	cfg := engineConfig()
	cfg.Life = lifeConfig()
	reqs := engineTrace(t, 20000)

	var base *Report
	var baseProm string
	for _, w := range []int{1, 4, 8} {
		reg := obs.NewRegistry(4)
		eng, err := NewEngine(ReplayConfig{
			Sim: cfg, Shards: 4, Precondition: true, Metrics: reg,
		}, lifeSampler())
		if err != nil {
			t.Fatal(err)
		}
		prev := parallel.SetWorkers(w)
		rep, err := eng.Replay(trace.SliceOpener(reqs))
		parallel.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		prom := reg.Snapshot().Deterministic().Render()
		if base == nil {
			base, baseProm = rep, prom
			if !rep.Life.Enabled || rep.Life.DeviceHours <= 0 {
				t.Fatalf("lifetime state missing from report: %+v", rep.Life)
			}
			if rep.Life.Calibrations == 0 {
				t.Fatal("no calibrations over a multi-period replay")
			}
			continue
		}
		if !reflect.DeepEqual(rep, base) {
			t.Fatalf("lifetime report diverged at %d workers:\n got %+v\nwant %+v",
				w, rep, base)
		}
		if prom != baseProm {
			t.Fatalf("lifetime metric rendering diverged at %d workers", w)
		}
	}
}

// TestLifetimeEngineSingleShardMatchesSimRun: the engine must arm and
// drive the lifetime state exactly like a plain Sim.Precondition+Run.
func TestLifetimeEngineSingleShardMatchesSimRun(t *testing.T) {
	cfg := engineConfig()
	cfg.Life = lifeConfig()
	reqs := engineTrace(t, 5000)

	sim, err := New(cfg, lifeSampler())
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(ReplayConfig{
		Sim: cfg, Shards: 1, CollectLatencies: true, Precondition: true,
	}, lifeSampler())
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Replay(trace.SliceOpener(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-shard lifetime engine diverged from Sim.Run:\n got %+v\nwant %+v", got, want)
	}
}

// TestLifetimeStressEvolves: with a fast retention clock the device
// climbs the sampler grid during the trace, so the replay must draw
// strictly more retries than the same trace crawling through device
// time — and the frozen path (Life nil) must match the slow clock's
// grid-origin behaviour rather than silently aging.
func TestLifetimeStressEvolves(t *testing.T) {
	reqs := engineTrace(t, 8000)
	run := func(life *LifetimeConfig) *Report {
		cfg := engineConfig()
		cfg.Life = life
		sim, err := New(cfg, lifeSampler())
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Precondition(reqs); err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	slow := run(&LifetimeConfig{HoursPerSecond: 1e-6}) // clock barely moves
	fast := run(&LifetimeConfig{HoursPerSecond: 3.6e6, Schedule: physics.ConstantTemp(55)})
	if fast.Life.DeviceHours <= slow.Life.DeviceHours {
		t.Fatalf("fast clock covered %v h, slow %v h", fast.Life.DeviceHours, slow.Life.DeviceHours)
	}
	if fast.TotalRetries <= slow.TotalRetries {
		t.Fatalf("aging did not raise retries: fast %d, slow %d",
			fast.TotalRetries, slow.TotalRetries)
	}
	if fast.MeanReadUS <= slow.MeanReadUS {
		t.Fatalf("aging did not raise read latency: fast %v, slow %v",
			fast.MeanReadUS, slow.MeanReadUS)
	}
}

// TestCalibrationChargedAsQueueLatency: a read arriving just after a
// periodic calibration came due must queue behind it for (almost) the
// full calibration time.
func TestCalibrationChargedAsQueueLatency(t *testing.T) {
	const calibUS = 500.0
	run := func(life *LifetimeConfig) float64 {
		cfg := engineConfig()
		cfg.Life = life
		sim, err := New(cfg, FixedSampler{})
		if err != nil {
			t.Fatal(err)
		}
		warm := []trace.Request{{ArriveUS: 0, Op: trace.Read, LPN: 7, Pages: 1}}
		if err := sim.Precondition(warm); err != nil {
			t.Fatal(err)
		}
		// At 1 h/s, the 1-hour calibration period elapses at trace
		// microsecond 1e6; the read arrives 1 µs after that.
		rep, err := sim.Run([]trace.Request{
			{ArriveUS: 1e6 + 1, Op: trace.Read, LPN: 7, Pages: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanReadUS
	}
	base := run(&LifetimeConfig{HoursPerSecond: 1})
	delayed := run(&LifetimeConfig{
		HoursPerSecond: 1, CalibPeriodHours: 1, CalibUS: calibUS,
	})
	// The calibration started at the due instant (1e6 µs), the read
	// arrived 1 µs later, so it waits calibUS-1 µs.
	if want := base + calibUS - 1; math.Abs(delayed-want) > 1e-9 {
		t.Fatalf("calibration queue charge: delayed read %v µs, want %v (base %v)",
			delayed, want, base)
	}
}

// TestFailedEraseWearVisibleInLifetime is the fault-injected satellite
// test: erases that fail still wear blocks, and that wear must reach
// the lifetime state and the report.
func TestFailedEraseWearVisibleInLifetime(t *testing.T) {
	cfg := engineConfig()
	cfg.Life = &LifetimeConfig{HoursPerSecond: 3600}
	cfg.PEFaults = fault.MustNew(fault.Profile{
		Seed:             13,
		FTLEraseFailRate: 0.05,
	})
	sim, err := New(cfg, lifeSampler())
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite a small working set long enough to force GC erases.
	span := int64(cfg.Geo.PagesTotal() / 8)
	var reqs []trace.Request
	for i := 0; i < cfg.Geo.PagesTotal()*2; i++ {
		reqs = append(reqs, trace.Request{
			ArriveUS: float64(i) * 10,
			Op:       trace.Write,
			LPN:      int64(i*7919) % span,
			Pages:    1,
		})
	}
	rep, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Life.RunErases == 0 || rep.Life.WornBlocks == 0 {
		t.Fatalf("no wear recorded over a GC-heavy replay: %+v", rep.Life)
	}
	if rep.Life.FailedEraseWear == 0 {
		t.Fatalf("failed erases invisible to lifetime state: %+v (retired %d)",
			rep.Life, rep.RetiredBlocks)
	}
	if rep.Life.MaxBlockWear == 0 {
		t.Fatalf("max block wear zero with %d erases", rep.Life.RunErases)
	}
}

// TestFrozenReportUnchangedByLifetimeCode: with Life nil the report —
// including its %v rendering, which the golden digests hash — must not
// mention lifetime state beyond the zero-value struct, and replay
// results must be identical to the pre-lifetime path (covered by the
// frozen golden cells; here we pin the zero value).
func TestFrozenReportUnchangedByLifetimeCode(t *testing.T) {
	cfg := engineConfig()
	sim, err := New(cfg, benchSampler())
	if err != nil {
		t.Fatal(err)
	}
	reqs := engineTrace(t, 2000)
	if err := sim.Precondition(reqs); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Life != (LifetimeStats{}) {
		t.Fatalf("frozen replay accrued lifetime state: %+v", rep.Life)
	}
	sum := rep.Summary()
	if v := reflect.ValueOf(sum).FieldByName("Life"); v.IsValid() {
		t.Fatal("LifetimeStats leaked into ReportSummary — golden digests would break")
	}
}

// boxedStressSampler hides the concrete *LifetimeSampler so the Sim
// takes the interface (ssampler) path instead of the devirtualized one.
type boxedStressSampler struct{ ls *LifetimeSampler }

func (b boxedStressSampler) Sample(pt int, rng *mathx.Rand) RetryOutcome {
	return b.ls.Sample(pt, rng)
}

func (b boxedStressSampler) SampleStressed(pt int, st physics.Stress, rng *mathx.Rand) RetryOutcome {
	return b.ls.SampleStressed(pt, st, rng)
}

// TestLifetimePoolCacheMatchesDirectLookup: the per-block expiry cache
// used by the devirtualized sampler path must resolve exactly the pool
// that gridPool resolves from the block's recomputed stress on every
// read — pinned by running the same replay through both paths and
// requiring byte-identical reports (same pools → same RNG draws).
func TestLifetimePoolCacheMatchesDirectLookup(t *testing.T) {
	reqs := engineTrace(t, 12000)
	run := func(sampler RetrySampler) *Report {
		cfg := engineConfig()
		cfg.Life = lifeConfig()
		sim, err := New(cfg, sampler)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Precondition(reqs); err != nil {
			t.Fatal(err)
		}
		sim.beginReplay()
		rep, err := sim.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cached := run(lifeSampler())
	direct := run(boxedStressSampler{lifeSampler()})
	if !reflect.DeepEqual(cached, direct) {
		t.Fatalf("pool cache diverged from per-read grid lookup:\n got %+v\nwant %+v",
			cached, direct)
	}
	if cached.TotalRetries == 0 {
		t.Fatal("degenerate comparison: no retries drawn")
	}
}

func TestLifetimeSamplerValidate(t *testing.T) {
	good := lifeSampler()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*LifetimeSampler{
		{PEs: nil, Hours: []float64{0}},
		{PEs: []int{0, 0}, Hours: []float64{0}, Pools: make([]*EmpiricalSampler, 2)},
		{PEs: []int{0}, Hours: []float64{5, 1}, Pools: make([]*EmpiricalSampler, 2)},
		{PEs: []int{0}, Hours: []float64{0}, Pools: []*EmpiricalSampler{nil}},
	}
	for i, ls := range bad {
		if err := ls.Validate(); err == nil {
			t.Fatalf("bad grid %d accepted", i)
		}
	}
	// Grid lookup floors and clamps.
	if p := good.gridPool(physics.Stress{PECycles: -5}); p != good.Pools[0] {
		t.Fatal("negative PE did not clamp to origin")
	}
	if p := good.gridPool(physics.Stress{PECycles: 99999, EffRetentionHours: 1e9}); p != good.Pools[len(good.Pools)-1] {
		t.Fatal("huge stress did not clamp to the last grid point")
	}
	if p := good.gridPool(physics.Stress{PECycles: 2100, EffRetentionHours: 250}); p != good.Pools[1*4+1] {
		t.Fatal("mid stress did not floor to (2000, 200)")
	}
}

func TestLifetimeConfigValidate(t *testing.T) {
	for _, bad := range []LifetimeConfig{
		{BasePE: -1},
		{BaseRetentionHours: -3},
		{Schedule: physics.TempSchedule{BaseC: -200}},
		{ActivationEnergyEV: -1},
		{HoursPerSecond: -2},
		{CalibPeriodHours: 24}, // scheduled but free
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v accepted", bad)
		}
	}
	if err := (LifetimeConfig{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if err := lifeConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}
