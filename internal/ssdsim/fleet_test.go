package ssdsim

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sentinel3d/internal/ftl"
)

// fleetTestConfig is a small 2-shard fleet with a slow/fast sampler pair.
func fleetTestConfig() FleetConfig {
	sim := DefaultConfig()
	sim.Geo = ftl.Geometry{Channels: 4, ChipsPerChan: 1, DiesPerChip: 2,
		PlanesPerDie: 2, BlocksPerPlane: 32, PagesPerBlock: 192}
	sim.Seed = 42
	return FleetConfig{
		Sim:         sim,
		Shards:      2,
		PremapPages: 4096,
		Samplers: map[string]RetrySampler{
			"sentinel": &EmpiricalSampler{PerPage: [][]RetryOutcome{
				{{Retries: 0}}, {{Retries: 0, AuxSenses: 1}}, {{Retries: 1, AuxSenses: 1}},
			}},
			"table": &EmpiricalSampler{PerPage: [][]RetryOutcome{
				{{Retries: 1}}, {{Retries: 2}}, {{Retries: 4}, {Retries: 6}},
			}},
		},
	}
}

func TestFleetDeterministicOutcomes(t *testing.T) {
	results := make([]map[int64]FleetResult, 2)
	for run := 0; run < 2; run++ {
		fl, err := NewFleet(fleetTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[int64]FleetResult)
		var mu sync.Mutex
		var wg sync.WaitGroup
		// Concurrent submitters in run-dependent order: outcomes must not
		// depend on arrival order.
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 64; i++ {
					lpn := int64((i*4 + (w+run)%4) * 17 % 4096)
					res, err := fl.Submit(context.Background(),
						FleetRead{LPN: lpn, Pages: 2, Policy: "sentinel"})
					if err != nil {
						t.Error(err)
						return
					}
					res.QueueWait = 0 // wall-clock, excluded from comparison
					mu.Lock()
					got[lpn] = res
					mu.Unlock()
				}
			}(w)
		}
		wg.Wait()
		fl.Close()
		results[run] = got
	}
	if len(results[0]) == 0 {
		t.Fatal("no results")
	}
	for lpn, a := range results[0] {
		if b, ok := results[1][lpn]; !ok || a != b {
			t.Fatalf("lpn %d: run 0 %+v, run 1 %+v", lpn, a, b)
		}
	}
}

func TestFleetPolicySelectsSampler(t *testing.T) {
	fl, err := NewFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	sent, err := fl.Submit(context.Background(), FleetRead{LPN: 10, Policy: "sentinel"})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := fl.Submit(context.Background(), FleetRead{LPN: 10, Policy: "table"})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Retries <= sent.Retries && tab.SimUS <= sent.SimUS {
		t.Fatalf("table read (%+v) not slower than sentinel read (%+v)", tab, sent)
	}
	if _, err := fl.Submit(context.Background(), FleetRead{LPN: 10, Policy: "nope"}); !errors.Is(err, ErrUnknownPolicy) {
		t.Fatalf("unknown policy: got %v", err)
	}
}

func TestFleetFailFastCapsRetries(t *testing.T) {
	fl, err := NewFleet(fleetTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	// MSB pages of the table sampler need 4 or 6 retries; a budget of 1
	// must cut them off and fail the read fast.
	var sawFast bool
	for lpn := int64(0); lpn < 64; lpn++ {
		res, err := fl.Submit(context.Background(),
			FleetRead{LPN: lpn, Pages: 3, Policy: "table", MaxRetries: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Retries > 3 { // 3 pages x <=1 retry
			t.Fatalf("lpn %d: budget 1 but %d retries", lpn, res.Retries)
		}
		if res.FailFast {
			if !res.Uncorrectable {
				t.Fatalf("lpn %d: fail-fast read not marked uncorrectable", lpn)
			}
			sawFast = true
		}
	}
	if !sawFast {
		t.Fatal("no read hit the fail-fast cap")
	}
}

func TestFleetCorruptionRate(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.CorruptRate = 1
	fl, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	res, err := fl.Submit(context.Background(), FleetRead{LPN: 3, Policy: "sentinel"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Uncorrectable {
		t.Fatal("corrupt rate 1 but read decoded")
	}
}

// stallGate is a Stall hook the tests open and close.
type stallGate struct {
	on      atomic.Bool
	release chan struct{}
}

func (g *stallGate) stall(int) time.Duration {
	if g.on.Load() {
		<-g.release
	}
	return 0
}

func TestFleetBackpressureAndDeadline(t *testing.T) {
	gate := &stallGate{release: make(chan struct{})}
	gate.on.Store(true)
	cfg := fleetTestConfig()
	cfg.Shards = 1
	cfg.QueueDepth = 4
	cfg.Stall = gate.stall
	fl, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// One request occupies the worker (blocked in the stall hook); fill
	// the queue behind it, then the next submission must bounce.
	var wg sync.WaitGroup
	errs := make([]error, cfg.QueueDepth+1)
	for i := 0; i <= cfg.QueueDepth; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_, errs[i] = fl.Submit(ctx, FleetRead{LPN: int64(i), Policy: "sentinel"})
		}(i)
		// Serialize so occupancy is predictable: worker takes the first,
		// queue holds the rest.
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := fl.Submit(context.Background(), FleetRead{LPN: 99, Policy: "sentinel"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue: got %v", err)
	}
	if frac := fl.MaxQueueFrac(); frac < 0.9 {
		t.Fatalf("queue frac %g with a full queue", frac)
	}
	// Hold the gate until every queued request's 50ms deadline has
	// passed, then release: the worker must reject them on arrival, not
	// service them.
	time.Sleep(120 * time.Millisecond)
	gate.on.Store(false)
	close(gate.release)
	wg.Wait()
	var expired int
	for _, err := range errs {
		if errors.Is(err, context.DeadlineExceeded) {
			expired++
		}
	}
	if expired == 0 {
		t.Fatal("no queued request was rejected on arrival after its deadline")
	}

	fl.Close()
	if _, err := fl.Submit(context.Background(), FleetRead{LPN: 1, Policy: "sentinel"}); !errors.Is(err, ErrFleetStopped) {
		t.Fatalf("stopped fleet: got %v", err)
	}
}

func TestFleetCloseDrainsQueued(t *testing.T) {
	cfg := fleetTestConfig()
	cfg.Shards = 1
	fl, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := fl.Submit(context.Background(),
				FleetRead{LPN: int64(i), Policy: "table"}); err == nil {
				ok.Add(1)
			}
		}(i)
	}
	wg.Wait() // every submission resolved before Close
	fl.Close()
	if ok.Load() != n {
		t.Fatalf("%d/%d in-flight reads serviced", ok.Load(), n)
	}
}
