package retry

import "sentinel3d/internal/flash"

// CombinedPolicy implements the extension the paper sketches in Section V:
// "read operations can start with the tracked optimal read voltages to
// reduce the failure rate of the first read operation, and our sentinel
// based prediction is applied once there is a read failure."
//
// The first attempt uses the block's tracked offsets (when available);
// any failure falls through to sentinel inference and calibration.
type CombinedPolicy struct {
	Tracking *TrackingPolicy
	Sentinel *SentinelPolicy
}

// NewCombined wires a tracking policy and a sentinel policy together.
func NewCombined(tracking *TrackingPolicy, sentinel *SentinelPolicy) *CombinedPolicy {
	return &CombinedPolicy{Tracking: tracking, Sentinel: sentinel}
}

// Name implements Policy.
func (p *CombinedPolicy) Name() string { return "tracking+sentinel" }

// Session implements Policy.
func (p *CombinedPolicy) Session(env *Env) Session {
	return &combinedSession{
		tracked:  p.Tracking.Tracked(env.B),
		sentinel: p.Sentinel.Session(env).(*sentinelSession),
	}
}

type combinedSession struct {
	tracked  flash.Offsets
	sentinel *sentinelSession
}

func (s *combinedSession) NextOffsets(k int, prior flash.Bitmap, priorOfs flash.Offsets) (flash.Offsets, bool) {
	if k == 0 && s.tracked != nil {
		return s.tracked, true
	}
	// Delegate to the sentinel session. Its k=1 step measures the error
	// difference at the *default* sentinel voltage; the tracked first
	// attempt applied a different offset there, so for non-LSB pages it
	// performs the auxiliary default-voltage sense as usual. For LSB
	// pages the prior readout was taken at the tracked offset, so it
	// cannot be reused as the default-voltage sense — force the auxiliary
	// read by presenting the page as non-reusable.
	if k >= 1 && s.tracked != nil && s.sentinel.env.Page == flash.PageLSB {
		return s.sentinel.nextWithAuxSense(k, priorOfs)
	}
	return s.sentinel.NextOffsets(k, prior, priorOfs)
}

// nextWithAuxSense mirrors sentinelSession.NextOffsets but always obtains
// sentinel-voltage senses through auxiliary reads (used when the prior
// readout was taken at non-default offsets).
func (s *sentinelSession) nextWithAuxSense(k int, _ flash.Offsets) (flash.Offsets, bool) {
	eng := s.p.Engine
	sv := eng.Model.SentinelVoltage
	switch {
	case k == 1:
		s.defaultSense = s.env.Sense(sv, 0)
		d, ofs := eng.Infer(s.defaultSense)
		s.lastD = d
		s.sentOfs = ofs.Get(sv)
		return ofs, true
	default:
		if k-1 > eng.Cal.MaxSteps {
			return nil, false
		}
		curSense := s.env.Sense(sv, s.sentOfs)
		newOfs, vec := eng.CalibrationStep(s.sentOfs, s.defaultSense, curSense)
		s.sentOfs = newOfs
		return vec, true
	}
}
