package retry

import (
	"math"

	"sentinel3d/internal/obs"
)

// Metrics bundles the retry layer's observability handles. A nil
// *Metrics (the default) makes every recording call a no-op, so an
// uninstrumented controller pays one nil check per read.
type Metrics struct {
	Reads         *obs.Counter
	Retries       *obs.Counter
	ShavedRetries *obs.Counter
	AuxSenses     *obs.Counter
	LSBReuses     *obs.Counter
	Fallbacks     *obs.Counter
	Uncorrectable *obs.Counter
	// FirstAttempt counts reads that decoded on the very first attempt
	// — the headline number of the adaptive (history-cache) policies.
	FirstAttempt *obs.Counter
	// CacheHits/CacheMisses/CacheEvicts instrument the offset-history
	// cache consulted by HistoryPolicy and SentinelHistoryPolicy.
	CacheHits   *obs.Counter
	CacheMisses *obs.Counter
	CacheEvicts *obs.Counter
	Latency     *obs.Hist
	// OverlapSaved is the per-read latency hidden by pipelined
	// (AR²-style) retry stepping, µs; only overlapping reads observe.
	OverlapSaved *obs.Hist

	// tableStep is the sentinel-voltage-equivalent step of the vendor
	// table the shaved-retries estimate compares against; 0 disables
	// the estimate.
	tableStep float64
}

// NewMetrics binds the retry layer's handles to set; a nil set yields
// a nil (no-op) Metrics. tableStep is the DefaultTablePolicy step the
// shaved-vs-table estimate uses (0 when no table baseline applies).
func NewMetrics(set *obs.Set, tableStep float64) *Metrics {
	if set == nil {
		return nil
	}
	return &Metrics{
		Reads:         set.Counter("retry.reads", "chip-level page reads serviced"),
		Retries:       set.Counter("retry.retries", "re-read attempts after the first read"),
		ShavedRetries: set.Counter("retry.shaved_vs_table", "estimated static-table retries the policy avoided"),
		AuxSenses:     set.Counter("retry.aux_senses", "auxiliary single-voltage sentinel reads"),
		LSBReuses:     set.Counter("retry.lsb_reuses", "sentinel senses served free from an LSB readout"),
		Fallbacks:     set.Counter("retry.fallbacks", "reads that degraded to the fallback path"),
		Uncorrectable: set.Counter("retry.uncorrectable", "reads that exhausted the retry budget"),
		FirstAttempt:  set.Counter("retry.first_attempt_hits", "reads decoded on the first attempt"),
		CacheHits:     set.Counter("retry.cache_hits", "offset-history cache hits"),
		CacheMisses:   set.Counter("retry.cache_misses", "offset-history cache misses"),
		CacheEvicts:   set.Counter("retry.cache_evicts", "offset-history cache evictions"),
		Latency:       set.Hist("retry.latency_us", "chip-level read service time, µs"),
		OverlapSaved:  set.Hist("retry.overlap_saved_us", "latency hidden by pipelined retry stepping, µs"),
		tableStep:     tableStep,
	}
}

// record accounts one attempted read. sentinelV is the coding's
// sentinel voltage index, used to translate the final offset vector
// into static-table terms.
func (m *Metrics) record(res *Result, sentinelV int) {
	if m == nil || res.Err != nil {
		return
	}
	m.Reads.Inc()
	m.Retries.Add(int64(res.Retries))
	m.AuxSenses.Add(int64(res.AuxSenses))
	if res.UsedFallback {
		m.Fallbacks.Inc()
	}
	if res.Uncorrectable {
		m.Uncorrectable.Inc()
	}
	if res.OK && res.Retries == 0 {
		m.FirstAttempt.Inc()
	}
	if res.OverlapSavedUS > 0 {
		m.OverlapSaved.Observe(res.OverlapSavedUS)
	}
	m.Latency.Observe(res.Latency)
	// Shaved-vs-table estimate: the table's shape profile is normalized
	// to 1 at the sentinel voltage (see NewDefaultTable), so entry k
	// applies offset -k*Step there. The entry count the table would
	// have needed to reach the read's final offsets is |final|/Step
	// rounded; whatever exceeds the retries actually spent was shaved.
	if res.OK && m.tableStep > 0 && len(res.FinalOffsets) > 0 {
		entries := int(math.Round(math.Abs(res.FinalOffsets.Get(sentinelV)) / m.tableStep))
		if shaved := entries - res.Retries; shaved > 0 {
			m.ShavedRetries.Add(int64(shaved))
		}
	}
}

// lsbReuse counts a sentinel sense served for free from an LSB
// readout (no auxiliary flash operation was issued).
func (m *Metrics) lsbReuse() {
	if m == nil {
		return
	}
	m.LSBReuses.Inc()
}

// cacheHit / cacheMiss / cacheEvict account one offset-history cache
// consultation or write-back eviction; nil-safe like every recorder.
func (m *Metrics) cacheHit() {
	if m == nil {
		return
	}
	m.CacheHits.Inc()
}

func (m *Metrics) cacheMiss() {
	if m == nil {
		return
	}
	m.CacheMisses.Inc()
}

func (m *Metrics) cacheEvict() {
	if m == nil {
		return
	}
	m.CacheEvicts.Inc()
}
