package retry

import (
	"math"
	"testing"

	"sentinel3d/internal/flash"
)

// FuzzHistCache drives an arbitrary op sequence (decoded from the fuzz
// input) against a cache with fuzzed geometry and checks the structural
// invariants the read policies rely on: every vector a Get returns has
// exactly nv components, each finite and inside the clamp bound;
// residency never exceeds the derived capacity; a shadow-model check
// keeps Get results consistent with the last Put of that block; and
// Snapshot stays sorted per shard with no duplicate blocks.
func FuzzHistCache(f *testing.F) {
	f.Add(uint8(4), uint8(7), float64(10), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), uint8(1), float64(0), []byte{0xff, 0x00, 0xff})
	f.Add(uint8(16), uint8(15), float64(0.5), []byte{7, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Fuzz(func(t *testing.T, shards, nv uint8, bound float64, ops []byte) {
		sc := int(shards%16) + 1
		vc := int(nv%16) + 1
		if math.IsNaN(bound) || math.IsInf(bound, 0) || bound < 0 {
			bound = 0
		}
		// Budget for ~24 entries total, whatever the geometry.
		cache, err := NewHistCache(sc, 24*histEntryBytes(vc), vc, bound)
		if err != nil {
			t.Fatalf("NewHistCache(%d, _, %d, %g): %v", sc, vc, bound, err)
		}
		// shadow holds each block's last stored vector — authoritative
		// while the block stays resident.
		shadow := map[int]flash.Offsets{}
		for i := 0; i+2 < len(ops); i += 3 {
			block := int(ops[i] % 64)
			raw := float64(int8(ops[i+1])) * 1.5
			switch ops[i+2] % 3 {
			case 0:
				n := int(ops[i+2]%5) + vc - 2
				if n < 0 {
					n = 0
				}
				in := make(flash.Offsets, n)
				for v := range in {
					in[v] = raw + float64(v)
				}
				cache.Put(block, in)
				want := make(flash.Offsets, vc)
				for v := 0; v < vc && v < len(in); v++ {
					o := in[v]
					if bound > 0 {
						o = math.Max(-bound, math.Min(bound, o))
					}
					want[v] = o
				}
				shadow[block] = want
			case 1:
				ofs, ok := cache.Get(block)
				if !ok {
					continue
				}
				if len(ofs) != vc {
					t.Fatalf("Get(%d) returned %d components, want %d", block, len(ofs), vc)
				}
				for v, o := range ofs {
					if math.IsNaN(o) || math.IsInf(o, 0) {
						t.Fatalf("Get(%d)[%d] = %v not finite", block, v, o)
					}
					if bound > 0 && math.Abs(o) > bound {
						t.Fatalf("Get(%d)[%d] = %v outside bound %g", block, v, o, bound)
					}
					if want, ok := shadow[block]; ok && o != want[v] {
						t.Fatalf("Get(%d)[%d] = %v, last Put stored %v", block, v, o, want[v])
					}
				}
			default:
				snap := cache.Snapshot()
				if len(snap) != cache.Len() {
					t.Fatalf("Snapshot len %d != Len %d", len(snap), cache.Len())
				}
				seen := map[int]bool{}
				for _, e := range snap {
					if seen[e.Block] {
						t.Fatalf("Snapshot lists block %d twice", e.Block)
					}
					seen[e.Block] = true
					if len(e.Offsets) != vc {
						t.Fatalf("Snapshot block %d has %d components", e.Block, len(e.Offsets))
					}
				}
			}
			if l, c := cache.Len(), cache.Cap(); l > c {
				t.Fatalf("Len %d over Cap %d", l, c)
			}
		}
	})
}
