package retry

import (
	"math"
	"reflect"
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
)

// TestStepLatencySerialPin pins the serial path byte-for-byte: with
// overlap off, StepLatency must equal PageRead exactly — the frozen
// replay goldens ride on this identity — and with overlap on it hides
// min(decode, sense) of each step.
func TestStepLatencySerialPin(t *testing.T) {
	l := DefaultLatency()
	for n := 1; n <= 8; n++ {
		if got, want := l.StepLatency(n, false), l.PageRead(n); got != want {
			t.Fatalf("StepLatency(%d, false) = %v, PageRead = %v", n, got, want)
		}
		// Default model: decode (8) is always cheaper than any sense
		// (25 + 12n), so pipelining hides exactly the decode.
		if got, want := l.StepLatency(n, true), l.PageRead(n)-l.ECCDecode; got != want {
			t.Fatalf("StepLatency(%d, true) = %v, want %v", n, got, want)
		}
	}
	// When the sense is the cheaper half, it is what hides.
	short := DefaultLatency()
	short.SenseBase, short.SensePerLevel, short.ECCDecode = 2, 1, 50
	if got, want := short.StepLatency(3, true), short.PageRead(3)-5.0; got != want {
		t.Fatalf("sense-bound StepLatency = %v, want %v", got, want)
	}
}

// TestAR2MatchesTableRetries: AR² walks the same vendor table and every
// attempt is a fresh sense, so at the same read seed its retry counts
// and final errors are identical to the serial table — only the latency
// (each retry hides the decode) and OverlapSavedUS differ.
func TestAR2MatchesTableRetries(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 2)
	ar2 := NewAR2(table)
	sawRetry := false
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		seed := mathx.Mix(0xa2, uint64(wl))
		rT := ctl.Read(0, wl, 2, table, seed)
		rA := ctl.Read(0, wl, 2, ar2, seed)
		if rA.Retries != rT.Retries || rA.OK != rT.OK || rA.FinalErrors != rT.FinalErrors {
			t.Fatalf("wl %d: ar2 (retries %d ok %v errs %d) diverged from table (%d %v %d)",
				wl, rA.Retries, rA.OK, rA.FinalErrors, rT.Retries, rT.OK, rT.FinalErrors)
		}
		if !reflect.DeepEqual(rA.FinalOffsets, rT.FinalOffsets) {
			t.Fatalf("wl %d: offset schedules diverged", wl)
		}
		wantSaved := float64(rT.Retries) * ctl.Lat.ECCDecode
		if math.Abs(rA.OverlapSavedUS-wantSaved) > 1e-9 {
			t.Fatalf("wl %d: OverlapSavedUS = %v, want %v", wl, rA.OverlapSavedUS, wantSaved)
		}
		if math.Abs((rT.Latency-rA.Latency)-wantSaved) > 1e-9 {
			t.Fatalf("wl %d: latency gap %v, want %v", wl, rT.Latency-rA.Latency, wantSaved)
		}
		if rT.OverlapSavedUS != 0 {
			t.Fatalf("wl %d: serial table reported overlap savings %v", wl, rT.OverlapSavedUS)
		}
		if rT.Retries > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Skip("aged chip produced no MSB retries; overlap path unexercised")
	}
}

// TestHistoryPolicyWriteBack: a cold read walks the table from factory
// defaults and writes its final offsets back; the next read of the same
// block starts there and never does worse.
func TestHistoryPolicyWriteBack(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewHistCache(4, 64<<10, chip.Coding().NumVoltages(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewHistoryPolicy(cache, NewDefaultTable(chip, 2), true)
	first := ctl.Read(0, 0, 2, pol, 1)
	if !first.OK {
		t.Fatal("cold read failed outright")
	}
	if cache.Len() != 1 {
		t.Fatalf("write-back left %d entries, want 1", cache.Len())
	}
	got, ok := cache.Get(0)
	if !ok || !reflect.DeepEqual(got, first.FinalOffsets) {
		t.Fatalf("cached %v, final offsets were %v", got, first.FinalOffsets)
	}
	second := ctl.Read(0, 0, 2, pol, 2)
	if !second.OK {
		t.Fatal("warm read failed")
	}
	if second.Retries > first.Retries {
		t.Fatalf("warm read needed %d retries, cold needed %d",
			second.Retries, first.Retries)
	}
	st := cache.Stats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("stats = %+v, want at least one hit and one miss", st)
	}

	// WriteBack off: reads consult but never mutate.
	frozen, err := NewHistCache(4, 64<<10, chip.Coding().NumVoltages(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ro := NewHistoryPolicy(frozen, NewDefaultTable(chip, 2), false)
	if res := ctl.Read(0, 1, 2, ro, 3); !res.OK {
		t.Fatal("frozen-cache read failed")
	}
	if frozen.Len() != 0 {
		t.Fatalf("frozen cache gained %d entries", frozen.Len())
	}
}

// TestSentinelHistoryWarmStart: WarmHistCache seeds the cache from one
// sentinel inference, and the combined policy consults it first — its
// MSB reads spend no more senses (attempts + aux) than plain sentinel.
func TestSentinelHistoryWarmStart(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := NewHistCache(4, 64<<10, chip.Coding().NumVoltages(), eng.OffsetBound())
	if err != nil {
		t.Fatal(err)
	}
	if n := WarmHistCache(cache, chip, eng, []int{0}, 0, 0x9157); n != 1 {
		t.Fatalf("warmed %d blocks, want 1", n)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache holds %d entries after warming, want 1", cache.Len())
	}
	sent := NewSentinelPolicy(eng)
	comb := NewSentinelHistory(cache, sent, false)
	var sentSenses, combSenses int
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		seed := mathx.Mix(0x51, uint64(wl))
		rS := ctl.Read(0, wl, 2, sent, seed)
		rC := ctl.Read(0, wl, 2, comb, seed)
		if !rS.OK || !rC.OK {
			t.Fatalf("wl %d: read failed (sentinel %v, combined %v)", wl, rS.OK, rC.OK)
		}
		sentSenses += 1 + rS.Retries + rS.AuxSenses
		combSenses += 1 + rC.Retries + rC.AuxSenses
	}
	if combSenses > sentSenses {
		t.Fatalf("sentinel+history spent %d senses, plain sentinel %d",
			combSenses, sentSenses)
	}
}

// TestAdaptiveMetricsCounters: the new metrics fields — first-attempt
// hits, cache hits/misses, overlap savings — all move under the
// adaptive policies.
func TestAdaptiveMetricsCounters(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(1)
	ctl.Obs = NewMetrics(reg.Set(0), 2)
	cache, err := NewHistCache(4, 64<<10, chip.Coding().NumVoltages(), 0)
	if err != nil {
		t.Fatal(err)
	}
	hist := NewHistoryPolicy(cache, NewDefaultTable(chip, 2), true)
	ar2 := NewAR2(NewDefaultTable(chip, 2))
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		ctl.Read(0, wl, 2, hist, mathx.Mix(6, uint64(wl)))
		ctl.Read(0, wl, 2, ar2, mathx.Mix(7, uint64(wl)))
	}
	m := ctl.Obs
	if m.CacheMisses.Value() == 0 {
		t.Error("no cache misses recorded on a cold cache")
	}
	// Re-read every block: all warm now.
	before := m.CacheHits.Value()
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		ctl.Read(0, wl, 2, hist, mathx.Mix(8, uint64(wl)))
	}
	if m.CacheHits.Value() <= before {
		t.Error("warm re-reads recorded no cache hits")
	}
	if m.FirstAttempt.Value() == 0 {
		t.Error("no first-attempt hits recorded")
	}
	found := false
	for _, h := range reg.Snapshot().Hists {
		if h.Name == "retry.overlap_saved_us" {
			found = true
			if h.Hist.Count() == 0 {
				t.Error("pipelined reads recorded no overlap savings")
			}
		}
	}
	if !found {
		t.Error("retry.overlap_saved_us not in snapshot")
	}
}
