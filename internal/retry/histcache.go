package retry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

// HistCache is a sharded, lock-striped last-known-good offset cache
// keyed by block: the adaptive read policies (HistoryPolicy,
// SentinelHistoryPolicy) start each read at the block's cached offset
// vector so the first attempt usually lands, in the spirit of the
// AR²/PR² follow-on literature.
//
// Layout: a power-of-2 number of shards, each a mutex-guarded
// bounded-capacity entry table with CLOCK (second-chance) eviction.
// Blocks route to shards by a stateless hash, so unrelated blocks
// contend on different locks. The total capacity derives from a byte
// budget at construction.
//
// Determinism: cache contents are a set — the same (block, offsets)
// writes produce the same contents regardless of arrival order, as long
// as no shard exceeds its capacity (eviction order is the only
// order-sensitive behaviour). Replay paths therefore warm the cache
// sequentially under capacity and read it frozen (WriteBack off), which
// makes replay reports byte-identical at any worker count; live
// write-back is for serving paths where determinism is not contractual.
// Snapshot walks shards in index order and sorts entries by block, so
// equal contents render identically.
type HistCache struct {
	shards []histShard
	mask   uint64
	nv     int
	bound  float64
	perCap int

	hits   atomic.Int64
	misses atomic.Int64
	stores atomic.Int64
	evicts atomic.Int64
}

// histShard is one lock stripe: a bounded entry table with its CLOCK
// hand. index maps block -> position in entries.
type histShard struct {
	mu      sync.Mutex
	index   map[int]int
	entries []histEntry
	hand    int
}

// histEntry is one block's last-known-good offsets plus its CLOCK
// reference bit.
type histEntry struct {
	block int
	ofs   flash.Offsets
	ref   bool
}

// histEntryBytes estimates the resident size of one cache entry for the
// byte-budget capacity derivation: the entry struct, its offsets
// backing array, and the index map slot.
func histEntryBytes(nv int) int { return 96 + nv*8 }

// NewHistCache builds a cache of shardCount lock stripes (rounded up to
// a power of two) whose total capacity fits budgetBytes, for offset
// vectors of nv read voltages. bound, when positive, clamps every
// stored offset component to [-bound, bound] — feed the sentinel
// engine's OffsetBound so a wild write-back can never push reads
// outside the inference domain.
func NewHistCache(shardCount int, budgetBytes int, nv int, bound float64) (*HistCache, error) {
	if shardCount < 1 {
		return nil, fmt.Errorf("retry: hist cache needs >= 1 shard, got %d", shardCount)
	}
	if nv < 1 {
		return nil, fmt.Errorf("retry: hist cache needs >= 1 voltage, got %d", nv)
	}
	if budgetBytes < histEntryBytes(nv) {
		return nil, fmt.Errorf("retry: hist cache budget %dB below one entry (%dB)",
			budgetBytes, histEntryBytes(nv))
	}
	if bound < 0 {
		return nil, fmt.Errorf("retry: negative hist cache bound %g", bound)
	}
	shards := 1
	for shards < shardCount {
		shards <<= 1
	}
	perCap := budgetBytes / histEntryBytes(nv) / shards
	if perCap < 1 {
		perCap = 1
	}
	c := &HistCache{
		shards: make([]histShard, shards),
		mask:   uint64(shards - 1),
		nv:     nv,
		bound:  bound,
		perCap: perCap,
	}
	for i := range c.shards {
		c.shards[i].index = make(map[int]int, perCap)
	}
	return c, nil
}

// shardOf routes a block to its lock stripe.
func (c *HistCache) shardOf(block int) *histShard {
	return &c.shards[mathx.Mix(0x8157cace, uint64(int64(block)))&c.mask]
}

// Cap returns the total entry capacity across shards.
func (c *HistCache) Cap() int { return c.perCap * len(c.shards) }

// Shards returns the shard (lock stripe) count.
func (c *HistCache) Shards() int { return len(c.shards) }

// Len returns the number of resident entries.
func (c *HistCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Get returns a copy of block's last-known-good offsets, marking the
// entry recently used. The caller owns the returned vector.
func (c *HistCache) Get(block int) (flash.Offsets, bool) {
	if block < 0 {
		c.misses.Add(1)
		return nil, false
	}
	s := c.shardOf(block)
	s.mu.Lock()
	i, ok := s.index[block]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.entries[i].ref = true
	ofs := s.entries[i].ofs.Clone()
	s.mu.Unlock()
	c.hits.Add(1)
	return ofs, true
}

// Put stores block's offsets (copied, truncated or zero-padded to the
// cache's voltage count, each component clamped to the bound) and
// reports whether the store evicted another entry. Negative blocks are
// ignored.
func (c *HistCache) Put(block int, ofs flash.Offsets) (evicted bool) {
	if block < 0 {
		return false
	}
	stored := make(flash.Offsets, c.nv)
	for v := 0; v < c.nv && v < len(ofs); v++ {
		o := ofs[v]
		if c.bound > 0 {
			if o > c.bound {
				o = c.bound
			} else if o < -c.bound {
				o = -c.bound
			}
		}
		stored[v] = o
	}
	s := c.shardOf(block)
	s.mu.Lock()
	if i, ok := s.index[block]; ok {
		s.entries[i].ofs = stored
		s.entries[i].ref = true
		s.mu.Unlock()
		c.stores.Add(1)
		return false
	}
	if len(s.entries) < c.perCap {
		s.index[block] = len(s.entries)
		s.entries = append(s.entries, histEntry{block: block, ofs: stored, ref: true})
		s.mu.Unlock()
		c.stores.Add(1)
		return false
	}
	// CLOCK second chance: sweep the hand, clearing reference bits,
	// until an unreferenced victim turns up. Bounded: after one full
	// sweep every bit is clear.
	for s.entries[s.hand].ref {
		s.entries[s.hand].ref = false
		s.hand = (s.hand + 1) % len(s.entries)
	}
	victim := s.hand
	delete(s.index, s.entries[victim].block)
	s.entries[victim] = histEntry{block: block, ofs: stored, ref: true}
	s.index[block] = victim
	s.hand = (victim + 1) % len(s.entries)
	s.mu.Unlock()
	c.stores.Add(1)
	c.evicts.Add(1)
	return true
}

// HistEntry is one Snapshot row.
type HistEntry struct {
	Block   int
	Offsets flash.Offsets
}

// Snapshot returns every resident entry, shards in index order and
// blocks ascending within each shard — equal contents always render
// identically, whatever order (or worker count) produced them.
func (c *HistCache) Snapshot() []HistEntry {
	var out []HistEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		start := len(out)
		for _, e := range s.entries {
			out = append(out, HistEntry{Block: e.block, Offsets: e.ofs.Clone()})
		}
		s.mu.Unlock()
		part := out[start:]
		sort.Slice(part, func(a, b int) bool { return part[a].Block < part[b].Block })
	}
	return out
}

// HistCacheStats are the cache's cumulative operation counts.
type HistCacheStats struct {
	Hits, Misses, Stores, Evicts int64
}

// Stats returns the cumulative operation counts.
func (c *HistCache) Stats() HistCacheStats {
	return HistCacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Stores: c.stores.Load(),
		Evicts: c.evicts.Load(),
	}
}
