package retry

import (
	"errors"
	"sync"
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/fault"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func TestReadReportsBadAddress(t *testing.T) {
	chip := flash.MustNew(testCfg(flash.TLC))
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 30},
		DefaultLatency(), 5)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 2)
	cases := [][3]int{
		{-1, 0, 0}, {1, 0, 0}, // block out of range (1 block configured)
		{0, -1, 0}, {0, chip.Config().WordlinesPerBlock(), 0},
		{0, 0, -1}, {0, 0, 3}, // TLC has pages 0..2
	}
	for _, c := range cases {
		res := ctl.Read(c[0], c[1], c[2], table, 1)
		if res.OK || !errors.Is(res.Err, ErrBadAddress) {
			t.Fatalf("Read(%v): ok=%v err=%v, want ErrBadAddress", c, res.OK, res.Err)
		}
		if res.Retries != 0 || res.Latency != 0 {
			t.Fatalf("Read(%v) did chip work despite bad address: %+v", c, res)
		}
	}
}

func TestReadReportsUnprogrammed(t *testing.T) {
	chip := flash.MustNew(testCfg(flash.TLC))
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 30},
		DefaultLatency(), 5)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 2)
	res := ctl.Read(0, 0, 0, table, 1)
	if res.OK || !errors.Is(res.Err, ErrNotProgrammed) {
		t.Fatalf("ok=%v err=%v, want ErrNotProgrammed", res.OK, res.Err)
	}
}

func TestUncorrectableFlag(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 0},
		DefaultLatency(), 2)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 2)
	res := ctl.Read(0, 0, 2, table, 1)
	if res.OK || !res.Uncorrectable {
		t.Fatalf("T=0 read: ok=%v uncorrectable=%v, want failed+uncorrectable",
			res.OK, res.Uncorrectable)
	}
	ctl.ECC = ecc.CapabilityModel{FrameBits: 8192, T: 30}
	ctl.MaxRetries = 15
	res = ctl.Read(0, 0, 2, table, 1)
	if !res.OK || res.Uncorrectable {
		t.Fatalf("healthy read: ok=%v uncorrectable=%v", res.OK, res.Uncorrectable)
	}
}

// stuckProfile returns a fault profile pinning frac of the sentinel-region
// cells high on every block of cfg.
func stuckProfile(cfg flash.Config, eng interface{ Indices() []int }, frac float64) fault.Profile {
	n := len(eng.Indices())
	return fault.Profile{
		Seed:              31,
		SentinelStuckRate: frac,
		SentinelRegion:    [2]int{cfg.CellsPerWordline - n, cfg.CellsPerWordline},
		StuckHighFraction: 1,
	}
}

func TestProbeBlockHealthyAndDegraded(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	table := NewDefaultTable(chip, 2)
	fb := NewFallback(NewSentinelPolicy(eng), table)

	if frac := fb.ProbeBlock(chip, 0, 0); frac > fb.Guard.StuckTolerance {
		t.Fatalf("healthy chip probed stuck fraction %v", frac)
	}
	if fb.BlockDegraded(0) {
		t.Fatal("healthy block marked degraded")
	}

	chip.SetFaults(fault.MustNew(stuckProfile(chip.Config(), eng, 0.10)))
	frac := fb.ProbeBlock(chip, 0, 0)
	if frac < 0.05 {
		t.Fatalf("10%% stuck cells probed as %v", frac)
	}
	if !fb.BlockDegraded(0) {
		t.Fatal("corrupted block not marked degraded")
	}

	// Re-probing after the faults clear restores the block.
	chip.SetFaults(nil)
	fb.ProbeBlock(chip, 0, 0)
	if fb.BlockDegraded(0) {
		t.Fatal("block still degraded after faults cleared")
	}
}

// TestDegradedBlockMatchesTable is the heart of the graceful-degradation
// guarantee: on a degraded block the fallback session issues byte-for-byte
// the same attempt sequence as the pure table policy, so its retry count
// can never exceed the baseline's.
func TestDegradedBlockMatchesTable(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	chip.SetFaults(fault.MustNew(stuckProfile(chip.Config(), eng, 0.10)))
	table := NewDefaultTable(chip, 2)
	fb := NewFallback(NewSentinelPolicy(eng), table)
	fb.ProbeBlock(chip, 0, 0)
	if !fb.BlockDegraded(0) {
		t.Fatal("probe did not degrade the corrupted block")
	}
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		seed := mathx.Mix(7, uint64(wl))
		rT := ctl.Read(0, wl, 2, table, seed)
		rF := ctl.Read(0, wl, 2, fb, seed)
		if rF.Retries != rT.Retries || rF.OK != rT.OK {
			t.Fatalf("wl %d: fallback (retries=%d ok=%v) != table (retries=%d ok=%v)",
				wl, rF.Retries, rF.OK, rT.Retries, rT.OK)
		}
		if rF.Retries > 0 && !rF.UsedFallback {
			t.Fatalf("wl %d: degraded-block read did not report UsedFallback", wl)
		}
	}
}

// TestGuardTripsWithoutProbe corrupts the sentinels but skips the block
// probe: the per-read plausibility guard alone must abandon sentinel
// inference instead of letting a nonsense offset burn the budget.
func TestGuardTripsWithoutProbe(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	chip.SetFaults(fault.MustNew(stuckProfile(chip.Config(), eng, 0.30)))
	table := NewDefaultTable(chip, 2)
	bare := NewSentinelPolicy(eng)
	fb := NewFallback(bare, table)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	sawFallback := false
	var fbSum, bareSum int
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		seed := mathx.Mix(8, uint64(wl))
		rF := ctl.Read(0, wl, 2, fb, seed)
		rB := ctl.Read(0, wl, 2, bare, seed)
		fbSum += rF.Retries
		bareSum += rB.Retries
		if rF.UsedFallback {
			sawFallback = true
		}
		if rB.OK && !rF.OK {
			t.Fatalf("wl %d: fallback failed where bare sentinel succeeded", wl)
		}
	}
	if !sawFallback {
		t.Fatal("30% stuck-high sentinels never tripped the per-read guard")
	}
}

func TestFallbackHealthyStaysOnSentinel(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	table := NewDefaultTable(chip, 2)
	bare := NewSentinelPolicy(eng)
	fb := NewFallback(bare, table)
	fb.ProbeBlock(chip, 0, 0)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		seed := mathx.Mix(9, uint64(wl))
		rF := ctl.Read(0, wl, 2, fb, seed)
		rB := ctl.Read(0, wl, 2, bare, seed)
		if rF.UsedFallback {
			t.Fatalf("wl %d: healthy read degraded to the table", wl)
		}
		if rF.Retries != rB.Retries {
			t.Fatalf("wl %d: fallback retries %d != bare sentinel %d on a healthy chip",
				wl, rF.Retries, rB.Retries)
		}
	}
	if fb.Name() != "sentinel+fallback" {
		t.Fatal("fallback name")
	}
}

// TestConcurrentReadsMatchSerial locks in the documented Chip concurrency
// contract: reads of distinct wordlines may run concurrently (the CI race
// job executes this test under -race) and produce exactly the serial
// results.
func TestConcurrentReadsMatchSerial(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	chip.SetFaults(fault.MustNew(stuckProfile(chip.Config(), eng, 0.05)))
	table := NewDefaultTable(chip, 2)
	fb := NewFallback(NewSentinelPolicy(eng), table)
	fb.ProbeBlock(chip, 0, 0) // coordinator-side, before the fan-out
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	wls := chip.Config().WordlinesPerBlock()
	policies := []Policy{table, NewSentinelPolicy(eng), fb}
	for _, pol := range policies {
		serial := make([]Result, wls)
		for wl := 0; wl < wls; wl++ {
			serial[wl] = ctl.Read(0, wl, 2, pol, mathx.Mix(10, uint64(wl)))
		}
		conc := make([]Result, wls)
		var wg sync.WaitGroup
		for wl := 0; wl < wls; wl++ {
			wg.Add(1)
			go func(wl int) {
				defer wg.Done()
				conc[wl] = ctl.Read(0, wl, 2, pol, mathx.Mix(10, uint64(wl)))
			}(wl)
		}
		wg.Wait()
		for wl := 0; wl < wls; wl++ {
			s, c := serial[wl], conc[wl]
			if s.OK != c.OK || s.Retries != c.Retries ||
				s.AuxSenses != c.AuxSenses || s.Latency != c.Latency ||
				s.FinalErrors != c.FinalErrors || s.UsedFallback != c.UsedFallback {
				t.Fatalf("%s wl %d: concurrent %+v != serial %+v",
					pol.Name(), wl, c, s)
			}
		}
	}
}

// TestFallbackConcurrentPolicySwitch locks in the per-tenant policy
// switching contract: flipping a block between sentinel and static-table
// service with ForceDegraded while reads are in flight (the CI race job
// runs this under -race) never produces a torn result — every read
// matches one of the two pure-policy outcomes for its seed, and
// UsedFallback reports exactly which policy the read actually ran.
func TestFallbackConcurrentPolicySwitch(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	table := NewDefaultTable(chip, 2)
	fb := NewFallback(NewSentinelPolicy(eng), table)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	wls := chip.Config().WordlinesPerBlock()

	// The two pure outcomes per wordline, under the same read seed.
	type pure struct{ sent, tab Result }
	pures := make([]pure, wls)
	for wl := 0; wl < wls; wl++ {
		seed := mathx.Mix(11, uint64(wl))
		fb.ForceDegraded(0, false)
		pures[wl].sent = ctl.Read(0, wl, 2, fb, seed)
		fb.ForceDegraded(0, true)
		pures[wl].tab = ctl.Read(0, wl, 2, fb, seed)
		if pures[wl].sent.UsedFallback {
			t.Fatalf("wl %d: healthy sentinel read reported fallback", wl)
		}
		if !pures[wl].tab.UsedFallback {
			t.Fatalf("wl %d: forced-degraded read did not report fallback", wl)
		}
	}
	fb.ForceDegraded(0, false)

	stop := make(chan struct{})
	flipperDone := make(chan struct{})
	go func() { // the policy switcher
		defer close(flipperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fb.ForceDegraded(0, i%2 == 0)
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				wl := (w*7 + i) % wls
				res := ctl.Read(0, wl, 2, fb, mathx.Mix(11, uint64(wl)))
				p := pures[wl]
				matchS := res.OK == p.sent.OK && res.Retries == p.sent.Retries &&
					res.AuxSenses == p.sent.AuxSenses && res.FinalErrors == p.sent.FinalErrors
				matchT := res.OK == p.tab.OK && res.Retries == p.tab.Retries &&
					res.AuxSenses == p.tab.AuxSenses && res.FinalErrors == p.tab.FinalErrors
				switch {
				case !matchS && !matchT:
					t.Errorf("wl %d: torn result %+v (sentinel %+v, table %+v)",
						wl, res, p.sent, p.tab)
				case res.UsedFallback && !matchT:
					t.Errorf("wl %d: UsedFallback set but result %+v is not the table outcome %+v",
						wl, res, p.tab)
				case !res.UsedFallback && !matchS:
					t.Errorf("wl %d: UsedFallback unset but result %+v is not the sentinel outcome %+v",
						wl, res, p.sent)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-flipperDone
}
