package retry

import (
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/sentinel"
)

// The adaptive read stack, after the AR²/PR² follow-on literature
// (Park et al.): start each read near the last-known-good voltage so
// the first attempt usually lands (HistoryPolicy), pipeline consecutive
// retry steps so a retry's sense hides behind the previous decode
// (AR2Policy), and seed the history from sentinel inference so the two
// techniques compose (SentinelHistoryPolicy).

// ---------------------------------------------------------------------------
// History — last-known-good first shot.

// HistoryPolicy starts every read at the block's cached last-known-good
// offsets and resumes the vendor table walk from that point on failure.
// With WriteBack on, each successful read stores its final offsets back
// into the cache, so the block's entry tracks drift read-by-read.
// Leave WriteBack off (a frozen cache, warmed beforehand) where
// deterministic results across concurrent readers are contractual —
// see the HistCache determinism notes.
type HistoryPolicy struct {
	Cache     *HistCache
	Table     *DefaultTablePolicy
	WriteBack bool
}

// NewHistoryPolicy wires a cache and the table fallback together.
func NewHistoryPolicy(cache *HistCache, table *DefaultTablePolicy, writeBack bool) *HistoryPolicy {
	return &HistoryPolicy{Cache: cache, Table: table, WriteBack: writeBack}
}

// Name implements Policy.
func (p *HistoryPolicy) Name() string { return "history" }

// Session implements Policy.
func (p *HistoryPolicy) Session(env *Env) Session {
	return &historySession{p: p, env: env}
}

type historySession struct {
	p   *HistoryPolicy
	env *Env
	// base is the cached offset vector applied at attempt 0 (nil on a
	// cache miss); retries walk the table relative to it.
	base flash.Offsets
}

func (s *historySession) NextOffsets(k int, _ flash.Bitmap, _ flash.Offsets) (flash.Offsets, bool) {
	nv := s.env.Coding().NumVoltages()
	if k == 0 {
		if ofs, ok := s.p.Cache.Get(s.env.B); ok {
			s.env.met.cacheHit()
			s.base = ofs
			return ofs, true
		}
		s.env.met.cacheMiss()
		return flash.ZeroOffsets(nv), true
	}
	// Resume the vendor walk from the cached point rather than from
	// factory defaults: entry k is applied relative to the base.
	ofs := s.p.Table.Entry(k, nv)
	for v := 0; v < nv && v < len(s.base); v++ {
		ofs[v] += s.base[v]
	}
	return ofs, true
}

// Finish implements FinishingSession: successful reads write their
// final offsets back as the block's new last-known-good point.
func (s *historySession) Finish(res *Result) {
	if !s.p.WriteBack || !res.OK || res.Err != nil {
		return
	}
	if s.p.Cache.Put(s.env.B, res.FinalOffsets) {
		s.env.met.cacheEvict()
	}
}

// ---------------------------------------------------------------------------
// AR² — pipelined retry stepping.

// AR2Policy walks the same vendor table as DefaultTablePolicy but
// pipelines the steps: while attempt k's ECC decode runs, attempt k+1's
// sense is already being issued on the latched wordline, so each retry
// hides min(decode, sense) of its cost (see LatencyModel.StepLatency).
// Retry counts are identical to the serial table by construction; only
// the per-read latency (and Result.OverlapSavedUS) differ.
type AR2Policy struct {
	Table *DefaultTablePolicy
}

// NewAR2 wraps a vendor table in pipelined stepping.
func NewAR2(table *DefaultTablePolicy) *AR2Policy {
	return &AR2Policy{Table: table}
}

// Name implements Policy.
func (p *AR2Policy) Name() string { return "ar2" }

// Session implements Policy.
func (p *AR2Policy) Session(env *Env) Session {
	return ar2Session{p: p.Table, nv: env.Coding().NumVoltages()}
}

type ar2Session struct {
	p  *DefaultTablePolicy
	nv int
}

func (s ar2Session) NextOffsets(k int, _ flash.Bitmap, _ flash.Offsets) (flash.Offsets, bool) {
	return s.p.Entry(k, s.nv), true
}

// Pipelined implements PipelinedSession.
func (ar2Session) Pipelined() bool { return true }

// ---------------------------------------------------------------------------
// Sentinel + history — cache-seeded first shot, sentinel recovery.

// SentinelHistoryPolicy consults the offset-history cache for the first
// attempt and falls through to sentinel inference and calibration on
// failure, writing the final offsets back on success (when WriteBack).
// Sentinel inference both recovers failed reads and — via
// WarmHistCache — seeds the cache in the first place, so the policy is
// the paper's sentinel read path with an AR²-style warm start.
type SentinelHistoryPolicy struct {
	Cache     *HistCache
	Sentinel  *SentinelPolicy
	WriteBack bool
}

// NewSentinelHistory wires a cache and a sentinel policy together.
func NewSentinelHistory(cache *HistCache, sent *SentinelPolicy, writeBack bool) *SentinelHistoryPolicy {
	return &SentinelHistoryPolicy{Cache: cache, Sentinel: sent, WriteBack: writeBack}
}

// Name implements Policy.
func (p *SentinelHistoryPolicy) Name() string { return "sentinel+history" }

// Session implements Policy.
func (p *SentinelHistoryPolicy) Session(env *Env) Session {
	var cached flash.Offsets
	if ofs, ok := p.Cache.Get(env.B); ok {
		env.met.cacheHit()
		cached = ofs
	} else {
		env.met.cacheMiss()
	}
	return &sentinelHistorySession{
		p: p, env: env, cached: cached,
		sentinel: p.Sentinel.Session(env).(*sentinelSession),
	}
}

type sentinelHistorySession struct {
	p        *SentinelHistoryPolicy
	env      *Env
	cached   flash.Offsets
	sentinel *sentinelSession
}

func (s *sentinelHistorySession) NextOffsets(k int, prior flash.Bitmap, priorOfs flash.Offsets) (flash.Offsets, bool) {
	if k == 0 && s.cached != nil {
		return s.cached, true
	}
	// Delegate to the sentinel session, with the same subtlety as
	// CombinedPolicy: when the first attempt applied cached (non-default)
	// offsets, an LSB readout was not taken at the default sentinel
	// voltage, so it cannot be reused as the default-voltage sense —
	// force the auxiliary read instead.
	if k >= 1 && s.cached != nil && s.env.Page == flash.PageLSB {
		return s.sentinel.nextWithAuxSense(k, priorOfs)
	}
	return s.sentinel.NextOffsets(k, prior, priorOfs)
}

// Finish implements FinishingSession.
func (s *sentinelHistorySession) Finish(res *Result) {
	if !s.p.WriteBack || !res.OK || res.Err != nil {
		return
	}
	if s.p.Cache.Put(s.env.B, res.FinalOffsets) {
		s.env.met.cacheEvict()
	}
}

// ---------------------------------------------------------------------------
// Cache warming.

// WarmHistCache seeds the cache with sentinel-inferred offsets for the
// given blocks, probing wordline wl of each: one sense at the default
// sentinel voltage feeds the engine's inference and the inferred offset
// vector becomes the block's last-known-good entry. Unprogrammed probe
// wordlines are skipped. Warming walks blocks sequentially, so — under
// cache capacity — the contents are a pure function of the arguments;
// this is the determinism anchor of the frozen-cache replay paths.
// Returns the number of blocks seeded.
func WarmHistCache(cache *HistCache, chip *flash.Chip, eng *sentinel.Engine, blocks []int, wl int, seed uint64) int {
	sv := eng.Model.SentinelVoltage
	n := 0
	for _, b := range blocks {
		if !chip.IsProgrammed(b, wl) {
			continue
		}
		sense := chip.Sense(b, wl, sv, 0, mathx.Mix3(seed, 0x3a3d, uint64(b)))
		_, ofs := eng.Infer(sense)
		flash.PutBitmap(sense)
		cache.Put(b, ofs)
		n++
	}
	return n
}
