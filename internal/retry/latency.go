// Package retry implements the read path of the flash controller: issue a
// page read, check ECC, and — on failure — choose the next voltage
// offsets. Four interchangeable policies cover the paper's comparisons:
//
//   - DefaultTable: the "current flash" baseline that walks a vendor-style
//     static retry table;
//   - Tracking: the HPCA'15-style baseline that periodically records one
//     wordline's optimal voltages per block and applies them block-wide;
//   - Oracle: ground-truth optimal voltages (upper bound);
//   - Sentinel: the paper's contribution — inference from sentinel-cell
//     errors, then state-change calibration.
//
// The controller accounts latency with an SSDSim-style model where sensing
// cost is proportional to the number of applied read voltages, so an extra
// sentinel (LSB) read is far cheaper than a full MSB retry, exactly as the
// paper argues in Section III-B2.
package retry

import "fmt"

// LatencyModel holds the timing parameters in microseconds.
type LatencyModel struct {
	// SenseBase is the fixed array-access cost of any read operation.
	SenseBase float64
	// SensePerLevel is the additional cost per applied read voltage.
	SensePerLevel float64
	// Transfer is the page transfer time to the controller.
	Transfer float64
	// ECCDecode is the decode time per page.
	ECCDecode float64
	// MapLookup is the controller-side cost of resolving a logical page
	// against the mapping table without touching flash. It is the full
	// service time of a read that hits a never-written LPN (the device
	// returns zeros straight from the FTL), so it involves no die or
	// channel occupancy.
	MapLookup float64
}

// DefaultLatency mirrors 3D TLC/QLC datasheet-class timings: an LSB read
// ~60us, an MSB read ~130us (TLC) / ~160us (QLC).
func DefaultLatency() LatencyModel {
	return LatencyModel{
		SenseBase:     25,
		SensePerLevel: 12,
		Transfer:      20,
		ECCDecode:     8,
		MapLookup:     5,
	}
}

// Validate reports parameter errors.
func (l LatencyModel) Validate() error {
	if l.SenseBase <= 0 || l.SensePerLevel < 0 || l.Transfer < 0 || l.ECCDecode < 0 ||
		l.MapLookup < 0 {
		return fmt.Errorf("retry: invalid latency model %+v", l)
	}
	return nil
}

// PageRead returns the latency of one full page read attempt that applies
// nLevels read voltages, including transfer and decode.
func (l LatencyModel) PageRead(nLevels int) float64 {
	return l.SenseBase + float64(nLevels)*l.SensePerLevel + l.Transfer + l.ECCDecode
}

// StepLatency returns the latency attributed to one read attempt under
// either step model. overlap=false is the classic serial model and
// equals PageRead exactly — every attempt pays sense, transfer and
// decode back to back. overlap=true is the AR²/PR²-style pipelined
// model: the attempt's sensing was launched while the previous
// attempt's ECC decode was still running, so min(decode, sense) of the
// step is hidden behind the predecessor.
func (l LatencyModel) StepLatency(nLevels int, overlap bool) float64 {
	serial := l.PageRead(nLevels)
	if !overlap {
		return serial
	}
	hidden := l.ECCDecode
	if sense := l.SenseBase + float64(nLevels)*l.SensePerLevel; sense < hidden {
		hidden = sense
	}
	return serial - hidden
}

// AuxSense returns the latency of a one-voltage auxiliary read (the
// sentinel-voltage LSB read used for inference and calibration); the data
// is transferred but not ECC-decoded.
func (l LatencyModel) AuxSense() float64 {
	return l.SenseBase + l.SensePerLevel + l.Transfer
}
