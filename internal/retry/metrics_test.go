package retry

import (
	"errors"
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
)

func latencyHist(t *testing.T, reg *obs.Registry) *mathx.LogHist {
	t.Helper()
	for _, h := range reg.Snapshot().Hists {
		if h.Name == "retry.latency_us" {
			return h.Hist
		}
	}
	t.Fatal("retry.latency_us not in snapshot")
	return nil
}

func TestMetricsRecord(t *testing.T) {
	reg := obs.NewRegistry(1)
	m := NewMetrics(reg.Set(0), 2)
	sv := 4

	ofs := flash.ZeroOffsets(7)
	ofs[sv-1] = -6.2 // |−6.2|/2 rounds to 3 table entries
	m.record(&Result{
		OK: true, Retries: 1, AuxSenses: 2, Latency: 80, FinalOffsets: ofs,
	}, sv)
	m.record(&Result{
		Retries: 15, AuxSenses: 1, Latency: 900, FinalOffsets: ofs,
		UsedFallback: true, Uncorrectable: true,
	}, sv)
	m.record(&Result{Err: errors.New("bad address")}, sv)
	m.lsbReuse()

	checks := []struct {
		name string
		c    *obs.Counter
		want int64
	}{
		{"reads", m.Reads, 2},
		{"retries", m.Retries, 16},
		{"shaved", m.ShavedRetries, 2}, // 3 entries − 1 retry spent
		{"aux", m.AuxSenses, 3},
		{"lsb reuses", m.LSBReuses, 1},
		{"fallbacks", m.Fallbacks, 1},
		{"uncorrectable", m.Uncorrectable, 1},
	}
	for _, c := range checks {
		if got := c.c.Value(); got != c.want {
			t.Errorf("%s = %d, want %d", c.name, got, c.want)
		}
	}
	h := latencyHist(t, reg)
	if h.Count() != 2 || h.Max() < 900 {
		t.Fatalf("latency hist count=%d max=%v, want 2 observations up to 900",
			h.Count(), h.Max())
	}

	// A failed read whose offsets happen to be large must not count as
	// shaved: the policy did not deliver.
	m.record(&Result{Retries: 15, FinalOffsets: ofs, Uncorrectable: true}, sv)
	if got := m.ShavedRetries.Value(); got != 2 {
		t.Fatalf("uncorrectable read changed shaved count to %d", got)
	}

	// Nil metrics: every hook is a no-op.
	var nilM *Metrics
	nilM.record(&Result{OK: true, FinalOffsets: ofs}, sv)
	nilM.lsbReuse()
}

func TestMetricsOnInstrumentedReads(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 28},
		DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry(1)
	table := NewDefaultTable(chip, 2)
	ctl.Obs = NewMetrics(reg.Set(0), table.Step)
	sent := NewSentinelPolicy(eng)

	var reads, retries, aux, lsbRetried int64
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		for p := 0; p < 3; p++ {
			res := ctl.Read(0, wl, p, sent, mathx.Mix(11, uint64(wl*4+p)))
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			reads++
			retries += int64(res.Retries)
			aux += int64(res.AuxSenses)
			if p == flash.PageLSB && res.Retries > 0 {
				lsbRetried++
			}
		}
	}
	if got := ctl.Obs.Reads.Value(); got != reads {
		t.Fatalf("reads counter %d, want %d", got, reads)
	}
	if got := ctl.Obs.Retries.Value(); got != retries {
		t.Fatalf("retries counter %d, want %d", got, retries)
	}
	if got := ctl.Obs.AuxSenses.Value(); got != aux {
		t.Fatalf("aux counter %d, want %d", got, aux)
	}
	if h := latencyHist(t, reg); h.Count() != reads {
		t.Fatalf("latency hist holds %d reads, want %d", h.Count(), reads)
	}
	// On a retention-aged block the sentinel policy must shave table
	// retries; zero would mean the hook is dead.
	if ctl.Obs.ShavedRetries.Value() == 0 {
		t.Fatal("no shaved retries recorded on an aged block")
	}
	// Every retried LSB read serves its sentinel sense from the failed
	// readout, so reuses must cover at least those reads.
	if got := ctl.Obs.LSBReuses.Value(); got < lsbRetried {
		t.Fatalf("LSB reuses %d < %d retried LSB reads", got, lsbRetried)
	}

	// An out-of-range read reports Err and must leave the counters alone.
	before := ctl.Obs.Reads.Value()
	if res := ctl.Read(99, 0, 0, sent, 1); res.Err == nil {
		t.Fatal("bad address not reported")
	}
	if got := ctl.Obs.Reads.Value(); got != before {
		t.Fatalf("failed-to-attempt read bumped reads to %d", got)
	}
}

func TestMetricsRecordAllocations(t *testing.T) {
	reg := obs.NewRegistry(1)
	m := NewMetrics(reg.Set(0), 2)
	ofs := flash.ZeroOffsets(7)
	ofs[3] = -5
	res := &Result{OK: true, Retries: 1, AuxSenses: 1, Latency: 70, FinalOffsets: ofs}
	if n := testing.AllocsPerRun(200, func() { m.record(res, 4) }); n != 0 {
		t.Fatalf("enabled record allocates %v/op", n)
	}
	var nilM *Metrics
	if n := testing.AllocsPerRun(200, func() { nilM.record(res, 4) }); n != 0 {
		t.Fatalf("nil record allocates %v/op", n)
	}
}
