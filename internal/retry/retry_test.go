package retry

import (
	"math"
	"sync"
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/sentinel"
)

func testCfg(kind flash.Kind) flash.Config {
	return flash.Config{
		Kind: kind, Blocks: 1, Layers: 16, WordlinesPerLayer: 2,
		CellsPerWordline: 16384, OOBFraction: 0.119, Seed: 4, CacheZ: true,
	}
}

func testLayout() sentinel.Layout {
	return sentinel.Layout{Ratio: 0.02, Placement: sentinel.TailOOB}
}

// trainedTLC caches a trained TLC model across tests (training is the
// slowest setup step).
var (
	tlcModelOnce sync.Once
	tlcModel     *sentinel.Model
)

func trainedTLCModel(t testing.TB) *sentinel.Model {
	t.Helper()
	tlcModelOnce.Do(func() {
		chip := flash.MustNew(testCfg(flash.TLC))
		tc := sentinel.DefaultTrainConfig()
		tc.Layout = testLayout()
		tc.WordlinesPerPoint = 12
		m, err := sentinel.Train(chip, tc)
		if err != nil {
			panic(err)
		}
		tlcModel = m
	})
	return tlcModel
}

// agedTLCChip programs all wordlines (with sentinel pattern) and ages the
// block to the paper's Figure 13 condition.
func agedTLCChip(t testing.TB, eng *sentinel.Engine) *flash.Chip {
	t.Helper()
	cfg := testCfg(flash.TLC)
	cfg.Seed = 99
	chip := flash.MustNew(cfg)
	rng := mathx.NewRand(5)
	states := make([]uint8, cfg.CellsPerWordline)
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl++ {
		for i := range states {
			states[i] = uint8(rng.Intn(8))
		}
		eng.Prepare(states)
		if err := chip.ProgramStates(0, wl, states); err != nil {
			t.Fatal(err)
		}
	}
	chip.Cycle(0, 5000)
	chip.Age(0, physics.YearHours, physics.RoomTempC)
	return chip
}

func testEngine(t testing.TB) *sentinel.Engine {
	t.Helper()
	m := trainedTLCModel(t)
	eng, err := sentinel.NewEngine(m, testLayout(), sentinel.DefaultCalibrator(),
		testCfg(flash.TLC))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestLatencyModel(t *testing.T) {
	l := DefaultLatency()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.PageRead(1) >= l.PageRead(8) {
		t.Fatal("more sensing levels should cost more")
	}
	if l.AuxSense() >= l.PageRead(4) {
		t.Fatal("aux sense should be cheaper than an MSB read")
	}
	bad := LatencyModel{}
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero latency model")
	}
	bad = DefaultLatency()
	bad.MapLookup = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative mapping-lookup cost")
	}
	if DefaultLatency().MapLookup <= 0 {
		t.Fatal("default mapping lookup must cost something")
	}
}

func TestDefaultTableEntries(t *testing.T) {
	chip := flash.MustNew(testCfg(flash.TLC))
	p := NewDefaultTable(chip, 2)
	nv := chip.Coding().NumVoltages()
	e0 := p.Entry(0, nv)
	for v := 1; v <= nv; v++ {
		if e0.Get(v) != 0 {
			t.Fatal("entry 0 must be factory defaults")
		}
	}
	e1, e2 := p.Entry(1, nv), p.Entry(2, nv)
	for v := 1; v <= nv; v++ {
		if e1.Get(v) >= 0 {
			t.Fatalf("entry 1 V%d = %v not negative", v, e1.Get(v))
		}
		if e2.Get(v) >= e1.Get(v) {
			t.Fatal("entries must march downward")
		}
	}
	// Shape: lower voltages step more (retention profile); sentinel
	// voltage steps exactly by Step.
	sv := chip.Coding().SentinelVoltage()
	if math.Abs(e1.Get(sv)+p.Step) > 1e-9 {
		t.Fatalf("sentinel step = %v, want -%v", e1.Get(sv), p.Step)
	}
	if math.Abs(e1.Get(2)) <= math.Abs(e1.Get(nv)) {
		t.Fatal("low voltages should step more than high ones")
	}
}

func TestControllerValidation(t *testing.T) {
	chip := flash.MustNew(testCfg(flash.TLC))
	if _, err := NewController(nil, ecc.DefaultCapability(), DefaultLatency(), 5); err == nil {
		t.Fatal("accepted nil chip")
	}
	if _, err := NewController(chip, ecc.CapabilityModel{}, DefaultLatency(), 5); err == nil {
		t.Fatal("accepted invalid ECC")
	}
	if _, err := NewController(chip, ecc.DefaultCapability(), LatencyModel{}, 5); err == nil {
		t.Fatal("accepted invalid latency")
	}
	if _, err := NewController(chip, ecc.DefaultCapability(), DefaultLatency(), -1); err == nil {
		t.Fatal("accepted negative budget")
	}
}

func TestFreshChipReadsWithoutRetry(t *testing.T) {
	chip := flash.MustNew(testCfg(flash.TLC))
	rng := mathx.NewRand(2)
	chip.ProgramRandom(0, 0, rng)
	ctl, err := NewController(chip, ecc.CapabilityModel{FrameBits: 8192, T: 30},
		DefaultLatency(), 10)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 2)
	for p := 0; p < 3; p++ {
		res := ctl.Read(0, 0, p, table, uint64(p))
		if !res.OK || res.Retries != 0 {
			t.Fatalf("fresh page %d: ok=%v retries=%d", p, res.OK, res.Retries)
		}
		want := ctl.Lat.PageRead(len(chip.Coding().PageVoltages(p)))
		if math.Abs(res.Latency-want) > 1e-9 {
			t.Fatalf("latency = %v, want %v", res.Latency, want)
		}
	}
}

func TestAgedChipTableVsSentinel(t *testing.T) {
	// The Figure 13 comparison in miniature: on a worn, retention-aged
	// TLC block, the static table needs several retries on MSB pages
	// while the sentinel policy needs very few.
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 28}
	ctl, err := NewController(chip, capm, DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 2)
	sent := NewSentinelPolicy(eng)

	var tableMSB, sentMSB, tableLat, sentLat float64
	n := 0
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		rT := ctl.Read(0, wl, 2, table, mathx.Mix(1, uint64(wl)))
		rS := ctl.Read(0, wl, 2, sent, mathx.Mix(2, uint64(wl)))
		tableMSB += float64(rT.Retries)
		sentMSB += float64(rS.Retries)
		tableLat += rT.Latency
		sentLat += rS.Latency
		n++
	}
	tableAvg, sentAvg := tableMSB/float64(n), sentMSB/float64(n)
	if tableAvg < 3 {
		t.Fatalf("table avg MSB retries %v suspiciously low", tableAvg)
	}
	if sentAvg > tableAvg/2 {
		t.Fatalf("sentinel (%v) not clearly better than table (%v)",
			sentAvg, tableAvg)
	}
	if sentLat >= tableLat {
		t.Fatal("sentinel latency not lower despite fewer retries")
	}
}

func TestSentinelLSBNeedsNoAuxSense(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 10} // tight: force retries
	ctl, err := NewController(chip, capm, DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	sent := NewSentinelPolicy(eng)
	sawLSBRetry, sawMSBRetry := false, false
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		rL := ctl.Read(0, wl, flash.PageLSB, sent, mathx.Mix(3, uint64(wl)))
		if rL.Retries > 0 {
			sawLSBRetry = true
			if rL.AuxSenses != 0 {
				t.Fatalf("LSB read used %d aux senses; the failed read already "+
					"contains the sentinel boundary", rL.AuxSenses)
			}
		}
		rM := ctl.Read(0, wl, 2, sent, mathx.Mix(4, uint64(wl)))
		if rM.Retries > 0 {
			sawMSBRetry = true
			if rM.AuxSenses == 0 {
				t.Fatal("MSB retry performed no sentinel sense")
			}
		}
	}
	if !sawLSBRetry || !sawMSBRetry {
		t.Skipf("stress did not trigger retries (LSB %v, MSB %v)",
			sawLSBRetry, sawMSBRetry)
	}
}

func TestOraclePolicyNearZeroRetries(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 28}
	ctl, err := NewController(chip, capm, DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle()
	var total float64
	fails := 0
	for wl := 0; wl < 16; wl++ {
		res := ctl.Read(0, wl, 2, oracle, mathx.Mix(5, uint64(wl)))
		total += float64(res.Retries)
		if !res.OK {
			fails++
		}
	}
	if fails > 1 {
		t.Fatalf("oracle failed %d reads", fails)
	}
	if total/16 > 0.5 {
		t.Fatalf("oracle averaged %v retries", total/16)
	}
	oracle.Invalidate()
	if len(oracle.cache) != 0 {
		t.Fatal("Invalidate did not clear the cache")
	}
}

func TestTrackingPolicy(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	table := NewDefaultTable(chip, 2)
	tr := NewTracking(table)
	if err := tr.UpdateBlock(chip, 0, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Tracked(0) == nil {
		t.Fatal("no tracked offsets after update")
	}
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 28}
	ctl, err := NewController(chip, capm, DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	// Tracking should beat the plain table on average (first attempt is
	// already tuned), even though it hurts some wordlines (Fig. 18).
	var trSum, tabSum float64
	for wl := 0; wl < chip.Config().WordlinesPerBlock(); wl++ {
		rTr := ctl.Read(0, wl, 2, tr, mathx.Mix(6, uint64(wl)))
		rTab := ctl.Read(0, wl, 2, table, mathx.Mix(6, uint64(wl)))
		trSum += float64(rTr.Retries)
		tabSum += float64(rTab.Retries)
	}
	if trSum >= tabSum {
		t.Fatalf("tracking (%v) not better than table (%v) on average",
			trSum, tabSum)
	}
	// Unprogrammed probe errors out.
	cfg := testCfg(flash.TLC)
	empty := flash.MustNew(cfg)
	if err := tr.UpdateBlock(empty, 0, 0); err == nil {
		t.Fatal("accepted unprogrammed probe wordline")
	}
}

func TestReadGivesUpAtBudget(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	// Impossible capability: every read fails.
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 0}
	ctl, err := NewController(chip, capm, DefaultLatency(), 3)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 2)
	res := ctl.Read(0, 0, 2, table, 1)
	if res.OK {
		t.Fatal("read succeeded with T=0")
	}
	if res.Retries != 3 {
		t.Fatalf("retries = %d, want full budget 3", res.Retries)
	}
	// Latency covers all four attempts.
	want := 4 * ctl.Lat.PageRead(4)
	if math.Abs(res.Latency-want) > 1e-9 {
		t.Fatalf("latency = %v, want %v", res.Latency, want)
	}
}

func TestSentinelSessionGivesUp(t *testing.T) {
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 0}
	ctl, err := NewController(chip, capm, DefaultLatency(), 20)
	if err != nil {
		t.Fatal(err)
	}
	sent := NewSentinelPolicy(eng)
	res := ctl.Read(0, 0, 2, sent, 1)
	if res.OK {
		t.Fatal("read succeeded with T=0")
	}
	// Sentinel gives up after inference + calibration budget, well below
	// the controller's 20.
	maxAttempts := 1 + 1 + eng.Cal.MaxSteps
	if res.Retries > maxAttempts {
		t.Fatalf("sentinel retried %d times, budget %d", res.Retries, maxAttempts)
	}
}

func TestPolicyNames(t *testing.T) {
	chip := flash.MustNew(testCfg(flash.TLC))
	table := NewDefaultTable(chip, 2)
	if table.Name() != "current-flash" {
		t.Fatal("table name")
	}
	if NewTracking(table).Name() != "tracking" {
		t.Fatal("tracking name")
	}
	if NewOracle().Name() != "oracle" {
		t.Fatal("oracle name")
	}
	if NewSentinelPolicy(testEngine(t)).Name() != "sentinel" {
		t.Fatal("sentinel name")
	}
}
