package retry

import (
	"fmt"
	"sync"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/sentinel"
)

// ---------------------------------------------------------------------------
// DefaultTable — the "current flash" baseline.

// DefaultTablePolicy walks a static vendor-style retry table: entry k
// shifts every read voltage downward by k*Step scaled by a per-voltage
// shape profile (vendors pre-characterize the typical retention-shift
// profile of the technology). The first attempt (k=0) uses factory
// defaults.
type DefaultTablePolicy struct {
	// Step is the sentinel-voltage-equivalent step per table entry.
	Step float64
	// Shape scales the step per voltage (index v-1); nil means uniform.
	Shape []float64
}

// NewDefaultTable builds the baseline for a chip, deriving the shape
// profile from the technology's typical shift pattern (larger steps for
// lower voltages), normalized to 1 at the sentinel voltage.
func NewDefaultTable(chip *flash.Chip, step float64) *DefaultTablePolicy {
	p := chip.Model().P
	coding := chip.Coding()
	k := float64(coding.States() - 1)
	weight := func(v int) float64 {
		// Mean shift weight of the two states flanking boundary v, with
		// the erased state contributing nothing.
		w := func(s int) float64 {
			if s == 0 {
				return 0
			}
			return p.ChargeFloor + (k-float64(s))/k
		}
		return (w(v-1) + w(v)) / 2
	}
	sv := coding.SentinelVoltage()
	shape := make([]float64, coding.NumVoltages())
	for v := 1; v <= coding.NumVoltages(); v++ {
		shape[v-1] = weight(v) / weight(sv)
	}
	return &DefaultTablePolicy{Step: step, Shape: shape}
}

// Name implements Policy.
func (p *DefaultTablePolicy) Name() string { return "current-flash" }

// Session implements Policy.
func (p *DefaultTablePolicy) Session(env *Env) Session {
	return tableSession{p: p, nv: env.Coding().NumVoltages()}
}

type tableSession struct {
	p  *DefaultTablePolicy
	nv int
}

// Entry returns table entry k (k=0 is factory defaults).
func (p *DefaultTablePolicy) Entry(k, nv int) flash.Offsets {
	ofs := flash.ZeroOffsets(nv)
	if k == 0 {
		return ofs
	}
	for v := 0; v < nv; v++ {
		scale := 1.0
		if p.Shape != nil {
			scale = p.Shape[v]
		}
		ofs[v] = -float64(k) * p.Step * scale
	}
	return ofs
}

func (s tableSession) NextOffsets(k int, _ flash.Bitmap, _ flash.Offsets) (flash.Offsets, bool) {
	return s.p.Entry(k, s.nv), true
}

// ---------------------------------------------------------------------------
// Tracking — the HPCA'15-style baseline.

// TrackingPolicy periodically sweeps one representative wordline per block
// and applies its optimal offsets to every read in that block. On a read
// failure it falls back to the static table, resuming near the tracked
// point.
type TrackingPolicy struct {
	Fallback *DefaultTablePolicy

	mu      sync.Mutex
	tracked map[int]flash.Offsets
}

// NewTracking builds the tracking baseline over the given fallback table.
func NewTracking(fallback *DefaultTablePolicy) *TrackingPolicy {
	return &TrackingPolicy{
		Fallback: fallback,
		tracked:  make(map[int]flash.Offsets),
	}
}

// Name implements Policy.
func (p *TrackingPolicy) Name() string { return "tracking" }

// UpdateBlock re-characterizes block b using its wordline probeWL: the
// periodic maintenance the baseline requires (the paper notes it must run
// every 24 hours, and more often under high temperature).
func (p *TrackingPolicy) UpdateBlock(chip *flash.Chip, b, probeWL int) error {
	if !chip.IsProgrammed(b, probeWL) {
		return fmt.Errorf("retry: tracking probe wordline %d not programmed", probeWL)
	}
	lab := charlab.New(chip)
	opt := lab.OptimalOffsets(b, probeWL)
	p.mu.Lock()
	p.tracked[b] = opt
	p.mu.Unlock()
	return nil
}

// Tracked returns the recorded offsets for block b (nil if never updated).
func (p *TrackingPolicy) Tracked(b int) flash.Offsets {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tracked[b].Clone()
}

// Session implements Policy.
func (p *TrackingPolicy) Session(env *Env) Session {
	return &trackingSession{p: p, env: env}
}

type trackingSession struct {
	p   *TrackingPolicy
	env *Env
}

func (s *trackingSession) NextOffsets(k int, _ flash.Bitmap, _ flash.Offsets) (flash.Offsets, bool) {
	nv := s.env.Coding().NumVoltages()
	if k == 0 {
		if t := s.p.Tracked(s.env.B); t != nil {
			return t, true
		}
		return flash.ZeroOffsets(nv), true
	}
	// Fall back to the static table beyond the tracked point.
	return s.p.Fallback.Entry(k, nv), true
}

// ---------------------------------------------------------------------------
// Oracle — ground-truth optimum (upper bound).

// OraclePolicy reads with the per-wordline ground-truth optimal offsets
// located by full characterization sweeps. It is the paper's "OPT" and is
// only realizable inside the simulator.
type OraclePolicy struct {
	mu    sync.Mutex
	cache map[[2]int]flash.Offsets
}

// NewOracle returns an oracle with an empty sweep cache.
func NewOracle() *OraclePolicy {
	return &OraclePolicy{cache: make(map[[2]int]flash.Offsets)}
}

// Name implements Policy.
func (p *OraclePolicy) Name() string { return "oracle" }

// Session implements Policy.
func (p *OraclePolicy) Session(env *Env) Session {
	return &oracleSession{p: p, env: env}
}

type oracleSession struct {
	p   *OraclePolicy
	env *Env
}

func (s *oracleSession) NextOffsets(k int, _ flash.Bitmap, _ flash.Offsets) (flash.Offsets, bool) {
	if k > 2 {
		return nil, false // the optimum plus sensing-noise rerolls
	}
	key := [2]int{s.env.B, s.env.WL}
	s.p.mu.Lock()
	ofs, hit := s.p.cache[key]
	s.p.mu.Unlock()
	if !hit {
		lab := charlab.New(s.env.Chip)
		ofs = lab.OptimalOffsets(s.env.B, s.env.WL)
		s.p.mu.Lock()
		s.p.cache[key] = ofs
		s.p.mu.Unlock()
	}
	return ofs, true
}

// Invalidate clears the sweep cache (call after aging the chip).
func (p *OraclePolicy) Invalidate() {
	p.mu.Lock()
	p.cache = make(map[[2]int]flash.Offsets)
	p.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Sentinel — the paper's technique.

// SentinelPolicy wires the sentinel engine into the read path:
//
//	attempt 0: factory defaults;
//	attempt 1: infer all offsets from the sentinel errors of the failed
//	           default read (free for LSB pages, one auxiliary
//	           single-voltage read otherwise);
//	attempts 2..: state-change calibration, ±Δ per step.
type SentinelPolicy struct {
	Engine *sentinel.Engine
}

// NewSentinelPolicy wraps an engine.
func NewSentinelPolicy(engine *sentinel.Engine) *SentinelPolicy {
	return &SentinelPolicy{Engine: engine}
}

// Name implements Policy.
func (p *SentinelPolicy) Name() string { return "sentinel" }

// Session implements Policy.
func (p *SentinelPolicy) Session(env *Env) Session {
	return &sentinelSession{p: p, env: env}
}

type sentinelSession struct {
	p   *SentinelPolicy
	env *Env

	defaultSense flash.Bitmap
	sentOfs      float64
	// lastD is the error-difference rate measured at attempt 1; the
	// fallback guard reads it to judge whether the measurement was inside
	// the model's training domain.
	lastD float64
}

// senseFromLSBReadout converts an LSB page readout into a sentinel-voltage
// sense bitmap: the LSB bit is 1 below the boundary, so the sense (at or
// above) is its inverse. The copy lives in a pooled buffer that remains
// valid until the read finishes (same lifetime as Sense results) — which
// also makes it safe to take of the ephemeral prior bitmap.
func (e *Env) senseFromLSBReadout(read flash.Bitmap) flash.Bitmap {
	e.met.lsbReuse()
	out := e.hold(flash.GetBitmap(e.Chip.Config().CellsPerWordline))
	for i, w := range read {
		out[i] = ^w
	}
	return out
}

func (s *sentinelSession) NextOffsets(k int, prior flash.Bitmap, priorOfs flash.Offsets) (flash.Offsets, bool) {
	eng := s.p.Engine
	sv := eng.Model.SentinelVoltage
	nv := s.env.Coding().NumVoltages()
	switch {
	case k == 0:
		return flash.ZeroOffsets(nv), true
	case k == 1:
		// Measure the error difference at the default sentinel voltage.
		if s.env.Page == flash.PageLSB {
			s.defaultSense = s.env.senseFromLSBReadout(prior)
		} else {
			s.defaultSense = s.env.Sense(sv, 0)
		}
		d, ofs := eng.Infer(s.defaultSense)
		s.lastD = d
		s.sentOfs = ofs.Get(sv)
		return ofs, true
	default:
		if k-1 > eng.Cal.MaxSteps {
			return nil, false
		}
		// Sense at the current sentinel offset. For LSB pages the failed
		// attempt already applied the sentinel voltage at that offset, so
		// its readout is reused for free.
		var curSense flash.Bitmap
		if s.env.Page == flash.PageLSB {
			curSense = s.env.senseFromLSBReadout(prior)
		} else {
			curSense = s.env.Sense(sv, s.sentOfs)
		}
		newOfs, vec := eng.CalibrationStep(s.sentOfs, s.defaultSense, curSense)
		s.sentOfs = newOfs
		return vec, true
	}
}
