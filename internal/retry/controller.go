package retry

import (
	"errors"
	"fmt"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

// Env gives a policy controlled access to the chip during one read: it can
// issue auxiliary single-voltage senses, with every operation's latency
// accounted on the read.
type Env struct {
	Chip  *flash.Chip
	B, WL int
	Page  int

	lat       LatencyModel
	seed      uint64
	senseOps  int
	extraCost float64
	scratch   []flash.Bitmap
	met       *Metrics
}

// Sense performs an accounted one-voltage auxiliary read at voltage v with
// the given offset and returns the sense bitmap (bit set = cell at or
// above the voltage). The bitmap stays valid until the controller finishes
// the current read, after which it is recycled — sessions must not retain
// it across reads.
func (e *Env) Sense(v int, offset float64) flash.Bitmap {
	e.senseOps++
	e.extraCost += e.lat.AuxSense()
	return e.hold(e.Chip.Sense(e.B, e.WL, v, offset,
		mathx.Mix3(e.seed, 0xa5e, uint64(e.senseOps))))
}

// hold registers a pooled bitmap for bulk release when the read finishes.
func (e *Env) hold(bm flash.Bitmap) flash.Bitmap {
	e.scratch = append(e.scratch, bm)
	return bm
}

// release recycles every bitmap handed out during the read.
func (e *Env) release() {
	for _, bm := range e.scratch {
		flash.PutBitmap(bm)
	}
	e.scratch = nil
}

// Coding returns the chip's page coding.
func (e *Env) Coding() *flash.Coding { return e.Chip.Coding() }

// Session is the per-read state of a policy. NextOffsets is called with
// the attempt number k (0 = first read), the previous attempt's readout
// bitmap (nil when k = 0), and the offsets that attempt used. It returns
// the offsets for attempt k, or ok=false to give up.
//
// The prior bitmap aliases a controller-owned buffer that is overwritten
// by the next attempt: it is valid only for the duration of the
// NextOffsets call. A session that needs the readout later must copy it
// (see Env.senseFromLSBReadout).
type Session interface {
	NextOffsets(k int, prior flash.Bitmap, priorOfs flash.Offsets) (ofs flash.Offsets, ok bool)
}

// Policy produces sessions and names itself for reports.
type Policy interface {
	Name() string
	Session(env *Env) Session
}

// PipelinedSession is the optional interface of sessions whose retry
// stepping is pipelined (AR²-style): the next attempt's sense is
// launched while the current attempt's ECC decode runs. The controller
// then charges StepLatency(levels, true) for every attempt after the
// first. Only latency is pipelined — each attempt is still a fresh
// sense with its own noise draw, so retry counts match the serial walk
// of the same offset schedule exactly.
type PipelinedSession interface {
	Session
	Pipelined() bool
}

// FinishingSession is the optional interface of sessions that observe
// the final Result of their read — e.g. to write the last-known-good
// offsets back into a HistCache. Finish runs after the result is fully
// populated and before it is recorded to metrics.
type FinishingSession interface {
	Session
	Finish(res *Result)
}

// Result reports one serviced read.
type Result struct {
	// OK is false when the read exhausted its retry budget or could not be
	// serviced at all (see Err).
	OK bool
	// Retries is the number of re-read attempts after the first read.
	Retries int
	// AuxSenses is the number of auxiliary one-voltage reads performed
	// (sentinel measurements and calibration probes).
	AuxSenses int
	// Latency is the total service time in microseconds.
	Latency float64
	// FinalOffsets is the offset vector of the last attempt.
	FinalOffsets flash.Offsets
	// FinalErrors is the raw bit-error count of the last attempt over the
	// ECC-protected user cells (simulator-side observability).
	FinalErrors int
	// OverlapSavedUS is the latency hidden by pipelined (AR²-style)
	// retry stepping: for each retry, the part of its sense that ran
	// during the previous attempt's ECC decode. Zero for serial
	// policies.
	OverlapSavedUS float64
	// UsedFallback reports that the policy abandoned its primary inference
	// path and degraded to its fallback (see FallbackPolicy) at some point
	// during this read.
	UsedFallback bool
	// Uncorrectable reports that the read was attempted but ECC never
	// decoded within the retry budget — the read-path equivalent of a
	// media error, which an FTL surfaces to the host.
	Uncorrectable bool
	// Err is non-nil when the read could not be attempted: the address is
	// out of range (ErrBadAddress) or the wordline holds no data
	// (ErrNotProgrammed). Retries/Latency are zero in that case.
	Err error
}

// Errors reported through Result.Err.
var (
	ErrBadAddress    = errors.New("retry: address out of range")
	ErrNotProgrammed = errors.New("retry: wordline not programmed")
)

// Controller drives reads against a chip with a policy and an ECC model.
type Controller struct {
	Chip       *flash.Chip
	ECC        ecc.CapabilityModel
	Lat        LatencyModel
	MaxRetries int
	// Obs, when non-nil, receives per-read metrics (see Metrics); nil
	// costs one branch per read.
	Obs *Metrics
}

// NewController validates and builds a controller.
func NewController(chip *flash.Chip, model ecc.CapabilityModel, lat LatencyModel, maxRetries int) (*Controller, error) {
	if chip == nil {
		return nil, fmt.Errorf("retry: nil chip")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if maxRetries < 0 {
		return nil, fmt.Errorf("retry: negative retry budget %d", maxRetries)
	}
	return &Controller{Chip: chip, ECC: model, Lat: lat, MaxRetries: maxRetries}, nil
}

// Read services one page read with the given policy. readSeed
// de-correlates sensing noise across reads.
//
// Invalid addresses and unprogrammed wordlines are reported through
// Result.Err (with OK=false) rather than panicking, so callers such as
// trace-driven simulators need no pre-checks of their own.
func (c *Controller) Read(b, wl, page int, pol Policy, readSeed uint64) Result {
	cfg := c.Chip.Config()
	if b < 0 || b >= cfg.Blocks ||
		wl < 0 || wl >= cfg.WordlinesPerBlock() ||
		page < 0 || page >= cfg.Kind.Bits() {
		return Result{Err: fmt.Errorf("%w: block %d wordline %d page %d",
			ErrBadAddress, b, wl, page)}
	}
	if !c.Chip.IsProgrammed(b, wl) {
		return Result{Err: fmt.Errorf("%w: block %d wordline %d",
			ErrNotProgrammed, b, wl)}
	}
	env := &Env{
		Chip: c.Chip, B: b, WL: wl, Page: page,
		lat: c.Lat, seed: readSeed, met: c.Obs,
	}
	sess := pol.Session(env)
	pipelined := false
	if ps, ok := sess.(PipelinedSession); ok {
		pipelined = ps.Pipelined()
	}
	coding := c.Chip.Coding()
	levels := len(coding.PageVoltages(page))
	userBits := c.Chip.Config().UserCells()
	cells := cfg.CellsPerWordline
	// All per-read buffers are pooled and recycled on exit: the ground
	// truth, one readout buffer per parity of the attempt number (the
	// session may inspect the prior attempt while the next one is sensed
	// into the other buffer), and the error bitmap.
	truth := c.Chip.TrueBitsInto(flash.GetBitmap(cells), b, wl, page)
	bufs := [2]flash.Bitmap{flash.GetBitmap(cells), flash.GetBitmap(cells)}
	errs := flash.GetBitmap(cells)

	var res Result
	var prior flash.Bitmap
	var priorOfs flash.Offsets
	for k := 0; ; k++ {
		ofs, ok := sess.NextOffsets(k, prior, priorOfs)
		if !ok {
			if k > 0 {
				res.Retries = k - 1
			}
			break
		}
		// Every attempt is a fresh sense with its own noise draw — for
		// pipelined sessions too, which overlap the NEXT sense with the
		// CURRENT decode but still sense anew (only the latency is
		// pipelined, never the electrons).
		op := c.Chip.BeginRead(b, wl, mathx.Mix3(readSeed, 0x5ead, uint64(k)))
		read := op.ReadPageInto(bufs[k&1], page, ofs)
		op.Close()
		step := c.Lat.StepLatency(levels, pipelined && k > 0)
		if pipelined && k > 0 {
			res.OverlapSavedUS += c.Lat.PageRead(levels) - step
		}
		res.Latency += step
		res.FinalOffsets = ofs
		for i := range errs {
			errs[i] = read[i] ^ truth[i]
		}
		res.FinalErrors = errs.PopCountRange(0, userBits)
		if c.ECC.DecodePage(errs, userBits) {
			res.OK = true
			res.Retries = k
			break
		}
		if k >= c.MaxRetries {
			res.Retries = k
			break
		}
		prior, priorOfs = read, ofs
	}
	res.AuxSenses = env.senseOps
	res.Latency += env.extraCost
	res.Uncorrectable = !res.OK
	if fs, ok := sess.(interface{ UsedFallback() bool }); ok {
		res.UsedFallback = fs.UsedFallback()
	}
	if fs, ok := sess.(FinishingSession); ok {
		fs.Finish(&res)
	}
	flash.PutBitmap(errs)
	flash.PutBitmap(bufs[1])
	flash.PutBitmap(bufs[0])
	flash.PutBitmap(truth)
	env.release()
	c.Obs.record(&res, coding.SentinelVoltage())
	return res
}
