package retry

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func TestHistCacheBasic(t *testing.T) {
	c, err := NewHistCache(4, 64<<10, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", c.Shards())
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("hit on empty cache")
	}
	ofs := flash.Offsets{-1, 2, -3, 4, -5, 6, -7}
	if evicted := c.Put(3, ofs); evicted {
		t.Fatal("first Put evicted")
	}
	got, ok := c.Get(3)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, ofs) {
		t.Fatalf("Get = %v, want %v", got, ofs)
	}
	// The returned vector is the caller's: mutating it must not change
	// the cached copy, and the cached copy must not alias the Put input.
	got[0] = 99
	ofs[1] = 99
	again, _ := c.Get(3)
	if again[0] == 99 || again[1] == 99 {
		t.Fatalf("cache aliases caller memory: %v", again)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 1 || st.Evicts != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHistCacheClampAndShape(t *testing.T) {
	c, err := NewHistCache(1, 4<<10, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Longer input is truncated, components clamped to ±bound.
	c.Put(1, flash.Offsets{100, -100, 2, 7})
	got, _ := c.Get(1)
	want := flash.Offsets{5, -5, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Get = %v, want %v", got, want)
	}
	// Shorter input is zero-padded.
	c.Put(2, flash.Offsets{-1})
	got, _ = c.Get(2)
	if !reflect.DeepEqual(got, flash.Offsets{-1, 0, 0}) {
		t.Fatalf("padded Get = %v", got)
	}
	// Negative blocks are ignored; negative Gets miss.
	c.Put(-4, flash.Offsets{1, 1, 1})
	if _, ok := c.Get(-4); ok {
		t.Fatal("negative block was stored")
	}
}

func TestHistCacheRejects(t *testing.T) {
	if _, err := NewHistCache(0, 1<<10, 3, 1); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewHistCache(1, 1<<10, 0, 1); err == nil {
		t.Error("0 voltages accepted")
	}
	if _, err := NewHistCache(1, 10, 3, 1); err == nil {
		t.Error("budget below one entry accepted")
	}
	if _, err := NewHistCache(1, 1<<10, 3, -1); err == nil {
		t.Error("negative bound accepted")
	}
}

// TestHistCacheEvictionBudget is the eviction-under-budget property:
// however many distinct blocks are stored, residency never exceeds the
// derived capacity, every lookup of a just-stored block still hits, and
// the CLOCK sweep keeps recently-referenced entries over cold ones.
func TestHistCacheEvictionBudget(t *testing.T) {
	const nv = 7
	budget := 40 * histEntryBytes(nv) // 40 entries total across 4 shards
	c, err := NewHistCache(4, budget, nv, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cap() != 40 {
		t.Fatalf("Cap() = %d, want 40", c.Cap())
	}
	rng := mathx.NewRand(7)
	evictions := 0
	for i := 0; i < 4000; i++ {
		b := int(rng.Uint64() % 1000)
		if c.Put(b, flash.Offsets{float64(b), 0, 0, 0, 0, 0, 0}) {
			evictions++
		}
		if got, ok := c.Get(b); !ok || got[0] != float64(b) {
			t.Fatalf("iteration %d: just-stored block %d missing", i, b)
		}
		if c.Len() > c.Cap() {
			t.Fatalf("iteration %d: Len %d over Cap %d", i, c.Len(), c.Cap())
		}
	}
	if evictions == 0 {
		t.Fatal("4000 inserts into a 40-entry cache never evicted")
	}
	snap := c.Snapshot()
	if len(snap) != c.Len() {
		t.Fatalf("snapshot has %d entries, Len says %d", len(snap), c.Len())
	}
	st := c.Stats()
	if int(st.Evicts) != evictions {
		t.Fatalf("Stats().Evicts = %d, counted %d", st.Evicts, evictions)
	}
}

// TestHistCacheSnapshotDeterminism: under capacity, the same set of
// (block, offsets) writes — in any arrival order, from any number of
// goroutines — yields byte-identical snapshots.
func TestHistCacheSnapshotDeterminism(t *testing.T) {
	const nv, blocks = 3, 64
	build := func(order []int, workers int) []HistEntry {
		c, err := NewHistCache(4, 128*histEntryBytes(nv), nv, 0)
		if err != nil {
			t.Fatal(err)
		}
		if workers <= 1 {
			for _, b := range order {
				c.Put(b, flash.Offsets{float64(b), -float64(b), 1})
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(order); i += workers {
						b := order[i]
						c.Put(b, flash.Offsets{float64(b), -float64(b), 1})
					}
				}(w)
			}
			wg.Wait()
		}
		return c.Snapshot()
	}
	fwd := make([]int, blocks)
	rev := make([]int, blocks)
	for i := range fwd {
		fwd[i], rev[blocks-1-i] = i, i
	}
	ref := build(fwd, 1)
	if got := build(rev, 1); !reflect.DeepEqual(got, ref) {
		t.Fatal("snapshot depends on sequential insert order")
	}
	for _, workers := range []int{2, 8} {
		if got := build(fwd, workers); !reflect.DeepEqual(got, ref) {
			t.Fatalf("snapshot differs at %d workers", workers)
		}
	}
}

// TestHistCacheConcurrentHammer drives mixed Get/Put/Snapshot/Len
// traffic from many goroutines; run under -race this is the lock-stripe
// soundness check. Invariants checked inside: hits return well-formed
// vectors and residency stays bounded.
func TestHistCacheConcurrentHammer(t *testing.T) {
	c, err := NewHistCache(8, 64*histEntryBytes(5), 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := mathx.NewRand(uint64(g) + 1)
			for i := 0; i < 3000; i++ {
				b := int(rng.Uint64() % 200)
				switch i % 4 {
				case 0, 1:
					c.Put(b, flash.Offsets{1, -2, 3, -4, 5})
				case 2:
					if ofs, ok := c.Get(b); ok {
						if len(ofs) != 5 {
							panic("short vector from Get")
						}
						for _, o := range ofs {
							if math.Abs(o) > 8 {
								panic("offset over bound")
							}
						}
					}
				default:
					if i%64 == 0 {
						c.Snapshot()
					} else if c.Len() > c.Cap() {
						panic("Len over Cap")
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Cap() {
		t.Fatalf("Len %d over Cap %d after hammer", c.Len(), c.Cap())
	}
}
