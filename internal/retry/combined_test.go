package retry

import (
	"testing"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func TestCombinedPolicyBeatsBoth(t *testing.T) {
	// The Section V extension: tracked offsets for the first attempt,
	// sentinel inference on failure. Its retry count should be at most
	// the sentinel policy's (the tracked first read sometimes succeeds
	// where defaults fail).
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 26}
	ctl, err := NewController(chip, capm, DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	table := NewDefaultTable(chip, 1.2)
	tracking := NewTracking(table)
	if err := tracking.UpdateBlock(chip, 0, 0); err != nil {
		t.Fatal(err)
	}
	sent := NewSentinelPolicy(eng)
	combined := NewCombined(tracking, sent)
	if combined.Name() != "tracking+sentinel" {
		t.Fatal("name wrong")
	}

	var sentSum, combSum float64
	combFails := 0
	nwl := chip.Config().WordlinesPerBlock()
	for wl := 0; wl < nwl; wl++ {
		for p := 0; p < 3; p++ {
			rS := ctl.Read(0, wl, p, sent, mathx.Mix3(31, uint64(wl), uint64(p)))
			rC := ctl.Read(0, wl, p, combined, mathx.Mix3(32, uint64(wl), uint64(p)))
			sentSum += float64(rS.Retries)
			combSum += float64(rC.Retries)
			if !rC.OK {
				combFails++
			}
		}
	}
	if combSum > sentSum*1.15 {
		t.Fatalf("combined (%v) clearly worse than sentinel alone (%v)",
			combSum, sentSum)
	}
	if combFails > 3 {
		t.Fatalf("combined policy failed %d reads", combFails)
	}
}

func TestCombinedWithoutTrackingFallsBack(t *testing.T) {
	// With no tracked offsets yet, the combined policy behaves exactly
	// like the sentinel policy.
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 26}
	ctl, err := NewController(chip, capm, DefaultLatency(), 15)
	if err != nil {
		t.Fatal(err)
	}
	tracking := NewTracking(NewDefaultTable(chip, 1.2)) // never updated
	sent := NewSentinelPolicy(eng)
	combined := NewCombined(tracking, sent)
	for wl := 0; wl < 8; wl++ {
		rS := ctl.Read(0, wl, 2, sent, mathx.Mix(41, uint64(wl)))
		rC := ctl.Read(0, wl, 2, combined, mathx.Mix(41, uint64(wl)))
		if rS.Retries != rC.Retries || rS.OK != rC.OK {
			t.Fatalf("wl %d: combined (%d,%v) != sentinel (%d,%v) without tracking",
				wl, rC.Retries, rC.OK, rS.Retries, rS.OK)
		}
	}
}

func TestCombinedLSBUsesAuxSense(t *testing.T) {
	// With tracked offsets, the first LSB attempt is at non-default
	// voltages, so the sentinel step must spend an auxiliary sense
	// instead of reusing the readout.
	eng := testEngine(t)
	chip := agedTLCChip(t, eng)
	capm := ecc.CapabilityModel{FrameBits: 8192, T: 1} // force failures
	ctl, err := NewController(chip, capm, DefaultLatency(), 6)
	if err != nil {
		t.Fatal(err)
	}
	tracking := NewTracking(NewDefaultTable(chip, 1.2))
	if err := tracking.UpdateBlock(chip, 0, 0); err != nil {
		t.Fatal(err)
	}
	combined := NewCombined(tracking, NewSentinelPolicy(eng))
	res := ctl.Read(0, 3, flash.PageLSB, combined, 99)
	if res.OK {
		t.Skip("read unexpectedly passed with T=1")
	}
	if res.AuxSenses == 0 {
		t.Fatal("combined LSB retry reused a non-default readout as the default sense")
	}
}
