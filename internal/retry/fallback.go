package retry

import (
	"sync"

	"sentinel3d/internal/flash"
)

// FallbackGuard holds the plausibility thresholds of a FallbackPolicy.
// Production controllers never trust a single inference path; these are
// the checks that decide when sentinel inference is lying.
type FallbackGuard struct {
	// DSlack widens the model's trained error-difference domain
	// [DLo, DHi]: a measured d outside [DLo-DSlack, DHi+DSlack] cannot
	// have come from a healthy sentinel population and trips the guard.
	DSlack float64
	// MaxOffsetFactor bounds inferred and calibrated sentinel offsets to
	// MaxOffsetFactor * Engine.OffsetBound(); beyond that the inference
	// (or a diverging calibration walk) is implausible.
	MaxOffsetFactor float64
	// StuckTolerance is the sentinel-region stuck-cell fraction above
	// which ProbeBlock declares the whole block degraded.
	StuckTolerance float64
	// ProbeSpan sets the probe voltages of ProbeBlock in state widths:
	// the sentinel voltage ± ProbeSpan*StateWidth. It must be wide enough
	// that every healthy cell of the two flanking states responds at both
	// extremes.
	ProbeSpan float64
}

// DefaultGuard returns the thresholds used by the experiments. The stuck
// tolerance is deliberately generous: the inference clamp to [DLo, DHi]
// plus state-change calibration absorb small error-difference biases (the
// corruption sweep measures only ~0.1 extra retries per read at 4% stuck
// cells), so the probe withdraws trust only once the stuck fraction is
// large enough to bias d beyond what calibration can walk back.
func DefaultGuard() FallbackGuard {
	return FallbackGuard{
		DSlack:          0.05,
		MaxOffsetFactor: 1.25,
		StuckTolerance:  0.05,
		ProbeSpan:       1.5,
	}
}

// FallbackPolicy plausibility-checks sentinel inference and degrades to
// the static vendor table instead of burning the retry budget on
// implausible voltages. Two layers of defence:
//
//   - Per block: ProbeBlock senses the sentinel region at two extreme
//     voltages and retires the block from sentinel service when its
//     stuck-cell fraction exceeds Guard.StuckTolerance. Degraded blocks
//     read exactly like the static table from attempt 0.
//   - Per read: the inferred offset must be inside the model's plausible
//     range and the measured d inside the trained domain; calibration
//     must stay bounded rather than diverge. A violation switches the
//     remaining attempts of that read to the static table (whose entry k
//     sequence is shared, so no attempt is wasted).
//
// The block-degraded map is mutex-guarded, and every session latches
// its degraded flag once at creation: flipping a block between
// sentinel and table service (ProbeBlock, ForceDegraded) while reads
// are in flight is safe, and each in-flight read runs one coherent
// policy — it can degrade mid-read via its own guard, never by an
// external flip. Probing does issue device senses, so ProbeBlock
// itself follows the chip's read-concurrency contract.
type FallbackPolicy struct {
	Sentinel *SentinelPolicy
	Table    *DefaultTablePolicy
	Guard    FallbackGuard

	mu       sync.RWMutex
	degraded map[int]bool
}

// NewFallback wraps a sentinel policy with a static-table fallback under
// the default guard thresholds.
func NewFallback(sentinel *SentinelPolicy, table *DefaultTablePolicy) *FallbackPolicy {
	return &FallbackPolicy{
		Sentinel: sentinel,
		Table:    table,
		Guard:    DefaultGuard(),
		degraded: make(map[int]bool),
	}
}

// Name implements Policy.
func (p *FallbackPolicy) Name() string { return "sentinel+fallback" }

// ProbeBlock health-checks block b's sentinel region through wordline wl
// (which must be programmed): two accounted-for-nothing senses at the
// extremes of the sentinel voltage's neighbourhood detect cells that do
// not respond to the read voltage. It returns the stuck fraction and
// records the block as degraded when it exceeds Guard.StuckTolerance.
// Call from the coordinating goroutine before fanning out reads.
func (p *FallbackPolicy) ProbeBlock(chip *flash.Chip, b, wl int) float64 {
	eng := p.Sentinel.Engine
	sv := eng.Model.SentinelVoltage
	span := p.Guard.ProbeSpan * chip.Model().P.StateWidth
	lo := chip.Sense(b, wl, sv, -span, uint64(b)<<1|1)
	hi := chip.Sense(b, wl, sv, +span, uint64(b)<<1)
	frac := eng.StuckFraction(lo, hi)
	flash.PutBitmap(hi)
	flash.PutBitmap(lo)
	p.mu.Lock()
	if frac > p.Guard.StuckTolerance {
		p.degraded[b] = true
	} else {
		delete(p.degraded, b)
	}
	p.mu.Unlock()
	return frac
}

// ForceDegraded marks (on) or clears (off) block b's degraded status
// without probing — the per-tenant policy-switch hook: a serving layer
// forcing static-table service under overload flips it while reads are
// in flight. Sessions created after the flip follow the new policy;
// sessions already running keep the one they latched.
func (p *FallbackPolicy) ForceDegraded(b int, on bool) {
	p.mu.Lock()
	if p.degraded == nil {
		p.degraded = make(map[int]bool)
	}
	if on {
		p.degraded[b] = true
	} else {
		delete(p.degraded, b)
	}
	p.mu.Unlock()
}

// BlockDegraded reports whether block b failed its last probe.
func (p *FallbackPolicy) BlockDegraded(b int) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.degraded[b]
}

// Session implements Policy.
func (p *FallbackPolicy) Session(env *Env) Session {
	s := &fallbackSession{
		p:        p,
		env:      env,
		sentinel: p.Sentinel.Session(env).(*sentinelSession),
	}
	if p.BlockDegraded(env.B) {
		s.degraded = true
	}
	return s
}

type fallbackSession struct {
	p        *FallbackPolicy
	env      *Env
	sentinel *sentinelSession
	// degraded latches once the guard trips (or immediately for a
	// degraded block); from then on every attempt k is the static table's
	// entry k, which matches the attempts a pure table session would have
	// issued because both start from factory defaults at k=0.
	degraded bool
}

// UsedFallback reports whether this read degraded to the static table;
// Controller.Read copies it into Result.UsedFallback.
func (s *fallbackSession) UsedFallback() bool { return s.degraded }

func (s *fallbackSession) NextOffsets(k int, prior flash.Bitmap, priorOfs flash.Offsets) (flash.Offsets, bool) {
	nv := s.env.Coding().NumVoltages()
	if s.degraded {
		// The controller's retry budget terminates the walk, exactly as
		// for a pure tableSession.
		return s.p.Table.Entry(k, nv), true
	}
	ofs, ok := s.sentinel.NextOffsets(k, prior, priorOfs)
	if !ok {
		return nil, false
	}
	if k >= 1 && !s.plausible(k) {
		s.degraded = true
		return s.p.Table.Entry(k, nv), true
	}
	return ofs, true
}

// plausible applies the per-read guard after the sentinel session
// produced the offsets for attempt k.
func (s *fallbackSession) plausible(k int) bool {
	g := s.p.Guard
	eng := s.p.Sentinel.Engine
	if k == 1 {
		// The measured error-difference rate must lie inside (or near) the
		// trained domain; far outside it the polynomial is extrapolating
		// from a population that cannot be healthy sentinels.
		d := s.sentinel.lastD
		if d < eng.Model.DLo-g.DSlack || d > eng.Model.DHi+g.DSlack {
			return false
		}
	}
	// The running sentinel offset — inferred at k=1, walked by
	// calibration afterwards — must stay inside the model's plausible
	// range instead of diverging.
	bound := g.MaxOffsetFactor * eng.OffsetBound()
	if bound > 0 && (s.sentinel.sentOfs < -bound || s.sentinel.sentOfs > bound) {
		return false
	}
	return true
}
