package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlicedRoundTrip(t *testing.T) {
	reqs := []Request{
		{ArriveUS: 1, Op: Read, LPN: 10, Pages: 2},
		{ArriveUS: 2, Op: Write, LPN: 20, Pages: 1},
	}
	got, err := Collect(Sliced(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("collected %d requests", len(got))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("request %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
	// A drained source stays drained.
	src := Sliced(reqs)
	for i := 0; i < len(reqs); i++ {
		if _, ok, _ := src.Next(); !ok {
			t.Fatal("source exhausted early")
		}
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("source yielded past the end")
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("drained source revived")
	}
}

// TestGeneratorMatchesGenerate pins the streaming generator to the
// materializing one: same spec, count and seed must give a byte-identical
// stream, because the engine's two passes rely on regenerating it.
func TestGeneratorMatchesGenerate(t *testing.T) {
	for _, spec := range MSRWorkloads() {
		want, err := Generate(spec, 500, 42)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(spec, 500, 42)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != 500 {
			t.Fatalf("Len = %d", g.Len())
		}
		got, err := Collect(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d streamed vs %d generated", spec.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: request %d differs: %+v vs %+v",
					spec.Name, i, got[i], want[i])
			}
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	spec, _ := WorkloadByName("hm_0")
	if _, err := NewGenerator(spec, 0, 1); err == nil {
		t.Fatal("accepted zero requests")
	}
	bad := spec
	bad.ReadFrac = 2
	if _, err := NewGenerator(bad, 10, 1); err == nil {
		t.Fatal("accepted bad read fraction")
	}
}

const msrSample = `128166372003061629,hm,0,Read,8192,4096,100
128166372013061629,hm,0,Write,4096,8192,100
# comment

128166372023061629,hm,0,Read,0,512,100
`

// TestMSRSourceMatchesParseMSR: on a timestamp-sorted file (which the
// published MSR volumes are), streaming yields exactly what ParseMSR
// materializes.
func TestMSRSourceMatchesParseMSR(t *testing.T) {
	want, err := ParseMSR(strings.NewReader(msrSample))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewMSRSource(strings.NewReader(msrSample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d streamed vs %d parsed", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestMSRSourceErrors(t *testing.T) {
	cases := []string{
		"notanumber,h,0,Read,0,4096,1",
		"1,h,0,Flush,0,4096,1",
		"1,h,0,Read,zero,4096,1",
		"1,h,0,Read,0,big,1",
		"1,h,0",
	}
	for _, c := range cases {
		src := NewMSRSource(strings.NewReader("# ok\n" + c))
		_, _, err := src.Next()
		if err == nil {
			t.Errorf("accepted %q", c)
			continue
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("error for %q lacks line number: %v", c, err)
		}
		// The error is sticky: a dead source never yields again.
		if _, ok, err2 := src.Next(); ok || err2 == nil {
			t.Errorf("dead source revived after %q", c)
		}
	}
}

func TestOpenMSR(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte(msrSample), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenMSR(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("collected %d requests", len(got))
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := OpenMSR(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("opened missing file")
	}
}
