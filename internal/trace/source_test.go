package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlicedRoundTrip(t *testing.T) {
	reqs := []Request{
		{ArriveUS: 1, Op: Read, LPN: 10, Pages: 2},
		{ArriveUS: 2, Op: Write, LPN: 20, Pages: 1},
	}
	got, err := Collect(Sliced(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("collected %d requests", len(got))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("request %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
	// A drained source stays drained.
	src := Sliced(reqs)
	for i := 0; i < len(reqs); i++ {
		if _, ok, _ := src.Next(); !ok {
			t.Fatal("source exhausted early")
		}
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("source yielded past the end")
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("drained source revived")
	}
}

// TestGeneratorMatchesGenerate pins the streaming generator to the
// materializing one: same spec, count and seed must give a byte-identical
// stream, because the engine's two passes rely on regenerating it.
func TestGeneratorMatchesGenerate(t *testing.T) {
	for _, spec := range MSRWorkloads() {
		want, err := Generate(spec, 500, 42)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(spec, 500, 42)
		if err != nil {
			t.Fatal(err)
		}
		if g.Len() != 500 {
			t.Fatalf("Len = %d", g.Len())
		}
		got, err := Collect(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d streamed vs %d generated", spec.Name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: request %d differs: %+v vs %+v",
					spec.Name, i, got[i], want[i])
			}
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	spec, _ := WorkloadByName("hm_0")
	if _, err := NewGenerator(spec, 0, 1); err == nil {
		t.Fatal("accepted zero requests")
	}
	bad := spec
	bad.ReadFrac = 2
	if _, err := NewGenerator(bad, 10, 1); err == nil {
		t.Fatal("accepted bad read fraction")
	}
}

const msrSample = `128166372003061629,hm,0,Read,8192,4096,100
128166372013061629,hm,0,Write,4096,8192,100
# comment

128166372023061629,hm,0,Read,0,512,100
`

// TestMSRSourceMatchesParseMSR: on a timestamp-sorted file (which the
// published MSR volumes are), streaming yields exactly what ParseMSR
// materializes.
func TestMSRSourceMatchesParseMSR(t *testing.T) {
	want, err := ParseMSR(strings.NewReader(msrSample))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewMSRSource(strings.NewReader(msrSample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d streamed vs %d parsed", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// msrMessy exercises every parser edge in one fixture: comments, blank
// lines, CRLF endings, a size-0 record (still one page), and surplus
// whitespace. Timestamps are in order so streaming == sorting.
const msrMessy = "# MSR header comment\r\n" +
	"128166372003061629,hm,0,Read,8192,4096,100\r\n" +
	"\r\n" +
	"128166372013061629,hm,0,Write,4096,8192,100\n" +
	"   \n" +
	"128166372023061629,hm,0,Read,12288,0,100\r\n" + // size 0 -> 1 page
	"128166372033061629,hm,0,read,0,512,100\n" // case-insensitive op

// TestMSRSourceGoldenMessy pins MSRSource and ParseMSR to the same
// stream on the messy fixture, and the stream itself to golden values.
func TestMSRSourceGoldenMessy(t *testing.T) {
	want := []Request{
		{ArriveUS: 0, Op: Read, LPN: 2, Pages: 1},
		{ArriveUS: 1e6, Op: Write, LPN: 1, Pages: 2},
		{ArriveUS: 2e6, Op: Read, LPN: 3, Pages: 1},
		{ArriveUS: 3e6, Op: Read, LPN: 0, Pages: 1},
	}
	parsed, err := ParseMSR(strings.NewReader(msrMessy))
	if err != nil {
		t.Fatal(err)
	}
	src := NewMSRSource(strings.NewReader(msrMessy))
	streamed, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(want) || len(streamed) != len(want) {
		t.Fatalf("parsed %d, streamed %d, want %d", len(parsed), len(streamed), len(want))
	}
	for i := range want {
		if parsed[i] != want[i] {
			t.Errorf("parsed[%d] = %+v, want %+v", i, parsed[i], want[i])
		}
		if streamed[i] != want[i] {
			t.Errorf("streamed[%d] = %+v, want %+v", i, streamed[i], want[i])
		}
	}
	if src.Reordered() != 0 {
		t.Errorf("in-order fixture counted %d reordered records", src.Reordered())
	}
}

// msrOutOfOrder: the file's first line is not its earliest record, and
// a later record also steps backwards. Pre-fix, the streaming path
// rebased against the first line and emitted negative, time-travelling
// arrivals (-1e6µs here) straight into the simulator.
const msrOutOfOrder = `128166372013061629,hm,0,Read,8192,4096,100
128166372003061629,hm,0,Write,4096,8192,100
128166372023061629,hm,0,Read,12288,4096,100
128166372022061629,hm,0,Read,16384,4096,100
`

// TestMSRSourceOutOfOrder is the regression test for the streaming
// rebase bug: arrivals must be clamped to the running maximum (never
// negative, never decreasing) and the clamped records counted.
func TestMSRSourceOutOfOrder(t *testing.T) {
	src := NewMSRSource(strings.NewReader(msrOutOfOrder))
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	wantUS := []float64{0, 0, 1e6, 1e6}
	if len(got) != len(wantUS) {
		t.Fatalf("streamed %d requests", len(got))
	}
	last := 0.0
	for i, r := range got {
		if r.ArriveUS != wantUS[i] {
			t.Errorf("request %d arrives at %v, want %v", i, r.ArriveUS, wantUS[i])
		}
		if r.ArriveUS < last {
			t.Errorf("request %d travels back in time: %v after %v", i, r.ArriveUS, last)
		}
		last = r.ArriveUS
	}
	if src.Reordered() != 2 {
		t.Errorf("Reordered() = %d, want 2", src.Reordered())
	}

	// ParseMSR sorts by raw timestamp and rebases against the earliest
	// record, so the sorted trace starts at 0 and is monotone.
	parsed, err := ParseMSR(strings.NewReader(msrOutOfOrder))
	if err != nil {
		t.Fatal(err)
	}
	wantSorted := []Request{
		{ArriveUS: 0, Op: Write, LPN: 1, Pages: 2},
		{ArriveUS: 1e6, Op: Read, LPN: 2, Pages: 1},
		{ArriveUS: 1.9e6, Op: Read, LPN: 4, Pages: 1},
		{ArriveUS: 2e6, Op: Read, LPN: 3, Pages: 1},
	}
	if len(parsed) != len(wantSorted) {
		t.Fatalf("parsed %d requests", len(parsed))
	}
	for i := range wantSorted {
		if parsed[i] != wantSorted[i] {
			t.Errorf("parsed[%d] = %+v, want %+v", i, parsed[i], wantSorted[i])
		}
	}
}

// FuzzParseMSRLine: no input may crash the line parser, and every
// accepted line must yield an in-range request (positive page count,
// LPN consistent with the offset) and re-parse identically.
func FuzzParseMSRLine(f *testing.F) {
	f.Add("128166372003061629,hm,0,Read,8192,4096,100")
	f.Add("1,h,0,write,0,0,1")
	f.Add("1,h,0,Read,-4096,512,1")
	f.Add("9223372036854775807,h,0,Read,9223372036854775807,9223372036854775807,1")
	f.Add(",,,,,,")
	f.Add("1,h,0,Read,0x10,4096,1")
	f.Fuzz(func(t *testing.T, line string) {
		req, ts, err := parseMSRLine(line, 1)
		if err != nil {
			return
		}
		if req.Pages < 1 {
			t.Fatalf("accepted line %q with %d pages", line, req.Pages)
		}
		if req.Op != Read && req.Op != Write {
			t.Fatalf("accepted line %q with op %v", line, req.Op)
		}
		req2, ts2, err2 := parseMSRLine(line, 1)
		if err2 != nil || req2 != req || ts2 != ts {
			t.Fatalf("re-parse of %q diverged: %+v/%v vs %+v/%v (%v)",
				line, req, ts, req2, ts2, err2)
		}
	})
}

func TestMSRSourceErrors(t *testing.T) {
	cases := []string{
		"notanumber,h,0,Read,0,4096,1",
		"1,h,0,Flush,0,4096,1",
		"1,h,0,Read,zero,4096,1",
		"1,h,0,Read,0,big,1",
		"1,h,0",
	}
	for _, c := range cases {
		src := NewMSRSource(strings.NewReader("# ok\n" + c))
		_, _, err := src.Next()
		if err == nil {
			t.Errorf("accepted %q", c)
			continue
		}
		if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("error for %q lacks line number: %v", c, err)
		}
		// The error is sticky: a dead source never yields again.
		if _, ok, err2 := src.Next(); ok || err2 == nil {
			t.Errorf("dead source revived after %q", c)
		}
	}
}

func TestOpenMSR(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte(msrSample), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenMSR(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("collected %d requests", len(got))
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := OpenMSR(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("opened missing file")
	}
}
