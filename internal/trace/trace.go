// Package trace provides block-level I/O traces for the SSD simulator: a
// parser for MSR-Cambridge-format CSV traces and synthetic generators for
// eight workloads whose shapes (read ratio, arrival burstiness, request
// sizes, access locality) follow the published summary statistics of the
// MSR volumes used in the paper's Figure 14.
//
// The real MSR traces are not redistributable, so the generators stand in
// for them; what Figure 14 measures is *relative* read-latency reduction,
// which depends on read intensity and arrival structure rather than the
// exact block addresses.
package trace

import (
	"io"
	"sort"
)

// Op is the request type.
type Op int

const (
	// Read is a host read request.
	Read Op = iota
	// Write is a host write request.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Request is one block-level I/O.
type Request struct {
	// ArriveUS is the arrival time in microseconds from trace start.
	ArriveUS float64
	// Op is Read or Write.
	Op Op
	// LPN is the first logical page (4 KiB units) touched.
	LPN int64
	// Pages is the number of consecutive logical pages.
	Pages int
}

// PageBytes is the logical page size used for LPN accounting.
const PageBytes = 4096

// ParseMSR reads an MSR Cambridge CSV trace:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is in Windows filetime (100ns ticks); Offset and Size are in
// bytes. Unparseable lines yield an error with the line number.
//
// ParseMSR materializes the whole trace, stable-sorts it by raw
// timestamp, and rebases arrivals so the earliest request arrives at
// t=0 — even when the file's first line is not its earliest record.
// For multi-million-request files use NewMSRSource/OpenMSR, which
// stream requests in file order (clamping any backwards timestamps to
// the running maximum) instead.
func ParseMSR(r io.Reader) ([]Request, error) {
	src := NewMSRSource(r)
	type raw struct {
		req Request
		ts  int64
	}
	var recs []raw
	for {
		req, ts, ok, err := src.nextRaw()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		recs = append(recs, raw{req, ts})
	}
	if len(recs) == 0 {
		return nil, nil
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].ts < recs[j].ts })
	out := make([]Request, len(recs))
	for i, rec := range recs {
		rec.req.ArriveUS = float64(rec.ts-recs[0].ts) / 10.0
		out[i] = rec.req
	}
	return out, nil
}

// Stats summarizes a trace.
type Stats struct {
	Requests   int
	Reads      int
	ReadFrac   float64
	TotalPages int
	AvgPages   float64
	DurationUS float64
}

// Summarize computes Stats for a request slice.
func Summarize(reqs []Request) Stats {
	var s Stats
	s.Requests = len(reqs)
	for _, r := range reqs {
		if r.Op == Read {
			s.Reads++
		}
		s.TotalPages += r.Pages
	}
	if len(reqs) > 0 {
		s.ReadFrac = float64(s.Reads) / float64(len(reqs))
		s.AvgPages = float64(s.TotalPages) / float64(len(reqs))
		s.DurationUS = reqs[len(reqs)-1].ArriveUS - reqs[0].ArriveUS
	}
	return s
}
