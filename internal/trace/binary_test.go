package trace

import (
	"bytes"
	"encoding/binary"
	"path/filepath"
	"strings"
	"testing"
)

// TestBinaryRoundTrip: encode → decode must reproduce a generated trace
// record for record, the header must carry the exact count and maximum
// touched LPN, and the streaming encoder must emit byte-identical
// output to the materializing one.
func TestBinaryRoundTrip(t *testing.T) {
	spec, err := WorkloadByName("hm_0")
	if err != nil {
		t.Fatal(err)
	}
	spec.WorkingSetPages = 8000
	reqs, err := Generate(spec, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}

	data := EncodeBinary(reqs)
	gen, err := NewGenerator(spec, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := EncodeBinarySource(gen)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, streamed) {
		t.Fatal("EncodeBinarySource diverged from EncodeBinary on the same trace")
	}

	src, err := NewBinarySource(data)
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != len(reqs) {
		t.Fatalf("Len = %d, want %d", src.Len(), len(reqs))
	}
	var wantMax int64 = -1
	for _, r := range reqs {
		if last := r.LPN + int64(r.Pages) - 1; last > wantMax {
			wantMax = last
		}
	}
	if src.MaxLPN() != wantMax {
		t.Fatalf("MaxLPN = %d, want %d", src.MaxLPN(), wantMax)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(reqs))
	}
	for i := range reqs {
		if got[i] != reqs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], reqs[i])
		}
	}
	// A drained source stays drained.
	if _, ok, _ := src.Next(); ok {
		t.Fatal("source yielded past the end")
	}
}

// TestBinaryEmptyTrace: a zero-record trace is valid — header only,
// MaxLPN sentinel -1.
func TestBinaryEmptyTrace(t *testing.T) {
	src, err := NewBinarySource(EncodeBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 0 || src.MaxLPN() != -1 {
		t.Fatalf("empty trace: Len=%d MaxLPN=%d", src.Len(), src.MaxLPN())
	}
	if _, ok, _ := src.Next(); ok {
		t.Fatal("empty trace yielded a record")
	}
}

// TestBinaryOpenerResets: every open re-decodes the full trace from the
// start — the engine's precondition and replay passes both depend on it.
func TestBinaryOpenerResets(t *testing.T) {
	reqs := []Request{
		{ArriveUS: 1, Op: Read, LPN: 10, Pages: 2},
		{ArriveUS: 2.5, Op: Write, LPN: 640, Pages: 3},
	}
	open, err := BinaryOpener(EncodeBinary(reqs))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		src, err := open()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(reqs) || got[0] != reqs[0] || got[1] != reqs[1] {
			t.Fatalf("pass %d decoded %+v, want %+v", pass, got, reqs)
		}
	}
}

// TestBinaryFileRoundTrip: WriteBinaryFile + ReadBinaryFile preserve
// the trace.
func TestBinaryFileRoundTrip(t *testing.T) {
	reqs := []Request{
		{ArriveUS: 0, Op: Write, LPN: 0, Pages: 1},
		{ArriveUS: 7, Op: Read, LPN: 99, Pages: 4},
	}
	path := filepath.Join(t.TempDir(), "trace.bin")
	if err := WriteBinaryFile(path, Sliced(reqs)); err != nil {
		t.Fatal(err)
	}
	src, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != reqs[0] || got[1] != reqs[1] {
		t.Fatalf("file round trip decoded %+v", got)
	}

	var buf bytes.Buffer
	if err := WriteBinary(&buf, Sliced(reqs)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), EncodeBinary(reqs)) {
		t.Fatal("WriteBinary diverged from EncodeBinary")
	}
}

// TestBinaryValidation: truncated, corrupted and version-skewed inputs
// are rejected with a diagnostic, never decoded.
func TestBinaryValidation(t *testing.T) {
	good := EncodeBinary([]Request{{Op: Read, LPN: 1, Pages: 1}})

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"shortHeader", good[:10], "truncated"},
		{"badMagic", append([]byte("NOPE"), good[4:]...), "magic"},
		{"badVersion", func() []byte {
			d := bytes.Clone(good)
			binary.LittleEndian.PutUint16(d[4:6], 99)
			return d
		}(), "version"},
		{"negativeCount", func() []byte {
			d := bytes.Clone(good)
			binary.LittleEndian.PutUint64(d[8:16], ^uint64(0))
			return d
		}(), "count"},
		{"truncatedBody", good[:len(good)-1], "truncated"},
	}
	for _, c := range cases {
		if _, err := NewBinarySource(c.data); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if _, err := BinaryOpener(c.data); err == nil {
			t.Errorf("%s: BinaryOpener accepted", c.name)
		}
	}
}
