package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseMSR(t *testing.T) {
	csv := strings.Join([]string{
		"128166372003061629,hm,0,Read,8192,4096,100",
		"128166372013061629,hm,0,Write,4096,8192,100",
		"128166372023061629,hm,0,Read,0,512,100",
	}, "\n")
	reqs, err := ParseMSR(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("got %d requests", len(reqs))
	}
	r0 := reqs[0]
	if r0.ArriveUS != 0 || r0.Op != Read || r0.LPN != 2 || r0.Pages != 1 {
		t.Fatalf("r0 = %+v", r0)
	}
	if reqs[1].ArriveUS != 1e6 { // 1e7 ticks = 1s = 1e6 µs
		t.Fatalf("r1 arrive = %v", reqs[1].ArriveUS)
	}
	if reqs[1].Op != Write || reqs[1].LPN != 1 || reqs[1].Pages != 2 {
		t.Fatalf("r1 = %+v", reqs[1])
	}
	// Sub-page read still touches one page.
	if reqs[2].Pages != 1 {
		t.Fatalf("r2 pages = %d", reqs[2].Pages)
	}
}

func TestParseMSRUnalignedSpansPages(t *testing.T) {
	// 4 KiB starting at offset 2048 touches two pages.
	csv := "1,h,0,Read,2048,4096,1"
	reqs, err := ParseMSR(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].Pages != 2 {
		t.Fatalf("pages = %d, want 2", reqs[0].Pages)
	}
}

func TestParseMSRErrors(t *testing.T) {
	cases := []string{
		"notanumber,h,0,Read,0,4096,1",
		"1,h,0,Flush,0,4096,1",
		"1,h,0,Read,zero,4096,1",
		"1,h,0,Read,0,big,1",
		"1,h,0",
	}
	for _, c := range cases {
		if _, err := ParseMSR(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Blank lines and comments are fine.
	if _, err := ParseMSR(strings.NewReader("# header\n\n1,h,0,Read,0,4096,1\n")); err != nil {
		t.Errorf("rejected comments: %v", err)
	}
}

func TestMSRWorkloadsValid(t *testing.T) {
	ws := MSRWorkloads()
	if len(ws) != 8 {
		t.Fatalf("got %d workloads, want 8 (paper Fig. 14)", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload %s", w.Name)
		}
		seen[w.Name] = true
	}
	if _, err := WorkloadByName("hm_0"); err != nil {
		t.Fatal(err)
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestGenerateMatchesSpec(t *testing.T) {
	spec, _ := WorkloadByName("mds_0")
	reqs, err := Generate(spec, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarize(reqs)
	if math.Abs(st.ReadFrac-spec.ReadFrac) > 0.02 {
		t.Fatalf("read fraction %v, want ~%v", st.ReadFrac, spec.ReadFrac)
	}
	if math.Abs(st.AvgPages-spec.MeanPages)/spec.MeanPages > 0.25 {
		t.Fatalf("mean size %v, want ~%v", st.AvgPages, spec.MeanPages)
	}
	// Arrivals are sorted and positive.
	prev := -1.0
	for _, r := range reqs {
		if r.ArriveUS < prev {
			t.Fatal("arrivals not monotone")
		}
		prev = r.ArriveUS
		if r.LPN < 0 || r.LPN+int64(r.Pages) > spec.WorkingSetPages {
			t.Fatalf("request outside working set: %+v", r)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := WorkloadByName("hm_0")
	a, _ := Generate(spec, 1000, 7)
	b, _ := Generate(spec, 1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c, _ := Generate(spec, 1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	spec, _ := WorkloadByName("hm_0")
	if _, err := Generate(spec, 0, 1); err == nil {
		t.Fatal("accepted zero requests")
	}
	bad := spec
	bad.ReadFrac = 2
	if _, err := Generate(bad, 10, 1); err == nil {
		t.Fatal("accepted bad read fraction")
	}
}

func TestZipfSkewConcentratesAccesses(t *testing.T) {
	// Higher skew should concentrate more traffic on fewer pages.
	conc := func(s float64) float64 {
		spec := WorkloadSpec{
			Name: "x", ReadFrac: 0.5, MeanIATUS: 100, WorkingSetPages: 1 << 16,
			ZipfS: s, MeanPages: 1, SeqProb: 0,
		}
		reqs, err := Generate(spec, 20000, 3)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int64]int{}
		for _, r := range reqs {
			counts[r.LPN]++
		}
		// Fraction of accesses on the hottest 1% of touched pages.
		var all []int
		for _, c := range counts {
			all = append(all, c)
		}
		top := 0
		total := 0
		// partial selection: simple max-extract for the top 1%.
		k := len(all)/100 + 1
		for i := 0; i < k; i++ {
			best := -1
			for j, c := range all {
				if best < 0 || c > all[best] {
					best = j
				}
				_ = c
			}
			top += all[best]
			all[best] = -1
		}
		for _, r := range reqs {
			_ = r
			total++
		}
		return float64(top) / float64(total)
	}
	if conc(1.1) <= conc(0.2)+0.05 {
		t.Fatal("higher Zipf skew did not concentrate accesses")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Requests != 0 || s.ReadFrac != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("Op.String wrong")
	}
}

func TestGeneratePagesBounded(t *testing.T) {
	f := func(seed uint16) bool {
		spec, _ := WorkloadByName("proj_0")
		reqs, err := Generate(spec, 200, uint64(seed))
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if r.Pages < 1 || r.Pages > 64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
