package trace

import (
	"fmt"
	"math"

	"sentinel3d/internal/mathx"
)

// WorkloadSpec parameterizes a synthetic workload generator.
type WorkloadSpec struct {
	// Name labels the workload (MSR volume names for the built-ins).
	Name string
	// ReadFrac is the fraction of read requests.
	ReadFrac float64
	// MeanIATUS is the mean inter-arrival time in microseconds.
	MeanIATUS float64
	// Burstiness in [0, 1) mixes a heavy burst mode into arrivals: with
	// this probability the next request arrives almost immediately.
	Burstiness float64
	// WorkingSetPages is the footprint in 4 KiB pages.
	WorkingSetPages int64
	// ZipfS is the Zipf skew of page popularity (0 = uniform).
	ZipfS float64
	// MeanPages is the mean request size in pages (geometric).
	MeanPages float64
	// SeqProb is the probability that a request continues sequentially
	// after the previous one instead of seeking.
	SeqProb float64
}

// Validate reports spec errors.
func (w WorkloadSpec) Validate() error {
	if w.ReadFrac < 0 || w.ReadFrac > 1 {
		return fmt.Errorf("trace: read fraction %v out of [0,1]", w.ReadFrac)
	}
	if w.MeanIATUS <= 0 || w.WorkingSetPages <= 0 || w.MeanPages < 1 {
		return fmt.Errorf("trace: invalid spec %+v", w)
	}
	if w.Burstiness < 0 || w.Burstiness >= 1 {
		return fmt.Errorf("trace: burstiness %v out of [0,1)", w.Burstiness)
	}
	if w.SeqProb < 0 || w.SeqProb > 1 {
		return fmt.Errorf("trace: seq probability %v out of [0,1]", w.SeqProb)
	}
	return nil
}

// MSRWorkloads returns the eight synthetic stand-ins for the MSR
// Cambridge volumes evaluated in the paper's Figure 14. Read ratios and
// intensities follow the published per-volume summary statistics
// (approximately — see DESIGN.md).
func MSRWorkloads() []WorkloadSpec {
	return []WorkloadSpec{
		{Name: "hm_0", ReadFrac: 0.36, MeanIATUS: 2600, Burstiness: 0.45,
			WorkingSetPages: 1 << 21, ZipfS: 0.9, MeanPages: 2.2, SeqProb: 0.25},
		{Name: "mds_0", ReadFrac: 0.88, MeanIATUS: 8300, Burstiness: 0.35,
			WorkingSetPages: 1 << 22, ZipfS: 0.8, MeanPages: 2.8, SeqProb: 0.35},
		{Name: "prn_0", ReadFrac: 0.22, MeanIATUS: 1700, Burstiness: 0.50,
			WorkingSetPages: 1 << 22, ZipfS: 0.85, MeanPages: 2.5, SeqProb: 0.30},
		{Name: "proj_0", ReadFrac: 0.12, MeanIATUS: 1500, Burstiness: 0.55,
			WorkingSetPages: 1 << 23, ZipfS: 0.7, MeanPages: 4.0, SeqProb: 0.45},
		{Name: "prxy_0", ReadFrac: 0.05, MeanIATUS: 550, Burstiness: 0.60,
			WorkingSetPages: 1 << 20, ZipfS: 1.1, MeanPages: 1.6, SeqProb: 0.15},
		{Name: "rsrch_0", ReadFrac: 0.09, MeanIATUS: 3100, Burstiness: 0.40,
			WorkingSetPages: 1 << 20, ZipfS: 0.95, MeanPages: 2.0, SeqProb: 0.20},
		{Name: "src2_0", ReadFrac: 0.30, MeanIATUS: 2100, Burstiness: 0.45,
			WorkingSetPages: 1 << 21, ZipfS: 0.9, MeanPages: 2.4, SeqProb: 0.30},
		{Name: "wdev_0", ReadFrac: 0.20, MeanIATUS: 3900, Burstiness: 0.40,
			WorkingSetPages: 1 << 20, ZipfS: 1.0, MeanPages: 1.9, SeqProb: 0.20},
	}
}

// WorkloadByName returns the built-in spec with the given name.
func WorkloadByName(name string) (WorkloadSpec, error) {
	for _, w := range MSRWorkloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return WorkloadSpec{}, fmt.Errorf("trace: unknown workload %q", name)
}

// zipfLPN draws a page index in [0, n) with approximately Zipfian
// popularity of skew s, using the continuous inverse-CDF approximation.
// The popular pages are scattered across the address space by a bijective
// hash so that hot data does not cluster at low addresses.
func zipfLPN(r *mathx.Rand, n int64, s float64) int64 {
	u := r.Float64()
	var x float64
	switch {
	case s <= 0:
		x = u * float64(n)
	case math.Abs(s-1) < 1e-9:
		x = math.Exp(u*math.Log(float64(n)+1)) - 1
	default:
		top := math.Pow(float64(n)+1, 1-s) - 1
		x = math.Pow(1+u*top, 1/(1-s)) - 1
	}
	rank := int64(x)
	if rank >= n {
		rank = n - 1
	}
	// Scatter ranks over the address space deterministically.
	return int64(mathx.Mix(uint64(rank), 0x5ca77e2) % uint64(n))
}

// Generator streams the synthetic workload one request at a time; it is
// the Source-shaped form of Generate, byte-identical to it for the same
// (spec, n, seed). A fresh Generator with the same arguments replays the
// same stream, which is how the replay engine makes its preconditioning
// and replay passes without materializing the trace.
type Generator struct {
	spec    WorkloadSpec
	n       int
	emitted int
	r       *mathx.Rand
	now     float64
	prevEnd int64
}

// NewGenerator returns a Source producing n requests for the spec,
// deterministically from seed.
func NewGenerator(spec WorkloadSpec, n int, seed uint64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: non-positive request count %d", n)
	}
	return &Generator{spec: spec, n: n, r: mathx.NewRand(seed)}, nil
}

// Len returns the total number of requests the generator will yield.
func (g *Generator) Len() int { return g.n }

// MaxLPN returns the highest logical page the generator can touch
// (requests are clamped to the working set). The replay engine uses the
// bound to size dense FTL mapping state before the first request.
func (g *Generator) MaxLPN() int64 { return g.spec.WorkingSetPages - 1 }

// Next implements Source.
func (g *Generator) Next() (Request, bool, error) {
	if g.emitted >= g.n {
		return Request{}, false, nil
	}
	g.emitted++
	spec, r := g.spec, g.r
	// Arrival process: exponential base with a burst mode.
	if r.Float64() < spec.Burstiness {
		g.now += -math.Log(1-r.Float64()) * spec.MeanIATUS * 0.02
	} else {
		g.now += -math.Log(1-r.Float64()) * spec.MeanIATUS
	}
	op := Write
	if r.Float64() < spec.ReadFrac {
		op = Read
	}
	// Size: geometric with the requested mean.
	pages := 1
	p := 1 - 1/spec.MeanPages
	for pages < 64 && r.Float64() < p {
		pages++
	}
	var lpn int64
	if r.Float64() < spec.SeqProb && g.prevEnd > 0 &&
		g.prevEnd+int64(pages) < spec.WorkingSetPages {
		lpn = g.prevEnd
	} else {
		lpn = zipfLPN(r, spec.WorkingSetPages, spec.ZipfS)
		if lpn+int64(pages) > spec.WorkingSetPages {
			lpn = spec.WorkingSetPages - int64(pages)
		}
	}
	g.prevEnd = lpn + int64(pages)
	return Request{ArriveUS: g.now, Op: op, LPN: lpn, Pages: pages}, true, nil
}

// Generate produces n requests for the spec, deterministically from seed.
func Generate(spec WorkloadSpec, n int, seed uint64) ([]Request, error) {
	g, err := NewGenerator(spec, n, seed)
	if err != nil {
		return nil, err
	}
	out := make([]Request, 0, n)
	for {
		req, ok, err := g.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, req)
	}
}
