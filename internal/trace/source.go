package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// Source is a pull iterator over a trace: Next returns requests one at a
// time, in trace order, so multi-million-request traces stream through
// the replay engine instead of being materialized as a []Request.
//
// Ordering contract: a Source yields requests in the order they should
// be replayed. The built-in sources are deterministic — two sources
// constructed with the same arguments yield identical streams — which is
// what lets the engine make a preconditioning pass and a replay pass
// over two independently opened instances of the same trace.
type Source interface {
	// Next returns the next request. ok is false when the trace is
	// exhausted (req is then the zero Request); err reports generation
	// or parse failures, after which the source is dead.
	Next() (req Request, ok bool, err error)
}

// Opener produces a fresh Source positioned at the start of a trace.
// The replay engine opens a trace twice — once to precondition, once to
// replay — so openers must yield identical streams on every call (true
// of all the built-in sources).
type Opener func() (Source, error)

// SliceOpener returns an Opener over a materialized trace.
func SliceOpener(reqs []Request) Opener {
	return func() (Source, error) { return Sliced(reqs), nil }
}

// GeneratorOpener returns an Opener that regenerates the synthetic
// workload from scratch on every call.
func GeneratorOpener(spec WorkloadSpec, n int, seed uint64) Opener {
	return func() (Source, error) { return NewGenerator(spec, n, seed) }
}

// FileOpener returns an Opener that re-reads the MSR CSV trace at path.
// Each returned source owns its file handle; the engine closes sources
// that implement io.Closer.
func FileOpener(path string) Opener {
	return func() (Source, error) { return OpenMSR(path) }
}

// SliceSource adapts a materialized []Request to the Source interface.
type SliceSource struct {
	reqs []Request
	i    int
}

// Sliced returns a Source that yields reqs in order. The slice is not
// copied; callers must not mutate it while the source is in use.
func Sliced(reqs []Request) *SliceSource { return &SliceSource{reqs: reqs} }

// Next implements Source.
func (s *SliceSource) Next() (Request, bool, error) {
	if s.i >= len(s.reqs) {
		return Request{}, false, nil
	}
	r := s.reqs[s.i]
	s.i++
	return r, true, nil
}

// Collect drains src into a slice. It is the inverse of Sliced and the
// compatibility bridge for callers that still want whole traces.
func Collect(src Source) ([]Request, error) {
	var out []Request
	for {
		r, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// MSRSource streams an MSR Cambridge CSV trace
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// one request per line, without slurping the file. Timestamps are
// Windows filetime (100ns ticks) and are rebased so the first request
// arrives at t=0; Offset and Size are bytes. Requests are yielded in
// file order, which matches ParseMSR (it sorts by timestamp) on the
// published MSR volumes because those are timestamp-sorted. On a trace
// with out-of-order timestamps the two differ by construction — the
// stream cannot be sorted without materializing it — so the streaming
// path clamps each arrival to the running maximum: replay order is
// file order, time never runs backwards, and Reordered counts the
// records whose timestamps did.
type MSRSource struct {
	sc      *bufio.Scanner
	closer  io.Closer
	line    int
	started bool
	t0      int64
	lastUS  float64
	// reordered counts records whose raw timestamp preceded an earlier
	// record's; their arrivals were clamped to the running maximum.
	reordered int64
	err       error
}

// NewMSRSource returns a streaming parser over r. If r implements
// io.Closer, Close forwards to it.
func NewMSRSource(r io.Reader) *MSRSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	m := &MSRSource{sc: sc}
	if c, ok := r.(io.Closer); ok {
		m.closer = c
	}
	return m
}

// OpenMSR opens path as a streaming MSR trace; the caller owns Close.
func OpenMSR(path string) (*MSRSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return NewMSRSource(f), nil
}

// Close releases the underlying reader when it is closable.
func (m *MSRSource) Close() error {
	if m.closer == nil {
		return nil
	}
	err := m.closer.Close()
	m.closer = nil
	return err
}

// Next implements Source. Arrivals are rebased against the first
// record and clamped to the running maximum, so a record whose raw
// timestamp runs backwards (including one earlier than the first
// record's) never injects a negative or time-travelling arrival into
// the simulator; Reordered reports how many records were clamped.
func (m *MSRSource) Next() (Request, bool, error) {
	req, ts, ok, err := m.nextRaw()
	if err != nil || !ok {
		return Request{}, false, err
	}
	if !m.started {
		m.started = true
		m.t0 = ts
	}
	us := float64(ts-m.t0) / 10.0 // 100ns ticks -> µs
	if us < m.lastUS {
		us = m.lastUS
		m.reordered++
	} else {
		m.lastUS = us
	}
	req.ArriveUS = us
	return req, true, nil
}

// Reordered returns the number of records yielded so far whose raw
// timestamp preceded an earlier record's. The replay engine surfaces
// this in its Report so divergence from the sorted (ParseMSR) order is
// visible rather than silent.
func (m *MSRSource) Reordered() int64 { return m.reordered }

// nextRaw yields the next record with its raw filetime timestamp,
// skipping blank and comment lines. ParseMSR builds on it to sort by
// raw timestamp before rebasing.
func (m *MSRSource) nextRaw() (Request, int64, bool, error) {
	if m.err != nil {
		return Request{}, 0, false, m.err
	}
	for m.sc.Scan() {
		m.line++
		// Parse straight out of the scanner's buffer: the streaming path
		// allocates nothing per line, which matters at replay scale.
		text := bytes.TrimSpace(m.sc.Bytes())
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		req, ts, err := parseMSRBytes(text, m.line)
		if err != nil {
			m.err = err
			return Request{}, 0, false, err
		}
		return req, ts, true, nil
	}
	if err := m.sc.Err(); err != nil {
		m.err = err
		return Request{}, 0, false, err
	}
	return Request{}, 0, false, nil
}

// parseMSRLine parses one CSV record, returning the request with its raw
// timestamp (the caller rebases arrivals against the first one seen).
func parseMSRLine(text string, line int) (Request, int64, error) {
	return parseMSRBytes([]byte(text), line)
}

// parseMSRBytes is the allocation-free core of parseMSRLine: fields are
// located by comma scan and integers parsed in place, so the streaming
// MSR source costs no heap traffic per record.
func parseMSRBytes(text []byte, line int) (Request, int64, error) {
	var f [6][]byte
	rest := text
	for i := 0; i < 6; i++ {
		j := bytes.IndexByte(rest, ',')
		if j < 0 {
			if i < 5 {
				return Request{}, 0, fmt.Errorf("trace: line %d: %d fields, want >= 6",
					line, bytes.Count(text, []byte{','})+1)
			}
			f[i] = rest
			break
		}
		f[i] = rest[:j]
		rest = rest[j+1:]
	}
	ts, err := parseInt64(f[0])
	if err != nil {
		return Request{}, 0, fmt.Errorf("trace: line %d: bad timestamp: %w", line, err)
	}
	var op Op
	switch {
	case asciiFoldEqual(bytes.TrimSpace(f[3]), "read"):
		op = Read
	case asciiFoldEqual(bytes.TrimSpace(f[3]), "write"):
		op = Write
	default:
		return Request{}, 0, fmt.Errorf("trace: line %d: bad type %q", line, f[3])
	}
	off, err := parseInt64(f[4])
	if err != nil {
		return Request{}, 0, fmt.Errorf("trace: line %d: bad offset: %w", line, err)
	}
	size, err := parseInt64(f[5])
	if err != nil {
		return Request{}, 0, fmt.Errorf("trace: line %d: bad size: %w", line, err)
	}
	pages := int((off%PageBytes + size + PageBytes - 1) / PageBytes)
	if pages < 1 {
		pages = 1
	}
	return Request{Op: op, LPN: off / PageBytes, Pages: pages}, ts, nil
}

// asciiFoldEqual reports whether b equals the lower-case ASCII word
// under ASCII case folding, without allocating.
func asciiFoldEqual(b []byte, word string) bool {
	if len(b) != len(word) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != word[i] {
			return false
		}
	}
	return true
}

// parseInt64 parses a base-10 signed integer with strconv.ParseInt's
// base-10 semantics (optional sign, digits only, overflow rejected)
// without converting the bytes to a string.
func parseInt64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	neg := false
	i := 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
	}
	if i == len(b) {
		return 0, fmt.Errorf("bare sign %q", b)
	}
	var u uint64
	const cutoff = uint64(1) << 63 // |math.MinInt64|
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad digit in %q", b)
		}
		d := uint64(c - '0')
		if u > (cutoff-d)/10 {
			return 0, fmt.Errorf("value out of range: %q", b)
		}
		u = u*10 + d
	}
	if neg {
		return -int64(u), nil
	}
	if u >= cutoff {
		return 0, fmt.Errorf("value out of range: %q", b)
	}
	return int64(u), nil
}
