package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary trace format: a fixed 24-byte header followed by fixed 24-byte
// little-endian records, decodable in place with no per-record
// allocation. The header carries the record count and the highest LPN
// any record touches (LPN + Pages - 1), so a consumer can size dense
// address-translation state before reading a single record.
//
//	header:  magic "S3DT" | version uint16 | reserved uint16
//	         | count int64 | maxLPN int64
//	record:  arriveUS float64 | lpn int64 | pages uint32 | op uint8 | pad[3]
//
// The format exists for replay speed: re-decoding a CSV trace or
// re-running a synthetic generator costs hundreds of nanoseconds per
// request, while a binary record decodes in a handful — which is what
// lets the fleet replay engine spend its time simulating flash instead
// of parsing.

// binaryMagic identifies a binary trace ("S3DT" little-endian).
const binaryMagic = uint32('S' | '3'<<8 | 'D'<<16 | 'T'<<24)

// binaryVersion is the current format revision.
const binaryVersion = 1

// binaryHeaderBytes and binaryRecordBytes fix the layout sizes.
const (
	binaryHeaderBytes = 24
	binaryRecordBytes = 24
)

// EncodeBinary serializes a materialized trace into the binary format.
func EncodeBinary(reqs []Request) []byte {
	buf := make([]byte, binaryHeaderBytes, binaryHeaderBytes+len(reqs)*binaryRecordBytes)
	var maxLPN int64 = -1
	for i := range reqs {
		buf = appendBinaryRecord(buf, &reqs[i])
		if last := reqs[i].LPN + int64(reqs[i].Pages) - 1; last > maxLPN {
			maxLPN = last
		}
	}
	putBinaryHeader(buf, int64(len(reqs)), maxLPN)
	return buf
}

// EncodeBinarySource drains src into the binary format without
// materializing a []Request.
func EncodeBinarySource(src Source) ([]byte, error) {
	buf := make([]byte, binaryHeaderBytes, 1<<16)
	var maxLPN int64 = -1
	count := int64(0)
	for {
		r, ok, err := src.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		buf = appendBinaryRecord(buf, &r)
		if last := r.LPN + int64(r.Pages) - 1; last > maxLPN {
			maxLPN = last
		}
		count++
	}
	putBinaryHeader(buf, count, maxLPN)
	return buf, nil
}

// WriteBinaryFile encodes src to path atomically enough for tooling use
// (plain write; callers wanting durability can fsync themselves).
func WriteBinaryFile(path string, src Source) error {
	data, err := EncodeBinarySource(src)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadBinaryFile loads a binary trace written by WriteBinaryFile.
func ReadBinaryFile(path string) (*BinarySource, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewBinarySource(data)
}

func putBinaryHeader(buf []byte, count, maxLPN int64) {
	binary.LittleEndian.PutUint32(buf[0:4], binaryMagic)
	binary.LittleEndian.PutUint16(buf[4:6], binaryVersion)
	binary.LittleEndian.PutUint16(buf[6:8], 0)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(count))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(maxLPN))
}

func appendBinaryRecord(buf []byte, r *Request) []byte {
	var rec [binaryRecordBytes]byte
	binary.LittleEndian.PutUint64(rec[0:8], math.Float64bits(r.ArriveUS))
	binary.LittleEndian.PutUint64(rec[8:16], uint64(r.LPN))
	binary.LittleEndian.PutUint32(rec[16:20], uint32(r.Pages))
	rec[20] = byte(r.Op)
	return append(buf, rec[:]...)
}

// BinarySource decodes a binary trace in place: Next reads each record
// straight out of the backing byte slice, so replaying a pre-encoded
// trace allocates nothing per request.
type BinarySource struct {
	data   []byte // records only, header stripped
	i      int    // byte offset of the next record
	count  int64
	read   int64
	maxLPN int64
}

// NewBinarySource validates the header and returns a source over the
// encoded trace. The slice is not copied; callers must not mutate it
// while the source is in use.
func NewBinarySource(data []byte) (*BinarySource, error) {
	if len(data) < binaryHeaderBytes {
		return nil, fmt.Errorf("trace: binary trace truncated: %d header bytes, want %d",
			len(data), binaryHeaderBytes)
	}
	if m := binary.LittleEndian.Uint32(data[0:4]); m != binaryMagic {
		return nil, fmt.Errorf("trace: bad binary trace magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != binaryVersion {
		return nil, fmt.Errorf("trace: binary trace version %d, want %d", v, binaryVersion)
	}
	count := int64(binary.LittleEndian.Uint64(data[8:16]))
	maxLPN := int64(binary.LittleEndian.Uint64(data[16:24]))
	if count < 0 {
		return nil, fmt.Errorf("trace: negative binary trace count %d", count)
	}
	body := data[binaryHeaderBytes:]
	if int64(len(body)) < count*binaryRecordBytes {
		return nil, fmt.Errorf("trace: binary trace truncated: %d record bytes, want %d",
			len(body), count*binaryRecordBytes)
	}
	return &BinarySource{data: body, count: count, maxLPN: maxLPN}, nil
}

// BinaryOpener returns an Opener that re-decodes the same encoded trace
// on every call (the validation runs once up front so each open is just
// a cursor reset).
func BinaryOpener(data []byte) (Opener, error) {
	if _, err := NewBinarySource(data); err != nil {
		return nil, err
	}
	return func() (Source, error) { return NewBinarySource(data) }, nil
}

// Len returns the total number of records.
func (b *BinarySource) Len() int { return int(b.count) }

// MaxLPN returns the highest logical page any record touches, or -1 for
// an empty trace. The replay engine uses it to size dense FTL mapping
// state ahead of the first request.
func (b *BinarySource) MaxLPN() int64 { return b.maxLPN }

// Next implements Source.
func (b *BinarySource) Next() (Request, bool, error) {
	if b.read >= b.count {
		return Request{}, false, nil
	}
	rec := b.data[b.i : b.i+binaryRecordBytes]
	b.i += binaryRecordBytes
	b.read++
	return Request{
		ArriveUS: math.Float64frombits(binary.LittleEndian.Uint64(rec[0:8])),
		LPN:      int64(binary.LittleEndian.Uint64(rec[8:16])),
		Pages:    int(int32(binary.LittleEndian.Uint32(rec[16:20]))),
		Op:       Op(rec[20]),
	}, true, nil
}

// WriteBinary streams src into w in the binary format. It buffers the
// whole trace first (the header carries totals), so for very large
// traces prefer encoding shards separately.
func WriteBinary(w io.Writer, src Source) error {
	data, err := EncodeBinarySource(src)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}
