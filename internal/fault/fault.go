// Package fault is a deterministic, seed-driven fault-injection layer for
// the simulated flash stack. It models the failure modes that make any
// single voltage-inference path untrustworthy in production controllers:
//
//   - stuck/corrupted cells in the sentinel region (sentinels wear and
//     retain exactly like user cells, so the paper's reserved cells can
//     themselves lie);
//   - transient sense-noise bursts affecting a whole read operation;
//   - outlier wordlines with an anomalous Vth shift (early retention
//     loss, process-variation outliers);
//   - block-level program/erase failures, both at the chip (flash.Chip)
//     and at the address-mapping (ftl.FTL) layer.
//
// Every decision is a pure hash of (profile seed, physical address,
// operation key) via the mathx seed-splitting primitives — never of call
// order — so faulted experiments are byte-identical at any worker count,
// exactly like the fault-free ones.
//
// The Injector implements both flash.FaultModel (attach with
// chip.SetFaults) and ftl.PEFaultModel (assign to FTL.Faults).
package fault

import (
	"fmt"

	"sentinel3d/internal/mathx"
)

// Salts separating the injector's independent decision streams.
const (
	saltStuck   = 0xfa17001
	saltStuckHi = 0xfa17002
	saltBurst   = 0xfa17003
	saltOutlier = 0xfa17004
	saltProgram = 0xfa17005
	saltErase   = 0xfa17006
	saltFTLProg = 0xfa17007
	saltFTLErsd = 0xfa17008
)

// Profile describes one composable set of fault processes. Zero rates
// disable the corresponding process; the zero Profile injects nothing.
type Profile struct {
	// Seed keys every fault decision. Two injectors with equal profiles
	// behave identically; changing the seed redraws all fault locations.
	Seed uint64

	// SentinelStuckRate is the per-cell probability that a cell inside
	// SentinelRegion is stuck: its threshold voltage reads pinned far
	// outside the voltage window regardless of programmed state.
	SentinelStuckRate float64
	// SentinelRegion is the [start, end) cell-index range subject to
	// sentinel-region corruption (typically the resolved sentinel span of
	// the layout; the OOB tail).
	SentinelRegion [2]int
	// StuckHighFraction is the fraction of stuck cells pinned above the
	// window (the rest pin below). 1 models a worst-case biased clamp that
	// skews the error-difference rate; 0.5 models symmetric corruption.
	StuckHighFraction float64
	// StuckShift is the Vth perturbation magnitude of a stuck cell in
	// normalized voltage units. The default (set by New when zero) is far
	// outside any read window.
	StuckShift float64

	// BurstRate is the per-read-operation probability of a transient
	// sense-noise burst: every cell of that read gains extra Gaussian
	// noise of BurstSigma.
	BurstRate  float64
	BurstSigma float64

	// OutlierWLRate is the per-wordline probability of an anomalous,
	// frozen extra Vth shift of OutlierShift (sign drawn per wordline)
	// applied to all its cells.
	OutlierWLRate float64
	OutlierShift  float64

	// ProgramFailRate / EraseFailRate are the per-operation failure
	// probabilities of chip-level program and erase.
	ProgramFailRate float64
	EraseFailRate   float64

	// FTLProgramFailRate / FTLEraseFailRate are the per-operation failure
	// probabilities consulted by the FTL layer (ftl.PEFaultModel); they
	// drive bad-block retirement in the SSD simulator, which has no
	// threshold-voltage chip underneath its address map.
	FTLProgramFailRate float64
	FTLEraseFailRate   float64
}

// Validate reports profile errors.
func (p Profile) Validate() error {
	rates := []struct {
		name string
		v    float64
	}{
		{"SentinelStuckRate", p.SentinelStuckRate},
		{"BurstRate", p.BurstRate},
		{"OutlierWLRate", p.OutlierWLRate},
		{"ProgramFailRate", p.ProgramFailRate},
		{"EraseFailRate", p.EraseFailRate},
		{"FTLProgramFailRate", p.FTLProgramFailRate},
		{"FTLEraseFailRate", p.FTLEraseFailRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s %v out of [0,1]", r.name, r.v)
		}
	}
	if p.StuckHighFraction < 0 || p.StuckHighFraction > 1 {
		return fmt.Errorf("fault: StuckHighFraction %v out of [0,1]", p.StuckHighFraction)
	}
	if p.SentinelStuckRate > 0 && p.SentinelRegion[1] <= p.SentinelRegion[0] {
		return fmt.Errorf("fault: SentinelStuckRate %v with empty region %v",
			p.SentinelStuckRate, p.SentinelRegion)
	}
	if p.BurstRate > 0 && p.BurstSigma <= 0 {
		return fmt.Errorf("fault: BurstRate %v with non-positive BurstSigma %v",
			p.BurstRate, p.BurstSigma)
	}
	if p.OutlierWLRate > 0 && p.OutlierShift == 0 {
		return fmt.Errorf("fault: OutlierWLRate %v with zero OutlierShift",
			p.OutlierWLRate)
	}
	return nil
}

// Injector applies a Profile. It is immutable after construction and safe
// for unlimited concurrent use.
type Injector struct {
	p Profile
}

// New validates the profile and builds an injector. A zero StuckShift
// defaults to 4096 normalized units (well outside any read window).
func New(p Profile) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.StuckShift == 0 {
		p.StuckShift = 4096
	}
	return &Injector{p: p}, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(p Profile) *Injector {
	in, err := New(p)
	if err != nil {
		panic(err)
	}
	return in
}

// Profile returns the injector's (defaulted) profile.
func (in *Injector) Profile() Profile { return in.p }

// u01 maps a hash to a uniform value in [0, 1).
func u01(h uint64) float64 { return float64(h>>11) * (1.0 / (1 << 53)) }

// hit reports whether the hashed decision h fires at the given rate.
func hit(h uint64, rate float64) bool { return rate > 0 && u01(h) < rate }

// ---------------------------------------------------------------------------
// flash.FaultModel

// PerturbVth implements flash.FaultModel: stuck sentinel-region cells,
// outlier-wordline shifts, and sense-noise bursts, in that order.
func (in *Injector) PerturbVth(b, wl int, readSeed uint64, vth []float64) {
	p := in.p
	if p.SentinelStuckRate > 0 {
		lo, hi := p.SentinelRegion[0], p.SentinelRegion[1]
		if lo < 0 {
			lo = 0
		}
		if hi > len(vth) {
			hi = len(vth)
		}
		for i := lo; i < hi; i++ {
			// Frozen per physical cell: independent of read and epoch.
			h := mathx.Mix4(p.Seed^saltStuck, uint64(b), uint64(wl), uint64(i))
			if !hit(h, p.SentinelStuckRate) {
				continue
			}
			shift := p.StuckShift
			if !hit(mathx.Hash64(h^saltStuckHi), p.StuckHighFraction) {
				shift = -shift
			}
			vth[i] += shift
		}
	}
	if p.OutlierWLRate > 0 {
		h := mathx.Mix3(p.Seed^saltOutlier, uint64(b), uint64(wl))
		if hit(h, p.OutlierWLRate) {
			shift := p.OutlierShift
			if mathx.Hash64(h)&1 == 1 {
				shift = -shift
			}
			for i := range vth {
				vth[i] += shift
			}
		}
	}
	if p.BurstRate > 0 {
		h := mathx.Mix4(p.Seed^saltBurst, uint64(b), uint64(wl), readSeed)
		if hit(h, p.BurstRate) {
			rng := mathx.NewRand(mathx.Hash64(h))
			for i := range vth {
				vth[i] += rng.NormFloat64() * p.BurstSigma
			}
		}
	}
}

// ProgramFails implements flash.FaultModel.
func (in *Injector) ProgramFails(b, wl int, epoch uint64) bool {
	return hit(mathx.Mix4(in.p.Seed^saltProgram, uint64(b), uint64(wl), epoch),
		in.p.ProgramFailRate)
}

// EraseFails implements flash.FaultModel.
func (in *Injector) EraseFails(b int, erase uint64) bool {
	return hit(mathx.Mix3(in.p.Seed^saltErase, uint64(b), erase),
		in.p.EraseFailRate)
}

// ---------------------------------------------------------------------------
// ftl.PEFaultModel

// PageProgramFails implements ftl.PEFaultModel: the decision is keyed by
// the page's full physical address plus the block's erase generation, so
// replays are deterministic and a retired block's replacement redraws.
func (in *Injector) PageProgramFails(plane, block, page, erases int) bool {
	return hit(mathx.Mix4(in.p.Seed^saltFTLProg,
		uint64(plane), uint64(block), uint64(page)<<20|uint64(erases)),
		in.p.FTLProgramFailRate)
}

// BlockEraseFails implements ftl.PEFaultModel.
func (in *Injector) BlockEraseFails(plane, block, erases int) bool {
	return hit(mathx.Mix4(in.p.Seed^saltFTLErsd,
		uint64(plane), uint64(block), uint64(erases)),
		in.p.FTLEraseFailRate)
}
