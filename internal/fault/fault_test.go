package fault

import (
	"errors"
	"math"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func TestValidate(t *testing.T) {
	bad := []Profile{
		{SentinelStuckRate: -0.1, SentinelRegion: [2]int{0, 8}},
		{SentinelStuckRate: 1.5, SentinelRegion: [2]int{0, 8}},
		{SentinelStuckRate: 0.1},                               // empty region
		{StuckHighFraction: 2},                                 // out of range
		{BurstRate: 0.1},                                       // no sigma
		{OutlierWLRate: 0.1},                                   // no shift
		{ProgramFailRate: -1},                                  // negative
		{FTLEraseFailRate: 1.01},                               // > 1
		{SentinelStuckRate: 0.1, SentinelRegion: [2]int{8, 8}}, // empty
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("profile %d: expected validation error, got nil", i)
		}
	}
	good := []Profile{
		{},
		{SentinelStuckRate: 0.05, SentinelRegion: [2]int{100, 120}, StuckHighFraction: 1},
		{BurstRate: 0.01, BurstSigma: 30},
		{OutlierWLRate: 0.02, OutlierShift: 80},
		{ProgramFailRate: 0.001, EraseFailRate: 0.001, FTLProgramFailRate: 0.01, FTLEraseFailRate: 0.01},
	}
	for i, p := range good {
		if _, err := New(p); err != nil {
			t.Errorf("profile %d: unexpected error %v", i, err)
		}
	}
}

func TestStuckShiftDefault(t *testing.T) {
	in := MustNew(Profile{})
	if in.Profile().StuckShift != 4096 {
		t.Fatalf("default StuckShift = %v, want 4096", in.Profile().StuckShift)
	}
	in = MustNew(Profile{StuckShift: 100})
	if in.Profile().StuckShift != 100 {
		t.Fatalf("explicit StuckShift = %v, want 100", in.Profile().StuckShift)
	}
}

// TestPerturbDeterministic checks that PerturbVth is a pure function of
// (seed, address, readSeed): repeated calls yield identical perturbations
// regardless of interleaving with other addresses.
func TestPerturbDeterministic(t *testing.T) {
	in := MustNew(Profile{
		Seed:              7,
		SentinelStuckRate: 0.3,
		SentinelRegion:    [2]int{0, 64},
		StuckHighFraction: 0.5,
		BurstRate:         0.5,
		BurstSigma:        25,
		OutlierWLRate:     0.3,
		OutlierShift:      60,
	})
	base := make([]float64, 64)
	run := func(b, wl int, readSeed uint64) []float64 {
		v := make([]float64, len(base))
		copy(v, base)
		in.PerturbVth(b, wl, readSeed, v)
		return v
	}
	a1 := run(1, 2, 33)
	// Interleave unrelated calls, then repeat.
	_ = run(0, 0, 1)
	_ = run(3, 9, 99)
	a2 := run(1, 2, 33)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("cell %d: perturbation not deterministic: %v vs %v", i, a1[i], a2[i])
		}
	}
	// Different read seed must redraw burst noise but keep stuck cells.
	b1 := run(1, 2, 34)
	same := true
	for i := range a1 {
		if a1[i] != b1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different readSeed produced identical perturbation with BurstRate=0.5")
	}
}

// TestStuckCellsFrozen checks that the stuck-cell set depends only on the
// physical address, not on the read seed.
func TestStuckCellsFrozen(t *testing.T) {
	in := MustNew(Profile{
		Seed:              11,
		SentinelStuckRate: 0.25,
		SentinelRegion:    [2]int{0, 256},
		StuckHighFraction: 1,
		StuckShift:        1000,
	})
	stuckAt := func(readSeed uint64) map[int]bool {
		v := make([]float64, 256)
		in.PerturbVth(0, 0, readSeed, v)
		m := make(map[int]bool)
		for i, x := range v {
			if x != 0 {
				m[i] = true
			}
		}
		return m
	}
	m1, m2 := stuckAt(1), stuckAt(999)
	if len(m1) == 0 {
		t.Fatal("no stuck cells at rate 0.25 over 256 cells")
	}
	if len(m1) != len(m2) {
		t.Fatalf("stuck set size varies with readSeed: %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if !m2[i] {
			t.Fatalf("cell %d stuck at readSeed 1 but not 999", i)
		}
	}
}

// TestStuckRateEmpirical checks the realized stuck fraction tracks the
// requested rate over a large region.
func TestStuckRateEmpirical(t *testing.T) {
	const n = 20000
	in := MustNew(Profile{
		Seed:              3,
		SentinelStuckRate: 0.1,
		SentinelRegion:    [2]int{0, n},
		StuckHighFraction: 1,
		StuckShift:        1000,
	})
	v := make([]float64, n)
	in.PerturbVth(0, 0, 1, v)
	count := 0
	for _, x := range v {
		if x != 0 {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("realized stuck rate %v, want 0.1±0.01", got)
	}
}

func TestStuckHighFraction(t *testing.T) {
	const n = 20000
	in := MustNew(Profile{
		Seed:              3,
		SentinelStuckRate: 0.5,
		SentinelRegion:    [2]int{0, n},
		StuckHighFraction: 0.5,
		StuckShift:        1000,
	})
	v := make([]float64, n)
	in.PerturbVth(0, 0, 1, v)
	up, down := 0, 0
	for _, x := range v {
		switch {
		case x > 0:
			up++
		case x < 0:
			down++
		}
	}
	if up == 0 || down == 0 {
		t.Fatalf("expected both directions at StuckHighFraction 0.5: up=%d down=%d", up, down)
	}
	frac := float64(up) / float64(up+down)
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("high fraction %v, want 0.5±0.03", frac)
	}
}

func TestRegionClamped(t *testing.T) {
	in := MustNew(Profile{
		Seed:              5,
		SentinelStuckRate: 1,
		SentinelRegion:    [2]int{-10, 1 << 20},
		StuckHighFraction: 1,
		StuckShift:        100,
	})
	v := make([]float64, 16)
	in.PerturbVth(0, 0, 1, v) // must not panic
	for i, x := range v {
		if x != 100 {
			t.Fatalf("cell %d: got %v, want 100 (rate 1)", i, x)
		}
	}
}

func TestZeroProfileIsNoop(t *testing.T) {
	in := MustNew(Profile{Seed: 42})
	v := []float64{1, 2, 3}
	in.PerturbVth(0, 0, 7, v)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("zero profile perturbed vth: %v", v)
	}
	if in.ProgramFails(0, 0, 1) || in.EraseFails(0, 1) ||
		in.PageProgramFails(0, 0, 0, 0) || in.BlockEraseFails(0, 0, 0) {
		t.Fatal("zero profile reported a failure")
	}
}

func TestPERatesEmpirical(t *testing.T) {
	in := MustNew(Profile{Seed: 9, ProgramFailRate: 0.05, EraseFailRate: 0.02})
	const n = 50000
	prog, erase := 0, 0
	for i := 0; i < n; i++ {
		if in.ProgramFails(i%64, i%96, uint64(i)) {
			prog++
		}
		if in.EraseFails(i%64, uint64(i)) {
			erase++
		}
	}
	if got := float64(prog) / n; math.Abs(got-0.05) > 0.005 {
		t.Fatalf("program fail rate %v, want 0.05±0.005", got)
	}
	if got := float64(erase) / n; math.Abs(got-0.02) > 0.005 {
		t.Fatalf("erase fail rate %v, want 0.02±0.005", got)
	}
}

// TestChipIntegration attaches an injector to a real chip and checks that
// program/erase faults surface as the flash sentinel errors and that stuck
// sentinel cells flip sensed bits deterministically, only inside the
// configured region.
func TestChipIntegration(t *testing.T) {
	cfg := flash.Config{
		Kind:              flash.TLC,
		Blocks:            1,
		Layers:            4,
		WordlinesPerLayer: 1,
		CellsPerWordline:  2048,
		OOBFraction:       0.119,
		Seed:              4,
	}
	chip := flash.MustNew(cfg)
	region := [2]int{cfg.CellsPerWordline - 64, cfg.CellsPerWordline}
	chip.SetFaults(MustNew(Profile{
		Seed:            21,
		ProgramFailRate: 1,
		EraseFailRate:   1,
	}))

	if err := chip.ProgramRandom(0, 0, mathx.NewRand(1)); err == nil {
		t.Fatal("ProgramRandom with ProgramFailRate=1 succeeded")
	} else if !errors.Is(err, flash.ErrProgramFault) {
		t.Fatalf("program error = %v, want ErrProgramFault", err)
	}
	if err := chip.EraseBlock(0); err == nil {
		t.Fatal("EraseBlock with EraseFailRate=1 succeeded")
	} else if !errors.Is(err, flash.ErrEraseFault) {
		t.Fatalf("erase error = %v, want ErrEraseFault", err)
	}

	// Clear faults, program, then re-attach with only stuck cells: reads
	// must be deterministic and affected only inside the region.
	chip.SetFaults(nil)
	if err := chip.ProgramRandom(0, 0, mathx.NewRand(2)); err != nil {
		t.Fatalf("clean program failed: %v", err)
	}
	clean := chip.Sense(0, 0, 1, 0, 3)
	chip.SetFaults(MustNew(Profile{
		Seed:              21,
		SentinelStuckRate: 0.5,
		SentinelRegion:    region,
		StuckHighFraction: 1,
	}))
	f1 := chip.Sense(0, 0, 1, 0, 3)
	f2 := chip.Sense(0, 0, 1, 0, 3)
	diffIn, diffOut := 0, 0
	for i := 0; i < cfg.CellsPerWordline; i++ {
		if f1.Get(i) != f2.Get(i) {
			t.Fatalf("faulted sense not deterministic at cell %d", i)
		}
		if f1.Get(i) != clean.Get(i) {
			if i >= region[0] {
				diffIn++
			} else {
				diffOut++
			}
		}
	}
	if diffOut != 0 {
		t.Fatalf("stuck faults leaked outside the region: %d cells", diffOut)
	}
	if diffIn == 0 {
		t.Fatal("stuck-high faults at rate 0.5 flipped no sentinel-region bits")
	}
}
