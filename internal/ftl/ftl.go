// Package ftl implements a page-mapped flash translation layer over a
// multi-channel SSD geometry: logical-to-physical mapping, round-robin
// write allocation across planes, greedy garbage collection, and per-block
// wear accounting. It is the address-translation substrate beneath the
// trace-driven simulator (paper Figure 14 runs SSDSim with the same
// structure).
package ftl

import "fmt"

// Geometry describes the SSD's physical structure.
type Geometry struct {
	Channels       int
	ChipsPerChan   int
	DiesPerChip    int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
}

// DefaultGeometry is a small but fully parallel SSD: 4 channels x 2 chips
// x 2 dies x 2 planes, mirroring SSDSim-style configurations.
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:       4,
		ChipsPerChan:   2,
		DiesPerChip:    2,
		PlanesPerDie:   2,
		BlocksPerPlane: 64,
		PagesPerBlock:  768,
	}
}

// Validate reports geometry errors.
func (g Geometry) Validate() error {
	if g.Channels <= 0 || g.ChipsPerChan <= 0 || g.DiesPerChip <= 0 ||
		g.PlanesPerDie <= 0 || g.BlocksPerPlane <= 0 || g.PagesPerBlock <= 0 {
		return fmt.Errorf("ftl: non-positive geometry %+v", g)
	}
	if g.BlocksPerPlane < 4 {
		return fmt.Errorf("ftl: need >= 4 blocks per plane for GC, got %d",
			g.BlocksPerPlane)
	}
	return nil
}

// Planes returns the total number of planes.
func (g Geometry) Planes() int {
	return g.Channels * g.ChipsPerChan * g.DiesPerChip * g.PlanesPerDie
}

// Dies returns the total number of dies.
func (g Geometry) Dies() int {
	return g.Channels * g.ChipsPerChan * g.DiesPerChip
}

// PagesTotal returns the number of physical pages.
func (g Geometry) PagesTotal() int {
	return g.Planes() * g.BlocksPerPlane * g.PagesPerBlock
}

// PPN is a physical page address.
type PPN struct {
	Plane int // global plane index
	Block int // block within the plane
	Page  int // page within the block
}

// Channel returns the channel of a plane index under g.
func (g Geometry) Channel(plane int) int {
	return plane / (g.ChipsPerChan * g.DiesPerChip * g.PlanesPerDie)
}

// Die returns the global die index of a plane.
func (g Geometry) Die(plane int) int { return plane / g.PlanesPerDie }

const invalidLPN = int64(-1)

// PEFaultModel lets a fault-injection layer (see internal/fault) fail
// individual program and erase operations at the FTL's address level.
// Implementations must be deterministic pure functions of their own seed
// and the arguments, never of call order.
type PEFaultModel interface {
	// PageProgramFails reports whether programming the given page of
	// (plane, block) fails; erases is the block's erase count, so a
	// decision is redrawn after each erase cycle.
	PageProgramFails(plane, block, page, erases int) bool
	// BlockEraseFails reports whether the erase following erase count
	// erases of (plane, block) fails.
	BlockEraseFails(plane, block, erases int) bool
}

type blockMeta struct {
	// valid[page] holds the stored LPN biased by one (lpn+1), with 0
	// meaning invalid. The bias lets a freshly allocated (zeroed) array
	// start in the all-invalid state without an initialization sweep,
	// and lets erase clear pages with a memclr — at fleet scale the FTLs
	// allocate tens of megabytes of page metadata per replay, most of
	// which is never written, so the zero-state trick keeps construction
	// proportional to pages touched rather than pages provisioned.
	valid    []int64
	validCnt int
	writePtr int // next free page, PagesPerBlock when full
	erases   int
	isActive bool
	retired  bool // permanently out of service (program/erase failure)
}

// lpnAt returns the LPN stored at page, or invalidLPN.
func (bm *blockMeta) lpnAt(page int) int64 { return bm.valid[page] - 1 }

// setLPN marks page as holding lpn (invalidLPN clears it).
func (bm *blockMeta) setLPN(page int, lpn int64) { bm.valid[page] = lpn + 1 }

type planeState struct {
	blocks    []blockMeta
	active    int   // block currently receiving writes
	freeQueue []int // erased blocks ready for allocation
}

// WearSink observes per-block erase wear as it happens. A failed erase
// still stresses the oxide — bm.erases advances before the block is
// retired — so the sink is told about both outcomes; lifetime-aware
// consumers (ssdsim's per-block stress state) count failed erases as
// wear even though no data was erased.
type WearSink interface {
	// BlockErased is called once per erase attempt on (plane, block).
	// failed reports that the erase failed and the block was retired.
	BlockErased(plane, block int, failed bool)
}

// FTL is a page-mapped translation layer. It is not safe for concurrent
// use; the simulator drives it from one goroutine.
type FTL struct {
	geo Geometry
	// map from LPN to physical page. Always present; when dense is
	// enabled it only holds LPNs at or above the dense bound.
	l2p map[int64]PPN
	// dense, when non-nil, maps LPNs in [0, len(dense)) to packed
	// physical pages biased by one (0 = unmapped): a slice load replaces
	// a map probe on the replay hot path. See SetLPNBound.
	dense     []uint64
	planes    []planeState
	nextPlane int

	// Stats
	HostWrites int64
	GCWrites   int64
	Erases     int64
	// BadBlocks counts blocks retired after a program or erase failure.
	BadBlocks int64

	// GCThreshold is the free-block low-water mark per plane at which
	// garbage collection runs (default 2).
	GCThreshold int

	// Faults optionally injects program/erase failures; nil means a
	// fault-free medium. Set it before issuing writes.
	Faults PEFaultModel

	// Obs, when non-nil, receives counter deltas on FlushObs; the write
	// path itself is untouched, so instrumentation is free per write.
	Obs *Metrics

	// Wear, when non-nil, observes every erase attempt (including failed
	// ones, which wear the oxide without freeing the block). Erases are
	// rare relative to page writes, so the hook costs nothing on the
	// write hot path.
	Wear WearSink
}

// New builds an FTL over the geometry.
func New(geo Geometry) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	f := &FTL{
		geo:         geo,
		l2p:         make(map[int64]PPN),
		planes:      make([]planeState, geo.Planes()),
		GCThreshold: 2,
	}
	for p := range f.planes {
		ps := &f.planes[p]
		ps.blocks = make([]blockMeta, geo.BlocksPerPlane)
		// One backing array per plane, zero-valued = all pages invalid
		// (see blockMeta.valid); blocks slice it without touching it.
		backing := make([]int64, geo.BlocksPerPlane*geo.PagesPerBlock)
		for b := range ps.blocks {
			ps.blocks[b].valid = backing[b*geo.PagesPerBlock : (b+1)*geo.PagesPerBlock]
			if b > 0 {
				ps.freeQueue = append(ps.freeQueue, b)
			}
		}
		ps.active = 0
		ps.blocks[0].isActive = true
	}
	return f, nil
}

// packedPlaneBits et al. fix the dense entry layout: plane<<40 |
// block<<20 | page, biased by one so a zeroed slice means "unmapped".
const (
	packedPageBits  = 20
	packedBlockBits = 20
	packedPlaneMax  = 1 << 23
)

func packPPN(p PPN) uint64 {
	return uint64(p.Plane)<<(packedPageBits+packedBlockBits) |
		uint64(p.Block)<<packedPageBits | uint64(p.Page)
}

func unpackPPN(v uint64) PPN {
	return PPN{
		Plane: int(v >> (packedPageBits + packedBlockBits)),
		Block: int(v >> packedPageBits & (1<<packedBlockBits - 1)),
		Page:  int(v & (1<<packedPageBits - 1)),
	}
}

// SetLPNBound enables the dense L2P path for LPNs in [0, maxLPN]: a
// packed-word slice indexed by LPN replaces the map probe on every
// translate, invalidate and remap. LPNs above the bound (or a bound the
// geometry cannot pack) silently stay on the map, so the bound is a
// performance hint, never a correctness constraint. Call it before the
// first write; enabling it mid-stream would strand existing map entries.
func (f *FTL) SetLPNBound(maxLPN int64) {
	const maxDenseEntries = 1 << 28 // 2 GiB of packed words
	if maxLPN < 0 || maxLPN+1 > maxDenseEntries || len(f.l2p) > 0 {
		return
	}
	if f.geo.PagesPerBlock > 1<<packedPageBits ||
		f.geo.BlocksPerPlane > 1<<packedBlockBits ||
		f.geo.Planes() > packedPlaneMax {
		return
	}
	f.dense = make([]uint64, maxLPN+1)
}

// l2pGet looks up an LPN in the dense slice or the overflow map.
func (f *FTL) l2pGet(lpn int64) (PPN, bool) {
	if uint64(lpn) < uint64(len(f.dense)) {
		v := f.dense[lpn]
		if v == 0 {
			return PPN{}, false
		}
		return unpackPPN(v - 1), true
	}
	p, ok := f.l2p[lpn]
	return p, ok
}

// l2pSet maps an LPN.
func (f *FTL) l2pSet(lpn int64, p PPN) {
	if uint64(lpn) < uint64(len(f.dense)) {
		f.dense[lpn] = packPPN(p) + 1
		return
	}
	f.l2p[lpn] = p
}

// Geometry returns the FTL's geometry.
func (f *FTL) Geometry() Geometry { return f.geo }

// Translate returns the physical page of an LPN.
func (f *FTL) Translate(lpn int64) (PPN, bool) {
	return f.l2pGet(lpn)
}

// FreeBlocks returns the number of erased spare blocks in plane p.
func (f *FTL) FreeBlocks(p int) int { return len(f.planes[p].freeQueue) }

// WriteResult describes the physical work one host page write caused.
type WriteResult struct {
	// Target is where the host page landed.
	Target PPN
	// Migrations lists valid pages relocated by garbage collection or
	// bad-block retirement triggered by this write (source pages; each
	// also incurred a write).
	Migrations []PPN
	// ErasedBlocks counts blocks erased by GC during this write.
	ErasedBlocks int
	// RetiredBlocks counts blocks taken out of service during this write
	// after a program or erase failure.
	RetiredBlocks int
}

// Write maps (or remaps) an LPN, allocating the next page of the current
// plane's active block and running garbage collection if free space runs
// low. Planes are filled round-robin, which stripes sequential writes
// across channels exactly like SSDSim's dynamic allocation.
func (f *FTL) Write(lpn int64) (WriteResult, error) {
	var res WriteResult
	if err := f.WriteInto(lpn, &res); err != nil {
		return WriteResult{}, err
	}
	return res, nil
}

// WriteInto is Write with a caller-owned result: res is reset and filled
// in place, so a replay loop can reuse one WriteResult (and its
// Migrations capacity) across millions of writes instead of copying a
// fresh one out per page.
func (f *FTL) WriteInto(lpn int64, res *WriteResult) error {
	res.Target = PPN{}
	res.Migrations = res.Migrations[:0]
	res.ErasedBlocks = 0
	res.RetiredBlocks = 0
	if lpn < 0 {
		return fmt.Errorf("ftl: negative LPN %d", lpn)
	}
	// Invalidate the old copy.
	if old, ok := f.l2pGet(lpn); ok {
		bm := &f.planes[old.Plane].blocks[old.Block]
		if bm.lpnAt(old.Page) == lpn {
			bm.setLPN(old.Page, invalidLPN)
			bm.validCnt--
		}
	}
	plane := f.nextPlane
	f.nextPlane++
	if f.nextPlane == len(f.planes) {
		f.nextPlane = 0
	}

	tgt, err := f.allocate(plane, lpn, res, true)
	if err != nil {
		return err
	}
	f.l2pSet(lpn, tgt)
	res.Target = tgt
	f.HostWrites++
	// Keep the free-block watermark: run GC until replenished or until it
	// stops making progress (all candidate victims fully valid).
	for len(f.planes[plane].freeQueue) < f.GCThreshold {
		progressed, err := f.collect(plane, res)
		if err != nil {
			return err
		}
		if !progressed {
			break
		}
	}
	return nil
}

// allocate takes the next free page in the plane's active block, rolling
// to a fresh block from the free queue when full. With checkFaults set it
// consults the fault model before committing the program; a failure
// retires the active block (relocating its contents) and retries on a
// fresh one. Relocation writes run with checkFaults off: their fault
// decision would be redrawn at the same key and loop forever, and real
// controllers treat the rescue copy of a dying block as must-succeed.
func (f *FTL) allocate(plane int, lpn int64, res *WriteResult, checkFaults bool) (PPN, error) {
	ps := &f.planes[plane]
	for {
		bm := &ps.blocks[ps.active]
		if bm.writePtr >= f.geo.PagesPerBlock {
			if len(ps.freeQueue) == 0 {
				return PPN{}, fmt.Errorf("ftl: plane %d out of space", plane)
			}
			bm.isActive = false
			ps.active = ps.freeQueue[0]
			ps.freeQueue = ps.freeQueue[1:]
			ps.blocks[ps.active].isActive = true
			bm = &ps.blocks[ps.active]
		}
		page := bm.writePtr
		if checkFaults && f.Faults != nil &&
			f.Faults.PageProgramFails(plane, ps.active, page, bm.erases) {
			if err := f.retireActive(plane, res); err != nil {
				return PPN{}, err
			}
			continue
		}
		bm.writePtr++
		bm.setLPN(page, lpn)
		bm.validCnt++
		return PPN{Plane: plane, Block: ps.active, Page: page}, nil
	}
}

// retireActive takes the plane's active block out of service after a
// program failure: the block is marked bad, a fresh block becomes active,
// and the dying block's valid pages are relocated onto it (they remain
// readable — only further programs fail).
func (f *FTL) retireActive(plane int, res *WriteResult) error {
	ps := &f.planes[plane]
	victim := ps.active
	bm := &ps.blocks[victim]
	bm.isActive = false
	bm.retired = true
	f.BadBlocks++
	res.RetiredBlocks++
	if len(ps.freeQueue) == 0 {
		return fmt.Errorf("ftl: plane %d out of space retiring block %d", plane, victim)
	}
	ps.active = ps.freeQueue[0]
	ps.freeQueue = ps.freeQueue[1:]
	ps.blocks[ps.active].isActive = true
	for page, lpn1 := range bm.valid {
		if lpn1 == 0 {
			continue
		}
		lpn := lpn1 - 1
		res.Migrations = append(res.Migrations,
			PPN{Plane: plane, Block: victim, Page: page})
		bm.setLPN(page, invalidLPN)
		bm.validCnt--
		tgt, err := f.allocate(plane, lpn, res, false)
		if err != nil {
			return err
		}
		f.l2pSet(lpn, tgt)
		f.GCWrites++
	}
	return nil
}

// collect performs one round of greedy garbage collection on the plane:
// it picks the fully-written block with the fewest valid pages, migrates
// them, and erases it. It reports whether it reclaimed any space
// (progressed = false when the best victim is fully valid, which means GC
// cannot help until the host invalidates more data).
func (f *FTL) collect(plane int, res *WriteResult) (progressed bool, err error) {
	ps := &f.planes[plane]
	victim := -1
	best := f.geo.PagesPerBlock + 1
	for b := range ps.blocks {
		bm := &ps.blocks[b]
		if bm.isActive || bm.retired || bm.writePtr < f.geo.PagesPerBlock {
			continue
		}
		if bm.validCnt < best {
			best = bm.validCnt
			victim = b
		}
	}
	if victim < 0 || best >= f.geo.PagesPerBlock {
		return false, nil
	}
	bm := &ps.blocks[victim]
	for page, lpn1 := range bm.valid {
		if lpn1 == 0 {
			continue
		}
		lpn := lpn1 - 1
		res.Migrations = append(res.Migrations,
			PPN{Plane: plane, Block: victim, Page: page})
		bm.setLPN(page, invalidLPN)
		bm.validCnt--
		tgt, err := f.allocate(plane, lpn, res, true)
		if err != nil {
			return false, err
		}
		f.l2pSet(lpn, tgt)
		f.GCWrites++
	}
	// Erase. A failed erase wears the block without freeing it; the FTL
	// retires it on the spot (its pages were already migrated, so no data
	// is at risk) and the next collect round picks another victim.
	if f.Faults != nil && f.Faults.BlockEraseFails(plane, victim, bm.erases) {
		bm.erases++
		bm.retired = true
		f.BadBlocks++
		res.RetiredBlocks++
		if f.Wear != nil {
			f.Wear.BlockErased(plane, victim, true)
		}
		return true, nil
	}
	bm.writePtr = 0
	bm.validCnt = 0
	bm.erases++
	clear(bm.valid) // zero = invalid; compiles to a memclr
	f.Erases++
	res.ErasedBlocks++
	if f.Wear != nil {
		f.Wear.BlockErased(plane, victim, false)
	}
	ps.freeQueue = append(ps.freeQueue, victim)
	return true, nil
}

// BlockErases returns the erase count of a block (wear accounting).
func (f *FTL) BlockErases(plane, block int) int {
	return f.planes[plane].blocks[block].erases
}

// BlockRetired reports whether a block has been taken out of service.
func (f *FTL) BlockRetired(plane, block int) bool {
	return f.planes[plane].blocks[block].retired
}

// CheckInvariants verifies internal consistency: every L2P entry (dense
// or map) points at a page recording that LPN, and valid counts match.
// Tests call this.
func (f *FTL) CheckInvariants() error {
	check := func(lpn int64, ppn PPN) error {
		bm := &f.planes[ppn.Plane].blocks[ppn.Block]
		if bm.lpnAt(ppn.Page) != lpn {
			return fmt.Errorf("ftl: L2P %d -> %+v but page holds %d",
				lpn, ppn, bm.lpnAt(ppn.Page))
		}
		return nil
	}
	for lpn, ppn := range f.l2p {
		if err := check(lpn, ppn); err != nil {
			return err
		}
	}
	for lpn, v := range f.dense {
		if v == 0 {
			continue
		}
		if err := check(int64(lpn), unpackPPN(v-1)); err != nil {
			return err
		}
	}
	for p := range f.planes {
		for b := range f.planes[p].blocks {
			bm := &f.planes[p].blocks[b]
			cnt := 0
			for _, v := range bm.valid {
				if v != 0 {
					cnt++
				}
			}
			if cnt != bm.validCnt {
				return fmt.Errorf("ftl: plane %d block %d valid count %d != %d",
					p, b, bm.validCnt, cnt)
			}
			if bm.retired && (bm.validCnt != 0 || bm.isActive) {
				return fmt.Errorf("ftl: plane %d block %d retired but validCnt=%d active=%v",
					p, b, bm.validCnt, bm.isActive)
			}
		}
	}
	return nil
}
