package ftl

import "sentinel3d/internal/obs"

// Metrics bundles the FTL's observability handles. The FTL's hot path
// keeps its existing plain counters; FlushObs publishes deltas, so
// instrumentation costs nothing per write.
type Metrics struct {
	HostWrites    *obs.Counter
	GCRelocations *obs.Counter
	Erases        *obs.Counter
	RetiredBlocks *obs.Counter

	// last* remember the values published so far, making FlushObs
	// idempotent and incremental. The FTL is single-goroutine (see the
	// FTL doc comment), so plain fields suffice.
	lastHost, lastGC, lastErases, lastRetired int64
}

// NewMetrics binds the FTL's handles to set; a nil set yields a nil
// (no-op) Metrics.
func NewMetrics(set *obs.Set) *Metrics {
	if set == nil {
		return nil
	}
	return &Metrics{
		HostWrites:    set.Counter("ftl.host_writes", "host page writes mapped"),
		GCRelocations: set.Counter("ftl.gc_relocations", "valid pages relocated by GC and retirement"),
		Erases:        set.Counter("ftl.erases", "block erases"),
		RetiredBlocks: set.Counter("ftl.retired_blocks", "blocks retired after program/erase failures"),
	}
}

// FlushObs publishes the growth of the FTL's counters since the last
// flush into f.Obs. Call it at batch boundaries (the simulator flushes
// per replay chunk); with Obs nil it is a no-op.
func (f *FTL) FlushObs() {
	m := f.Obs
	if m == nil {
		return
	}
	m.HostWrites.Add(f.HostWrites - m.lastHost)
	m.lastHost = f.HostWrites
	m.GCRelocations.Add(f.GCWrites - m.lastGC)
	m.lastGC = f.GCWrites
	m.Erases.Add(f.Erases - m.lastErases)
	m.lastErases = f.Erases
	m.RetiredBlocks.Add(f.BadBlocks - m.lastRetired)
	m.lastRetired = f.BadBlocks
}
