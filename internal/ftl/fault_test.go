package ftl

import (
	"testing"

	"sentinel3d/internal/fault"
	"sentinel3d/internal/mathx"
)

// scriptedFaults fails exactly the listed operations; handy for directed
// retirement tests where hash-driven rates would be awkward.
type scriptedFaults struct {
	progFail  map[[4]int]bool // plane, block, page, erases
	eraseFail map[[3]int]bool // plane, block, erases
}

func (s *scriptedFaults) PageProgramFails(plane, block, page, erases int) bool {
	return s.progFail[[4]int{plane, block, page, erases}]
}

func (s *scriptedFaults) BlockEraseFails(plane, block, erases int) bool {
	return s.eraseFail[[3]int{plane, block, erases}]
}

func TestProgramFaultRetiresAndRelocates(t *testing.T) {
	f, err := New(smallGeo())
	if err != nil {
		t.Fatal(err)
	}
	// Fill a few pages of plane 0's active block (block 0), then fail the
	// next program on it.
	planes := f.Geometry().Planes()
	var lpns []int64
	for i := 0; i < 3*planes; i++ {
		lpn := int64(i)
		if _, err := f.Write(lpn); err != nil {
			t.Fatal(err)
		}
		lpns = append(lpns, lpn)
	}
	f.Faults = &scriptedFaults{
		progFail: map[[4]int]bool{{0, 0, 3, 0}: true},
	}
	res, err := f.Write(int64(3 * planes)) // lands on plane 0, page 3
	if err != nil {
		t.Fatal(err)
	}
	if res.RetiredBlocks != 1 {
		t.Fatalf("RetiredBlocks = %d, want 1", res.RetiredBlocks)
	}
	if !f.BlockRetired(0, 0) {
		t.Fatal("block (0,0) not retired after program fault")
	}
	if f.BadBlocks != 1 {
		t.Fatalf("BadBlocks = %d, want 1", f.BadBlocks)
	}
	// The three pages already on the block were relocated.
	if len(res.Migrations) != 3 {
		t.Fatalf("migrations = %d, want 3", len(res.Migrations))
	}
	// Every LPN (old and new) still resolves, and none into the bad block.
	for _, lpn := range append(lpns, int64(3*planes)) {
		ppn, ok := f.Translate(lpn)
		if !ok {
			t.Fatalf("LPN %d lost after retirement", lpn)
		}
		if ppn.Plane == 0 && ppn.Block == 0 {
			t.Fatalf("LPN %d still mapped into the retired block", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEraseFaultRetiresVictim(t *testing.T) {
	geo := smallGeo()
	f, err := New(geo)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first erase of plane 0's blocks 1 and 2: whenever GC picks
	// one of them it must retire it and keep collecting elsewhere.
	sf := &scriptedFaults{eraseFail: map[[3]int]bool{
		{0, 1, 0}: true,
		{0, 2, 0}: true,
	}}
	f.Faults = sf
	// Overwrite a small working set until GC kicks in everywhere.
	span := int64(geo.PagesTotal() / 4)
	rng := mathx.NewRand(7)
	for i := 0; i < geo.PagesTotal()*2; i++ {
		if _, err := f.Write(int64(rng.Intn(int(span)))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	retiredP0 := 0
	for b := 0; b < geo.BlocksPerPlane; b++ {
		if f.BlockRetired(0, b) {
			retiredP0++
		}
	}
	if retiredP0 == 0 {
		t.Fatal("no plane-0 blocks retired despite failing every erase")
	}
	if f.BadBlocks != int64(retiredP0) {
		t.Fatalf("BadBlocks = %d, want %d", f.BadBlocks, retiredP0)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// recordingWear tallies BlockErased callbacks per block.
type recordingWear struct {
	wear   map[[2]int]int // (plane, block) -> erase attempts observed
	failed int
	ok     int
}

func (r *recordingWear) BlockErased(plane, block int, failed bool) {
	if r.wear == nil {
		r.wear = map[[2]int]int{}
	}
	r.wear[[2]int{plane, block}]++
	if failed {
		r.failed++
	} else {
		r.ok++
	}
}

// TestWearSinkSeesFailedErases is the satellite regression: a failed
// erase advances the block's wear counter, and that wear must be
// visible to stress consumers through the WearSink hook — not only the
// successful erases that f.Erases counts.
func TestWearSinkSeesFailedErases(t *testing.T) {
	geo := smallGeo()
	f, err := New(geo)
	if err != nil {
		t.Fatal(err)
	}
	sink := &recordingWear{}
	f.Wear = sink
	f.Faults = &scriptedFaults{eraseFail: map[[3]int]bool{
		{0, 1, 0}: true,
		{0, 2, 0}: true,
	}}
	span := int64(geo.PagesTotal() / 4)
	rng := mathx.NewRand(7)
	for i := 0; i < geo.PagesTotal()*2; i++ {
		if _, err := f.Write(int64(rng.Intn(int(span)))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if sink.failed == 0 {
		t.Fatal("no failed erase reached the wear sink despite scripted erase faults")
	}
	if int64(sink.ok) != f.Erases {
		t.Fatalf("sink saw %d successful erases, FTL counted %d", sink.ok, f.Erases)
	}
	// The sink's per-block totals must match the FTL's own wear
	// accounting exactly — including on retired blocks whose only erase
	// attempt failed.
	for pb, n := range sink.wear {
		if got := f.BlockErases(pb[0], pb[1]); got != n {
			t.Fatalf("block (%d,%d): sink wear %d, FTL erases %d", pb[0], pb[1], n, got)
		}
	}
	for _, pb := range [][2]int{{0, 1}, {0, 2}} {
		if !f.BlockRetired(pb[0], pb[1]) {
			continue // GC may not have picked it before the workload ended
		}
		if sink.wear[pb] == 0 {
			t.Fatalf("retired block (%d,%d) wear invisible to sink", pb[0], pb[1])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultInjectorWorkload drives the hash-keyed injector end to end:
// a sustained overwrite workload over a faulty medium must retire blocks,
// keep every live LPN resolvable, and hold the FTL invariants.
func TestFaultInjectorWorkload(t *testing.T) {
	geo := smallGeo()
	geo.BlocksPerPlane = 16 // headroom for accumulated retirements
	f, err := New(geo)
	if err != nil {
		t.Fatal(err)
	}
	f.Faults = fault.MustNew(fault.Profile{
		Seed:               13,
		FTLProgramFailRate: 0.0005,
		FTLEraseFailRate:   0.002,
	})
	span := int64(geo.PagesTotal() / 4)
	rng := mathx.NewRand(11)
	live := map[int64]bool{}
	for i := 0; i < geo.PagesTotal()*3; i++ {
		lpn := int64(rng.Intn(int(span)))
		if _, err := f.Write(lpn); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		live[lpn] = true
	}
	if f.BadBlocks == 0 {
		t.Fatal("workload over faulty medium retired no blocks")
	}
	for lpn := range live {
		if _, ok := f.Translate(lpn); !ok {
			t.Fatalf("live LPN %d lost", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultWorkloadDeterministic repeats the injector workload and checks
// byte-identical outcomes (hash-keyed decisions, not call-order ones).
func TestFaultWorkloadDeterministic(t *testing.T) {
	run := func() (int64, int64, int64, int64) {
		geo := smallGeo()
		geo.BlocksPerPlane = 16
		f, err := New(geo)
		if err != nil {
			t.Fatal(err)
		}
		f.Faults = fault.MustNew(fault.Profile{
			Seed:               13,
			FTLProgramFailRate: 0.0005,
			FTLEraseFailRate:   0.002,
		})
		rng := mathx.NewRand(11)
		span := int64(geo.PagesTotal() / 4)
		for i := 0; i < geo.PagesTotal()*2; i++ {
			if _, err := f.Write(int64(rng.Intn(int(span)))); err != nil {
				t.Fatal(err)
			}
		}
		return f.HostWrites, f.GCWrites, f.Erases, f.BadBlocks
	}
	h1, g1, e1, b1 := run()
	h2, g2, e2, b2 := run()
	if h1 != h2 || g1 != g2 || e1 != e2 || b1 != b2 {
		t.Fatalf("faulted FTL workload not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			h1, g1, e1, b1, h2, g2, e2, b2)
	}
}
