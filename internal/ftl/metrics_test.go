package ftl

import (
	"testing"

	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
)

func TestFlushObsPublishesDeltas(t *testing.T) {
	f, err := New(smallGeo())
	if err != nil {
		t.Fatal(err)
	}
	// Nil Obs: flushing is a no-op, not a crash.
	f.FlushObs()

	reg := obs.NewRegistry(1)
	f.Obs = NewMetrics(reg.Set(0))

	for lpn := int64(0); lpn < 100; lpn++ {
		if _, err := f.Write(lpn); err != nil {
			t.Fatal(err)
		}
	}
	f.FlushObs()
	if got := f.Obs.HostWrites.Value(); got != f.HostWrites {
		t.Fatalf("host writes counter %d, want %d", got, f.HostWrites)
	}

	// Overwrite a large working set in a skewed pattern so GC finds
	// mixed-validity blocks and must relocate, flushing midway: repeated
	// flushes publish exactly the growth, never double-count.
	rng := mathx.NewRand(7)
	for round := 0; round < 60; round++ {
		for i := 0; i < 100; i++ {
			if _, err := f.Write(int64(rng.Intn(700))); err != nil {
				t.Fatal(err)
			}
		}
		f.FlushObs()
	}
	if f.GCWrites == 0 || f.Erases == 0 {
		t.Fatal("workload did not trigger GC; test is vacuous")
	}
	checks := []struct {
		name string
		c    *obs.Counter
		want int64
	}{
		{"host writes", f.Obs.HostWrites, f.HostWrites},
		{"gc relocations", f.Obs.GCRelocations, f.GCWrites},
		{"erases", f.Obs.Erases, f.Erases},
		{"retired blocks", f.Obs.RetiredBlocks, f.BadBlocks},
	}
	for _, c := range checks {
		if got := c.c.Value(); got != c.want {
			t.Errorf("%s counter %d, want %d", c.name, got, c.want)
		}
	}
	// Idempotence: a flush with no intervening writes adds nothing.
	f.FlushObs()
	if got := f.Obs.HostWrites.Value(); got != f.HostWrites {
		t.Fatalf("idle flush moved host writes to %d", got)
	}

	if n := testing.AllocsPerRun(100, f.FlushObs); n != 0 {
		t.Fatalf("FlushObs allocates %v/op", n)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
