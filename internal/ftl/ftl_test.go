package ftl

import (
	"testing"

	"sentinel3d/internal/mathx"
)

func smallGeo() Geometry {
	return Geometry{
		Channels: 2, ChipsPerChan: 1, DiesPerChip: 1, PlanesPerDie: 2,
		BlocksPerPlane: 8, PagesPerBlock: 32,
	}
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallGeo()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero channels")
	}
	bad = smallGeo()
	bad.BlocksPerPlane = 2
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted too few blocks for GC")
	}
}

func TestGeometryCounts(t *testing.T) {
	g := smallGeo()
	if g.Planes() != 4 || g.Dies() != 2 {
		t.Fatalf("planes=%d dies=%d", g.Planes(), g.Dies())
	}
	if g.PagesTotal() != 4*8*32 {
		t.Fatalf("pages = %d", g.PagesTotal())
	}
	if g.Channel(0) != 0 || g.Channel(3) != 1 {
		t.Fatal("plane-to-channel mapping wrong")
	}
	if g.Die(1) != 0 || g.Die(2) != 1 {
		t.Fatal("plane-to-die mapping wrong")
	}
}

func TestWriteAndTranslate(t *testing.T) {
	f, err := New(smallGeo())
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Write(42)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := f.Translate(42)
	if !ok || got != res.Target {
		t.Fatalf("Translate = %+v/%v, want %+v", got, ok, res.Target)
	}
	if _, ok := f.Translate(43); ok {
		t.Fatal("unmapped LPN resolved")
	}
	if _, err := f.Write(-1); err == nil {
		t.Fatal("accepted negative LPN")
	}
}

func TestOverwriteInvalidatesOldCopy(t *testing.T) {
	f, _ := New(smallGeo())
	r1, _ := f.Write(7)
	r2, _ := f.Write(7)
	if r1.Target == r2.Target {
		t.Fatal("overwrite reused the same physical page")
	}
	if got, _ := f.Translate(7); got != r2.Target {
		t.Fatal("translation not updated")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesStripeAcrossPlanes(t *testing.T) {
	f, _ := New(smallGeo())
	planes := map[int]bool{}
	for i := int64(0); i < 8; i++ {
		r, err := f.Write(i)
		if err != nil {
			t.Fatal(err)
		}
		planes[r.Target.Plane] = true
	}
	if len(planes) != 4 {
		t.Fatalf("8 writes hit %d planes, want 4", len(planes))
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	g := smallGeo()
	f, _ := New(g)
	// Working set of half the device, written repeatedly: GC must keep
	// up indefinitely.
	workingSet := int64(g.PagesTotal() / 2)
	r := mathx.NewRand(1)
	for i := 0; i < g.PagesTotal()*4; i++ {
		lpn := int64(r.Intn(int(workingSet)))
		if _, err := f.Write(lpn); err != nil {
			t.Fatalf("write %d failed: %v", i, err)
		}
	}
	if f.GCWrites == 0 || f.Erases == 0 {
		t.Fatalf("GC never ran: gcwrites=%d erases=%d", f.GCWrites, f.Erases)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Write amplification should be sane (< 3 at 50% utilization).
	wa := float64(f.HostWrites+f.GCWrites) / float64(f.HostWrites)
	if wa > 3 {
		t.Fatalf("write amplification %v too high", wa)
	}
}

func TestSequentialOverwriteLowWA(t *testing.T) {
	// Pure sequential overwrite invalidates whole blocks: GC should find
	// empty victims and migrate almost nothing.
	g := smallGeo()
	f, _ := New(g)
	n := int64(g.PagesTotal()) / 2
	for round := 0; round < 6; round++ {
		for i := int64(0); i < n; i++ {
			if _, err := f.Write(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	wa := float64(f.HostWrites+f.GCWrites) / float64(f.HostWrites)
	if wa > 1.2 {
		t.Fatalf("sequential WA %v, want ~1", wa)
	}
}

func TestEraseAccounting(t *testing.T) {
	g := smallGeo()
	f, _ := New(g)
	for i := 0; i < g.PagesTotal()*2; i++ {
		if _, err := f.Write(int64(i % (g.PagesTotal() / 2))); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for p := 0; p < g.Planes(); p++ {
		for b := 0; b < g.BlocksPerPlane; b++ {
			total += f.BlockErases(p, b)
		}
	}
	if int64(total) != f.Erases {
		t.Fatalf("per-block erases %d != total %d", total, f.Erases)
	}
}

func TestInvariantsAfterRandomWorkload(t *testing.T) {
	// Property: after any write sequence, every mapped LPN reads back
	// from a page that holds it.
	g := smallGeo()
	f, _ := New(g)
	r := mathx.NewRand(99)
	ws := int64(g.PagesTotal() * 6 / 10)
	shadow := map[int64]bool{}
	for i := 0; i < 5000; i++ {
		lpn := int64(r.Intn(int(ws)))
		if _, err := f.Write(lpn); err != nil {
			t.Fatal(err)
		}
		shadow[lpn] = true
	}
	for lpn := range shadow {
		if _, ok := f.Translate(lpn); !ok {
			t.Fatalf("LPN %d lost", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationsReported(t *testing.T) {
	g := smallGeo()
	f, _ := New(g)
	// Fill with a working set large enough that victims hold valid data.
	ws := int64(g.PagesTotal() * 7 / 10)
	sawMigration := false
	for i := 0; i < g.PagesTotal()*3; i++ {
		res, err := f.Write(int64(i) % ws)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Migrations) > 0 {
			sawMigration = true
		}
	}
	if !sawMigration {
		t.Fatal("no write ever reported GC migrations")
	}
}
