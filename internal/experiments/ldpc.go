package experiments

import (
	"fmt"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/sentinel"
)

// ---------------------------------------------------------------------------
// Figure 19: LDPC decoding success under hard / 2-bit / 3-bit soft
// sensing, comparing OPT, current-flash and sentinel voltage selection —
// with the sentinel variant paying the worst-case price of carving its
// cells out of the ECC parity budget.

// Fig19Method indexes the three compared configurations.
type Fig19Method int

// The three Figure 19 configurations.
const (
	Fig19OPT Fig19Method = iota
	Fig19CurrentFlash
	Fig19Sentinel
)

// Fig19MethodNames for rendering.
var Fig19MethodNames = [3]string{"OPT", "current-flash", "sentinel"}

// Fig19Point is a decoding success rate for one configuration.
type Fig19Point struct {
	PE          int
	SensingBits int
	Method      Fig19Method
	SuccessRate float64
}

// Fig19Result holds the sweep.
type Fig19Result struct {
	Points []Fig19Point
	// Rates of the full and sentinel-reduced codes.
	FullRate, ReducedRate float64
}

// fig19Frame carries one programmed LDPC frame on a wordline's LSB page.
type fig19Frame struct {
	wl   int
	data []bool // information bits
	cw   []bool // full codeword (data + parity), bit=1 -> below boundary
}

// Fig19LDPC runs real LDPC decoding over frames stored on QLC LSB pages
// across P/E counts (one-year retention each), with three sensing
// precisions. The sentinel configuration uses a code whose parity budget
// is reduced by the sentinel cells (the paper's worst case), while OPT
// and current flash keep the full parity.
func Fig19LDPC(s Scale) (*Fig19Result, error) {
	const wordlines = 12
	model, err := s.TrainModel(flash.QLC, 119)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(flash.QLC, 219)
	layout := s.Layout()
	sentinels := layout.Count(cfg)
	sv := 8

	// Code dimensioning: per 8192 data bits the OOB parity share is
	// 8192 * 0.109/0.881 ~ 1014 bits; the sentinel variant loses its
	// per-frame share of the sentinel cells.
	const k = 8192
	kf := float64(k)
	parity := int(kf*0.109/0.881 + 0.5)
	user := cfg.UserCells()
	framesPerWL := user / (k + parity)
	if framesPerWL < 1 {
		return nil, fmt.Errorf("experiments: wordline too small for an LDPC frame")
	}
	sentShare := sentinels * k / user
	fullCode, err := ecc.NewLDPC(k, parity, 0x19a)
	if err != nil {
		return nil, err
	}
	redParity := parity - sentShare
	if redParity < 8 {
		redParity = 8
	}
	reducedCode, err := ecc.NewLDPC(k, redParity, 0x19b)
	if err != nil {
		return nil, err
	}

	res := &Fig19Result{
		FullRate:    fullCode.Rate(),
		ReducedRate: reducedCode.Rate(),
	}

	sensings := []ecc.Sensing{
		ecc.HardSensing(),
		ecc.SoftSensing(2, 12),
		ecc.SoftSensing(3, 8),
	}
	// LLR tables from the nominal boundary geometry (state width 128,
	// aged sigma ~26): what a controller would precompute per bin.
	llrTabs := make([][]float64, len(sensings))
	for i, sn := range sensings {
		llrTabs[i] = sn.LLRTable(128, 26) // QLC state width, aged sigma
	}

	indices := layout.Indices(cfg)
	rng := mathx.NewRand(0x19c)
	for _, pe := range []int{0, 1000, 2000, 3000, 4000, 5000} {
		chip, err := flash.New(cfg)
		if err != nil {
			return nil, err
		}
		// Program frames: only the first frame of each wordline is used
		// (framesPerWL >= 1), data random per wordline.
		frames := make([]fig19Frame, 0, wordlines)
		states := make([]uint8, cfg.CellsPerWordline)
		for fwl := 0; fwl < wordlines; fwl++ {
			wl := fwl * cfg.WordlinesPerBlock() / wordlines
			data := make([]bool, k)
			for i := range data {
				data[i] = rng.Float64() < 0.5
			}
			cw := fullCode.Encode(data)
			// Also encode under the reduced code for the sentinel method.
			// The frame stores the full-parity codeword in the first
			// k+parity cells and the reduced parity in the following
			// cells, so both methods read their own bits.
			cwRed := reducedCode.Encode(data)
			for i := range states {
				states[i] = uint8(rng.Intn(16))
			}
			writeBits := func(bits []bool, start int) {
				for i, b := range bits {
					cell := start + i
					if b {
						states[cell] = uint8(rng.Intn(sv)) // below boundary
					} else {
						states[cell] = uint8(sv + rng.Intn(16-sv)) // at/above
					}
				}
			}
			writeBits(cw, 0)
			writeBits(cwRed[k:], k+parity) // reduced parity after the full frame
			layout.ApplyPattern(states, indices, sv)
			if err := chip.ProgramStates(0, wl, states); err != nil {
				return nil, err
			}
			frames = append(frames, fig19Frame{wl: wl, data: data, cw: cw})
		}
		chip.Cycle(0, pe)
		chip.Age(0, physics.YearHours, physics.RoomTempC)

		for si, sn := range sensings {
			for m := Fig19OPT; m <= Fig19Sentinel; m++ {
				si, sn, m := si, sn, m
				goods, err := parallel.MapErr(len(frames), func(fi int) (bool, error) {
					return decodeFrame(chip, model, layout, &frames[fi],
						fullCode, reducedCode, parity, sn, llrTabs[si], m,
						mathx.Mix4(0x19d, uint64(pe), uint64(si), uint64(fi)))
				})
				if err != nil {
					return nil, err
				}
				ok := 0
				for _, good := range goods {
					if good {
						ok++
					}
				}
				res.Points = append(res.Points, Fig19Point{
					PE: pe, SensingBits: sn.Bits, Method: m,
					SuccessRate: float64(ok) / float64(len(frames)),
				})
			}
		}
	}
	return res, nil
}

// decodeFrame reads and decodes one frame under the given method.
func decodeFrame(chip *flash.Chip, model *sentinel.Model, layout sentinel.Layout,
	fr *fig19Frame, fullCode, reducedCode *ecc.LDPC, parity int,
	sn ecc.Sensing, llrTab []float64, m Fig19Method, seed uint64) (bool, error) {

	sv := model.SentinelVoltage
	cfg := chip.Config()
	indices := layout.Indices(cfg)
	k := fullCode.K

	attempt := func(offset float64, code *ecc.LDPC, parityStart, parityLen int, try uint64) bool {
		llr := senseLLR(chip, fr.wl, sv, offset, sn, llrTab, seed^try, k, parityStart, parityLen)
		got, ok := code.DecodeData(llr, 40)
		if !ok {
			return false
		}
		for i := range fr.data {
			if got[i] != fr.data[i] {
				return false
			}
		}
		return true
	}

	switch m {
	case Fig19OPT:
		// Ground-truth optimal offset for the boundary, via a sweep.
		opt := sweepBoundary(chip, fr.wl, sv, seed)
		return attempt(opt, fullCode, k, parity, 1), nil
	case Fig19CurrentFlash:
		// Walk the static table on the sentinel boundary.
		for step := 0; step <= 10; step++ {
			if attempt(-2*float64(step), fullCode, k, parity, uint64(step+2)) {
				return true, nil
			}
		}
		return false, nil
	default: // Fig19Sentinel — reduced-parity code, inferred voltage.
		sense := chip.Sense(0, fr.wl, sv, 0, seed^0xdef)
		d := sentinel.ErrorDiffRate(sense, indices)
		ofs := model.InferSentinelOffset(d)
		if attempt(ofs, reducedCode, k+parity, reducedCode.M, 20) {
			return true, nil
		}
		// One calibration-style nudge each way.
		if attempt(ofs-4, reducedCode, k+parity, reducedCode.M, 21) {
			return true, nil
		}
		return attempt(ofs+4, reducedCode, k+parity, reducedCode.M, 22), nil
	}
}

// senseLLR builds channel LLRs for the k data cells plus the parity cells
// at parityStart, using 2^bits-1 senses around the read voltage.
func senseLLR(chip *flash.Chip, wl, v int, offset float64, sn ecc.Sensing,
	llrTab []float64, seed uint64, k, parityStart, parityLen int) []float64 {

	levels := sn.Levels()
	senses := make([]flash.Bitmap, len(levels))
	for i, lv := range levels {
		senses[i] = chip.Sense(0, wl, v, offset+lv, mathx.Mix(seed, uint64(i)))
	}
	n := k + parityLen
	out := make([]float64, n)
	fill := func(dst int, cell int) {
		region := 0
		for _, s := range senses {
			if s.Get(cell) {
				region++
			}
		}
		// llrTab[region] is positive for regions favouring "below the
		// boundary" (region = number of sensing levels below Vth, so low
		// regions are below). Bit 1 is stored below the boundary, and the
		// decoder convention is llr = log P(bit 0)/P(bit 1): flip the
		// sign.
		out[dst] = -llrTab[region]
	}
	for i := 0; i < k; i++ {
		fill(i, i)
	}
	for i := 0; i < parityLen; i++ {
		fill(k+i, parityStart+i)
	}
	return out
}

// sweepBoundary locates the boundary's optimal offset by error sweep
// against the programmed states.
func sweepBoundary(chip *flash.Chip, wl, v int, seed uint64) float64 {
	var offs []float64
	for o := -50.0; o <= 20; o += 2 {
		offs = append(offs, o)
	}
	ups, downs := chip.SweepVoltageErrors(0, wl, v, offs, seed^0x0b7)
	best := 0
	for i := range offs {
		if ups[i]+downs[i] < ups[best]+downs[best] {
			best = i
		}
	}
	return offs[best]
}

// SuccessRate returns the rate for a specific configuration.
func (r *Fig19Result) SuccessRate(pe, sensingBits int, m Fig19Method) (float64, bool) {
	for _, p := range r.Points {
		if p.PE == pe && p.SensingBits == sensingBits && p.Method == m {
			return p.SuccessRate, true
		}
	}
	return 0, false
}

// Render prints the success-rate grid.
func (r *Fig19Result) Render() string {
	out := fmt.Sprintf("Fig 19 (QLC): LDPC decoding success (full rate %.3f, "+
		"sentinel-reduced rate %.3f)\n", r.FullRate, r.ReducedRate)
	header := []string{"sensing", "P/E", "OPT", "current-flash", "sentinel"}
	var rows [][]string
	for _, bits := range []int{1, 2, 3} {
		for _, pe := range []int{0, 1000, 2000, 3000, 4000, 5000} {
			row := []string{fmt.Sprintf("%d-bit", bits), fmt.Sprint(pe)}
			for m := Fig19OPT; m <= Fig19Sentinel; m++ {
				rate, ok := r.SuccessRate(pe, bits, m)
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, Pct(rate))
			}
			rows = append(rows, row)
		}
	}
	return out + Table(header, rows)
}
