package experiments

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// Golden regression digests for the fused read kernel. The read stack
// promises *byte-identical* results across refactors and worker counts:
// the same hash draws in the same order, the same floating-point
// grouping, the same formatting. These digests were captured on the
// pre-kernel scalar read path; any divergence — a reordered reduction, a
// changed hash stream, an FP regrouping — is a bug, not an update to be
// re-recorded casually.
const (
	goldenFig2Quick  = "ef6135903f7b556c"
	goldenFig13Quick = "30d208461a899976"
)

func digest(v any) string {
	d := sha256.Sum256([]byte(fmt.Sprintf("%v", v)))
	return fmt.Sprintf("%x", d[:8])
}

func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiments are slow; skipped in -short")
	}
	s := Quick()
	for _, w := range []int{1, 8} {
		withWorkers(w, func() {
			r2, err := Fig2ErrorVsOffset(s)
			if err != nil {
				t.Fatal(err)
			}
			if got := digest(r2); got != goldenFig2Quick {
				t.Errorf("workers=%d: Fig2ErrorVsOffset digest %s, want %s",
					w, got, goldenFig2Quick)
			}
			r13, err := Fig13RetryCount(s)
			if err != nil {
				t.Fatal(err)
			}
			if got := digest(r13); got != goldenFig13Quick {
				t.Errorf("workers=%d: Fig13RetryCount digest %s, want %s",
					w, got, goldenFig13Quick)
			}
		})
	}
}
