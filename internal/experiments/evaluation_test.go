package experiments

import (
	"strings"
	"testing"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
)

func TestFig10InferenceQuality(t *testing.T) {
	for _, kind := range []flash.Kind{flash.TLC, flash.QLC} {
		r, err := Fig10InferenceFit(Quick(), kind)
		if err != nil {
			t.Fatal(err)
		}
		// The d measurement is only informative once distributions shift
		// appreciably; low-stress grid points cluster at d~0, which drags
		// the whole-grid Pearson down for TLC (wider state spacing). The
		// held-out inference quality below is the real gate.
		minTrainR := 0.7
		if kind == flash.TLC {
			minTrainR = 0.35
		}
		if rr := mathx.Pearson(r.DS, r.Opts); rr < minTrainR {
			t.Fatalf("%v: training d-vs-opt correlation %v", kind, rr)
		}
		minEvalR := 0.5
		if kind == flash.TLC {
			// TLC's wider state spacing makes d less sensitive, so
			// per-wordline ranking is noisier (see EXPERIMENTS.md); across
			// data-pattern instances the quick-scale statistic (32
			// wordlines) swings by ~0.1, so the gate carries slack. The
			// absolute error and the Fig 13 retry reduction still hold.
			minEvalR = 0.25
		}
		if rr := mathx.Pearson(r.Inferred, r.Truth); rr < minEvalR {
			t.Fatalf("%v: inferred-vs-truth correlation %v", kind, rr)
		}
		// Bounds relative to the state width (TLC 256, QLC 128): both
		// correspond to landing within ~5% of a state width of the true
		// optimum.
		maxErr := 8.0
		if kind == flash.TLC {
			maxErr = 12
		}
		if e := r.MeanAbsError(); e > maxErr {
			t.Fatalf("%v: mean inference error %v", kind, e)
		}
		if !strings.Contains(r.Render(), "Fig 10") {
			t.Fatal("render missing title")
		}
	}
}

func TestTable1ErrorShrinksWithRatio(t *testing.T) {
	r, err := Table1SentinelRatio(Quick(), flash.QLC)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// The paper's trend: more sentinels, smaller error. Compare the
	// extremes (middle rows can wiggle within noise).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Mean >= first.Mean {
		t.Fatalf("error did not shrink: %.2f @%d sentinels vs %.2f @%d",
			first.Mean, first.Count, last.Mean, last.Count)
	}
	// At the paper's 0.2% equivalent the error should be small relative
	// to the state width (paper: 1.79 for QLC, width 128).
	for _, row := range r.Rows {
		if row.Ratio == 0.002 && row.Mean > 8 {
			t.Fatalf("0.2%% mean error %v too large", row.Mean)
		}
	}
	_ = r.Render()
}

func TestFig12CalibrationOrdering(t *testing.T) {
	r, err := Fig12StateChange(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// NC decreases monotonically as the probe moves toward the default
	// (positive offsets shrink the window): Case 2 > 1 > Case 1.
	for i := 1; i < len(r.PosOffsets); i++ {
		if r.Normalized[i] >= r.Normalized[i-1] {
			t.Fatalf("NC not decreasing at offset %v: %v -> %v",
				r.PosOffsets[i], r.Normalized[i-1], r.Normalized[i])
		}
	}
	// Normalization anchor.
	for i, p := range r.PosOffsets {
		if p == 0 && (r.Normalized[i] < 0.999 || r.Normalized[i] > 1.001) {
			t.Fatalf("NC(0) = %v, want 1", r.Normalized[i])
		}
	}
	_ = r.Render()
}

func TestFig13RetryReduction(t *testing.T) {
	r, err := Fig13RetryCount(Quick())
	if err != nil {
		t.Fatal(err)
	}
	table, sent, red := r.Averages()
	if table < 3 {
		t.Fatalf("current flash avg %v suspiciously low", table)
	}
	if sent > 3 {
		t.Fatalf("sentinel avg %v too high", sent)
	}
	if red < 0.5 {
		t.Fatalf("retry reduction %v, paper reports 0.82", red)
	}
	if r.SentLatencyUS >= r.TableLatencyUS {
		t.Fatal("sentinel latency not lower")
	}
	if !strings.Contains(r.Render(), "Fig 13") {
		t.Fatal("render missing title")
	}
}

func TestErrorComparisonQLC(t *testing.T) {
	r, err := ErrorComparison(Quick(), flash.QLC)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 15: calibration never hurts the success rate, and both are
	// reasonably high overall.
	inf := r.OverallSuccess(MethodInferred)
	cal := r.OverallSuccess(MethodCalibrated)
	if inf < 0.5 {
		t.Fatalf("inference success %v too low", inf)
	}
	if cal < inf-0.05 {
		t.Fatalf("calibration (%v) clearly worse than inference (%v)", cal, inf)
	}
	// Fig 17: inferred errors well below default for the heavily-shifted
	// low voltages; optimal is the floor.
	meanD := r.MeanErrors(MethodDefault)
	meanI := r.MeanErrors(MethodInferred)
	meanO := r.MeanErrors(MethodOptimal)
	for _, v := range []int{2, 3, 4, 5, 6, 7, 8} {
		if meanI[v-1] >= meanD[v-1] {
			t.Errorf("V%d: inferred %v >= default %v", v, meanI[v-1], meanD[v-1])
		}
		if meanO[v-1] > meanI[v-1]*1.2+5 {
			t.Errorf("V%d: optimal %v above inferred %v", v, meanO[v-1], meanI[v-1])
		}
	}
	// Fig 18: tracking hurts a nontrivial fraction of wordlines on at
	// least one voltage while sentinel stays consistent. Which voltage
	// shows the strongest contrast depends on the data-pattern instance,
	// so scan them all rather than pinning a few.
	hurtSomewhere := false
	for v := 2; v <= len(r.Errors[MethodOptimal]); v++ {
		if r.TrackingHurtFraction(v) > 0.15 {
			hurtSomewhere = true
		}
	}
	if !hurtSomewhere {
		t.Error("tracking never hurt any wordline; Fig 18 contrast missing")
	}
	_ = r.Render()
}

func TestFig14LatencyReduction(t *testing.T) {
	r, err := Fig14TraceLatency(Quick(), 2500)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("%d workloads", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Reduction <= 0 {
			t.Errorf("%s: no read-latency reduction (%v)", row.Workload, row.Reduction)
		}
	}
	if m := r.MeanReduction(); m < 0.2 {
		t.Fatalf("mean reduction %v too small", m)
	}
	if r.SentMSBRetries >= r.TableMSBRetries {
		t.Fatal("sentinel chip-level retries not lower")
	}
	_ = r.Render()
}

func TestFig19LDPC(t *testing.T) {
	if testing.Short() {
		t.Skip("LDPC sweep is slow")
	}
	r, err := Fig19LDPC(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.ReducedRate <= r.FullRate {
		t.Fatal("sentinel-reduced code should have a higher rate (less parity)")
	}
	// Fresh chips decode everywhere.
	for _, bits := range []int{1, 2, 3} {
		for m := Fig19OPT; m <= Fig19Sentinel; m++ {
			rate, ok := r.SuccessRate(0, bits, m)
			if !ok || rate < 0.99 {
				t.Fatalf("PE 0, %d-bit, %s: success %v",
					bits, Fig19MethodNames[m], rate)
			}
		}
	}
	// Soft sensing should never do worse than hard sensing for OPT, and
	// help at high P/E.
	for _, pe := range []int{4000, 5000} {
		hard, _ := r.SuccessRate(pe, 1, Fig19OPT)
		soft, _ := r.SuccessRate(pe, 3, Fig19OPT)
		if soft < hard {
			t.Fatalf("PE %d: 3-bit soft (%v) worse than hard (%v)", pe, soft, hard)
		}
	}
	// OPT should dominate current flash at high stress under hard
	// decoding... at minimum, never be dramatically worse anywhere.
	for _, p := range r.Points {
		opt, _ := r.SuccessRate(p.PE, p.SensingBits, Fig19OPT)
		if p.Method == Fig19CurrentFlash && p.SuccessRate > opt+0.34 {
			t.Fatalf("current flash beat OPT by a wide margin at PE %d", p.PE)
		}
	}
	_ = r.Render()
}
