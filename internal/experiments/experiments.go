// Package experiments reproduces every table and figure of the paper's
// characterization and evaluation sections on the simulated chips. Each
// experiment is a function taking a Scale (Quick for tests, Full for the
// benchmark harness) and returning a typed result with a text rendering.
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"sentinel3d/internal/ecc"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/obs"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/sentinel"
)

// Scale selects the fidelity/runtime trade-off of an experiment.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// Cells is the wordline width in cells. Full scale uses the physical
	// 147456 (18592-byte pages, paper Section III-D); Quick shrinks it.
	Cells int
	// Layers and WLsPerLayer set the block geometry.
	Layers      int
	WLsPerLayer int
	// SentinelRatio keeps the *absolute* sentinel count near the paper's
	// ~295 per wordline: 0.2% at full width, proportionally more at
	// reduced widths.
	SentinelRatio float64
	// TrainWLs and TrainPoints bound the trainer's work.
	TrainWLs    int
	TrainPoints int
	// CacheZ trades memory for read speed in the chip simulator.
	CacheZ bool
	// TLCCapT / QLCCapT are the ECC capability thresholds (bit errors per
	// 8192-bit frame) used by the retry experiments.
	TLCCapT int
	QLCCapT int
	// TableStep is the per-entry step of the vendor retry table baseline.
	TableStep float64
	// MaxRetries is the controller's retry budget (vendor tables hold
	// 15-50 entries).
	MaxRetries int
	// Obs, when non-nil, instruments every controller, sentinel engine
	// and trace replay the experiments build. Experiments fan out across
	// workers, so several instances may share the registry's cells; the
	// cells are atomic and commutative, keeping the totals exact (and
	// deterministic) even then.
	Obs *obs.Registry
}

// Quick returns the reduced scale used by unit tests: 16k-cell wordlines
// with a sentinel count matching the paper's (~330).
func Quick() Scale {
	return Scale{
		Name:          "quick",
		Cells:         16384,
		Layers:        16,
		WLsPerLayer:   2,
		SentinelRatio: 0.02,
		TrainWLs:      12,
		TrainPoints:   12,
		CacheZ:        true,
		TLCCapT:       26,
		QLCCapT:       60,
		TableStep:     1.2,
		MaxRetries:    15,
	}
}

// Full returns the paper-fidelity scale: physical wordline width and the
// 0.2% sentinel ratio.
func Full() Scale {
	return Scale{
		Name:          "full",
		Cells:         147456,
		Layers:        64,
		WLsPerLayer:   4,
		SentinelRatio: 0.002,
		TrainWLs:      24,
		TrainPoints:   24,
		CacheZ:        false,
		// Full pages hold ~18 ECC frames and a page decodes only when
		// every frame does, so the per-frame capability is sized a little
		// above the quick scale's 2-frame pages.
		TLCCapT:   32,
		QLCCapT:   70,
		TableStep: 1.2,
	}
}

// ChipConfig builds the flash configuration for a kind under this scale.
func (s Scale) ChipConfig(kind flash.Kind, seed uint64) flash.Config {
	return flash.Config{
		Kind:              kind,
		Blocks:            1,
		Layers:            s.Layers,
		WordlinesPerLayer: s.WLsPerLayer,
		CellsPerWordline:  s.Cells,
		OOBFraction:       0.119,
		Seed:              seed,
		CacheZ:            s.CacheZ,
	}
}

// Layout returns the sentinel layout for this scale.
func (s Scale) Layout() sentinel.Layout {
	return sentinel.Layout{Ratio: s.SentinelRatio, Placement: sentinel.TailOOB}
}

// CapModel returns the ECC capability model for a kind at this scale.
func (s Scale) CapModel(kind flash.Kind) ecc.CapabilityModel {
	t := s.TLCCapT
	if kind == flash.QLC {
		t = s.QLCCapT
	}
	return ecc.CapabilityModel{FrameBits: 8192, T: t}
}

// trainPoints builds the trainer stress grid for the scale.
func (s Scale) trainPoints() []sentinel.StressPoint {
	all := []sentinel.StressPoint{
		{PECycles: 0, Hours: 24, TempC: physics.RoomTempC},
		{PECycles: 0, Hours: 720, TempC: physics.RoomTempC},
		{PECycles: 1000, Hours: 168, TempC: physics.RoomTempC},
		{PECycles: 1000, Hours: 2000, TempC: physics.RoomTempC},
		{PECycles: 1000, Hours: physics.YearHours, TempC: physics.RoomTempC},
		{PECycles: 2000, Hours: 720, TempC: physics.RoomTempC},
		{PECycles: 3000, Hours: 2880, TempC: physics.RoomTempC},
		{PECycles: 3000, Hours: physics.YearHours, TempC: physics.RoomTempC},
		{PECycles: 4000, Hours: 4380, TempC: physics.RoomTempC},
		{PECycles: 5000, Hours: 720, TempC: physics.RoomTempC},
		{PECycles: 5000, Hours: 4380, TempC: physics.RoomTempC},
		{PECycles: 5000, Hours: physics.YearHours, TempC: physics.RoomTempC},
	}
	if s.TrainPoints >= len(all) {
		return all
	}
	out := make([]sentinel.StressPoint, 0, s.TrainPoints)
	for i := 0; i < s.TrainPoints; i++ {
		out = append(out, all[i*len(all)/s.TrainPoints])
	}
	return out
}

// modelCache memoizes trained models: training is deterministic in
// (scale, kind, seed) and by far the most expensive setup step shared by
// the experiments.
var modelCache sync.Map // string -> *sentinel.Model

// TrainModel characterizes a training chip of the given kind (a separate
// chip instance "of the same batch", seed trainSeed) and fits the
// inference model — the paper's manufacturing-time step. Results are
// memoized per (scale, kind, seed).
func (s Scale) TrainModel(kind flash.Kind, trainSeed uint64) (*sentinel.Model, error) {
	key := fmt.Sprintf("%s/%v/%d/%d/%d/%v", s.Name, kind, trainSeed,
		s.Cells, s.TrainWLs, s.SentinelRatio)
	if m, ok := modelCache.Load(key); ok {
		return m.(*sentinel.Model), nil
	}
	chip, err := flash.New(s.ChipConfig(kind, trainSeed))
	if err != nil {
		return nil, err
	}
	tc := sentinel.TrainConfig{
		Points:            s.trainPoints(),
		WordlinesPerPoint: s.TrainWLs,
		Layout:            s.Layout(),
		PolyDegree:        5,
		MeasureReads:      2,
		Seed:              mathx.Mix(trainSeed, 0x7ea1),
	}
	m, err := sentinel.Train(chip, tc)
	if err != nil {
		return nil, err
	}
	modelCache.Store(key, m)
	return m, nil
}

// BuildEvalChip creates an evaluation chip with every wordline programmed
// (random data plus the sentinel pattern) and aged to (pe, hours at room
// temperature). Wordlines are programmed concurrently, each from its own
// RNG stream split from the chip seed and keyed by wordline index, so the
// programmed data is identical at any worker count.
func (s Scale) BuildEvalChip(kind flash.Kind, seed uint64, eng *sentinel.Engine, pe int, hours float64) (*flash.Chip, error) {
	cfg := s.ChipConfig(kind, seed)
	chip, err := flash.New(cfg)
	if err != nil {
		return nil, err
	}
	nStates := chip.Coding().States()
	err = parallel.ForEachErr(cfg.WordlinesPerBlock(), func(wl int) error {
		rng := mathx.NewRand(mathx.Mix3(seed, 0xda7c, uint64(wl)))
		states := make([]uint8, cfg.CellsPerWordline)
		for i := range states {
			states[i] = uint8(rng.Intn(nStates))
		}
		if eng != nil {
			eng.Prepare(states)
		}
		return chip.ProgramStates(0, wl, states)
	})
	if err != nil {
		return nil, err
	}
	chip.Cycle(0, pe)
	chip.Age(0, hours, physics.RoomTempC)
	return chip, nil
}

// Engine builds a sentinel engine for the scale's layout against cfg,
// instrumented when the scale carries a registry.
func (s Scale) Engine(model *sentinel.Model, cfg flash.Config) (*sentinel.Engine, error) {
	eng, err := sentinel.NewEngine(model, s.Layout(), sentinel.DefaultCalibrator(), cfg)
	if err != nil {
		return nil, err
	}
	eng.Obs = sentinel.NewMetrics(s.obsSet())
	return eng, nil
}

// Controller builds a retry controller with the scale's ECC and default
// latencies, instrumented when the scale carries a registry.
func (s Scale) Controller(chip *flash.Chip, maxRetries int) (*retry.Controller, error) {
	ctl, err := retry.NewController(chip, s.CapModel(chip.Config().Kind),
		retry.DefaultLatency(), maxRetries)
	if err != nil {
		return nil, err
	}
	ctl.Obs = retry.NewMetrics(s.obsSet(), s.TableStep)
	return ctl, nil
}

// obsSet returns shard 0 of the scale's registry (nil when
// uninstrumented). The chip-level experiments are not sharded the way
// the replay engine is, so they share the first shard's cells.
func (s Scale) obsSet() *obs.Set {
	return s.Obs.Set(0)
}

// ---------------------------------------------------------------------------
// Rendering helpers shared by the CLI tools.

// Table renders rows as an aligned text table.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float for tables.
func F(v float64) string { return fmt.Sprintf("%.4g", v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
