package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"sentinel3d/internal/ftl"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

// replayDevice is the 8-channel device the throughput measurement
// shards (up to 8 ways); it matches the ssdsim replay benchmarks.
func replayDevice() ssdsim.Config {
	cfg := ssdsim.DefaultConfig()
	cfg.Geo = ftl.Geometry{
		Channels: 8, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
	return cfg
}

// SyntheticSampler is a synthetic TLC retry-outcome distribution that
// exercises the sampler RNG path without building a chip. The replay
// throughput measurement uses it, and so do the scenario registry's
// "synthetic"-policy replay cells (fast enough for CI smoke tiers).
func SyntheticSampler() *ssdsim.EmpiricalSampler {
	return &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
		{{Retries: 0}, {Retries: 0}, {Retries: 1}},
		{{Retries: 0}, {Retries: 1}, {Retries: 2}},
		{{Retries: 1}, {Retries: 2}, {Retries: 4, AuxSenses: 1}},
	}}
}

// ReplayThroughputRow is one engine configuration's measurement.
type ReplayThroughputRow struct {
	Shards  int
	Workers int
	// Collect marks the exact-percentile mode (every read latency is
	// retained); the default histogram mode holds O(shards) state.
	Collect   bool
	Seconds   float64
	ReqPerSec float64
	// AllocMB is the total heap allocated during the replay (alloc
	// volume, not footprint).
	AllocMB float64
	// LiveHeapMB is the heap retained by the run's report after a GC:
	// in collect mode this includes the full latency vector, in
	// histogram mode only the fixed-size buckets.
	LiveHeapMB float64
}

// ReplayThroughputResult holds the replay-engine scaling measurement.
type ReplayThroughputResult struct {
	Requests int
	Rows     []ReplayThroughputRow
}

// ReplayThroughput measures the sharded streaming replay engine on a
// synthetic hm_0-shaped trace of the given length: single-shard
// baseline, sharded at one worker, sharded at GOMAXPROCS workers, and
// the exact-percentile (CollectLatencies) mode. All histogram-mode rows
// replay the same sharded device, and the function fails if their
// reports differ — the worker count must never change the output.
func ReplayThroughput(requests int) (*ReplayThroughputResult, error) {
	cfg := replayDevice()
	spec, err := trace.WorkloadByName("hm_0")
	if err != nil {
		return nil, err
	}
	spec.WorkingSetPages = int64(cfg.Geo.PagesTotal()) * 6 / 10
	open := trace.GeneratorOpener(spec, requests, 7)

	maxW := runtime.GOMAXPROCS(0)
	matrix := []struct {
		shards, workers int
		collect         bool
	}{
		{1, 1, false},
		{8, 1, false},
		{8, maxW, false},
		{8, maxW, true},
	}
	res := &ReplayThroughputResult{Requests: requests}
	var histRep *ssdsim.Report
	for _, m := range matrix {
		eng, err := ssdsim.NewEngine(ssdsim.ReplayConfig{
			Sim: cfg, Shards: m.shards, CollectLatencies: m.collect, Precondition: true,
		}, SyntheticSampler())
		if err != nil {
			return nil, err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		prev := parallel.SetWorkers(m.workers)
		start := time.Now()
		rep, err := eng.Replay(open)
		dur := time.Since(start)
		parallel.SetWorkers(prev)
		if err != nil {
			return nil, err
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		res.Rows = append(res.Rows, ReplayThroughputRow{
			Shards: m.shards, Workers: m.workers, Collect: m.collect,
			Seconds:    dur.Seconds(),
			ReqPerSec:  float64(rep.Requests) / dur.Seconds(),
			AllocMB:    float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			LiveHeapMB: float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / (1 << 20),
		})
		runtime.KeepAlive(rep)
		if !m.collect && m.shards == 8 {
			if histRep == nil {
				histRep = rep
			} else if !reflect.DeepEqual(rep, histRep) {
				return nil, fmt.Errorf("experiments: replay report diverged at %d workers", m.workers)
			}
		}
	}
	return res, nil
}

// Render prints the scaling table.
func (r *ReplayThroughputResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		mode := "histogram"
		if row.Collect {
			mode = "collect"
		}
		rows = append(rows, []string{
			fmt.Sprint(row.Shards), fmt.Sprint(row.Workers), mode,
			fmt.Sprintf("%.2f", row.Seconds),
			fmt.Sprintf("%.0f", row.ReqPerSec),
			fmt.Sprintf("%.1f", row.AllocMB),
			fmt.Sprintf("%.2f", row.LiveHeapMB),
		})
	}
	return fmt.Sprintf("replay of %d hm_0-shaped requests (8-channel device)\n%s",
		r.Requests, Table([]string{"shards", "workers", "mode", "sec", "req/s", "alloc MB", "live MB"}, rows))
}
