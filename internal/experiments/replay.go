package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"sentinel3d/internal/ftl"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

// replayDevice is the 8-channel device the throughput measurement
// shards (up to 8 ways); it matches the ssdsim replay benchmarks.
func replayDevice() ssdsim.Config {
	cfg := ssdsim.DefaultConfig()
	cfg.Geo = ftl.Geometry{
		Channels: 8, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
	return cfg
}

// SyntheticSampler is a synthetic TLC retry-outcome distribution that
// exercises the sampler RNG path without building a chip. The replay
// throughput measurement uses it, and so do the scenario registry's
// "synthetic"-policy replay cells (fast enough for CI smoke tiers).
func SyntheticSampler() *ssdsim.EmpiricalSampler {
	return &ssdsim.EmpiricalSampler{PerPage: [][]ssdsim.RetryOutcome{
		{{Retries: 0}, {Retries: 0}, {Retries: 1}},
		{{Retries: 0}, {Retries: 1}, {Retries: 2}},
		{{Retries: 1}, {Retries: 2}, {Retries: 4, AuxSenses: 1}},
	}}
}

// ReplayThroughputRow is one engine configuration's measurement.
type ReplayThroughputRow struct {
	Devices int
	Shards  int
	Workers int
	// Source is the trace decode path: "generator" regenerates the
	// synthetic stream each pass, "binary" decodes the pre-encoded
	// zero-copy format.
	Source string
	// Collect marks the exact-percentile mode (every read latency is
	// retained); the default histogram mode holds O(shards) state.
	Collect   bool
	Seconds   float64
	ReqPerSec float64
	// AllocMB is the total heap allocated during the replay (alloc
	// volume, not footprint).
	AllocMB float64
	// LiveHeapMB is the heap retained by the run's report after a GC:
	// in collect mode this includes the full latency vector, in
	// histogram mode only the fixed-size buckets.
	LiveHeapMB float64
}

// ReplayThroughputResult holds the replay-engine scaling measurement.
type ReplayThroughputResult struct {
	Requests int
	Rows     []ReplayThroughputRow
}

// ReplayThroughput measures the streaming replay engine on a synthetic
// hm_0-shaped trace of the given length: single-shard baseline, sharded
// at one worker, sharded at GOMAXPROCS workers, the exact-percentile
// (CollectLatencies) mode, and a 4-device fleet decoding the zero-copy
// binary encoding of the same trace. Rows replaying the same
// configuration at different worker counts must produce identical
// reports — the worker count must never change the output.
func ReplayThroughput(requests int) (*ReplayThroughputResult, error) {
	cfg := replayDevice()
	spec, err := trace.WorkloadByName("hm_0")
	if err != nil {
		return nil, err
	}
	spec.WorkingSetPages = int64(cfg.Geo.PagesTotal()) * 6 / 10
	open := trace.GeneratorOpener(spec, requests, 7)

	gen, err := trace.NewGenerator(spec, requests, 7)
	if err != nil {
		return nil, err
	}
	data, err := trace.EncodeBinarySource(gen)
	if err != nil {
		return nil, err
	}
	binOpen, err := trace.BinaryOpener(data)
	if err != nil {
		return nil, err
	}

	maxW := runtime.GOMAXPROCS(0)
	matrix := []struct {
		devices, shards, workers int
		collect, binary          bool
	}{
		{1, 1, 1, false, false},
		{1, 8, 1, false, false},
		{1, 8, maxW, false, false},
		{1, 8, maxW, true, false},
		{4, 8, 1, false, true},
		{4, 8, maxW, false, true},
	}
	res := &ReplayThroughputResult{Requests: requests}
	var histRep, fleetRep *ssdsim.Report
	for _, m := range matrix {
		eng, err := ssdsim.NewEngine(ssdsim.ReplayConfig{
			Sim: cfg, Shards: m.shards, Devices: m.devices,
			CollectLatencies: m.collect, Precondition: true,
		}, SyntheticSampler())
		if err != nil {
			return nil, err
		}
		src, source := open, "generator"
		if m.binary {
			src, source = binOpen, "binary"
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		prev := parallel.SetWorkers(m.workers)
		start := time.Now()
		rep, err := eng.Replay(src)
		dur := time.Since(start)
		parallel.SetWorkers(prev)
		if err != nil {
			return nil, err
		}
		runtime.GC()
		runtime.ReadMemStats(&after)
		res.Rows = append(res.Rows, ReplayThroughputRow{
			Devices: m.devices, Shards: m.shards, Workers: m.workers,
			Source: source, Collect: m.collect,
			Seconds:    dur.Seconds(),
			ReqPerSec:  float64(rep.Requests) / dur.Seconds(),
			AllocMB:    float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			LiveHeapMB: float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)) / (1 << 20),
		})
		runtime.KeepAlive(rep)
		switch {
		case !m.collect && m.devices == 1 && m.shards == 8:
			if histRep == nil {
				histRep = rep
			} else if !reflect.DeepEqual(rep, histRep) {
				return nil, fmt.Errorf("experiments: replay report diverged at %d workers", m.workers)
			}
		case m.devices == 4:
			if fleetRep == nil {
				fleetRep = rep
			} else if !reflect.DeepEqual(rep, fleetRep) {
				return nil, fmt.Errorf("experiments: fleet replay report diverged at %d workers", m.workers)
			}
		}
	}
	return res, nil
}

// Render prints the scaling table.
func (r *ReplayThroughputResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		mode := "histogram"
		if row.Collect {
			mode = "collect"
		}
		rows = append(rows, []string{
			fmt.Sprint(row.Devices), fmt.Sprint(row.Shards), fmt.Sprint(row.Workers),
			row.Source, mode,
			fmt.Sprintf("%.2f", row.Seconds),
			fmt.Sprintf("%.0f", row.ReqPerSec),
			fmt.Sprintf("%.1f", row.AllocMB),
			fmt.Sprintf("%.2f", row.LiveHeapMB),
		})
	}
	return fmt.Sprintf("replay of %d hm_0-shaped requests (8-channel device)\n%s",
		r.Requests, Table([]string{"devices", "shards", "workers", "source", "mode", "sec", "req/s", "alloc MB", "live MB"}, rows))
}
