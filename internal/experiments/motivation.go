package experiments

import (
	"fmt"
	"math"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
)

// ---------------------------------------------------------------------------
// Figure 2: number of bit errors vs read-voltage offset.

// Fig2Result holds one error-vs-offset sweep curve per read voltage.
type Fig2Result struct {
	Kind    flash.Kind
	Offsets []float64
	// Errors[v-1][i] is the averaged error count of voltage v at
	// Offsets[i].
	Errors [][]float64
}

// Fig2ErrorVsOffset sweeps one aged TLC wordline across the offset grid.
func Fig2ErrorVsOffset(s Scale) (*Fig2Result, error) {
	chip, err := s.BuildEvalChip(flash.TLC, 101, nil, 3000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	lab := charlab.New(chip)
	res := &Fig2Result{Kind: flash.TLC}
	// One fused sweep covers every voltage from the same read operations,
	// byte-identical to the former per-voltage fan-out.
	res.Offsets, res.Errors = lab.SweepCurves(0, 0)
	return res, nil
}

// Render returns a text summary (per-voltage minimum position and depth).
func (r *Fig2Result) Render() string {
	rows := make([][]string, 0, len(r.Errors))
	for v, errs := range r.Errors {
		minI := 0
		for i, e := range errs {
			if e < errs[minI] {
				minI = i
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("V%d", v+1),
			F(r.Offsets[minI]),
			F(errs[minI]),
			F(errs[0]),
			F(errs[len(errs)-1]),
		})
	}
	return "Fig 2: bit errors vs read-voltage offset (" + r.Kind.String() + ")\n" +
		Table([]string{"voltage", "optimal offset", "min errors", "errors@lo", "errors@hi"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 3: per-layer max MSB RBER at default vs optimal voltages.

// Fig3Row is one (P/E, layer) measurement.
type Fig3Row struct {
	PE         int
	Layer      int
	DefaultMax float64
	OptimalMax float64
}

// Fig3Result holds both chips' layer scans.
type Fig3Result struct {
	Kind flash.Kind
	Rows []Fig3Row
}

// Fig3LayerRBER measures the per-layer maximum MSB RBER after one-year
// retention across P/E counts, at default and per-wordline optimal
// voltages.
func Fig3LayerRBER(s Scale, kind flash.Kind) (*Fig3Result, error) {
	res := &Fig3Result{Kind: kind}
	for _, pe := range []int{0, 1000, 3000, 5000} {
		chip, err := s.BuildEvalChip(kind, 103, nil, pe, physics.YearHours)
		if err != nil {
			return nil, err
		}
		lab := charlab.New(chip)
		msb := chip.Coding().Bits() - 1
		for _, lr := range lab.LayerMaxRBER(0, msb) {
			res.Rows = append(res.Rows, Fig3Row{
				PE: pe, Layer: lr.Layer,
				DefaultMax: lr.DefaultMax, OptimalMax: lr.OptimalMax,
			})
		}
	}
	return res, nil
}

// Render summarizes per P/E count.
func (r *Fig3Result) Render() string {
	type agg struct {
		defMax, optMax float64
		defSum, optSum float64
		n              int
	}
	byPE := map[int]*agg{}
	var pes []int
	for _, row := range r.Rows {
		a := byPE[row.PE]
		if a == nil {
			a = &agg{}
			byPE[row.PE] = a
			pes = append(pes, row.PE)
		}
		a.n++
		a.defSum += row.DefaultMax
		a.optSum += row.OptimalMax
		if row.DefaultMax > a.defMax {
			a.defMax = row.DefaultMax
		}
		if row.OptimalMax > a.optMax {
			a.optMax = row.OptimalMax
		}
	}
	rows := make([][]string, 0, len(pes))
	for _, pe := range pes {
		a := byPE[pe]
		rows = append(rows, []string{
			fmt.Sprint(pe),
			F(a.defSum / float64(a.n)), F(a.defMax),
			F(a.optSum / float64(a.n)), F(a.optMax),
		})
	}
	return fmt.Sprintf("Fig 3 (%v): MSB RBER per layer, 1-year retention\n", r.Kind) +
		Table([]string{"P/E", "default mean", "default max", "optimal mean", "optimal max"}, rows)
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: temperature impact after one hour of retention.

// Fig45Result compares room- and high-temperature retention.
type Fig45Result struct {
	// RBER[page][wl] per condition.
	RoomRBER [][]float64
	HotRBER  [][]float64
	// Optimal offsets of the probed voltages per wordline.
	Voltages []int
	RoomOpt  [][]float64
	HotOpt   [][]float64
}

// Fig45Temperature runs the paper's Section II-B2 comparison on QLC: one
// hour at 25C vs one hour at 80C (inside a computer case), measuring
// per-wordline RBER of all four page types (Fig 4) and the optimal
// offsets of V3, V6, V8, V14 (Fig 5).
func Fig45Temperature(s Scale) (*Fig45Result, error) {
	res := &Fig45Result{Voltages: []int{3, 6, 8, 14}}
	run := func(tempC float64) (rber [][]float64, opts [][]float64, err error) {
		chip, err := s.BuildEvalChip(flash.QLC, 104, nil, 1000, 0)
		if err != nil {
			return nil, nil, err
		}
		chip.Age(0, 1, tempC)
		lab := charlab.New(chip)
		bits := chip.Coding().Bits()
		nwl := chip.Config().WordlinesPerBlock()
		rber = make([][]float64, bits)
		for p := 0; p < bits; p++ {
			rber[p] = make([]float64, nwl)
		}
		opts = make([][]float64, len(res.Voltages))
		for vi := range res.Voltages {
			opts[vi] = make([]float64, nwl)
		}
		parallel.ForEach(nwl, func(wl int) {
			for p := 0; p < bits; p++ {
				rber[p][wl] = lab.PageRBER(0, wl, p, nil)
			}
			for vi, v := range res.Voltages {
				opts[vi][wl] = lab.OptimalOffset(0, wl, v)
			}
		})
		return rber, opts, nil
	}
	var err error
	if res.RoomRBER, res.RoomOpt, err = run(physics.RoomTempC); err != nil {
		return nil, err
	}
	if res.HotRBER, res.HotOpt, err = run(80); err != nil {
		return nil, err
	}
	return res, nil
}

// Render summarizes the temperature comparison.
func (r *Fig45Result) Render() string {
	names := []string{"LSB", "CSB", "CSB2", "MSB"}
	rows := make([][]string, 0, len(r.RoomRBER))
	for p := range r.RoomRBER {
		rows = append(rows, []string{
			names[p],
			F(mathx.Mean(r.RoomRBER[p])),
			F(mathx.Mean(r.HotRBER[p])),
		})
	}
	out := "Fig 4 (QLC): RBER after 1h retention, room vs 80C\n" +
		Table([]string{"page", "room mean RBER", "hot mean RBER"}, rows)
	rows = rows[:0]
	for vi, v := range r.Voltages {
		rows = append(rows, []string{
			fmt.Sprintf("V%d", v),
			F(mathx.Mean(r.RoomOpt[vi])),
			F(mathx.Mean(r.HotOpt[vi])),
		})
	}
	return out + "Fig 5 (QLC): optimal offsets after 1h, room vs 80C\n" +
		Table([]string{"voltage", "room mean offset", "hot mean offset"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 6: optimal read voltages per layer.

// Fig6Result holds the per-layer mean optimal offset of each voltage.
type Fig6Result struct {
	// Opt[v-1][layer].
	Opt [][]float64
}

// Fig6LayerOptima sweeps a QLC block at P/E 3000 with one-year retention.
func Fig6LayerOptima(s Scale) (*Fig6Result, error) {
	chip, err := s.BuildEvalChip(flash.QLC, 106, nil, 3000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	lab := charlab.New(chip)
	cfg := chip.Config()
	nv := chip.Coding().NumVoltages()
	res := &Fig6Result{Opt: make([][]float64, nv)}
	sums := make([][]float64, nv)
	counts := make([]int, cfg.Layers)
	for v := range sums {
		sums[v] = make([]float64, cfg.Layers)
		res.Opt[v] = make([]float64, cfg.Layers)
	}
	optima := parallel.Map(cfg.WordlinesPerBlock(), func(wl int) flash.Offsets {
		return lab.OptimalOffsets(0, wl)
	})
	for wl, o := range optima {
		layer := chip.LayerOf(wl)
		for i := 0; i < nv; i++ {
			sums[i][layer] += o[i]
		}
		counts[layer]++
	}
	for v := 0; v < nv; v++ {
		for l := 0; l < cfg.Layers; l++ {
			if counts[l] > 0 {
				res.Opt[v][l] = sums[v][l] / float64(counts[l])
			}
		}
	}
	return res, nil
}

// Render prints per-voltage layer ranges.
func (r *Fig6Result) Render() string {
	rows := make([][]string, 0, len(r.Opt))
	for v, per := range r.Opt {
		lo, hi := mathx.MinMax(per)
		rows = append(rows, []string{
			fmt.Sprintf("V%d", v+1), F(mathx.Mean(per)), F(lo), F(hi),
		})
	}
	return "Fig 6 (QLC, P/E 3000, 1 yr): optimal offsets across layers\n" +
		Table([]string{"voltage", "mean", "min layer", "max layer"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 7: bit-error position map.

// Fig7Result summarizes the spatial error structure.
type Fig7Result struct {
	Map *charlab.ErrorMap
	// UniformityChi2 ~ 1 means errors uniform along wordlines; the
	// wordline coefficient of variation captures the stripes.
	UniformityChi2    float64
	WordlineVariation float64
}

// Fig7ErrorMap collects the error-position map of a QLC block at P/E 3000
// with one-year retention.
func Fig7ErrorMap(s Scale) (*Fig7Result, error) {
	chip, err := s.BuildEvalChip(flash.QLC, 107, nil, 3000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	lab := charlab.New(chip)
	m := lab.CollectErrorMap(0, 16)
	return &Fig7Result{
		Map:               m,
		UniformityChi2:    m.UniformityChi2(),
		WordlineVariation: m.WordlineVariation(),
	}, nil
}

// Render prints the two locality statistics.
func (r *Fig7Result) Render() string {
	return fmt.Sprintf("Fig 7 (QLC): error-position structure\n"+
		"  along-wordline uniformity (reduced chi^2, ~1 = uniform): %.3f\n"+
		"  across-wordline variation (CV of per-WL error counts):   %.3f\n",
		r.UniformityChi2, r.WordlineVariation)
}

// ---------------------------------------------------------------------------
// Figure 8: correlation between per-voltage optima and the sentinel
// voltage's optimum.

// Fig8Result holds the fitted correlation lines.
type Fig8Result struct {
	Correlations []charlab.VoltageCorrelation
}

// Fig8Correlation gathers optima across stress points on a QLC chip and
// fits each voltage's optimum against V8's.
func Fig8Correlation(s Scale) (*Fig8Result, error) {
	cfg := s.ChipConfig(flash.QLC, 108)
	chip, err := flash.New(cfg)
	if err != nil {
		return nil, err
	}
	var wls []int
	for wl := 0; wl < cfg.WordlinesPerBlock(); wl += 2 {
		wls = append(wls, wl)
	}
	// Per-wordline RNG streams keyed by wordline index keep the programmed
	// data identical at any worker count.
	parallel.ForEach(len(wls), func(i int) {
		rng := mathx.NewRand(mathx.Mix(881, uint64(wls[i])))
		chip.ProgramRandom(0, wls[i], rng)
	})
	lab := charlab.New(chip)
	cc := charlab.NewCorrelationCollector(chip.Coding())
	for i, pt := range s.trainPoints() {
		st := physics.Stress{PECycles: pt.PECycles}
		st = st.Aged(chip.Model().P, pt.Hours, pt.TempC)
		chip.SetStress(0, st)
		lab.Seed = mathx.Mix(12345, uint64(i))
		if err := cc.Add(lab, 0, wls); err != nil {
			return nil, err
		}
	}
	return &Fig8Result{Correlations: cc.Fit()}, nil
}

// Render prints slopes and correlation coefficients.
func (r *Fig8Result) Render() string {
	rows := make([][]string, 0, len(r.Correlations))
	for _, vc := range r.Correlations {
		rows = append(rows, []string{
			fmt.Sprintf("V%d", vc.Voltage),
			fmt.Sprintf("%.3f", vc.Slope),
			fmt.Sprintf("%.2f", vc.Intercept),
			fmt.Sprintf("%.3f", vc.R),
		})
	}
	return "Fig 8 (QLC): per-voltage optimum vs V8 optimum\n" +
		Table([]string{"voltage", "slope", "intercept", "r"}, rows)
}

// StrongCount returns how many voltages (excluding V1) correlate with
// |r| above the threshold.
func (r *Fig8Result) StrongCount(threshold float64) int {
	n := 0
	for _, vc := range r.Correlations {
		if vc.Voltage == 1 {
			continue
		}
		if math.Abs(vc.R) >= threshold {
			n++
		}
	}
	return n
}
