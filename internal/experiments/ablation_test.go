package experiments

import (
	"strings"
	"testing"

	"sentinel3d/internal/flash"
)

func TestAblatePlacement(t *testing.T) {
	r, err := AblatePlacement(Quick(), flash.QLC)
	if err != nil {
		t.Fatal(err)
	}
	if r.TailMean <= 0 || r.SpreadMean <= 0 {
		t.Fatalf("degenerate means: %+v", r)
	}
	// Spread sentinels sample spatial gradients, so on high-gradient
	// wordlines they should not be clearly worse than tail placement.
	if r.SpreadGradMean > r.TailGradMean*1.3 {
		t.Fatalf("spread placement worse on gradient wordlines: %+v", r)
	}
	if !strings.Contains(r.Render(), "tail-OOB") {
		t.Fatal("render missing")
	}
}

func TestAblateCalibrationDelta(t *testing.T) {
	r, err := AblateCalibrationDelta(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Every setting must stay well below the current-flash baseline
	// (~6.6), and the default Δ=4 must be competitive.
	var d4 float64
	best := r.Rows[0].MeanRetries
	for _, row := range r.Rows {
		if row.MeanRetries > 4 {
			t.Fatalf("delta %v: %v retries — calibration broken", row.Delta, row.MeanRetries)
		}
		if row.MeanRetries < best {
			best = row.MeanRetries
		}
		if row.Delta == 4 {
			d4 = row.MeanRetries
		}
	}
	if d4 > best+1 {
		t.Fatalf("default delta=4 (%v) far from best (%v)", d4, best)
	}
	_ = r.Render()
}

func TestAblateCombined(t *testing.T) {
	r, err := AblateCombined(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The tracked first read should succeed more often than the default
	// first read (that is the whole point of the Section V combination).
	if r.CombinedFirstOK < r.SentinelFirstOK {
		t.Fatalf("tracking first read did not raise first-read success: %+v", r)
	}
	if r.CombinedRetries > r.SentinelRetries+0.5 {
		t.Fatalf("combined policy clearly worse: %+v", r)
	}
	_ = r.Render()
}
