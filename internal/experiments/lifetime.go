package experiments

import (
	"fmt"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

// ---------------------------------------------------------------------------
// Device lifetime as a replay axis: the same trace replayed at several
// points of the device's life, under several ambient-temperature
// schedules, with stress evolving *during* the replay.

// AgePreset names one point of a device's life: the P/E wear and the
// effective room-temperature retention its resident data starts with.
type AgePreset struct {
	Name  string
	PE    int
	Hours float64
}

// agePresets are the named lifetime points shared by the scenario layer
// (`"age": "worn"`), the tracesim CLI (-age) and the lifetime sweep.
// "worn" matches the frozen-stress replay default (5000 cycles, one
// year), so an aged lifetime cell is directly comparable to the legacy
// frozen cells.
var agePresets = []AgePreset{
	{Name: "fresh", PE: 0, Hours: 24},
	{Name: "mid", PE: 2000, Hours: 2000},
	{Name: "worn", PE: 5000, Hours: physics.YearHours},
}

// AgePresets returns the named device ages in sweep order.
func AgePresets() []AgePreset { return agePresets }

// AgeByName resolves a named age preset.
func AgeByName(name string) (AgePreset, bool) {
	for _, a := range agePresets {
		if a.Name == name {
			return a, true
		}
	}
	return AgePreset{}, false
}

// ScheduleByName resolves a named ambient-temperature schedule: "room"
// (constant 25°C), "hot" (constant 55°C) and "diurnal" (a 24-hour
// square wave spending half of every day at 50°C).
func ScheduleByName(name string) (physics.TempSchedule, bool) {
	switch name {
	case "room":
		return physics.ConstantTemp(physics.RoomTempC), true
	case "hot":
		return physics.ConstantTemp(55), true
	case "diurnal":
		return physics.SquareWave(physics.RoomTempC, 50, 24, 0.5), true
	}
	return physics.TempSchedule{}, false
}

// ScheduleNames returns the named schedules in sweep order.
func ScheduleNames() []string { return []string{"room", "hot", "diurnal"} }

// LifetimeGridHours is the retention grid a lifetime replay measures
// its sampler pools at, anchored at the age preset's base retention:
// the starting point, four months on, and a year on. A replay
// time-lapsed to span a year of device life climbs through all three.
func LifetimeGridHours(base float64) []float64 {
	return []float64{base, base + physics.YearHours/3, base + physics.YearHours}
}

// lifetimePolicies is the comparison set, in table order.
var lifetimePolicies = []string{"table", "sentinel", "sentinel+history"}

// lifetimeSchedules is the sweep's schedule subset (hot is expressible
// but adds no contrast over diurnal's hot band at triple the replays).
var lifetimeSchedules = []string{"room", "diurnal"}

// LifetimeCell is one (age, schedule, policy) replay outcome.
type LifetimeCell struct {
	Age      string
	Schedule string
	Policy   string
	// SensesPerRead is the mean flash sensing operations per mapped page
	// read: attempts (1 + retries) plus auxiliary single-voltage senses.
	SensesPerRead float64
	MeanReadUS    float64
	P99ReadUS     float64
	// DeviceHours is the span of device life the replay covered;
	// Calibrations and RunErases what the lifetime machinery did in it.
	DeviceHours  float64
	Calibrations int64
	RunErases    int64
}

// LifetimeResult holds the full age x schedule x policy sweep.
type LifetimeResult struct {
	Requests int
	// Cells is (age, schedule)-major, lifetimePolicies order within a
	// group.
	Cells []LifetimeCell
	// Violations counts aged (non-fresh) groups where a sentinel-family
	// policy needed at least as many senses per read as the static table
	// (the acceptance criterion is zero).
	Violations int
}

// countingStressSampler wraps a StressSampler and accumulates the
// sensing cost of every draw. One instance serves one single-goroutine
// Sim. Routing through the StressSampler interface (not the
// devirtualized grid path) is deliberate: the two paths are proven
// byte-identical, and the wrapper must see every draw.
type countingStressSampler struct {
	inner  ssdsim.StressSampler
	reads  int64
	senses int64
}

func (c *countingStressSampler) count(out ssdsim.RetryOutcome) {
	c.reads++
	c.senses += int64(1 + out.Retries + out.AuxSenses)
}

func (c *countingStressSampler) Sample(pageType int, rng *mathx.Rand) ssdsim.RetryOutcome {
	out := c.inner.Sample(pageType, rng)
	c.count(out)
	return out
}

func (c *countingStressSampler) SampleStressed(pageType int, st physics.Stress, rng *mathx.Rand) ssdsim.RetryOutcome {
	out := c.inner.SampleStressed(pageType, st, rng)
	c.count(out)
	return out
}

// lifetimeGridPoint is one measured (P/E, retention) chip: its pools,
// one per policy, in lifetimePolicies order.
type lifetimeGridPoint struct {
	pools []*ssdsim.EmpiricalSampler
}

// Lifetime replays one read-heavy trace at three points of the device's
// life (fresh, mid-life, worn) under two ambient-temperature schedules,
// with per-block stress evolving during the replay: the retention clock
// is driven from the trace's own timestamps (time-lapsed so the trace
// spans over a year of device life), erases cycle blocks, and a
// background calibration scheduler periodically steals die time. Retry
// pools are measured on real aged chips at each age's retention grid —
// per policy — so as blocks climb the grid the read cost diverges:
// the static table walks further at every step while sentinel-family
// policies keep inferring the offsets. The acceptance criterion is that
// sentinel and sentinel+history beat the table on senses-per-read at
// every aged (mid, worn) point of the sweep.
func Lifetime(s Scale, requests int) (*LifetimeResult, error) {
	if requests <= 0 {
		requests = 6000
	}
	model, err := s.TrainModel(flash.TLC, 114)
	if err != nil {
		return nil, err
	}

	// Measure the sampler grid: one aged chip per (age, retention hour)
	// point, three policy pools per chip. Points fan out; each builds
	// its own chip from a point-keyed seed, so the grid is a pure
	// function of (scale, age, hour) regardless of worker count.
	ages := AgePresets()
	grids := make([][]float64, len(ages))
	for ai, age := range ages {
		grids[ai] = LifetimeGridHours(age.Hours)
	}
	nHours := len(grids[0])
	points, err := parallel.MapErr(len(ages)*nHours, func(pi int) (*lifetimeGridPoint, error) {
		age := ages[pi/nHours]
		hours := grids[pi/nHours][pi%nHours]
		seed := mathx.Mix(0x11fe, uint64(pi))
		cfg := s.ChipConfig(flash.TLC, seed)
		eng, err := s.Engine(model, cfg)
		if err != nil {
			return nil, err
		}
		chip, err := s.BuildEvalChip(flash.TLC, seed, eng, age.PE, hours)
		if err != nil {
			return nil, err
		}
		ctl, err := s.Controller(chip, s.MaxRetries)
		if err != nil {
			return nil, err
		}
		var wls []int
		nwl := cfg.WordlinesPerBlock()
		step := nwl / 16
		if step < 1 {
			step = 1
		}
		for wl := 0; wl < nwl; wl += step {
			wls = append(wls, wl)
		}
		sent := retry.NewSentinelPolicy(eng)
		cache, err := retry.NewHistCache(4, 64<<10, chip.Coding().NumVoltages(), eng.OffsetBound())
		if err != nil {
			return nil, err
		}
		retry.WarmHistCache(cache, chip, eng, []int{0}, wls[0], 0x9157)
		policies := map[string]retry.Policy{
			"table":            retry.NewDefaultTable(chip, s.TableStep),
			"sentinel":         sent,
			"sentinel+history": retry.NewSentinelHistory(cache, sent, false),
		}
		pt := &lifetimeGridPoint{}
		for i, name := range lifetimePolicies {
			pool, err := ssdsim.BuildSampler(ctl, policies[name], 0, wls, 3, mathx.Mix(0x11fe+1, uint64(pi*8+i)))
			if err != nil {
				return nil, err
			}
			pt.pools = append(pt.pools, pool)
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}

	simCfg := ssdsim.DefaultConfig()
	simCfg.Geo = ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
	// One read-heavy workload, materialized once: every (age, schedule,
	// policy) cell replays the identical trace, isolating the lifetime
	// axes.
	spec, err := trace.WorkloadByName("mds_0")
	if err != nil {
		return nil, err
	}
	spec.WorkingSetPages = int64(simCfg.Geo.PagesTotal()) * 6 / 10
	spec.MeanIATUS *= 6
	reqs, err := trace.Generate(spec, requests, 0x11fe)
	if err != nil {
		return nil, err
	}
	// Time-lapse the trace to span 1.5x a year of device life, so every
	// replay climbs through the full retention grid (grid steps are
	// +1/3 year and +1 year). The factor is a pure function of the
	// materialized trace.
	traceSec := reqs[len(reqs)-1].ArriveUS * 1e-6
	if traceSec <= 0 {
		traceSec = 1
	}
	hoursPerSecond := 1.5 * physics.YearHours / traceSec

	res := &LifetimeResult{Requests: requests}
	type group struct{ ai, si int }
	var groups []group
	for ai := range ages {
		for si := range lifetimeSchedules {
			groups = append(groups, group{ai, si})
		}
	}
	rows, err := parallel.MapErr(len(groups), func(gi int) ([]LifetimeCell, error) {
		age := ages[groups[gi].ai]
		schedName := lifetimeSchedules[groups[gi].si]
		sched, _ := ScheduleByName(schedName)
		cells := make([]LifetimeCell, 0, len(lifetimePolicies))
		for pidx, name := range lifetimePolicies {
			ls := &ssdsim.LifetimeSampler{PEs: []int{age.PE}, Hours: grids[groups[gi].ai]}
			for j := 0; j < nHours; j++ {
				ls.Pools = append(ls.Pools, points[groups[gi].ai*nHours+j].pools[pidx])
			}
			cfg := simCfg
			cfg.Life = &ssdsim.LifetimeConfig{
				BasePE:             age.PE,
				BaseRetentionHours: age.Hours,
				Schedule:           sched,
				HoursPerSecond:     hoursPerSecond,
				CalibPeriodHours:   730, // monthly
				CalibDriftHours:    2000,
				CalibUS:            300,
			}
			counter := &countingStressSampler{inner: ls}
			sim, err := ssdsim.New(cfg, counter)
			if err != nil {
				return nil, err
			}
			if err := sim.Precondition(reqs); err != nil {
				return nil, err
			}
			rep, err := sim.Run(reqs)
			if err != nil {
				return nil, err
			}
			cell := LifetimeCell{
				Age: age.Name, Schedule: schedName, Policy: name,
				MeanReadUS:   rep.MeanReadUS,
				P99ReadUS:    rep.P99ReadUS,
				DeviceHours:  rep.Life.DeviceHours,
				Calibrations: rep.Life.Calibrations,
				RunErases:    rep.Life.RunErases,
			}
			if counter.reads > 0 {
				cell.SensesPerRead = float64(counter.senses) / float64(counter.reads)
			}
			cells = append(cells, cell)
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cells := range rows {
		res.Cells = append(res.Cells, cells...)
	}
	np := len(lifetimePolicies)
	for g := 0; g < len(res.Cells); g += np {
		cells := res.Cells[g : g+np]
		if cells[0].Age == "fresh" {
			// A fresh device barely retries: sentinel's auxiliary senses
			// are pure overhead there, which is exactly why lifetime
			// matters as an axis. The claim is about aged devices.
			continue
		}
		table := lifetimeCellOf(cells, "table").SensesPerRead
		for _, name := range lifetimePolicies[1:] {
			if lifetimeCellOf(cells, name).SensesPerRead >= table {
				res.Violations++
			}
		}
	}
	return res, nil
}

// lifetimeCellOf picks the named policy's cell from one group.
func lifetimeCellOf(group []LifetimeCell, policy string) *LifetimeCell {
	for i := range group {
		if group[i].Policy == policy {
			return &group[i]
		}
	}
	return &LifetimeCell{}
}

// Render prints the senses-per-read and latency matrices plus the
// acceptance line.
func (r *LifetimeResult) Render() string {
	np := len(lifetimePolicies)
	header := append([]string{"age", "schedule"}, lifetimePolicies...)
	var senseRows, latRows, lifeRows [][]string
	for g := 0; g < len(r.Cells); g += np {
		cells := r.Cells[g : g+np]
		srow := []string{cells[0].Age, cells[0].Schedule}
		lrow := []string{cells[0].Age, cells[0].Schedule}
		for i := range cells {
			srow = append(srow, fmt.Sprintf("%.3f", cells[i].SensesPerRead))
			lrow = append(lrow, fmt.Sprintf("%.0f", cells[i].MeanReadUS))
		}
		senseRows = append(senseRows, srow)
		latRows = append(latRows, lrow)
		c := &cells[0]
		lifeRows = append(lifeRows, []string{
			c.Age, c.Schedule, fmt.Sprintf("%.0f", c.DeviceHours),
			fmt.Sprint(c.Calibrations), fmt.Sprint(c.RunErases),
		})
	}
	ok := "yes"
	if r.Violations > 0 {
		ok = fmt.Sprintf("NO (%d cells)", r.Violations)
	}
	return fmt.Sprintf("device lifetime sweep: %d requests/cell, stress evolving during replay\n\n", r.Requests) +
		"mean senses per mapped page read:\n" + Table(header, senseRows) +
		"\nmean read latency, µs:\n" + Table(header, latRows) +
		"\nlifetime machinery (per group; identical across policies):\n" +
		Table([]string{"age", "schedule", "device-hours", "calibs", "erases"}, lifeRows) +
		fmt.Sprintf("\nsentinel beats table on senses/read at every aged point: %s\n", ok)
}
