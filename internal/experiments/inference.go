package experiments

import (
	"fmt"
	"math"

	"sentinel3d/internal/charlab"
	"sentinel3d/internal/flash"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/sentinel"
)

// ---------------------------------------------------------------------------
// Figure 10: f(d) fit and inferred vs ground-truth optimum.

// Fig10Result holds the training scatter, the fitted polynomial, and an
// inferred-vs-truth series on a held-out chip.
type Fig10Result struct {
	Kind flash.Kind
	// Training scatter (error-difference rate, optimal offset).
	DS, Opts []float64
	// F is the fitted degree-5 polynomial.
	F mathx.Poly
	// Per-wordline inferred and ground-truth sentinel-voltage optima on a
	// different chip of the batch.
	Inferred, Truth []float64
}

// Fig10InferenceFit trains on one chip and validates the inference on
// another, for the given kind (the paper shows V4 of TLC and V8 of QLC).
func Fig10InferenceFit(s Scale, kind flash.Kind) (*Fig10Result, error) {
	model, err := s.TrainModel(kind, 110)
	if err != nil {
		return nil, err
	}
	// Re-collect the raw scatter for the plot.
	trainChip, err := flash.New(s.ChipConfig(kind, 110))
	if err != nil {
		return nil, err
	}
	tc := sentinel.TrainConfig{
		Points:            s.trainPoints(),
		WordlinesPerPoint: s.TrainWLs,
		Layout:            s.Layout(),
		PolyDegree:        5,
		MeasureReads:      2,
		Seed:              mathx.Mix(110, 0x7ea1),
	}
	ds, opts, err := sentinel.TrainSamples(trainChip, tc)
	if err != nil {
		return nil, err
	}

	evalCfg := s.ChipConfig(kind, 210)
	eng, err := s.Engine(model, evalCfg)
	if err != nil {
		return nil, err
	}
	pe := 5000
	if kind == flash.QLC {
		pe = 1000
	}
	chip, err := s.BuildEvalChip(kind, 210, eng, pe, physics.YearHours)
	if err != nil {
		return nil, err
	}
	lab := charlab.New(chip)
	sv := model.SentinelVoltage
	res := &Fig10Result{Kind: kind, DS: ds, Opts: opts, F: model.F}
	nwl := chip.Config().WordlinesPerBlock()
	res.Inferred = make([]float64, nwl)
	res.Truth = make([]float64, nwl)
	parallel.ForEach(nwl, func(wl int) {
		sense := chip.Sense(0, wl, sv, 0, mathx.Mix(0xf10, uint64(wl)))
		_, inferred := eng.Infer(sense)
		res.Inferred[wl] = inferred.Get(sv)
		res.Truth[wl] = lab.OptimalOffset(0, wl, sv)
	})
	return res, nil
}

// MeanAbsError returns the mean |inferred - truth|.
func (r *Fig10Result) MeanAbsError() float64 {
	var diffs []float64
	for i := range r.Inferred {
		diffs = append(diffs, r.Inferred[i]-r.Truth[i])
	}
	return mathx.AbsMean(diffs)
}

// Render summarizes the fit.
func (r *Fig10Result) Render() string {
	return fmt.Sprintf("Fig 10 (%v): f(d) fit and inference validation\n"+
		"  training pairs: %d, d range [%.4f, %.4f]\n"+
		"  d-vs-optimum correlation: %.3f\n"+
		"  held-out chip: mean |inferred - truth| = %.2f (over %d wordlines)\n"+
		"  inferred-vs-truth correlation: %.3f\n",
		r.Kind, len(r.DS), minOf(r.DS), maxOf(r.DS),
		mathx.Pearson(r.DS, r.Opts),
		r.MeanAbsError(), len(r.Inferred),
		mathx.Pearson(r.Inferred, r.Truth))
}

func minOf(xs []float64) float64 { lo, _ := mathx.MinMax(xs); return lo }
func maxOf(xs []float64) float64 { _, hi := mathx.MinMax(xs); return hi }

// ---------------------------------------------------------------------------
// Table I: prediction error vs sentinel ratio.

// Table1Row is one ratio's statistics.
type Table1Row struct {
	Ratio  float64
	Mean   float64
	StdDev float64
	Count  int // sentinels per wordline at this ratio
}

// Table1Result holds the sweep for one kind.
type Table1Result struct {
	Kind flash.Kind
	Rows []Table1Row
}

// Table1SentinelRatio measures |predicted - real| of the sentinel
// voltage's optimum as the reserve ratio varies (paper ratios 0.02% to
// 0.6%, scaled to keep the same absolute counts at reduced wordline
// widths).
func Table1SentinelRatio(s Scale, kind flash.Kind) (*Table1Result, error) {
	// Ratios scale with wordline width so the sentinel *counts* match the
	// paper's (which used 147456-cell wordlines).
	base := []float64{0.0002, 0.001, 0.002, 0.004, 0.006}
	scale := 147456.0 / float64(s.Cells)
	model, err := s.TrainModel(kind, 111)
	if err != nil {
		return nil, err
	}
	// One evaluation chip; sentinels are programmed at the LARGEST ratio,
	// and smaller ratios read a prefix of the same cells (the alternation
	// parity is preserved by prefix subsets).
	maxLayout := sentinel.Layout{Ratio: base[len(base)-1] * scale, Placement: sentinel.TailOOB}
	evalCfg := s.ChipConfig(kind, 211)
	maxEng, err := sentinel.NewEngine(model, maxLayout, sentinel.DefaultCalibrator(), evalCfg)
	if err != nil {
		return nil, err
	}
	pe := 5000
	if kind == flash.QLC {
		pe = 1000
	}
	chip, err := s.BuildEvalChip(kind, 211, maxEng, pe, physics.YearHours)
	if err != nil {
		return nil, err
	}
	lab := charlab.New(chip)
	sv := model.SentinelVoltage
	nwl := chip.Config().WordlinesPerBlock()

	// Ground truth once per wordline.
	truth := make([]float64, nwl)
	senses := make([]flash.Bitmap, nwl)
	parallel.ForEach(nwl, func(wl int) {
		truth[wl] = lab.OptimalOffset(0, wl, sv)
		senses[wl] = chip.Sense(0, wl, sv, 0, mathx.Mix(0x7ab1e, uint64(wl)))
	})

	res := &Table1Result{Kind: kind}
	allIdx := maxLayout.Indices(evalCfg)
	for _, r0 := range base {
		ratio := r0 * scale
		count := int(float64(s.Cells)*ratio + 0.5)
		if count < 2 {
			count = 2
		}
		if count > len(allIdx) {
			count = len(allIdx)
		}
		idx := allIdx[:count]
		diffs := parallel.Map(nwl, func(wl int) float64 {
			d := sentinel.ErrorDiffRate(senses[wl], idx)
			pred := model.InferSentinelOffset(d)
			return math.Abs(pred - truth[wl])
		})
		res.Rows = append(res.Rows, Table1Row{
			Ratio: r0, Mean: mathx.Mean(diffs), StdDev: mathx.StdDev(diffs),
			Count: count,
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f%%", row.Ratio*100),
			fmt.Sprint(row.Count),
			fmt.Sprintf("%.2f", row.Mean),
			fmt.Sprintf("%.2f", row.StdDev),
		})
	}
	return fmt.Sprintf("Table I (%v): |predicted - real| optimal sentinel voltage\n", r.Kind) +
		Table([]string{"ratio", "sentinels", "mean", "std dev"}, rows)
}

// ---------------------------------------------------------------------------
// Figure 12: state-change counts vs window position.

// Fig12Result holds the normalized state-change counts.
type Fig12Result struct {
	// PosOffsets are positions relative to each wordline's true optimum
	// (positive = Case 1 undershoot, negative = Case 2 overshoot).
	PosOffsets []float64
	// Normalized[i] is NC(pos)/NC(0) averaged over wordlines.
	Normalized []float64
}

// Fig12StateChange verifies the calibration discriminator: the number of
// cells whose sensed state changes between the default voltage and a
// probe voltage, as the probe moves around the true optimum.
func Fig12StateChange(s Scale) (*Fig12Result, error) {
	chip, err := s.BuildEvalChip(flash.QLC, 112, nil, 1000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	lab := charlab.New(chip)
	sv := chip.Coding().SentinelVoltage()
	pos := []float64{-8, -4, -2, 0, 2, 4, 8}
	sums := make([]float64, len(pos))
	nwl := chip.Config().WordlinesPerBlock()
	counted := 0
	// Each wordline's normalized curve is independent; fan out, then fold
	// the per-wordline curves serially in wordline order.
	perWL := parallel.Map(nwl, func(wl int) []float64 {
		opt := lab.OptimalOffset(0, wl, sv)
		if opt >= -4 {
			return nil // need a clear downward move for the window to exist
		}
		defSense := chip.Sense(0, wl, sv, 0, mathx.Mix(0x12a, uint64(wl)))
		base := -1.0
		ncs := make([]float64, len(pos))
		for i, p := range pos {
			probe := chip.Sense(0, wl, sv, opt+p, mathx.Mix3(0x12b, uint64(wl), uint64(i)))
			ncs[i] = float64(defSense.XorCount(probe))
			if p == 0 {
				base = ncs[i]
			}
		}
		if base <= 0 {
			return nil
		}
		for i := range ncs {
			ncs[i] /= base
		}
		return ncs
	})
	for _, ncs := range perWL {
		if ncs == nil {
			continue
		}
		for i := range pos {
			sums[i] += ncs[i]
		}
		counted++
	}
	if counted == 0 {
		return nil, fmt.Errorf("experiments: no wordline had a usable optimum")
	}
	res := &Fig12Result{PosOffsets: pos, Normalized: make([]float64, len(pos))}
	for i := range pos {
		res.Normalized[i] = sums[i] / float64(counted)
	}
	return res, nil
}

// Render prints the normalized curve.
func (r *Fig12Result) Render() string {
	rows := make([][]string, 0, len(r.PosOffsets))
	for i, p := range r.PosOffsets {
		caseName := "optimal"
		if p > 0 {
			caseName = "case 1 (undershoot)"
		} else if p < 0 {
			caseName = "case 2 (overshoot)"
		}
		rows = append(rows, []string{F(p), fmt.Sprintf("%.3f", r.Normalized[i]), caseName})
	}
	return "Fig 12 (QLC): normalized state-change count vs window position\n" +
		Table([]string{"position offset", "NC/NC(0)", "case"}, rows)
}
