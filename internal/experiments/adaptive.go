package experiments

import (
	"fmt"

	"sentinel3d/internal/flash"
	"sentinel3d/internal/ftl"
	"sentinel3d/internal/mathx"
	"sentinel3d/internal/parallel"
	"sentinel3d/internal/physics"
	"sentinel3d/internal/retry"
	"sentinel3d/internal/ssdsim"
	"sentinel3d/internal/trace"
)

// ---------------------------------------------------------------------------
// Adaptive first-shot reads: sentinel vs AR² vs offset-history cache.

// adaptivePolicies is the comparison set, in table order.
var adaptivePolicies = []string{"table", "sentinel", "ar2", "history", "sentinel+history"}

// AdaptiveCell is one (workload, policy) replay outcome.
type AdaptiveCell struct {
	Workload string
	Policy   string
	// SensesPerRead is the mean flash sensing operations per mapped page
	// read: attempts (1 + retries) plus auxiliary single-voltage senses.
	SensesPerRead float64
	MeanReadUS    float64
	P99ReadUS     float64
	// SimReqPerSec is the device's simulated throughput for the cell:
	// requests serviced over the simulated makespan. Unlike wall-clock
	// req/s it depends on the policy's retry distribution, so it is the
	// number the history-cache speedup claim is made on.
	SimReqPerSec float64
}

// AdaptiveResult holds the full trace-matrix comparison.
type AdaptiveResult struct {
	Requests int
	// MSBPoolSenses is each policy's mean senses-per-read over the MSB
	// sampler pool — the chip-level view, before any workload mix.
	MSBPoolSenses []float64
	// Cells is workload-major, adaptivePolicies order within a workload.
	Cells []AdaptiveCell
	// Violations counts trace cells where sentinel+history needed more
	// senses per read than sentinel alone (the acceptance criterion is
	// zero).
	Violations int
}

// countingSampler wraps a sampler and accumulates the sensing cost of
// every draw. One instance serves one single-goroutine Sim.
type countingSampler struct {
	inner  ssdsim.RetrySampler
	reads  int64
	senses int64
}

func (c *countingSampler) Sample(pageType int, rng *mathx.Rand) ssdsim.RetryOutcome {
	out := c.inner.Sample(pageType, rng)
	c.reads++
	c.senses += int64(1 + out.Retries + out.AuxSenses)
	return out
}

// Adaptive benchmarks the adaptive read stack across the MSR-like trace
// matrix: the static table and plain sentinel baselines against AR²
// (pipelined table stepping), the offset-history cache (first shot from
// the block's last-known-good offsets) and the sentinel-seeded cache
// combination. Retry-outcome pools are sampled per policy on the aged
// TLC chip — the history caches deterministically warmed from sentinel
// inference and frozen — and every workload replays the identical trace
// under each pool, measuring senses-per-read, latency and simulated
// device throughput.
func Adaptive(s Scale, requests int) (*AdaptiveResult, error) {
	if requests <= 0 {
		requests = 6000
	}
	model, err := s.TrainModel(flash.TLC, 114)
	if err != nil {
		return nil, err
	}
	cfg := s.ChipConfig(flash.TLC, 214)
	eng, err := s.Engine(model, cfg)
	if err != nil {
		return nil, err
	}
	chip, err := s.BuildEvalChip(flash.TLC, 214, eng, 5000, physics.YearHours)
	if err != nil {
		return nil, err
	}
	ctl, err := s.Controller(chip, s.MaxRetries)
	if err != nil {
		return nil, err
	}
	var wls []int
	nwl := cfg.WordlinesPerBlock()
	step := nwl / 16
	if step < 1 {
		step = 1
	}
	for wl := 0; wl < nwl; wl += step {
		wls = append(wls, wl)
	}
	table := retry.NewDefaultTable(chip, s.TableStep)
	sent := retry.NewSentinelPolicy(eng)
	newCache := func() (*retry.HistCache, error) {
		cache, err := retry.NewHistCache(4, 64<<10, chip.Coding().NumVoltages(), eng.OffsetBound())
		if err != nil {
			return nil, err
		}
		retry.WarmHistCache(cache, chip, eng, []int{0}, wls[0], 0x9157)
		return cache, nil
	}
	histCache, err := newCache()
	if err != nil {
		return nil, err
	}
	combCache, err := newCache()
	if err != nil {
		return nil, err
	}
	policies := map[string]retry.Policy{
		"table":            table,
		"sentinel":         sent,
		"ar2":              retry.NewAR2(table),
		"history":          retry.NewHistoryPolicy(histCache, table, false),
		"sentinel+history": retry.NewSentinelHistory(combCache, sent, false),
	}
	samplers := make(map[string]*ssdsim.EmpiricalSampler, len(policies))
	for i, name := range adaptivePolicies {
		sampler, err := ssdsim.BuildSampler(ctl, policies[name], 0, wls, 3, 0xad0+uint64(i))
		if err != nil {
			return nil, err
		}
		samplers[name] = sampler
	}

	simCfg := ssdsim.DefaultConfig()
	simCfg.Geo = ftl.Geometry{
		Channels: 4, ChipsPerChan: 1, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 32, PagesPerBlock: 192,
	}
	res := &AdaptiveResult{Requests: requests}
	msb := chip.Coding().Bits() - 1
	for _, name := range adaptivePolicies {
		pool := samplers[name]
		res.MSBPoolSenses = append(res.MSBPoolSenses,
			1+pool.MeanRetries(msb)+meanAux(pool, msb))
	}
	// Every workload replays the identical materialized trace under each
	// policy's pool; workloads fan out, rows stay in workload order.
	specs := trace.MSRWorkloads()
	rows, err := parallel.MapErr(len(specs), func(i int) ([]AdaptiveCell, error) {
		spec := specs[i]
		spec.WorkingSetPages = int64(simCfg.Geo.PagesTotal()) * 6 / 10
		spec.MeanIATUS *= 6
		gen, err := trace.NewGenerator(spec, requests, mathx.Mix(0xada, uint64(len(spec.Name))))
		if err != nil {
			return nil, err
		}
		var reqs []trace.Request
		for {
			r, ok, err := gen.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			reqs = append(reqs, r)
		}
		// The paced trace measures latency; arrivals dominate its makespan,
		// so device throughput is measured on a saturated burst (every
		// request at t=0) where the makespan is pure service capacity.
		burst := make([]trace.Request, len(reqs))
		copy(burst, reqs)
		for j := range burst {
			burst[j].ArriveUS = 0
		}
		cells := make([]AdaptiveCell, 0, len(adaptivePolicies))
		for _, name := range adaptivePolicies {
			counter := &countingSampler{inner: samplers[name]}
			sim, err := ssdsim.New(simCfg, counter)
			if err != nil {
				return nil, err
			}
			if err := sim.Precondition(reqs); err != nil {
				return nil, err
			}
			rep, err := sim.Run(reqs)
			if err != nil {
				return nil, err
			}
			cell := AdaptiveCell{
				Workload:   spec.Name,
				Policy:     name,
				MeanReadUS: rep.MeanReadUS,
				P99ReadUS:  rep.P99ReadUS,
			}
			if counter.reads > 0 {
				cell.SensesPerRead = float64(counter.senses) / float64(counter.reads)
			}
			bsim, err := ssdsim.New(simCfg, samplers[name])
			if err != nil {
				return nil, err
			}
			if err := bsim.Precondition(burst); err != nil {
				return nil, err
			}
			brep, err := bsim.Run(burst)
			if err != nil {
				return nil, err
			}
			if mk := bsim.Makespan(); mk > 0 {
				cell.SimReqPerSec = float64(brep.Requests) / (mk * 1e-6)
			}
			cells = append(cells, cell)
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	for _, cells := range rows {
		res.Cells = append(res.Cells, cells...)
	}
	for w := 0; w < len(res.Cells); w += len(adaptivePolicies) {
		group := res.Cells[w : w+len(adaptivePolicies)]
		if cellOf(group, "sentinel+history").SensesPerRead > cellOf(group, "sentinel").SensesPerRead {
			res.Violations++
		}
	}
	return res, nil
}

// meanAux returns the mean auxiliary-sense count of page type p's pool.
func meanAux(e *ssdsim.EmpiricalSampler, p int) float64 {
	pool := e.PerPage[p]
	if len(pool) == 0 {
		return 0
	}
	s := 0
	for _, o := range pool {
		s += o.AuxSenses
	}
	return float64(s) / float64(len(pool))
}

// cellOf picks the named policy's cell from one workload's group.
func cellOf(group []AdaptiveCell, policy string) *AdaptiveCell {
	for i := range group {
		if group[i].Policy == policy {
			return &group[i]
		}
	}
	return &AdaptiveCell{}
}

// HistorySpeedup returns the mean simulated-throughput ratio of the
// history policy over plain sentinel across workloads.
func (r *AdaptiveResult) HistorySpeedup() float64 {
	var sum float64
	var n int
	for w := 0; w < len(r.Cells); w += len(adaptivePolicies) {
		group := r.Cells[w : w+len(adaptivePolicies)]
		s := cellOf(group, "sentinel").SimReqPerSec
		h := cellOf(group, "history").SimReqPerSec
		if s > 0 {
			sum += h / s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Render prints the senses-per-read and latency matrices plus the
// acceptance lines.
func (r *AdaptiveResult) Render() string {
	np := len(adaptivePolicies)
	header := append([]string{"workload"}, adaptivePolicies...)
	var senseRows, latRows [][]string
	for w := 0; w < len(r.Cells); w += np {
		group := r.Cells[w : w+np]
		srow := []string{group[0].Workload}
		lrow := []string{group[0].Workload}
		for _, c := range group {
			srow = append(srow, fmt.Sprintf("%.3f", c.SensesPerRead))
			lrow = append(lrow, fmt.Sprintf("%.0f", c.MeanReadUS))
		}
		senseRows = append(senseRows, srow)
		latRows = append(latRows, lrow)
	}
	pool := "MSB pool senses/read:"
	for i, name := range adaptivePolicies {
		pool += fmt.Sprintf(" %s %.2f", name, r.MSBPoolSenses[i])
	}
	ok := "yes"
	if r.Violations > 0 {
		ok = fmt.Sprintf("NO (%d cells)", r.Violations)
	}
	return fmt.Sprintf("adaptive first-shot reads: %d requests/workload (aged TLC chip)\n%s\n\n", r.Requests, pool) +
		"mean senses per mapped page read:\n" + Table(header, senseRows) +
		"\nmean read latency, µs:\n" + Table(header, latRows) +
		fmt.Sprintf("\nsentinel+history <= sentinel on every cell: %s\n", ok) +
		fmt.Sprintf("history vs sentinel simulated throughput: %.2fx (mean across workloads)\n",
			r.HistorySpeedup())
}
